// Quickstart: run one workload under the paper's PCSTALL mechanism and
// compare it against static operation and the CRISP reactive baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pcstall"
)

func main() {
	// An 8-CU GPU with one V/f domain per CU, 1µs DVFS epochs, ED²P
	// objective — the paper's fine-grain configuration, scaled down.
	cfg := pcstall.DefaultConfig(8)
	cfg.Epoch = 1 * pcstall.Microsecond

	const app = "comd"
	designs := []string{"STATIC-1700", "CRISP", "PCSTALL", "ORACLE"}
	results, err := pcstall.Compare(app, designs, cfg)
	if err != nil {
		log.Fatal(err)
	}

	base := results["STATIC-1700"].Totals.ED2P()
	fmt.Printf("workload %s on 8 CUs, 1us epochs, ED2P objective\n\n", app)
	fmt.Printf("%-12s %10s %10s %8s %9s\n", "design", "time(us)", "energy(uJ)", "ED2P", "accuracy")
	for _, d := range designs {
		r := results[d]
		acc := "-"
		if r.AccuracyN > 0 {
			acc = fmt.Sprintf("%.3f", r.Accuracy)
		}
		fmt.Printf("%-12s %10.1f %10.1f %8.3f %9s\n",
			d, r.Totals.TimeS*1e6, r.Totals.EnergyJ*1e6, r.Totals.ED2P()/base, acc)
	}
	fmt.Println("\nED2P is normalized to the static 1.7GHz baseline (lower is better).")

	// Where did PCSTALL spend its time? (the paper's Fig. 16 view)
	r := results["PCSTALL"]
	fmt.Printf("\nPCSTALL frequency residency:\n")
	grid := cfg.GPU.Grid
	for k, share := range r.Residency {
		if share > 0.005 {
			fmt.Printf("  %v %5.1f%%\n", grid.State(k), share*100)
		}
	}
	fmt.Printf("V/f transitions: %d\n", r.Transitions)
}
