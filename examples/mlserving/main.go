// ML serving under an SLA: the paper's §6.4 scenario — save energy while
// guaranteeing performance stays within a degradation limit. This example
// runs the DeepBench/DNNMark-style MI kernels under the fixed-performance
// objective at 5% and 10% limits and reports energy saved versus running
// everything at the top frequency.
//
//	go run ./examples/mlserving
package main

import (
	"fmt"
	"log"

	"pcstall"
)

func main() {
	apps := []string{"dgemm", "BwdBN", "BwdPool", "BwdSoft", "FwdBN", "FwdPool", "FwdSoft"}
	designs := []string{"CRISP", "PCSTALL", "ORACLE"}
	limits := []float64{0.05, 0.10}

	for _, limit := range limits {
		fmt.Printf("== energy savings vs static 2.2GHz, <=%.0f%% slowdown allowed ==\n", limit*100)
		fmt.Printf("%-8s", "app")
		for _, d := range designs {
			fmt.Printf(" %9s", d)
		}
		fmt.Printf(" %10s\n", "slowdown*")

		totals := make(map[string]float64)
		var baseSum float64
		for _, app := range apps {
			cfg := pcstall.DefaultConfig(8)
			cfg.Objective = pcstall.FixedPerf(limit)

			base, err := pcstall.RunApp(app, "STATIC-2200", cfg)
			if err != nil {
				log.Fatal(err)
			}
			baseSum += base.Totals.EnergyJ

			fmt.Printf("%-8s", app)
			var pcstallTime float64
			for _, d := range designs {
				r, err := pcstall.RunApp(app, d, cfg)
				if err != nil {
					log.Fatal(err)
				}
				saving := 1 - r.Totals.EnergyJ/base.Totals.EnergyJ
				totals[d] += r.Totals.EnergyJ
				if d == "PCSTALL" {
					pcstallTime = r.Totals.TimeS / base.Totals.TimeS
				}
				fmt.Printf(" %8.1f%%", saving*100)
			}
			fmt.Printf(" %9.3fx\n", pcstallTime)
		}
		fmt.Printf("%-8s", "TOTAL")
		for _, d := range designs {
			fmt.Printf(" %8.1f%%", (1-totals[d]/baseSum)*100)
		}
		fmt.Println("\n  *slowdown = PCSTALL completion time / static 2.2GHz time")
		fmt.Println()
	}
}
