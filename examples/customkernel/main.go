// Custom kernel: build your own GPU kernel with the isa builder, dispatch
// it on the simulator, and watch PCSTALL learn its phase structure. This
// is the extension path for studying workloads beyond the paper's suite.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"pcstall"
	"pcstall/internal/dvfs"
	"pcstall/internal/isa"
	"pcstall/internal/sim"
)

func main() {
	// A two-phase kernel: a pointer-chasing gather over a 16 MiB table
	// (memory-bound) followed by a dense arithmetic block (compute-
	// bound), iterated 40 times per wavefront with a workgroup barrier
	// keeping phases aligned across the CU.
	table := isa.AccessPattern{
		Kind: isa.PatRandom, Base: 1 << 30, WorkingSet: 16 << 20,
		Stride: 64, Lines: 4,
	}
	out := isa.AccessPattern{
		Kind: isa.PatStream, Base: 2 << 30, WorkingSet: 8 << 20,
		Stride: 256, Lines: 1,
	}

	b := isa.NewBuilder("twophase", 0x1000)
	b.Loop(40, 0)
	{ // gather phase
		b.Loop(10, 1)
		b.Load(table).Load(table)
		b.WaitAll()
		b.VALUBlock(3, 4)
		b.EndLoop()
	}
	{ // math phase
		b.Loop(30, 0)
		b.VALUBlock(14, 4)
		b.LDSBlock(2, 2)
		b.EndLoop()
	}
	b.Store(out)
	b.WaitAll()
	b.Barrier()
	b.EndLoop()
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	st := prog.Stats()
	fmt.Printf("kernel %q: %d static instructions (%d compute, %d loads, %d stores, loop depth %d)\n\n",
		prog.Name, st.Total, st.Compute, st.Loads, st.Stores, st.LoopDepth)

	kern := isa.Kernel{Program: prog, Workgroups: 8, WavesPerWG: 8}

	for _, design := range []string{"STATIC-1700", "CRISP", "PCSTALL"} {
		cfg := pcstall.DefaultConfig(8)
		g, err := sim.New(cfg.GPU, []isa.Kernel{kern}, []int32{0})
		if err != nil {
			log.Fatal(err)
		}
		d, err := designByName(design)
		if err != nil {
			log.Fatal(err)
		}
		res, err := dvfs.Run(g, d, dvfs.RunConfig{
			Epoch: cfg.Epoch, Obj: dvfs.ED2P, PM: cfg.Power,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s time %7.1fus  energy %7.1fuJ  ED2P %.4g",
			design, res.Totals.TimeS*1e6, res.Totals.EnergyJ*1e6, res.Totals.ED2P())
		if res.AccuracyN > 0 {
			fmt.Printf("  accuracy %.3f", res.Accuracy)
		}
		fmt.Println()
	}
}

func designByName(name string) (dvfs.Policy, error) {
	for _, d := range pcstall.Designs() {
		if d.Name == name {
			return d.New(), nil
		}
	}
	d := pcstall.StaticDesign(1700)
	if name == d.Name || name == "STATIC-1700" {
		return d.New(), nil
	}
	return nil, fmt.Errorf("unknown design %q", name)
}
