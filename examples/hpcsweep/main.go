// HPC epoch sweep: the paper's motivating observation (Fig. 1a) is that
// shrinking DVFS epochs from hundreds of microseconds to 1µs unlocks
// substantially more energy efficiency — if the predictor is good enough.
// This example sweeps epoch durations over a mix of ECP-proxy-style HPC
// workloads and prints how reactive (CRISP) and predictive (PCSTALL)
// designs track the ORACLE as epochs shrink.
//
//	go run ./examples/hpcsweep
package main

import (
	"fmt"
	"log"
	"math"

	"pcstall"
)

func main() {
	apps := []string{"comd", "hacc", "minife", "xsbench"}
	designs := []string{"CRISP", "PCSTALL", "ORACLE"}
	epochs := []pcstall.Time{
		1 * pcstall.Microsecond,
		10 * pcstall.Microsecond,
		50 * pcstall.Microsecond,
	}

	fmt.Println("geomean ED2P vs static 1.7GHz across", apps)
	fmt.Printf("%-8s", "epoch")
	for _, d := range designs {
		fmt.Printf(" %9s", d)
	}
	fmt.Println()

	for _, e := range epochs {
		fmt.Printf("%-8s", fmt.Sprintf("%dus", e/pcstall.Microsecond))
		for _, d := range designs {
			g, err := geomeanNormED2P(apps, d, e)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %9.3f", g)
		}
		fmt.Println()
	}
	fmt.Println("\nlower is better; the predictive design should retain more of the")
	fmt.Println("oracle's advantage at fine epochs than the reactive one (paper Fig. 1a).")
}

func geomeanNormED2P(apps []string, design string, epoch pcstall.Time) (float64, error) {
	cfg := pcstall.DefaultConfig(8)
	cfg.Epoch = epoch
	// Longer epochs need longer apps to have enough decision points.
	cfg.Scale = 1.0 * math.Max(1, float64(epoch/pcstall.Microsecond)/8)

	logSum, n := 0.0, 0
	for _, app := range apps {
		base, err := pcstall.RunApp(app, "STATIC-1700", cfg)
		if err != nil {
			return 0, err
		}
		r, err := pcstall.RunApp(app, design, cfg)
		if err != nil {
			return 0, err
		}
		v := r.Totals.ED2P() / base.Totals.ED2P()
		logSum += math.Log(v)
		n++
	}
	return math.Exp(logSum / float64(n)), nil
}
