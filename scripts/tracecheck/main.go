// Command tracecheck validates Chrome trace-event files exported by
// -trace-out (pcstall-exp, pcstall-serve, pcstall-sim) and proves that
// a set of per-process files stitches into coherent distributed traces.
//
// Usage:
//
//	tracecheck [-require-cross] [-require-event NAME] file.json ...
//
// For every file it checks the JSON parses as {"traceEvents": [...]}.
// Across all files together it checks that every span's parent_id
// resolves to some span_id in the set (a dangling parent means a
// process dropped or mislabeled part of a trace). With -require-cross
// it additionally demands at least one trace ID that appears in two or
// more files — the coordinator-to-backend stitch the X-Pcstall-Trace
// header exists to produce. -require-event fails unless some instant
// event with that name (e.g. "steal") occurs in some file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// event is the subset of the Chrome trace-event shape tracecheck reads.
type event struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Args map[string]string `json:"args"`
}

type traceFile struct {
	TraceEvents []event `json:"traceEvents"`
}

func main() {
	requireCross := flag.Bool("require-cross", false, "fail unless >=1 trace ID spans >=2 files (distributed stitch)")
	requireEvent := flag.String("require-event", "", "fail unless an instant event with this name occurs in some file")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "tracecheck: no trace files given")
		os.Exit(2)
	}

	spanIDs := map[string]bool{}        // union of span_ids across all files
	traceFiles := map[string][]string{} // trace ID -> files it appears in
	type parentRef struct{ file, span, parent string }
	var parents []parentRef
	spans, instants := 0, 0
	eventSeen := false

	for _, path := range flag.Args() {
		b, err := os.ReadFile(path)
		if err != nil {
			fail("%v", err)
		}
		var tf traceFile
		if err := json.Unmarshal(b, &tf); err != nil {
			fail("%s: not a Chrome trace-event file: %v", path, err)
		}
		for _, ev := range tf.TraceEvents {
			switch ev.Ph {
			case "X":
				spans++
				id := ev.Args["span_id"]
				if id == "" {
					fail("%s: span %q has no span_id", path, ev.Name)
				}
				spanIDs[id] = true
				if tid := ev.Args["trace_id"]; tid != "" {
					fs := traceFiles[tid]
					if len(fs) == 0 || fs[len(fs)-1] != path {
						traceFiles[tid] = append(fs, path)
					}
				}
				if p := ev.Args["parent_id"]; p != "" {
					parents = append(parents, parentRef{path, id, p})
				}
			case "i":
				instants++
				if ev.Name == *requireEvent {
					eventSeen = true
				}
			}
		}
	}

	if spans == 0 {
		fail("no spans in %v", flag.Args())
	}
	for _, pr := range parents {
		if !spanIDs[pr.parent] {
			fail("%s: span %s has dangling parent %s (not in any given file)", pr.file, pr.span, pr.parent)
		}
	}
	cross := 0
	for _, fs := range traceFiles {
		if len(fs) >= 2 {
			cross++
		}
	}
	if *requireCross && cross == 0 {
		fail("no trace ID spans two or more of %v (distributed stitch missing)", flag.Args())
	}
	if *requireEvent != "" && !eventSeen {
		fail("no %q instant event in %v", *requireEvent, flag.Args())
	}
	fmt.Printf("tracecheck: %d files, %d spans, %d instants, %d traces (%d cross-process), all parents resolve\n",
		flag.NArg(), spans, instants, len(traceFiles), cross)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
