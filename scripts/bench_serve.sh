#!/bin/sh
# Regenerates BENCH_serve.json: pcstall-load offered-load sweeps for
# every built-in mix against two pcstall-serve variants on one machine.
#
#   baseline   -figure-queue -1 -body-cache-bytes -1
#              (single shared admission lane, no rendered-body LRU —
#              the pre-hot-tier server)
#   lru+lanes  defaults (per-class admission lanes + bounded body LRU)
#
# Each (variant, mix) pair gets a fresh server and cache dir; the rate
# points within a mix run against the same warm server, which is what an
# offered-load sweep means. Usage:
#
#   scripts/bench_serve.sh [out.json]   # default BENCH_serve.json
set -eu

cd "$(dirname "$0")/.."
out=${1:-BENCH_serve.json}

work=$(mktemp -d)
srv_pid=""
cleanup() {
	[ -n "$srv_pid" ] && kill -TERM "$srv_pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

go build -o "$work/pcstall-serve" ./cmd/pcstall-serve
go build -o "$work/pcstall-load" ./cmd/pcstall-load

machine="$(grep -m1 'model name' /proc/cpuinfo | sed 's/.*: //'), $(nproc) core(s), $(go env GOOS)/$(go env GOARCH), $(go version | awk '{print $3}')"
cat > "$out" <<EOF
{
  "schema": "pcstall/bench-serve/v1",
  "note": "scripts/bench_serve.sh: seed-1 open-loop sweeps, 3s windows, server -cus 4 -scale 0.3 -apps comd,hpgmg -j 2; $machine",
  "runs": []
}
EOF

serve_flags="-cus 4 -scale 0.3 -apps comd,hpgmg -j 2"
base=""

start_server() { # $1 = variant flags, $2 = cache dir
	# shellcheck disable=SC2086
	"$work/pcstall-serve" -addr 127.0.0.1:0 $serve_flags -cache-dir "$2" $1 \
		> "$work/srv.out" 2> "$work/srv.err" &
	srv_pid=$!
	base=""
	for _ in $(seq 1 100); do
		base=$(sed -n 's#^pcstall-serve: listening on \(http://.*\)$#\1#p' "$work/srv.out")
		[ -n "$base" ] && break
		sleep 0.1
	done
	if [ -z "$base" ]; then
		echo "bench_serve: server never announced its address" >&2
		cat "$work/srv.err" >&2
		exit 1
	fi
}

stop_server() {
	kill -TERM "$srv_pid" 2>/dev/null || true
	wait "$srv_pid" 2>/dev/null || true
	srv_pid=""
}

rates_for() {
	case $1 in
	cachehot | collide) echo "40 160 640" ;;
	unique) echo "10 40 160" ;;
	figlane) echo "16 64 256" ;;
	esac
}

for variant in baseline lru+lanes; do
	case $variant in
	baseline) vflags="-figure-queue -1 -body-cache-bytes -1" ;;
	*) vflags="" ;;
	esac
	for mix in cachehot collide unique figlane; do
		start_server "$vflags" "$work/cache-$variant-$mix"
		for rate in $(rates_for "$mix"); do
			echo "== $variant $mix rate=$rate/s"
			"$work/pcstall-load" -targets "$base" -mix "$mix" -rate "$rate" \
				-duration 3s -seed 1 -apps comd,hpgmg -figures 10 \
				-timeout 120s -label "$variant" -out "$out"
		done
		stop_server
	done
done

"$work/pcstall-load" -validate "$out"
