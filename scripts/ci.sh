#!/bin/sh
# CI gate: formatting, vet, build, tests, and race coverage for the
# packages that execute concurrently (orchestrate workers, parallel exp
# sweeps, shared trace recorders). Run from the repo root:
#
#	./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test"
go test ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/telemetry ./internal/orchestrate ./internal/trace ./internal/exp

echo "==> bench smoke (telemetry-off runner vs BENCH_telemetry.json)"
# The disabled-telemetry path is the one every simulation pays. Absolute
# ns/op is useless on this shared box (machine speed drifts 30% between
# sessions), so the gate is load-invariant: the Off/On ratio, measured
# in one invocation (machine speed cancels) with best-of-3 per variant
# to filter transient neighbor load, must not regress >10% against the
# ratio recorded in BENCH_telemetry.json. The strict (2%) absolute
# comparison lives in that file's interleaved-worktree protocol.
ref_off=$(sed -n 's/.*"run_telemetry_off_ns_per_op": \([0-9]*\).*/\1/p' BENCH_telemetry.json)
ref_on=$(sed -n 's/.*"run_telemetry_on_ns_per_op": \([0-9]*\).*/\1/p' BENCH_telemetry.json)
bench_out=$(go test -run '^$' -bench 'BenchmarkRunTelemetry(Off|On)$' -benchtime 5x -count 3 ./internal/dvfs/)
got_off=$(echo "$bench_out" | awk '/BenchmarkRunTelemetryOff/ {v = int($3); if (min == 0 || v < min) min = v} END {print min}')
got_on=$(echo "$bench_out" | awk '/BenchmarkRunTelemetryOn/ {v = int($3); if (min == 0 || v < min) min = v} END {print min}')
if [ -z "$ref_off" ] || [ -z "$ref_on" ] || [ -z "$got_off" ] || [ -z "$got_on" ]; then
	echo "bench smoke: missing reference (${ref_off:-?}/${ref_on:-?}) or measurement (${got_off:-?}/${got_on:-?})" >&2
	exit 1
fi
echo "    reference off/on ${ref_off}/${ref_on} ns/op, measured ${got_off}/${got_on} ns/op"
# got_off/got_on <= (ref_off/ref_on) * 1.10, cross-multiplied to stay integral.
if ! awk -v go="$got_off" -v gn="$got_on" -v ro="$ref_off" -v rn="$ref_on" \
	'BEGIN { exit !(go * rn * 100 <= gn * ro * 110) }'; then
	echo "bench smoke: disabled-telemetry path regressed >10% relative to enabled (off/on $got_off/$got_on vs reference $ref_off/$ref_on)" >&2
	exit 1
fi

echo "CI OK"
