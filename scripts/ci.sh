#!/bin/sh
# CI gate: formatting, vet, build, tests, and race coverage for the
# packages that execute concurrently (orchestrate workers, parallel exp
# sweeps, shared trace recorders). Run from the repo root:
#
#	./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test"
go test ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/orchestrate ./internal/trace ./internal/exp

echo "CI OK"
