#!/bin/sh
# CI gate: formatting, vet, build, tests, and race coverage for the
# packages that execute concurrently (orchestrate workers, parallel exp
# sweeps, shared trace recorders). Run from the repo root:
#
#	./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test"
go test ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/telemetry ./internal/tracing ./internal/orchestrate ./internal/trace ./internal/exp ./internal/serve ./internal/dist ./internal/netchaos ./internal/wire ./internal/load

echo "==> go test -shuffle=on (order-independence of the serving/orchestration tests)"
go test -shuffle=on -count=1 ./internal/serve ./internal/orchestrate ./internal/telemetry

echo "==> go test -race (chaos / hardened-governor / watchdog paths)"
# The fault-injection engine and the watchdog run on the simulation hot
# path; exercise them under the race detector too.
go test -race -run 'Chaos|Harden|Deadlock|Watchdog|Stuck' ./internal/chaos ./internal/dvfs ./internal/sim

echo "==> go test -race (sim core / CoW oracle forks / shared cache arrays)"
# The oracle's copy-on-write clones let distinct samplers fork the same
# quiescent parent GPU from different goroutines, sharing cache entry
# arrays until first write. The whole sim/mem/oracle surface runs under
# the race detector so a privatization bug (a fork writing a still-shared
# array) fails here rather than corrupting a campaign.
go test -race ./internal/sim ./internal/mem ./internal/oracle

echo "==> alloc gate (epoch hot path must not allocate)"
# RunUntil + CollectEpoch + ActivePCs per epoch is the per-epoch hot path
# every DVFS campaign and every oracle fork pays; it is tuned to zero
# steady-state allocations (scratch reuse, pooled cache arrays). The
# benchtime must be high enough to amortize the rare one-off buffer
# growth in the first iterations — at 60x a single grow rounds to 0
# allocs/op, while a real per-epoch allocation shows up as >= 1.
alloc_out=$(go test -run '^$' -bench 'BenchmarkEpochHotPath' -benchtime 60x ./internal/sim/)
echo "$alloc_out" | grep allocs/op || true
if echo "$alloc_out" | awk '/allocs\/op/ { if ($(NF-1) + 0 > 0) bad = 1 } END { exit bad }'; then
	:
else
	echo "alloc gate: epoch hot path allocates (want 0 allocs/op)" >&2
	exit 1
fi

echo "==> fuzz smoke (15s each: program builder, config validator)"
# Short deterministic-budget fuzz passes; CI catches crashes and invariant
# violations, the long exploratory runs stay manual.
go test -run '^$' -fuzz '^FuzzProgramBuilder$' -fuzztime 15s ./internal/isa
go test -run '^$' -fuzz '^FuzzConfigValidate$' -fuzztime 15s ./internal/sim

echo "==> kill-resume smoke (SIGINT mid-campaign, -resume, byte-identical output)"
# A campaign killed mid-flight must drain gracefully (completed results
# flushed to the cache, cancelled jobs excluded) and a -resume rerun must
# recompute only the missing jobs and print byte-identical figures.
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
go build -o "$smoke/pcstall-exp" ./cmd/pcstall-exp
go build -o "$smoke/tracecheck" ./scripts/tracecheck
smoke_flags="-cus 4 -scale 0.3 -apps comd,hpgmg -j 2"
# Reference: the same campaign run cold to completion.
"$smoke/pcstall-exp" $smoke_flags -cache-dir "$smoke/ref" 1a > "$smoke/ref.out" 2> "$smoke/ref.err"
# Interrupted run: fresh cache dir, SIGINT one second in.
"$smoke/pcstall-exp" $smoke_flags -cache-dir "$smoke/kill" 1a > "$smoke/kill.out" 2> "$smoke/kill.err" &
kill_pid=$!
sleep 1
kill -INT "$kill_pid" 2>/dev/null || true
kill_status=0
wait "$kill_pid" || kill_status=$?
if [ "$kill_status" = 130 ]; then
	if [ ! -s "$smoke/kill/results.jsonl" ]; then
		echo "kill-resume smoke: drain flushed no completed results" >&2
		cat "$smoke/kill.err" >&2
		exit 1
	fi
else
	# The campaign outran the signal on this machine; the resume below
	# then just replays a complete cache, which must still be identical.
	echo "    note: campaign finished before SIGINT landed (status $kill_status)"
fi
"$smoke/pcstall-exp" $smoke_flags -cache-dir "$smoke/kill" -resume 1a > "$smoke/resume.out" 2> "$smoke/resume.err"
if ! cmp -s "$smoke/ref.out" "$smoke/resume.out"; then
	echo "kill-resume smoke: resumed output differs from cold reference" >&2
	diff "$smoke/ref.out" "$smoke/resume.out" >&2 || true
	exit 1
fi
echo "    resumed campaign output byte-identical to cold run"

echo "==> chaos smoke (fixed-seed fault injection is reproducible)"
# A chaos-on campaign at a fixed seed must print byte-identical figures
# across runs — fault injection is part of the deterministic replay, not
# a source of flakiness. -no-cache keeps both runs honest (computed, not
# replayed from disk).
# Same platform as the reference run: the only delta is the chaos spec,
# so chaos1 differing from ref.out isolates the injection itself.
chaos_flags="$smoke_flags -no-cache -chaos level=0.2"
"$smoke/pcstall-exp" $chaos_flags 1a > "$smoke/chaos1.out" 2> "$smoke/chaos1.err"
"$smoke/pcstall-exp" $chaos_flags 1a > "$smoke/chaos2.out" 2> "$smoke/chaos2.err"
if ! cmp -s "$smoke/chaos1.out" "$smoke/chaos2.out"; then
	echo "chaos smoke: two fixed-seed chaos runs diverged" >&2
	diff "$smoke/chaos1.out" "$smoke/chaos2.out" >&2 || true
	exit 1
fi
if cmp -s "$smoke/ref.out" "$smoke/chaos1.out"; then
	echo "chaos smoke: chaos-on output identical to fault-free reference (injection inert?)" >&2
	exit 1
fi
echo "    chaos-on campaign reproducible and distinct from fault-free run"

echo "==> server smoke (pcstall-serve: boot, submit over HTTP, poll, drain)"
# The serving layer must survive a full client round-trip: boot on a
# random port, admit an async simulation over HTTP, poll the job to
# completion, then drain cleanly on SIGTERM — exiting 0 with a flushed,
# non-empty manifest that records the job the client submitted.
go build -o "$smoke/pcstall-serve" ./cmd/pcstall-serve
"$smoke/pcstall-serve" -addr 127.0.0.1:0 -cus 4 -scale 0.3 -j 2 \
	-cache-dir "$smoke/serve-cache" > "$smoke/serve.out" 2> "$smoke/serve.err" &
serve_pid=$!
base=""
for _ in $(seq 1 100); do
	base=$(sed -n 's#^pcstall-serve: listening on \(http://.*\)$#\1#p' "$smoke/serve.out")
	[ -n "$base" ] && break
	sleep 0.1
done
if [ -z "$base" ]; then
	echo "server smoke: server never announced its address" >&2
	cat "$smoke/serve.err" >&2
	exit 1
fi
job=$(curl -sf -X POST "$base/v1/sim?async=1" \
	-d '{"app":"comd","design":"PCSTALL"}' | sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n 1)
if [ -z "$job" ]; then
	echo "server smoke: async submit returned no job id" >&2
	cat "$smoke/serve.err" >&2
	exit 1
fi
status=""
for _ in $(seq 1 150); do
	status=$(curl -sf "$base/v1/jobs/$job" | sed -n 's/.*"status": "\([a-z]*\)".*/\1/p' | head -n 1)
	[ "$status" = done ] && break
	case "$status" in error|cancelled)
		echo "server smoke: job settled as $status" >&2
		curl -sf "$base/v1/jobs/$job" >&2 || true
		exit 1
	esac
	sleep 0.2
done
if [ "$status" != done ]; then
	echo "server smoke: job never completed (last status: ${status:-none})" >&2
	cat "$smoke/serve.err" >&2
	exit 1
fi
kill -TERM "$serve_pid"
serve_status=0
wait "$serve_pid" || serve_status=$?
if [ "$serve_status" != 0 ]; then
	echo "server smoke: SIGTERM drain exited $serve_status, want 0" >&2
	cat "$smoke/serve.err" >&2
	exit 1
fi
if [ ! -s "$smoke/serve-cache/manifest.json" ] || ! grep -q "\"$job\"" "$smoke/serve-cache/manifest.json"; then
	echo "server smoke: drained manifest missing or does not record job $job" >&2
	exit 1
fi
echo "    served job $job completed over HTTP; drain flushed the manifest"

echo "==> load smoke (pcstall-load: open-loop mixes, zero sheds/errors, BENCH schema)"
# A short deterministic pcstall-load run per class family (cached-heavy,
# cold-heavy, figure-lane) against a local server. At these offered
# rates no lane saturates, so the lane contract is: zero sheds on every
# class (-max-shed 0) and zero harness errors / digest mismatches
# (pcstall-load exits 1 on either). The accumulated BENCH file must
# round-trip the schema validator, as must the checked-in curves.
go build -o "$smoke/pcstall-load" ./cmd/pcstall-load
"$smoke/pcstall-serve" -addr 127.0.0.1:0 -cus 4 -scale 0.3 -apps comd,hpgmg -j 2 \
	-cache-dir "$smoke/load-cache" > "$smoke/loadsrv.out" 2> "$smoke/loadsrv.err" &
loadsrv_pid=$!
load_base=""
for _ in $(seq 1 100); do
	load_base=$(sed -n 's#^pcstall-serve: listening on \(http://.*\)$#\1#p' "$smoke/loadsrv.out")
	[ -n "$load_base" ] && break
	sleep 0.1
done
if [ -z "$load_base" ]; then
	echo "load smoke: server never announced its address" >&2
	cat "$smoke/loadsrv.err" >&2
	exit 1
fi
for mixspec in "cachehot 30" "unique 10" "figlane 5"; do
	mix=${mixspec% *}
	rate=${mixspec#* }
	if ! "$smoke/pcstall-load" -targets "$load_base" -mix "$mix" -rate "$rate" \
		-duration 2s -seed 1 -apps comd,hpgmg -figures 10 -timeout 120s \
		-label ci-smoke -max-shed 0 -out "$smoke/BENCH_load_smoke.json" \
		> "$smoke/load.$mix.out" 2> "$smoke/load.$mix.err"; then
		echo "load smoke: mix $mix failed (harness errors, corruption, or sheds)" >&2
		cat "$smoke/load.$mix.out" "$smoke/load.$mix.err" >&2
		exit 1
	fi
done
"$smoke/pcstall-load" -validate "$smoke/BENCH_load_smoke.json" > /dev/null
"$smoke/pcstall-load" -validate BENCH_serve.json > /dev/null
kill -TERM "$loadsrv_pid" 2>/dev/null || true
wait "$loadsrv_pid" 2>/dev/null || true
echo "    three mixes clean (no sheds, no errors); BENCH schema validates"

echo "==> distributed smoke (two-backend fleet; byte-identical figures; survives a killed worker)"
# A -backends campaign must produce byte-identical figure output and the
# same manifest job set as the serial reference — including when one
# backend is killed mid-run and its jobs are stolen by the survivor.
start_backend() {
	bname=$1
	shift
	"$smoke/pcstall-serve" -addr 127.0.0.1:0 -cus 4 -scale 0.3 -j 2 "$@" \
		> "$smoke/$bname.out" 2> "$smoke/$bname.err" &
	backend_pid=$!
	backend_base=""
	for _ in $(seq 1 100); do
		backend_base=$(sed -n 's#^pcstall-serve: listening on \(http://.*\)$#\1#p' "$smoke/$bname.out")
		[ -n "$backend_base" ] && break
		sleep 0.1
	done
	if [ -z "$backend_base" ]; then
		echo "distributed smoke: backend $bname never announced its address" >&2
		cat "$smoke/$bname.err" >&2
		exit 1
	fi
}
start_backend w1 -trace-out "$smoke/w1.trace.json"; w1_pid=$backend_pid; w1_base=$backend_base
start_backend w2 -trace-out "$smoke/w2.trace.json"; w2_pid=$backend_pid; w2_base=$backend_base
"$smoke/pcstall-exp" $smoke_flags -backends "$w1_base,$w2_base" -trace-out "$smoke/dist.trace.json" \
	-cache-dir "$smoke/dist" 1a > "$smoke/dist.out" 2> "$smoke/dist.err"
if ! cmp -s "$smoke/ref.out" "$smoke/dist.out"; then
	echo "distributed smoke: fleet output differs from serial reference" >&2
	diff "$smoke/ref.out" "$smoke/dist.out" >&2 || true
	exit 1
fi
grep -o '"key": "[^"]*"' "$smoke/ref/manifest.json" | sort > "$smoke/ref.keys"
grep -o '"key": "[^"]*"' "$smoke/dist/manifest.json" | sort > "$smoke/dist.keys"
if ! cmp -s "$smoke/ref.keys" "$smoke/dist.keys"; then
	echo "distributed smoke: fleet manifest job set differs from serial reference" >&2
	diff "$smoke/ref.keys" "$smoke/dist.keys" >&2 || true
	exit 1
fi
if ! grep -q '"source": "remote:' "$smoke/dist/manifest.json"; then
	echo "distributed smoke: no job carries remote provenance; fleet never ran anything" >&2
	exit 1
fi
kill "$w1_pid" "$w2_pid" 2>/dev/null || true
wait "$w1_pid" 2>/dev/null || true
wait "$w2_pid" 2>/dev/null || true
echo "    fleet campaign byte-identical to serial reference (figures and manifest job set)"
# The drained backends and the coordinator each exported their flight
# recorder. The three files must parse, every span's parent must resolve
# somewhere in the set, and at least one trace ID must cross a process
# boundary (the X-Pcstall-Trace stitch).
"$smoke/tracecheck" -require-cross \
	"$smoke/dist.trace.json" "$smoke/w1.trace.json" "$smoke/w2.trace.json" || {
	echo "distributed smoke: trace export failed validation" >&2
	exit 1
}
echo "    distributed traces stitch across coordinator and backends"
# Fresh backends (empty caches, so jobs genuinely re-run), one killed
# mid-campaign: the coordinator must steal its jobs and still produce
# identical bytes.
start_backend w3; w3_pid=$backend_pid; w3_base=$backend_base
start_backend w4; w4_pid=$backend_pid; w4_base=$backend_base
"$smoke/pcstall-exp" $smoke_flags -backends "$w3_base,$w4_base" -trace-out "$smoke/dist2.trace.json" \
	-cache-dir "$smoke/dist2" 1a > "$smoke/dist2.out" 2> "$smoke/dist2.err" &
dist_pid=$!
sleep 1
kill_landed=0
if kill -KILL "$w3_pid" 2>/dev/null; then
	kill_landed=1
	wait "$w3_pid" 2>/dev/null || true
else
	echo "    note: campaign finished before the backend kill landed"
fi
dist_status=0
wait "$dist_pid" || dist_status=$?
if [ "$dist_status" != 0 ]; then
	echo "distributed smoke: campaign failed ($dist_status) after a backend was killed" >&2
	cat "$smoke/dist2.err" >&2
	exit 1
fi
if ! cmp -s "$smoke/ref.out" "$smoke/dist2.out"; then
	echo "distributed smoke: output diverged after a backend was killed mid-run" >&2
	diff "$smoke/ref.out" "$smoke/dist2.out" >&2 || true
	exit 1
fi
kill "$w4_pid" 2>/dev/null || true
wait "$w4_pid" 2>/dev/null || true
echo "    campaign survived a killed backend with byte-identical output"
# The coordinator's trace must record the recovery: a job that was in
# flight on the killed backend is requeued and then stolen by the
# survivor (or degraded to the local lane), as span events on its
# dist.dispatch span.
"$smoke/tracecheck" "$smoke/dist2.trace.json" > /dev/null
if [ "$kill_landed" = 1 ]; then
	if ! "$smoke/tracecheck" -require-event steal "$smoke/dist2.trace.json" > /dev/null 2>&1 &&
		! "$smoke/tracecheck" -require-event requeue "$smoke/dist2.trace.json" > /dev/null 2>&1; then
		echo "distributed smoke: killed-backend trace records neither a steal nor a requeue event" >&2
		exit 1
	fi
	echo "    killed-backend recovery visible in the coordinator's trace"
fi

echo "==> netchaos smoke (campaign through a fault-injecting proxy; byte-identical figures)"
# A campaign where one backend sits behind pcstall-netchaos — seeded
# refusals, latency, stalls, truncations, bit flips, resets, injected
# errors on every sim exchange — must still complete with figures
# byte-identical to the serial reference. The digest check catches
# corruption, the body budget bounds stalls, and re-steal moves the job
# to the clean worker; nothing corrupted may settle.
go build -o "$smoke/pcstall-netchaos" ./cmd/pcstall-netchaos
start_backend w5; w5_pid=$backend_pid; w5_base=$backend_base
start_backend w6; w6_pid=$backend_pid; w6_base=$backend_base
"$smoke/pcstall-netchaos" -listen 127.0.0.1:0 -target "$w5_base" \
	-faults level=0.35,seed=42 > "$smoke/ncproxy.out" 2> "$smoke/ncproxy.err" &
ncproxy_pid=$!
nc_base=""
for _ in $(seq 1 100); do
	nc_base=$(sed -n 's#^pcstall-netchaos: listening on \(http://[^ ]*\) .*#\1#p' "$smoke/ncproxy.out")
	[ -n "$nc_base" ] && break
	sleep 0.1
done
if [ -z "$nc_base" ]; then
	echo "netchaos smoke: proxy never announced its address" >&2
	cat "$smoke/ncproxy.err" >&2
	exit 1
fi
if ! "$smoke/pcstall-exp" $smoke_flags -backends "$nc_base,$w6_base" -backend-body-timeout 2s \
	-cache-dir "$smoke/nc" 1a > "$smoke/nc.out" 2> "$smoke/nc.err"; then
	echo "netchaos smoke: campaign failed under fault injection" >&2
	cat "$smoke/nc.err" >&2
	exit 1
fi
if ! cmp -s "$smoke/ref.out" "$smoke/nc.out"; then
	echo "netchaos smoke: faulted-fleet output differs from serial reference" >&2
	diff "$smoke/ref.out" "$smoke/nc.out" >&2 || true
	exit 1
fi
nc_stats=$(curl -sf "$nc_base/netchaos/stats")
nc_exchanges=$(echo "$nc_stats" | sed -n 's/.*"exchanges": \([0-9]*\).*/\1/p' | head -n 1)
nc_clean=$(echo "$nc_stats" | sed -n 's/.*"clean": \([0-9]*\).*/\1/p' | head -n 1)
nc_injected=$(( ${nc_exchanges:-0} - ${nc_clean:-0} ))
if [ -z "$nc_injected" ] || [ "$nc_injected" -lt 1 ]; then
	echo "netchaos smoke: proxy injected no faults (stats: $nc_stats) — the invariant was not exercised" >&2
	exit 1
fi
kill "$w5_pid" "$w6_pid" "$ncproxy_pid" 2>/dev/null || true
wait "$w5_pid" 2>/dev/null || true
wait "$w6_pid" 2>/dev/null || true
wait "$ncproxy_pid" 2>/dev/null || true
echo "    campaign absorbed $nc_injected injected wire faults with byte-identical output"

echo "==> bench smoke (telemetry-off runner vs BENCH_telemetry.json)"
# The disabled-telemetry path is the one every simulation pays. Absolute
# ns/op is useless on this shared box (machine speed drifts 30% between
# sessions), so the gate is load-invariant: the Off/On ratio, measured
# in one invocation (machine speed cancels) with best-of-3 per variant
# to filter transient neighbor load, must not regress >10% against the
# ratio recorded in BENCH_telemetry.json. The strict (2%) absolute
# comparison lives in that file's interleaved-worktree protocol.
ref_off=$(sed -n 's/.*"run_telemetry_off_ns_per_op": \([0-9]*\).*/\1/p' BENCH_telemetry.json)
ref_on=$(sed -n 's/.*"run_telemetry_on_ns_per_op": \([0-9]*\).*/\1/p' BENCH_telemetry.json)
bench_out=$(go test -run '^$' -bench 'BenchmarkRunTelemetry(Off|On)$' -benchtime 5x -count 3 ./internal/dvfs/)
got_off=$(echo "$bench_out" | awk '/BenchmarkRunTelemetryOff/ {v = int($3); if (min == 0 || v < min) min = v} END {print min}')
got_on=$(echo "$bench_out" | awk '/BenchmarkRunTelemetryOn/ {v = int($3); if (min == 0 || v < min) min = v} END {print min}')
if [ -z "$ref_off" ] || [ -z "$ref_on" ] || [ -z "$got_off" ] || [ -z "$got_on" ]; then
	echo "bench smoke: missing reference (${ref_off:-?}/${ref_on:-?}) or measurement (${got_off:-?}/${got_on:-?})" >&2
	exit 1
fi
echo "    reference off/on ${ref_off}/${ref_on} ns/op, measured ${got_off}/${got_on} ns/op"
# got_off/got_on <= (ref_off/ref_on) * 1.10, cross-multiplied to stay integral.
if ! awk -v go="$got_off" -v gn="$got_on" -v ro="$ref_off" -v rn="$ref_on" \
	'BEGIN { exit !(go * rn * 100 <= gn * ro * 110) }'; then
	echo "bench smoke: disabled-telemetry path regressed >10% relative to enabled (off/on $got_off/$got_on vs reference $ref_off/$ref_on)" >&2
	exit 1
fi

echo "CI OK"
