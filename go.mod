module pcstall

go 1.22
