package pcstall_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (DESIGN.md §4 maps each to its modules). Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark reproduces one artifact and prints its rows on the first
// iteration, so the benchmark log doubles as the reproduction record
// (EXPERIMENTS.md compares these rows with the paper's). Results are
// cached in a shared suite: later benchmarks reuse earlier runs exactly
// the way the figures share runs in the paper.
//
// The platform is the scaled default (8 CUs, per-CU V/f domains); pass a
// bigger -cus to cmd/pcstall-exp for paper-scale runs.

import (
	"os"
	"runtime"
	"sync"
	"testing"

	"pcstall/internal/exp"
)

var (
	benchSuiteOnce sync.Once
	benchSuite     *exp.Suite
)

func suite() *exp.Suite {
	benchSuiteOnce.Do(func() {
		cfg := exp.DefaultConfig()
		cfg.CUs = 8
		cfg.Scale = 0.5
		cfg.TraceEpochs = 32
		benchSuite = exp.NewSuite(cfg)
	})
	return benchSuite
}

func runArtifact(b *testing.B, gen func() *exp.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t := gen()
		if i == 0 {
			t.Fprint(os.Stdout)
		}
	}
}

// --- Characterization (paper §3-§4) ---

func BenchmarkFigure5(b *testing.B)   { runArtifact(b, suite().Figure5) }
func BenchmarkFigure6(b *testing.B)   { runArtifact(b, suite().Figure6) }
func BenchmarkFigure7a(b *testing.B)  { runArtifact(b, suite().Figure7a) }
func BenchmarkFigure7b(b *testing.B)  { runArtifact(b, suite().Figure7b) }
func BenchmarkFigure8(b *testing.B)   { runArtifact(b, suite().Figure8) }
func BenchmarkFigure10(b *testing.B)  { runArtifact(b, suite().Figure10) }
func BenchmarkFigure11a(b *testing.B) { runArtifact(b, suite().Figure11a) }
func BenchmarkFigure11b(b *testing.B) { runArtifact(b, suite().Figure11b) }

// --- Tables ---

func BenchmarkTable1(b *testing.B) { runArtifact(b, suite().Table1) }
func BenchmarkTable2(b *testing.B) { runArtifact(b, suite().Table2) }
func BenchmarkTable3(b *testing.B) { runArtifact(b, suite().Table3) }

// --- Evaluation (paper §6) ---

func BenchmarkFigure14(b *testing.B)  { runArtifact(b, suite().Figure14) }
func BenchmarkFigure15(b *testing.B)  { runArtifact(b, suite().Figure15) }
func BenchmarkFigure16(b *testing.B)  { runArtifact(b, suite().Figure16) }
func BenchmarkFigure1a(b *testing.B)  { runArtifact(b, suite().Figure1a) }
func BenchmarkFigure1b(b *testing.B)  { runArtifact(b, suite().Figure1b) }
func BenchmarkFigure17(b *testing.B)  { runArtifact(b, suite().Figure17) }
func BenchmarkFigure18a(b *testing.B) { runArtifact(b, suite().Figure18a) }
func BenchmarkFigure18b(b *testing.B) { runArtifact(b, suite().Figure18b) }

// --- Ablations (DESIGN.md §4) ---

func BenchmarkAblationTableSize(b *testing.B)     { runArtifact(b, suite().AblTableSize) }
func BenchmarkAblationOffsetBits(b *testing.B)    { runArtifact(b, suite().AblOffsetBits) }
func BenchmarkAblationTableScope(b *testing.B)    { runArtifact(b, suite().AblTableScope) }
func BenchmarkAblationAgeCoef(b *testing.B)       { runArtifact(b, suite().AblAgeCoef) }
func BenchmarkAblationAlphaFallback(b *testing.B) { runArtifact(b, suite().AblAlphaFallback) }
func BenchmarkAblationOracleSamples(b *testing.B) { runArtifact(b, suite().AblOracleSamples) }
func BenchmarkAblationEstimators(b *testing.B)    { runArtifact(b, suite().AblEstimators) }
func BenchmarkAblationEpochMode(b *testing.B)     { runArtifact(b, suite().AblEpochMode) }

// --- Extensions (related-work predictor families, §2.4) ---

func BenchmarkExtensionFamilies(b *testing.B) { runArtifact(b, suite().Extensions) }

// --- Orchestrated full sweep (internal/orchestrate) ---

// fullSweep cold-regenerates the evaluation figures on a fresh suite each
// iteration, so the measured time is end-to-end wall clock for the given
// worker count — nothing carries over from previous iterations. The
// serial/parallel pair records the orchestrator's speedup
// (BENCH_orchestrate.json); on an N-core machine the parallel variant
// should approach min(independent runs, N)x.
func fullSweep(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := exp.DefaultConfig()
		cfg.CUs = 2
		cfg.Scale = 0.25
		cfg.TraceEpochs = 12
		cfg.Apps = []string{"comd", "xsbench"}
		cfg.Workers = workers
		s := exp.NewSuite(cfg)
		s.Figure14()
		s.Figure15()
		s.Figure16()
		s.Figure17()
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullSweepSerial(b *testing.B)   { fullSweep(b, 1) }
func BenchmarkFullSweepParallel(b *testing.B) { fullSweep(b, runtime.NumCPU()) }
