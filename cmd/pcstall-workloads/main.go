// Command pcstall-workloads inspects the synthetic workload suite: the
// TABLE II inventory, per-kernel static instruction mixes, and (with
// -profile) a quick dynamic profile of each app on a small GPU.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"pcstall/internal/clock"
	"pcstall/internal/sim"
	"pcstall/internal/version"
	"pcstall/internal/workload"
)

func main() {
	cus := flag.Int("cus", 8, "GPU size used for grid sizing")
	scale := flag.Float64("scale", 1.0, "workload duration scale")
	kernels := flag.Bool("kernels", false, "print per-kernel static mixes")
	profile := flag.Bool("profile", false, "run each app briefly and print dynamic stats")
	maxCycles := flag.Int64("max-cycles", 0, "per-app CU-cycle budget for -profile; the watchdog flags apps that exhaust it (0 = unbounded)")
	showVersion := flag.Bool("version", false, "print the simulator version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String())
		return
	}

	gen := workload.DefaultGenConfig(*cus)
	gen.Scale = *scale

	// With -profile each app runs a short simulation; honour Ctrl-C
	// between apps so the sweep stops at a clean table row.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("%-8s %-4s %7s %8s", "app", "cls", "kernels", "launches")
	if *profile {
		fmt.Printf(" %10s %12s %8s %7s", "sim time", "instructions", "IPC/CU", "L2 hit")
	}
	fmt.Println()

	for _, name := range workload.Names() {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "pcstall-workloads: interrupted")
			os.Exit(130)
		}
		app, err := workload.Build(name, gen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcstall-workloads: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-8s %-4s %7d %8d", app.Name, app.Class, app.UniqueKernels(), len(app.Launches))
		if *profile {
			cfg := sim.DefaultConfig(*cus)
			cfg.MaxCycles = *maxCycles
			g, err := sim.New(cfg, app.Kernels, app.Launches)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pcstall-workloads: %v\n", err)
				os.Exit(1)
			}
			g.RunUntil(5 * clock.Millisecond)
			us := float64(g.Now) / 1e6
			cycles := us * float64(cfg.InitFreq) // MHz * us = cycles
			ipc := float64(g.TotalCommitted) / cycles / float64(*cus)
			fmt.Printf(" %8.1fus %12d %8.3f %6.1f%%",
				us, g.TotalCommitted, ipc, g.Msys.L2HitRate()*100)
			switch {
			case g.Stuck != nil:
				// The structured diagnosis names the CU/wave/PC, which
				// is exactly what a workload author debugging a
				// generator change needs.
				fmt.Printf(" (STUCK: %v)", g.Stuck)
			case !g.Finished:
				fmt.Printf(" (capped)")
			}
		}
		fmt.Println()
		if *kernels {
			for _, k := range app.Kernels {
				st := k.Program.Stats()
				fmt.Printf("    %-18s %4d instrs: %3d compute %3d loads %3d stores %2d waits %2d barriers %2d branches (depth %d) grid %dx%d\n",
					k.Program.Name, st.Total, st.Compute, st.Loads, st.Stores,
					st.WaitCnts, st.Barriers, st.Branches, st.LoopDepth,
					k.Workgroups, k.WavesPerWG)
			}
		}
	}
}
