// Command pcstall-sim runs one workload under one DVFS design and prints
// the run summary: completion time, energy, EDP/ED²P, prediction accuracy
// and frequency residency.
//
// Examples:
//
//	pcstall-sim -app comd -design PCSTALL
//	pcstall-sim -app dgemm -design ORACLE -epoch-us 10 -objective EDP
//	pcstall-sim -app xsbench -design STATIC-1300 -cus 16 -cus-per-domain 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"pcstall"
	"pcstall/internal/tracing"
)

func main() {
	app := flag.String("app", "comd", "workload name (see pcstall-workloads)")
	design := flag.String("design", "PCSTALL", "DVFS design (TABLE III name or STATIC-<MHz>)")
	cus := flag.Int("cus", 8, "number of compute units")
	cusPerDomain := flag.Int("cus-per-domain", 1, "CUs per V/f domain")
	epochUs := flag.Int64("epoch-us", 1, "DVFS epoch in microseconds")
	objective := flag.String("objective", "ED2P", "objective: EDP, ED2P, or PERF<pct> (e.g. PERF5)")
	scale := flag.Float64("scale", 1.0, "workload duration scale")
	seed := flag.Uint64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "print per-epoch records")
	epochTrace := flag.String("trace", "", "write a per-epoch trace to this file (.jsonl or .csv)")
	stats := flag.Bool("stats", false, "print the run's telemetry summary (cycles, stalls, cache hits, prediction error)")
	chaosSpec := flag.String("chaos", "", "fault-injection spec, e.g. 'noise=0.1,tfail=0.05,seed=7' or 'level=0.2' (empty = no faults)")
	maxCycles := flag.Int64("max-cycles", 0, "CU-cycle budget; the watchdog stops runs that exhaust it (0 = unbounded)")
	traceOut := flag.String("trace-out", "", "write the run's span trace to FILE in Chrome trace-event format (distinct from -trace, the per-epoch record)")
	showVersion := flag.Bool("version", false, "print the simulator version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(pcstall.Version())
		return
	}

	cfg := pcstall.DefaultConfig(*cus)
	cfg.GPU.Domains.CUsPerDomain = *cusPerDomain
	cfg.GPU.Seed = *seed
	cfg.Epoch = pcstall.Time(*epochUs) * pcstall.Microsecond
	cfg.Scale = *scale
	cfg.Record = *verbose
	cfg.MaxCycles = *maxCycles
	if *chaosSpec != "" {
		ch, err := pcstall.ParseChaos(*chaosSpec)
		if err != nil {
			fatalf("%v", err)
		}
		cfg.Chaos = ch
	}

	switch {
	case *objective == "EDP":
		cfg.Objective = pcstall.EDP
	case *objective == "ED2P":
		cfg.Objective = pcstall.ED2P
	case strings.HasPrefix(*objective, "PERF"):
		var pct float64
		if _, err := fmt.Sscanf(*objective, "PERF%f", &pct); err != nil {
			fatalf("bad objective %q: %v", *objective, err)
		}
		cfg.Objective = pcstall.FixedPerf(pct / 100)
	default:
		fatalf("unknown objective %q (EDP, ED2P, PERF<pct>)", *objective)
	}

	var traceClose func() error
	if *epochTrace != "" {
		f, err := os.Create(*epochTrace)
		if err != nil {
			fatalf("%v", err)
		}
		if strings.HasSuffix(*epochTrace, ".csv") {
			cfg.Trace = pcstall.NewCSVTrace(f)
		} else {
			cfg.Trace = pcstall.NewJSONLTrace(f)
		}
		traceClose = func() error {
			// The recorder buffers; flush it before the file so a failed
			// final flush is reported, not silently dropped.
			if c, ok := cfg.Trace.(io.Closer); ok {
				if err := c.Close(); err != nil {
					f.Close()
					return err
				}
			}
			return f.Close()
		}
	}

	var reg *pcstall.Metrics
	if *stats {
		reg = pcstall.NewMetrics()
		cfg.Metrics = reg
	}

	// SIGINT/SIGTERM stops the run at the next epoch boundary instead of
	// killing the process mid-write (the trace recorder still flushes).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var tracer *tracing.Tracer
	if *traceOut != "" {
		tracer = tracing.New("pcstall-sim", tracing.DefaultCapacity)
		ctx = tracing.WithTracer(ctx, tracer)
	}
	cfg.Ctx = ctx

	res, err := pcstall.RunApp(*app, *design, cfg)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			if traceClose != nil {
				if cerr := traceClose(); cerr != nil {
					fmt.Fprintf(os.Stderr, "pcstall-sim: trace %s: %v\n", *epochTrace, cerr)
				}
			}
			fmt.Fprintf(os.Stderr, "pcstall-sim: interrupted after %d epochs\n", res.Epochs)
			os.Exit(130)
		}
		var de *pcstall.DeadlockError
		if errors.As(err, &de) {
			// Print the structured diagnosis plus whatever partial
			// result exists — a deadlocked run is an answer, not noise.
			fmt.Fprintf(os.Stderr, "pcstall-sim: watchdog: %v\n", de)
			fmt.Fprintf(os.Stderr, "pcstall-sim: partial result: %d epochs, %d instructions committed\n",
				res.Epochs, res.Totals.Committed)
			os.Exit(3)
		}
		fatalf("%v", err)
	}
	if traceClose != nil {
		if err := traceClose(); err != nil {
			fatalf("trace %s: %v", *epochTrace, err)
		}
	}
	if tracer != nil {
		if err := tracer.Recorder().WriteChromeFile(*traceOut); err != nil {
			fatalf("%v", err)
		}
	}

	fmt.Printf("app        %s\n", *app)
	fmt.Printf("design     %s (objective %s)\n", res.Policy, res.Objective)
	fmt.Printf("epochs     %d x %dus\n", res.Epochs, *epochUs)
	fmt.Printf("time       %.2f us%s\n", res.Totals.TimeS*1e6, truncNote(res.Truncated))
	fmt.Printf("energy     %.2f uJ\n", res.Totals.EnergyJ*1e6)
	fmt.Printf("EDP        %.4g J*s\n", res.Totals.EDP())
	fmt.Printf("ED2P       %.4g J*s^2\n", res.Totals.ED2P())
	fmt.Printf("committed  %d instructions\n", res.Totals.Committed)
	if res.AccuracyN > 0 {
		fmt.Printf("accuracy   %.3f over %d domain-epochs\n", res.Accuracy, res.AccuracyN)
	}
	fmt.Printf("transitions %d\n", res.Transitions)
	fmt.Printf("residency  ")
	grid := cfg.GPU.Grid
	for k, share := range res.Residency {
		if share > 0.001 {
			fmt.Printf("%v:%.1f%% ", grid.State(k), share*100)
		}
	}
	fmt.Println()
	if res.Chaos != (pcstall.ChaosStats{}) {
		fmt.Printf("chaos      noisy=%d dropped=%d stale=%d tfail=%d jitter=%dps pcflip=%d\n",
			res.Chaos.NoisyCounters, res.Chaos.DroppedCUs, res.Chaos.StaleCUs,
			res.Chaos.FailedTransitions, res.Chaos.JitterPs, res.Chaos.FlippedPCs)
	}

	if *verbose {
		for i, r := range res.Records {
			fmt.Printf("epoch %4d  d0 f=%v pred=%.0f actual=%.0f energy=%.3guJ\n",
				i, r.Freq[0], r.PredI[0], r.ActualI[0], r.EnergyJ*1e6)
		}
	}

	if *stats {
		fmt.Println()
		fmt.Println("telemetry:")
		reg.Snapshot().Fprint(os.Stdout)
	}
}

func truncNote(t bool) string {
	if t {
		return " (TRUNCATED at time cap)"
	}
	return ""
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pcstall-sim: "+format+"\n", args...)
	os.Exit(1)
}
