// Command pcstall-load drives pcstall-serve with deterministic
// open-loop traffic and reports per-class throughput, latency
// percentiles, shed rate, and 304 rate against the offered load.
//
// Usage:
//
//	pcstall-load -targets http://127.0.0.1:8080 -mix cachehot -rate 50 -duration 10s
//	pcstall-load -validate BENCH_serve.json
//
// One invocation is one offered-load point for one mix; sweep rates
// (and server variants via -label) across invocations with -append to
// accumulate curves into one BENCH_serve.json. The arrival schedule is
// fixed up front from -seed — the harness keeps offering load at the
// scheduled instants even while the server sheds, so shed rate is
// measured against a truthful offered rate rather than a client that
// politely backed off.
//
// Exit status: 0 on a clean run; 1 when the run recorded harness errors
// or digest corruption, when -max-shed is exceeded, or when validation
// fails; 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pcstall/internal/load"
	"pcstall/internal/version"
)

func main() {
	targets := flag.String("targets", "http://127.0.0.1:8080", "comma-separated pcstall-serve base URLs (round-robin)")
	mix := flag.String("mix", "", "traffic mix: "+strings.Join(load.MixNames(), ", "))
	rate := flag.Float64("rate", 20, "offered arrival rate, requests/second")
	duration := flag.Duration("duration", 5*time.Second, "scheduled arrival window")
	seed := flag.Uint64("seed", 1, "schedule and request-sequence seed")
	apps := flag.String("apps", "comd", "comma-separated workloads for sim configs")
	figures := flag.String("figures", "10", "comma-separated figure ids for figure-lane traffic")
	label := flag.String("label", "", "server-variant label recorded in the report (e.g. baseline, lru+lanes)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request timeout")
	out := flag.String("out", "", "append the report to this BENCH_serve.json (created if absent)")
	maxShed := flag.Int("max-shed", -1, "fail (exit 1) if total sheds exceed this (-1 disables the check)")
	validate := flag.String("validate", "", "validate an existing BENCH_serve.json and exit")
	listMixes := flag.Bool("mixes", false, "list the built-in mixes and exit")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String())
		return
	}
	if *listMixes {
		for _, name := range load.MixNames() {
			fmt.Printf("%-9s %s\n", name, load.Mixes[name].Desc)
		}
		return
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "pcstall-load: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}
	if *validate != "" {
		b, err := load.ReadBench(*validate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcstall-load: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("pcstall-load: %s: %d runs, schema %s, valid\n", *validate, len(b.Runs), b.Schema)
		return
	}
	if *mix == "" {
		fmt.Fprintf(os.Stderr, "pcstall-load: -mix is required (available: %s)\n", strings.Join(load.MixNames(), ", "))
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := load.Run(ctx, load.Config{
		Targets:  splitList(*targets),
		Mix:      *mix,
		Rate:     *rate,
		Duration: *duration,
		Seed:     *seed,
		Apps:     splitList(*apps),
		Figures:  splitList(*figures),
		Timeout:  *timeout,
		Label:    *label,
		Log:      os.Stderr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcstall-load: %v\n", err)
		os.Exit(2)
	}
	rep.Fprint(os.Stdout)
	if err := rep.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "pcstall-load: report failed validation: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		if err := load.AppendBench(*out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "pcstall-load: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pcstall-load: appended to %s\n", *out)
	}
	fail := false
	if rep.Errors > 0 || rep.Corrupt > 0 {
		fmt.Fprintf(os.Stderr, "pcstall-load: %d errors, %d corrupt responses\n", rep.Errors, rep.Corrupt)
		fail = true
	}
	if *maxShed >= 0 {
		if shed := rep.TotalShed(); shed > *maxShed {
			fmt.Fprintf(os.Stderr, "pcstall-load: %d sheds exceed -max-shed %d\n", shed, *maxShed)
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
}

// splitList splits a comma-separated flag, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
