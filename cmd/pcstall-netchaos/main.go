// Command pcstall-netchaos is a fault-injecting reverse proxy for
// black-box testing of distributed campaigns. It sits between a
// coordinator (pcstall-exp -backends) and one pcstall-serve worker and
// corrupts the wire according to a seeded, reproducible schedule:
// refused connections, injected latency, mid-body stalls, truncated
// and bit-flipped bodies, synthetic 5xx/429, connection resets,
// duplicated replies.
//
// Usage:
//
//	pcstall-netchaos -listen 127.0.0.1:0 -target http://127.0.0.1:8080 \
//	    -faults level=0.3,seed=42
//
// Only POST /v1/sim exchanges are faulted; health and version probes
// pass clean so fleet admission and healing stay observable. The live
// fault tally is served as JSON at /netchaos/stats.
//
// The point of the exercise: a campaign run through this proxy must
// either complete with figures byte-identical to a serial run, or fail
// with a typed error — never hang, never emit corrupted results.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"time"

	"pcstall/internal/netchaos"
	"pcstall/internal/version"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "proxy listen address (port 0 picks a free port)")
	target := flag.String("target", "", "base URL of the pcstall-serve worker to front (required)")
	faults := flag.String("faults", "level=0.25,seed=1", "netchaos fault spec, e.g. 'level=0.3,seed=42' or 'flip=0.2,stall=0.1,seed=7'")
	showVersion := flag.Bool("version", false, "print the simulator version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String())
		return
	}
	if *target == "" {
		fmt.Fprintln(os.Stderr, "pcstall-netchaos: -target is required")
		os.Exit(2)
	}
	if _, err := url.Parse(*target); err != nil {
		fmt.Fprintf(os.Stderr, "pcstall-netchaos: -target: %v\n", err)
		os.Exit(2)
	}
	cfg, err := netchaos.Parse(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcstall-netchaos: -faults: %v\n", err)
		os.Exit(2)
	}
	eng := netchaos.NewEngine(cfg)
	proxy := netchaos.NewProxy(*target, eng, nil)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcstall-netchaos: listen %s: %v\n", *listen, err)
		os.Exit(1)
	}
	// The resolved address goes to stdout so scripts (and the CI smoke)
	// can discover a :0-assigned port, mirroring pcstall-serve.
	fmt.Printf("pcstall-netchaos: listening on http://%s -> %s (%s)\n", ln.Addr(), *target, cfg.String())
	srv := &http.Server{
		Handler:           proxy,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintf(os.Stderr, "pcstall-netchaos: %v\n", err)
		os.Exit(1)
	}
}
