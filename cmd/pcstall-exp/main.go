// Command pcstall-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	pcstall-exp [flags] [id ...]
//
// Each id is a figure or table identifier: 1a 1b 5 6 7a 7b 8 10 11a 11b
// t1 t2 t3 14 15 16 17 18a 18b, or "all". With no ids it prints the list.
// "f1" (the fault-injection robustness sweep) runs only when named
// explicitly — it is this reproduction's own study, not a paper figure,
// so "all" keeps producing exactly the paper's artifact set.
//
// Independent simulation runs are sharded across -j workers (default:
// all CPUs) and cached: with -cache-dir, results persist as JSONL and a
// rerun skips every already-computed cell; a run manifest recording the
// job list, hashes, timings, and cache hits is written alongside.
//
// Campaigns are interruption-safe: SIGINT/SIGTERM triggers a graceful
// drain — in-flight simulations wind down at their next epoch boundary,
// completed results are already on disk, and the manifest is flushed —
// after which rerunning with -resume completes only the missing jobs
// and produces byte-identical figure output. A second signal aborts
// immediately. -timeout and -retries bound individual jobs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"pcstall/internal/chaos"
	"pcstall/internal/clock"
	"pcstall/internal/dist"
	"pcstall/internal/exp"
	"pcstall/internal/netchaos"
	"pcstall/internal/orchestrate"
	"pcstall/internal/telemetry"
	"pcstall/internal/tracing"
	"pcstall/internal/version"
)

func main() {
	cfg := exp.DefaultConfig()
	cus := flag.Int("cus", cfg.CUs, "number of compute units (paper: 64)")
	scale := flag.Float64("scale", cfg.Scale, "workload duration scale")
	seed := flag.Uint64("seed", cfg.Seed, "random seed")
	apps := flag.String("apps", "", "comma-separated workload subset (default: all)")
	traceEpochs := flag.Int("trace-epochs", cfg.TraceEpochs, "epochs sampled per characterization trace")
	maxMs := flag.Int64("max-ms", int64(cfg.MaxTime/clock.Millisecond), "per-run simulated time cap (ms)")
	timing := flag.Bool("time", false, "print wall-clock time per experiment")
	workers := flag.Int("j", runtime.NumCPU(), "parallel simulation workers (1 = serial; results are identical)")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent result cache (JSONL; reruns skip cached cells)")
	noCache := flag.Bool("no-cache", false, "ignore the disk cache: neither read nor write it")
	manifest := flag.String("manifest", "", "run-manifest output path (default: <cache-dir>/manifest.json when -cache-dir is set)")
	progress := flag.Bool("progress", false, "print a periodic orchestration progress line to stderr")
	metricsAddr := flag.String("metrics-addr", "", "serve live campaign telemetry on this address: Prometheus text at /metrics, expvar at /debug/vars, profiles at /debug/pprof/")
	jobTimeout := flag.Duration("timeout", 0, "per-job timeout (e.g. 5m); a hung simulation fails instead of stalling the campaign (0 = none)")
	retries := flag.Int("retries", 0, "retries per failed job (transient faults, with doubling backoff; panics are never retried)")
	resume := flag.Bool("resume", false, "resume an interrupted campaign from -cache-dir: only jobs missing from the result cache are recomputed")
	chaosSpec := flag.String("chaos", "", "fault-injection spec applied to every job, e.g. 'noise=0.1,seed=7' or 'level=0.2' (participates in cache keys)")
	maxCycles := flag.Int64("max-cycles", 0, "per-run CU-cycle budget; the watchdog fails runs that exhaust it (0 = unbounded)")
	backends := flag.String("backends", "", "comma-separated pcstall-serve base URLs; simulation jobs run on the fleet instead of in-process (results, cache, and manifest are byte-identical)")
	backendWindow := flag.Int("backend-window", 4, "max in-flight jobs per backend (the live window adapts below this by observed latency)")
	backendDialTimeout := flag.Duration("backend-dial-timeout", 0, "TCP connect budget per backend attempt (0 = default)")
	backendHeaderTimeout := flag.Duration("backend-header-timeout", 0, "response-header budget per backend attempt; sync sims compute before headers, so keep this generous (0 = default)")
	backendBodyTimeout := flag.Duration("backend-body-timeout", 0, "budget for reading a backend reply body once headers arrive; a mid-body stall fails the attempt and the job is re-stolen (0 = default)")
	netchaosSpec := flag.String("netchaos", "", "seeded network-fault spec injected into every backend exchange, e.g. 'level=0.3,seed=42' or 'flip=0.2,stall=0.1' (testing the fleet's fault recovery; figures must stay byte-identical)")
	skipMismatch := flag.Bool("skip-version-mismatch", false, "drop sim-version-mismatched backends from the fleet instead of refusing to start")
	traceOut := flag.String("trace-out", "", "write the campaign's distributed traces to this file in Chrome trace-event format (load in Perfetto / chrome://tracing)")
	showVersion := flag.Bool("version", false, "print the simulator version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String())
		return
	}

	cfg.CUs = *cus
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.TraceEpochs = *traceEpochs
	cfg.MaxTime = clock.Time(*maxMs) * clock.Millisecond
	if *apps != "" {
		cfg.Apps = strings.Split(*apps, ",")
	}
	cfg.Workers = *workers
	cfg.NoCache = *noCache
	cfg.JobTimeout = *jobTimeout
	cfg.Retries = *retries
	cfg.MaxCycles = *maxCycles
	if *chaosSpec != "" {
		// Re-canonicalize so equivalent spellings share cache keys.
		ch, err := chaos.Parse(*chaosSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcstall-exp: -chaos: %v\n", err)
			os.Exit(2)
		}
		cfg.Chaos = ch.String()
	}
	if *resume {
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "pcstall-exp: -resume requires -cache-dir (resume replays the interrupted campaign's result cache)")
			os.Exit(2)
		}
		if _, err := os.Stat(filepath.Join(*cacheDir, orchestrate.ResultsFile)); err != nil {
			fmt.Fprintf(os.Stderr, "pcstall-exp: -resume: no result cache under %s: %v\n", *cacheDir, err)
			os.Exit(2)
		}
	}
	if *cacheDir != "" {
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "pcstall-exp: cache dir: %v\n", err)
			os.Exit(1)
		}
		cfg.CacheDir = *cacheDir
	}
	if *progress {
		cfg.Progress = func(st orchestrate.Stats) {
			fmt.Fprintf(os.Stderr, "%s\n", st)
		}
	}
	// Tracing rides the campaign context: on for -trace-out (Chrome
	// export) and whenever metrics are served (-metrics-addr exposes the
	// flight recorder at /debug/traces). Off otherwise — the disabled
	// path is a single context lookup per span site.
	var tracer *tracing.Tracer
	if *traceOut != "" || *metricsAddr != "" {
		tracer = tracing.New("pcstall-exp", tracing.DefaultCapacity)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))
	cfg.Log = logger
	if *metricsAddr != "" {
		reg := telemetry.New()
		cfg.Metrics = reg
		srv, addr, err := telemetry.Serve(*metricsAddr, reg, func(mux *http.ServeMux) {
			tracing.Register(mux, tracer.Recorder())
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcstall-exp: metrics endpoint: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pcstall-exp: serving metrics at http://%s/metrics (traces at /debug/traces, pprof at /debug/pprof/)\n", addr)
	}

	// Campaign cancellation: the first SIGINT/SIGTERM starts a graceful
	// drain (queued jobs abandoned, in-flight ones wind down at the next
	// epoch boundary, manifest and cache flushed); a second aborts hard.
	ctx, cancelCampaign := context.WithCancel(context.Background())
	defer cancelCampaign()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "pcstall-exp: %v: draining campaign (completed results are safe; a second signal aborts immediately)\n", s)
		cancelCampaign()
		<-sig
		os.Exit(130)
	}()
	// The tracer propagates by context: every job span, dispatch span,
	// and injected X-Pcstall-Trace header below derives from here.
	ctx = tracing.WithTracer(ctx, tracer)
	cfg.Ctx = ctx

	if *netchaosSpec != "" && *backends == "" {
		fmt.Fprintln(os.Stderr, "pcstall-exp: -netchaos requires -backends (it faults the fleet wire, not the simulator)")
		os.Exit(2)
	}
	if *backends != "" {
		dcfg := dist.Config{
			Backends:       strings.Split(*backends, ","),
			Window:         *backendWindow,
			DialTimeout:    *backendDialTimeout,
			HeaderTimeout:  *backendHeaderTimeout,
			BodyTimeout:    *backendBodyTimeout,
			SkipMismatched: *skipMismatch,
			Metrics:        cfg.Metrics,
			Tracer:         tracer,
			Log:            logger,
		}
		if *netchaosSpec != "" {
			ncfg, err := netchaos.Parse(*netchaosSpec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pcstall-exp: -netchaos: %v\n", err)
				os.Exit(2)
			}
			eng := netchaos.NewEngine(ncfg)
			if cfg.Metrics != nil {
				eng.Publish(cfg.Metrics)
			}
			dcfg.WrapTransport = func(base http.RoundTripper) http.RoundTripper {
				return netchaos.NewTransport(base, eng)
			}
			defer func() {
				st := eng.Stats()
				fmt.Fprintf(os.Stderr, "pcstall-exp: netchaos %s: %d/%d exchanges faulted\n",
					ncfg.String(), st.Injected(), st.Exchanges)
			}()
		}
		urls := dcfg.Backends
		d, err := dist.New(dcfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcstall-exp: -backends: %v\n", err)
			os.Exit(2)
		}
		defer d.Close()
		// Version fail-safe at admission: a backend with a different
		// simulator cache version never receives a job.
		vctx, vcancel := context.WithTimeout(ctx, 10*time.Second)
		err = d.CheckVersions(vctx)
		vcancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcstall-exp: -backends: %v\n", err)
			os.Exit(2)
		}
		cfg.RunVia = d.Bind
		// The fleet overlaps far more jobs than this machine has cores:
		// widen the worker pool so dispatch, not local CPU count, is the
		// concurrency limit. Workers here only hold dispatch slots; real
		// CPU work happens on the backends (or the bounded local lane).
		if w := len(urls)**backendWindow + runtime.NumCPU(); w > cfg.Workers {
			cfg.Workers = w
		}
	}

	s := exp.NewSuite(cfg)
	defer s.Close()

	mpath := *manifest
	if mpath == "" && cfg.CacheDir != "" {
		mpath = filepath.Join(cfg.CacheDir, "manifest.json")
	}
	// flushTrace exports the flight recorder; interrupted campaigns keep
	// whatever traces completed before the drain.
	flushTrace := func() {
		if *traceOut == "" || tracer == nil {
			return
		}
		if err := tracer.Recorder().WriteChromeFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "pcstall-exp: %v\n", err)
		}
	}
	// drain flushes everything a later -resume needs: the manifest of
	// completed jobs and the cache append handle.
	drain := func() {
		if mpath != "" {
			if err := s.WriteManifest(mpath); err != nil {
				fmt.Fprintf(os.Stderr, "pcstall-exp: %v\n", err)
			}
		}
		if err := s.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "pcstall-exp: %v\n", err)
		}
		flushTrace()
	}
	// The artifact table (ids, ablation grouping, explicit-only studies)
	// lives on the Suite, shared with the pcstall-serve figure endpoint.
	artifacts := s.Artifacts()

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Println("pcstall-exp: specify experiment ids, 'all' (figures+tables), or 'ablations'. Available:")
		for _, a := range artifacts {
			fmt.Printf("  %s\n", a.ID)
		}
		os.Exit(0)
	}
	want := map[string]bool{}
	all, abl := false, false
	for _, id := range ids {
		switch id {
		case "all":
			all = true
		case "ablations":
			abl = true
		}
		want[strings.ToLower(id)] = true
	}
	start := time.Now()
	ran := 0
	for _, a := range artifacts {
		// Explicit-only studies (the fault sweep) are not paper
		// artifacts, so neither "all" nor "ablations" pulls them in.
		include := want[a.ID] || (all && !a.Ablation && !a.ExplicitOnly) || (abl && a.Ablation)
		if !include {
			continue
		}
		t0 := time.Now()
		// Figure recovers the figure methods' error panics (the harness
		// fail-fast path) back into errors; nil ctx keeps the campaign
		// context configured on the Suite.
		t, err := s.Figure(nil, a.ID)
		if err != nil {
			drain()
			st := s.Stats()
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "pcstall-exp: interrupted during %s (%d jobs completed, %d cancelled); resume with the same flags plus -resume\n",
					a.ID, st.Completed, st.Cancelled)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "pcstall-exp: %s failed: %v\n", a.ID, err)
			os.Exit(1)
		}
		t.Fprint(os.Stdout)
		if *timing {
			fmt.Fprintf(os.Stderr, "[%s took %v]\n", a.ID, time.Since(t0).Round(time.Millisecond))
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "pcstall-exp: no experiment matched %v\n", ids)
		os.Exit(1)
	}
	if mpath != "" {
		if err := s.WriteManifest(mpath); err != nil {
			fmt.Fprintf(os.Stderr, "pcstall-exp: %v\n", err)
			os.Exit(1)
		}
	}
	flushTrace()
	if *timing || *progress {
		st := s.Stats()
		fmt.Fprintf(os.Stderr, "[total %v] %s\n", time.Since(start).Round(time.Millisecond), st)
		if mpath != "" {
			fmt.Fprintf(os.Stderr, "[manifest written to %s]\n", mpath)
		}
	}
}
