// Command pcstall-serve runs the simulator as a long-lived HTTP
// service: simulations and paper figures on demand, backed by the same
// orchestrator, result cache, and telemetry the batch CLI uses.
//
// Usage:
//
//	pcstall-serve -addr 127.0.0.1:8080 -cache-dir /var/cache/pcstall
//
// Endpoints (see internal/serve):
//
//	POST /v1/sim              one simulation from a JSON config
//	POST /v1/figures/{id}     regenerate a paper figure
//	GET  /v1/jobs/{id}        poll a job; /events streams SSE progress
//	GET  /v1/workloads        registry listings
//	GET  /v1/designs
//	GET  /metrics             Prometheus text (expvar, pprof alongside)
//
// Identical concurrent requests are computed once (singleflight on the
// orchestrator's content-addressed job key), already-cached results are
// served without queueing, and when the bounded queue fills, requests
// are shed with 429 + Retry-After instead of piling up.
//
// The first SIGINT/SIGTERM starts a graceful drain: admissions stop
// (503), in-flight jobs finish (or are cancelled at -drain-timeout),
// the result cache and manifest are flushed, and the process exits 0.
// A second signal aborts immediately with exit 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"pcstall/internal/clock"
	"pcstall/internal/exp"
	"pcstall/internal/serve"
	"pcstall/internal/telemetry"
	"pcstall/internal/tracing"
	"pcstall/internal/version"
)

func main() {
	cfg := exp.DefaultConfig()
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	cus := flag.Int("cus", cfg.CUs, "default number of compute units (requests may override)")
	scale := flag.Float64("scale", cfg.Scale, "default workload duration scale")
	seed := flag.Uint64("seed", cfg.Seed, "default random seed")
	apps := flag.String("apps", "", "comma-separated workload subset for figures (default: all)")
	traceEpochs := flag.Int("trace-epochs", cfg.TraceEpochs, "epochs sampled per characterization trace (figures)")
	maxMs := flag.Int64("max-ms", int64(cfg.MaxTime/clock.Millisecond), "default per-run simulated time cap (ms)")
	workers := flag.Int("j", runtime.NumCPU(), "parallel simulation workers")
	queue := flag.Int("queue", 64, "max admitted-but-unfinished cold-sim jobs before requests shed with 429")
	figQueue := flag.Int("figure-queue", 0, "max admitted-but-unfinished figure jobs on their own lane (0 = 16; negative shares the sim lane)")
	bodyCacheBytes := flag.Int64("body-cache-bytes", 0, "byte budget for the rendered-body LRU hot tier (0 = 32 MiB; negative disables)")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent result cache (shared with pcstall-exp)")
	noCache := flag.Bool("no-cache", false, "ignore the disk cache: neither read nor write it")
	manifest := flag.String("manifest", "", "manifest path flushed on drain (default: <cache-dir>/manifest.json when -cache-dir is set)")
	jobTimeout := flag.Duration("timeout", 0, "default per-job timeout when a request carries none (0 = none)")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "cap on client-requested per-job timeouts (0 = uncapped)")
	retries := flag.Int("retries", 0, "retries per failed job (transient faults, doubling backoff)")
	maxCycles := flag.Int64("max-cycles", 0, "default per-run CU-cycle watchdog budget (0 = unbounded)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight jobs before cancelling them")
	traceOut := flag.String("trace-out", "", "write this process's distributed traces (flight recorder contents) to FILE on drain, in Chrome trace-event format")
	showVersion := flag.Bool("version", false, "print the simulator version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String())
		return
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "pcstall-serve: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	// The server's lifetime context: jobs derive from it; a hard abort
	// cancels it.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()

	// A server is always traced: the flight recorder is bounded, the
	// per-span cost is nanoseconds against millisecond jobs, and the
	// /debug/traces endpoint plus coordinator trace stitching are most
	// valuable exactly when nobody thought to turn them on beforehand.
	tracer := tracing.New("pcstall-serve", tracing.DefaultCapacity)
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))

	reg := telemetry.New()
	cfg.CUs = *cus
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.TraceEpochs = *traceEpochs
	cfg.MaxTime = clock.Time(*maxMs) * clock.Millisecond
	if *apps != "" {
		cfg.Apps = strings.Split(*apps, ",")
	}
	cfg.Workers = *workers
	cfg.NoCache = *noCache
	cfg.Retries = *retries
	cfg.MaxCycles = *maxCycles
	cfg.Metrics = reg
	cfg.Log = logger
	cfg.Ctx = baseCtx
	if *cacheDir != "" {
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "pcstall-serve: cache dir: %v\n", err)
			os.Exit(1)
		}
		cfg.CacheDir = *cacheDir
	}

	suite := exp.NewSuite(cfg)
	defer suite.Close()

	srv, err := serve.New(serve.Config{
		Backend:        suite,
		Defaults:       suite.SimDefaults(),
		MaxQueue:       *queue,
		FigureQueue:    *figQueue,
		BodyCacheBytes: *bodyCacheBytes,
		Workers:        *workers,
		FigureIDs:      suite.ArtifactIDs(),
		Metrics:        reg,
		BaseCtx:        baseCtx,
		DefaultTimeout: *jobTimeout,
		MaxTimeout:     *maxTimeout,
		Tracer:         tracer,
		Log:            logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcstall-serve: %v\n", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcstall-serve: listen %s: %v\n", *addr, err)
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Handler: srv.Handler(),
		// Slow-loris guard: a client trickling header bytes (or holding
		// idle keep-alive sockets) must not pin connections forever. No
		// ReadTimeout/WriteTimeout — sync /v1/sim responses legitimately
		// take minutes; per-job budgets live in the orchestrator.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	// The resolved address goes to stdout so scripts (and the CI smoke)
	// can discover a :0-assigned port.
	fmt.Printf("pcstall-serve: listening on http://%s\n", ln.Addr())
	fmt.Fprintf(os.Stderr, "pcstall-serve: %s, %d workers, queue %d, cache %q\n",
		version.String(), *workers, *queue, *cacheDir)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "pcstall-serve: %v\n", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "pcstall-serve: %v: draining (in-flight jobs finish, new work is rejected; a second signal aborts)\n", s)
	}
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "pcstall-serve: aborting")
		os.Exit(130)
	}()

	// Graceful drain: stop admitting, let in-flight jobs settle (cancel
	// any stragglers at -drain-timeout), close the listener, flush the
	// cache append handle and the manifest, exit 0.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelDrain()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "pcstall-serve: drain cancelled in-flight jobs: %v\n", err)
	}
	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		_ = httpSrv.Close()
	}
	mpath := *manifest
	if mpath == "" && cfg.CacheDir != "" {
		mpath = filepath.Join(cfg.CacheDir, "manifest.json")
	}
	if mpath != "" {
		if err := suite.WriteManifest(mpath); err != nil {
			fmt.Fprintf(os.Stderr, "pcstall-serve: %v\n", err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		if err := tracer.Recorder().WriteChromeFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "pcstall-serve: %v\n", err)
			os.Exit(1)
		}
	}
	if err := suite.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "pcstall-serve: %v\n", err)
		os.Exit(1)
	}
	st := suite.Stats()
	fmt.Fprintf(os.Stderr, "pcstall-serve: drained (%s)\n", st)
}
