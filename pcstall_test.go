package pcstall_test

import (
	"bytes"
	"testing"

	"pcstall"
	"pcstall/internal/power"
	"pcstall/internal/trace"
)

func smallCfg() pcstall.Config {
	cfg := pcstall.DefaultConfig(2)
	cfg.Scale = 0.25
	return cfg
}

func TestWorkloadsAndDesigns(t *testing.T) {
	if len(pcstall.Workloads()) != 16 {
		t.Fatalf("%d workloads", len(pcstall.Workloads()))
	}
	designs := pcstall.Designs()
	if len(designs) != 8 {
		t.Fatalf("%d designs", len(designs))
	}
	names := map[string]bool{}
	for _, d := range designs {
		if d.New == nil {
			t.Fatalf("design %s has no factory", d.Name)
		}
		names[d.Name] = true
	}
	for _, want := range []string{"STALL", "LEAD", "CRIT", "CRISP", "ACCREAC", "PCSTALL", "ACCPC", "ORACLE"} {
		if !names[want] {
			t.Errorf("design %s missing", want)
		}
	}
}

func TestRunAppEndToEnd(t *testing.T) {
	res, err := pcstall.RunApp("comd", "PCSTALL", smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("run truncated")
	}
	if res.Totals.Committed == 0 || res.Totals.EnergyJ <= 0 || res.Totals.TimeS <= 0 {
		t.Fatalf("implausible totals %+v", res.Totals)
	}
	if res.Policy != "PCSTALL" || res.Objective != "ED2P" {
		t.Fatalf("labels %s/%s", res.Policy, res.Objective)
	}
}

func TestRunAppErrors(t *testing.T) {
	if _, err := pcstall.RunApp("nosuchapp", "PCSTALL", smallCfg()); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := pcstall.RunApp("comd", "NOSUCHDESIGN", smallCfg()); err == nil {
		t.Error("unknown design accepted")
	}
}

func TestStaticDesignByName(t *testing.T) {
	res, err := pcstall.RunApp("xsbench", "STATIC-1300", smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	// A static run spends all time at its one frequency.
	nonzero := 0
	for _, share := range res.Residency {
		if share > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("static run touched %d states", nonzero)
	}
	// The GPU boots at the grid's mid frequency, so a static design may
	// transition once per domain at the first boundary — never after.
	if res.Transitions > 2 {
		t.Fatalf("static run made %d transitions", res.Transitions)
	}
}

func TestCompare(t *testing.T) {
	res, err := pcstall.Compare("xsbench", []string{"STATIC-1700", "PCSTALL"}, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	if res["STATIC-1700"].Totals.Committed != res["PCSTALL"].Totals.Committed {
		t.Fatal("same app committed different totals under different designs")
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	cfg := pcstall.Config{GPU: pcstall.DefaultConfig(2).GPU, Scale: 0.25}
	// Objective, epoch, power model all zero: RunDesign must default them.
	res, err := pcstall.RunDesign("comd", pcstall.StaticDesign(1700), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != "ED2P" {
		t.Fatalf("default objective %s", res.Objective)
	}
}

func TestObjectiveSelection(t *testing.T) {
	cfg := smallCfg()
	cfg.Objective = pcstall.FixedPerf(0.05)
	res, err := pcstall.RunApp("comd", "CRISP", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != "Energy@5%" {
		t.Fatalf("objective label %q", res.Objective)
	}
}

func TestFixedPerfSavesEnergyWithinBound(t *testing.T) {
	if testing.Short() {
		t.Skip("two full runs")
	}
	cfg := smallCfg()
	cfg.Objective = pcstall.FixedPerf(0.10)
	base, err := pcstall.RunApp("xsbench", "STATIC-2200", cfg)
	if err != nil {
		t.Fatal(err)
	}
	dvfsRun, err := pcstall.RunApp("xsbench", "ORACLE", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dvfsRun.Totals.EnergyJ >= base.Totals.EnergyJ {
		t.Fatalf("fixed-perf oracle saved no energy on a memory-bound app: %g vs %g",
			dvfsRun.Totals.EnergyJ, base.Totals.EnergyJ)
	}
	// Memory-bound: downclocking must cost little time. Allow 20%.
	if dvfsRun.Totals.TimeS > base.Totals.TimeS*1.2 {
		t.Fatalf("slowdown %.2fx far exceeds the 10%% target",
			dvfsRun.Totals.TimeS/base.Totals.TimeS)
	}
}

func TestNewGPUDirectDriving(t *testing.T) {
	cfg := smallCfg()
	g, err := pcstall.NewGPU("dgemm", cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.RunUntil(5 * pcstall.Microsecond)
	if g.TotalCommitted == 0 {
		t.Fatal("direct-driven GPU made no progress")
	}
}

func TestExtensionDesignsViaFacade(t *testing.T) {
	for _, name := range []string{"HIST", "QLEARN"} {
		res, err := pcstall.RunApp("comd", name, smallCfg())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Truncated || res.Totals.Committed == 0 {
			t.Fatalf("%s run degenerate: %+v", name, res.Totals)
		}
	}
}

func TestTracePlumbing(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallCfg()
	cfg.Trace = pcstall.NewJSONLTrace(&buf)
	res, err := pcstall.RunApp("comd", "STATIC-1700", cfg)
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != res.Epochs {
		t.Fatalf("%d trace events for %d epochs", len(events), res.Epochs)
	}
	var total float64
	for _, e := range events {
		for _, d := range e.Domains {
			total += d.ActualI
		}
	}
	if int64(total) != res.Totals.Committed {
		t.Fatalf("trace actuals %d != committed %d", int64(total), res.Totals.Committed)
	}
}

func TestThermalAccounting(t *testing.T) {
	base, err := pcstall.RunApp("dgemm", "STATIC-2200", smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	th := power.DefaultThermal()
	cfg.Thermal = &th
	hot, err := pcstall.RunApp("dgemm", "STATIC-2200", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hot.FinalTempC == nil {
		t.Fatal("thermal run reported no temperatures")
	}
	for d, temp := range hot.FinalTempC {
		if temp <= th.AmbientC {
			t.Fatalf("domain %d never heated above ambient (%g)", d, temp)
		}
	}
	// Same schedule, but leakage follows temperature: the totals differ
	// from the nominal-temperature accounting.
	if hot.Totals.EnergyJ == base.Totals.EnergyJ {
		t.Fatal("thermal accounting had no effect on energy")
	}
	if hot.Totals.TimeS != base.Totals.TimeS {
		t.Fatal("thermal accounting changed timing (it must not)")
	}
}

func TestQoSObjectiveViaFacade(t *testing.T) {
	cfg := smallCfg()
	cfg.Objective = pcstall.QoSTarget(50)
	res, err := pcstall.RunApp("comd", "PCSTALL", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != "QoS@50" {
		t.Fatalf("objective label %q", res.Objective)
	}
}
