// Package pcstall is a from-scratch reproduction of "Predict; Don't React
// for Enabling Efficient Fine-Grain DVFS in GPUs" (ASPLOS 2023): a
// cycle-approximate GPU simulator with per-CU voltage/frequency domains, a
// power model, the paper's frequency-sensitivity estimation models, the
// reactive and PC-based predictors (PCSTALL), the fork-pre-execute oracle
// methodology, and synthetic equivalents of the paper's sixteen HPC/MI
// workloads.
//
// This package is the facade for downstream use. A minimal session:
//
//	cfg := pcstall.DefaultConfig(8)             // 8-CU GPU, per-CU V/f domains
//	res, err := pcstall.RunApp("comd", "PCSTALL", cfg)
//	fmt.Println(res.Totals.ED2P(), res.Accuracy)
//
// Designs are the paper's TABLE III names ("STALL", "LEAD", "CRIT",
// "CRISP", "ACCREAC", "PCSTALL", "ACCPC", "ORACLE") plus static baselines
// ("STATIC-1700"). Workloads are the TABLE II names (Workloads lists
// them). The experiment harness behind every figure and table of the paper
// lives in internal/exp and is exposed through the Experiments type.
package pcstall

import (
	"context"
	"fmt"
	"io"
	"net/http"

	"pcstall/internal/chaos"
	"pcstall/internal/clock"
	"pcstall/internal/core"
	"pcstall/internal/dvfs"
	"pcstall/internal/exp"
	"pcstall/internal/power"
	"pcstall/internal/sim"
	"pcstall/internal/telemetry"
	"pcstall/internal/trace"
	"pcstall/internal/version"
	"pcstall/internal/workload"
)

// Re-exported result and objective types.
type (
	// Result is one application run's outcome (energy, time, accuracy,
	// frequency residency).
	Result = dvfs.Result
	// Objective selects frequencies given predictions.
	Objective = dvfs.Objective
	// Design describes one TABLE III DVFS design.
	Design = core.Design
	// Freq is a clock frequency in MHz.
	Freq = clock.Freq
	// Time is simulated time in picoseconds.
	Time = clock.Time
	// ChaosConfig is a deterministic fault-injection profile (noisy,
	// stale, or dropped telemetry; failed or jittered V/f transitions;
	// corrupted PC signatures). The zero value injects nothing.
	ChaosConfig = chaos.Config
	// ChaosStats counts the faults a run actually injected.
	ChaosStats = chaos.Stats
	// DeadlockError is the simulation watchdog's structured diagnosis,
	// returned (wrapped) by runs that stop making progress or exhaust
	// their cycle budget. Unwrap with errors.As.
	DeadlockError = sim.DeadlockError
)

// Common durations, re-exported for configuration convenience.
const (
	Nanosecond  = clock.Nanosecond
	Microsecond = clock.Microsecond
	Millisecond = clock.Millisecond
)

// Objectives from the paper's evaluation (§5.2).
var (
	// EDP minimizes energy-delay product.
	EDP Objective = dvfs.EDP
	// ED2P minimizes energy-delay² product (the headline metric).
	ED2P Objective = dvfs.ED2P
)

// FixedPerf returns the §6.4 objective: minimize energy while staying
// within limit (e.g. 0.05) of the top frequency's predicted performance.
func FixedPerf(limit float64) Objective { return dvfs.FixedPerf{Limit: limit} }

// QoSTarget returns the §5.2 extension objective: minimum energy subject
// to a per-domain work floor of instrPerEpoch predicted instructions.
func QoSTarget(instrPerEpoch float64) Objective {
	return dvfs.QoSTarget{InstrPerEpoch: instrPerEpoch}
}

// Config describes a complete experiment platform: the GPU, the DVFS
// epoch, the objective, and workload scaling.
type Config struct {
	// GPU is the simulated platform. Adjust Domains.CUsPerDomain for the
	// §6.5 granularity study.
	GPU sim.Config
	// Epoch is the fixed DVFS time epoch (§3.1); default 1µs.
	Epoch Time
	// Objective is the frequency-selection goal; default ED²P.
	Objective Objective
	// Power is the energy model; defaults to DefaultModelFor(NumCUs).
	Power *power.Model
	// Scale multiplies workload durations (1.0 ≈ 60-200µs per app).
	Scale float64
	// MaxTime caps simulated time per run (safety; default 100ms).
	MaxTime Time
	// Record keeps per-epoch records in results.
	Record bool
	// Trace, when non-nil, receives one event per epoch (see
	// internal/trace for JSONL/CSV recorders).
	Trace trace.Recorder
	// Thermal enables temperature-dependent leakage (§5); nil keeps
	// leakage at the nominal temperature.
	Thermal *power.Thermal
	// Metrics, when non-nil, receives run telemetry (epoch counters,
	// stall accounting, prediction error — see internal/telemetry).
	// Recording never alters results; nil costs nothing on hot paths.
	Metrics *Metrics
	// Ctx, when non-nil, cancels the run at the next epoch boundary: the
	// run returns its partial Result (Truncated set) and a wrapped
	// context error. nil means the run cannot be interrupted.
	Ctx context.Context
	// Chaos injects deterministic sensing/actuation faults into the run
	// (see ParseChaos / ChaosLevel). The zero value injects nothing and
	// leaves results byte-identical to a chaos-free build.
	Chaos ChaosConfig
	// MaxCycles bounds the run's CU cycles; when exhausted (or when the
	// workload deadlocks) the run stops with a wrapped *DeadlockError
	// and a Truncated partial result. 0 = unbounded.
	MaxCycles int64
}

// DefaultConfig returns a platform with numCUs compute units, per-CU V/f
// domains, 1µs epochs, and the ED²P objective.
func DefaultConfig(numCUs int) Config {
	pm := power.DefaultModelFor(numCUs)
	return Config{
		GPU:       sim.DefaultConfig(numCUs),
		Epoch:     Microsecond,
		Objective: ED2P,
		Power:     &pm,
		Scale:     1.0,
	}
}

// Workloads returns the paper's application names in TABLE II order.
func Workloads() []string { return workload.Names() }

// Designs returns the paper's evaluated DVFS designs in TABLE III order.
func Designs() []Design { return core.Designs() }

// StaticDesign returns a fixed-frequency baseline design.
func StaticDesign(f Freq) Design { return core.StaticDesign(f) }

// NewGPU builds a simulator loaded with the named workload, ready for
// RunPolicy or direct driving via the internal packages.
func NewGPU(app string, cfg Config) (*sim.GPU, error) {
	gen := workload.DefaultGenConfig(cfg.GPU.NumCUs)
	if cfg.Scale > 0 {
		gen.Scale = cfg.Scale
	}
	gen.Seed = cfg.GPU.Seed + 6
	a, err := workload.Build(app, gen)
	if err != nil {
		return nil, err
	}
	return sim.New(cfg.GPU, a.Kernels, a.Launches)
}

// RunApp runs one workload to completion under the named design and
// returns its result.
func RunApp(app, design string, cfg Config) (Result, error) {
	d, err := core.DesignByName(design)
	if err != nil {
		return Result{}, err
	}
	return RunDesign(app, d, cfg)
}

// RunDesign is RunApp for an explicit Design value (e.g. a custom-tuned
// PCStall policy wrapped via core.Design).
func RunDesign(app string, d Design, cfg Config) (Result, error) {
	if cfg.Objective == nil {
		cfg.Objective = ED2P
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = Microsecond
	}
	if cfg.Power == nil {
		pm := power.DefaultModelFor(cfg.GPU.NumCUs)
		cfg.Power = &pm
	}
	g, err := NewGPU(app, cfg)
	if err != nil {
		return Result{}, err
	}
	return dvfs.Run(g, d.New(), dvfs.RunConfig{
		Epoch:     cfg.Epoch,
		Obj:       cfg.Objective,
		PM:        cfg.Power,
		MaxTime:   cfg.MaxTime,
		Record:    cfg.Record,
		Trace:     cfg.Trace,
		Thermal:   cfg.Thermal,
		Metrics:   cfg.Metrics,
		Ctx:       cfg.Ctx,
		Chaos:     cfg.Chaos,
		MaxCycles: cfg.MaxCycles,
	})
}

// Compare runs several designs on the same workload and returns results
// keyed by design name — the building block of the paper's comparisons.
func Compare(app string, designs []string, cfg Config) (map[string]Result, error) {
	out := make(map[string]Result, len(designs))
	for _, name := range designs {
		r, err := RunApp(app, name, cfg)
		if err != nil {
			return nil, fmt.Errorf("pcstall: running %s under %s: %w", app, name, err)
		}
		out[name] = r
	}
	return out, nil
}

// ParseChaos parses a comma-separated fault-injection spec, e.g.
// "noise=0.1,tfail=0.05,seed=7" or the shorthand "level=0.2" (which
// expands to the proportional profile of ChaosLevel). An empty spec
// yields the zero (disabled) config.
func ParseChaos(spec string) (ChaosConfig, error) { return chaos.Parse(spec) }

// ChaosLevel returns the proportional fault profile at intensity l
// (0 = none): noise=l, drop=stale=l/8, tfail=l/4, jitter=l, pcflip=l/16.
func ChaosLevel(l float64, seed uint64) ChaosConfig { return chaos.Level(l, seed) }

// NewJSONLTrace returns a recorder writing one JSON object per epoch to w.
func NewJSONLTrace(w io.Writer) trace.Recorder { return trace.NewJSONL(w) }

// NewCSVTrace returns a recorder writing one CSV row per (epoch, domain).
func NewCSVTrace(w io.Writer) trace.Recorder { return trace.NewCSV(w) }

// Metrics is a telemetry registry: counters, gauges, and histograms that
// runs record into when attached via Config.Metrics (or
// ExperimentsConfig.Metrics for whole campaigns). Snapshot it for
// machine-readable values, or serve it live with MetricsHandler.
type Metrics = telemetry.Registry

// NewMetrics builds an empty telemetry registry.
func NewMetrics() *Metrics { return telemetry.New() }

// MetricsHandler serves the registry over HTTP: Prometheus text at
// /metrics, expvar JSON at /debug/vars, and pprof under /debug/pprof/.
func MetricsHandler(m *Metrics) http.Handler { return telemetry.Handler(m) }

// Version reports the simulator version (the string that keys the
// result cache) plus the VCS revision stamped into the binary.
func Version() string { return version.String() }

// Experiments exposes the paper-figure regeneration harness.
type Experiments = exp.Suite

// ExperimentsConfig configures the harness: the platform (CUs, Scale,
// Seed, Apps) plus the orchestration knobs — Workers shards independent
// simulation runs across a bounded pool (0 = NumCPU, 1 = serial; results
// are byte-identical at any worker count), CacheDir persists results as
// JSONL so reruns skip already-computed cells, and NoCache forces
// recomputation. Call Experiments.Close when done to flush the cache,
// and Experiments.WriteManifest for the campaign's audit record.
type ExperimentsConfig = exp.Config

// NewExperiments builds the harness; zero-value config selects the scaled
// default platform (exp.DefaultConfig) with NumCPU parallel workers.
func NewExperiments(cfg ExperimentsConfig) *Experiments { return exp.NewSuite(cfg) }
