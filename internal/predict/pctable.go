// Package predict implements the prediction mechanisms of TABLE III: the
// last-value reactive predictor every prior model uses, and the paper's
// PC-indexed sensitivity table (§4.4, Fig. 12) that keys phase behaviour
// on the wavefront program counter.
package predict

import (
	"fmt"

	"pcstall/internal/estimate"
	"pcstall/internal/isa"
)

// PCTableConfig sizes the PC-indexed sensitivity table.
type PCTableConfig struct {
	// Entries is the number of table entries (the paper finds 128 gives
	// a 95%+ hit ratio, §4.4).
	Entries int
	// OffsetBits is the number of low PC-address bits dropped before
	// indexing; 4 bits ≈ 4 instructions per entry (Fig. 11b).
	OffsetBits int
	// Alpha is the exponential update weight for repeated observations
	// of the same entry (1 = last value wins).
	Alpha float64
}

// DefaultPCTable is the paper's tuned configuration.
func DefaultPCTable() PCTableConfig {
	return PCTableConfig{Entries: 128, OffsetBits: 4, Alpha: 0.4}
}

// Validate checks the configuration.
func (c PCTableConfig) Validate() error {
	if c.Entries < 1 {
		return fmt.Errorf("predict: %d entries", c.Entries)
	}
	if c.OffsetBits < 0 || c.OffsetBits > 20 {
		return fmt.Errorf("predict: offset bits %d out of [0,20]", c.OffsetBits)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("predict: alpha %g out of (0,1]", c.Alpha)
	}
	return nil
}

// StorageBytes returns the hardware storage of one table instance
// (TABLE I accounting): one sensitivity byte pair per entry.
func (c PCTableConfig) StorageBytes() int { return c.Entries }

// PCTable is one PC-indexed sensitivity table instance. It may serve one
// CU, one domain, or the whole GPU; sharing granularity is the caller's
// choice (the paper observes accuracy is insensitive to it, §4.4).
type PCTable struct {
	cfg   PCTableConfig
	tags  []uint64
	est   []estimate.WFEstimate
	valid []bool

	lookups   int64
	hits      int64
	evictions int64
	rejected  int64
}

// NewPCTable builds a table.
func NewPCTable(cfg PCTableConfig) *PCTable {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &PCTable{
		cfg:   cfg,
		tags:  make([]uint64, cfg.Entries),
		est:   make([]estimate.WFEstimate, cfg.Entries),
		valid: make([]bool, cfg.Entries),
	}
}

func (t *PCTable) index(pc uint64) (int, uint64) {
	key := pc >> uint(t.cfg.OffsetBits)
	return int(key % uint64(t.cfg.Entries)), key
}

// Update stores (or blends) the sensitivity estimated for the epoch that
// began at byte address pc — the paper's update mechanism, run off the
// critical path after each epoch.
func (t *PCTable) Update(pc uint64, e estimate.WFEstimate) {
	if !e.Sane() {
		// A NaN/Inf estimate (corrupted telemetry) blended into an entry
		// would propagate through every later Alpha-weighted update and
		// poison the entry forever; drop it instead.
		t.rejected++
		return
	}
	i, key := t.index(pc)
	if t.valid[i] && t.tags[i] == key {
		a := t.cfg.Alpha
		t.est[i].IRef = a*e.IRef + (1-a)*t.est[i].IRef
		t.est[i].Slope = a*e.Slope + (1-a)*t.est[i].Slope
		return
	}
	if t.valid[i] {
		t.evictions++
	}
	t.tags[i] = key
	t.est[i] = e
	t.valid[i] = true
}

// Lookup retrieves the stored sensitivity for a wavefront about to start
// an epoch at byte address pc — the paper's lookup mechanism, run just
// before the epoch boundary.
func (t *PCTable) Lookup(pc uint64) (estimate.WFEstimate, bool) {
	t.lookups++
	i, key := t.index(pc)
	if t.valid[i] && t.tags[i] == key {
		t.hits++
		return t.est[i], true
	}
	return estimate.WFEstimate{}, false
}

// HitRatio returns the lifetime lookup hit ratio.
func (t *PCTable) HitRatio() float64 {
	if t.lookups == 0 {
		return 0
	}
	return float64(t.hits) / float64(t.lookups)
}

// Lookups returns the lifetime lookup count.
func (t *PCTable) Lookups() int64 { return t.lookups }

// Hits returns the lifetime lookup hit count.
func (t *PCTable) Hits() int64 { return t.hits }

// Evictions returns how many valid entries were displaced by a
// different key (conflict evictions; capacity pressure signal).
func (t *PCTable) Evictions() int64 { return t.evictions }

// Rejected returns how many updates were dropped for carrying
// non-finite estimates.
func (t *PCTable) Rejected() int64 { return t.rejected }

// Reset invalidates all entries (used at application boundaries).
func (t *PCTable) Reset() {
	for i := range t.valid {
		t.valid[i] = false
	}
	t.lookups, t.hits, t.evictions, t.rejected = 0, 0, 0, 0
}

// InstrSpan returns how many instructions the table covers end to end
// (entries × instructions per entry), e.g. 512 for the default table.
func (c PCTableConfig) InstrSpan() int {
	perEntry := (1 << uint(c.OffsetBits)) / isa.InstrBytes
	if perEntry < 1 {
		perEntry = 1
	}
	return c.Entries * perEntry
}
