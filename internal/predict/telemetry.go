package predict

import "pcstall/internal/telemetry"

// Telemetry is the predictor's metric bundle. Tables count lookups,
// hits, and evictions internally with plain int64s (the lookup path is
// hot); RecordTable folds the lifetime totals into the registry once per
// run, so table instrumentation costs nothing during the run itself.
type Telemetry struct {
	Lookups   *telemetry.Counter
	Hits      *telemetry.Counter
	Evictions *telemetry.Counter
}

// NewTelemetry builds the bundle on r (nil r yields nil).
func NewTelemetry(r *telemetry.Registry) *Telemetry {
	if r == nil {
		return nil
	}
	return &Telemetry{
		Lookups:   r.Counter("predict_pc_table_lookups_total", "PC-table lookups"),
		Hits:      r.Counter("predict_pc_table_hits_total", "PC-table lookup hits"),
		Evictions: r.Counter("predict_pc_table_evictions_total", "PC-table conflict evictions"),
	}
}

// RecordTable folds one table's lifetime counts into the bundle.
func (m *Telemetry) RecordTable(t *PCTable) {
	if m == nil || t == nil {
		return
	}
	m.Lookups.Add(t.Lookups())
	m.Hits.Add(t.Hits())
	m.Evictions.Add(t.Evictions())
}
