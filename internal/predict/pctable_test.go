package predict

import (
	"math"
	"testing"
	"testing/quick"

	"pcstall/internal/estimate"
	"pcstall/internal/telemetry"
	"pcstall/internal/xrand"
)

func TestUpdateLookupRoundtrip(t *testing.T) {
	tb := NewPCTable(DefaultPCTable())
	e := estimate.WFEstimate{IRef: 123, Slope: 0.5}
	tb.Update(0x1000, e)
	got, ok := tb.Lookup(0x1000)
	if !ok {
		t.Fatal("miss after update")
	}
	if got != e {
		t.Fatalf("got %+v, want %+v", got, e)
	}
}

func TestLookupMiss(t *testing.T) {
	tb := NewPCTable(DefaultPCTable())
	if _, ok := tb.Lookup(0x2000); ok {
		t.Fatal("hit in empty table")
	}
	if tb.HitRatio() != 0 {
		t.Fatal("hit ratio after one miss should be 0")
	}
}

func TestOffsetBitsGroupNearbyPCs(t *testing.T) {
	cfg := DefaultPCTable() // 4 offset bits = 16 bytes = 4 instructions
	tb := NewPCTable(cfg)
	e := estimate.WFEstimate{IRef: 7}
	tb.Update(0x1000, e)
	// PCs within the same 16-byte window share the entry.
	if _, ok := tb.Lookup(0x100C); !ok {
		t.Fatal("nearby PC in same window missed")
	}
	// The next window is a different entry (tag mismatch -> miss).
	if _, ok := tb.Lookup(0x1010); ok {
		t.Fatal("next window aliased into same entry")
	}
}

func TestTagDetectsAliasing(t *testing.T) {
	cfg := PCTableConfig{Entries: 16, OffsetBits: 4, Alpha: 1}
	tb := NewPCTable(cfg)
	tb.Update(0x0000, estimate.WFEstimate{IRef: 1})
	// 16 entries * 16 bytes = 256-byte span; +256 maps to the same
	// index with a different tag.
	if _, ok := tb.Lookup(0x0100); ok {
		t.Fatal("aliasing PC hit a stale entry")
	}
	// And updating the alias evicts the original.
	tb.Update(0x0100, estimate.WFEstimate{IRef: 2})
	if _, ok := tb.Lookup(0x0000); ok {
		t.Fatal("evicted entry still hits")
	}
}

func TestEWMABlending(t *testing.T) {
	cfg := PCTableConfig{Entries: 16, OffsetBits: 4, Alpha: 0.5}
	tb := NewPCTable(cfg)
	tb.Update(0x40, estimate.WFEstimate{IRef: 100, Slope: 1})
	tb.Update(0x40, estimate.WFEstimate{IRef: 200, Slope: 3})
	got, _ := tb.Lookup(0x40)
	if math.Abs(got.IRef-150) > 1e-9 || math.Abs(got.Slope-2) > 1e-9 {
		t.Fatalf("EWMA blend got %+v, want {150 2}", got)
	}
}

func TestAlphaOneIsLastValue(t *testing.T) {
	cfg := PCTableConfig{Entries: 16, OffsetBits: 4, Alpha: 1}
	tb := NewPCTable(cfg)
	tb.Update(0x40, estimate.WFEstimate{IRef: 100})
	tb.Update(0x40, estimate.WFEstimate{IRef: 200})
	got, _ := tb.Lookup(0x40)
	if got.IRef != 200 {
		t.Fatalf("alpha=1 should keep last value, got %g", got.IRef)
	}
}

func TestHitRatioAccounting(t *testing.T) {
	tb := NewPCTable(DefaultPCTable())
	tb.Update(0x40, estimate.WFEstimate{IRef: 1})
	tb.Lookup(0x40)   // hit
	tb.Lookup(0x4000) // miss
	if tb.Lookups() != 2 {
		t.Fatalf("lookups = %d", tb.Lookups())
	}
	if math.Abs(tb.HitRatio()-0.5) > 1e-9 {
		t.Fatalf("hit ratio %g", tb.HitRatio())
	}
}

func TestReset(t *testing.T) {
	tb := NewPCTable(DefaultPCTable())
	tb.Update(0x40, estimate.WFEstimate{IRef: 1})
	tb.Lookup(0x40)
	tb.Reset()
	if _, ok := tb.Lookup(0x40); ok {
		t.Fatal("entry survived reset")
	}
	if tb.Lookups() != 1 {
		t.Fatal("lookup counters not reset")
	}
}

func TestInstrSpan(t *testing.T) {
	// 128 entries x 4 instructions per entry = 512 instructions — the
	// paper's coverage claim (§4.4).
	if got := DefaultPCTable().InstrSpan(); got != 512 {
		t.Fatalf("default span %d, want 512", got)
	}
	if got := (PCTableConfig{Entries: 64, OffsetBits: 0, Alpha: 1}).InstrSpan(); got != 64 {
		t.Fatalf("offset-0 span %d, want 64", got)
	}
}

func TestStorageBytes(t *testing.T) {
	if DefaultPCTable().StorageBytes() != 128 {
		t.Fatal("default table storage should be 128 bytes (TABLE I)")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []PCTableConfig{
		{Entries: 0, OffsetBits: 4, Alpha: 0.5},
		{Entries: 128, OffsetBits: -1, Alpha: 0.5},
		{Entries: 128, OffsetBits: 30, Alpha: 0.5},
		{Entries: 128, OffsetBits: 4, Alpha: 0},
		{Entries: 128, OffsetBits: 4, Alpha: 1.5},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestNonCollidingEntriesIndependent: distinct windows within the table's
// span never interfere.
func TestNonCollidingEntriesIndependent(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		cfg := PCTableConfig{Entries: 64, OffsetBits: 4, Alpha: 1}
		tb := NewPCTable(cfg)
		rng := xrand.New(seed)
		span := uint64(cfg.Entries << cfg.OffsetBits)
		vals := map[uint64]float64{}
		for i := 0; i < 40; i++ {
			w := uint64(rng.Intn(cfg.Entries))
			pc := w << uint(cfg.OffsetBits) % span
			v := rng.Float64() * 100
			tb.Update(pc, estimate.WFEstimate{IRef: v})
			vals[pc] = v
		}
		for pc, v := range vals {
			got, ok := tb.Lookup(pc)
			if !ok || got.IRef != v {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHighHitRatioOnLoopedPCs(t *testing.T) {
	// The paper sizes the table at 128 entries for a 95%+ hit ratio on
	// loops of a few hundred instructions (§4.4): simulate a 300-
	// instruction loop revisited many times.
	tb := NewPCTable(DefaultPCTable())
	const loopInstrs = 300
	for pass := 0; pass < 10; pass++ {
		for pc := uint64(0); pc < loopInstrs*4; pc += 4 {
			if _, ok := tb.Lookup(pc); !ok {
				tb.Update(pc, estimate.WFEstimate{IRef: 1})
			} else {
				tb.Update(pc, estimate.WFEstimate{IRef: 1})
			}
		}
	}
	if tb.HitRatio() < 0.85 {
		t.Fatalf("hit ratio %.3f too low for a %d-instruction loop", tb.HitRatio(), loopInstrs)
	}
}

func TestEvictionAccounting(t *testing.T) {
	cfg := PCTableConfig{Entries: 16, OffsetBits: 4, Alpha: 1}
	tb := NewPCTable(cfg)
	tb.Update(0x0000, estimate.WFEstimate{IRef: 1})
	if tb.Evictions() != 0 {
		t.Fatalf("first fill counted as eviction: %d", tb.Evictions())
	}
	// Same window again: blend, not an eviction.
	tb.Update(0x0004, estimate.WFEstimate{IRef: 2})
	if tb.Evictions() != 0 {
		t.Fatalf("in-place update counted as eviction: %d", tb.Evictions())
	}
	// Aliasing key (16 entries * 16 bytes apart) displaces the entry.
	tb.Update(0x0100, estimate.WFEstimate{IRef: 3})
	if tb.Evictions() != 1 {
		t.Fatalf("conflict eviction not counted: %d", tb.Evictions())
	}
	tb.Reset()
	if tb.Evictions() != 0 {
		t.Fatal("eviction count survived reset")
	}
}

func TestTelemetryRecordTable(t *testing.T) {
	reg := telemetry.New()
	m := NewTelemetry(reg)
	tb := NewPCTable(PCTableConfig{Entries: 16, OffsetBits: 4, Alpha: 1})
	tb.Update(0x0000, estimate.WFEstimate{IRef: 1})
	tb.Update(0x0100, estimate.WFEstimate{IRef: 2}) // evicts
	tb.Lookup(0x0100)                               // hit
	tb.Lookup(0x0000)                               // miss
	m.RecordTable(tb)
	s := reg.Snapshot()
	if s.Counters["predict_pc_table_lookups_total"] != 2 ||
		s.Counters["predict_pc_table_hits_total"] != 1 ||
		s.Counters["predict_pc_table_evictions_total"] != 1 {
		t.Fatalf("recorded counts %+v", s.Counters)
	}
	// Nil bundle and nil table are inert.
	var nilM *Telemetry
	nilM.RecordTable(tb)
	m.RecordTable(nil)
}

func TestUpdateRejectsNonFiniteEstimates(t *testing.T) {
	tb := NewPCTable(DefaultPCTable())
	tb.Update(0x100, estimate.WFEstimate{IRef: math.NaN(), Slope: 1})
	tb.Update(0x100, estimate.WFEstimate{IRef: 1, Slope: math.Inf(1)})
	if _, ok := tb.Lookup(0x100); ok {
		t.Fatal("non-finite estimate was stored")
	}
	if tb.Rejected() != 2 {
		t.Fatalf("Rejected = %d, want 2", tb.Rejected())
	}
	tb.Update(0x100, estimate.WFEstimate{IRef: 5, Slope: 0.1})
	if e, ok := tb.Lookup(0x100); !ok || e.IRef != 5 {
		t.Fatal("sane estimate after rejects not stored")
	}
	tb.Reset()
	if tb.Rejected() != 0 {
		t.Fatal("Reset did not clear rejected counter")
	}
}
