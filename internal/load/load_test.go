package load

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pcstall/internal/wire"
	"pcstall/internal/xrand"
)

// TestScheduleDeterministic: the same seed yields the identical arrival
// schedule; distinct seeds diverge; arrivals are sorted and inside the
// window.
func TestScheduleDeterministic(t *testing.T) {
	r1, r2 := xrand.New(7), xrand.New(7)
	a := schedule(100, time.Second, &r1)
	b := schedule(100, time.Second, &r2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("no arrivals at 100/s over 1s")
	}
	// Poisson at 100/s over 1s: ~100 arrivals; deterministic here, but
	// hold it loosely so a generator change that breaks the rate shows.
	if len(a) < 60 || len(a) > 150 {
		t.Fatalf("arrival count %d far from offered 100", len(a))
	}
	for i := range a {
		if a[i] < 0 || a[i] >= time.Second {
			t.Fatalf("arrival %d = %v outside the window", i, a[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("arrivals not monotone at %d", i)
		}
	}
	r3 := xrand.New(8)
	if c := schedule(100, time.Second, &r3); reflect.DeepEqual(a, c) {
		t.Fatal("distinct seeds produced identical schedules")
	}
}

// TestMixesDeterministic: every mix's request sequence is a pure
// function of (seed, i); unique's bodies never repeat; cachehot cycles
// a bounded pool; figure-lane emits both classes.
func TestMixesDeterministic(t *testing.T) {
	apps := []string{"comd", "hpgmg"}
	figs := []string{"10", "14"}
	for name, m := range Mixes {
		r1, r2 := xrand.New(3), xrand.New(3)
		for i := 0; i < 200; i++ {
			a := m.generate(&r1, i, apps, figs)
			b := m.generate(&r2, i, apps, figs)
			if a != b {
				t.Fatalf("%s: request %d not deterministic: %+v vs %+v", name, i, a, b)
			}
			switch a.Class {
			case ClassCached, ClassCold, ClassFigure:
			default:
				t.Fatalf("%s: request %d has unknown class %q", name, i, a.Class)
			}
			if a.Class == ClassFigure && a.Body != "" {
				t.Fatalf("%s: figure request %d carries a sim body", name, i)
			}
		}
	}

	rng := xrand.New(3)
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		body := Mixes["unique"].generate(&rng, i, apps, figs).Body
		if seen[body] {
			t.Fatalf("unique mix repeated body %s at %d", body, i)
		}
		seen[body] = true
	}

	rng = xrand.New(3)
	pool := map[string]bool{}
	for i := 0; i < 200; i++ {
		pool[Mixes["cachehot"].generate(&rng, i, apps, figs).Body] = true
	}
	if len(pool) != cacheHotPool {
		t.Fatalf("cachehot pool has %d distinct bodies, want %d", len(pool), cacheHotPool)
	}

	rng = xrand.New(3)
	classes := map[string]int{}
	for i := 0; i < 200; i++ {
		classes[Mixes["figlane"].generate(&rng, i, apps, figs).Class]++
	}
	if classes[ClassFigure] == 0 || classes[ClassCold] == 0 {
		t.Fatalf("figlane classes = %v, want both figure and cold traffic", classes)
	}
}

// stampedHandler answers like a healthy pcstall-serve: 200 with a
// digest stamp and an ETag, honoring If-None-Match with 304.
func stampedHandler(counter *int32) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if counter != nil {
			atomic.AddInt32(counter, 1)
		}
		body, _ := io.ReadAll(r.Body)
		etag := fmt.Sprintf("%q", wire.Digest(body))
		if r.Header.Get("If-None-Match") == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		resp := []byte(`{"status":"done","echo":` + fmt.Sprintf("%q", body) + `}`)
		w.Header().Set("ETag", etag)
		w.Header().Set(wire.DigestHeader, wire.Digest(resp))
		w.Write(resp)
	}
}

// TestRunAgainstStub: a run against a healthy stub answers every
// scheduled arrival OK (with some 304 replays in cachehot), validates,
// and reports monotone percentiles.
func TestRunAgainstStub(t *testing.T) {
	srv := httptest.NewServer(stampedHandler(nil))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		Targets:  []string{srv.URL},
		Mix:      "cachehot",
		Rate:     400,
		Duration: 250 * time.Millisecond,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	if rep.Sent != rep.Offered || rep.Offered == 0 {
		t.Fatalf("sent %d of %d offered", rep.Sent, rep.Offered)
	}
	if rep.Errors != 0 || rep.Corrupt != 0 {
		t.Fatalf("errors=%d corrupt=%d against a healthy stub", rep.Errors, rep.Corrupt)
	}
	cached := rep.Classes[ClassCached]
	if cached == nil || cached.OK+cached.NotModified != cached.Sent {
		t.Fatalf("cached class = %+v, want all ok/304", cached)
	}
	if cached.NotModified == 0 {
		t.Error("no 304s: If-None-Match replay is not reaching the wire")
	}
	var buf strings.Builder
	rep.Fprint(&buf)
	if !strings.Contains(buf.String(), "mix=cachehot") || !strings.Contains(buf.String(), "cached") {
		t.Errorf("summary missing expected fields:\n%s", buf.String())
	}
}

// TestRunOpenLoop: the harness keeps offering load while every earlier
// request is still stalled — all scheduled arrivals reach the server
// before any response is released. A closed-loop client would deadlock
// here at concurrency 1.
func TestRunOpenLoop(t *testing.T) {
	var arrived int32
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&arrived, 1)
		<-release
		io.ReadAll(r.Body)
		w.Write([]byte("{}"))
	}))
	defer srv.Close()

	const rate, window = 200, 200 * time.Millisecond
	done := make(chan *Report, 1)
	go func() {
		rep, err := Run(context.Background(), Config{
			Targets:  []string{srv.URL},
			Mix:      "unique",
			Rate:     rate,
			Duration: window,
			Seed:     5,
		})
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()

	// Every scheduled arrival must land while zero responses have been
	// served. The offered count for this seed is deterministic, so learn
	// it from the schedule itself.
	rng := xrand.New(5).Split(1)
	offered := len(schedule(rate, window, &rng))
	deadline := time.Now().Add(5 * time.Second)
	for atomic.LoadInt32(&arrived) < int32(offered) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d arrivals reached the stalled server: the harness is closed-loop",
				atomic.LoadInt32(&arrived), offered)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(release)
	rep := <-done
	if rep.Sent != offered {
		t.Fatalf("sent %d, want %d", rep.Sent, offered)
	}
}

// TestRunClassifiesSheds: 429s with Retry-After count as sheds per
// class, with the hint surfaced, and do not count as harness errors.
func TestRunClassifiesSheds(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.ReadAll(r.Body)
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		Targets:  []string{srv.URL},
		Mix:      "unique",
		Rate:     300,
		Duration: 100 * time.Millisecond,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	cold := rep.Classes[ClassCold]
	if cold.Shed != cold.Sent || cold.ShedRate != 1 {
		t.Fatalf("cold = %+v, want everything shed", cold)
	}
	if cold.MaxRetryAfterSec != 7 {
		t.Errorf("MaxRetryAfterSec = %d, want 7", cold.MaxRetryAfterSec)
	}
	if rep.Errors != 0 {
		t.Errorf("sheds counted as errors: %d", rep.Errors)
	}
	if rep.TotalShed() != cold.Sent {
		t.Errorf("TotalShed = %d, want %d", rep.TotalShed(), cold.Sent)
	}
}

// TestRunDetectsCorruption: a digest stamp that does not cover the body
// is counted as corruption and fails validation gates.
func TestRunDetectsCorruption(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.ReadAll(r.Body)
		w.Header().Set(wire.DigestHeader, "fnv1a64:dead")
		w.Write([]byte("{}"))
	}))
	defer srv.Close()

	rep, err := Run(context.Background(), Config{
		Targets:  []string{srv.URL},
		Mix:      "unique",
		Rate:     200,
		Duration: 50 * time.Millisecond,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt == 0 || rep.Corrupt != rep.Errors {
		t.Fatalf("corrupt=%d errors=%d, want every response flagged", rep.Corrupt, rep.Errors)
	}
}

// TestRunRoundRobin: multiple targets each receive traffic.
func TestRunRoundRobin(t *testing.T) {
	var hits [2]int32
	var srvs [2]*httptest.Server
	for i := range srvs {
		srvs[i] = httptest.NewServer(stampedHandler(&hits[i]))
		defer srvs[i].Close()
	}
	rep, err := Run(context.Background(), Config{
		Targets:  []string{srvs[0].URL, srvs[1].URL},
		Mix:      "unique",
		Rate:     200,
		Duration: 100 * time.Millisecond,
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := atomic.LoadInt32(&hits[0]), atomic.LoadInt32(&hits[1])
	if a == 0 || b == 0 || int(a+b) != rep.Sent {
		t.Fatalf("target hits = (%d, %d), sent %d: round-robin broken", a, b, rep.Sent)
	}
}

// TestRunConfigErrors: bad configs are refused up front.
func TestRunConfigErrors(t *testing.T) {
	cases := []Config{
		{Mix: "unique", Rate: 1, Duration: time.Second},                                     // no targets
		{Targets: []string{"http://x"}, Mix: "nope", Rate: 1, Duration: time.Second},        // unknown mix
		{Targets: []string{"http://x"}, Mix: "unique", Rate: 0, Duration: time.Second},      // zero rate
		{Targets: []string{"http://x"}, Mix: "unique", Rate: 1, Duration: -1 * time.Second}, // negative window
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("case %d: no error for invalid config %+v", i, cfg)
		}
	}
}

// TestBenchAppendValidate: AppendBench builds a valid multi-run file,
// ReadBench round-trips it, and a corrupted file is refused.
func TestBenchAppendValidate(t *testing.T) {
	srv := httptest.NewServer(stampedHandler(nil))
	defer srv.Close()
	path := t.TempDir() + "/BENCH_serve.json"

	for i, label := range []string{"baseline", "lru+lanes"} {
		rep, err := Run(context.Background(), Config{
			Targets:  []string{srv.URL},
			Mix:      "cachehot",
			Rate:     200,
			Duration: 50 * time.Millisecond,
			Seed:     uint64(10 + i),
			Label:    label,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := AppendBench(path, rep); err != nil {
			t.Fatal(err)
		}
	}
	b, err := ReadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Runs) != 2 || b.Runs[0].Label != "baseline" || b.Runs[1].Label != "lru+lanes" {
		t.Fatalf("bench runs = %d (%+v)", len(b.Runs), b.Runs)
	}
	if _, err := ReadBench(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing file read without error")
	}
}

// TestReportValidateCatches: structural defects fail validation.
func TestReportValidateCatches(t *testing.T) {
	good := func() *Report {
		return &Report{
			Mix: "unique", OfferedRPS: 10, DurationSec: 1, Offered: 5, Sent: 5,
			Classes: map[string]*ClassStats{
				ClassCold: {Sent: 5, OK: 5, P50Ms: 1, P95Ms: 2, P99Ms: 3},
			},
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("good report invalid: %v", err)
	}
	mutations := map[string]func(*Report){
		"unknown mix":        func(r *Report) { r.Mix = "nope" },
		"sent over offered":  func(r *Report) { r.Sent = 9 },
		"unknown class":      func(r *Report) { r.Classes["weird"] = &ClassStats{} },
		"outcome sum":        func(r *Report) { r.Classes[ClassCold].OK = 2 },
		"percentile inverse": func(r *Report) { r.Classes[ClassCold].P95Ms = 9 },
		"no classes":         func(r *Report) { r.Classes = nil },
	}
	for name, mutate := range mutations {
		r := good()
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
}

// TestPercentileMs covers the nearest-rank edges.
func TestPercentileMs(t *testing.T) {
	if got := percentileMs(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	cases := map[float64]float64{0.50: 50, 0.95: 95, 0.99: 99}
	for q, want := range cases {
		if got := percentileMs(samples, q); got != want {
			t.Errorf("p%.0f = %v, want %v", q*100, got, want)
		}
	}
	one := []time.Duration{3 * time.Millisecond}
	if got := percentileMs(one, 0.99); got != 3 {
		t.Errorf("single-sample p99 = %v, want 3", got)
	}
}

// TestRunCancel: cancelling the context stops dispatch; the report
// covers what was sent and still validates.
func TestRunCancel(t *testing.T) {
	srv := httptest.NewServer(stampedHandler(nil))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	rep, err := Run(ctx, Config{
		Targets:  []string{srv.URL},
		Mix:      "unique",
		Rate:     100,
		Duration: 5 * time.Second,
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent >= rep.Offered {
		t.Fatalf("sent %d of %d: cancellation did not stop dispatch", rep.Sent, rep.Offered)
	}
	if rep.Sent > 0 {
		if err := rep.Validate(); err != nil {
			t.Fatalf("cancelled report invalid: %v", err)
		}
	}
}
