package load

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// BenchSchema versions the BENCH_serve.json layout.
const BenchSchema = "pcstall/bench-serve/v1"

// Report is one load run: one mix at one offered-load point against one
// server variant. Reports are the rows of BENCH_serve.json.
type Report struct {
	Label       string  `json:"label"` // server variant, e.g. "baseline" / "lru+lanes"
	Mix         string  `json:"mix"`
	Seed        uint64  `json:"seed"`
	Targets     int     `json:"targets"`
	OfferedRPS  float64 `json:"offered_rps"`
	DurationSec float64 `json:"duration_sec"` // scheduled arrival window
	WallSec     float64 `json:"wall_sec"`     // wall time until the last response landed

	// Offered is the scheduled arrival count; Sent is how many actually
	// dispatched (less than Offered only when the run was cancelled).
	Offered int `json:"offered"`
	Sent    int `json:"sent"`

	// Errors counts transport failures and unexpected HTTP statuses;
	// Corrupt counts digest-stamp mismatches. Both must be zero for a
	// run to validate.
	Errors  int `json:"errors"`
	Corrupt int `json:"corrupt"`

	Classes map[string]*ClassStats `json:"classes"`
}

// ClassStats aggregates one request class's outcomes and latency
// distribution.
type ClassStats struct {
	Sent        int `json:"sent"`
	OK          int `json:"ok"`
	NotModified int `json:"not_modified"`
	Shed        int `json:"shed"`
	Unavailable int `json:"unavailable"`
	Errors      int `json:"errors"`

	// GoodputRPS is (OK + NotModified) per wall second.
	GoodputRPS float64 `json:"goodput_rps"`
	// ShedRate and NotModifiedRate are fractions of Sent.
	ShedRate        float64 `json:"shed_rate"`
	NotModifiedRate float64 `json:"not_modified_rate"`

	// Latency percentiles over answered requests (any status), ms.
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`

	// MaxRetryAfterSec is the largest Retry-After hint seen on sheds.
	MaxRetryAfterSec int `json:"max_retry_after_sec,omitempty"`

	latencies []time.Duration
}

func newReport(cfg Config, offered, sent int, wall time.Duration) *Report {
	return &Report{
		Label:       cfg.Label,
		Mix:         cfg.Mix,
		Seed:        cfg.Seed,
		Targets:     len(cfg.Targets),
		OfferedRPS:  cfg.Rate,
		DurationSec: cfg.Duration.Seconds(),
		WallSec:     wall.Seconds(),
		Offered:     offered,
		Sent:        sent,
		Classes:     map[string]*ClassStats{},
	}
}

// add folds one completed request into the report.
func (rep *Report) add(r record) {
	cs := rep.Classes[r.class]
	if cs == nil {
		cs = &ClassStats{}
		rep.Classes[r.class] = cs
	}
	cs.Sent++
	switch r.outcome {
	case outcomeOK:
		cs.OK++
	case outcomeNotModified:
		cs.NotModified++
	case outcomeShed:
		cs.Shed++
		if r.retryAfter > cs.MaxRetryAfterSec {
			cs.MaxRetryAfterSec = r.retryAfter
		}
	case outcomeUnavailable:
		cs.Unavailable++
	case outcomeCorrupt:
		rep.Corrupt++
		cs.Errors++
		rep.Errors++
	default: // transport, http_error
		cs.Errors++
		rep.Errors++
	}
	cs.latencies = append(cs.latencies, r.latency)
}

// finish computes the derived rates and percentiles.
func (rep *Report) finish(wall time.Duration) {
	secs := wall.Seconds()
	for _, cs := range rep.Classes {
		if secs > 0 {
			cs.GoodputRPS = float64(cs.OK+cs.NotModified) / secs
		}
		if cs.Sent > 0 {
			cs.ShedRate = float64(cs.Shed) / float64(cs.Sent)
			cs.NotModifiedRate = float64(cs.NotModified) / float64(cs.Sent)
		}
		sort.Slice(cs.latencies, func(i, j int) bool { return cs.latencies[i] < cs.latencies[j] })
		cs.P50Ms = percentileMs(cs.latencies, 0.50)
		cs.P95Ms = percentileMs(cs.latencies, 0.95)
		cs.P99Ms = percentileMs(cs.latencies, 0.99)
		var sum time.Duration
		for _, l := range cs.latencies {
			sum += l
		}
		if n := len(cs.latencies); n > 0 {
			cs.MeanMs = float64(sum) / float64(n) / float64(time.Millisecond)
		}
		cs.latencies = nil // measured; drop the raw samples
	}
}

// percentileMs is the nearest-rank percentile of sorted samples, in ms.
func percentileMs(sorted []time.Duration, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(q*float64(n)+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return float64(sorted[rank]) / float64(time.Millisecond)
}

// TotalShed sums sheds across classes.
func (rep *Report) TotalShed() int {
	total := 0
	for _, cs := range rep.Classes {
		total += cs.Shed
	}
	return total
}

// Validate checks one report's internal consistency — the schema gate
// CI runs on every generated BENCH_serve.json row.
func (rep *Report) Validate() error {
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	if rep.Mix == "" {
		fail("missing mix")
	} else if _, ok := Mixes[rep.Mix]; !ok {
		fail("unknown mix %q", rep.Mix)
	}
	if rep.OfferedRPS <= 0 || rep.DurationSec <= 0 {
		fail("non-positive offered_rps (%v) or duration_sec (%v)", rep.OfferedRPS, rep.DurationSec)
	}
	if rep.Offered <= 0 {
		fail("no offered arrivals")
	}
	if rep.Sent > rep.Offered {
		fail("sent %d exceeds offered %d", rep.Sent, rep.Offered)
	}
	if len(rep.Classes) == 0 {
		fail("no classes recorded")
	}
	sent := 0
	for class, cs := range rep.Classes {
		switch class {
		case ClassCached, ClassCold, ClassFigure:
		default:
			fail("unknown class %q", class)
			continue
		}
		sent += cs.Sent
		if got := cs.OK + cs.NotModified + cs.Shed + cs.Unavailable + cs.Errors; got != cs.Sent {
			fail("class %s: outcomes sum to %d, sent %d", class, got, cs.Sent)
		}
		if cs.P50Ms > cs.P95Ms || cs.P95Ms > cs.P99Ms {
			fail("class %s: percentiles not monotone (p50=%.3f p95=%.3f p99=%.3f)", class, cs.P50Ms, cs.P95Ms, cs.P99Ms)
		}
		if cs.ShedRate < 0 || cs.ShedRate > 1 || cs.NotModifiedRate < 0 || cs.NotModifiedRate > 1 {
			fail("class %s: rates out of [0,1]", class)
		}
	}
	if sent != rep.Sent {
		fail("class sents sum to %d, report sent %d", sent, rep.Sent)
	}
	return errors.Join(errs...)
}

// Fprint renders the human summary.
func (rep *Report) Fprint(w io.Writer) {
	label := rep.Label
	if label == "" {
		label = "-"
	}
	fmt.Fprintf(w, "mix=%s label=%s offered=%d sent=%d rate=%.1f/s window=%.1fs wall=%.1fs errors=%d corrupt=%d\n",
		rep.Mix, label, rep.Offered, rep.Sent, rep.OfferedRPS, rep.DurationSec, rep.WallSec, rep.Errors, rep.Corrupt)
	fmt.Fprintf(w, "  %-8s %6s %6s %5s %5s %5s %4s %9s %8s %8s %8s\n",
		"class", "sent", "ok", "304", "shed", "unavl", "err", "goodput/s", "p50ms", "p95ms", "p99ms")
	for _, class := range []string{ClassCached, ClassCold, ClassFigure} {
		cs, ok := rep.Classes[class]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %-8s %6d %6d %5d %5d %5d %4d %9.1f %8.2f %8.2f %8.2f\n",
			class, cs.Sent, cs.OK, cs.NotModified, cs.Shed, cs.Unavailable, cs.Errors,
			cs.GoodputRPS, cs.P50Ms, cs.P95Ms, cs.P99Ms)
	}
}

// Bench is the BENCH_serve.json file: a schema tag over accumulated
// runs, so before/after variants and offered-load sweeps live in one
// document.
type Bench struct {
	Schema string    `json:"schema"`
	Note   string    `json:"note,omitempty"`
	Runs   []*Report `json:"runs"`
}

// Validate checks the whole file.
func (b *Bench) Validate() error {
	var errs []error
	if b.Schema != BenchSchema {
		errs = append(errs, fmt.Errorf("schema %q, want %q", b.Schema, BenchSchema))
	}
	if len(b.Runs) == 0 {
		errs = append(errs, fmt.Errorf("no runs"))
	}
	for i, r := range b.Runs {
		if err := r.Validate(); err != nil {
			errs = append(errs, fmt.Errorf("run %d (%s/%s): %w", i, r.Label, r.Mix, err))
		}
	}
	return errors.Join(errs...)
}

// ReadBench loads and validates a BENCH_serve.json.
func ReadBench(path string) (*Bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("load: parsing %s: %w", path, err)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	return &b, nil
}

// AppendBench merges rep into the bench file at path, creating it if
// absent, and writes the result back validated.
func AppendBench(path string, rep *Report) error {
	b := &Bench{Schema: BenchSchema}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &b); err != nil {
			return fmt.Errorf("load: parsing existing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	b.Runs = append(b.Runs, rep)
	if err := b.Validate(); err != nil {
		return fmt.Errorf("load: refusing to write invalid %s: %w", path, err)
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
