// Package load is an open-loop load-test harness for pcstall-serve: a
// seeded, deterministic traffic generator that replays configurable
// request mixes against one or more backends and reports per-class
// outcome and latency distributions.
//
// Open-loop means the arrival schedule is fixed before the first
// request is sent: arrivals are drawn once from a seeded exponential
// (Poisson) process at the offered rate, and every request fires at its
// scheduled instant regardless of how many earlier requests are still
// outstanding. A closed-loop client (fixed concurrency, next request
// after the previous response) throttles itself exactly when the server
// degrades, hiding the overload the test exists to measure; an
// open-loop client keeps offering load while the server sheds, so shed
// rate and tail latency are measured against a truthful offered rate.
//
// Determinism: for a given (seed, mix, rate, duration, apps, figures)
// the schedule and the full request sequence — bodies, classes,
// validator replays — are identical across runs and machines. Only the
// measured outcomes vary with the server under test.
package load

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"pcstall/internal/wire"
	"pcstall/internal/xrand"
)

// Config shapes one load run: one mix, one offered-load point.
type Config struct {
	// Targets are backend base URLs (e.g. http://127.0.0.1:8080);
	// requests round-robin across them. Required.
	Targets []string
	// Mix names the request mix (see Mixes). Required.
	Mix string
	// Rate is the offered arrival rate in requests/second. Required > 0.
	Rate float64
	// Duration is the scheduled arrival window. Required > 0. The run
	// itself lasts until the last response (or timeout) lands.
	Duration time.Duration
	// Seed fixes the arrival schedule and request sequence.
	Seed uint64
	// Apps are workload names to draw sim configs from; default comd.
	Apps []string
	// Figures are artifact ids for figure-lane traffic; default 10.
	Figures []string
	// Timeout bounds each request (default 60s).
	Timeout time.Duration
	// Label tags the resulting report (e.g. "baseline", "lru+lanes").
	Label string
	// Client overrides the HTTP client (tests); nil builds one from
	// Timeout.
	Client *http.Client
	// Log, when non-nil, receives a short line per run phase.
	Log io.Writer
}

// outcome classification for one request.
const (
	outcomeOK          = "ok"
	outcomeNotModified = "not_modified"
	outcomeShed        = "shed"
	outcomeUnavailable = "unavailable"
	outcomeHTTPError   = "http_error"
	outcomeTransport   = "transport"
	outcomeCorrupt     = "corrupt"
)

// record is one completed request's measurement.
type record struct {
	class      string
	outcome    string
	latency    time.Duration
	retryAfter int
}

// schedule draws the fixed open-loop arrival offsets: exponential
// interarrivals at rate over the window. The last arrival is strictly
// inside the window; a pathological rate/duration pair that yields no
// arrivals is the caller's validation problem.
func schedule(rate float64, dur time.Duration, rng *xrand.State) []time.Duration {
	var arrivals []time.Duration
	t := 0.0
	limit := dur.Seconds()
	for {
		// Exponential interarrival: -ln(1-U)/rate, U in [0,1).
		t += -math.Log(1-rng.Float64()) / rate
		if t >= limit {
			return arrivals
		}
		arrivals = append(arrivals, time.Duration(t*float64(time.Second)))
	}
}

// etagStore remembers ETags per request body so later identical
// requests can replay them as If-None-Match and measure the 304 path.
type etagStore struct {
	mu sync.Mutex
	m  map[string]string // body -> etag
}

func (e *etagStore) get(body string) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.m[body]
}

func (e *etagStore) put(body, etag string) {
	if etag == "" {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.m[body] = etag
}

// Run executes one open-loop load run and returns its report. ctx
// cancellation stops dispatching new arrivals (already-fired requests
// run to their own timeouts); the report then covers what was sent.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("load: no targets")
	}
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("load: rate (%v) and duration (%v) must be positive", cfg.Rate, cfg.Duration)
	}
	mix, ok := Mixes[cfg.Mix]
	if !ok {
		return nil, fmt.Errorf("load: unknown mix %q (available: %s)", cfg.Mix, strings.Join(MixNames(), ", "))
	}
	apps := cfg.Apps
	if len(apps) == 0 {
		apps = []string{"comd"}
	}
	figures := cfg.Figures
	if len(figures) == 0 {
		figures = []string{"10"}
	}
	client := cfg.Client
	if client == nil {
		timeout := cfg.Timeout
		if timeout <= 0 {
			timeout = 60 * time.Second
		}
		client = &http.Client{Timeout: timeout}
	}

	// Deterministic plan: the schedule stream and the request stream are
	// split from the seed independently, so changing the mix never
	// perturbs the arrival instants (and vice versa).
	root := xrand.New(cfg.Seed)
	schedRng := root.Split(1)
	reqRng := root.Split(2)
	arrivals := schedule(cfg.Rate, cfg.Duration, &schedRng)
	reqs := make([]request, len(arrivals))
	for i := range reqs {
		reqs[i] = mix.generate(&reqRng, i, apps, figures)
	}
	if cfg.Log != nil {
		fmt.Fprintf(cfg.Log, "load: mix=%s rate=%.1f/s window=%s offered=%d targets=%d seed=%d\n",
			cfg.Mix, cfg.Rate, cfg.Duration, len(reqs), len(cfg.Targets), cfg.Seed)
	}

	etags := &etagStore{m: map[string]string{}}
	records := make([]record, len(reqs))
	var wg sync.WaitGroup
	start := time.Now()
	dispatched := 0
	for i := range reqs {
		// Hold the line open-loop: fire at the scheduled instant no
		// matter how many earlier requests are still in flight.
		if wait := time.Until(start.Add(arrivals[i])); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		dispatched++
		target := cfg.Targets[i%len(cfg.Targets)]
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			records[i] = fire(ctx, client, target, reqs[i], etags)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := newReport(cfg, len(reqs), dispatched, wall)
	for _, r := range records[:dispatched] {
		rep.add(r)
	}
	rep.finish(wall)
	return rep, nil
}

// fire sends one scheduled request and classifies its outcome. Settled
// 200 bodies are verified against their X-Pcstall-Digest stamp, so a
// harness run doubles as an end-to-end integrity sweep.
func fire(ctx context.Context, client *http.Client, target string, req request, etags *etagStore) record {
	rec := record{class: req.Class}
	var body io.Reader
	if req.Body != "" {
		body = strings.NewReader(req.Body)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, target+req.Path, body)
	if err != nil {
		rec.outcome = outcomeTransport
		return rec
	}
	if req.Body != "" {
		hreq.Header.Set("Content-Type", "application/json")
		if req.Replay {
			if etag := etags.get(req.Body); etag != "" {
				hreq.Header.Set("If-None-Match", etag)
			}
		}
	}
	begin := time.Now()
	resp, err := client.Do(hreq)
	if err != nil {
		rec.latency = time.Since(begin)
		rec.outcome = outcomeTransport
		return rec
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	rec.latency = time.Since(begin)
	if err != nil {
		rec.outcome = outcomeTransport
		return rec
	}
	switch resp.StatusCode {
	case http.StatusOK:
		rec.outcome = outcomeOK
		if req.Body != "" {
			etags.put(req.Body, resp.Header.Get("ETag"))
		}
		if stamp := resp.Header.Get(wire.DigestHeader); stamp != "" && wire.Digest(payload) != stamp {
			rec.outcome = outcomeCorrupt
		}
	case http.StatusNotModified:
		rec.outcome = outcomeNotModified
	case http.StatusTooManyRequests:
		rec.outcome = outcomeShed
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			rec.retryAfter = ra
		}
	case http.StatusServiceUnavailable:
		rec.outcome = outcomeUnavailable
	default:
		rec.outcome = outcomeHTTPError
	}
	return rec
}
