package load

import (
	"fmt"
	"sort"

	"pcstall/internal/xrand"
)

// Request classes: the admission-lane families the report buckets by.
// "cached" requests are expected to answer from the hot tier or result
// cache; "cold" requests are genuinely new simulations on the cold-sim
// lane; "figure" requests ride the figure lane.
const (
	ClassCached = "cached"
	ClassCold   = "cold"
	ClassFigure = "figure"
)

// request is one scheduled wire request.
type request struct {
	Class string // ClassCached | ClassCold | ClassFigure
	Path  string // /v1/sim or /v1/figures/<id>
	Body  string // JSON sim config; empty for figures
	// Replay attaches the remembered ETag for Body (if any) as
	// If-None-Match, exercising the 304 path.
	Replay bool
}

// Mix is one named traffic shape. generate must be deterministic in
// (rng stream, i, apps, figures).
type Mix struct {
	Name string
	Desc string

	generate func(rng *xrand.State, i int, apps, figures []string) request
}

// simBody renders the sparse sim config the harness sends: app + design
// + seed, everything else inherited from the server's platform so the
// job key matches what a CLI campaign on the same platform computes.
func simBody(app string, seed uint64) string {
	return fmt.Sprintf(`{"app":%q,"design":"PCSTALL","seed":%d}`, app, seed)
}

// cacheHotPool is the distinct-config pool the cache-hit-heavy mix
// cycles through: small enough that everything is warm within the first
// moments of the run.
const cacheHotPool = 8

// collideWindow is how many arrivals share one config in the
// singleflight-collision mix before it rotates to a fresh key.
const collideWindow = 32

// uniqueSeedBase offsets unique-mix seeds away from the small pool
// seeds, so "unique" traffic never accidentally warms a pool key.
const uniqueSeedBase = 1 << 20

// Mixes are the built-in traffic shapes.
var Mixes = map[string]Mix{
	"cachehot": {
		Name: "cachehot",
		Desc: "cache-hit heavy: a small warm pool of configs, half the replays carrying If-None-Match",
		generate: func(rng *xrand.State, i int, apps, figures []string) request {
			slot := i % cacheHotPool
			class := ClassCached
			if i < cacheHotPool {
				class = ClassCold // first pass over the pool computes
			}
			return request{
				Class:  class,
				Path:   "/v1/sim",
				Body:   simBody(apps[slot%len(apps)], uint64(slot)),
				Replay: rng.Float64() < 0.5,
			}
		},
	},
	"collide": {
		Name: "collide",
		Desc: "singleflight-collision heavy: every arrival in a window carries the identical config, rotating to a fresh key each window",
		generate: func(rng *xrand.State, i int, apps, figures []string) request {
			window := i / collideWindow
			class := ClassCached
			if i%collideWindow == 0 {
				class = ClassCold // the window opener computes
			}
			return request{
				Class: class,
				Path:  "/v1/sim",
				Body:  simBody(apps[window%len(apps)], uint64(window)),
			}
		},
	},
	"unique": {
		Name: "unique",
		Desc: "unique-config heavy: every request is a fresh cold simulation (distinct seed, no reuse)",
		generate: func(rng *xrand.State, i int, apps, figures []string) request {
			return request{
				Class: ClassCold,
				Path:  "/v1/sim",
				Body:  simBody(apps[i%len(apps)], uniqueSeedBase+uint64(i)),
			}
		},
	},
	"figlane": {
		Name: "figlane",
		Desc: "figure-lane: ~40% figure regenerations interleaved with unique cold sims, probing lane isolation",
		generate: func(rng *xrand.State, i int, apps, figures []string) request {
			if rng.Float64() < 0.4 {
				return request{
					Class: ClassFigure,
					Path:  "/v1/figures/" + figures[i%len(figures)],
				}
			}
			return request{
				Class: ClassCold,
				Path:  "/v1/sim",
				Body:  simBody(apps[i%len(apps)], uniqueSeedBase+uint64(i)),
			}
		},
	},
}

// MixNames lists the built-in mixes in stable order.
func MixNames() []string {
	names := make([]string, 0, len(Mixes))
	for n := range Mixes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
