package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHealthz: 200 "ok" while accepting work, 503 "draining" after
// StopAdmitting — the coordinator's quarantine probe relies on exactly
// this transition.
func TestHealthz(t *testing.T) {
	s, _ := newTestServer(t, &stubBackend{}, nil)
	get := func() (*httptest.ResponseRecorder, healthResponse) {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
		var h healthResponse
		if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
			t.Fatalf("healthz body: %v", err)
		}
		return w, h
	}
	w, h := get()
	if w.Code != http.StatusOK || h.Status != "ok" || h.Draining {
		t.Fatalf("healthy server: code=%d body=%+v", w.Code, h)
	}
	s.StopAdmitting()
	w, h = get()
	if w.Code != http.StatusServiceUnavailable || h.Status != "draining" || !h.Draining {
		t.Fatalf("draining server: code=%d body=%+v", w.Code, h)
	}
}

// TestSimETag: settled sim responses carry an ETag naming the job key,
// and a request whose If-None-Match names it is answered 304 with no
// body — the coordinator's re-dispatch bandwidth saver.
func TestSimETag(t *testing.T) {
	s, reg := newTestServer(t, &stubBackend{}, nil)
	body := simBody(1)

	w := postSim(t, s.Handler(), body)
	if w.Code != http.StatusOK {
		t.Fatalf("first sim: %d: %s", w.Code, w.Body.String())
	}
	etag := w.Header().Get("ETag")
	if etag == "" || etag[0] != '"' {
		t.Fatalf("settled response carries no quoted ETag: %q", etag)
	}

	// Matching validator: 304, empty body.
	req := httptest.NewRequest("POST", "/v1/sim", strings.NewReader(body))
	req.Header.Set("If-None-Match", etag)
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusNotModified || w.Body.Len() != 0 {
		t.Fatalf("matching If-None-Match: code=%d len=%d, want 304 empty", w.Code, w.Body.Len())
	}
	if got := reg.Snapshot().Counters["serve_etag_hits_total"]; got != 1 {
		t.Errorf("serve_etag_hits_total = %d, want 1", got)
	}

	// Stale validator: the full body again.
	req = httptest.NewRequest("POST", "/v1/sim", strings.NewReader(body))
	req.Header.Set("If-None-Match", `"deadbeefdeadbeef"`)
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK || w.Body.Len() == 0 {
		t.Fatalf("stale If-None-Match: code=%d len=%d, want 200 with body", w.Code, w.Body.Len())
	}
	if w.Header().Get("ETag") != etag {
		t.Errorf("ETag changed across requests for the same job: %q vs %q", w.Header().Get("ETag"), etag)
	}
}

// TestEtagMatch covers the validator list forms RFC 9110 allows.
func TestEtagMatch(t *testing.T) {
	cases := []struct {
		header string
		want   bool
	}{
		{`"abc"`, true},
		{`W/"abc"`, true},
		{`"x", "abc"`, true},
		{`*`, true},
		{`"x"`, false},
		{``, false},
	}
	for _, c := range cases {
		if got := etagMatch(c.header, `"abc"`); got != c.want {
			t.Errorf("etagMatch(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}
