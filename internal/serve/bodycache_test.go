package serve

import (
	"bytes"
	"fmt"
	"testing"
)

// TestBodyCacheBasics: put/get round-trips bytes and digest, a missing
// key misses, and a nil cache is inert.
func TestBodyCacheBasics(t *testing.T) {
	c := newBodyCache(1 << 10)
	body := []byte(`{"x":1}`)
	if ev := c.put("k1", body, "d1"); ev != 0 {
		t.Fatalf("put evicted %d, want 0", ev)
	}
	got, digest, ok := c.get("k1")
	if !ok || !bytes.Equal(got, body) || digest != "d1" {
		t.Fatalf("get = (%q, %q, %v), want (%q, %q, true)", got, digest, ok, body, "d1")
	}
	if _, _, ok := c.get("nope"); ok {
		t.Fatal("get on a missing key reported a hit")
	}

	var nilCache *bodyCache
	if _, _, ok := nilCache.get("k1"); ok {
		t.Fatal("nil cache reported a hit")
	}
	if ev := nilCache.put("k1", body, "d1"); ev != 0 {
		t.Fatal("nil cache put evicted")
	}
	if e, b := nilCache.stats(); e != 0 || b != 0 {
		t.Fatalf("nil cache stats = (%d, %d)", e, b)
	}
	if newBodyCache(0) != nil || newBodyCache(-1) != nil {
		t.Fatal("non-positive budget must disable the tier")
	}
}

// TestBodyCacheBoundedChurn: under sustained churn of distinct keys the
// cache never exceeds its byte budget, evicts in LRU order, and a get
// refreshes recency.
func TestBodyCacheBoundedChurn(t *testing.T) {
	const budget = 1000
	c := newBodyCache(budget)
	body := make([]byte, 100)
	evicted := 0
	for i := 0; i < 500; i++ {
		evicted += c.put(fmt.Sprintf("k%03d", i), body, "d")
		if _, size := c.stats(); size > budget {
			t.Fatalf("after put %d: size %d exceeds budget %d", i, size, budget)
		}
	}
	entries, size := c.stats()
	if entries != 10 || size != 1000 {
		t.Fatalf("steady state = (%d entries, %d bytes), want (10, 1000)", entries, size)
	}
	if evicted != 490 {
		t.Fatalf("evicted %d entries, want 490", evicted)
	}
	// The survivors are the most recent ten.
	for i := 490; i < 500; i++ {
		if _, _, ok := c.get(fmt.Sprintf("k%03d", i)); !ok {
			t.Fatalf("recent key k%03d was evicted", i)
		}
	}
	// Touching the oldest survivor protects it from the next eviction.
	c.get("k490")
	c.put("new", body, "d")
	if _, _, ok := c.get("k490"); !ok {
		t.Fatal("freshly touched key was evicted; recency not refreshed")
	}
	if _, _, ok := c.get("k491"); ok {
		t.Fatal("LRU key survived an over-budget put")
	}
}

// TestBodyCacheOversized: a body larger than the whole budget is not
// stored — it would evict everything to hold one entry.
func TestBodyCacheOversized(t *testing.T) {
	c := newBodyCache(64)
	c.put("small", make([]byte, 10), "d")
	if ev := c.put("huge", make([]byte, 65), "d"); ev != 0 {
		t.Fatalf("oversized put evicted %d entries", ev)
	}
	if _, _, ok := c.get("huge"); ok {
		t.Fatal("oversized body was stored")
	}
	if _, _, ok := c.get("small"); !ok {
		t.Fatal("oversized put displaced an existing entry")
	}
}

// TestBodyCacheDuplicatePut: re-putting a key refreshes recency without
// growing the accounted size (content-addressed keys mean same bytes).
func TestBodyCacheDuplicatePut(t *testing.T) {
	c := newBodyCache(1000)
	body := make([]byte, 100)
	c.put("a", body, "d")
	c.put("b", body, "d")
	c.put("a", body, "d") // refresh, not re-insert
	entries, size := c.stats()
	if entries != 2 || size != 200 {
		t.Fatalf("after duplicate put: (%d entries, %d bytes), want (2, 200)", entries, size)
	}
}
