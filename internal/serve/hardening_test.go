package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pcstall/internal/wire"
)

// Every settled body — success or error — must carry a digest stamped
// over the exact bytes written, or the coordinator's end-to-end
// integrity check has nothing to verify.
func TestSettledBodiesCarryDigest(t *testing.T) {
	s, _ := newTestServer(t, &stubBackend{}, nil)
	w := postSim(t, s.Handler(), simBody(1))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", w.Code)
	}
	stamp := w.Header().Get(wire.DigestHeader)
	if stamp == "" {
		t.Fatal("settled 200 missing digest header")
	}
	if got := wire.Digest(w.Body.Bytes()); got != stamp {
		t.Errorf("stamp %s does not cover the written bytes (hash %s)", stamp, got)
	}

	// A settled error body is stamped too: the coordinator must be able
	// to trust what the failure said.
	s2, _ := newTestServer(t, &stubBackend{failN: 1}, nil)
	w = postSim(t, s2.Handler(), simBody(2))
	if w.Code == http.StatusOK {
		t.Fatalf("expected a settled error, got 200")
	}
	stamp = w.Header().Get(wire.DigestHeader)
	if stamp == "" || stamp != wire.Digest(w.Body.Bytes()) {
		t.Errorf("settled error stamp %q does not cover body", stamp)
	}
}

// A tampered settled body must fail verification — the property the
// whole netchaos flip/trunc/dup recovery path rests on.
func TestDigestCatchesTampering(t *testing.T) {
	s, _ := newTestServer(t, &stubBackend{}, nil)
	w := postSim(t, s.Handler(), simBody(3))
	stamp := w.Header().Get(wire.DigestHeader)
	body := append([]byte(nil), w.Body.Bytes()...)
	if _, ok := wire.Check(stamp, body); !ok {
		t.Fatal("pristine body failed verification")
	}
	body[len(body)/2] ^= 0x01
	if _, ok := wire.Check(stamp, body); ok {
		t.Error("flipped byte passed verification")
	}
	if _, ok := wire.Check(stamp, body[:len(body)-2]); ok {
		t.Error("truncated body passed verification")
	}
	if _, ok := wire.Check(stamp, append(w.Body.Bytes(), w.Body.Bytes()...)); ok {
		t.Error("duplicated body passed verification")
	}
}

// Oversized sim configs are rejected 413 with a structured error, not
// streamed into the decoder.
func TestOversizedSimRequestRejected(t *testing.T) {
	s, _ := newTestServer(t, &stubBackend{}, nil)
	huge := `{"app":"` + strings.Repeat("x", maxSimRequestBytes+4096) + `"}`
	req := httptest.NewRequest("POST", "/v1/sim", strings.NewReader(huge))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", w.Code)
	}
	e := decodeError(t, w)
	if !strings.Contains(e.Error, "exceeds") {
		t.Errorf("413 body %q does not name the limit", e.Error)
	}
	// A request under the cap still works.
	if w := postSim(t, s.Handler(), simBody(4)); w.Code != http.StatusOK {
		t.Errorf("normal request after oversize rejection: status %d", w.Code)
	}
}
