package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pcstall/internal/dvfs"
	"pcstall/internal/exp"
	"pcstall/internal/orchestrate"
	"pcstall/internal/telemetry"
	"pcstall/internal/workload"
)

// stubBackend is a controllable Backend: RunSim counts calls, optionally
// blocks until released, and reports the contexts it ran under so tests
// can observe cancellation propagation.
type stubBackend struct {
	mu       sync.Mutex
	simCalls int32
	failN    int32         // fail the first N RunSim calls with an error
	block    chan struct{} // non-nil: RunSim waits for close (or ctx)
	figBlock chan struct{} // non-nil: Figure waits for close (or ctx)
	ctxErrs  chan error    // non-nil: RunSim reports why it stopped
	cached   map[string]*dvfs.Result
}

func (b *stubBackend) RunSim(ctx context.Context, j orchestrate.Job) (*dvfs.Result, error) {
	atomic.AddInt32(&b.simCalls, 1)
	if atomic.AddInt32(&b.failN, -1) >= 0 {
		return nil, fmt.Errorf("injected backend failure")
	}
	if b.block != nil {
		select {
		case <-b.block:
		case <-ctx.Done():
			if b.ctxErrs != nil {
				b.ctxErrs <- ctx.Err()
			}
			return nil, ctx.Err()
		}
	}
	return &dvfs.Result{}, nil
}

func (b *stubBackend) Cached(key string) (*dvfs.Result, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.cached[key]
	return r, ok
}

func (b *stubBackend) Figure(ctx context.Context, id string) (*exp.Table, error) {
	if b.figBlock != nil {
		select {
		case <-b.figBlock:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return &exp.Table{Title: "stub " + id}, nil
}

func (b *stubBackend) Stats() orchestrate.Stats { return orchestrate.Stats{} }

// testDefaults is a minimal valid platform for request merging.
func testDefaults() orchestrate.Job {
	return orchestrate.Job{
		EpochPs:      1_000_000, // 1us
		Objective:    "ED2P",
		CUsPerDomain: 1,
		CUs:          4,
		Scale:        0.25,
		Seed:         1,
		MaxTimePs:    1_000_000_000,
	}
}

func newTestServer(t *testing.T, backend *stubBackend, mutate func(*Config)) (*Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.New()
	cfg := Config{
		Backend:   backend,
		Defaults:  testDefaults(),
		FigureIDs: []string{"5", "14"},
		Metrics:   reg,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, reg
}

// simBody builds a valid request body; seed differentiates job keys.
func simBody(seed uint64) string {
	app := workload.Names()[0]
	return fmt.Sprintf(`{"app":%q,"design":"PCSTALL","seed":%d}`, app, seed)
}

func postSim(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/sim", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeError(t *testing.T, w *httptest.ResponseRecorder) apiError {
	t.Helper()
	var e apiError
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body is not structured JSON: %v\nbody: %s", err, w.Body.String())
	}
	if e.Version == "" {
		t.Errorf("error body missing version: %s", w.Body.String())
	}
	return e
}

// TestBadRequests holds every client-side failure to a 400 with a
// structured {"version","error"} body whose message lists the valid
// names, so clients can self-correct without reading docs.
func TestBadRequests(t *testing.T) {
	s, _ := newTestServer(t, &stubBackend{}, nil)
	app := workload.Names()[0]

	cases := []struct {
		name, body, want string
	}{
		{"malformed JSON", `{"app":`, "decoding sim config"},
		{"unknown field", `{"app":"x","frobnicate":1}`, "frobnicate"},
		{"missing app", `{"design":"PCSTALL"}`, "available"},
		{"unknown app", `{"app":"nope","design":"PCSTALL"}`, app},
		{"unknown design", fmt.Sprintf(`{"app":%q,"design":"nope"}`, app), "PCSTALL"},
		{"both epochs", fmt.Sprintf(`{"app":%q,"design":"PCSTALL","epoch_ps":5,"epoch_us":5}`, app), "not both"},
		{"bad objective", fmt.Sprintf(`{"app":%q,"design":"PCSTALL","objective":"FAST"}`, app), "ED2P"},
		{"negative", fmt.Sprintf(`{"app":%q,"design":"PCSTALL","cus":-1}`, app), "non-negative"},
		{"bad domains", fmt.Sprintf(`{"app":%q,"design":"PCSTALL","cus":4,"cus_per_domain":3}`, app), "divide"},
		{"bad chaos", fmt.Sprintf(`{"app":%q,"design":"PCSTALL","chaos":"lol=1"}`, app), "chaos"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postSim(t, s.Handler(), tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400\nbody: %s", w.Code, w.Body.String())
			}
			if e := decodeError(t, w); !strings.Contains(e.Error, tc.want) {
				t.Errorf("error %q does not mention %q", e.Error, tc.want)
			}
		})
	}
}

// TestSingleflight: K identical concurrent POSTs run exactly one
// simulation; every response is byte-identical, and the singleflight
// counter records the K-1 joins.
func TestSingleflight(t *testing.T) {
	const k = 8
	backend := &stubBackend{block: make(chan struct{})}
	s, reg := newTestServer(t, backend, nil)

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		bodies [][]byte
		codes  []int
	)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := postSim(t, s.Handler(), simBody(7))
			mu.Lock()
			bodies = append(bodies, w.Body.Bytes())
			codes = append(codes, w.Code)
			mu.Unlock()
		}()
	}
	// Let the requests pile onto the in-flight job, then release it.
	waitFor(t, func() bool {
		return reg.Counter("serve_singleflight_hits_total", "").Value() >= k-1
	})
	close(backend.block)
	wg.Wait()

	if got := atomic.LoadInt32(&backend.simCalls); got != 1 {
		t.Errorf("RunSim called %d times, want exactly 1", got)
	}
	if got := reg.Counter("serve_singleflight_hits_total", "").Value(); got != k-1 {
		t.Errorf("serve_singleflight_hits_total = %d, want %d", got, k-1)
	}
	for i, b := range bodies {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, codes[i], b)
		}
		if !bytes.Equal(b, bodies[0]) {
			t.Errorf("request %d body differs from request 0:\n%s\nvs\n%s", i, b, bodies[0])
		}
	}
	if len(bodies) > 0 && !strings.Contains(string(bodies[0]), `"status": "done"`) {
		t.Errorf("settled body missing done status: %s", bodies[0])
	}
}

// TestQueueFullSheds: with a full queue, a new distinct request is shed
// with 429 + Retry-After instead of queueing unboundedly.
func TestQueueFullSheds(t *testing.T) {
	backend := &stubBackend{block: make(chan struct{})}
	defer close(backend.block)
	s, reg := newTestServer(t, backend, func(c *Config) {
		c.MaxQueue = 1
		c.Workers = 1
	})

	// Fill the queue: an async request occupies the single slot.
	req := httptest.NewRequest("POST", "/v1/sim?async=1", strings.NewReader(simBody(1)))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("async admit: status %d, want 202\nbody: %s", w.Code, w.Body.String())
	}

	// A distinct job now sheds.
	w = postSim(t, s.Handler(), simBody(2))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429\nbody: %s", w.Code, w.Body.String())
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Error("429 missing Retry-After header")
	}
	decodeError(t, w)
	if got := reg.Counter(`serve_shed_total{class="cold"}`, "").Value(); got < 1 {
		t.Errorf(`serve_shed_total{class="cold"} = %d, want >= 1`, got)
	}

	// An identical request still joins: singleflight outranks shedding.
	req = httptest.NewRequest("POST", "/v1/sim?async=1", strings.NewReader(simBody(1)))
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Errorf("identical request while full: status %d, want 202 (singleflight join)", w.Code)
	}
}

// TestClientDisconnectCancels: when the only waiting client goes away,
// the job's context is cancelled and the simulation observes it.
func TestClientDisconnectCancels(t *testing.T) {
	backend := &stubBackend{
		block:   make(chan struct{}),
		ctxErrs: make(chan error, 1),
	}
	defer close(backend.block)
	s, reg := newTestServer(t, backend, nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", srv.URL+"/v1/sim", strings.NewReader(simBody(3)))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, rerr := http.DefaultClient.Do(req)
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- rerr
	}()

	// Wait until the stub is inside RunSim, then hang up.
	waitFor(t, func() bool { return atomic.LoadInt32(&backend.simCalls) == 1 })
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("client request unexpectedly succeeded")
	}

	select {
	case err := <-backend.ctxErrs:
		if err == nil {
			t.Fatal("job context reported nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("job context was not cancelled after the client disconnected")
	}
	waitFor(t, func() bool {
		return reg.Counter("serve_jobs_cancelled_total", "").Value() == 1
	})
}

// TestCacheShortCircuit: a cached result answers without admitting work.
func TestCacheShortCircuit(t *testing.T) {
	j := testDefaults()
	j.App = workload.Names()[0]
	j.Design = "PCSTALL"
	j.Seed = 9
	j.SimVersion = orchestrate.SimVersion
	backend := &stubBackend{cached: map[string]*dvfs.Result{j.Key(): {}}}
	s, reg := newTestServer(t, backend, nil)

	w := postSim(t, s.Handler(), simBody(9))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200\nbody: %s", w.Code, w.Body.String())
	}
	if got := atomic.LoadInt32(&backend.simCalls); got != 0 {
		t.Errorf("RunSim called %d times for a cached job, want 0", got)
	}
	if got := reg.Counter("serve_cache_short_circuit_total", "").Value(); got != 1 {
		t.Errorf("serve_cache_short_circuit_total = %d, want 1", got)
	}
	if got := reg.Counter("serve_jobs_total", "").Value(); got != 0 {
		t.Errorf("serve_jobs_total = %d, want 0 (cache hits must not queue)", got)
	}
	// The settled record is pollable like any admitted job.
	var resp simResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/v1/jobs/"+resp.ID, nil)
	pw := httptest.NewRecorder()
	s.Handler().ServeHTTP(pw, req)
	if pw.Code != http.StatusOK || !strings.Contains(pw.Body.String(), `"status": "done"`) {
		t.Errorf("poll after cache hit: status %d body %s", pw.Code, pw.Body.String())
	}
}

// TestAsyncLifecycle: 202 + Location, poll to done, SSE replays the
// settled frame.
func TestAsyncLifecycle(t *testing.T) {
	backend := &stubBackend{}
	s, _ := newTestServer(t, backend, nil)

	req := httptest.NewRequest("POST", "/v1/sim?async=1", strings.NewReader(simBody(4)))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want 202\nbody: %s", w.Code, w.Body.String())
	}
	loc := w.Header().Get("Location")
	if loc == "" {
		t.Fatal("202 missing Location header")
	}

	waitFor(t, func() bool {
		pw := httptest.NewRecorder()
		s.Handler().ServeHTTP(pw, httptest.NewRequest("GET", loc, nil))
		return strings.Contains(pw.Body.String(), `"status": "done"`)
	})

	// SSE on a settled job yields the done frame immediately.
	ew := httptest.NewRecorder()
	s.Handler().ServeHTTP(ew, httptest.NewRequest("GET", loc+"/events", nil))
	if !strings.Contains(ew.Body.String(), "event: done") {
		t.Errorf("SSE missing done frame:\n%s", ew.Body.String())
	}
}

// TestDrain: a draining server rejects new work with 503 and Drain
// returns once in-flight jobs settle.
func TestDrain(t *testing.T) {
	backend := &stubBackend{block: make(chan struct{})}
	s, _ := newTestServer(t, backend, nil)

	req := httptest.NewRequest("POST", "/v1/sim?async=1", strings.NewReader(simBody(5)))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("admit: status %d", w.Code)
	}

	s.StopAdmitting()
	w = postSim(t, s.Handler(), simBody(6))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503\nbody: %s", w.Code, w.Body.String())
	}
	decodeError(t, w)

	close(backend.block)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestDrainCancelsStragglers: a drain deadline cancels unsettled jobs
// rather than hanging forever.
func TestDrainCancelsStragglers(t *testing.T) {
	backend := &stubBackend{block: make(chan struct{})}
	defer close(backend.block)
	s, _ := newTestServer(t, backend, nil)

	req := httptest.NewRequest("POST", "/v1/sim?async=1", strings.NewReader(simBody(8)))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("admit: status %d", w.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain = %v, want context.DeadlineExceeded", err)
	}
}

// TestListings: the registry endpoints serve the same names the
// registries' own unknown-name errors print.
func TestListings(t *testing.T) {
	s, _ := newTestServer(t, &stubBackend{}, nil)
	for _, tc := range []struct{ path, want string }{
		{"/v1/workloads", workload.Names()[0]},
		{"/v1/designs", "PCSTALL"},
		{"/v1/figures", "14"},
		{"/v1/version", "pcstall-sim"},
	} {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest("GET", tc.path, nil))
		if w.Code != http.StatusOK {
			t.Errorf("%s: status %d", tc.path, w.Code)
		}
		if !strings.Contains(w.Body.String(), tc.want) {
			t.Errorf("%s body missing %q:\n%s", tc.path, tc.want, w.Body.String())
		}
		if v := w.Header().Get("Pcstall-Version"); v == "" {
			t.Errorf("%s: missing Pcstall-Version header", tc.path)
		}
	}

	// Unknown figure: 404 listing the valid ids.
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("POST", "/v1/figures/nope", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown figure: status %d", w.Code)
	}
	if e := decodeError(t, w); !strings.Contains(e.Error, "14") {
		t.Errorf("unknown-figure error does not list ids: %q", e.Error)
	}

	// Unknown job: 404.
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/v1/jobs/nope", nil))
	if w.Code != http.StatusNotFound {
		t.Errorf("unknown job: status %d", w.Code)
	}
}

// TestFigureFlow: figures ride the same queue/singleflight machinery.
func TestFigureFlow(t *testing.T) {
	s, _ := newTestServer(t, &stubBackend{}, nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("POST", "/v1/figures/5", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d\nbody: %s", w.Code, w.Body.String())
	}
	var resp figureResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Figure != "5" || resp.Status != "done" || resp.Table == nil {
		t.Errorf("unexpected figure response: %+v", resp)
	}
	if !strings.Contains(resp.Text, "stub 5") {
		t.Errorf("figure text missing table rendering: %q", resp.Text)
	}
}

// TestFailedJobNotPoisoned: a job that settles with an error must not
// poison its key — a retry with the same config recomputes instead of
// replaying the stale failure body until eviction.
func TestFailedJobNotPoisoned(t *testing.T) {
	backend := &stubBackend{failN: 1}
	s, _ := newTestServer(t, backend, nil)

	w := postSim(t, s.Handler(), simBody(11))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("first attempt: status %d, want 500\nbody: %s", w.Code, w.Body.String())
	}
	if e := decodeError(t, w); !strings.Contains(e.Error, "injected") {
		t.Fatalf("first attempt error = %q, want the injected failure", e.Error)
	}

	w = postSim(t, s.Handler(), simBody(11))
	if w.Code != http.StatusOK {
		t.Fatalf("retry: status %d, want 200 (fresh computation)\nbody: %s", w.Code, w.Body.String())
	}
	if got := atomic.LoadInt32(&backend.simCalls); got != 2 {
		t.Errorf("RunSim called %d times, want 2 (retry must recompute)", got)
	}

	// A successfully settled job still singleflight-joins.
	w = postSim(t, s.Handler(), simBody(11))
	if w.Code != http.StatusOK {
		t.Fatalf("third attempt: status %d, want 200", w.Code)
	}
	if got := atomic.LoadInt32(&backend.simCalls); got != 2 {
		t.Errorf("RunSim called %d times after success, want still 2 (settled OK joins)", got)
	}
}

// TestCancelledJobNotPoisoned: after a client disconnect settles a job
// as cancelled, a fresh identical request recomputes rather than
// replaying the 499 body.
func TestCancelledJobNotPoisoned(t *testing.T) {
	backend := &stubBackend{
		block:   make(chan struct{}),
		ctxErrs: make(chan error, 1),
	}
	s, _ := newTestServer(t, backend, nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", srv.URL+"/v1/sim", strings.NewReader(simBody(12)))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, rerr := http.DefaultClient.Do(req)
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- rerr
	}()
	waitFor(t, func() bool { return atomic.LoadInt32(&backend.simCalls) == 1 })
	cancel()
	<-errc
	<-backend.ctxErrs
	// Wait for the cancelled settlement to land.
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, j := range s.jobs {
			if j.settled {
				return true
			}
		}
		return false
	})

	close(backend.block) // the retry's RunSim returns promptly
	w := postSim(t, s.Handler(), simBody(12))
	if w.Code != http.StatusOK {
		t.Fatalf("retry after cancel: status %d, want 200\nbody: %s", w.Code, w.Body.String())
	}
	if got := atomic.LoadInt32(&backend.simCalls); got != 2 {
		t.Errorf("RunSim called %d times, want 2 (cancelled key must recompute)", got)
	}
}

// TestAsyncJoinSurvivesSyncDisconnect: an async request that
// singleflight-joins a sync-admitted job registers durable interest —
// the job must run to completion even after the original sync waiter
// disconnects.
func TestAsyncJoinSurvivesSyncDisconnect(t *testing.T) {
	backend := &stubBackend{block: make(chan struct{})}
	s, reg := newTestServer(t, backend, nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", srv.URL+"/v1/sim", strings.NewReader(simBody(13)))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, rerr := http.DefaultClient.Do(req)
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- rerr
	}()
	waitFor(t, func() bool { return atomic.LoadInt32(&backend.simCalls) == 1 })

	// Async client joins the in-flight sync job.
	areq := httptest.NewRequest("POST", "/v1/sim?async=1", strings.NewReader(simBody(13)))
	aw := httptest.NewRecorder()
	s.Handler().ServeHTTP(aw, areq)
	if aw.Code != http.StatusAccepted {
		t.Fatalf("async join: status %d, want 202\nbody: %s", aw.Code, aw.Body.String())
	}
	loc := aw.Header().Get("Location")
	id := strings.TrimPrefix(loc, "/v1/jobs/")

	// Sync client hangs up; wait until its reference is gone.
	cancel()
	<-errc
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		j := s.jobs[id]
		return j != nil && j.refs == 0
	})

	// The job survived (detached); release it and poll to done.
	close(backend.block)
	waitFor(t, func() bool {
		pw := httptest.NewRecorder()
		s.Handler().ServeHTTP(pw, httptest.NewRequest("GET", loc, nil))
		return strings.Contains(pw.Body.String(), `"status": "done"`)
	})
	if got := reg.Counter("serve_jobs_cancelled_total", "").Value(); got != 0 {
		t.Errorf("serve_jobs_cancelled_total = %d, want 0 (async interest must keep the job alive)", got)
	}
	if got := atomic.LoadInt32(&backend.simCalls); got != 1 {
		t.Errorf("RunSim called %d times, want 1", got)
	}
}

// TestFigureLaneDoesNotStarveSims: figure jobs wait on their own
// single-slot lane, so a blocked figure backlog leaves every sim
// worker slot free.
func TestFigureLaneDoesNotStarveSims(t *testing.T) {
	backend := &stubBackend{figBlock: make(chan struct{})}
	s, _ := newTestServer(t, backend, func(c *Config) {
		c.Workers = 1
	})

	// Two figure jobs: one holds the figure lane, one queues behind it.
	for _, id := range []string{"5", "14"} {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest("POST", "/v1/figures/"+id+"?async=1", nil))
		if w.Code != http.StatusAccepted {
			t.Fatalf("figure %s admit: status %d", id, w.Code)
		}
	}

	// With a single sim worker, a sim must still complete while both
	// figure jobs are pending.
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- postSim(t, s.Handler(), simBody(14)) }()
	select {
	case w := <-done:
		if w.Code != http.StatusOK {
			t.Fatalf("sim under figure backlog: status %d\nbody: %s", w.Code, w.Body.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sim starved: figure backlog is occupying sim worker slots")
	}

	close(backend.figBlock)
	waitFor(t, func() bool {
		pw := httptest.NewRecorder()
		s.Handler().ServeHTTP(pw, httptest.NewRequest("GET", "/v1/jobs/fig-14", nil))
		return strings.Contains(pw.Body.String(), `"status": "done"`)
	})
}

// waitFor polls cond with a deadline, failing the test on timeout.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not met within 5s")
}
