package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pcstall/internal/exp"
	"pcstall/internal/telemetry"
	"pcstall/internal/wire"
)

// tinySuite mirrors the exp package's unit-test platform: a small GPU,
// short workloads, one app.
func tinySuite(cacheDir string) *exp.Suite {
	cfg := exp.DefaultConfig()
	cfg.CUs = 2
	cfg.Scale = 0.25
	cfg.TraceEpochs = 12
	cfg.Apps = []string{"comd"}
	cfg.CacheDir = cacheDir
	return exp.NewSuite(cfg)
}

// TestFigureGolden holds the serving path to the CLI's output: the
// figure text a server renders must be byte-identical to what the suite
// (and therefore pcstall-exp) prints for the same figure on the same
// platform and cache directory. Any divergence means the HTTP layer
// perturbed the computation.
func TestFigureGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	const figID = "10"
	cacheDir := t.TempDir()

	// Direct path: what pcstall-exp would print.
	direct := tinySuite(cacheDir)
	tb, err := direct.Figure(nil, figID)
	if err != nil {
		t.Fatalf("direct figure: %v", err)
	}
	var want strings.Builder
	tb.Fprint(&want)
	if err := direct.Close(); err != nil {
		t.Fatal(err)
	}

	// Serving path: same platform, same cache dir, through HTTP.
	suite := tinySuite(cacheDir)
	defer suite.Close()
	s, err := New(Config{
		Backend:   suite,
		Defaults:  suite.SimDefaults(),
		FigureIDs: suite.ArtifactIDs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("POST", "/v1/figures/"+figID, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d\nbody: %s", w.Code, w.Body.String())
	}
	var resp figureResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Text != want.String() {
		t.Errorf("served figure %s diverges from the direct rendering:\n--- direct ---\n%s--- served ---\n%s", figID, want.String(), resp.Text)
	}

	// The shared cache means the served run recomputed nothing.
	st := suite.Stats()
	if st.Misses != 0 {
		t.Errorf("served figure missed the shared cache %d times; keys diverged between CLI and server", st.Misses)
	}
}

// TestSimGolden: a POST /v1/sim that sets only app+design computes the
// same job (same cache key, same result) as the server's default
// platform run directly through the suite — and a replay of the same
// request, served from the rendered-body LRU, is byte-identical to the
// cold rendering, ETag and wire digest included.
func TestSimGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	suite := tinySuite(t.TempDir())
	defer suite.Close()
	reg := telemetry.New()
	s, err := New(Config{
		Backend:   suite,
		Defaults:  suite.SimDefaults(),
		FigureIDs: suite.ArtifactIDs(),
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("POST", "/v1/sim",
		strings.NewReader(`{"app":"comd","design":"PCSTALL"}`)))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d\nbody: %s", w.Code, w.Body.String())
	}
	var resp simResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result == nil {
		t.Fatal("sim response carries no result")
	}
	// The job the server built must already be settled under the same
	// key the orchestrator would compute for it.
	if _, ok := suite.Cached(resp.Job.Key()); !ok {
		t.Errorf("server job key %s not in the suite cache", resp.Job.Key())
	}
	if resp.ID != resp.Job.Key() {
		t.Errorf("response id %s != job key %s", resp.ID, resp.Job.Key())
	}

	// Replay: the hot tier must serve the settled rendering verbatim.
	rw := httptest.NewRecorder()
	s.Handler().ServeHTTP(rw, httptest.NewRequest("POST", "/v1/sim",
		strings.NewReader(`{"app":"comd","design":"PCSTALL"}`)))
	if rw.Code != http.StatusOK {
		t.Fatalf("replay status = %d\nbody: %s", rw.Code, rw.Body.String())
	}
	if !bytes.Equal(rw.Body.Bytes(), w.Body.Bytes()) {
		t.Error("LRU-served body diverges from the cold-rendered body")
	}
	if a, b := w.Header().Get("ETag"), rw.Header().Get("ETag"); a == "" || a != b {
		t.Errorf("ETag diverged on replay: %q vs %q", a, b)
	}
	a, b := w.Header().Get(wire.DigestHeader), rw.Header().Get(wire.DigestHeader)
	if a == "" || a != b {
		t.Errorf("%s diverged on replay: %q vs %q", wire.DigestHeader, a, b)
	}
	if got := wire.Digest(rw.Body.Bytes()); got != b {
		t.Errorf("replay digest stamp %q does not cover the body (%q)", b, got)
	}
	if got := reg.Snapshot().Counters["serve_body_cache_hits_total"]; got != 1 {
		t.Errorf("serve_body_cache_hits_total = %d, want 1 (the replay)", got)
	}
}
