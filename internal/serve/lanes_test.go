package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"pcstall/internal/dvfs"
	"pcstall/internal/orchestrate"
	"pcstall/internal/wire"
	"pcstall/internal/workload"
)

// postFigure posts one figure-regeneration request.
func postFigure(t *testing.T, h http.Handler, id string, async bool) *httptest.ResponseRecorder {
	t.Helper()
	url := "/v1/figures/" + id
	if async {
		url += "?async=1"
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", url, nil))
	return w
}

// TestBodyLRUHit: the first settlement of a sim promotes its rendered
// body into the hot tier; an identical later request is served from the
// LRU byte-identically — same body, same ETag, same wire digest —
// without running a simulation, touching the result cache, or
// re-rendering JSON.
func TestBodyLRUHit(t *testing.T) {
	backend := &stubBackend{}
	s, reg := newTestServer(t, backend, nil)

	first := postSim(t, s.Handler(), simBody(21))
	if first.Code != http.StatusOK {
		t.Fatalf("first sim: %d: %s", first.Code, first.Body.String())
	}
	second := postSim(t, s.Handler(), simBody(21))
	if second.Code != http.StatusOK {
		t.Fatalf("second sim: %d: %s", second.Code, second.Body.String())
	}

	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Errorf("LRU-served body differs from the cold-rendered one:\n%s\nvs\n%s",
			second.Body.String(), first.Body.String())
	}
	if a, b := first.Header().Get("ETag"), second.Header().Get("ETag"); a == "" || a != b {
		t.Errorf("ETag diverged across the hot tier: %q vs %q", a, b)
	}
	a, b := first.Header().Get(wire.DigestHeader), second.Header().Get(wire.DigestHeader)
	if a == "" || a != b {
		t.Errorf("%s diverged across the hot tier: %q vs %q", wire.DigestHeader, a, b)
	}
	if got := wire.Digest(second.Body.Bytes()); got != b {
		t.Errorf("LRU digest stamp %q does not match the body (%q)", b, got)
	}

	if got := atomic.LoadInt32(&backend.simCalls); got != 1 {
		t.Errorf("RunSim called %d times, want 1 (second request must hit the LRU)", got)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["serve_body_cache_hits_total"]; got != 1 {
		t.Errorf("serve_body_cache_hits_total = %d, want 1", got)
	}
	if got := snap.Counters["serve_cache_short_circuit_total"]; got != 0 {
		t.Errorf("serve_cache_short_circuit_total = %d, want 0 (LRU outranks the result cache)", got)
	}

	// A coordinator replaying with the validator gets 304 off the LRU.
	req := httptest.NewRequest("POST", "/v1/sim", strings.NewReader(simBody(21)))
	req.Header.Set("If-None-Match", first.Header().Get("ETag"))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusNotModified || w.Body.Len() != 0 {
		t.Errorf("If-None-Match on LRU hit: code=%d len=%d, want 304 empty", w.Code, w.Body.Len())
	}
}

// TestBodyLRUDisabled: a negative BodyCacheBytes turns the tier off —
// identical requests still answer byte-identically (singleflight on the
// settled job), but nothing counts as a body-cache hit.
func TestBodyLRUDisabled(t *testing.T) {
	backend := &stubBackend{}
	s, reg := newTestServer(t, backend, func(c *Config) {
		c.BodyCacheBytes = -1
	})
	first := postSim(t, s.Handler(), simBody(22))
	second := postSim(t, s.Handler(), simBody(22))
	if first.Code != http.StatusOK || second.Code != http.StatusOK {
		t.Fatalf("codes %d, %d", first.Code, second.Code)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("bodies diverged with the LRU disabled")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["serve_body_cache_hits_total"]; got != 0 {
		t.Errorf("serve_body_cache_hits_total = %d, want 0 when disabled", got)
	}
	if got := snap.Counters["serve_singleflight_hits_total"]; got != 1 {
		t.Errorf("serve_singleflight_hits_total = %d, want 1 (settled job join)", got)
	}
}

// TestBodyLRUCachedPromotion: a result-cache short-circuit renders once
// and promotes the body, so the next identical request never touches
// the result cache again.
func TestBodyLRUCachedPromotion(t *testing.T) {
	j := testDefaults()
	j.App = workload.Names()[0]
	j.Design = "PCSTALL"
	j.Seed = 23
	j.SimVersion = orchestrate.SimVersion
	backend := &stubBackend{cached: map[string]*dvfs.Result{j.Key(): {}}}
	s, reg := newTestServer(t, backend, nil)

	first := postSim(t, s.Handler(), simBody(23))
	second := postSim(t, s.Handler(), simBody(23))
	if first.Code != http.StatusOK || second.Code != http.StatusOK {
		t.Fatalf("codes %d, %d", first.Code, second.Code)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("bodies diverged between result-cache render and LRU replay")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["serve_cache_short_circuit_total"]; got != 1 {
		t.Errorf("serve_cache_short_circuit_total = %d, want 1 (only the first request)", got)
	}
	if got := snap.Counters["serve_body_cache_hits_total"]; got != 1 {
		t.Errorf("serve_body_cache_hits_total = %d, want 1", got)
	}
}

// TestBodyLRUEvictionBounded: a server whose body budget holds one
// rendered body evicts under churn instead of growing, and publishes
// the shape truthfully.
func TestBodyLRUEvictionBounded(t *testing.T) {
	// Measure one rendered body on a throwaway server.
	probe := postSim(t, func() http.Handler {
		s, _ := newTestServer(t, &stubBackend{}, nil)
		return s.Handler()
	}(), simBody(31))
	if probe.Code != http.StatusOK {
		t.Fatalf("probe sim: %d", probe.Code)
	}
	budget := int64(probe.Body.Len()) * 3 / 2 // fits one body, not two

	s, reg := newTestServer(t, &stubBackend{}, func(c *Config) {
		c.BodyCacheBytes = budget
	})
	for _, seed := range []uint64{31, 32, 33} {
		if w := postSim(t, s.Handler(), simBody(seed)); w.Code != http.StatusOK {
			t.Fatalf("seed %d: %d: %s", seed, w.Code, w.Body.String())
		}
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["serve_body_cache_bytes"]; int64(got) > budget {
		t.Errorf("serve_body_cache_bytes = %v exceeds budget %d", got, budget)
	}
	if got := snap.Gauges["serve_body_cache_entries"]; got != 1 {
		t.Errorf("serve_body_cache_entries = %v, want 1 under a one-body budget", got)
	}
	if got := snap.Counters["serve_body_cache_evictions_total"]; got != 2 {
		t.Errorf("serve_body_cache_evictions_total = %d, want 2", got)
	}
}

// TestFigureQueueFullSheds: the figure lane bounds figures on its own
// budget — shedding them with a figure-lane Retry-After and counter —
// while cold sims keep flowing untouched.
func TestFigureQueueFullSheds(t *testing.T) {
	backend := &stubBackend{figBlock: make(chan struct{})}
	defer close(backend.figBlock)
	s, reg := newTestServer(t, backend, func(c *Config) {
		c.FigureQueue = 1
		c.Workers = 1
	})

	if w := postFigure(t, s.Handler(), "5", true); w.Code != http.StatusAccepted {
		t.Fatalf("figure admit: status %d", w.Code)
	}
	w := postFigure(t, s.Handler(), "14", false)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("figure over budget: status %d, want 429\nbody: %s", w.Code, w.Body.String())
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Error("figure 429 missing Retry-After")
	}
	if e := decodeError(t, w); !strings.Contains(e.Error, "figure admission queue full") {
		t.Errorf("shed error does not name the figure lane: %q", e.Error)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`serve_shed_total{class="figure"}`]; got != 1 {
		t.Errorf(`serve_shed_total{class="figure"} = %d, want 1`, got)
	}
	if got := snap.Counters[`serve_shed_total{class="cold"}`]; got != 0 {
		t.Errorf(`serve_shed_total{class="cold"} = %d, want 0`, got)
	}

	// The figure backlog never sheds a sim.
	if w := postSim(t, s.Handler(), simBody(41)); w.Code != http.StatusOK {
		t.Errorf("sim under figure backlog: status %d, want 200", w.Code)
	}
}

// TestRetryAfterPerLane: each lane's Retry-After is computed from its
// own backlog and cost model. A saturated cold-sim lane (8 queued jobs
// behind one worker) must not inflate the hint a shed figure client
// receives, and vice versa.
func TestRetryAfterPerLane(t *testing.T) {
	backend := &stubBackend{
		block:    make(chan struct{}),
		figBlock: make(chan struct{}),
	}
	defer close(backend.block)
	defer close(backend.figBlock)
	s, _ := newTestServer(t, backend, func(c *Config) {
		c.MaxQueue = 8
		c.FigureQueue = 1
		c.Workers = 1
	})

	// Boundary: exactly MaxQueue admissions succeed...
	for seed := uint64(50); seed < 58; seed++ {
		req := httptest.NewRequest("POST", "/v1/sim?async=1", strings.NewReader(simBody(seed)))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusAccepted {
			t.Fatalf("seed %d: status %d, want 202 (under the bound)", seed, w.Code)
		}
	}
	// ...and one figure fills its own lane.
	if w := postFigure(t, s.Handler(), "5", true); w.Code != http.StatusAccepted {
		t.Fatalf("figure admit under cold backlog: status %d, want 202", w.Code)
	}

	// The 9th distinct sim sheds: no observed settlements and a zero
	// Stats fallback mean 1s/job, backlog 8, one worker => 8s.
	w := postSim(t, s.Handler(), simBody(58))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-bound sim: status %d, want 429", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "8" {
		t.Errorf("cold Retry-After = %q, want \"8\" (backlog 8 / 1 worker x 1s)", ra)
	}

	// A shed figure answers from the figure lane's model: backlog 1,
	// 30s first-figure guess, single figure slot => 30s — regardless of
	// the eight cold sims queued next door.
	w = postFigure(t, s.Handler(), "14", false)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-bound figure: status %d, want 429", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "30" {
		t.Errorf("figure Retry-After = %q, want \"30\" (cold backlog must not leak in)", ra)
	}
}

// TestHealthzQueues: /healthz breaks the queue shape out per admission
// lane with capacities, while the aggregate fields stay the lane sums.
func TestHealthzQueues(t *testing.T) {
	backend := &stubBackend{
		block:    make(chan struct{}),
		figBlock: make(chan struct{}),
	}
	defer close(backend.block)
	defer close(backend.figBlock)
	s, _ := newTestServer(t, backend, func(c *Config) {
		c.MaxQueue = 5
		c.FigureQueue = 3
		c.Workers = 1
	})
	for _, seed := range []uint64{61, 62} {
		req := httptest.NewRequest("POST", "/v1/sim?async=1", strings.NewReader(simBody(seed)))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusAccepted {
			t.Fatalf("seed %d: status %d", seed, w.Code)
		}
	}
	if w := postFigure(t, s.Handler(), "5", true); w.Code != http.StatusAccepted {
		t.Fatalf("figure admit: status %d", w.Code)
	}

	var h healthResponse
	waitFor(t, func() bool {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
		if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
			t.Fatalf("healthz body: %v", err)
		}
		// One sim running + one queued, one figure running.
		return h.Queues["cold"].Running == 1 && h.Queues["figure"].Running == 1
	})
	cold, fig := h.Queues["cold"], h.Queues["figure"]
	if cold.QueueDepth != 1 || cold.Capacity != 5 {
		t.Errorf("cold lane = %+v, want queue_depth 1 capacity 5", cold)
	}
	if fig.QueueDepth != 0 || fig.Capacity != 3 {
		t.Errorf("figure lane = %+v, want queue_depth 0 capacity 3", fig)
	}
	if h.QueueDepth != cold.QueueDepth+fig.QueueDepth || h.Running != cold.Running+fig.Running {
		t.Errorf("aggregates (%d, %d) are not the lane sums: %+v", h.QueueDepth, h.Running, h.Queues)
	}
}

// TestSharedLaneLegacy: a negative FigureQueue collapses figures onto
// the sim lane — the pre-lane aggregate discipline. Sheds count under
// class "all" and /healthz reports the single shared lane.
func TestSharedLaneLegacy(t *testing.T) {
	backend := &stubBackend{block: make(chan struct{})}
	defer close(backend.block)
	s, reg := newTestServer(t, backend, func(c *Config) {
		c.MaxQueue = 1
		c.FigureQueue = -1
		c.Workers = 1
	})

	req := httptest.NewRequest("POST", "/v1/sim?async=1", strings.NewReader(simBody(71)))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("admit: status %d", w.Code)
	}

	// In shared mode a figure sheds behind the sim backlog.
	w = postFigure(t, s.Handler(), "5", false)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("figure behind shared backlog: status %d, want 429", w.Code)
	}
	if e := decodeError(t, w); !strings.Contains(e.Error, "all admission queue full") {
		t.Errorf("shed error does not name the shared lane: %q", e.Error)
	}
	if got := reg.Snapshot().Counters[`serve_shed_total{class="all"}`]; got != 1 {
		t.Errorf(`serve_shed_total{class="all"} = %d, want 1`, got)
	}

	hw := httptest.NewRecorder()
	s.Handler().ServeHTTP(hw, httptest.NewRequest("GET", "/healthz", nil))
	var h healthResponse
	if err := json.Unmarshal(hw.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if len(h.Queues) != 1 || h.Queues["all"].Capacity != 1 {
		t.Errorf("shared-mode /healthz queues = %+v, want one \"all\" lane with capacity 1", h.Queues)
	}
}
