package serve

import (
	"container/list"
	"sync"
)

// bodyCache is the serving layer's hot tier: a bounded in-memory LRU of
// fully rendered response bodies keyed by the SimVersion'd job key. It
// sits above the orchestrator's memo and JSONL disk cache — those hold
// *dvfs.Result records, so every hit through them still pays a JSON
// render (MarshalIndent over the whole result); a bodyCache hit returns
// the exact bytes a previous settlement produced, plus their
// pre-computed wire digest, and pays neither.
//
// Safety rests on the same invariant the singleflight fan-out already
// relies on: a job key is a content address (SimVersion included), so
// matching keys means matching bodies, byte for byte. Entries are only
// ever populated from settled-OK renders, and the stored slices are
// treated as immutable by every reader (settle publishes them read-only).
//
// A nil *bodyCache is valid and disables the tier: every method is a
// cheap nil check, mirroring the telemetry idiom.
type bodyCache struct {
	mu    sync.Mutex
	max   int64 // byte budget across stored bodies
	size  int64
	ll    *list.List // *bodyEntry values; front = most recently used
	byKey map[string]*list.Element
}

// bodyEntry is one cached rendering: the settled bytes and the
// wire.Digest stamp computed over them at settle time.
type bodyEntry struct {
	key    string
	body   []byte
	digest string
}

// newBodyCache builds a cache bounded to max bytes of stored bodies;
// max <= 0 disables the tier (returns nil).
func newBodyCache(max int64) *bodyCache {
	if max <= 0 {
		return nil
	}
	return &bodyCache{
		max:   max,
		ll:    list.New(),
		byKey: map[string]*list.Element{},
	}
}

// get returns the cached body and digest for key, refreshing its
// recency. The returned slice must not be mutated.
func (c *bodyCache) get(key string) (body []byte, digest string, ok bool) {
	if c == nil {
		return nil, "", false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, "", false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*bodyEntry)
	return e.body, e.digest, true
}

// put stores a settled body under key, evicting least-recently-used
// entries until the byte budget holds. A body larger than the whole
// budget is not stored (it would evict everything for one entry). put
// reports how many entries were evicted, so the caller can count them.
func (c *bodyCache) put(key string, body []byte, digest string) (evicted int) {
	if c == nil || int64(len(body)) > c.max {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		// Same key, same bytes (content-addressed): just refresh recency.
		c.ll.MoveToFront(el)
		return 0
	}
	el := c.ll.PushFront(&bodyEntry{key: key, body: body, digest: digest})
	c.byKey[key] = el
	c.size += int64(len(body))
	for c.size > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*bodyEntry)
		c.ll.Remove(back)
		delete(c.byKey, e.key)
		c.size -= int64(len(e.body))
		evicted++
	}
	return evicted
}

// stats snapshots the cache shape for gauges.
func (c *bodyCache) stats() (entries int, bytes int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.size
}
