package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"pcstall/internal/tracing"
)

// startAsyncJob admits one async (detached) blocking job and returns its id.
func startAsyncJob(t *testing.T, s *Server, seed uint64) string {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/sim?async=1", strings.NewReader(simBody(seed)))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("async admit: got %d, want 202: %s", w.Code, w.Body.String())
	}
	var jr jobResponse
	if err := json.Unmarshal(w.Body.Bytes(), &jr); err != nil {
		t.Fatalf("decoding 202 body: %v", err)
	}
	return jr.ID
}

// readSSEFrame reads one SSE frame (event name + reassembled data) from br.
func readSSEFrame(t *testing.T, br *bufio.Reader) (event string, data []byte) {
	t.Helper()
	var lines []string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		if line == "" {
			if event != "" || len(lines) > 0 {
				return event, []byte(strings.Join(lines, "\n"))
			}
			continue
		}
		if v, ok := strings.CutPrefix(line, "event: "); ok {
			event = v
		} else if v, ok := strings.CutPrefix(line, "data: "); ok {
			lines = append(lines, v)
		}
	}
}

// TestSSEDisconnectReleasesSubscription proves a streaming client that
// goes away releases everything it held: the job's waiter reference
// drops (without cancelling the detached job) and the handler goroutine
// exits instead of ticking progress frames into a dead connection.
func TestSSEDisconnectReleasesSubscription(t *testing.T) {
	backend := &stubBackend{block: make(chan struct{})}
	s, _ := newTestServer(t, backend, nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	id := startAsyncJob(t, s, 41)
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("attaching SSE stream: %v", err)
	}
	defer resp.Body.Close()
	// The first progress frame proves the handler goroutine is live and
	// the stream registered as a waiter.
	if ev, _ := readSSEFrame(t, bufio.NewReader(resp.Body)); ev != "progress" {
		t.Fatalf("first SSE frame = %q, want progress", ev)
	}
	s.mu.Lock()
	refs := s.jobs[id].refs
	s.mu.Unlock()
	if refs != 1 {
		t.Fatalf("job refs with one SSE client = %d, want 1", refs)
	}

	cancel() // client disconnects mid-stream
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.jobs[id].refs == 0
	})
	// Handler and transport goroutines wind down to (about) where we
	// started; the blocked job goroutine predates base so it does not
	// mask a leaked stream handler.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= base+2 })

	// Detached jobs outlive their audience: the disconnect must not
	// have cancelled the simulation.
	s.mu.Lock()
	st := s.jobs[id].status
	s.mu.Unlock()
	if st == statusCancelled {
		t.Fatalf("detached job was cancelled by SSE disconnect")
	}
	close(backend.block)
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.jobs[id].settled
	})
}

// TestSSEEventsCarryTraceID checks a traced server stamps every
// progress frame with the job's distributed trace ID, so a streaming
// client can jump straight to /debug/traces/{id} on any process the
// job touched.
func TestSSEEventsCarryTraceID(t *testing.T) {
	backend := &stubBackend{block: make(chan struct{})}
	tr := tracing.New("serve-test", 16)
	s, _ := newTestServer(t, backend, func(c *Config) { c.Tracer = tr })
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	id := startAsyncJob(t, s, 42)
	s.mu.Lock()
	want := s.jobs[id].traceID
	s.mu.Unlock()
	if want == "" {
		t.Fatal("traced server admitted a job without a trace ID")
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("attaching SSE stream: %v", err)
	}
	defer resp.Body.Close()
	ev, data := readSSEFrame(t, bufio.NewReader(resp.Body))
	if ev != "progress" {
		t.Fatalf("first SSE frame = %q, want progress", ev)
	}
	var pe progressEvent
	if err := json.Unmarshal(data, &pe); err != nil {
		t.Fatalf("progress frame is not JSON: %v\n%s", err, data)
	}
	if pe.TraceID != want {
		t.Fatalf("progress frame trace_id = %q, want %q", pe.TraceID, want)
	}
	close(backend.block)
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.jobs[id].settled
	})
}

// TestRemoteTraceJoinsJob is the cross-process stitch: a request
// carrying a coordinator's X-Pcstall-Trace header must land the
// backend's request and job spans in the flight recorder under the
// coordinator's trace ID.
func TestRemoteTraceJoinsJob(t *testing.T) {
	backend := &stubBackend{}
	tr := tracing.New("serve-test", 16)
	s, _ := newTestServer(t, backend, func(c *Config) { c.Tracer = tr })

	coord := tracing.New("coord", 4)
	cctx, cspan := tracing.Start(tracing.WithTracer(context.Background(), coord), "dist.dispatch")
	req := httptest.NewRequest("POST", "/v1/sim", strings.NewReader(simBody(43)))
	tracing.Inject(cctx, req.Header)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("sim request: got %d: %s", w.Code, w.Body.String())
	}
	cspan.End()

	td, ok := tr.Recorder().Trace(cspan.TraceID())
	if !ok {
		t.Fatalf("backend recorder has no trace %s (retained %d)", cspan.TraceID(), len(tr.Recorder().Traces()))
	}
	names := map[string]bool{}
	for _, sp := range td.Spans {
		names[sp.Name] = true
		if sp.TraceID != cspan.TraceID() {
			t.Fatalf("span %s carries trace %s, want %s", sp.Name, sp.TraceID, cspan.TraceID())
		}
	}
	if !names["serve.sim"] || !names["serve.job"] {
		t.Fatalf("trace spans %v missing serve.sim/serve.job", names)
	}
}
