// Package serve is the simulation-as-a-service layer: a stdlib-only
// HTTP front end over the experiment suite and its orchestrator, built
// for sustained traffic rather than one-shot campaigns.
//
// The serving core applies four disciplines in order on every request:
//
//  1. Hot tier — a bounded in-memory LRU of fully rendered response
//     bodies keyed by the content-addressed job key. A hit returns the
//     exact bytes (and wire digest) of a previous settlement without
//     touching the result cache or re-rendering JSON.
//  2. Cache short-circuit — a request whose content-addressed job key
//     (orchestrate.Job.Key, SimVersion included) is already settled in
//     the orchestrator's memo or disk cache is answered immediately,
//     consuming neither queue capacity nor a worker slot; the rendered
//     body is promoted into the hot tier.
//  3. Singleflight — N identical concurrent requests collapse onto one
//     job: the first admission computes, the rest attach as waiters and
//     receive the identical rendered bytes when it settles.
//  4. Admission control — genuinely new work enters a bounded per-class
//     queue: cold simulations and figure regenerations each have their
//     own lane, so a flood of expensive cold sims can never shed a
//     figure request (or vice versa). When a lane's queued+running
//     reaches its bound, requests are shed with 429 and a Retry-After
//     estimated from that lane's observed job times, instead of
//     queueing unboundedly.
//
// Per-request deadlines and client disconnects propagate through the
// job's context down to the simulation's per-epoch cancellation checks
// (dvfs.RunConfig.Ctx), so abandoned work winds down at the next epoch
// boundary. Drain reuses the campaign shutdown discipline: stop
// admitting, finish or cancel in-flight jobs, and leave the caller to
// flush cache and manifest.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"pcstall/internal/core"
	"pcstall/internal/dvfs"
	"pcstall/internal/exp"
	"pcstall/internal/orchestrate"
	"pcstall/internal/telemetry"
	"pcstall/internal/tracing"
	"pcstall/internal/version"
	"pcstall/internal/wire"
	"pcstall/internal/workload"
)

// maxSimRequestBytes caps a POST /v1/sim body. Sim configs are sparse
// JSON well under a kilobyte; anything bigger is a mistake or an attack.
const maxSimRequestBytes = 1 << 20

// Backend is what the serving layer fronts. *exp.Suite implements it;
// tests substitute stubs to exercise admission, singleflight, and
// cancellation without running simulations.
type Backend interface {
	// RunSim executes one simulation job under ctx. Safe for concurrent
	// use.
	RunSim(ctx context.Context, j orchestrate.Job) (*dvfs.Result, error)
	// Cached peeks for a settled result without scheduling work.
	Cached(key string) (*dvfs.Result, bool)
	// Figure regenerates one artifact under ctx. NOT safe for
	// concurrent use; the server serializes figure jobs.
	Figure(ctx context.Context, id string) (*exp.Table, error)
	// Stats snapshots orchestration progress for SSE and Retry-After.
	Stats() orchestrate.Stats
}

var _ Backend = (*exp.Suite)(nil)

// Config shapes a Server.
type Config struct {
	// Backend fronts the simulations; required.
	Backend Backend
	// Defaults fills unset SimRequest fields (exp.Suite.SimDefaults for
	// suite-backed servers). Its SimVersion is overwritten with the
	// binary's own.
	Defaults orchestrate.Job
	// MaxQueue bounds admitted-but-unsettled simulation jobs (queued +
	// running) on the cold-sim lane; beyond it requests shed with 429.
	// <= 0 selects 64.
	MaxQueue int
	// FigureQueue bounds admitted-but-unsettled figure jobs on their own
	// admission lane, so a backlog of expensive cold sims never sheds a
	// figure request (and a figure backlog never sheds sims). 0 selects
	// 16; negative collapses figures onto the sim lane — the pre-lane
	// aggregate discipline, kept selectable for A/B load tests.
	FigureQueue int
	// BodyCacheBytes bounds the in-memory LRU of rendered response
	// bodies (the hot tier above the JSONL result cache). 0 selects
	// 32 MiB; negative disables the tier — kept selectable so the load
	// harness can measure before/after.
	BodyCacheBytes int64
	// Workers bounds concurrently executing jobs; <= 0 selects
	// runtime.NumCPU(). (Simulations are additionally bounded by the
	// orchestrator's own pool.)
	Workers int
	// FigureIDs lists the artifact ids POST /v1/figures/{id} accepts
	// (exp.Suite.ArtifactIDs for suite-backed servers).
	FigureIDs []string
	// Metrics, when non-nil, receives serve_* metrics and is expected
	// to be the same registry the backend records into.
	Metrics *telemetry.Registry
	// BaseCtx is the server's lifetime context; every job derives from
	// it. Nil means Background.
	BaseCtx context.Context
	// DefaultTimeout bounds jobs whose request carries no timeout_ms
	// (0 = none). MaxTimeout caps client-requested timeouts; 0 leaves
	// them uncapped.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// ProgressEvery is the SSE progress cadence (default 500ms).
	ProgressEvery time.Duration
	// Version is stamped on every response (default version.String()).
	Version string
	// Tracer, when non-nil, records a distributed span per request and
	// per job, joining traces propagated by coordinators via the
	// X-Pcstall-Trace header, and mounts /debug/traces on the mux.
	Tracer *tracing.Tracer
	// Log, when non-nil, receives structured request and job-settlement
	// logs correlated by trace ID. Health probes log at Debug.
	Log *slog.Logger
}

// job states; stored as strings because they render into responses.
const (
	statusQueued    = "queued"
	statusRunning   = "running"
	statusDone      = "done"
	statusError     = "error"
	statusCancelled = "cancelled"
)

// job kinds and the admission-lane classes they map to. The class
// strings label the per-lane serve_* metric series and the /healthz
// queue map; "cached" requests (hot-tier and result-cache hits) never
// enter a lane at all.
const (
	kindSim    = "sim"
	kindFigure = "figure"

	classCold   = "cold"
	classFigure = "figure"
	classAll    = "all" // shared single-lane (legacy) mode
)

// defaultBodyCacheBytes is the hot tier's byte budget when the config
// leaves it unset: a few thousand typical rendered sim bodies.
const defaultBodyCacheBytes int64 = 32 << 20

// runFn computes one admitted job and returns its rendered settlement:
// an HTTP status code plus the exact response body every attached
// waiter receives.
type runFn func(ctx context.Context) (int, []byte)

// lane is one admission class's queue accounting: cold simulations and
// figure regenerations each get a lane so neither sheds behind the
// other's backlog. class and max are immutable after New; the counters
// are guarded by Server.mu.
type lane struct {
	class string // metric label: "cold", "figure", or "all" (shared mode)
	max   int    // admitted-but-unsettled bound; beyond it requests shed

	inflight int // admitted, not yet settled
	running  int // holding a worker slot now

	// Settled-OK run durations, for the lane's Retry-After estimate.
	durSum time.Duration
	durN   int64
}

// job is one unit of admitted (or cache-settled) work, shared by every
// request that deduplicated onto it.
type job struct {
	id   string
	kind string // "sim" | "figure"
	lane *lane  // admission lane charged for this job (nil if cache-settled)

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed on settle, after body/code are set

	// Guarded by Server.mu:
	status   string
	refs     int  // attached waiters; 0 with detached=false cancels
	detached bool // async jobs run to completion regardless of waiters
	settled  bool
	startRun time.Time // when the job acquired its worker slot

	// Written once in settle (before close(done)), read-only after:
	httpStatus int
	body       []byte
	digest     string // wire.Digest over body ("" = compute on write)

	// Written once in admit (before the job is published), read-only
	// after; both are nil/empty when the server runs untraced.
	span    *tracing.Span
	traceID string
}

// Server is the serving core. Create with New; it is safe for
// concurrent use by the HTTP stack.
type Server struct {
	cfg       Config
	defaults  orchestrate.Job
	ver       string
	baseCtx   context.Context
	tele      *serveTelemetry
	tracer    *tracing.Tracer
	log       *slog.Logger
	mux       *http.ServeMux
	sem       chan struct{}
	figureSem chan struct{} // single-slot execution lane: Backend.Figure is not concurrent-safe
	figureIDs map[string]bool
	bodies    *bodyCache // hot tier of rendered bodies; nil when disabled

	// lanes maps a job kind ("sim", "figure") onto its admission lane.
	// In shared mode (FigureQueue < 0) both kinds map to one lane.
	lanes map[string]*lane

	workloads   []string
	workloadSet map[string]bool

	mu        sync.Mutex
	jobs      map[string]*job
	doneOrder []string // settled job ids, oldest first, for eviction
	draining  bool

	wg sync.WaitGroup // one per admitted job goroutine
}

// maxSettledJobs bounds how many settled jobs stay pollable before the
// oldest are evicted.
const maxSettledJobs = 4096

// New builds a Server and its route table.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("serve: Config.Backend is required")
	}
	maxQueue := cfg.MaxQueue
	if maxQueue <= 0 {
		maxQueue = 64
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	ver := cfg.Version
	if ver == "" {
		ver = version.String()
	}
	baseCtx := cfg.BaseCtx
	if baseCtx == nil {
		baseCtx = context.Background()
	}
	if cfg.ProgressEvery <= 0 {
		cfg.ProgressEvery = 500 * time.Millisecond
	}
	// Admission lanes: cold sims and figures each bounded separately, or
	// one shared lane when FigureQueue is negative (the legacy aggregate
	// discipline the load harness A/B-tests against).
	var lanes map[string]*lane
	if cfg.FigureQueue < 0 {
		shared := &lane{class: classAll, max: maxQueue}
		lanes = map[string]*lane{kindSim: shared, kindFigure: shared}
	} else {
		figQueue := cfg.FigureQueue
		if figQueue == 0 {
			figQueue = 16
		}
		lanes = map[string]*lane{
			kindSim:    {class: classCold, max: maxQueue},
			kindFigure: {class: classFigure, max: figQueue},
		}
	}
	classes := []string{lanes[kindSim].class}
	if fl := lanes[kindFigure]; fl != lanes[kindSim] {
		classes = append(classes, fl.class)
	}
	bodyBytes := cfg.BodyCacheBytes
	if bodyBytes == 0 {
		bodyBytes = defaultBodyCacheBytes
	}
	s := &Server{
		cfg:         cfg,
		defaults:    cfg.Defaults,
		ver:         ver,
		baseCtx:     baseCtx,
		tele:        newServeTelemetry(cfg.Metrics, classes),
		tracer:      cfg.Tracer,
		log:         cfg.Log,
		sem:         make(chan struct{}, workers),
		figureSem:   make(chan struct{}, 1),
		figureIDs:   make(map[string]bool, len(cfg.FigureIDs)),
		bodies:      newBodyCache(bodyBytes), // nil when bodyBytes < 0
		lanes:       lanes,
		workloads:   workload.Names(),
		workloadSet: map[string]bool{},
		jobs:        map[string]*job{},
	}
	s.defaults.SimVersion = orchestrate.SimVersion
	for _, id := range cfg.FigureIDs {
		s.figureIDs[id] = true
	}
	for _, w := range s.workloads {
		s.workloadSet[w] = true
	}
	s.routes()
	return s, nil
}

// routes builds the mux: the /v1 API plus the shared telemetry
// endpoints (telemetry.Register), all on one listener.
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sim", s.instrument("sim", s.handleSim))
	mux.HandleFunc("POST /v1/figures/{id}", s.instrument("figures", s.handleFigure))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("jobs", s.handleJob))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("events", s.handleJobEvents))
	mux.HandleFunc("GET /v1/workloads", s.instrument("workloads", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, listResponse{Version: s.ver, Workloads: s.workloads})
	}))
	mux.HandleFunc("GET /v1/designs", s.instrument("designs", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, listResponse{Version: s.ver, Designs: core.DesignNames()})
	}))
	mux.HandleFunc("GET /v1/figures", s.instrument("figures_list", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, listResponse{Version: s.ver, Figures: s.cfg.FigureIDs})
	}))
	mux.HandleFunc("GET /v1/version", s.instrument("version", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, versionResponse{Version: s.ver, SimVersion: orchestrate.SimVersion})
	}))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	if s.cfg.Metrics != nil {
		telemetry.Register(mux, s.cfg.Metrics)
	}
	if s.tracer != nil {
		tracing.Register(mux, s.tracer.Recorder())
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Pcstall-Version", s.ver)
		fmt.Fprint(w, "pcstall-serve\n\n"+
			"POST /v1/sim              run one simulation (JSON config; ?async=1 for 202+poll)\n"+
			"POST /v1/figures/{id}     regenerate a paper figure\n"+
			"GET  /v1/jobs/{id}        poll a job\n"+
			"GET  /v1/jobs/{id}/events stream progress (SSE)\n"+
			"GET  /v1/workloads        list workloads\n"+
			"GET  /v1/designs          list designs\n"+
			"GET  /v1/figures          list figure ids\n"+
			"GET  /v1/version          simulator version\n"+
			"GET  /healthz             readiness (200 accepting work, 503 draining)\n"+
			"GET  /metrics             Prometheus text (also /debug/vars, /debug/pprof/)\n")
	})
	s.mux = mux
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// statusWriter captures the response code for request metrics while
// passing Flush through (SSE needs the flusher).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument stamps the version header, records request count and
// handler latency per endpoint, and — when the server is traced — opens
// a "serve.<endpoint>" span on the request context. A coordinator's
// X-Pcstall-Trace header joins the request span to the remote trace, so
// one trace ID stitches the dispatch on the coordinator to the handler
// and job spans here.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Pcstall-Version", s.ver)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		ctx := tracing.WithTracer(r.Context(), s.tracer)
		if sc, ok := tracing.Extract(r.Header); ok {
			ctx = tracing.WithRemote(ctx, sc)
		}
		ctx, tspan := tracing.Start(ctx, "serve."+endpoint,
			tracing.String("http.method", r.Method),
			tracing.String("http.path", r.URL.Path))
		r = r.WithContext(ctx)
		start := time.Now()
		span := telemetry.StartSpan(s.tele.handler(endpoint))
		h(sw, r)
		span.End()
		tspan.SetAttr("http.status", fmt.Sprint(sw.code))
		tspan.End()
		s.tele.request(endpoint, sw.code)
		s.logRequest(endpoint, r, sw.code, time.Since(start), tspan.TraceID())
	}
}

// logRequest emits one structured access-log line. Health probes log at
// Debug so routine load-balancer and quarantine polling does not drown
// the job log.
func (s *Server) logRequest(endpoint string, r *http.Request, code int, dur time.Duration, traceID string) {
	if s.log == nil {
		return
	}
	level := slog.LevelInfo
	if endpoint == "healthz" {
		level = slog.LevelDebug
	}
	s.log.Log(r.Context(), level, "request",
		"endpoint", endpoint,
		"method", r.Method,
		"path", r.URL.Path,
		"status", code,
		"dur_ms", float64(dur)/float64(time.Millisecond),
		"trace_id", traceID,
	)
}

// ---------------------------------------------------------------------------
// Admission, singleflight, and the job lifecycle

// admit returns the job for id, atomically joining an existing one
// (singleflight) or admitting a new one that will execute run. The
// returned flags discriminate the outcome: joined (an existing job
// answered), shed (queue full), draining (server shutting down). A
// joined or created sync request holds a reference that the caller
// must release with detach. rctx is the admitting request's context:
// joins record a singleflight event on its span, and a fresh job's
// span is parented to it (so the job trace joins the coordinator's
// when the request carried X-Pcstall-Trace).
//
// Joinable jobs are the unsettled (in flight) and the successfully
// settled. A job that settled with an error or cancellation is NOT
// joined — replaying a stale failure would poison its key until
// eviction — it is replaced by a fresh admission, mirroring the
// orchestrator's contract that cancelled jobs are recomputed on
// resume.
func (s *Server) admit(rctx context.Context, id, kind string, run runFn, detached bool, timeout time.Duration) (j *job, joined, shed, draining bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.jobs[id]; j != nil && (!j.settled || j.httpStatus == http.StatusOK) {
		if !j.settled {
			if detached {
				// An async client registered interest: the job must
				// now outlive its sync waiters.
				j.detached = true
			} else {
				j.refs++
			}
		}
		s.tele.singleflightInc()
		tracing.FromContext(rctx).Event("singleflight.join", tracing.String("job", id))
		return j, true, false, false
	}
	if s.draining {
		return nil, false, false, true
	}
	ln := s.lanes[kind]
	if ln.inflight >= ln.max {
		s.tele.shedInc(ln.class)
		return nil, false, true, false
	}
	if s.jobs[id] != nil {
		// Settled failure under this key: drop the stale record; the
		// fresh admission below takes its place.
		s.dropSettledLocked(id)
	}
	// The job outlives the admitting request, so its context derives
	// from the server's lifetime context — but its span is parented to
	// the request span (carried over as a remote parent), keeping the
	// whole job under the coordinator's trace ID without tying the
	// job's cancellation to the request's.
	base := s.baseCtx
	if s.tracer != nil {
		base = tracing.WithTracer(base, s.tracer)
		if sc := tracing.SpanContextOf(rctx); sc.TraceID != "" {
			base = tracing.WithRemote(base, sc)
		}
	}
	var jctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		jctx, cancel = context.WithTimeout(base, timeout)
	} else {
		jctx, cancel = context.WithCancel(base)
	}
	jctx, jspan := tracing.Start(jctx, "serve.job",
		tracing.String("job.key", id),
		tracing.String("kind", kind))
	j = &job{
		id:       id,
		kind:     kind,
		lane:     ln,
		ctx:      jctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		status:   statusQueued,
		detached: detached,
		span:     jspan,
		traceID:  jspan.TraceID(),
	}
	if !detached {
		j.refs = 1
	}
	s.jobs[id] = j
	ln.inflight++
	if s.tele != nil {
		s.tele.jobsTotal.Inc()
	}
	s.gaugesLocked()
	s.wg.Add(1)
	go s.runJob(j, run)
	return j, false, false, false
}

// singleflightInc is split out so admit reads cleanly.
func (t *serveTelemetry) singleflightInc() {
	if t != nil {
		t.singleflight.Inc()
	}
}

// runJob drives one admitted job: wait for a worker slot (or abandon if
// the job is cancelled while queued), execute, settle. Figure jobs wait
// on a dedicated single-slot lane — they serialize against each other
// anyway (Backend.Figure is not concurrent-safe), so a figure backlog
// must not occupy sim worker slots it cannot use.
func (s *Server) runJob(j *job, run runFn) {
	defer s.wg.Done()
	slot := s.sem
	if j.kind == kindFigure {
		slot = s.figureSem
	}
	span := telemetry.StartSpan(s.tele.queueWaitHist())
	select {
	case slot <- struct{}{}:
	case <-j.ctx.Done():
		span.End()
		s.settle(j, errCode(j.ctx.Err()), marshalBody(apiError{Version: s.ver, Error: "cancelled while queued: " + j.ctx.Err().Error()}))
		return
	}
	span.End()
	defer func() { <-slot }()
	j.span.Event("slot.acquired")
	s.mu.Lock()
	j.status = statusRunning
	j.startRun = time.Now()
	j.lane.running++
	s.gaugesLocked()
	s.mu.Unlock()
	code, body := run(j.ctx)
	s.settle(j, code, body)
}

// queueWaitHist is nil-safe access to the time-in-queue histogram.
func (t *serveTelemetry) queueWaitHist() *telemetry.Histogram {
	if t == nil {
		return nil
	}
	return t.queueWait
}

// settle publishes a job's outcome and releases its lane slot. The
// body is rendered and digested exactly once here; every waiter fans
// the same bytes out, and settled-OK sim bodies are promoted into the
// hot tier so later requests for the key skip the render entirely.
func (s *Server) settle(j *job, code int, body []byte) {
	status := statusDone
	switch {
	case code == http.StatusOK:
	case code == statusClientClosed || code == http.StatusServiceUnavailable || code == http.StatusGatewayTimeout:
		status = statusCancelled
	default:
		status = statusError
	}
	digest := wire.Digest(body)
	s.mu.Lock()
	if j.status == statusRunning {
		j.lane.running--
		if code == http.StatusOK && !j.startRun.IsZero() {
			j.lane.durSum += time.Since(j.startRun)
			j.lane.durN++
		}
	}
	j.httpStatus, j.body, j.digest, j.status, j.settled = code, body, digest, status, true
	j.lane.inflight--
	s.doneOrder = append(s.doneOrder, j.id)
	s.evictLocked()
	s.gaugesLocked()
	s.mu.Unlock()
	if code == http.StatusOK && j.kind == kindSim {
		// The bytes were just rendered for this settlement (and its
		// singleflight waiters); keeping them hot means the next request
		// for the key never re-renders from the orchestrate record.
		s.bodyPut(j.id, body, digest)
	}
	j.cancel() // release the deadline timer
	if s.tele != nil {
		switch status {
		case statusError:
			s.tele.jobErrors.Inc()
		case statusCancelled:
			s.tele.jobsCanceled.Inc()
		}
	}
	j.span.SetAttr("status", status)
	j.span.SetAttr("http.status", fmt.Sprint(code))
	j.span.End()
	if s.log != nil {
		level := slog.LevelInfo
		if status == statusError {
			level = slog.LevelWarn
		}
		s.log.Log(context.Background(), level, "job settled",
			"job", j.id, "kind", j.kind, "status", status,
			"http_status", code, "trace_id", j.traceID)
	}
	close(j.done)
}

// recordSettled registers an already-settled job (a cache
// short-circuit) so it is pollable like any other, without ever
// touching queue accounting.
func (s *Server) recordSettled(id, kind string, body []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.jobs[id]; j != nil {
		if !j.settled || j.httpStatus == http.StatusOK {
			return
		}
		// A stale failure under this key: the cache now has a good
		// result, so the fresh done record replaces it.
		s.dropSettledLocked(id)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j := &job{
		id: id, kind: kind, ctx: ctx, cancel: cancel,
		done: make(chan struct{}), status: statusDone,
		settled: true, httpStatus: http.StatusOK, body: body,
		detached: true,
	}
	close(j.done)
	s.jobs[id] = j
	s.doneOrder = append(s.doneOrder, id)
	s.evictLocked()
}

// detach drops one waiter's reference; the last sync waiter leaving an
// unsettled job cancels it (nobody is listening for the answer).
// Detaching from a settled job is a no-op — references only gate
// cancellation of live work.
func (s *Server) detach(j *job) {
	s.mu.Lock()
	if j.settled {
		s.mu.Unlock()
		return
	}
	j.refs--
	cancel := j.refs <= 0 && !j.detached
	s.mu.Unlock()
	if cancel {
		j.cancel()
	}
}

// evictLocked trims the oldest settled jobs beyond maxSettledJobs.
// Callers hold s.mu.
func (s *Server) evictLocked() {
	for len(s.doneOrder) > maxSettledJobs {
		id := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		if j := s.jobs[id]; j != nil && j.settled {
			delete(s.jobs, id)
		}
	}
}

// dropSettledLocked removes a settled job's record from the map and
// the eviction order (so the id's later re-settlement is not evicted
// by the stale entry). Callers hold s.mu.
func (s *Server) dropSettledLocked(id string) {
	delete(s.jobs, id)
	for i, d := range s.doneOrder {
		if d == id {
			s.doneOrder = append(s.doneOrder[:i], s.doneOrder[i+1:]...)
			break
		}
	}
}

// bodyPut promotes a settled-OK rendering into the hot tier and
// publishes the tier's shape.
func (s *Server) bodyPut(key string, body []byte, digest string) {
	if s.bodies == nil {
		return
	}
	evicted := s.bodies.put(key, body, digest)
	entries, bytes := s.bodies.stats()
	s.tele.bodyShape(entries, bytes, evicted)
}

// gaugesLocked publishes per-lane queue state from the counters
// maintained at status transitions; callers hold s.mu.
func (s *Server) gaugesLocked() {
	if s.tele == nil {
		return
	}
	sim := s.lanes[kindSim]
	s.tele.laneGauges(sim.class, sim.inflight-sim.running, sim.running)
	if fig := s.lanes[kindFigure]; fig != sim {
		s.tele.laneGauges(fig.class, fig.inflight-fig.running, fig.running)
	}
}

// statusClientClosed is nginx's 499 "client closed request": the job
// was cancelled because every interested client disconnected.
const statusClientClosed = 499

// errCode maps a job error to the settlement status code.
func errCode(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosed
	default:
		return http.StatusInternalServerError
	}
}

// retryAfterSeconds estimates when a client shed from kind's lane
// should come back: that lane's backlog drain time from the lane's own
// observed mean job cost across its execution capacity, clamped to
// [1s, 10m]. Computing it per lane is the point: a saturated cold-sim
// backlog must not inflate the hint a shed figure client receives, and
// vice versa.
func (s *Server) retryAfterSeconds(kind string) int {
	s.mu.Lock()
	ln := s.lanes[kind]
	backlog := ln.inflight
	var mean float64
	if ln.durN > 0 {
		mean = ln.durSum.Seconds() / float64(ln.durN)
	}
	shared := s.lanes[kindSim] == s.lanes[kindFigure]
	s.mu.Unlock()
	capacity := cap(s.sem)
	if kind == kindFigure && !shared {
		capacity = cap(s.figureSem)
	}
	if mean == 0 {
		if kind == kindFigure && !shared {
			// No settled figure observed yet. A figure regenerates a
			// whole campaign, so guess high rather than invite an
			// immediate re-stampede.
			mean = 30
		} else {
			// Fall back to the orchestrator's campaign-wide mean.
			st := s.cfg.Backend.Stats()
			mean = 1.0
			if st.Misses > 0 {
				mean = st.JobTime.Seconds() / float64(st.Misses)
			}
		}
	}
	secs := int(math.Ceil(mean * float64(backlog) / float64(capacity)))
	if secs < 1 {
		secs = 1
	}
	if secs > 600 {
		secs = 600
	}
	return secs
}

// ---------------------------------------------------------------------------
// Handlers

// handleSim admits one simulation request: cache short-circuit, then
// singleflight join, then bounded admission.
func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	// Sim configs are a few hundred bytes of sparse JSON; the cap stops
	// a confused or hostile client from streaming gigabytes into the
	// decoder. MaxBytesReader also severs the connection on overflow so
	// the rest of the flood is never read.
	simJob, timeout, err := s.parseSimRequest(http.MaxBytesReader(w, r.Body, maxSimRequestBytes))
	if err != nil {
		var reqErr *requestError
		var mbe *http.MaxBytesError
		switch {
		case errors.As(err, &reqErr):
			writeJSON(w, http.StatusBadRequest, apiError{Version: s.ver, Error: reqErr.msg})
		case errors.As(err, &mbe):
			writeJSON(w, http.StatusRequestEntityTooLarge, apiError{
				Version: s.ver,
				Error:   fmt.Sprintf("sim config exceeds %d bytes", mbe.Limit),
			})
		default:
			writeJSON(w, http.StatusInternalServerError, apiError{Version: s.ver, Error: err.Error()})
		}
		return
	}
	key := simJob.Key()
	async := isAsync(r)

	// 1. Hot tier: a previously rendered body is served byte-identical,
	// digest and all, without touching the result cache or the encoder.
	if body, digest, ok := s.bodies.get(key); ok {
		s.tele.bodyHitInc()
		tracing.FromContext(r.Context()).SetAttr("cache", "lru")
		s.recordSettled(key, kindSim, body)
		s.writeSettled(w, r, http.StatusOK, key, body, digest)
		return
	}

	// 2. Cache short-circuit: a settled result never queues.
	if res, ok := s.cfg.Backend.Cached(key); ok {
		if s.tele != nil {
			s.tele.cacheHits.Inc()
		}
		tracing.FromContext(r.Context()).SetAttr("cache", "hit")
		body := marshalBody(simResponse{
			Version: s.ver, ID: key, Kind: kindSim, Status: statusDone,
			Job: simJob, Result: res,
		})
		digest := wire.Digest(body)
		s.bodyPut(key, body, digest)
		s.recordSettled(key, kindSim, body)
		s.writeSettled(w, r, http.StatusOK, key, body, digest)
		return
	}

	run := func(ctx context.Context) (int, []byte) {
		res, rerr := s.cfg.Backend.RunSim(ctx, simJob)
		if rerr != nil {
			return errCode(rerr), marshalBody(apiError{Version: s.ver, Error: rerr.Error()})
		}
		return http.StatusOK, marshalBody(simResponse{
			Version: s.ver, ID: key, Kind: kindSim, Status: statusDone,
			Job: simJob, Result: res,
		})
	}

	// 3+4. Singleflight join or bounded admission on the cold-sim lane.
	j, _, shed, draining := s.admit(r.Context(), key, kindSim, run, async, timeout)
	s.respondAdmitted(w, r, j, kindSim, shed, draining, async)
}

// handleFigure admits one figure-regeneration request. Figure jobs
// flow through the same queue and singleflight as simulations; their
// id is "fig-<figure>" (the platform is server-fixed, so the figure id
// is the whole config).
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	figID := r.PathValue("id")
	if !s.figureIDs[figID] {
		writeJSON(w, http.StatusNotFound, apiError{
			Version: s.ver,
			Error:   fmt.Sprintf("unknown figure %q (available: %v)", figID, s.cfg.FigureIDs),
		})
		return
	}
	id := "fig-" + figID
	async := isAsync(r)
	run := func(ctx context.Context) (int, []byte) {
		// Figures serialize against each other on the single-slot
		// figure lane (Backend.Figure is not concurrent-safe), while
		// their inner simulations still fan out across the
		// orchestrator pool.
		t, ferr := s.cfg.Backend.Figure(ctx, figID)
		if ferr != nil {
			return errCode(ferr), marshalBody(apiError{Version: s.ver, Error: ferr.Error()})
		}
		var text strings.Builder
		t.Fprint(&text)
		return http.StatusOK, marshalBody(figureResponse{
			Version: s.ver, ID: id, Kind: kindFigure, Status: statusDone,
			Figure: figID, Text: text.String(), Table: t,
		})
	}
	j, _, shed, draining := s.admit(r.Context(), id, kindFigure, run, async, s.cfg.DefaultTimeout)
	s.respondAdmitted(w, r, j, kindFigure, shed, draining, async)
}

// respondAdmitted finishes an admission outcome: shed and drain map to
// 429/503, async maps to 202+Location, sync waits for settlement (or
// the client leaving) and fans out the stored bytes. kind names the
// admission lane the request targeted, so shed responses carry that
// lane's own Retry-After rather than a global aggregate.
func (s *Server) respondAdmitted(w http.ResponseWriter, r *http.Request, j *job, kind string, shed, draining, async bool) {
	switch {
	case draining:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, apiError{Version: s.ver, Error: "server is draining; no new work is admitted"})
		return
	case shed:
		ln := s.lanes[kind] // class and max are immutable after New
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds(kind)))
		writeJSON(w, http.StatusTooManyRequests, apiError{
			Version: s.ver,
			Error:   fmt.Sprintf("%s admission queue full (%d in flight); retry later", ln.class, ln.max),
		})
		return
	case async:
		s.mu.Lock()
		st := j.status
		s.mu.Unlock()
		w.Header().Set("Location", "/v1/jobs/"+j.id)
		writeJSON(w, http.StatusAccepted, jobResponse{Version: s.ver, ID: j.id, Kind: j.kind, Status: st})
		return
	}
	select {
	case <-j.done:
		s.detach(j)
		s.writeSettled(w, r, j.httpStatus, j.id, j.body, j.digest)
	case <-r.Context().Done():
		// Client gone: drop our reference — the last one out cancels
		// the job's context, which the simulation observes at its next
		// epoch boundary. Nothing useful can be written to a dead
		// connection.
		s.detach(j)
	}
}

// writeStored writes a settled body verbatim, stamped with the
// end-to-end digest (wire.DigestHeader) over the exact bytes written.
// A coordinator recomputes the digest over the bytes it received, so
// corruption, truncation, or duplication anywhere on the wire is caught
// before a result is ingested — the transport's checksums guard a hop,
// the stamp guards the whole path. digest is the precomputed
// wire.Digest over body when the caller already has it (settle and the
// hot tier both do); "" computes it here.
func (s *Server) writeStored(w http.ResponseWriter, code int, body []byte, digest string) {
	if digest == "" {
		digest = wire.Digest(body)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(wire.DigestHeader, digest)
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

// writeSettled writes a settled response body, stamping successful ones
// with an ETag derived from the content-addressed job id. A request
// whose If-None-Match names that id (a coordinator retrying work whose
// body it already ingested) is answered 304 without the body: the job
// key determines the bytes, so matching keys means matching bodies —
// exactly the invariant the singleflight fan-out already relies on.
func (s *Server) writeSettled(w http.ResponseWriter, r *http.Request, code int, id string, body []byte, digest string) {
	if code == http.StatusOK {
		etag := `"` + id + `"`
		w.Header().Set("ETag", etag)
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
			if s.tele != nil {
				s.tele.etagHits.Inc()
			}
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	s.writeStored(w, code, body, digest)
}

// etagMatch reports whether an If-None-Match header names etag (or "*").
// Weak validators compare equal to their strong form: the body is a pure
// function of the key, so there is no weaker equivalence to express.
func etagMatch(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(part), "W/"))
		if part == etag || part == "*" {
			return true
		}
	}
	return false
}

// handleHealthz is the readiness probe: 200 while accepting work, 503
// once draining, with the queue shape in the body either way. The
// distributed coordinator's quarantine loop probes it before returning a
// backend to rotation; it is equally suited to load-balancer checks.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	queues := make(map[string]laneHealth, 2)
	depth, running := 0, 0
	sim := s.lanes[kindSim]
	lns := []*lane{sim}
	if fig := s.lanes[kindFigure]; fig != sim {
		lns = append(lns, fig)
	}
	for _, ln := range lns {
		d := ln.inflight - ln.running
		queues[ln.class] = laneHealth{QueueDepth: d, Running: ln.running, Capacity: ln.max}
		depth += d
		running += ln.running
	}
	draining := s.draining
	s.mu.Unlock()
	code, status := http.StatusOK, "ok"
	if draining {
		code, status = http.StatusServiceUnavailable, "draining"
	}
	writeJSON(w, code, healthResponse{
		Version: s.ver, Status: status,
		QueueDepth: depth, Running: running, Queues: queues, Draining: draining,
	})
}

// handleJob reports one job's state, including the settled response
// body once done.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	var st string
	if j != nil {
		st = j.status
	}
	s.mu.Unlock()
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{Version: s.ver, Error: fmt.Sprintf("unknown job %q", id)})
		return
	}
	resp := jobResponse{Version: s.ver, ID: j.id, Kind: j.kind, Status: st}
	select {
	case <-j.done:
		resp.Status = j.status
		resp.Response = json.RawMessage(j.body)
	default:
	}
	writeJSON(w, http.StatusOK, resp)
}

// isAsync reports whether the request opted into 202-and-poll.
func isAsync(r *http.Request) bool {
	switch r.URL.Query().Get("async") {
	case "", "0", "false":
		return false
	}
	return true
}

// ---------------------------------------------------------------------------
// Drain

// StopAdmitting puts the server in drain mode: every new admission is
// answered 503 while in-flight jobs keep running.
func (s *Server) StopAdmitting() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	if s.tele != nil {
		s.tele.draining.Set(1)
	}
}

// Drain stops admissions and waits for in-flight jobs to settle. If
// ctx expires first, every unsettled job's context is cancelled — the
// simulations wind down at their next epoch boundary — and Drain waits
// for the (now prompt) settlement before returning ctx's error. After
// Drain returns the caller owns flushing the cache and manifest.
func (s *Server) Drain(ctx context.Context) error {
	s.StopAdmitting()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			if !j.settled {
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}
