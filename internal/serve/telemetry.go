package serve

import (
	"fmt"

	"pcstall/internal/telemetry"
)

// laneMetrics is one admission lane's metric triplet. The series share
// base names and differ by a literal class label, so the Prometheus
// exposition groups them into proper labelled families:
// serve_queue_depth{class="cold"}, serve_shed_total{class="figure"}, ...
type laneMetrics struct {
	depth   *telemetry.Gauge
	running *telemetry.Gauge
	shed    *telemetry.Counter
}

// serveTelemetry is the serving layer's metric bundle: request counters
// by endpoint and status, per-class admission-control accounting (queue
// depth, running, sheds — one series per lane class), hot-tier body
// cache accounting, singleflight fan-out hits, and the two latency
// distributions that matter for capacity planning — time-in-queue and
// handler latency. Simulation-side metrics (orchestrate_*, sim_*) live
// in the same registry but are recorded by the layers below.
type serveTelemetry struct {
	reg *telemetry.Registry

	singleflight *telemetry.Counter
	cacheHits    *telemetry.Counter
	etagHits     *telemetry.Counter
	jobsTotal    *telemetry.Counter
	jobErrors    *telemetry.Counter
	jobsCanceled *telemetry.Counter

	bodyHits      *telemetry.Counter
	bodyEvictions *telemetry.Counter
	bodyEntries   *telemetry.Gauge
	bodyBytes     *telemetry.Gauge

	lanes map[string]*laneMetrics

	draining *telemetry.Gauge

	queueWait *telemetry.Histogram
}

// newServeTelemetry builds the bundle on r (nil r yields nil, making
// every record a nil check). classes names the admission lanes the
// server runs ("cold"/"figure", or "all" when figures share the sim
// lane); each gets its own labelled queue-depth/running/shed series.
func newServeTelemetry(r *telemetry.Registry, classes []string) *serveTelemetry {
	if r == nil {
		return nil
	}
	t := &serveTelemetry{
		reg:           r,
		singleflight:  r.Counter("serve_singleflight_hits_total", "requests answered by joining an identical in-flight or settled job"),
		cacheHits:     r.Counter("serve_cache_short_circuit_total", "requests answered from the result cache without queueing"),
		etagHits:      r.Counter("serve_etag_hits_total", "settled responses answered 304 because If-None-Match named the job key"),
		jobsTotal:     r.Counter("serve_jobs_total", "jobs admitted to the queue"),
		jobErrors:     r.Counter("serve_job_errors_total", "admitted jobs that settled with an error"),
		jobsCanceled:  r.Counter("serve_jobs_cancelled_total", "admitted jobs cancelled before completing (client gone, deadline, drain)"),
		bodyHits:      r.Counter("serve_body_cache_hits_total", "requests answered from the rendered-body LRU without touching the result cache or re-rendering JSON"),
		bodyEvictions: r.Counter("serve_body_cache_evictions_total", "rendered bodies evicted from the LRU to hold the byte budget"),
		bodyEntries:   r.Gauge("serve_body_cache_entries", "rendered bodies currently held by the LRU"),
		bodyBytes:     r.Gauge("serve_body_cache_bytes", "bytes of rendered bodies currently held by the LRU"),
		lanes:         make(map[string]*laneMetrics, len(classes)),
		draining:      r.Gauge("serve_draining", "1 while the server is draining (new work is rejected)"),
		queueWait:     r.Phase("serve_time_in_queue"),
	}
	for _, class := range classes {
		t.lanes[class] = &laneMetrics{
			depth:   r.Gauge(fmt.Sprintf("serve_queue_depth{class=%q}", class), "admitted jobs waiting for a worker slot, by admission lane"),
			running: r.Gauge(fmt.Sprintf("serve_jobs_running{class=%q}", class), "jobs holding a serving worker slot now, by admission lane"),
			shed:    r.Counter(fmt.Sprintf("serve_shed_total{class=%q}", class), "requests rejected with 429 because the lane's admission queue was full"),
		}
	}
	return t
}

// lane returns the metric triplet for one lane class (nil-safe).
func (t *serveTelemetry) lane(class string) *laneMetrics {
	if t == nil {
		return nil
	}
	return t.lanes[class]
}

// shedInc counts one shed on the class lane.
func (t *serveTelemetry) shedInc(class string) {
	if lm := t.lane(class); lm != nil {
		lm.shed.Inc()
	}
}

// laneGauges publishes one lane's queue shape.
func (t *serveTelemetry) laneGauges(class string, depth, running int) {
	if lm := t.lane(class); lm != nil {
		lm.depth.Set(float64(depth))
		lm.running.Set(float64(running))
	}
}

// bodyHitInc counts one hot-tier hit.
func (t *serveTelemetry) bodyHitInc() {
	if t != nil {
		t.bodyHits.Inc()
	}
}

// bodyShape publishes the LRU's size after a put, plus any evictions it
// caused.
func (t *serveTelemetry) bodyShape(entries int, bytes int64, evicted int) {
	if t == nil {
		return
	}
	if evicted > 0 {
		t.bodyEvictions.Add(int64(evicted))
	}
	t.bodyEntries.Set(float64(entries))
	t.bodyBytes.Set(float64(bytes))
}

// request counts one finished request by endpoint and status code.
func (t *serveTelemetry) request(endpoint string, code int) {
	if t == nil {
		return
	}
	t.reg.Counter(
		fmt.Sprintf("serve_requests_%s_%d_total", endpoint, code),
		"requests served on the "+endpoint+" endpoint by status code",
	).Inc()
}

// handler returns the latency histogram for one endpoint.
func (t *serveTelemetry) handler(endpoint string) *telemetry.Histogram {
	if t == nil {
		return nil
	}
	return t.reg.Phase("serve_handler_" + endpoint)
}
