package serve

import (
	"fmt"

	"pcstall/internal/telemetry"
)

// serveTelemetry is the serving layer's metric bundle: request counters
// by endpoint and status, admission-control accounting (queue depth,
// sheds), singleflight fan-out hits, and the two latency distributions
// that matter for capacity planning — time-in-queue and handler
// latency. Simulation-side metrics (orchestrate_*, sim_*) live in the
// same registry but are recorded by the layers below.
type serveTelemetry struct {
	reg *telemetry.Registry

	singleflight *telemetry.Counter
	shed         *telemetry.Counter
	cacheHits    *telemetry.Counter
	etagHits     *telemetry.Counter
	jobsTotal    *telemetry.Counter
	jobErrors    *telemetry.Counter
	jobsCanceled *telemetry.Counter

	queueDepth *telemetry.Gauge
	running    *telemetry.Gauge
	draining   *telemetry.Gauge

	queueWait *telemetry.Histogram
}

// newServeTelemetry builds the bundle on r (nil r yields nil, making
// every record a nil check).
func newServeTelemetry(r *telemetry.Registry) *serveTelemetry {
	if r == nil {
		return nil
	}
	return &serveTelemetry{
		reg:          r,
		singleflight: r.Counter("serve_singleflight_hits_total", "requests answered by joining an identical in-flight or settled job"),
		shed:         r.Counter("serve_shed_total", "requests rejected with 429 because the job queue was full"),
		cacheHits:    r.Counter("serve_cache_short_circuit_total", "requests answered from the result cache without queueing"),
		etagHits:     r.Counter("serve_etag_hits_total", "settled responses answered 304 because If-None-Match named the job key"),
		jobsTotal:    r.Counter("serve_jobs_total", "jobs admitted to the queue"),
		jobErrors:    r.Counter("serve_job_errors_total", "admitted jobs that settled with an error"),
		jobsCanceled: r.Counter("serve_jobs_cancelled_total", "admitted jobs cancelled before completing (client gone, deadline, drain)"),
		queueDepth:   r.Gauge("serve_queue_depth", "admitted jobs waiting for a worker slot"),
		running:      r.Gauge("serve_jobs_running", "jobs holding a serving worker slot now"),
		draining:     r.Gauge("serve_draining", "1 while the server is draining (new work is rejected)"),
		queueWait:    r.Phase("serve_time_in_queue"),
	}
}

// request counts one finished request by endpoint and status code.
func (t *serveTelemetry) request(endpoint string, code int) {
	if t == nil {
		return
	}
	t.reg.Counter(
		fmt.Sprintf("serve_requests_%s_%d_total", endpoint, code),
		"requests served on the "+endpoint+" endpoint by status code",
	).Inc()
}

// handler returns the latency histogram for one endpoint.
func (t *serveTelemetry) handler(endpoint string) *telemetry.Histogram {
	if t == nil {
		return nil
	}
	return t.reg.Phase("serve_handler_" + endpoint)
}
