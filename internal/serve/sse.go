package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"pcstall/internal/orchestrate"
)

// progressEvent is one SSE "progress" frame: the job's state plus the
// orchestrator's live campaign statistics, so a streaming client sees
// the same numbers the CLI's -progress line prints.
type progressEvent struct {
	Version string            `json:"version"`
	ID      string            `json:"id"`
	Kind    string            `json:"kind"`
	Status  string            `json:"status"`
	Stats   orchestrate.Stats `json:"stats"`
	// TraceID is the job's distributed trace ID (empty on an untraced
	// server): the key into /debug/traces on every process the job
	// touched.
	TraceID string `json:"trace_id,omitempty"`
}

// handleJobEvents streams a job's progress as Server-Sent Events:
// "progress" frames every ProgressEvery while the job is queued or
// running, then one final "done" frame carrying the settled response
// body, then the stream closes. Attaching to a settled job yields the
// "done" frame immediately. A streaming client counts as an interested
// waiter: if every client (sync POSTs included) disconnects from a
// non-detached job, the job is cancelled.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	if j != nil && !j.settled {
		j.refs++
	}
	s.mu.Unlock()
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{Version: s.ver, Error: fmt.Sprintf("unknown job %q", id)})
		return
	}
	defer s.detach(j)
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{Version: s.ver, Error: "streaming unsupported by this connection"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emitProgress := func() {
		s.mu.Lock()
		st := j.status
		s.mu.Unlock()
		ev := progressEvent{Version: s.ver, ID: j.id, Kind: j.kind, Status: st, Stats: s.cfg.Backend.Stats(), TraceID: j.traceID}
		b, err := json.Marshal(ev)
		if err != nil {
			return
		}
		writeSSE(w, "progress", b)
		fl.Flush()
	}

	emitProgress()
	t := time.NewTicker(s.cfg.ProgressEvery)
	defer t.Stop()
	for {
		select {
		case <-j.done:
			writeSSE(w, "done", j.body)
			fl.Flush()
			return
		case <-t.C:
			emitProgress()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE frames one event. SSE data may not contain raw newlines, so
// multi-line payloads (the indented settled body) are split across
// data: lines; per the spec the client reassembles them with "\n".
func writeSSE(w http.ResponseWriter, event string, data []byte) {
	fmt.Fprintf(w, "event: %s\n", event)
	start := 0
	for i := 0; i <= len(data); i++ {
		if i == len(data) || data[i] == '\n' {
			fmt.Fprintf(w, "data: %s\n", data[start:i])
			start = i + 1
		}
	}
	fmt.Fprint(w, "\n")
}
