package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"pcstall/internal/chaos"
	"pcstall/internal/core"
	"pcstall/internal/dvfs"
	"pcstall/internal/exp"
	"pcstall/internal/orchestrate"
)

// SimRequest is the POST /v1/sim body: a sparse simulation config.
// App and Design are required; every other field defaults from the
// server's platform (Config.Defaults), so a request that sets only
// {"app","design"} computes exactly the job a CLI campaign on the same
// platform would, and therefore shares its cache key.
type SimRequest struct {
	App    string `json:"app"`
	Design string `json:"design"`
	// EpochPs and EpochUs both set the DVFS epoch; setting both is an
	// error.
	EpochPs      int64   `json:"epoch_ps,omitempty"`
	EpochUs      float64 `json:"epoch_us,omitempty"`
	Objective    string  `json:"objective,omitempty"`
	CUsPerDomain int     `json:"cus_per_domain,omitempty"`
	CUs          int     `json:"cus,omitempty"`
	Scale        float64 `json:"scale,omitempty"`
	// Seed is a pointer so that an explicit 0 is distinguishable from
	// "use the server default".
	Seed *uint64 `json:"seed,omitempty"`
	// MaxTimeMs and MaxTimePs both cap simulated time; setting both is
	// an error. The picosecond form exists for coordinators relaying
	// content-addressed jobs verbatim: a millisecond round-trip could
	// perturb MaxTimePs and silently change the job key.
	MaxTimeMs     float64 `json:"max_time_ms,omitempty"`
	MaxTimePs     int64   `json:"max_time_ps,omitempty"`
	OracleSamples int     `json:"oracle_samples,omitempty"`
	Chaos         string  `json:"chaos,omitempty"`
	MaxCycles     int64   `json:"max_cycles,omitempty"`
	// TimeoutMs bounds this request's simulation; it propagates through
	// the job context down to the run's epoch-boundary checks. Capped
	// at the server's MaxTimeout.
	TimeoutMs float64 `json:"timeout_ms,omitempty"`
}

// parseSimRequest decodes and validates a request body against the
// server's defaults, returning the content-addressed job it denotes and
// the request's deadline. Validation failures are *requestError (400)
// whose messages list the valid names, so clients self-correct.
func (s *Server) parseSimRequest(body io.Reader) (orchestrate.Job, time.Duration, error) {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req SimRequest
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			// Keep the MaxBytesError in the chain so the handler can
			// answer 413 instead of a generic 400.
			return orchestrate.Job{}, 0, fmt.Errorf("decoding sim config: %w", err)
		}
		return orchestrate.Job{}, 0, &requestError{fmt.Sprintf("decoding sim config: %v", err)}
	}
	j := s.defaults // copy
	j.SimVersion = orchestrate.SimVersion

	if req.App == "" {
		return j, 0, &requestError{fmt.Sprintf("missing \"app\" (available: %v)", s.workloads)}
	}
	if !s.workloadSet[req.App] {
		return j, 0, &requestError{fmt.Sprintf("unknown app %q (available: %v)", req.App, s.workloads)}
	}
	j.App = req.App
	if req.Design == "" {
		return j, 0, &requestError{fmt.Sprintf("missing \"design\" (available: %v)", core.DesignNames())}
	}
	if _, err := core.DesignByName(req.Design); err != nil {
		return j, 0, &requestError{err.Error()}
	}
	j.Design = req.Design
	if req.EpochPs != 0 && req.EpochUs != 0 {
		return j, 0, &requestError{"set epoch_ps or epoch_us, not both"}
	}
	if req.EpochPs != 0 {
		j.EpochPs = req.EpochPs
	} else if req.EpochUs != 0 {
		j.EpochPs = int64(req.EpochUs * 1e6)
	}
	if j.EpochPs <= 0 {
		return j, 0, &requestError{fmt.Sprintf("epoch must be positive, got %d ps", j.EpochPs)}
	}
	if req.Objective != "" {
		if _, err := exp.ObjectiveByName(req.Objective); err != nil {
			return j, 0, &requestError{fmt.Sprintf("%v (try EDP, ED2P, Energy@5%%)", err)}
		}
		j.Objective = req.Objective
	}
	if req.CUs < 0 || req.CUsPerDomain < 0 || req.Scale < 0 || req.MaxTimeMs < 0 ||
		req.MaxTimePs < 0 || req.OracleSamples < 0 || req.MaxCycles < 0 || req.TimeoutMs < 0 {
		return j, 0, &requestError{"numeric fields must be non-negative"}
	}
	if req.MaxTimeMs != 0 && req.MaxTimePs != 0 {
		return j, 0, &requestError{"set max_time_ms or max_time_ps, not both"}
	}
	if req.CUs != 0 {
		j.CUs = req.CUs
	}
	if req.CUsPerDomain != 0 {
		j.CUsPerDomain = req.CUsPerDomain
	}
	if j.CUsPerDomain <= 0 || j.CUs <= 0 || j.CUsPerDomain > j.CUs || j.CUs%j.CUsPerDomain != 0 {
		return j, 0, &requestError{fmt.Sprintf("cus_per_domain %d must divide cus %d", j.CUsPerDomain, j.CUs)}
	}
	if req.Scale != 0 {
		j.Scale = req.Scale
	}
	if req.Seed != nil {
		j.Seed = *req.Seed
	}
	if req.MaxTimeMs != 0 {
		j.MaxTimePs = int64(req.MaxTimeMs * 1e9)
	}
	if req.MaxTimePs != 0 {
		j.MaxTimePs = req.MaxTimePs
	}
	if req.OracleSamples != 0 {
		j.OracleSamples = req.OracleSamples
	}
	if req.Chaos != "" {
		ch, err := chaos.Parse(req.Chaos)
		if err != nil {
			return j, 0, &requestError{err.Error()}
		}
		// Canonicalize so equivalent spellings share cache keys.
		j.Chaos = ch.String()
	}
	if req.MaxCycles != 0 {
		j.MaxCycles = req.MaxCycles
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs != 0 {
		timeout = time.Duration(req.TimeoutMs * float64(time.Millisecond))
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	return j, timeout, nil
}

// requestError is a client-side validation failure: it renders as a 400
// with a structured body instead of a 500.
type requestError struct{ msg string }

func (e *requestError) Error() string { return e.msg }

// apiError is the structured error body every failure path renders.
type apiError struct {
	Version string `json:"version"`
	Error   string `json:"error"`
}

// simResponse is the settled POST /v1/sim body. It is rendered exactly
// once per job and fanned out byte-identically to every request that
// joined the computation.
type simResponse struct {
	Version string          `json:"version"`
	ID      string          `json:"id"`
	Kind    string          `json:"kind"`
	Status  string          `json:"status"`
	Job     orchestrate.Job `json:"job"`
	Result  *dvfs.Result    `json:"result"`
}

// figureResponse is the settled POST /v1/figures/{id} body. Text is the
// exact rendering pcstall-exp prints for the same figure on the same
// platform — the golden test holds the two byte-identical.
type figureResponse struct {
	Version string     `json:"version"`
	ID      string     `json:"id"`
	Kind    string     `json:"kind"`
	Status  string     `json:"status"`
	Figure  string     `json:"figure"`
	Text    string     `json:"text"`
	Table   *exp.Table `json:"table"`
}

// jobResponse is the GET /v1/jobs/{id} body. Response carries the
// settled job's rendered body verbatim once the job is done.
type jobResponse struct {
	Version  string          `json:"version"`
	ID       string          `json:"id"`
	Kind     string          `json:"kind"`
	Status   string          `json:"status"`
	Response json.RawMessage `json:"response,omitempty"`
}

// versionResponse is the GET /v1/version body. SimVersion is the exact
// orchestrate.SimVersion string that keys the result cache — distributed
// coordinators compare it at admission so a mixed-version fleet can
// never pollute the content-addressed cache (Version also embeds it but
// carries a VCS suffix, so it is not the comparison key).
type versionResponse struct {
	Version    string `json:"version"`
	SimVersion string `json:"sim_version"`
}

// healthResponse is the GET /healthz body: whether the server is
// accepting work (200 "ok") or draining (503 "draining"), plus the
// queue shape a coordinator or load balancer sizes its dispatch by.
// QueueDepth and Running aggregate across lanes (the pre-lane wire
// shape, kept for existing coordinators); Queues breaks the same
// numbers out per admission class.
type healthResponse struct {
	Version    string                `json:"version"`
	Status     string                `json:"status"`
	QueueDepth int                   `json:"queue_depth"`
	Running    int                   `json:"running"`
	Queues     map[string]laneHealth `json:"queues,omitempty"`
	Draining   bool                  `json:"draining"`
}

// laneHealth is one admission lane's queue shape in /healthz.
type laneHealth struct {
	QueueDepth int `json:"queue_depth"`
	Running    int `json:"running"`
	Capacity   int `json:"capacity"`
}

// listResponse backs the registry listings (GET /v1/workloads,
// /v1/designs, /v1/figures) — the same name lists the registries' own
// unknown-name errors print.
type listResponse struct {
	Version   string   `json:"version"`
	Workloads []string `json:"workloads,omitempty"`
	Designs   []string `json:"designs,omitempty"`
	Figures   []string `json:"figures,omitempty"`
}

// writeJSON renders v indented with the canonical content type.
func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	b = append(b, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(b)
}

// marshalBody renders a settled response body (indented, newline
// terminated) for storage on a job.
func marshalBody(v any) []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// Response types are plain structs; failure here is a bug.
		panic(fmt.Sprintf("serve: encoding response: %v", err))
	}
	return append(b, '\n')
}
