package mem

import (
	"errors"
	"testing"
	"testing/quick"

	"pcstall/internal/xrand"
)

func TestCacheHitAfterFill(t *testing.T) {
	c := mustCache(4, 2, 64)
	if c.Probe(0x1000) {
		t.Fatal("hit in empty cache")
	}
	c.Fill(0x1000)
	if !c.Probe(0x1000) {
		t.Fatal("miss after fill")
	}
	if !c.Probe(0x1010) {
		t.Fatal("miss within same line")
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct-mapped-per-set behaviour with 1 set, 2 ways.
	c := mustCache(1, 2, 64)
	c.Fill(0x000)
	c.Fill(0x040)
	c.Probe(0x000) // make 0x000 most recent
	evicted, was := c.Fill(0x080)
	if !was || evicted != 0x040 {
		t.Fatalf("evicted %#x (%v), want 0x40", evicted, was)
	}
	if !c.Contains(0x000) || c.Contains(0x040) || !c.Contains(0x080) {
		t.Fatal("wrong residency after LRU eviction")
	}
}

func TestCacheFillRefreshesLRU(t *testing.T) {
	c := mustCache(1, 2, 64)
	c.Fill(0x000)
	c.Fill(0x040)
	// Refill 0x000: no eviction, and it becomes most recent.
	if ev, was := c.Fill(0x000); was {
		t.Fatalf("refill evicted %#x", ev)
	}
	c.Fill(0x080)
	if !c.Contains(0x000) || c.Contains(0x040) {
		t.Fatal("refill did not refresh LRU")
	}
}

func TestCacheContainsDoesNotTouch(t *testing.T) {
	c := mustCache(1, 2, 64)
	c.Fill(0x000)
	c.Fill(0x040)
	h, m := c.Hits(), c.Misses()
	c.Contains(0x000) // must not update LRU or counters
	if c.Hits() != h || c.Misses() != m {
		t.Fatal("Contains changed counters")
	}
	c.Fill(0x080) // LRU should still be 0x000
	if c.Contains(0x000) {
		t.Fatal("Contains refreshed LRU")
	}
}

func TestCacheSetIsolation(t *testing.T) {
	c := mustCache(8, 1, 64)
	// Lines mapping to different sets must not evict each other.
	for i := uint64(0); i < 8; i++ {
		c.Fill(i * 64)
	}
	for i := uint64(0); i < 8; i++ {
		if !c.Contains(i * 64) {
			t.Fatalf("line %d missing despite distinct sets", i)
		}
	}
}

func TestCacheFlush(t *testing.T) {
	c := mustCache(4, 2, 64)
	c.Fill(0x1000)
	c.Probe(0x1000)
	c.Flush()
	if c.Contains(0x1000) || c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("flush incomplete")
	}
}

func TestCacheGeometry(t *testing.T) {
	c := mustCache(64, 4, 64)
	if c.CapacityBytes() != 16*1024 {
		t.Fatalf("capacity %d", c.CapacityBytes())
	}
	if c.Sets() != 64 || c.Ways() != 4 || c.LineBytes() != 64 {
		t.Fatal("geometry accessors wrong")
	}
}

func TestCacheConstructorRejectsBadGeometry(t *testing.T) {
	for _, g := range [][3]int{{0, 1, 64}, {1, 0, 64}, {1, 1, 63}, {1, 1, 0}, {-1, 1, 64}} {
		_, err := NewCache(g[0], g[1], g[2])
		var ge *GeometryError
		if !errors.As(err, &ge) {
			t.Errorf("geometry %v: got %v, want *GeometryError", g, err)
		}
	}
	if _, err := NewCache(4, 2, 64); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
}

// refLRU is a trivially correct reference: per set, an ordered list of
// resident lines, most recent first.
type refLRU struct {
	sets, ways int
	lines      [][]uint64
}

func newRefLRU(sets, ways int) *refLRU {
	return &refLRU{sets: sets, ways: ways, lines: make([][]uint64, sets)}
}

func (r *refLRU) setOf(line uint64) int { return int(line % uint64(r.sets)) }

func (r *refLRU) probe(line uint64) bool {
	s := r.setOf(line)
	for i, l := range r.lines[s] {
		if l == line {
			r.lines[s] = append([]uint64{line}, append(append([]uint64{}, r.lines[s][:i]...), r.lines[s][i+1:]...)...)
			return true
		}
	}
	return false
}

func (r *refLRU) fill(line uint64) {
	s := r.setOf(line)
	if r.probe(line) {
		return
	}
	r.lines[s] = append([]uint64{line}, r.lines[s]...)
	if len(r.lines[s]) > r.ways {
		r.lines[s] = r.lines[s][:r.ways]
	}
}

// TestCacheMatchesReferenceModel drives random probe/fill traffic through
// the cache and a reference true-LRU model and requires identical hit/miss
// behaviour.
func TestCacheMatchesReferenceModel(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		sets := 1 << rng.Intn(4) // 1..8
		ways := 1 + rng.Intn(4)
		c := mustCache(sets, ways, 64)
		ref := newRefLRU(sets, ways)
		for op := 0; op < 500; op++ {
			line := uint64(rng.Intn(sets * ways * 3))
			addr := line * 64
			if rng.Intn(2) == 0 {
				got := c.Probe(addr)
				want := ref.probe(line)
				if got != want {
					return false
				}
			} else {
				c.Fill(addr)
				ref.fill(line)
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCacheCloneIndependence(t *testing.T) {
	c := mustCache(4, 2, 64)
	c.Fill(0x1000)
	cp := c.Clone()
	cp.Fill(0x2000)
	if c.Contains(0x2000) {
		t.Fatal("clone writes leaked into original")
	}
	if !cp.Contains(0x1000) {
		t.Fatal("clone lost original contents")
	}
}
