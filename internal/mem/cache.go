// Package mem implements the GPU memory hierarchy substrate: per-CU L1
// caches, a banked shared L2 running in the fixed uncore clock domain, and
// a DRAM model with fixed latency and bounded bandwidth.
//
// Everything in this package is plain data (flat slices, no pointers
// between components), so the whole hierarchy can be deep-copied by
// Clone for the fork-pre-execute oracle. Tag arrays — the bulk of the
// state — are copy-on-write: Clone shares them under a refcount and the
// first mutation on either side privatizes them, so a fork that never
// touches a cache never pays for copying it. Timing decisions (when a
// bank dequeues, when a response lands) are made in integer picoseconds
// using the uncore frequency, and are fully deterministic.
package mem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// entPools recycles privatized tag arrays, keyed by length. Fork-heavy
// users (the oracle samples ten clones per epoch, each privatizing the
// banks it touches) would otherwise churn megabytes of garbage per epoch;
// Release feeds arrays whose refcount hits zero back to own.
var entPools sync.Map // int → *sync.Pool of *[]uint64

func entPoolFor(n int) *sync.Pool {
	if p, ok := entPools.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := entPools.LoadOrStore(n, &sync.Pool{})
	return p.(*sync.Pool)
}

// getEnt returns an arbitrary-content array of length n; callers must
// fully overwrite it.
func getEnt(n int) []uint64 {
	if v := entPoolFor(n).Get(); v != nil {
		return *v.(*[]uint64)
	}
	return make([]uint64, n)
}

func putEnt(ent []uint64) {
	entPoolFor(len(ent)).Put(&ent)
}

// Cache is a set-associative cache with true-LRU replacement. It models
// tags only — the simulator never materializes data — and is a value type
// whose Clone snapshots the full tag state. The snapshot is copy-on-write:
// the tag array is shared under a refcount until either side mutates it,
// at which point the mutator privatizes its own copy. Sharing is safe
// even when clones run on other goroutines (the refcount is atomic and a
// shared array is never written in place), which is what lets multiple
// oracle samplers fork the same quiescent parent GPU concurrently.
//
// Each way is one packed word — tag in the low half, LRU stamp in the
// high half — so a 16-way set scan touches half the host cache lines a
// split tag/stamp layout would. The 32-bit tag bounds the modeled address
// space at lineBytes<<32 (256 GiB with 64-byte lines); Probe and Fill
// panic beyond it rather than aliasing silently.
type Cache struct {
	sets      uint32
	ways      uint32
	lineShift uint32
	// setMask is sets-1 when the set count is a power of two (the common
	// case), letting setOf mask instead of divide; 0 otherwise.
	setMask uint32
	tick    uint64
	// ent holds sets*ways packed ways: bits [31:0] are the tag (0 =
	// invalid, otherwise lineAddr+1), bits [63:32] the LRU stamp.
	ent []uint64
	// ref counts the Cache values sharing ent. Mutators call own, which
	// privatizes the array while ref > 1. A conservative overshoot (two
	// sharers privatizing simultaneously) costs one extra copy, never
	// correctness.
	ref *atomic.Int32
	// pool is the recycler for arrays of len(ent), resolved once at
	// construction so the privatize/release hot path never touches the
	// global sync.Map.
	pool *sync.Pool
	// hits and misses are cumulative probe outcomes.
	hits, misses int64
}

// GeometryError reports an invalid cache shape passed to NewCache.
type GeometryError struct {
	Sets, Ways, LineBytes int
}

// Error implements error.
func (e *GeometryError) Error() string {
	return fmt.Sprintf("mem: invalid cache geometry (%d sets, %d ways, %d-byte lines): sets and ways must be positive and the line size a power of two",
		e.Sets, e.Ways, e.LineBytes)
}

// NewCache builds a cache with the given geometry. sets and ways must be
// positive; lineBytes must be a power of two. Invalid shapes return a
// *GeometryError.
func NewCache(sets, ways, lineBytes int) (Cache, error) {
	if sets < 1 || ways < 1 || lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return Cache{}, &GeometryError{Sets: sets, Ways: ways, LineBytes: lineBytes}
	}
	shift := uint32(0)
	for 1<<shift != lineBytes {
		shift++
	}
	c := Cache{
		sets:      uint32(sets),
		ways:      uint32(ways),
		lineShift: shift,
		ent:       make([]uint64, sets*ways),
		ref:       new(atomic.Int32),
		pool:      entPoolFor(sets * ways),
	}
	if sets&(sets-1) == 0 {
		c.setMask = uint32(sets - 1)
	}
	c.ref.Store(1)
	return c, nil
}

// mustCache is NewCache for geometries already vetted by Config.Validate.
func mustCache(sets, ways, lineBytes int) Cache {
	c, err := NewCache(sets, ways, lineBytes)
	if err != nil {
		panic(err)
	}
	return c
}

// LineBytes returns the cache line size.
func (c *Cache) LineBytes() int { return 1 << c.lineShift }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return int(c.ways) }

// CapacityBytes returns the total capacity.
func (c *Cache) CapacityBytes() int {
	return int(c.sets) * int(c.ways) * (1 << c.lineShift)
}

// Hits returns the cumulative hit count.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the cumulative miss count.
func (c *Cache) Misses() int64 { return c.misses }

func (c *Cache) setOf(addr uint64) uint32 {
	if c.setMask != 0 {
		return uint32(addr>>c.lineShift) & c.setMask
	}
	return uint32((addr >> c.lineShift) % uint64(c.sets))
}

// tagOf returns addr's packed tag (lineAddr+1, never 0).
func (c *Cache) tagOf(addr uint64) uint64 {
	line := addr>>c.lineShift + 1
	if line > 0xffffffff {
		panic(fmt.Sprintf("mem: address %#x beyond the %d GiB model limit", addr, uint64(1)<<(c.lineShift+2)))
	}
	return line
}

// bump advances the LRU clock, renormalizing stamps in the (practically
// unreachable) event the 32-bit stamp field would overflow. Halving every
// stamp preserves their relative order up to ties, which the way index
// then breaks deterministically.
func (c *Cache) bump() uint64 {
	c.tick++
	if c.tick > 0xffffffff {
		c.own()
		for i, e := range c.ent {
			c.ent[i] = e>>33<<32 | e&0xffffffff
		}
		c.tick >>= 1
	}
	return c.tick
}

// own privatizes the tag array before a write. While the array is shared
// (ref > 1) it copies it and detaches from the shared refcount; once this
// Cache is the sole owner it is a two-instruction no-op on the hot path.
// Two sharers racing into own both copy — wasteful but correct, since the
// shared array itself is never written.
func (c *Cache) own() {
	if c.ref.Load() == 1 {
		return
	}
	old := c.ent
	var ent []uint64
	if v := c.pool.Get(); v != nil {
		ent = *v.(*[]uint64)
	} else {
		ent = make([]uint64, len(old))
	}
	copy(ent, old)
	c.ent = ent
	if c.ref.Add(-1) == 0 {
		// Every other sharer released while we copied; the old array is
		// now unreferenced and can be recycled.
		c.pool.Put(&old)
	}
	c.ref = new(atomic.Int32)
	c.ref.Store(1)
}

// Probe looks up addr, updating LRU state and hit/miss counters. It
// returns true on hit. Probe does not allocate on miss; pair it with Fill.
func (c *Cache) Probe(addr uint64) bool {
	tick := c.bump()
	tag := c.tagOf(addr)
	base := c.setOf(addr) * c.ways
	// One bounded subslice lets the compiler drop per-way bounds checks;
	// the write goes through c.ent because own may swap the array.
	set := c.ent[base : base+c.ways]
	for w := range set {
		if set[w]&0xffffffff == tag {
			c.own()
			c.ent[base+uint32(w)] = tick<<32 | tag
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Contains reports whether addr is resident without touching LRU state or
// counters (used by tests and invariant checks).
func (c *Cache) Contains(addr uint64) bool {
	tag := c.tagOf(addr)
	base := c.setOf(addr) * c.ways
	for w := uint32(0); w < c.ways; w++ {
		if c.ent[base+w]&0xffffffff == tag {
			return true
		}
	}
	return false
}

// Fill installs addr's line, evicting the LRU way of its set if needed.
// It returns the evicted line address and whether an eviction happened.
// Filling an already-resident line refreshes its LRU stamp.
func (c *Cache) Fill(addr uint64) (evicted uint64, wasEvicted bool) {
	c.own()
	tick := c.bump()
	tag := c.tagOf(addr)
	base := c.setOf(addr) * c.ways
	if c.ways < 256 {
		// Branchless victim selection: each way folds to stamp<<8|way
		// (invalid ways fold to 0<<8|way, undercutting every valid
		// stamp — bump starts stamps at 1), and the running minimum is
		// a single conditional move instead of data-dependent branches
		// the stamp distribution makes unpredictable. Ties and the
		// invalid-way preference resolve to the lowest way index,
		// exactly as the sequential scan did.
		set := c.ent[base : base+c.ways] // own already ran; stable array
		// Two running minima over alternating ways break the serial
		// compare chain in half; they merge after the loop. Ties and the
		// invalid-way preference still resolve to the lowest way index,
		// because the way number is packed into the low bits of the key.
		best0, best1 := ^uint64(0), ^uint64(0)
		w := 0
		for ; w+1 < len(set); w += 2 {
			e0, e1 := set[w], set[w+1]
			if e0&0xffffffff == tag {
				set[w] = tick<<32 | tag
				return 0, false
			}
			if e1&0xffffffff == tag {
				set[w+1] = tick<<32 | tag
				return 0, false
			}
			nz0 := (e0&0xffffffff + 0xffffffff) >> 32 // 1 if valid, else 0
			nz1 := (e1&0xffffffff + 0xffffffff) >> 32
			if pk := (e0>>32)*nz0<<8 | uint64(w); pk < best0 {
				best0 = pk
			}
			if pk := (e1>>32)*nz1<<8 | uint64(w+1); pk < best1 {
				best1 = pk
			}
		}
		if w < len(set) { // odd way count
			e := set[w]
			if e&0xffffffff == tag {
				set[w] = tick<<32 | tag
				return 0, false
			}
			nz := (e&0xffffffff + 0xffffffff) >> 32
			if pk := (e>>32)*nz<<8 | uint64(w); pk < best0 {
				best0 = pk
			}
		}
		if best1 < best0 {
			best0 = best1
		}
		victim := best0 & 0xff
		if old := set[victim] & 0xffffffff; old != 0 {
			evicted = (old - 1) << c.lineShift
			wasEvicted = true
		}
		set[victim] = tick<<32 | tag
		return evicted, wasEvicted
	}
	victim := base
	oldest := ^uint64(0)
	for w := uint32(0); w < c.ways; w++ {
		i := base + w
		e := c.ent[i]
		if e&0xffffffff == tag {
			c.ent[i] = tick<<32 | tag
			return 0, false
		}
		if e&0xffffffff == 0 {
			// Prefer an invalid way; stamp 0 guarantees selection
			// over any valid entry.
			if oldest != 0 {
				victim, oldest = i, 0
			}
			continue
		}
		if e>>32 < oldest {
			victim, oldest = i, e>>32
		}
	}
	if old := c.ent[victim] & 0xffffffff; old != 0 {
		evicted = (old - 1) << c.lineShift
		wasEvicted = true
	}
	c.ent[victim] = tick<<32 | tag
	return evicted, wasEvicted
}

// Flush invalidates every line and resets counters.
func (c *Cache) Flush() {
	if c.ref.Load() > 1 {
		// The shared array must not be zeroed in place; detach instead.
		if c.ref.Add(-1) == 0 {
			ent := c.ent
			c.pool.Put(&ent)
		}
		c.ref = new(atomic.Int32)
		c.ref.Store(1)
		c.ent = make([]uint64, len(c.ent))
	} else {
		for i := range c.ent {
			c.ent[i] = 0
		}
	}
	c.tick = 0
	c.hits = 0
	c.misses = 0
}

// Clone returns a logically independent copy. Tag state is shared
// copy-on-write: the array is not copied until one side mutates, so
// cloning is O(1) regardless of capacity. The clone and the parent may
// subsequently run on different goroutines.
func (c *Cache) Clone() Cache {
	c.ref.Add(1)
	return *c
}

// Release drops this Cache's share of the tag array. Calling it when
// discarding a clone lets the surviving sharer mutate in place again
// instead of paying a copy-on-first-write; forgetting it is safe, merely
// slower. The Cache must not be used after Release.
func (c *Cache) Release() {
	if c.ref != nil {
		if c.ref.Add(-1) == 0 {
			ent := c.ent
			c.pool.Put(&ent)
		}
		c.ref = nil
		c.ent = nil
	}
}

// Shared reports whether the tag array is currently shared with another
// Cache (used by tests).
func (c *Cache) Shared() bool { return c.ref.Load() > 1 }
