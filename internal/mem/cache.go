// Package mem implements the GPU memory hierarchy substrate: per-CU L1
// caches, a banked shared L2 running in the fixed uncore clock domain, and
// a DRAM model with fixed latency and bounded bandwidth.
//
// Everything in this package is plain data (flat slices, no pointers
// between components), so the whole hierarchy can be deep-copied by
// Clone for the fork-pre-execute oracle. Timing decisions (when a bank
// dequeues, when a response lands) are made in integer picoseconds using
// the uncore frequency, and are fully deterministic.
package mem

import "fmt"

// Cache is a set-associative cache with true-LRU replacement. It models
// tags only — the simulator never materializes data — and is a value type
// whose Clone copies the full tag state.
type Cache struct {
	sets      uint32
	ways      uint32
	lineShift uint32
	tick      uint64
	// tags holds sets*ways entries; entry 0 is invalid, otherwise the
	// stored value is lineAddr+1.
	tags []uint64
	// stamp holds the LRU timestamp for each entry.
	stamp []uint64
	// hits and misses are cumulative probe outcomes.
	hits, misses int64
}

// GeometryError reports an invalid cache shape passed to NewCache.
type GeometryError struct {
	Sets, Ways, LineBytes int
}

// Error implements error.
func (e *GeometryError) Error() string {
	return fmt.Sprintf("mem: invalid cache geometry (%d sets, %d ways, %d-byte lines): sets and ways must be positive and the line size a power of two",
		e.Sets, e.Ways, e.LineBytes)
}

// NewCache builds a cache with the given geometry. sets and ways must be
// positive; lineBytes must be a power of two. Invalid shapes return a
// *GeometryError.
func NewCache(sets, ways, lineBytes int) (Cache, error) {
	if sets < 1 || ways < 1 || lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return Cache{}, &GeometryError{Sets: sets, Ways: ways, LineBytes: lineBytes}
	}
	shift := uint32(0)
	for 1<<shift != lineBytes {
		shift++
	}
	n := sets * ways
	return Cache{
		sets:      uint32(sets),
		ways:      uint32(ways),
		lineShift: shift,
		tags:      make([]uint64, n),
		stamp:     make([]uint64, n),
	}, nil
}

// mustCache is NewCache for geometries already vetted by Config.Validate.
func mustCache(sets, ways, lineBytes int) Cache {
	c, err := NewCache(sets, ways, lineBytes)
	if err != nil {
		panic(err)
	}
	return c
}

// LineBytes returns the cache line size.
func (c *Cache) LineBytes() int { return 1 << c.lineShift }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return int(c.ways) }

// CapacityBytes returns the total capacity.
func (c *Cache) CapacityBytes() int {
	return int(c.sets) * int(c.ways) * (1 << c.lineShift)
}

// Hits returns the cumulative hit count.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the cumulative miss count.
func (c *Cache) Misses() int64 { return c.misses }

func (c *Cache) setOf(addr uint64) uint32 {
	return uint32((addr >> c.lineShift) % uint64(c.sets))
}

// Probe looks up addr, updating LRU state and hit/miss counters. It
// returns true on hit. Probe does not allocate on miss; pair it with Fill.
func (c *Cache) Probe(addr uint64) bool {
	c.tick++
	line := addr>>c.lineShift + 1
	base := c.setOf(addr) * c.ways
	for w := uint32(0); w < c.ways; w++ {
		if c.tags[base+w] == line {
			c.stamp[base+w] = c.tick
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Contains reports whether addr is resident without touching LRU state or
// counters (used by tests and invariant checks).
func (c *Cache) Contains(addr uint64) bool {
	line := addr>>c.lineShift + 1
	base := c.setOf(addr) * c.ways
	for w := uint32(0); w < c.ways; w++ {
		if c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// Fill installs addr's line, evicting the LRU way of its set if needed.
// It returns the evicted line address and whether an eviction happened.
// Filling an already-resident line refreshes its LRU stamp.
func (c *Cache) Fill(addr uint64) (evicted uint64, wasEvicted bool) {
	c.tick++
	line := addr>>c.lineShift + 1
	base := c.setOf(addr) * c.ways
	victim := base
	oldest := ^uint64(0)
	for w := uint32(0); w < c.ways; w++ {
		i := base + w
		if c.tags[i] == line {
			c.stamp[i] = c.tick
			return 0, false
		}
		if c.tags[i] == 0 {
			// Prefer an invalid way; stamp 0 guarantees selection
			// over any valid entry.
			if oldest != 0 {
				victim, oldest = i, 0
			}
			continue
		}
		if c.stamp[i] < oldest {
			victim, oldest = i, c.stamp[i]
		}
	}
	if c.tags[victim] != 0 {
		evicted = (c.tags[victim] - 1) << c.lineShift
		wasEvicted = true
	}
	c.tags[victim] = line
	c.stamp[victim] = c.tick
	return evicted, wasEvicted
}

// Flush invalidates every line and resets counters.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamp[i] = 0
	}
	c.tick = 0
	c.hits = 0
	c.misses = 0
}

// Clone returns a deep copy.
func (c *Cache) Clone() Cache {
	cp := *c
	cp.tags = append([]uint64(nil), c.tags...)
	cp.stamp = append([]uint64(nil), c.stamp...)
	return cp
}
