package mem

import (
	"testing"

	"pcstall/internal/clock"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.L2Banks = 4
	cfg.L2Sets = 16
	cfg.L2Ways = 2
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.LineBytes = 48
	if bad.Validate() == nil {
		t.Error("non-power-of-two line accepted")
	}
	bad = DefaultConfig()
	bad.DRAMWidth = 0
	if bad.Validate() == nil {
		t.Error("zero DRAM width accepted")
	}
	bad = DefaultConfig()
	bad.L1MSHRs = 0
	if bad.Validate() == nil {
		t.Error("zero MSHRs accepted")
	}
}

func TestBankMapping(t *testing.T) {
	m := NewMemSys(testConfig())
	// Consecutive lines stripe across banks.
	seen := map[int]bool{}
	for i := uint64(0); i < 4; i++ {
		seen[m.BankOf(i*64)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("4 consecutive lines hit %d banks, want 4", len(seen))
	}
	// Same line always maps to the same bank.
	if m.BankOf(0x1000) != m.BankOf(0x1004) {
		t.Fatal("same line mapped to two banks")
	}
}

func TestMissGoesToDRAMThenHits(t *testing.T) {
	cfg := testConfig()
	m := NewMemSys(cfg)
	period := cfg.UncoreFreq.PeriodPs()
	req := Request{Addr: 0x4000, CU: 0, WF: 1, Issue: 0}

	m.Submit(req)
	now := clock.Time(0)
	var done []Request
	for cycle := 0; len(done) == 0 && cycle < 10000; cycle++ {
		now = m.NextTickAfter(now)
		m.Tick(now)
		done = m.PopDone(now+clock.Time(cfg.DRAMLat+cfg.L2Latency+2)*period, done)
	}
	if len(done) != 1 {
		t.Fatalf("first access returned %d responses", len(done))
	}
	if m.Stats().L2Misses != 1 || m.Stats().DRAMReqs != 1 {
		t.Fatalf("stats %+v, want one L2 miss and one DRAM access", m.Stats())
	}

	// Second access to the same line: L2 hit, no new DRAM traffic.
	m.Submit(req)
	now = m.NextTickAfter(now)
	m.Tick(now)
	if m.Stats().L2Hits != 1 || m.Stats().DRAMReqs != 1 {
		t.Fatalf("stats %+v, want an L2 hit and still one DRAM access", m.Stats())
	}
}

func TestL2HitFasterThanMiss(t *testing.T) {
	cfg := testConfig()
	m := NewMemSys(cfg)
	lat := func(addr uint64) clock.Time {
		m.Submit(Request{Addr: addr, Issue: 0})
		now := clock.Time(0)
		for i := 0; i < 10000; i++ {
			now = m.NextTickAfter(now)
			m.Tick(now)
			if at, ok := m.NextDone(); ok {
				var buf []Request
				buf = m.PopDone(at, buf)
				if len(buf) > 0 {
					return at
				}
			}
		}
		t.Fatal("no response")
		return 0
	}
	missLat := lat(0x8000)
	hitLat := lat(0x8000) // now resident in L2
	if hitLat >= missLat {
		t.Fatalf("L2 hit latency %d >= miss latency %d", hitLat, missLat)
	}
}

func TestDRAMBandwidthBound(t *testing.T) {
	cfg := testConfig()
	cfg.DRAMWidth = 2
	m := NewMemSys(cfg)
	period := cfg.UncoreFreq.PeriodPs()
	// 32 distinct lines, all misses, all to different banks.
	const n = 32
	for i := uint64(0); i < n; i++ {
		m.Submit(Request{Addr: i * 64, Issue: 0})
	}
	now := clock.Time(0)
	var done []Request
	for len(done) < n {
		now = m.NextTickAfter(now)
		m.Tick(now)
		done = m.PopDone(now, done)
		if now > clock.Time(100000)*period {
			t.Fatalf("only %d of %d responses after many cycles", len(done), n)
		}
	}
	// The last response can't be earlier than DRAM latency plus the
	// serialization of n/width requests.
	minCycles := clock.Time(cfg.DRAMLat + n/cfg.DRAMWidth - 1)
	if now < minCycles*period {
		t.Fatalf("completed at %d ps, before bandwidth-limited minimum %d ps", now, minCycles*period)
	}
}

func TestCompletionOrderDeterministic(t *testing.T) {
	run := func() []uint64 {
		m := NewMemSys(testConfig())
		for i := uint64(0); i < 16; i++ {
			m.Submit(Request{Addr: i * 64, Issue: 0})
		}
		now := clock.Time(0)
		var got []uint64
		var buf []Request
		for len(got) < 16 {
			now = m.NextTickAfter(now)
			m.Tick(now)
			buf = m.PopDone(now, buf[:0])
			for _, r := range buf {
				got = append(got, r.Addr)
			}
		}
		return got
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("completion order diverged at %d", i)
		}
	}
}

func TestScheduleLocalMarksL1Hit(t *testing.T) {
	m := NewMemSys(testConfig())
	m.ScheduleLocal(Request{Addr: 0x40, CU: 2}, 500)
	var buf []Request
	buf = m.PopDone(500, buf)
	if len(buf) != 1 || !buf[0].L1Hit {
		t.Fatalf("ScheduleLocal response missing or unmarked: %+v", buf)
	}
}

func TestPendingAndQueueDepth(t *testing.T) {
	m := NewMemSys(testConfig())
	if m.Pending() || m.QueueDepth() != 0 {
		t.Fatal("fresh memsys reports pending work")
	}
	m.Submit(Request{Addr: 0x40})
	if !m.Pending() || m.QueueDepth() != 1 {
		t.Fatal("submitted request not visible")
	}
}

func TestMemSysCloneIndependence(t *testing.T) {
	m := NewMemSys(testConfig())
	m.Submit(Request{Addr: 0x40})
	cp := m.Clone()
	now := m.NextTickAfter(0)
	cp.Tick(now) // drain the clone only
	if m.QueueDepth() != 1 {
		t.Fatal("clone tick drained original queue")
	}
	cp.Submit(Request{Addr: 0x80})
	if m.QueueDepth() != 1 {
		t.Fatal("clone submit leaked into original")
	}
}

func TestQueueFIFO(t *testing.T) {
	var q queue
	for i := 0; i < 200; i++ {
		q.push(Request{Addr: uint64(i)})
	}
	for i := 0; i < 150; i++ {
		if got := q.pop(); got.Addr != uint64(i) {
			t.Fatalf("pop %d returned %d", i, got.Addr)
		}
	}
	// Interleave to exercise compaction.
	for i := 200; i < 400; i++ {
		q.push(Request{Addr: uint64(i)})
		if got := q.pop(); got.Addr != uint64(i-50) {
			t.Fatalf("interleaved pop got %d, want %d", got.Addr, i-50)
		}
	}
	if q.len() != 50 {
		t.Fatalf("queue length %d, want 50", q.len())
	}
}

func TestComplHeapOrdering(t *testing.T) {
	var h complHeap
	times := []clock.Time{500, 100, 300, 100, 700, 200}
	for i, at := range times {
		h.push(completion{At: at, Seq: int64(i)})
	}
	var prev completion
	for i := 0; len(h) > 0; i++ {
		c := h.pop()
		if i > 0 {
			if c.At < prev.At || (c.At == prev.At && c.Seq < prev.Seq) {
				t.Fatalf("heap order violated: %+v after %+v", c, prev)
			}
		}
		prev = c
	}
}
