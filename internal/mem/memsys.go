package mem

import (
	"fmt"

	"pcstall/internal/clock"
)

// Request is one cache-line transaction traveling through the hierarchy.
// CU and WF identify the issuing wavefront so the simulator can decrement
// its outstanding counters when the response lands; the remaining fields
// feed the estimation models' counters.
type Request struct {
	Addr  uint64
	CU    int32
	WF    int32
	Store bool
	// Issue is the time the CU issued the request (after L1 miss).
	Issue clock.Time
	// Leading marks a load issued while its CU had no other loads in
	// flight (the Leading Load model's signal).
	Leading bool
	// L1Hit marks a response scheduled by the CU itself for an L1 hit;
	// it bypassed the shared hierarchy.
	L1Hit bool
}

// Config describes the memory hierarchy geometry and timing.
type Config struct {
	LineBytes int

	L1Sets     int
	L1Ways     int
	L1Latency  int // CU cycles from issue to response on an L1 hit
	L1MSHRs    int // max outstanding L1 misses per CU (issue stalls beyond)
	L2Banks    int
	L2Sets     int // per bank
	L2Ways     int
	L2Latency  int // uncore cycles from dequeue to response on an L2 hit
	DRAMLat    int // uncore cycles from DRAM dequeue to response
	DRAMWidth  int // DRAM requests serviced per uncore cycle
	UncoreFreq clock.Freq
}

// DefaultConfig mirrors the paper's platform: 16 L2 banks shared by all
// CUs with the memory subsystem fixed at 1.6 GHz (§5). Capacities are
// Vega-class: 16 KiB L1 per CU, 4 MiB L2 total.
func DefaultConfig() Config {
	return Config{
		LineBytes:  64,
		L1Sets:     64, // 16 KiB: 64 sets * 4 ways * 64 B
		L1Ways:     4,
		L1Latency:  28,
		L1MSHRs:    32,
		L2Banks:    16,
		L2Sets:     256, // 4 MiB: 16 banks * 256 sets * 16 ways * 64 B
		L2Ways:     16,
		L2Latency:  64,
		DRAMLat:    240,
		DRAMWidth:  2,
		UncoreFreq: 1600,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("mem: line size %d not a power of two", c.LineBytes)
	case c.L1Sets < 1 || c.L1Ways < 1 || c.L2Banks < 1 || c.L2Sets < 1 || c.L2Ways < 1:
		return fmt.Errorf("mem: non-positive cache geometry: %+v", c)
	case c.L1Latency < 1 || c.L2Latency < 1 || c.DRAMLat < 1:
		return fmt.Errorf("mem: non-positive latency: %+v", c)
	case c.L1MSHRs < 1:
		return fmt.Errorf("mem: need at least one L1 MSHR")
	case c.DRAMWidth < 1:
		return fmt.Errorf("mem: DRAM width %d < 1", c.DRAMWidth)
	case c.UncoreFreq < 1:
		return fmt.Errorf("mem: uncore frequency %v", c.UncoreFreq)
	}
	return nil
}

// NewL1 builds one CU's L1 cache per the config.
func (c Config) NewL1() Cache { return mustCache(c.L1Sets, c.L1Ways, c.LineBytes) }

// queue is a FIFO of requests with O(1) amortized push/pop.
type queue struct {
	buf  []Request
	head int
}

func (q *queue) push(r Request) { q.buf = append(q.buf, r) }

func (q *queue) len() int { return len(q.buf) - q.head }

func (q *queue) pop() Request {
	r := q.buf[q.head]
	q.head++
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return r
}

func (q *queue) clone() queue {
	return queue{buf: append([]Request(nil), q.buf...), head: q.head}
}

// completion is a response scheduled to land at time At.
type completion struct {
	At  clock.Time
	Seq int64 // tie-break so completion order is deterministic
	Req Request
}

// complHeap is a binary min-heap ordered by (At, Seq).
type complHeap []completion

func (h *complHeap) push(c completion) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !(*h)[i].less((*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (c completion) less(o completion) bool {
	if c.At != o.At {
		return c.At < o.At
	}
	return c.Seq < o.Seq
}

func (h *complHeap) pop() completion {
	top := (*h)[0]
	n := len(*h) - 1
	(*h)[0] = (*h)[n]
	*h = (*h)[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*h)[l].less((*h)[small]) {
			small = l
		}
		if r < n && (*h)[r].less((*h)[small]) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// Stats are cumulative traffic counters for the shared hierarchy.
type Stats struct {
	L2Hits    int64
	L2Misses  int64
	DRAMReqs  int64
	Submitted int64
}

// MemSys is the shared portion of the hierarchy: banked L2 plus DRAM,
// clocked at the fixed uncore frequency. Each uncore cycle every bank
// dequeues at most one request and DRAM dequeues at most DRAMWidth.
type MemSys struct {
	Cfg    Config
	banks  []queue
	dramQ  queue
	l2     []Cache
	compl  complHeap
	seq    int64
	cycle  int64 // uncore cycles consumed (cycle k happens at k*period)
	period clock.Time
	stats  Stats
}

// NewMemSys builds the shared hierarchy.
func NewMemSys(cfg Config) *MemSys {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &MemSys{
		Cfg:    cfg,
		banks:  make([]queue, cfg.L2Banks),
		l2:     make([]Cache, cfg.L2Banks),
		period: cfg.UncoreFreq.PeriodPs(),
	}
	for i := range m.l2 {
		m.l2[i] = mustCache(cfg.L2Sets, cfg.L2Ways, cfg.LineBytes)
	}
	return m
}

// Stats returns cumulative traffic counters.
func (m *MemSys) Stats() Stats { return m.stats }

// BankOf returns the L2 bank servicing addr.
func (m *MemSys) BankOf(addr uint64) int {
	return int((addr / uint64(m.Cfg.LineBytes)) % uint64(m.Cfg.L2Banks))
}

// Submit enqueues an L1 miss into its L2 bank queue.
func (m *MemSys) Submit(r Request) {
	m.stats.Submitted++
	m.banks[m.BankOf(r.Addr)].push(r)
}

// Pending reports whether any queue still holds work (completions alone do
// not require uncore ticks; they are drained by PopDone).
func (m *MemSys) Pending() bool {
	if m.dramQ.len() > 0 {
		return true
	}
	for i := range m.banks {
		if m.banks[i].len() > 0 {
			return true
		}
	}
	return false
}

// NextTickAfter returns the first uncore cycle boundary strictly after t,
// advancing the internal cycle cursor model. The uncore grid is anchored
// at time zero.
func (m *MemSys) NextTickAfter(t clock.Time) clock.Time {
	k := t/m.period + 1
	return k * m.period
}

// NextDone returns the land time of the earliest scheduled completion, or
// false if none are in flight.
func (m *MemSys) NextDone() (clock.Time, bool) {
	if len(m.compl) == 0 {
		return 0, false
	}
	return m.compl[0].At, true
}

// Tick advances the shared hierarchy by one uncore cycle at time now:
// every bank dequeues one request (L2 hit → response after L2Latency;
// miss → DRAM queue and L2 fill on the miss path), and DRAM dequeues up
// to DRAMWidth requests (response after DRAMLat).
func (m *MemSys) Tick(now clock.Time) {
	for b := range m.banks {
		if m.banks[b].len() == 0 {
			continue
		}
		r := m.banks[b].pop()
		if m.l2[b].Probe(r.Addr) {
			m.stats.L2Hits++
			m.schedule(r, now+clock.Time(m.Cfg.L2Latency)*m.period)
			continue
		}
		m.stats.L2Misses++
		m.dramQ.push(r)
	}
	for i := 0; i < m.Cfg.DRAMWidth && m.dramQ.len() > 0; i++ {
		r := m.dramQ.pop()
		m.stats.DRAMReqs++
		m.l2[m.BankOf(r.Addr)].Fill(r.Addr)
		m.schedule(r, now+clock.Time(m.Cfg.DRAMLat)*m.period)
	}
}

func (m *MemSys) schedule(r Request, at clock.Time) {
	m.seq++
	m.compl.push(completion{At: at, Seq: m.seq, Req: r})
}

// ScheduleLocal schedules a response that bypasses the shared hierarchy —
// the CU uses it for L1 hits, whose latency is in the CU's own clock
// domain. The response lands through the same deterministic completion
// queue as L2/DRAM responses.
func (m *MemSys) ScheduleLocal(r Request, at clock.Time) {
	r.L1Hit = true
	m.schedule(r, at)
}

// PopDone appends to buf every completion landing at or before now, in
// deterministic (time, sequence) order, and returns the extended slice.
func (m *MemSys) PopDone(now clock.Time, buf []Request) []Request {
	for len(m.compl) > 0 && m.compl[0].At <= now {
		buf = append(buf, m.compl.pop().Req)
	}
	return buf
}

// InFlight returns the number of scheduled, unlanded completions.
func (m *MemSys) InFlight() int { return len(m.compl) }

// QueueDepth returns the total occupancy of bank and DRAM queues, an
// indicator of contention used by tests and traces.
func (m *MemSys) QueueDepth() int {
	n := m.dramQ.len()
	for i := range m.banks {
		n += m.banks[i].len()
	}
	return n
}

// L2HitRate returns the cumulative L2 hit fraction (0 when no traffic).
func (m *MemSys) L2HitRate() float64 {
	tot := m.stats.L2Hits + m.stats.L2Misses
	if tot == 0 {
		return 0
	}
	return float64(m.stats.L2Hits) / float64(tot)
}

// Clone returns a deep copy of the full shared-hierarchy state.
func (m *MemSys) Clone() *MemSys {
	cp := &MemSys{
		Cfg:    m.Cfg,
		banks:  make([]queue, len(m.banks)),
		dramQ:  m.dramQ.clone(),
		l2:     make([]Cache, len(m.l2)),
		compl:  append(complHeap(nil), m.compl...),
		seq:    m.seq,
		cycle:  m.cycle,
		period: m.period,
		stats:  m.stats,
	}
	for i := range m.banks {
		cp.banks[i] = m.banks[i].clone()
	}
	for i := range m.l2 {
		cp.l2[i] = m.l2[i].Clone()
	}
	return cp
}
