package mem

import (
	"fmt"
	"math/bits"

	"pcstall/internal/clock"
)

// Request is one cache-line transaction traveling through the hierarchy.
// CU and WF identify the issuing wavefront so the simulator can decrement
// its outstanding counters when the response lands; the remaining fields
// feed the estimation models' counters.
type Request struct {
	Addr  uint64
	CU    int32
	WF    int32
	Store bool
	// Issue is the time the CU issued the request (after L1 miss).
	Issue clock.Time
	// Leading marks a load issued while its CU had no other loads in
	// flight (the Leading Load model's signal).
	Leading bool
	// L1Hit marks a response scheduled by the CU itself for an L1 hit;
	// it bypassed the shared hierarchy.
	L1Hit bool
}

// Config describes the memory hierarchy geometry and timing.
type Config struct {
	LineBytes int

	L1Sets     int
	L1Ways     int
	L1Latency  int // CU cycles from issue to response on an L1 hit
	L1MSHRs    int // max outstanding L1 misses per CU (issue stalls beyond)
	L2Banks    int
	L2Sets     int // per bank
	L2Ways     int
	L2Latency  int // uncore cycles from dequeue to response on an L2 hit
	DRAMLat    int // uncore cycles from DRAM dequeue to response
	DRAMWidth  int // DRAM requests serviced per uncore cycle
	UncoreFreq clock.Freq
}

// DefaultConfig mirrors the paper's platform: 16 L2 banks shared by all
// CUs with the memory subsystem fixed at 1.6 GHz (§5). Capacities are
// Vega-class: 16 KiB L1 per CU, 4 MiB L2 total.
func DefaultConfig() Config {
	return Config{
		LineBytes:  64,
		L1Sets:     64, // 16 KiB: 64 sets * 4 ways * 64 B
		L1Ways:     4,
		L1Latency:  28,
		L1MSHRs:    32,
		L2Banks:    16,
		L2Sets:     256, // 4 MiB: 16 banks * 256 sets * 16 ways * 64 B
		L2Ways:     16,
		L2Latency:  64,
		DRAMLat:    240,
		DRAMWidth:  2,
		UncoreFreq: 1600,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("mem: line size %d not a power of two", c.LineBytes)
	case c.L1Sets < 1 || c.L1Ways < 1 || c.L2Banks < 1 || c.L2Sets < 1 || c.L2Ways < 1:
		return fmt.Errorf("mem: non-positive cache geometry: %+v", c)
	case c.L1Latency < 1 || c.L2Latency < 1 || c.DRAMLat < 1:
		return fmt.Errorf("mem: non-positive latency: %+v", c)
	case c.L1MSHRs < 1:
		return fmt.Errorf("mem: need at least one L1 MSHR")
	case c.DRAMWidth < 1:
		return fmt.Errorf("mem: DRAM width %d < 1", c.DRAMWidth)
	case c.UncoreFreq < 1:
		return fmt.Errorf("mem: uncore frequency %v", c.UncoreFreq)
	}
	return nil
}

// NewL1 builds one CU's L1 cache per the config.
func (c Config) NewL1() Cache { return mustCache(c.L1Sets, c.L1Ways, c.LineBytes) }

// queue is a FIFO of requests with O(1) amortized push/pop.
type queue struct {
	buf  []Request
	head int
}

func (q *queue) push(r Request) { q.buf = append(q.buf, r) }

func (q *queue) len() int { return len(q.buf) - q.head }

func (q *queue) pop() Request {
	r := q.buf[q.head]
	q.head++
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return r
}

func (q *queue) clone() queue {
	// Only the live tail matters; dropping the consumed prefix keeps
	// clones of long-running queues small.
	return queue{buf: append([]Request(nil), q.buf[q.head:]...)}
}

// completion is a response scheduled to land at time At.
type completion struct {
	At  clock.Time
	Seq int64 // tie-break so completion order is deterministic
	Req Request
}

func lessAtSeq(at1 clock.Time, seq1 int64, at2 clock.Time, seq2 int64) bool {
	if at1 != at2 {
		return at1 < at2
	}
	return seq1 < seq2
}

// ring is a FIFO of completions whose land times are pushed in
// non-decreasing order, so the head is always the earliest. L2-hit and
// DRAM responses each have a fixed latency from a monotonically advancing
// uncore clock, which makes a plain ring an O(1) replacement for a heap.
type ring struct {
	buf  []completion
	head int
}

func (q *ring) push(c completion) {
	if n := len(q.buf); n > q.head && c.At < q.buf[n-1].At {
		panic("mem: completion ring pushed out of order")
	}
	q.buf = append(q.buf, c)
}

func (q *ring) len() int { return len(q.buf) - q.head }

func (q *ring) peek() *completion { return &q.buf[q.head] }

func (q *ring) pop() completion {
	c := q.buf[q.head]
	q.head++
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return c
}

func (q *ring) clone() ring {
	// Only the live tail matters; dropping the consumed prefix keeps
	// clones of long-running rings small.
	return ring{buf: append([]completion(nil), q.buf[q.head:]...)}
}

// complHeap is a binary min-heap ordered by (At, Seq).
type complHeap []completion

func (h *complHeap) push(c completion) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !(*h)[i].less((*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (c completion) less(o completion) bool {
	if c.At != o.At {
		return c.At < o.At
	}
	return c.Seq < o.Seq
}

func (h *complHeap) pop() completion {
	top := (*h)[0]
	n := len(*h) - 1
	(*h)[0] = (*h)[n]
	*h = (*h)[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*h)[l].less((*h)[small]) {
			small = l
		}
		if r < n && (*h)[r].less((*h)[small]) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// Stats are cumulative traffic counters for the shared hierarchy.
type Stats struct {
	L2Hits    int64
	L2Misses  int64
	DRAMReqs  int64
	Submitted int64
}

// MemSys is the shared portion of the hierarchy: banked L2 plus DRAM,
// clocked at the fixed uncore frequency. Each uncore cycle every bank
// dequeues at most one request and DRAM dequeues at most DRAMWidth.
type MemSys struct {
	Cfg   Config
	banks []queue
	dramQ queue
	l2    []Cache
	// Completions are split by source. L2-hit and DRAM responses land a
	// fixed latency after uncore cycles that only move forward, so each
	// class is FIFO and lives in an O(1) ring. CU-local L1-hit responses
	// (ScheduleLocal) use per-CU clocks whose frequency can change, so
	// only they need a heap. PopDone merges the three by (At, Seq).
	l2Done   ring
	dramDone ring
	local    complHeap
	seq      int64
	cycle    int64 // uncore cycles consumed (cycle k happens at k*period)
	period   clock.Time
	bankOcc  int // total requests sitting in bank queues
	// bankBits has bit b set while bank b's queue is non-empty, letting
	// Tick visit only occupied banks. Maintained only when the bank count
	// fits in a word (≤ 64); with more banks it stays 0 and Tick scans.
	bankBits uint64
	// lineShift and bankMask implement BankOf with shift/mask when line
	// size and bank count are powers of two (bankMask is 0 otherwise and
	// BankOf falls back to division).
	lineShift uint32
	bankMask  uint64
	stats     Stats
}

// NewMemSys builds the shared hierarchy.
func NewMemSys(cfg Config) *MemSys {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &MemSys{
		Cfg:    cfg,
		banks:  make([]queue, cfg.L2Banks),
		l2:     make([]Cache, cfg.L2Banks),
		period: cfg.UncoreFreq.PeriodPs(),
	}
	for 1<<m.lineShift != cfg.LineBytes {
		m.lineShift++ // LineBytes is a validated power of two
	}
	if b := cfg.L2Banks; b&(b-1) == 0 {
		m.bankMask = uint64(b - 1)
	}
	for i := range m.l2 {
		m.l2[i] = mustCache(cfg.L2Sets, cfg.L2Ways, cfg.LineBytes)
	}
	return m
}

// Stats returns cumulative traffic counters.
func (m *MemSys) Stats() Stats { return m.stats }

// BankOf returns the L2 bank servicing addr.
func (m *MemSys) BankOf(addr uint64) int {
	if m.bankMask != 0 {
		return int((addr >> m.lineShift) & m.bankMask)
	}
	return int((addr / uint64(m.Cfg.LineBytes)) % uint64(m.Cfg.L2Banks))
}

// Submit enqueues an L1 miss into its L2 bank queue.
func (m *MemSys) Submit(r Request) {
	m.stats.Submitted++
	b := m.BankOf(r.Addr)
	m.banks[b].push(r)
	m.bankOcc++
	if len(m.banks) <= 64 {
		m.bankBits |= 1 << uint(b)
	}
}

// Pending reports whether any queue still holds work (completions alone do
// not require uncore ticks; they are drained by PopDone).
func (m *MemSys) Pending() bool {
	return m.bankOcc > 0 || m.dramQ.len() > 0
}

// NextTickAfter returns the first uncore cycle boundary strictly after t,
// advancing the internal cycle cursor model. The uncore grid is anchored
// at time zero.
func (m *MemSys) NextTickAfter(t clock.Time) clock.Time {
	k := t/m.period + 1
	return k * m.period
}

// NextDone returns the land time of the earliest scheduled completion, or
// false if none are in flight.
func (m *MemSys) NextDone() (clock.Time, bool) {
	at := clock.Time(0)
	ok := false
	if m.l2Done.len() > 0 {
		at, ok = m.l2Done.peek().At, true
	}
	if m.dramDone.len() > 0 {
		if t := m.dramDone.peek().At; !ok || t < at {
			at, ok = t, true
		}
	}
	if len(m.local) > 0 {
		if t := m.local[0].At; !ok || t < at {
			at, ok = t, true
		}
	}
	return at, ok
}

// Tick advances the shared hierarchy by one uncore cycle at time now:
// every bank dequeues one request (L2 hit → response after L2Latency;
// miss → DRAM queue and L2 fill on the miss path), and DRAM dequeues up
// to DRAMWidth requests (response after DRAMLat).
func (m *MemSys) Tick(now clock.Time) {
	if m.bankOcc > 0 && len(m.banks) <= 64 {
		// Visit only occupied banks; bit order is ascending bank index,
		// matching the plain scan exactly.
		for bb := m.bankBits; bb != 0; bb &= bb - 1 {
			b := bits.TrailingZeros64(bb)
			m.tickBank(b, now)
		}
	} else if m.bankOcc > 0 {
		for b := range m.banks {
			if m.banks[b].len() == 0 {
				continue
			}
			m.tickBank(b, now)
		}
	}
	m.tickDRAM(now)
}

// TickRun advances the shared hierarchy through consecutive uncore cycles
// starting at now, stopping before horizon (exclusive) — a time the
// caller guarantees free of CU events, so no new request can be submitted
// inside the window. TickRun additionally stops before the earliest land
// time of any completion it could itself schedule (now + min latency), so
// the caller never misses a response. The first cycle at now always runs.
// It returns the time of the next uncore cycle and whether queued work
// remains; with no queued work the hierarchy needs no further ticks until
// the next Submit.
//
// Batching cycles here instead of returning to the event loop for each
// one is what makes memory-bound stretches cheap: the per-event loop
// overhead (schedule min scans, completion checks) is paid once per
// batch, not once per 625ps uncore cycle.
func (m *MemSys) TickRun(now, horizon clock.Time) (clock.Time, bool) {
	minLat := m.Cfg.L2Latency
	if m.Cfg.DRAMLat < minLat {
		minLat = m.Cfg.DRAMLat
	}
	if h := now + clock.Time(minLat)*m.period; h < horizon {
		horizon = h
	}
	t := now
	for {
		m.Tick(t)
		if m.bankOcc == 0 && m.dramQ.len() == 0 {
			return 0, false
		}
		t += m.period
		if t >= horizon {
			return t, true
		}
	}
}

// tickBank dequeues one request from a non-empty bank queue: L2 hit →
// response after L2Latency; miss → DRAM queue.
func (m *MemSys) tickBank(b int, now clock.Time) {
	r := m.banks[b].pop()
	m.bankOcc--
	if m.banks[b].len() == 0 {
		m.bankBits &^= 1 << uint(b)
	}
	if m.l2[b].Probe(r.Addr) {
		m.stats.L2Hits++
		m.seq++
		m.l2Done.push(completion{At: now + clock.Time(m.Cfg.L2Latency)*m.period, Seq: m.seq, Req: r})
		return
	}
	m.stats.L2Misses++
	m.dramQ.push(r)
}

// tickDRAM dequeues up to DRAMWidth requests from the DRAM queue, filling
// L2 on the miss path and scheduling responses after DRAMLat.
func (m *MemSys) tickDRAM(now clock.Time) {
	for i := 0; i < m.Cfg.DRAMWidth && m.dramQ.len() > 0; i++ {
		r := m.dramQ.pop()
		m.stats.DRAMReqs++
		m.l2[m.BankOf(r.Addr)].Fill(r.Addr)
		m.seq++
		m.dramDone.push(completion{At: now + clock.Time(m.Cfg.DRAMLat)*m.period, Seq: m.seq, Req: r})
	}
}

// ScheduleLocal schedules a response that bypasses the shared hierarchy —
// the CU uses it for L1 hits, whose latency is in the CU's own clock
// domain. The response lands through the same deterministic completion
// queue as L2/DRAM responses. CU clock frequencies can drop between
// issues, so local land times are not monotonic and need the heap.
func (m *MemSys) ScheduleLocal(r Request, at clock.Time) {
	r.L1Hit = true
	m.seq++
	m.local.push(completion{At: at, Seq: m.seq, Req: r})
}

// PopDone appends to buf every completion landing at or before now, in
// deterministic (time, sequence) order, and returns the extended slice.
// The order is identical to a single (At, Seq) min-heap over all three
// completion sources.
func (m *MemSys) PopDone(now clock.Time, buf []Request) []Request {
	for {
		const none = -1
		src := none
		var at clock.Time
		var seq int64
		if m.l2Done.len() > 0 {
			if c := m.l2Done.peek(); c.At <= now {
				src, at, seq = 0, c.At, c.Seq
			}
		}
		if m.dramDone.len() > 0 {
			if c := m.dramDone.peek(); c.At <= now && (src == none || lessAtSeq(c.At, c.Seq, at, seq)) {
				src, at, seq = 1, c.At, c.Seq
			}
		}
		if len(m.local) > 0 {
			if c := &m.local[0]; c.At <= now && (src == none || lessAtSeq(c.At, c.Seq, at, seq)) {
				src = 2
			}
		}
		switch src {
		case 0:
			buf = append(buf, m.l2Done.pop().Req)
		case 1:
			buf = append(buf, m.dramDone.pop().Req)
		case 2:
			buf = append(buf, m.local.pop().Req)
		default:
			return buf
		}
	}
}

// InFlight returns the number of scheduled, unlanded completions.
func (m *MemSys) InFlight() int {
	return m.l2Done.len() + m.dramDone.len() + len(m.local)
}

// QueueDepth returns the total occupancy of bank and DRAM queues, an
// indicator of contention used by tests and traces.
func (m *MemSys) QueueDepth() int {
	n := m.dramQ.len()
	for i := range m.banks {
		n += m.banks[i].len()
	}
	return n
}

// L2HitRate returns the cumulative L2 hit fraction (0 when no traffic).
func (m *MemSys) L2HitRate() float64 {
	tot := m.stats.L2Hits + m.stats.L2Misses
	if tot == 0 {
		return 0
	}
	return float64(m.stats.L2Hits) / float64(tot)
}

// Clone returns a deep copy of the full shared-hierarchy state. Queue and
// completion state is copied eagerly (it is small and churns constantly);
// the L2 tag arrays — the bulk — are shared copy-on-write via Cache.Clone.
func (m *MemSys) Clone() *MemSys {
	cp := &MemSys{
		Cfg:       m.Cfg,
		banks:     make([]queue, len(m.banks)),
		dramQ:     m.dramQ.clone(),
		l2:        make([]Cache, len(m.l2)),
		l2Done:    m.l2Done.clone(),
		dramDone:  m.dramDone.clone(),
		local:     append(complHeap(nil), m.local...),
		seq:       m.seq,
		cycle:     m.cycle,
		period:    m.period,
		bankOcc:   m.bankOcc,
		bankBits:  m.bankBits,
		lineShift: m.lineShift,
		bankMask:  m.bankMask,
		stats:     m.stats,
	}
	for i := range m.banks {
		cp.banks[i] = m.banks[i].clone()
	}
	for i := range m.l2 {
		cp.l2[i] = m.l2[i].Clone()
	}
	return cp
}

// Release drops this MemSys's copy-on-write share of the L2 tag arrays.
// Call it when discarding a Clone whose parent lives on; forgetting it is
// safe, merely slower. The MemSys must not be used after Release.
func (m *MemSys) Release() {
	for i := range m.l2 {
		m.l2[i].Release()
	}
}
