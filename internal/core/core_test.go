package core

import (
	"testing"

	"pcstall/internal/predict"
)

func TestDesignsMatchTable3(t *testing.T) {
	ds := Designs()
	want := []struct {
		name      string
		control   string
		practical bool
	}{
		{"STALL", "Reactive", true},
		{"LEAD", "Reactive", true},
		{"CRIT", "Reactive", true},
		{"CRISP", "Reactive", true},
		{"ACCREAC", "Reactive", false},
		{"PCSTALL", "PC-Based", true},
		{"ACCPC", "PC-Based", false},
		{"ORACLE", "Oracle", false},
	}
	if len(ds) != len(want) {
		t.Fatalf("%d designs, want %d", len(ds), len(want))
	}
	for i, w := range want {
		d := ds[i]
		if d.Name != w.name || d.Control != w.control || d.Practical != w.practical {
			t.Errorf("design %d = {%s %s %v}, want {%s %s %v}",
				i, d.Name, d.Control, d.Practical, w.name, w.control, w.practical)
		}
		p := d.New()
		if p == nil || p.Name() != d.Name {
			t.Errorf("design %s factory produced %v", d.Name, p)
		}
		// Stateful policies must not share instances. (Stateless
		// zero-size policies like ORACLE legitimately alias: Go gives
		// all zero-size allocations the same address.)
		if d.Name == "PCSTALL" || d.Name == "ACCPC" {
			if d.New() == p {
				t.Errorf("design %s factory returned a shared instance", d.Name)
			}
		}
	}
}

func TestDesignByName(t *testing.T) {
	d, err := DesignByName("PCSTALL")
	if err != nil || d.Name != "PCSTALL" {
		t.Fatalf("PCSTALL lookup: %v %v", d, err)
	}
	if _, err := DesignByName("nope"); err == nil {
		t.Fatal("unknown design accepted")
	}
	s, err := DesignByName("STATIC-1500")
	if err != nil {
		t.Fatal(err)
	}
	if s.Control != "Static" || s.New().Name() != "STATIC-1.5GHz" {
		t.Fatalf("static parsing: %v -> %s", s, s.New().Name())
	}
}

func TestStaticDesign(t *testing.T) {
	d := StaticDesign(2200)
	if d.New().Name() != "STATIC-2.2GHz" {
		t.Fatalf("name %s", d.New().Name())
	}
}

func TestStorageTable(t *testing.T) {
	rows := StorageTable(predict.DefaultPCTable(), 40, 32)
	byName := map[string]StorageRow{}
	for _, r := range rows {
		byName[r.Design] = r
		sum := 0
		for _, c := range r.Components {
			sum += c.Bytes
		}
		if sum != r.TotalBytes {
			t.Errorf("%s components sum %d != total %d", r.Design, sum, r.TotalBytes)
		}
	}
	// TABLE I anchors: PCSTALL = 328 bytes (128 table + 40 PC + 160
	// stall registers); STALL = 4 bytes; PCSTALL < CRISP.
	if byName["PCSTALL"].TotalBytes != 328 {
		t.Errorf("PCSTALL storage %d, want 328", byName["PCSTALL"].TotalBytes)
	}
	if byName["STALL"].TotalBytes != 4 {
		t.Errorf("STALL storage %d, want 4", byName["STALL"].TotalBytes)
	}
	if byName["PCSTALL"].TotalBytes >= byName["CRISP"].TotalBytes {
		t.Errorf("PCSTALL (%d B) not smaller than CRISP (%d B) — the paper's storage claim",
			byName["PCSTALL"].TotalBytes, byName["CRISP"].TotalBytes)
	}
	// Simpler models are strictly ordered by cost.
	if !(byName["STALL"].TotalBytes < byName["LEAD"].TotalBytes &&
		byName["LEAD"].TotalBytes < byName["CRIT"].TotalBytes) {
		t.Error("model storage ordering broken")
	}
}
