// Package core assembles the paper's primary contribution: the PCSTALL
// fine-grain DVFS mechanism (wavefront-level STALL estimation feeding a
// PC-indexed sensitivity predictor, §4.4) and the registry of all
// evaluated DVFS designs (TABLE III), plus the hardware storage
// accounting of TABLE I.
package core

import (
	"fmt"
	"strings"

	"pcstall/internal/clock"
	"pcstall/internal/dvfs"
	"pcstall/internal/estimate"
	"pcstall/internal/predict"
)

// Design describes one evaluated DVFS design (a TABLE III row).
type Design struct {
	Name string
	// Estimation and Control describe the design for reports.
	Estimation string
	Control    string
	// Practical designs use only hardware counters; impractical ones
	// (ACC*, ORACLE) consume fork-pre-execute sampling.
	Practical bool
	// New constructs a fresh policy instance for one run.
	New func() dvfs.Policy
}

// Designs returns TABLE III in paper order: the four reactive baselines,
// the accurate-estimate reactive bound, PCSTALL, the accurate PC bound,
// and the oracle.
func Designs() []Design {
	return []Design{
		{
			Name: "STALL", Estimation: "Stall Model", Control: "Reactive", Practical: true,
			New: func() dvfs.Policy { return &dvfs.Reactive{Model: estimate.Stall{}} },
		},
		{
			Name: "LEAD", Estimation: "Leading Load", Control: "Reactive", Practical: true,
			New: func() dvfs.Policy { return &dvfs.Reactive{Model: estimate.Lead{}} },
		},
		{
			Name: "CRIT", Estimation: "Critical Path", Control: "Reactive", Practical: true,
			New: func() dvfs.Policy { return &dvfs.Reactive{Model: estimate.Crit{}} },
		},
		{
			Name: "CRISP", Estimation: "CRISP GPU Model", Control: "Reactive", Practical: true,
			New: func() dvfs.Policy { return &dvfs.Reactive{Model: estimate.Crisp{}} },
		},
		{
			Name: "ACCREAC", Estimation: "Accurate Estimate", Control: "Reactive", Practical: false,
			New: func() dvfs.Policy { return &dvfs.AccReactive{} },
		},
		{
			Name: "PCSTALL", Estimation: "Stall - Wavefront", Control: "PC-Based", Practical: true,
			New: func() dvfs.Policy { return dvfs.NewPCStall() },
		},
		{
			Name: "ACCPC", Estimation: "Accurate Estimate", Control: "PC-Based", Practical: false,
			New: func() dvfs.Policy { return dvfs.NewAccPC() },
		},
		{
			Name: "ORACLE", Estimation: "Accurate Estimate", Control: "Oracle", Practical: false,
			New: func() dvfs.Policy { return &dvfs.Oracle{} },
		},
	}
}

// ExtensionDesigns returns the predictor families this reproduction
// implements beyond TABLE III, drawn from the paper's related-work
// survey (§2.4): a global phase-history-table predictor (HIST, Isci et
// al.) and a tabular Q-learning governor (QLEARN, Bai et al.).
func ExtensionDesigns() []Design {
	return []Design{
		{
			Name: "HIST", Estimation: "CRISP GPU Model", Control: "Phase History Table", Practical: true,
			New: func() dvfs.Policy { return dvfs.NewHistory() },
		},
		{
			Name: "QLEARN", Estimation: "(fused)", Control: "Q-Learning", Practical: true,
			New: func() dvfs.Policy { return dvfs.NewQLearn() },
		},
	}
}

// DesignNames returns every design resolvable by DesignByName: TABLE III
// in paper order, the extension predictors, and the hardened variant —
// plus the "STATIC-<MHz>" pattern, listed last as a template since its
// instances are synthesized on demand. It backs both CLI flag errors and
// the serving layer's GET /v1/designs listing.
func DesignNames() []string {
	names := make([]string, 0, 12)
	for _, d := range Designs() {
		names = append(names, d.Name)
	}
	for _, d := range ExtensionDesigns() {
		names = append(names, d.Name)
	}
	names = append(names, "PCSTALL-HARD", "STATIC-<MHz>")
	return names
}

// DesignByName finds a design (case-sensitive TABLE III name or extension
// name). Static baselines are synthesized from names like "STATIC-1700".
// Unknown names fail with the full list of valid ones, so a mistyped
// -design flag (or API request) is self-correcting.
func DesignByName(name string) (Design, error) {
	for _, d := range Designs() {
		if d.Name == name {
			return d, nil
		}
	}
	for _, d := range ExtensionDesigns() {
		if d.Name == name {
			return d, nil
		}
	}
	if name == "PCSTALL-HARD" {
		// The fault-tolerant variant: PCSTALL wrapped in the hardened
		// governor with a CRISP reactive fallback. Not a TABLE III row
		// (the paper models perfect sensing), so it is resolvable by
		// name for the fault-injection studies without appearing in
		// Designs().
		return Design{
			Name: "PCSTALL-HARD", Estimation: "Stall - Wavefront", Control: "PC-Based + Guard", Practical: true,
			New: func() dvfs.Policy {
				h := dvfs.NewHardened(dvfs.NewPCStall(), &dvfs.Reactive{Model: estimate.Crisp{}})
				h.Label = "PCSTALL-HARD"
				return h
			},
		}, nil
	}
	var mhz int
	if n, err := fmt.Sscanf(name, "STATIC-%d", &mhz); n == 1 && err == nil {
		f := clock.Freq(mhz)
		return Design{
			Name: name, Estimation: "-", Control: "Static", Practical: true,
			New: func() dvfs.Policy { return &dvfs.Static{F: f} },
		}, nil
	}
	return Design{}, fmt.Errorf("core: unknown design %q (available: %s)", name, strings.Join(DesignNames(), ", "))
}

// StaticDesign returns the static baseline at f.
func StaticDesign(f clock.Freq) Design {
	return Design{
		Name: "STATIC-" + f.String(), Estimation: "-", Control: "Static", Practical: true,
		New: func() dvfs.Policy { return &dvfs.Static{F: f} },
	}
}

// StorageRow is one TABLE I row: the per-instance hardware storage a
// design's estimator/predictor requires.
type StorageRow struct {
	Design string
	// Components itemizes the storage.
	Components []StorageItem
	TotalBytes int
}

// StorageItem is one storage component.
type StorageItem struct {
	Name  string
	Count int
	Bytes int
}

// StorageTable computes TABLE I for a given PC-table configuration and CU
// shape (wavesPerCU slots, mshrs outstanding misses tracked by the
// critical-path models).
func StorageTable(pc predict.PCTableConfig, wavesPerCU, mshrs int) []StorageRow {
	rows := []StorageRow{
		{
			Design: "PCSTALL",
			Components: []StorageItem{
				// One packed sensitivity byte per entry, as TABLE I.
				{Name: "Sensitivity Table", Count: pc.Entries, Bytes: pc.Entries},
				// Starting-PC index bits, one register per wavefront.
				{Name: "Starting PC register (index bits)", Count: wavesPerCU, Bytes: wavesPerCU},
				// One 32-bit stall-time accumulator per wavefront.
				{Name: "Stall Time Registers", Count: wavesPerCU, Bytes: 4 * wavesPerCU},
			},
		},
		{
			Design: "CRISP",
			Components: []StorageItem{
				// Critical-path timestamps for outstanding loads.
				{Name: "Outstanding-load timestamps", Count: mshrs, Bytes: 8 * mshrs},
				// CRISP additionally models store stalls, which needs
				// timestamps for the outstanding stores.
				{Name: "Outstanding-store timestamps", Count: 16, Bytes: 8 * 16},
				{Name: "Store stall / overlap counters", Count: 3, Bytes: 24},
				{Name: "Critical path accumulator", Count: 1, Bytes: 8},
			},
		},
		{
			Design: "CRIT",
			Components: []StorageItem{
				{Name: "Outstanding-load timestamps", Count: mshrs, Bytes: 8 * mshrs},
				{Name: "Critical path accumulator", Count: 1, Bytes: 8},
			},
		},
		{
			Design: "LEAD",
			Components: []StorageItem{
				{Name: "Leading load register + accumulator", Count: 2, Bytes: 12},
			},
		},
		{
			Design: "STALL",
			Components: []StorageItem{
				{Name: "Stall accumulator", Count: 1, Bytes: 4},
			},
		},
	}
	for i := range rows {
		total := 0
		for _, c := range rows[i].Components {
			total += c.Bytes
		}
		rows[i].TotalBytes = total
	}
	return rows
}
