// Package clock models frequencies, voltage/frequency domains, and DVFS
// transitions.
//
// Simulated time is int64 picoseconds. A domain at f MHz ticks at
//
//	anchor + k*1e6/f   (integer division, k = cycles since anchor)
//
// computed fresh for each k, so tick times are exact rational floors with
// no accumulated drift, and two runs of the same schedule produce
// identical tick sequences — a requirement for the snapshot/rollback
// oracle in internal/oracle.
package clock

import "fmt"

// Time is simulated time in picoseconds.
type Time = int64

// Common durations in picoseconds.
const (
	Nanosecond  Time = 1_000
	Microsecond Time = 1_000_000
	Millisecond Time = 1_000_000_000
)

// Freq is a clock frequency in MHz.
type Freq int32

// GHz returns the frequency in GHz for display.
func (f Freq) GHz() float64 { return float64(f) / 1000 }

// String formats the frequency as "1.7GHz".
func (f Freq) String() string { return fmt.Sprintf("%.1fGHz", f.GHz()) }

// PeriodPs returns the (floor) clock period in picoseconds.
func (f Freq) PeriodPs() Time { return 1_000_000 / Time(f) }

// Grid is the discrete set of DVFS-reachable frequencies. The paper's
// configuration is 1.3-2.2 GHz in 100 MHz steps (10 V/f states), with the
// range itself set by a higher-level power manager (§5.4).
type Grid struct {
	Min, Max, Step Freq
}

// DefaultGrid is the paper's 10-state grid.
func DefaultGrid() Grid { return Grid{Min: 1300, Max: 2200, Step: 100} }

// Validate checks that the grid is well-formed.
func (g Grid) Validate() error {
	if g.Min <= 0 || g.Max < g.Min || g.Step <= 0 {
		return fmt.Errorf("clock: invalid grid %+v", g)
	}
	if (g.Max-g.Min)%g.Step != 0 {
		return fmt.Errorf("clock: grid %+v: range not a multiple of step", g)
	}
	return nil
}

// Count returns the number of V/f states.
func (g Grid) Count() int { return int((g.Max-g.Min)/g.Step) + 1 }

// States returns all frequencies, ascending.
func (g Grid) States() []Freq {
	out := make([]Freq, 0, g.Count())
	for f := g.Min; f <= g.Max; f += g.Step {
		out = append(out, f)
	}
	return out
}

// State returns the i-th frequency (0 = Min).
func (g Grid) State(i int) Freq { return g.Min + Freq(i)*g.Step }

// Index returns the state index of f, or -1 if f is not on the grid.
func (g Grid) Index(f Freq) int {
	if f < g.Min || f > g.Max || (f-g.Min)%g.Step != 0 {
		return -1
	}
	return int((f - g.Min) / g.Step)
}

// Clamp snaps f onto the nearest grid state.
func (g Grid) Clamp(f Freq) Freq {
	if f < g.Min {
		return g.Min
	}
	if f > g.Max {
		return g.Max
	}
	r := (f - g.Min) % g.Step
	f -= r
	if r*2 >= g.Step {
		f += g.Step
	}
	return f
}

// Mid returns the grid's middle state (the paper's 1.7 GHz static
// baseline on the default grid, rounding down for even counts).
func (g Grid) Mid() Freq { return g.State((g.Count() - 1) / 2) }

// TransitionLatency returns the V/f transition latency the paper assumes
// for a given epoch duration (§5): 4ns at 1µs epochs, 40ns at 10µs, 200ns
// at 50µs, 400ns at 100µs; interpolated as 0.4% of the epoch in between.
func TransitionLatency(epoch Time) Time {
	lat := epoch / 250 // 0.4%
	if lat < 1*Nanosecond {
		lat = 1 * Nanosecond
	}
	if lat > 400*Nanosecond {
		lat = 400 * Nanosecond
	}
	return lat
}

// Domain is one voltage/frequency island: a group of CUs (plus their L1s)
// sharing a frequency. Domain is plain data; copying the struct snapshots
// it exactly.
type Domain struct {
	ID   int32
	Freq Freq
	// Anchor is the time the current frequency took effect; cycle k of
	// this regime ticks at Anchor + k*1e6/Freq.
	Anchor Time
	// StallUntil is the end of the in-progress DVFS transition; the
	// domain must not execute before it.
	StallUntil Time
	// Transitions counts frequency changes (for transition energy).
	Transitions int64
	// FailedTransitions counts requested changes the regulator aborted
	// (fault injection): the domain paid the settle stall but kept its
	// old frequency.
	FailedTransitions int64
	// q and r cache 1e6 divmod Freq (the floor period and its remainder);
	// memoQ/memoA/memoRem cache the last NextTickAfter query, its answer,
	// and k*1e6 mod Freq at the answer, letting the hot sequential case —
	// asking for the tick after the one just returned — advance the grid
	// cursor with adds instead of divisions. All are lazily rebuilt, so a
	// zero-value Domain (q == 0) still works.
	q, r                  Time
	memoQ, memoA, memoRem Time
}

// NewDomain returns a domain running at f from time 0.
func NewDomain(id int32, f Freq) Domain {
	d := Domain{ID: id, Freq: f}
	d.reclock()
	return d
}

// reclock rebuilds the cached divmod and invalidates the grid-cursor memo;
// call after any change to Freq, Anchor, or StallUntil.
func (d *Domain) reclock() {
	d.q = 1_000_000 / Time(d.Freq)
	d.r = 1_000_000 % Time(d.Freq)
	d.memoQ, d.memoA = -1, -1
}

// TickAt returns the time of cycle k since the anchor.
func (d *Domain) TickAt(k int64) Time {
	return d.Anchor + k*1_000_000/Time(d.Freq)
}

// PeriodPs returns the domain's (floor) clock period in picoseconds.
func (d *Domain) PeriodPs() Time {
	if d.q == 0 {
		d.reclock()
	}
	return d.q
}

// NextTickAfter returns the earliest domain tick strictly after t (and not
// before the transition stall ends).
func (d *Domain) NextTickAfter(t Time) Time {
	if t < d.StallUntil {
		t = d.StallUntil
	}
	if t < d.Anchor {
		return d.Anchor
	}
	if d.q == 0 {
		d.reclock()
	}
	if t == d.memoQ {
		// Same query as last time (CUs sharing the domain tick together).
		return d.memoA
	}
	if t == d.memoA {
		// Asking for the tick after the one just returned — the sequential
		// ticking case. floor((k+1)*1e6/F) = floor(k*1e6/F) + q + carry,
		// with the carry tracked by the running remainder: no division.
		a := d.memoA + d.q
		rem := d.memoRem + d.r
		if rem >= Time(d.Freq) {
			rem -= Time(d.Freq)
			a++
		}
		d.memoQ, d.memoA, d.memoRem = t, a, rem
		return a
	}
	// Smallest k with Anchor + k*1e6/F > t  =>  k = floor((t-Anchor)*F/1e6) + 1.
	k := (t-d.Anchor)*Time(d.Freq)/1_000_000 + 1
	tick := d.TickAt(k)
	for tick <= t { // guard against floor-division edge cases
		k++
		tick = d.TickAt(k)
	}
	d.memoQ, d.memoA = t, tick
	d.memoRem = (k * 1_000_000) % Time(d.Freq)
	return tick
}

// SetFreq requests frequency f at time now. If f differs from the current
// frequency the domain stalls for transition and re-anchors its cycle
// grid at the stall end. Setting the same frequency is free.
func (d *Domain) SetFreq(f Freq, now, transition Time) {
	d.SetFreqOutcome(f, now, transition, false)
}

// SetFreqOutcome is SetFreq with an explicit regulator outcome: when fail
// is set the attempted change aborts — the domain still pays the settle
// stall (the regulator ramped and backed off) but keeps its old frequency
// and cycle grid. Used by fault injection; a same-frequency request stays
// free either way.
func (d *Domain) SetFreqOutcome(f Freq, now, transition Time, fail bool) {
	if f == d.Freq {
		return
	}
	if fail {
		d.StallUntil = now + transition
		d.FailedTransitions++
		d.reclock()
		return
	}
	d.Freq = f
	d.Anchor = now + transition
	d.StallUntil = now + transition
	d.Transitions++
	d.reclock()
}

// Map describes how CUs are grouped into V/f domains.
type Map struct {
	NumCUs       int
	CUsPerDomain int
}

// Validate checks the grouping divides the GPU evenly.
func (m Map) Validate() error {
	if m.NumCUs < 1 || m.CUsPerDomain < 1 {
		return fmt.Errorf("clock: invalid domain map %+v", m)
	}
	if m.NumCUs%m.CUsPerDomain != 0 {
		return fmt.Errorf("clock: %d CUs not divisible into domains of %d", m.NumCUs, m.CUsPerDomain)
	}
	return nil
}

// NumDomains returns the number of V/f domains.
func (m Map) NumDomains() int { return m.NumCUs / m.CUsPerDomain }

// DomainOf returns the domain index of a CU.
func (m Map) DomainOf(cu int) int { return cu / m.CUsPerDomain }

// CUs returns the CU index range [lo, hi) of a domain.
func (m Map) CUs(domain int) (lo, hi int) {
	return domain * m.CUsPerDomain, (domain + 1) * m.CUsPerDomain
}
