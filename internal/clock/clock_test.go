package clock

import (
	"testing"
	"testing/quick"
)

func TestGridStates(t *testing.T) {
	g := DefaultGrid()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	states := g.States()
	if len(states) != 10 || g.Count() != 10 {
		t.Fatalf("default grid has %d states, want 10", len(states))
	}
	if states[0] != 1300 || states[9] != 2200 {
		t.Fatalf("grid endpoints %v..%v", states[0], states[9])
	}
	for i, f := range states {
		if g.Index(f) != i {
			t.Fatalf("Index(%v) = %d, want %d", f, g.Index(f), i)
		}
		if g.State(i) != f {
			t.Fatalf("State(%d) = %v, want %v", i, g.State(i), f)
		}
	}
}

func TestGridIndexOffGrid(t *testing.T) {
	g := DefaultGrid()
	for _, f := range []Freq{1250, 1350, 2300, 0} {
		if g.Index(f) != -1 {
			t.Errorf("Index(%v) should be -1", f)
		}
	}
}

func TestGridClamp(t *testing.T) {
	g := DefaultGrid()
	cases := []struct{ in, want Freq }{
		{1000, 1300}, {1300, 1300}, {1349, 1300}, {1350, 1400},
		{1751, 1800}, {2200, 2200}, {9999, 2200},
	}
	for _, c := range cases {
		if got := g.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%d) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGridMid(t *testing.T) {
	if got := DefaultGrid().Mid(); got != 1700 {
		t.Fatalf("default grid mid = %v, want 1.7GHz", got)
	}
}

func TestGridValidateRejects(t *testing.T) {
	bad := []Grid{
		{Min: 0, Max: 100, Step: 10},
		{Min: 200, Max: 100, Step: 10},
		{Min: 100, Max: 200, Step: 0},
		{Min: 100, Max: 205, Step: 10}, // range not multiple of step
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Errorf("bad grid %d accepted", i)
		}
	}
}

func TestTransitionLatencyAnchors(t *testing.T) {
	// The paper's anchors: 4ns at 1µs epochs, 40ns at 10µs, 400ns at
	// 100µs (§5).
	cases := []struct {
		epoch Time
		want  Time
	}{
		{1 * Microsecond, 4 * Nanosecond},
		{10 * Microsecond, 40 * Nanosecond},
		{100 * Microsecond, 400 * Nanosecond},
		{Millisecond, 400 * Nanosecond}, // capped
		{100, 1 * Nanosecond},           // floored
	}
	for _, c := range cases {
		if got := TransitionLatency(c.epoch); got != c.want {
			t.Errorf("TransitionLatency(%d) = %d, want %d", c.epoch, got, c.want)
		}
	}
}

// TestDomainTicksMonotoneAndDriftFree checks the tick arithmetic: ticks
// strictly increase and cycle k lands exactly at anchor + k*1e6/f without
// accumulated drift.
func TestDomainTicksMonotoneAndDriftFree(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		g := DefaultGrid()
		f := g.State(int(seed) % g.Count())
		d := NewDomain(0, f)
		tt := Time(0)
		for k := int64(1); k <= 3000; k++ {
			next := d.NextTickAfter(tt)
			if next <= tt {
				return false
			}
			tt = next
		}
		// After 3000 ticks, time must equal 3000 cycles exactly.
		want := d.TickAt(3000)
		return tt == want
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDomainCycleRate(t *testing.T) {
	// A domain at f MHz must tick exactly f times per microsecond.
	for _, f := range DefaultGrid().States() {
		d := NewDomain(0, f)
		n := 0
		tt := Time(0)
		for {
			next := d.NextTickAfter(tt)
			if next > Microsecond {
				break
			}
			n++
			tt = next
		}
		if int64(n) != int64(f) {
			t.Errorf("%v ticked %d times per us, want %d", f, n, f)
		}
	}
}

func TestDomainSetFreq(t *testing.T) {
	d := NewDomain(3, 1700)
	d.SetFreq(1700, 1000, 50) // same frequency: free
	if d.Transitions != 0 || d.StallUntil != 0 {
		t.Fatal("same-frequency SetFreq should be free")
	}
	d.SetFreq(2200, 1000, 50)
	if d.Transitions != 1 {
		t.Fatalf("transitions = %d", d.Transitions)
	}
	if d.StallUntil != 1050 || d.Anchor != 1050 {
		t.Fatalf("stall/anchor = %d/%d, want 1050", d.StallUntil, d.Anchor)
	}
	// No tick may land during the transition stall.
	if next := d.NextTickAfter(1000); next <= 1050 {
		t.Fatalf("tick %d during transition stall", next)
	}
}

func TestMap(t *testing.T) {
	m := Map{NumCUs: 16, CUsPerDomain: 4}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumDomains() != 4 {
		t.Fatalf("NumDomains = %d", m.NumDomains())
	}
	for cu := 0; cu < 16; cu++ {
		d := m.DomainOf(cu)
		lo, hi := m.CUs(d)
		if cu < lo || cu >= hi {
			t.Fatalf("CU %d not within its domain range [%d,%d)", cu, lo, hi)
		}
	}
	if (Map{NumCUs: 10, CUsPerDomain: 4}).Validate() == nil {
		t.Error("non-dividing domain map accepted")
	}
	if (Map{NumCUs: 0, CUsPerDomain: 1}).Validate() == nil {
		t.Error("empty map accepted")
	}
}

func TestFreqFormatting(t *testing.T) {
	if Freq(1700).String() != "1.7GHz" {
		t.Fatalf("got %q", Freq(1700).String())
	}
	if Freq(1700).GHz() != 1.7 {
		t.Fatalf("GHz() = %g", Freq(1700).GHz())
	}
	if Freq(2000).PeriodPs() != 500 {
		t.Fatalf("2GHz period = %d ps", Freq(2000).PeriodPs())
	}
}
