// Package wire holds the few constants and helpers the coordinator/
// worker HTTP protocol shares between its two ends: internal/serve
// stamps what internal/dist verifies. It exists so the serving layer
// and the dispatch layer agree on bytes without importing each other.
package wire

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// DigestHeader carries the end-to-end body digest on settled responses.
// The serving layer stamps it over the exact bytes it writes; the
// coordinator recomputes it over the exact bytes it read. A mismatch
// means the wire (or a middlebox) altered the payload — flipped bits,
// truncation the framing missed, duplicated segments — and the reply
// must not be ingested.
const DigestHeader = "X-Pcstall-Digest"

// digestPrefix names the algorithm so the scheme can evolve without
// ambiguity; verifiers ignore digests whose prefix they do not speak.
const digestPrefix = "fnv1a64:"

// Digest returns the canonical digest string for a response body:
// FNV-1a/64 over the raw bytes, rendered as "fnv1a64:<16 hex digits>".
// FNV is not cryptographic — the threat model is a lying network, not a
// malicious backend (a malicious backend could simply fabricate results
// under a valid digest) — and it is cheap enough to stamp on every
// settled body.
func Digest(b []byte) string {
	h := fnv.New64a()
	_, _ = h.Write(b)
	return fmt.Sprintf("%s%016x", digestPrefix, h.Sum64())
}

// Check verifies a received digest header against the body actually
// read. It returns ok=false with the recomputed want only when header
// carries a digest this code understands and the body does not match;
// an empty or foreign-scheme header verifies trivially (fail-open for
// backends predating the scheme — corruption there still surfaces as a
// decode or key-skew failure).
func Check(header string, body []byte) (want string, ok bool) {
	header = strings.TrimSpace(header)
	if header == "" || !strings.HasPrefix(header, digestPrefix) {
		return "", true
	}
	want = Digest(body)
	return want, header == want
}
