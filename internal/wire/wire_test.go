package wire

import (
	"strings"
	"testing"
)

func TestDigestIsStableAndDistinct(t *testing.T) {
	a := Digest([]byte("hello"))
	if a != Digest([]byte("hello")) {
		t.Error("digest of identical bytes differs")
	}
	if !strings.HasPrefix(a, "fnv1a64:") || len(a) != len("fnv1a64:")+16 {
		t.Errorf("digest %q not in canonical form", a)
	}
	if a == Digest([]byte("hellp")) {
		t.Error("one-byte change did not change the digest")
	}
	if Digest(nil) != Digest([]byte{}) {
		t.Error("nil and empty bodies digest differently")
	}
}

func TestCheck(t *testing.T) {
	body := []byte(`{"id":"x"}`)
	good := Digest(body)
	cases := []struct {
		name   string
		header string
		ok     bool
	}{
		{"match", good, true},
		{"match with padding", "  " + good + " ", true},
		{"empty header verifies trivially", "", true},
		{"foreign scheme verifies trivially", "sha256:deadbeef", true},
		{"mismatch", Digest([]byte("other")), false},
		{"truncated digest", good[:len(good)-2], false},
	}
	for _, c := range cases {
		if _, ok := Check(c.header, body); ok != c.ok {
			t.Errorf("%s: Check(%q) ok=%v, want %v", c.name, c.header, ok, c.ok)
		}
	}
}
