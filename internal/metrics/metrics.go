// Package metrics implements the quantitative machinery of the paper's
// evaluation: the frequency-sensitivity metric (§3.2), linear regression
// and R² for the linearity study (Fig. 5), relative-change statistics for
// the variability analyses (Figs. 7, 10, 11), prediction accuracy (§6.1),
// and energy-delay products (§5.2).
package metrics

import "math"

// LinearFit fits y = intercept + slope*x by least squares and returns the
// coefficient of determination R². With fewer than two distinct x values
// it returns a zero slope and R² of 0.
func LinearFit(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, mean(ys), 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, my, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1
	}
	ssRes := syy - slope*sxy
	r2 = 1 - ssRes/syy
	if r2 < 0 {
		r2 = 0
	}
	return slope, intercept, r2
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 { return mean(xs) }

// Geomean returns the geometric mean of positive values; non-positive
// values are skipped. It returns 0 if nothing remains.
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// RelChange returns the relative change between consecutive observations
// a and b: |b-a| / max(|a|,|b|). It returns 0 when both are ~zero, so
// quiet phases do not register as variation.
func RelChange(a, b float64) float64 {
	d := math.Abs(b - a)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1e-12 {
		return 0
	}
	r := d / m
	if r > 1 {
		r = 1
	}
	return r
}

// PredAccuracy scores a prediction against the realized value as
// 1 - |pred-actual|/actual, clamped to [0, 1] — the paper's §6.1 metric
// (predicted vs. actual instructions committed). A zero actual with a
// zero prediction scores 1.
func PredAccuracy(pred, actual float64) float64 {
	if actual <= 0 {
		if math.Abs(pred) <= 1 {
			return 1
		}
		return 0
	}
	a := 1 - math.Abs(pred-actual)/actual
	if a < 0 {
		return 0
	}
	return a
}

// Welford accumulates a running mean without storing samples.
type Welford struct {
	N    int64
	Mean float64
	m2   float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.N++
	d := x - w.Mean
	w.Mean += d / float64(w.N)
	w.m2 += d * (x - w.Mean)
}

// Var returns the population variance.
func (w *Welford) Var() float64 {
	if w.N < 2 {
		return 0
	}
	return w.m2 / float64(w.N)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// RunTotals aggregates one application run for energy-delay accounting.
type RunTotals struct {
	// EnergyJ is total energy including uncore and transition overheads.
	EnergyJ float64
	// TimeS is the application's completion time in seconds.
	TimeS float64
	// Committed is total instructions committed.
	Committed int64
}

// EDnP returns Energy × Delayⁿ (n=1 is EDP, n=2 is ED²P).
func (r RunTotals) EDnP(n int) float64 {
	v := r.EnergyJ
	for i := 0; i < n; i++ {
		v *= r.TimeS
	}
	return v
}

// EDP returns the energy-delay product.
func (r RunTotals) EDP() float64 { return r.EDnP(1) }

// ED2P returns the energy-delay² product.
func (r RunTotals) ED2P() float64 { return r.EDnP(2) }
