package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"pcstall/internal/xrand"
)

func TestLinearFitExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	slope, intercept, r2 := LinearFit(xs, ys)
	if math.Abs(slope-3) > 1e-12 || math.Abs(intercept-7) > 1e-12 {
		t.Fatalf("fit %g, %g", slope, intercept)
	}
	if r2 != 1 {
		t.Fatalf("R2 = %g for exact line", r2)
	}
}

func TestLinearFitConstant(t *testing.T) {
	slope, intercept, r2 := LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if slope != 0 || intercept != 5 || r2 != 1 {
		t.Fatalf("constant fit: %g %g %g", slope, intercept, r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	// Single point / mismatched / same-x inputs must not divide by zero.
	if s, _, r2 := LinearFit([]float64{1}, []float64{2}); s != 0 || r2 != 0 {
		t.Error("single point not handled")
	}
	if s, _, _ := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); s != 0 {
		t.Error("zero x-variance not handled")
	}
}

func TestLinearFitNoisyR2(t *testing.T) {
	rng := xrand.New(1)
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 2*xs[i] + 10 + rng.NormFloat64()*5
	}
	_, _, r2 := LinearFit(xs, ys)
	if r2 < 0.9 || r2 > 1 {
		t.Fatalf("R2 = %g for mildly noisy line", r2)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("Geomean(2,8) = %g", g)
	}
	if g := Geomean([]float64{5}); math.Abs(g-5) > 1e-12 {
		t.Fatalf("Geomean(5) = %g", g)
	}
	// Non-positive values are skipped, not propagated as NaN.
	if g := Geomean([]float64{0, -1, 4}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("Geomean with junk = %g", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("Geomean(nil) = %g", g)
	}
}

func TestRelChange(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{10, 10, 0},
		{10, 5, 0.5},
		{5, 10, 0.5},
		{0, 0, 0},
		{-4, 4, 1}, // clamped at 1
		{0, 7, 1},
	}
	for _, c := range cases {
		if got := RelChange(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelChange(%g,%g) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestRelChangeProperties(t *testing.T) {
	err := quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		v := RelChange(a, b)
		sym := RelChange(b, a)
		return v >= 0 && v <= 1 && v == sym
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPredAccuracy(t *testing.T) {
	cases := []struct{ pred, actual, want float64 }{
		{100, 100, 1},
		{90, 100, 0.9},
		{110, 100, 0.9},
		{300, 100, 0}, // clamped
		{0, 0, 1},
		{0.5, 0, 1}, // sub-instruction prediction of idle
		{50, 0, 0},
	}
	for _, c := range cases {
		if got := PredAccuracy(c.pred, c.actual); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PredAccuracy(%g,%g) = %g, want %g", c.pred, c.actual, got, c.want)
		}
	}
}

func TestPredAccuracyBounded(t *testing.T) {
	err := quick.Check(func(pred, actual float64) bool {
		if math.IsNaN(pred) || math.IsNaN(actual) {
			return true
		}
		v := PredAccuracy(pred, actual)
		return v >= 0 && v <= 1
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMatchesDirect(t *testing.T) {
	rng := xrand.New(3)
	var w Welford
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := rng.Float64()*100 - 50
		xs = append(xs, x)
		w.Add(x)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(xs))
	if math.Abs(w.Mean-mean) > 1e-9 {
		t.Fatalf("mean %g vs %g", w.Mean, mean)
	}
	if math.Abs(w.Var()-variance) > 1e-6 {
		t.Fatalf("var %g vs %g", w.Var(), variance)
	}
	if math.Abs(w.Std()-math.Sqrt(variance)) > 1e-6 {
		t.Fatal("std inconsistent with var")
	}
}

func TestWelfordSmall(t *testing.T) {
	var w Welford
	if w.Var() != 0 || w.Std() != 0 {
		t.Fatal("empty Welford variance nonzero")
	}
	w.Add(5)
	if w.Mean != 5 || w.Var() != 0 {
		t.Fatal("single-sample Welford wrong")
	}
}

func TestEDnP(t *testing.T) {
	r := RunTotals{EnergyJ: 2, TimeS: 3}
	if r.EDnP(0) != 2 {
		t.Fatal("ED0P != E")
	}
	if r.EDP() != 6 {
		t.Fatalf("EDP = %g", r.EDP())
	}
	if r.ED2P() != 18 {
		t.Fatalf("ED2P = %g", r.ED2P())
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
}
