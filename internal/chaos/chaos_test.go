package chaos

import (
	"reflect"
	"testing"

	"pcstall/internal/clock"
	"pcstall/internal/sim"
)

func sample() *sim.EpochSample {
	return &sim.EpochSample{
		Start: 0, End: clock.Microsecond,
		Freqs: []clock.Freq{1700, 1300},
		CUs: []sim.CUEpoch{
			{CU: 0, C: sim.CUCounters{Committed: 1000, MemBlockedPs: 400000, L1Hits: 50},
				WFs: []sim.WFRecord{{Slot: 0, GlobalWave: 0, EndPC: 0x1000,
					ResidentPs: 1000000, C: sim.WFCounters{Committed: 500, StallPs: 200000}}}},
			{CU: 1, C: sim.CUCounters{Committed: 2000, OccupancyPs: 700000},
				WFs: []sim.WFRecord{{Slot: 3, GlobalWave: 7, EndPC: 0x2000,
					ResidentPs: 1000000, C: sim.WFCounters{Committed: 900}}}},
		},
	}
}

func TestDisabledEngineIsPassthrough(t *testing.T) {
	e := NewEngine(Config{Seed: 99})
	s := sample()
	before := *s
	got := e.PerturbEpoch(s)
	if got != s {
		t.Fatal("disabled engine did not return the input sample")
	}
	if !reflect.DeepEqual(before, *s) {
		t.Fatal("disabled engine mutated the sample")
	}
	pcs := []sim.WavePC{{GlobalWave: 1, PC: 0x1234}}
	if out := e.CorruptPCs(pcs); out[0].PC != 0x1234 {
		t.Fatal("disabled engine corrupted a PC")
	}
	if fail, extra := e.Transition(clock.Microsecond); fail || extra != 0 {
		t.Fatal("disabled engine perturbed a transition")
	}
	if e.Stats() != (Stats{}) {
		t.Fatalf("disabled engine reported stats %+v", e.Stats())
	}
}

func TestNilEngineIsSafe(t *testing.T) {
	var e *Engine
	s := sample()
	if e.PerturbEpoch(s) != s {
		t.Fatal("nil engine did not pass the sample through")
	}
	if fail, extra := e.Transition(clock.Microsecond); fail || extra != 0 {
		t.Fatal("nil engine perturbed a transition")
	}
	e.CorruptPCs(nil)
	if e.Stats() != (Stats{}) || e.Config() != (Config{}) {
		t.Fatal("nil engine reported non-zero state")
	}
}

func TestPerturbEpochDeterministicAndNonMutating(t *testing.T) {
	cfg := Level(0.3, 42)
	run := func() (*sim.EpochSample, Stats) {
		e := NewEngine(cfg)
		var last *sim.EpochSample
		for i := 0; i < 10; i++ {
			last = e.PerturbEpoch(sample())
		}
		cp := &sim.EpochSample{}
		cp.Start, cp.End, cp.Finished = last.Start, last.End, last.Finished
		cp.Freqs = append([]clock.Freq(nil), last.Freqs...)
		for _, cu := range last.CUs {
			cu.WFs = append([]sim.WFRecord(nil), cu.WFs...)
			cp.CUs = append(cp.CUs, cu)
		}
		return cp, e.Stats()
	}
	a, sa := run()
	b, sb := run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different perturbed samples:\n%+v\n%+v", a, b)
	}
	if sa != sb {
		t.Fatalf("same seed produced different stats: %+v vs %+v", sa, sb)
	}
	if sa.NoisyCounters == 0 {
		t.Fatal("level 0.3 over 10 epochs injected no counter noise")
	}

	// The real sample must never be mutated.
	e := NewEngine(cfg)
	s := sample()
	want := sample()
	e.PerturbEpoch(s)
	if !reflect.DeepEqual(s, want) {
		t.Fatal("PerturbEpoch mutated the real sample")
	}
}

func TestStaleServesPreviousRealSample(t *testing.T) {
	e := NewEngine(Config{Seed: 1, StaleProb: 1})
	first := sample()
	e.PerturbEpoch(first) // no prev yet: epoch passes through (counted stale)
	second := sample()
	second.CUs[0].C.Committed = 12345
	got := e.PerturbEpoch(second)
	if got.CUs[0].C.Committed != first.CUs[0].C.Committed {
		t.Fatalf("stale CU sample has Committed=%d, want previous real %d",
			got.CUs[0].C.Committed, first.CUs[0].C.Committed)
	}
	if e.Stats().StaleCUs == 0 {
		t.Fatal("no stale CUs counted")
	}
}

func TestDropZeroesCU(t *testing.T) {
	e := NewEngine(Config{Seed: 1, DropProb: 1})
	got := e.PerturbEpoch(sample())
	for i := range got.CUs {
		if got.CUs[i].C != (sim.CUCounters{}) || len(got.CUs[i].WFs) != 0 {
			t.Fatalf("dropped CU %d still carries telemetry: %+v", i, got.CUs[i])
		}
	}
	if e.Stats().DroppedCUs != 2 {
		t.Fatalf("DroppedCUs = %d, want 2", e.Stats().DroppedCUs)
	}
}

func TestTransitionFaults(t *testing.T) {
	e := NewEngine(Config{Seed: 5, TransFailProb: 1, TransJitter: 0.5})
	fail, extra := e.Transition(clock.Microsecond)
	if !fail {
		t.Fatal("tfail=1 transition did not fail")
	}
	if extra < 0 || extra >= clock.Microsecond/2 {
		t.Fatalf("jitter %d outside [0, nominal/2)", extra)
	}
	if e.Stats().FailedTransitions != 1 {
		t.Fatalf("FailedTransitions = %d", e.Stats().FailedTransitions)
	}
}

func TestCorruptPCsStickyPerPC(t *testing.T) {
	e := NewEngine(Config{Seed: 3, PCFlipProb: 1})
	a := e.CorruptPCs([]sim.WavePC{{GlobalWave: 4, PC: 0x1000}})
	if a[0].PC == 0x1000 {
		t.Fatal("pcflip=1 did not corrupt the PC")
	}
	corrupted := a[0].PC
	// Same wave still at the same real PC: corruption must latch.
	b := e.CorruptPCs([]sim.WavePC{{GlobalWave: 4, PC: 0x1000}})
	if b[0].PC != corrupted {
		t.Fatalf("sticky corruption changed: %#x then %#x", corrupted, b[0].PC)
	}
	// Flipped bit stays in the PC-table offset range [2,9].
	diff := corrupted ^ 0x1000
	if diff&(diff-1) != 0 || diff < 1<<2 || diff > 1<<9 {
		t.Fatalf("corruption %#x is not a single bit in [2,9]", diff)
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"noise=0.2",
		"noise=0.2,drop=0.05,stale=0.1,tfail=0.1,jitter=0.5,pcflip=0.01,seed=9",
		"seed=7,level=0.4",
	}
	for _, spec := range specs {
		c, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		c2, err := Parse(c.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)): %v", spec, err)
		}
		if c != c2 {
			t.Fatalf("round trip of %q: %+v != %+v", spec, c, c2)
		}
	}
	if c, _ := Parse("seed=7,level=0.4"); c.Seed != 7 || c.CounterNoise != 0.4 {
		t.Fatalf("level shorthand wrong: %+v", c)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"noise", "noise=x", "bogus=1", "drop=1.5", "drop=-0.1",
		"seed=abc", "noise=-1",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{DropProb: 1.5}, {StaleProb: -0.1}, {TransFailProb: 2},
		{CounterNoise: -1}, {TransJitter: -0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestLevelZeroDisabled(t *testing.T) {
	c := Level(0, 9)
	if c.Enabled() {
		t.Fatal("Level(0) is enabled")
	}
	if c.String() != "" {
		t.Fatalf("Level(0).String() = %q", c.String())
	}
}
