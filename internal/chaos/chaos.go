// Package chaos implements seeded, deterministic fault injection for the
// simulated DVFS stack: noisy, stale, or dropped per-CU telemetry feeding
// the governors, failed frequency transitions with settle-latency jitter,
// and corrupted PC signatures feeding the PC-indexed predictor tables.
//
// Faults model imperfect hardware sensing and actuation, not simulator
// bugs: the timing simulator itself always runs faithfully, and only the
// *observations* handed to a policy (and the outcome of its actuation
// requests) are perturbed. All randomness flows from one xrand.State
// seeded by Config.Seed, so a fault campaign at a fixed seed is exactly
// reproducible, and a disabled Config is a guaranteed no-op passthrough.
package chaos

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"pcstall/internal/clock"
	"pcstall/internal/sim"
	"pcstall/internal/xrand"
)

// Config describes a fault-injection campaign. The zero value injects
// nothing. Config is a plain value: it can be compared, copied, and
// round-tripped through String/Parse for cache keys and CLI flags.
type Config struct {
	// Seed selects the fault stream. Two runs with equal Config (including
	// Seed) inject byte-identical faults.
	Seed uint64
	// CounterNoise is the relative standard deviation of multiplicative
	// noise applied to every telemetry counter (0.1 = ~10% sensor error).
	CounterNoise float64
	// DropProb is the per-CU per-epoch probability that a CU's telemetry
	// is lost entirely (counters and wavefront records read as zero).
	DropProb float64
	// StaleProb is the per-CU per-epoch probability that a CU's telemetry
	// is replaced by its previous epoch's (un-perturbed) sample.
	StaleProb float64
	// TransFailProb is the probability that a requested frequency change
	// fails: the domain pays the settle stall but stays at its old
	// frequency.
	TransFailProb float64
	// TransJitter scales uniform extra settle latency on transitions:
	// extra = U[0,1) * TransJitter * nominal.
	TransJitter float64
	// PCFlipProb is the per-wavefront per-lookup probability that the PC
	// handed to the predictor has one low-order address bit flipped.
	PCFlipProb float64
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.CounterNoise > 0 || c.DropProb > 0 || c.StaleProb > 0 ||
		c.TransFailProb > 0 || c.TransJitter > 0 || c.PCFlipProb > 0
}

// Validate checks ranges: probabilities in [0,1], scales non-negative and
// finite.
func (c Config) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"drop", c.DropProb}, {"stale", c.StaleProb},
		{"tfail", c.TransFailProb}, {"pcflip", c.PCFlipProb},
	}
	for _, p := range probs {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return fmt.Errorf("chaos: %s probability %v out of [0,1]", p.name, p.v)
		}
	}
	scales := []struct {
		name string
		v    float64
	}{{"noise", c.CounterNoise}, {"jitter", c.TransJitter}}
	for _, s := range scales {
		if math.IsNaN(s.v) || math.IsInf(s.v, 0) || s.v < 0 {
			return fmt.Errorf("chaos: %s scale %v must be finite and non-negative", s.name, s.v)
		}
	}
	return nil
}

// String renders the config as a canonical spec parseable by Parse:
// fixed field order, only non-default fields, and "" for a config that
// injects nothing. Equal configs render identically, so the string is
// safe to embed in content-addressed cache keys.
func (c Config) String() string {
	if !c.Enabled() {
		return ""
	}
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, k+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	add("noise", c.CounterNoise)
	add("drop", c.DropProb)
	add("stale", c.StaleProb)
	add("tfail", c.TransFailProb)
	add("jitter", c.TransJitter)
	add("pcflip", c.PCFlipProb)
	if c.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatUint(c.Seed, 10))
	}
	return strings.Join(parts, ",")
}

// Parse builds a Config from a comma-separated key=value spec, e.g.
// "noise=0.2,drop=0.05,tfail=0.1,seed=9". Keys: noise, drop, stale,
// tfail, jitter, pcflip, seed, and level (shorthand expanding to the
// Level profile). An empty spec is the disabled config.
func Parse(spec string) (Config, error) {
	var c Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return c, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return Config{}, fmt.Errorf("chaos: bad field %q (want key=value)", field)
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		if k == "seed" {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("chaos: bad seed %q: %v", v, err)
			}
			c.Seed = seed
			continue
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return Config{}, fmt.Errorf("chaos: bad value for %s: %q", k, v)
		}
		switch k {
		case "noise":
			c.CounterNoise = f
		case "drop":
			c.DropProb = f
		case "stale":
			c.StaleProb = f
		case "tfail":
			c.TransFailProb = f
		case "jitter":
			c.TransJitter = f
		case "pcflip":
			c.PCFlipProb = f
		case "level":
			c = Level(f, c.Seed)
		default:
			return Config{}, fmt.Errorf("chaos: unknown field %q", k)
		}
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Level maps one scalar fault intensity l (0 = clean, ~0.4 = heavily
// degraded sensors) onto a full profile touching every fault class. The
// fault-sweep experiment uses it so one axis spans the whole surface.
func Level(l float64, seed uint64) Config {
	if l <= 0 {
		return Config{Seed: seed}
	}
	clamp1 := func(v float64) float64 {
		if v > 1 {
			return 1
		}
		return v
	}
	return Config{
		Seed:          seed,
		CounterNoise:  l,
		DropProb:      clamp1(l / 8),
		StaleProb:     clamp1(l / 8),
		TransFailProb: clamp1(l / 4),
		TransJitter:   l,
		PCFlipProb:    clamp1(l / 16),
	}
}

// Stats counts faults an Engine actually injected.
type Stats struct {
	// NoisyCounters is the number of telemetry counters perturbed.
	NoisyCounters int64
	// DroppedCUs is the number of per-CU epoch samples zeroed.
	DroppedCUs int64
	// StaleCUs is the number of per-CU epoch samples served stale.
	StaleCUs int64
	// FailedTransitions is the number of frequency changes that failed.
	FailedTransitions int64
	// JitterPs is the total extra settle latency injected.
	JitterPs int64
	// FlippedPCs is the number of predictor lookup PCs corrupted.
	FlippedPCs int64
}

// Engine injects the faults a Config describes. Create one per run with
// NewEngine; an Engine is not safe for concurrent use. A nil *Engine is
// a valid no-op for every method.
type Engine struct {
	cfg Config
	rng xrand.State
	st  Stats
	// buf is the perturbed copy handed to policies; prev holds the
	// previous epoch's real per-CU samples for staleness.
	buf      sim.EpochSample
	prev     []sim.CUEpoch
	prevSet  []bool
	pcSticky map[int64]uint64
}

// NewEngine builds an engine for cfg. Call cfg.Validate first; NewEngine
// assumes a valid config. A disabled config yields a passthrough engine.
func NewEngine(cfg Config) *Engine {
	return &Engine{
		cfg:      cfg,
		rng:      xrand.New(cfg.Seed ^ 0xc5a0ce5d11ab1e5),
		pcSticky: map[int64]uint64{},
	}
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config {
	if e == nil {
		return Config{}
	}
	return e.cfg
}

// Stats returns the faults injected so far.
func (e *Engine) Stats() Stats {
	if e == nil {
		return Stats{}
	}
	return e.st
}

func (e *Engine) telemetryFaults() bool {
	return e.cfg.CounterNoise > 0 || e.cfg.DropProb > 0 || e.cfg.StaleProb > 0
}

// PerturbEpoch returns the sample a policy should observe for the epoch
// that really measured s. With no telemetry faults configured it returns
// s unchanged; otherwise it returns an internally-buffered perturbed deep
// copy, leaving s (which the runner still uses for ground-truth
// accounting) untouched. The returned sample is valid until the next
// PerturbEpoch call.
func (e *Engine) PerturbEpoch(s *sim.EpochSample) *sim.EpochSample {
	if e == nil || !e.telemetryFaults() {
		return s
	}
	e.copySample(s)
	for i := range e.buf.CUs {
		cu := &e.buf.CUs[i]
		switch {
		case e.cfg.StaleProb > 0 && e.rng.Float64() < e.cfg.StaleProb:
			if i < len(e.prev) && e.prevSet[i] {
				wfs := cu.WFs[:0]
				*cu = e.prev[i]
				cu.WFs = append(wfs, e.prev[i].WFs...)
			}
			e.st.StaleCUs++
		case e.cfg.DropProb > 0 && e.rng.Float64() < e.cfg.DropProb:
			cu.C = sim.CUCounters{}
			cu.WFs = cu.WFs[:0]
			e.st.DroppedCUs++
		case e.cfg.CounterNoise > 0:
			e.noiseCU(cu)
		}
	}
	e.rememberReal(s)
	return &e.buf
}

// copySample deep-copies s into e.buf, reusing buffers.
func (e *Engine) copySample(s *sim.EpochSample) {
	e.buf.Start, e.buf.End, e.buf.Finished = s.Start, s.End, s.Finished
	e.buf.Freqs = append(e.buf.Freqs[:0], s.Freqs...)
	if cap(e.buf.CUs) < len(s.CUs) {
		e.buf.CUs = make([]sim.CUEpoch, len(s.CUs))
	}
	e.buf.CUs = e.buf.CUs[:len(s.CUs)]
	for i := range s.CUs {
		wfs := e.buf.CUs[i].WFs[:0]
		e.buf.CUs[i] = s.CUs[i]
		e.buf.CUs[i].WFs = append(wfs, s.CUs[i].WFs...)
	}
}

// rememberReal snapshots the un-perturbed per-CU samples for staleness.
func (e *Engine) rememberReal(s *sim.EpochSample) {
	if e.cfg.StaleProb <= 0 {
		return
	}
	if cap(e.prev) < len(s.CUs) {
		e.prev = make([]sim.CUEpoch, len(s.CUs))
		e.prevSet = make([]bool, len(s.CUs))
	}
	e.prev = e.prev[:len(s.CUs)]
	e.prevSet = e.prevSet[:len(s.CUs)]
	for i := range s.CUs {
		wfs := e.prev[i].WFs[:0]
		e.prev[i] = s.CUs[i]
		e.prev[i].WFs = append(wfs, s.CUs[i].WFs...)
		e.prevSet[i] = true
	}
}

// noiseCU applies multiplicative noise to every counter of one CU sample.
func (e *Engine) noiseCU(cu *sim.CUEpoch) {
	c := &cu.C
	for _, p := range []*int64{
		&c.Committed, &c.MemCommitted, &c.IssueSlots, &c.OccupancyPs,
		&c.MemBlockedPs, &c.StoreStallPs, &c.BarrierOnlyPs, &c.LeadLatPs,
		&c.CritLatPs, &c.OverlapPs, &c.L1Hits, &c.L1Misses, &c.LinesIssued,
	} {
		*p = e.noisy(*p)
	}
	for i := range cu.WFs {
		wf := &cu.WFs[i]
		wf.C.Committed = e.noisy(wf.C.Committed)
		wf.C.StallPs = e.noisy(wf.C.StallPs)
		wf.C.BarrierPs = e.noisy(wf.C.BarrierPs)
		wf.C.OccupancyPs = e.noisy(wf.C.OccupancyPs)
		wf.ResidentPs = e.noisy(wf.ResidentPs)
	}
}

func (e *Engine) noisy(v int64) int64 {
	if v == 0 {
		return 0
	}
	scaled := float64(v) * (1 + e.cfg.CounterNoise*e.rng.NormFloat64())
	e.st.NoisyCounters++
	if scaled < 0 {
		return 0
	}
	return int64(scaled + 0.5)
}

// Transition decides the fate of one requested frequency change: whether
// it fails (settle stall paid, frequency unchanged) and how much extra
// settle latency it carries. Call it only for requests that actually
// change the frequency, so the fault stream is independent of how often
// a policy re-requests its current operating point.
func (e *Engine) Transition(nominal clock.Time) (fail bool, extra clock.Time) {
	if e == nil {
		return false, 0
	}
	if e.cfg.TransJitter > 0 {
		extra = clock.Time(float64(nominal) * e.cfg.TransJitter * e.rng.Float64())
		e.st.JitterPs += int64(extra)
	}
	if e.cfg.TransFailProb > 0 && e.rng.Float64() < e.cfg.TransFailProb {
		fail = true
		e.st.FailedTransitions++
	}
	return fail, extra
}

// CorruptPCs flips a low-order address bit in some of the PC signatures a
// predictor is about to look up. Corruption is sticky per wavefront while
// the wave stays at the same PC (a mis-latched signature reads the same
// way twice), and resolves when the wave moves on. buf is mutated and
// returned.
func (e *Engine) CorruptPCs(buf []sim.WavePC) []sim.WavePC {
	if e == nil || e.cfg.PCFlipProb <= 0 {
		return buf
	}
	for i := range buf {
		if pc, ok := e.pcSticky[buf[i].GlobalWave]; ok {
			if pc == buf[i].PC {
				buf[i].PC ^= e.stickyMask(buf[i].GlobalWave)
				continue
			}
			delete(e.pcSticky, buf[i].GlobalWave)
		}
		if e.rng.Float64() < e.cfg.PCFlipProb {
			e.pcSticky[buf[i].GlobalWave] = buf[i].PC
			buf[i].PC ^= e.stickyMask(buf[i].GlobalWave)
			e.st.FlippedPCs++
		}
	}
	return buf
}

// stickyMask derives a stable single-bit mask in bits [2,9] for a wave,
// matching the PC-table offset bits the paper's tuning studies.
func (e *Engine) stickyMask(wave int64) uint64 {
	h := xrand.New(e.cfg.Seed).Split(uint64(wave))
	return 1 << uint(2+h.Intn(8))
}
