// Package isa defines the instruction set executed by the GPU timing
// simulator.
//
// The instruction set is a deliberately small abstraction of the AMD GCN3 /
// Vega ISA the paper simulates: vector and scalar ALU ops with SIMD
// occupancy latencies, vector memory loads/stores that generate cache-line
// requests, the s_waitcnt instruction that blocks a wavefront until its
// outstanding memory counter drains (the signal the STALL estimation model
// measures), workgroup barriers, and counted backward branches that give
// kernels their loop structure. Programs are value types — a flat slice of
// Instruction — so the simulator can snapshot cheaply and index the
// PC-based predictor with stable byte addresses.
package isa

import "fmt"

// Kind enumerates instruction categories. The timing simulator dispatches
// on Kind; estimation models classify committed instructions by Kind.
type Kind uint8

const (
	// VALU is a vector ALU operation occupying a SIMD for Latency cycles.
	VALU Kind = iota
	// SALU is a scalar ALU operation (single-cycle unless overridden).
	SALU
	// LDS is a local-data-share access; on-chip, frequency-scaled.
	LDS
	// VLoad is a vector memory load. It issues Lines cache-line requests
	// to the memory hierarchy and increments the wavefront's outstanding
	// load counter; it commits at issue (GCN loads are fire-and-forget
	// until a waitcnt).
	VLoad
	// VStore is a vector memory store, tracked by the outstanding store
	// counter.
	VStore
	// WaitCnt blocks the wavefront until outstanding memory operations
	// drop to Imm or fewer. Blocked time is the per-wavefront stall
	// signal used by the STALL estimation model.
	WaitCnt
	// Barrier blocks the wavefront until all wavefronts of its workgroup
	// arrive.
	Barrier
	// Branch is a counted backward branch: the wavefront jumps to Imm
	// while its private trip counter for this branch is nonzero, then
	// reloads the counter and falls through.
	Branch
	// EndPgm terminates the wavefront.
	EndPgm
)

// String returns the mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case VALU:
		return "v_alu"
	case SALU:
		return "s_alu"
	case LDS:
		return "ds_op"
	case VLoad:
		return "v_load"
	case VStore:
		return "v_store"
	case WaitCnt:
		return "s_waitcnt"
	case Barrier:
		return "s_barrier"
	case Branch:
		return "s_branch"
	case EndPgm:
		return "s_endpgm"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsMemory reports whether the kind issues requests to the memory
// hierarchy.
func (k Kind) IsMemory() bool { return k == VLoad || k == VStore }

// IsCompute reports whether the kind executes entirely inside the CU's
// clock domain (and therefore scales with core frequency).
func (k Kind) IsCompute() bool {
	return k == VALU || k == SALU || k == LDS
}

// PatternKind enumerates how a memory instruction generates addresses.
type PatternKind uint8

const (
	// PatNone marks a non-memory instruction.
	PatNone PatternKind = iota
	// PatStream walks the working set with a fixed stride per access,
	// partitioned per wavefront (perfectly coalesced streaming).
	PatStream
	// PatStrided walks with a large stride, defeating some spatial
	// locality (e.g. column-major accesses).
	PatStrided
	// PatRandom picks uniformly random lines within the working set
	// (e.g. Monte Carlo table lookups — xsbench, quickS).
	PatRandom
	// PatShared picks random lines within a working set shared by all
	// CUs, creating L2 contention and, when the set exceeds L2, the
	// thrashing behaviour the paper observes for FwdSoft.
	PatShared
)

// AccessPattern describes the address stream of one memory instruction.
type AccessPattern struct {
	Kind PatternKind
	// Base is the byte address of the region start. Regions of distinct
	// instructions should not overlap unless sharing is intended.
	Base uint64
	// WorkingSet is the region size in bytes; addresses stay within it.
	WorkingSet uint64
	// Stride is the per-access stride in bytes for PatStream/PatStrided.
	Stride uint32
	// Lines is the number of cache-line requests one execution of the
	// instruction generates (coalescing degree, 1 = fully coalesced
	// wavefront, larger = divergent).
	Lines uint8
}

// Instruction is one static instruction. Instructions are 4 "bytes" wide
// for PC purposes (matching the offset-bit arithmetic in the paper's
// PC-table tuning, Figure 11b).
type Instruction struct {
	Kind Kind
	// Latency is SIMD occupancy in CU cycles for compute kinds.
	Latency uint8
	// Imm is the waitcnt threshold for WaitCnt, or the branch target
	// (instruction index) for Branch.
	Imm int32
	// Trip is the branch trip count (total body executions, >= 1).
	Trip int32
	// TripVar is the maximum ± per-wavefront variation applied to Trip
	// at wavefront start (models divergent loop bounds).
	TripVar int32
	// BranchSlot is the dense index of this Branch among the program's
	// branches; the simulator keeps one trip counter per slot per
	// wavefront. Assigned by the Builder; -1 for non-branches.
	BranchSlot int32
	// Pattern describes the address stream for memory kinds.
	Pattern AccessPattern
}

// InstrBytes is the architectural size of one instruction, used to convert
// instruction indices into PC byte addresses for the predictor table.
const InstrBytes = 4

// Program is a straight-line instruction sequence with counted backward
// branches. The zero value is an empty program.
type Program struct {
	// Name identifies the kernel for traces and reports.
	Name string
	// Code is the instruction sequence. The last instruction must be
	// EndPgm for a valid program.
	Code []Instruction
	// BranchSlots is the number of Branch instructions (trip counters a
	// wavefront must carry).
	BranchSlots int
	// Base is the byte address of Code[0]; successive kernels of an app
	// get disjoint bases so PC-table entries do not alias across
	// kernels.
	Base uint64
}

// PC returns the byte address of the instruction at index i.
func (p *Program) PC(i int32) uint64 {
	return p.Base + uint64(i)*InstrBytes
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Code) }

// Validate checks structural invariants: non-empty, EndPgm-terminated,
// branch targets in range and backward, memory instructions carrying a
// pattern, and consistent branch slot numbering.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("isa: program %q is empty", p.Name)
	}
	if p.Code[len(p.Code)-1].Kind != EndPgm {
		return fmt.Errorf("isa: program %q does not end with s_endpgm", p.Name)
	}
	slots := 0
	for i, in := range p.Code {
		switch in.Kind {
		case Branch:
			if in.Imm < 0 || int(in.Imm) >= i {
				return fmt.Errorf("isa: program %q: branch at %d has non-backward target %d", p.Name, i, in.Imm)
			}
			if in.Trip < 1 {
				return fmt.Errorf("isa: program %q: branch at %d has trip %d < 1", p.Name, i, in.Trip)
			}
			if in.TripVar < 0 || in.TripVar >= in.Trip {
				return fmt.Errorf("isa: program %q: branch at %d has trip variation %d out of [0,%d)", p.Name, i, in.TripVar, in.Trip)
			}
			if int(in.BranchSlot) != slots {
				return fmt.Errorf("isa: program %q: branch at %d has slot %d, want %d", p.Name, i, in.BranchSlot, slots)
			}
			slots++
		case VLoad, VStore:
			if in.Pattern.Kind == PatNone {
				return fmt.Errorf("isa: program %q: memory op at %d has no access pattern", p.Name, i)
			}
			if in.Pattern.WorkingSet == 0 {
				return fmt.Errorf("isa: program %q: memory op at %d has zero working set", p.Name, i)
			}
			if in.Pattern.Lines == 0 {
				return fmt.Errorf("isa: program %q: memory op at %d generates zero lines", p.Name, i)
			}
		case WaitCnt:
			if in.Imm < 0 {
				return fmt.Errorf("isa: program %q: waitcnt at %d has negative threshold", p.Name, i)
			}
		case EndPgm:
			if i != len(p.Code)-1 {
				return fmt.Errorf("isa: program %q: s_endpgm at %d before program end", p.Name, i)
			}
		case VALU, SALU, LDS, Barrier:
			// No structural constraints.
		default:
			// An out-of-range kind would otherwise surface as a runtime
			// dispatch failure deep inside the simulator; reject it here
			// so sim.New refuses the kernel up front.
			return fmt.Errorf("isa: program %q: unknown instruction kind %d at %d", p.Name, uint8(in.Kind), i)
		}
	}
	if slots != p.BranchSlots {
		return fmt.Errorf("isa: program %q: found %d branches, header says %d", p.Name, slots, p.BranchSlots)
	}
	// Barriers inside loops with per-wave trip variation deadlock: waves
	// exit the loop on different iterations, so the workgroup can never
	// fully arrive. Reject such programs statically.
	for i, in := range p.Code {
		if in.Kind == Branch && in.TripVar > 0 {
			for j := int(in.Imm); j <= i; j++ {
				if p.Code[j].Kind == Barrier {
					return fmt.Errorf("isa: program %q: barrier at %d inside variable-trip loop ending at %d", p.Name, j, i)
				}
			}
		}
	}
	return nil
}

// Stats summarizes the static instruction mix of a program.
type Stats struct {
	Total      int
	Compute    int
	Loads      int
	Stores     int
	WaitCnts   int
	Barriers   int
	Branches   int
	StaticPCs  int // distinct PC addresses (== Total)
	LoopDepth  int // maximum static loop nesting
	BodyInstrs int // instructions inside at least one loop
}

// Stats computes static statistics for the program.
func (p *Program) Stats() Stats {
	var s Stats
	s.Total = len(p.Code)
	s.StaticPCs = len(p.Code)
	depth := make([]int, len(p.Code))
	for i, in := range p.Code {
		switch {
		case in.Kind.IsCompute():
			s.Compute++
		case in.Kind == VLoad:
			s.Loads++
		case in.Kind == VStore:
			s.Stores++
		case in.Kind == WaitCnt:
			s.WaitCnts++
		case in.Kind == Barrier:
			s.Barriers++
		case in.Kind == Branch:
			s.Branches++
			for j := int(in.Imm); j <= i; j++ {
				depth[j]++
			}
		}
	}
	for _, d := range depth {
		if d > s.LoopDepth {
			s.LoopDepth = d
		}
		if d > 0 {
			s.BodyInstrs++
		}
	}
	return s
}
