package isa

import (
	"fmt"
	"strings"
)

// Builder assembles a Program with structured loops. Misuse (unclosed
// loops, loops closed without opening) and validation failures are
// accumulated and reported by Build as a *BuildError; the chainable
// emit methods never fail mid-sequence. Static workload generators,
// where a bad program is a bug rather than input, use MustBuild.
type Builder struct {
	name      string
	base      uint64
	code      []Instruction
	loopStack []int // instruction indices of loop heads
	trips     []int32
	tripVars  []int32
	slots     int
	issues    []string
	built     bool
}

// BuildError reports everything wrong with a program a Builder was asked
// to finalize: structural misuse recorded while emitting plus any
// Program.Validate failure.
type BuildError struct {
	Program string
	Issues  []string
}

// Error implements error.
func (e *BuildError) Error() string {
	return fmt.Sprintf("isa: program %q cannot be built: %s", e.Program, strings.Join(e.Issues, "; "))
}

// NewBuilder starts a program named name whose first instruction will live
// at byte address base.
func NewBuilder(name string, base uint64) *Builder {
	return &Builder{name: name, base: base}
}

// Emit appends an arbitrary instruction.
func (b *Builder) Emit(in Instruction) *Builder {
	if in.Kind != Branch {
		in.BranchSlot = -1
	}
	b.code = append(b.code, in)
	return b
}

// VALUBlock appends n vector ALU instructions with the given latency.
func (b *Builder) VALUBlock(n int, latency uint8) *Builder {
	for i := 0; i < n; i++ {
		b.Emit(Instruction{Kind: VALU, Latency: latency})
	}
	return b
}

// SALU appends one scalar ALU instruction.
func (b *Builder) SALU() *Builder {
	return b.Emit(Instruction{Kind: SALU, Latency: 1})
}

// LDSBlock appends n local-data-share operations.
func (b *Builder) LDSBlock(n int, latency uint8) *Builder {
	for i := 0; i < n; i++ {
		b.Emit(Instruction{Kind: LDS, Latency: latency})
	}
	return b
}

// Load appends a vector load with the given access pattern.
func (b *Builder) Load(p AccessPattern) *Builder {
	return b.Emit(Instruction{Kind: VLoad, Latency: 1, Pattern: p})
}

// Store appends a vector store with the given access pattern.
func (b *Builder) Store(p AccessPattern) *Builder {
	return b.Emit(Instruction{Kind: VStore, Latency: 1, Pattern: p})
}

// WaitAll appends s_waitcnt 0: block until all outstanding memory
// operations of the wavefront complete.
func (b *Builder) WaitAll() *Builder {
	return b.Emit(Instruction{Kind: WaitCnt, Latency: 1, Imm: 0})
}

// Wait appends s_waitcnt n: block until at most n memory operations remain
// outstanding (n > 0 expresses software pipelining / MLP).
func (b *Builder) Wait(n int32) *Builder {
	return b.Emit(Instruction{Kind: WaitCnt, Latency: 1, Imm: n})
}

// Barrier appends a workgroup barrier.
func (b *Builder) Barrier() *Builder {
	return b.Emit(Instruction{Kind: Barrier, Latency: 1})
}

// Loop opens a loop whose body executes trip times per entry, with up to
// ±tripVar per-wavefront variation (clamped below trip so every wave
// iterates at least once). Close it with EndLoop.
func (b *Builder) Loop(trip, tripVar int32) *Builder {
	if trip < 1 {
		trip = 1
	}
	if tripVar >= trip {
		tripVar = trip - 1
	}
	b.loopStack = append(b.loopStack, len(b.code))
	b.trips = append(b.trips, trip)
	b.tripVars = append(b.tripVars, tripVar)
	return b
}

// EndLoop closes the innermost open loop by emitting its backward branch.
// A loop with an empty body is elided entirely. Closing a loop that was
// never opened records an issue that Build will report.
func (b *Builder) EndLoop() *Builder {
	n := len(b.loopStack)
	if n == 0 {
		b.issues = append(b.issues, "EndLoop without Loop")
		return b
	}
	head := b.loopStack[n-1]
	trip := b.trips[n-1]
	tv := b.tripVars[n-1]
	b.loopStack = b.loopStack[:n-1]
	b.trips = b.trips[:n-1]
	b.tripVars = b.tripVars[:n-1]
	if head == len(b.code) {
		return b // empty body: nothing to repeat
	}
	b.code = append(b.code, Instruction{
		Kind:       Branch,
		Latency:    1,
		Imm:        int32(head),
		Trip:       trip,
		TripVar:    tv,
		BranchSlot: int32(b.slots),
	})
	b.slots++
	return b
}

// Build terminates the program with s_endpgm, validates it, and returns
// it. Structural misuse (unclosed loops, stray EndLoop) and validation
// failures are returned as a *BuildError instead of panicking, so callers
// assembling programs from untrusted or generated descriptions can
// recover. A Builder finalizes once; a second Build reports an issue.
func (b *Builder) Build() (Program, error) {
	issues := append([]string(nil), b.issues...)
	if b.built {
		issues = append(issues, "Build called twice")
	}
	if n := len(b.loopStack); n != 0 {
		issues = append(issues, fmt.Sprintf("%d unclosed loops", n))
	}
	if len(issues) > 0 {
		return Program{}, &BuildError{Program: b.name, Issues: issues}
	}
	b.built = true
	b.Emit(Instruction{Kind: EndPgm, Latency: 1})
	p := Program{Name: b.name, Code: b.code, BranchSlots: b.slots, Base: b.base}
	if err := p.Validate(); err != nil {
		return Program{}, &BuildError{Program: b.name, Issues: []string{err.Error()}}
	}
	return p, nil
}

// MustBuild is Build for static generators, where a malformed program is
// a programming error: it panics on failure.
func (b *Builder) MustBuild() Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Kernel couples a program with its dispatch shape.
type Kernel struct {
	Program Program
	// Workgroups is the number of workgroups in the dispatch grid.
	Workgroups int
	// WavesPerWG is the number of wavefronts per workgroup (1..40 in
	// this model; each wavefront is one 64-lane GCN wave).
	WavesPerWG int
}

// Validate checks the kernel's dispatch shape and program.
func (k *Kernel) Validate() error {
	if k.Workgroups < 1 {
		return fmt.Errorf("isa: kernel %q: %d workgroups", k.Program.Name, k.Workgroups)
	}
	if k.WavesPerWG < 1 || k.WavesPerWG > 40 {
		return fmt.Errorf("isa: kernel %q: %d waves per workgroup out of [1,40]", k.Program.Name, k.WavesPerWG)
	}
	return k.Program.Validate()
}

// TotalWaves returns the number of wavefronts the kernel dispatches.
func (k *Kernel) TotalWaves() int { return k.Workgroups * k.WavesPerWG }
