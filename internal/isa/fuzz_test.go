package isa_test

import (
	"errors"
	"testing"

	"pcstall/internal/isa"
)

// FuzzProgramBuilder drives the Builder with an arbitrary op stream
// decoded from the fuzz input. The invariants under test: Build never
// panics regardless of the op sequence (stray EndLoops, unclosed loops,
// raw instructions with out-of-range kinds), every failure is a typed
// *isa.BuildError, and any program Build accepts passes Validate — the
// Builder cannot silently hand the simulator a malformed program.
func FuzzProgramBuilder(f *testing.F) {
	f.Add([]byte{0, 4, 4})                      // plain VALU block
	f.Add([]byte{8, 10, 2, 3, 0, 9})            // loop around a load
	f.Add([]byte{9, 9, 8, 1, 8, 1})             // stray EndLoop + unclosed loops
	f.Add([]byte{8, 5, 1, 7, 9})                // barrier inside a loop
	f.Add([]byte{10, 200, 3, 4, 5, 6, 10, 8})   // raw instructions, junk kinds
	f.Add([]byte{3, 2, 1, 1, 1, 1, 1, 5, 6, 9}) // load + waits
	f.Fuzz(func(t *testing.T, data []byte) {
		i := 0
		next := func() byte {
			if i >= len(data) {
				return 0
			}
			v := data[i]
			i++
			return v
		}
		b := isa.NewBuilder("fuzz", uint64(next())<<12)
		for i < len(data) {
			switch next() % 11 {
			case 0:
				b.VALUBlock(int(next()%8)+1, next())
			case 1:
				b.SALU()
			case 2:
				b.LDSBlock(int(next()%4)+1, next())
			case 3:
				b.Load(fuzzPattern(next))
			case 4:
				b.Store(fuzzPattern(next))
			case 5:
				b.WaitAll()
			case 6:
				b.Wait(int32(next()) - 8) // negative thresholds included
			case 7:
				b.Barrier()
			case 8:
				b.Loop(int32(next())-4, int32(next())-4)
			case 9:
				b.EndLoop()
			case 10:
				// Raw emit: arbitrary kind/latency/imm, including kinds
				// the Builder never produces (Branch, EndPgm, garbage).
				b.Emit(isa.Instruction{
					Kind:    isa.Kind(next()),
					Latency: next(),
					Imm:     int32(next()) - 8,
					Trip:    int32(next()) - 4,
				})
			}
		}
		p, err := b.Build()
		if err != nil {
			var be *isa.BuildError
			if !errors.As(err, &be) {
				t.Fatalf("Build error %v is not a *isa.BuildError", err)
			}
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Build accepted a program that fails Validate: %v", verr)
		}
		if p.Len() == 0 {
			t.Fatal("accepted program has no instructions")
		}
		if _, err := b.Build(); err == nil {
			t.Fatal("second Build on a finalized builder succeeded")
		}
	})
}

// fuzzPattern decodes an access pattern, deliberately including
// out-of-range pattern kinds and zero-valued geometry.
func fuzzPattern(next func() byte) isa.AccessPattern {
	return isa.AccessPattern{
		Kind:       isa.PatternKind(next() % 6), // one past PatShared
		Base:       uint64(next()) << 20,
		WorkingSet: uint64(next()) << 10,
		Stride:     uint32(next()),
		Lines:      next(),
	}
}
