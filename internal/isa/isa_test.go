package isa

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"pcstall/internal/xrand"
)

func pat() AccessPattern {
	return AccessPattern{Kind: PatStream, Base: 1 << 20, WorkingSet: 1 << 20, Stride: 256, Lines: 2}
}

func TestBuilderBasicProgram(t *testing.T) {
	p := NewBuilder("k", 0x1000).
		VALUBlock(3, 4).
		Load(pat()).
		WaitAll().
		Store(pat()).
		WaitAll().
		MustBuild()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Code[len(p.Code)-1].Kind != EndPgm {
		t.Fatal("program not EndPgm-terminated")
	}
	st := p.Stats()
	if st.Compute != 3 || st.Loads != 1 || st.Stores != 1 || st.WaitCnts != 2 {
		t.Fatalf("bad stats: %+v", st)
	}
}

func TestBuilderLoopNesting(t *testing.T) {
	p := NewBuilder("loops", 0).
		Loop(10, 2).
		VALUBlock(1, 4).
		Loop(5, 0).
		SALU().
		EndLoop().
		EndLoop().
		MustBuild()
	st := p.Stats()
	if st.Branches != 2 {
		t.Fatalf("want 2 branches, got %d", st.Branches)
	}
	if st.LoopDepth != 2 {
		t.Fatalf("want loop depth 2, got %d", st.LoopDepth)
	}
	// Branch slots must be densely numbered in emit order.
	slot := int32(0)
	for _, in := range p.Code {
		if in.Kind == Branch {
			if in.BranchSlot != slot {
				t.Fatalf("branch slot %d, want %d", in.BranchSlot, slot)
			}
			slot++
		}
	}
}

func TestBuilderUnclosedLoopErrors(t *testing.T) {
	_, err := NewBuilder("bad", 0).Loop(3, 0).SALU().Build()
	var be *BuildError
	if !errors.As(err, &be) {
		t.Fatalf("Build with unclosed loop: got %v, want *BuildError", err)
	}
	if be.Program != "bad" || !strings.Contains(be.Error(), "unclosed") {
		t.Fatalf("unexpected BuildError: %v", be)
	}
}

func TestBuilderEndLoopWithoutLoopErrors(t *testing.T) {
	_, err := NewBuilder("bad", 0).SALU().EndLoop().Build()
	var be *BuildError
	if !errors.As(err, &be) {
		t.Fatalf("stray EndLoop: got %v, want *BuildError", err)
	}
	if !strings.Contains(be.Error(), "EndLoop without Loop") {
		t.Fatalf("unexpected BuildError: %v", be)
	}
}

func TestBuilderMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild on a bad program did not panic")
		}
	}()
	NewBuilder("bad", 0).Loop(3, 0).SALU().MustBuild()
}

func TestBuilderBuildTwiceErrors(t *testing.T) {
	b := NewBuilder("twice", 0).SALU()
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("second Build did not error")
	}
}

func TestBuilderClampsTripVariation(t *testing.T) {
	p := NewBuilder("clamp", 0).
		Loop(3, 99). // variation larger than trip must be clamped
		SALU().
		EndLoop().
		MustBuild()
	for _, in := range p.Code {
		if in.Kind == Branch && in.TripVar >= in.Trip {
			t.Fatalf("trip variation %d not clamped below trip %d", in.TripVar, in.Trip)
		}
	}
}

func TestValidateRejectsBarrierInVariableLoop(t *testing.T) {
	_, err := NewBuilder("deadlock", 0).
		Loop(10, 3).
		Barrier().
		EndLoop().
		Build()
	if err == nil {
		t.Fatal("barrier inside variable-trip loop not rejected")
	}
	if !strings.Contains(err.Error(), "barrier") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestValidateRejectsStructuralErrors(t *testing.T) {
	cases := []struct {
		name string
		prog Program
	}{
		{"empty", Program{Name: "e"}},
		{"no endpgm", Program{Name: "n", Code: []Instruction{{Kind: VALU}}}},
		{"forward branch", Program{Name: "f", Code: []Instruction{
			{Kind: Branch, Imm: 1, Trip: 2, BranchSlot: 0},
			{Kind: EndPgm},
		}, BranchSlots: 1}},
		{"memory without pattern", Program{Name: "m", Code: []Instruction{
			{Kind: VLoad},
			{Kind: EndPgm},
		}}},
		{"negative waitcnt", Program{Name: "w", Code: []Instruction{
			{Kind: WaitCnt, Imm: -1},
			{Kind: EndPgm},
		}}},
		{"slot mismatch", Program{Name: "s", Code: []Instruction{
			{Kind: SALU},
			{Kind: Branch, Imm: 0, Trip: 2, BranchSlot: 5},
			{Kind: EndPgm},
		}, BranchSlots: 1}},
	}
	for _, c := range cases {
		if err := c.prog.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid program", c.name)
		}
	}
}

func TestPCArithmetic(t *testing.T) {
	p := NewBuilder("pc", 0x4000).VALUBlock(2, 4).MustBuild()
	if p.PC(0) != 0x4000 {
		t.Fatalf("PC(0) = %#x", p.PC(0))
	}
	if p.PC(1) != 0x4000+InstrBytes {
		t.Fatalf("PC(1) = %#x", p.PC(1))
	}
}

func TestKernelValidate(t *testing.T) {
	p := NewBuilder("k", 0).SALU().MustBuild()
	good := Kernel{Program: p, Workgroups: 2, WavesPerWG: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.TotalWaves() != 8 {
		t.Fatalf("TotalWaves = %d", good.TotalWaves())
	}
	bad := []Kernel{
		{Program: p, Workgroups: 0, WavesPerWG: 4},
		{Program: p, Workgroups: 1, WavesPerWG: 0},
		{Program: p, Workgroups: 1, WavesPerWG: 41},
	}
	for i, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("bad kernel %d accepted", i)
		}
	}
}

// TestRandomProgramsValidate is a property test: any program the Builder
// produces from a random (but well-bracketed) construction sequence must
// pass Validate.
func TestRandomProgramsValidate(t *testing.T) {
	build := func(seed uint64) (prog Program, panicked bool) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		rng := xrand.New(seed)
		b := NewBuilder("rand", uint64(rng.Intn(1<<20)))
		var varStack []bool // per open loop: has trip variation
		anyVar := func() bool {
			for _, v := range varStack {
				if v {
					return true
				}
			}
			return false
		}
		hasBarrier := false
		n := 5 + rng.Intn(60)
		for i := 0; i < n; i++ {
			switch rng.Intn(8) {
			case 0, 1:
				b.VALUBlock(1+rng.Intn(8), uint8(1+rng.Intn(4)))
			case 2:
				b.Load(pat())
			case 3:
				b.WaitAll()
			case 4:
				b.Store(pat())
				b.Wait(int32(rng.Intn(3)))
			case 5:
				if len(varStack) < 3 {
					tv := int32(rng.Intn(3))
					b.Loop(int32(2+rng.Intn(20)), tv)
					varStack = append(varStack, tv > 0)
				}
			case 6:
				if len(varStack) > 0 {
					b.EndLoop()
					varStack = varStack[:len(varStack)-1]
				}
			case 7:
				if !anyVar() && !hasBarrier {
					// Barriers only outside variable-trip loops.
					b.Barrier()
					hasBarrier = true
				}
			}
		}
		for len(varStack) > 0 {
			b.EndLoop()
			varStack = varStack[:len(varStack)-1]
		}
		p, err := b.Build()
		if err != nil {
			return Program{}, true
		}
		return p, false
	}
	err := quick.Check(func(seed uint64) bool {
		p, failed := build(seed)
		if failed {
			return false
		}
		return p.Validate() == nil
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestKindClassification(t *testing.T) {
	for _, k := range []Kind{VALU, SALU, LDS} {
		if !k.IsCompute() || k.IsMemory() {
			t.Errorf("%v misclassified", k)
		}
	}
	for _, k := range []Kind{VLoad, VStore} {
		if !k.IsMemory() || k.IsCompute() {
			t.Errorf("%v misclassified", k)
		}
	}
	for _, k := range []Kind{WaitCnt, Barrier, Branch, EndPgm} {
		if k.IsMemory() || k.IsCompute() {
			t.Errorf("%v misclassified", k)
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{VALU, SALU, LDS, VLoad, VStore, WaitCnt, Barrier, Branch, EndPgm}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has empty/duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(Kind(99).String(), "kind(") {
		t.Error("unknown kind should format as kind(N)")
	}
}
