// Package tracing is the repo's stdlib-only distributed tracing layer:
// per-job causal timelines ("what happened to *this* job") complementing
// internal/telemetry's aggregates ("how much, how fast overall").
//
// The model is deliberately small. A trace is identified by a 128-bit
// hex trace ID; spans carry 64-bit span IDs, a parent reference, wall
// times, string attributes, and point-in-time events. Spans ride the
// context: tracing.Start(ctx, name) opens a child of whatever span (or
// remote parent) the context already carries, and the returned context
// propagates the new span to callees. Completed timelines land in the
// process's bounded, lock-sharded flight Recorder, exposed as JSON on
// /debug/traces and exportable as Chrome trace-event files (Perfetto /
// chrome://tracing load them directly).
//
// Cross-process propagation uses one header, X-Pcstall-Trace, carrying
// "<32-hex trace id>-<16-hex span id>": the coordinator's dist.Client
// injects it, the serving middleware extracts it, and the extracted
// SpanContext becomes the remote parent of the backend's spans — so one
// campaign job yields a single stitched trace spanning coordinator
// dispatch, backend admission, orchestration, and the simulation run.
//
// The discipline matches telemetry's "disabled is free" rule: with no
// Tracer on the context, Start returns a nil *Span whose every method is
// a no-op, so an uninstrumented run pays one context lookup per span
// site and nothing per event. Tracing observes the simulation; it never
// feeds back (the golden test in internal/dvfs enforces byte-identical
// results either way).
package tracing

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"
)

// Attr is one string-valued span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute (rendered decimal).
func Int(k string, v int64) Attr { return Attr{Key: k, Value: fmt.Sprintf("%d", v)} }

// SpanContext identifies one span within one trace — the part of a span
// that crosses process boundaries.
type SpanContext struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
}

// Valid reports whether the context names a span at all.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" && sc.SpanID != "" }

// SpanEvent is a point-in-time annotation on a span (a steal, a retry,
// a singleflight join).
type SpanEvent struct {
	Name   string `json:"name"`
	UnixNs int64  `json:"unix_ns"`
	Attrs  []Attr `json:"attrs,omitempty"`
}

// SpanData is one completed span's record as the Recorder retains it.
type SpanData struct {
	TraceID     string      `json:"trace_id"`
	SpanID      string      `json:"span_id"`
	ParentID    string      `json:"parent_id,omitempty"`
	Name        string      `json:"name"`
	Proc        string      `json:"proc"`
	StartUnixNs int64       `json:"start_unix_ns"`
	DurNs       int64       `json:"dur_ns"`
	Attrs       []Attr      `json:"attrs,omitempty"`
	Events      []SpanEvent `json:"events,omitempty"`
}

// Tracer mints spans and owns the process's flight recorder. Create one
// per process with New and put it on request/campaign contexts with
// WithTracer.
type Tracer struct {
	proc string
	rec  *Recorder
}

// New builds a Tracer whose flight recorder retains up to capacity
// completed traces (<= 0 selects DefaultCapacity). proc names this
// process in exported traces (e.g. "pcstall-exp", "pcstall-serve").
func New(proc string, capacity int) *Tracer {
	return &Tracer{proc: proc, rec: newRecorder(proc, capacity)}
}

// Recorder returns the tracer's flight recorder (for /debug/traces and
// Chrome export).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// Span is one in-flight timed operation. A nil *Span (tracing disabled)
// ignores every method. Spans are safe for concurrent annotation; End
// is idempotent.
type Span struct {
	tracer *Tracer
	root   bool // local root: End files the trace into the recorder ring

	mu    sync.Mutex
	ended bool
	data  SpanData
}

// TraceID returns the span's trace identifier ("" when nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.data.TraceID
}

// Context returns the span's SpanContext (zero when nil) — what Inject
// writes into the propagation header.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.data.TraceID, SpanID: s.data.SpanID}
}

// SetAttr sets (or appends) a string attribute on the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	for i := range s.data.Attrs {
		if s.data.Attrs[i].Key == key {
			s.data.Attrs[i].Value = value
			return
		}
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Value: value})
}

// Event records a point-in-time annotation on the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.data.Events = append(s.data.Events, SpanEvent{
		Name: name, UnixNs: time.Now().UnixNano(), Attrs: attrs,
	})
}

// End completes the span and delivers it to the flight recorder. A
// local-root span's End additionally files its whole trace into the
// completed ring. End is idempotent; nil spans ignore it.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.DurNs = time.Now().UnixNano() - s.data.StartUnixNs
	data := s.data
	s.mu.Unlock()
	s.tracer.rec.record(data, s.root)
}

// Context plumbing: the tracer, the current local span, and an extracted
// remote parent each ride their own key.
type (
	tracerKey struct{}
	spanKey   struct{}
	remoteKey struct{}
)

// WithTracer enables tracing for everything derived from ctx.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer (nil = tracing disabled).
func TracerFrom(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// WithRemote records an extracted cross-process parent: the next Start
// on this context (with no local span in between) joins the remote trace
// as a local root under that parent.
func WithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, sc)
}

// FromContext returns the context's current span (nil when none, or
// when tracing is disabled). Use it to annotate the enclosing span from
// deeper layers without threading the *Span explicitly.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// SpanContextOf resolves the propagation identity of ctx: the current
// local span if any, else an extracted remote parent, else zero.
func SpanContextOf(ctx context.Context) SpanContext {
	if s := FromContext(ctx); s != nil {
		return s.Context()
	}
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(remoteKey{}).(SpanContext)
	return sc
}

// TraceIDFrom returns the trace ID governing ctx ("" when untraced) —
// the correlation key structured logs carry.
func TraceIDFrom(ctx context.Context) string {
	return SpanContextOf(ctx).TraceID
}

// Start opens a span named name. With no Tracer on ctx (or a nil ctx)
// it returns (ctx, nil) — the disabled path — and every method of the
// nil span no-ops. Otherwise the span becomes a child of the context's
// current span; with none, it becomes a local root, joining an
// extracted remote parent's trace when one is present and minting a
// fresh trace ID when not. The returned context carries the new span
// for callees.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	s := &Span{tracer: t}
	s.data = SpanData{
		SpanID:      newSpanID(),
		Name:        name,
		Proc:        t.proc,
		StartUnixNs: time.Now().UnixNano(),
		Attrs:       attrs,
	}
	if parent := FromContext(ctx); parent != nil {
		s.data.TraceID = parent.data.TraceID
		s.data.ParentID = parent.data.SpanID
	} else if rc, _ := ctx.Value(remoteKey{}).(SpanContext); rc.Valid() {
		s.data.TraceID = rc.TraceID
		s.data.ParentID = rc.SpanID
		s.root = true
	} else {
		s.data.TraceID = newTraceID()
		s.root = true
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// TraceHeader is the cross-process propagation header:
// "X-Pcstall-Trace: <32-hex trace id>-<16-hex span id>".
const TraceHeader = "X-Pcstall-Trace"

// Inject writes ctx's span identity into an outgoing header set. It is
// a no-op on untraced contexts.
func Inject(ctx context.Context, h http.Header) {
	sc := SpanContextOf(ctx)
	if !sc.Valid() {
		return
	}
	h.Set(TraceHeader, sc.TraceID+"-"+sc.SpanID)
}

// Extract parses an incoming header set's trace identity. ok is false
// when the header is absent or malformed — a malformed header never
// fails the request, the trace just starts fresh.
func Extract(h http.Header) (SpanContext, bool) {
	v := h.Get(TraceHeader)
	if len(v) != 49 || v[32] != '-' {
		return SpanContext{}, false
	}
	trace, span := v[:32], v[33:]
	if !isHex(trace) || !isHex(span) {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: trace, SpanID: span}, true
}

// isHex reports whether s is entirely lowercase hex.
func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// newTraceID mints a 128-bit hex trace ID. rand/v2 draws from the
// runtime's per-thread generator: no locks, and uniqueness at flight-
// recorder scale (hundreds of retained traces) is overwhelming.
func newTraceID() string {
	return fmt.Sprintf("%016x%016x", rand.Uint64(), rand.Uint64())
}

// newSpanID mints a 64-bit hex span ID.
func newSpanID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}
