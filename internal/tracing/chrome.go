package tracing

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// Perfetto and chrome://tracing load). ph "X" is a complete (timed)
// event, "i" an instant, "M" metadata; ts/dur are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  uint32            `json:"pid"`
	Tid  uint32            `json:"tid"`
	S    string            `json:"s,omitempty"` // instant scope ("t" = thread)
	Args map[string]string `json:"args,omitempty"`
}

// chromeFile is the object form of the format ({"traceEvents": [...]}).
type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// hash32 maps a label onto a stable pid/tid-sized integer.
func hash32(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	v := h.Sum32() & 0x7fffffff
	if v == 0 {
		v = 1
	}
	return v
}

// WriteChrome exports every retained completed trace as a Chrome
// trace-event file. Each process becomes a pid row (named by the
// recorder's proc label) and each trace a tid lane within it, so a
// multi-file merge (coordinator + backends, concatenated by a viewer or
// scripts/tracecheck) lines the same trace up across processes. Span
// identity (trace/span/parent IDs) and attributes ride in args.
func (r *Recorder) WriteChrome(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("tracing: nil recorder")
	}
	traces := r.Traces()
	pid := hash32(r.proc) % 100000
	events := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]string{"name": r.proc},
	}}
	for _, td := range traces {
		tid := hash32(td.TraceID) % 1000000
		label := td.TraceID
		if root := td.Root(); root != nil {
			label = root.Name + " " + td.TraceID[:8]
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]string{"name": label},
		})
		// Spans render parents-first (start order) so nesting reads
		// naturally in the viewer.
		spans := append([]SpanData(nil), td.Spans...)
		sort.Slice(spans, func(a, b int) bool { return spans[a].StartUnixNs < spans[b].StartUnixNs })
		for _, sp := range spans {
			args := map[string]string{
				"trace_id": sp.TraceID,
				"span_id":  sp.SpanID,
			}
			if sp.ParentID != "" {
				args["parent_id"] = sp.ParentID
			}
			for _, a := range sp.Attrs {
				args[a.Key] = a.Value
			}
			events = append(events, chromeEvent{
				Name: sp.Name, Ph: "X",
				Ts:  float64(sp.StartUnixNs) / 1e3,
				Dur: float64(sp.DurNs) / 1e3,
				Pid: pid, Tid: tid, Args: args,
			})
			for _, ev := range sp.Events {
				eargs := map[string]string{"span_id": sp.SpanID, "trace_id": sp.TraceID}
				for _, a := range ev.Attrs {
					eargs[a.Key] = a.Value
				}
				events = append(events, chromeEvent{
					Name: ev.Name, Ph: "i", S: "t",
					Ts:  float64(ev.UnixNs) / 1e3,
					Pid: pid, Tid: tid, Args: eargs,
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: events})
}

// WriteChromeFile writes the Chrome export to path (the -trace-out
// flag's sink), creating or truncating it.
func (r *Recorder) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tracing: %w", err)
	}
	if err := r.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("tracing: %s: %w", path, err)
	}
	return nil
}
