package tracing

import (
	"encoding/json"
	"net/http"
	"strings"
)

// traceSummary is one /debug/traces listing row.
type traceSummary struct {
	TraceID   string `json:"trace_id"`
	Root      string `json:"root,omitempty"`
	Proc      string `json:"proc"`
	Spans     int    `json:"spans"`
	DurNs     int64  `json:"dur_ns"`
	EndUnixNs int64  `json:"end_unix_ns"`
}

// tracesIndex is the /debug/traces response envelope.
type tracesIndex struct {
	Proc     string         `json:"proc"`
	Capacity int            `json:"capacity"`
	Retained int            `json:"retained"`
	Dropped  int64          `json:"dropped_spans"`
	Traces   []traceSummary `json:"traces"`
}

// Register mounts the flight recorder's debug endpoints on mux:
//
//	GET /debug/traces       — recent completed traces, newest first (JSON)
//	GET /debug/traces/{id}  — one trace's full span timeline
//
// A nil recorder registers nothing, so callers can pass
// tracer.Recorder() unconditionally.
func Register(mux *http.ServeMux, rec *Recorder) {
	if rec == nil {
		return
	}
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		serveIndex(w, rec)
	})
	mux.HandleFunc("/debug/traces/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
		if id == "" {
			serveIndex(w, rec)
			return
		}
		td, ok := rec.Trace(id)
		if !ok {
			http.Error(w, "trace not found", http.StatusNotFound)
			return
		}
		writeJSON(w, td)
	})
}

func serveIndex(w http.ResponseWriter, rec *Recorder) {
	traces := rec.Traces()
	idx := tracesIndex{
		Proc:     rec.Proc(),
		Capacity: rec.Capacity(),
		Retained: len(traces),
		Dropped:  rec.Dropped(),
		Traces:   make([]traceSummary, 0, len(traces)),
	}
	for i := range traces {
		td := &traces[i]
		s := traceSummary{
			TraceID:   td.TraceID,
			Proc:      rec.Proc(),
			Spans:     len(td.Spans),
			EndUnixNs: td.EndUnixNs,
		}
		if root := td.Root(); root != nil {
			s.Root = root.Name
			s.DurNs = root.DurNs
		}
		idx.Traces = append(idx.Traces, s)
	}
	writeJSON(w, idx)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
