package tracing

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestDisabledPathIsNilSafe: with no tracer on the context every
// operation must be a no-op — this is the invariant that keeps
// tracing-off runs byte-identical.
func TestDisabledPathIsNilSafe(t *testing.T) {
	ctx, span := Start(context.Background(), "op")
	if span != nil {
		t.Fatalf("Start without tracer returned non-nil span")
	}
	span.SetAttr("k", "v")
	span.Event("e")
	span.End()
	if got := span.TraceID(); got != "" {
		t.Fatalf("nil span TraceID = %q, want empty", got)
	}
	if sc := span.Context(); sc.Valid() {
		t.Fatalf("nil span Context valid")
	}
	if FromContext(ctx) != nil {
		t.Fatalf("FromContext returned span on untraced context")
	}
	if TraceIDFrom(ctx) != "" {
		t.Fatalf("TraceIDFrom non-empty on untraced context")
	}
	h := http.Header{}
	Inject(ctx, h)
	if h.Get(TraceHeader) != "" {
		t.Fatalf("Inject wrote header on untraced context")
	}
	// nil-context entry points must not panic either.
	if TracerFrom(nil) != nil || FromContext(nil) != nil || TraceIDFrom(nil) != "" {
		t.Fatalf("nil-context lookups returned non-zero values")
	}
	var rec *Recorder
	if rec.Traces() != nil || rec.Dropped() != 0 || rec.Capacity() != 0 || rec.Proc() != "" {
		t.Fatalf("nil recorder accessors returned non-zero values")
	}
	if _, ok := rec.Trace("x"); ok {
		t.Fatalf("nil recorder Trace ok")
	}
	var tr *Tracer
	if tr.Recorder() != nil {
		t.Fatalf("nil tracer Recorder non-nil")
	}
}

// TestSpanTree checks parent/child wiring within one process and that
// a root End files the whole trace into the recorder.
func TestSpanTree(t *testing.T) {
	tr := New("test", 8)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root", String("job.key", "abc"))
	cctx, child := Start(ctx, "child")
	_, grand := Start(cctx, "grandchild")

	if root.TraceID() == "" || len(root.TraceID()) != 32 {
		t.Fatalf("root trace ID %q not 32 hex", root.TraceID())
	}
	if child.TraceID() != root.TraceID() || grand.TraceID() != root.TraceID() {
		t.Fatalf("children did not inherit trace ID")
	}
	if child.data.ParentID != root.data.SpanID {
		t.Fatalf("child parent = %q, want %q", child.data.ParentID, root.data.SpanID)
	}
	if grand.data.ParentID != child.data.SpanID {
		t.Fatalf("grandchild parent = %q, want %q", grand.data.ParentID, child.data.SpanID)
	}
	if !root.root || child.root || grand.root {
		t.Fatalf("root flags wrong: root=%v child=%v grand=%v", root.root, child.root, grand.root)
	}

	grand.Event("tick", Int("n", 3))
	grand.End()
	child.End()
	// Before the root ends the trace is active, not completed.
	if got := tr.Recorder().Traces(); len(got) != 0 {
		t.Fatalf("trace completed before root End: %d traces", len(got))
	}
	if _, ok := tr.Recorder().Trace(root.TraceID()); !ok {
		t.Fatalf("active trace not visible by ID")
	}
	root.SetAttr("status", "ok")
	root.SetAttr("status", "done") // replace, not duplicate
	root.End()
	root.End() // idempotent

	traces := tr.Recorder().Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d completed traces, want 1", len(traces))
	}
	td := traces[0]
	if len(td.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(td.Spans))
	}
	r := td.Root()
	if r == nil || r.Name != "root" {
		t.Fatalf("trace root = %+v, want span named root", r)
	}
	var status []string
	for _, a := range r.Attrs {
		if a.Key == "status" {
			status = append(status, a.Value)
		}
	}
	if len(status) != 1 || status[0] != "done" {
		t.Fatalf("status attrs = %v, want [done]", status)
	}
}

// TestHeaderRoundTrip: Inject → Extract → remote-parented local root.
func TestHeaderRoundTrip(t *testing.T) {
	tr := New("coordinator", 8)
	ctx := WithTracer(context.Background(), tr)
	ctx, parent := Start(ctx, "dispatch")
	h := http.Header{}
	Inject(ctx, h)
	if v := h.Get(TraceHeader); len(v) != 49 {
		t.Fatalf("header %q has length %d, want 49", v, len(v))
	}

	sc, ok := Extract(h)
	if !ok {
		t.Fatalf("Extract failed on injected header")
	}
	if sc.TraceID != parent.TraceID() || sc.SpanID != parent.data.SpanID {
		t.Fatalf("extracted %+v, want trace %s span %s", sc, parent.TraceID(), parent.data.SpanID)
	}

	// Backend side: remote parent makes the first span a local root in
	// the same trace.
	btr := New("backend", 8)
	bctx := WithRemote(WithTracer(context.Background(), btr), sc)
	_, bspan := Start(bctx, "serve.sim")
	if bspan.TraceID() != parent.TraceID() {
		t.Fatalf("backend span trace %q, want %q", bspan.TraceID(), parent.TraceID())
	}
	if bspan.data.ParentID != parent.data.SpanID {
		t.Fatalf("backend span parent %q, want %q", bspan.data.ParentID, parent.data.SpanID)
	}
	if !bspan.root {
		t.Fatalf("remote-parented span is not a local root")
	}
	bspan.End()
	if _, ok := btr.Recorder().Trace(parent.TraceID()); !ok {
		t.Fatalf("backend recorder did not file the joined trace")
	}
}

func TestExtractRejectsMalformed(t *testing.T) {
	for _, v := range []string{
		"",
		"short",
		"0123456789abcdef0123456789abcdef-0123456789abcde",   // span 15 hex
		"0123456789abcdef0123456789abcdef_0123456789abcdef",  // bad separator
		"0123456789ABCDEF0123456789abcdef-0123456789abcdef",  // uppercase
		"0123456789abcdef0123456789abcdeg-0123456789abcdef",  // non-hex
		"0123456789abcdef0123456789abcdef-0123456789abcdefx", // too long
	} {
		h := http.Header{}
		if v != "" {
			h.Set(TraceHeader, v)
		}
		if _, ok := Extract(h); ok {
			t.Errorf("Extract accepted %q", v)
		}
	}
}

// TestSpanContextOfPrefersLocal: a context holding both a remote parent
// and a local span must propagate the local span.
func TestSpanContextOfPrefersLocal(t *testing.T) {
	tr := New("p", 4)
	remote := SpanContext{TraceID: "00112233445566778899aabbccddeeff", SpanID: "0011223344556677"}
	ctx := WithRemote(WithTracer(context.Background(), tr), remote)
	if got := SpanContextOf(ctx); got != remote {
		t.Fatalf("SpanContextOf = %+v, want remote %+v", got, remote)
	}
	ctx, span := Start(ctx, "op")
	if got := SpanContextOf(ctx); got != span.Context() {
		t.Fatalf("SpanContextOf = %+v, want local %+v", got, span.Context())
	}
	span.End()
}

// TestRecorderEviction fills past capacity and checks the oldest
// admissions evict while the bound holds.
func TestRecorderEviction(t *testing.T) {
	tr := New("evict", recorderShards) // 1 completed trace per shard
	cap := tr.Recorder().Capacity()
	ctx := WithTracer(context.Background(), tr)
	var ids []string
	for i := 0; i < 4*cap; i++ {
		_, s := Start(ctx, fmt.Sprintf("job-%d", i))
		ids = append(ids, s.TraceID())
		s.End()
	}
	traces := tr.Recorder().Traces()
	if len(traces) > cap {
		t.Fatalf("retained %d traces, capacity %d", len(traces), cap)
	}
	// Newest trace must survive; with one slot per shard, its shard's
	// earlier admissions must be gone.
	last := ids[len(ids)-1]
	if _, ok := tr.Recorder().Trace(last); !ok {
		t.Fatalf("newest trace evicted")
	}
	sh := tr.Recorder().shardFor(ids[0])
	if sh == tr.Recorder().shardFor(last) && ids[0] != last {
		if _, ok := tr.Recorder().Trace(ids[0]); ok {
			t.Fatalf("oldest same-shard trace not evicted")
		}
	}
}

// TestActiveBoundDropsSpans: rootless span floods must not grow the
// active map without bound.
func TestActiveBoundDropsSpans(t *testing.T) {
	tr := New("bound", recorderShards)
	rec := tr.Recorder()
	ctx := WithTracer(context.Background(), tr)
	// Child spans never complete a trace; each lands in a fresh trace's
	// active slot until the per-shard bound trips.
	for i := 0; i < 64*rec.maxActive; i++ {
		sctx, root := Start(ctx, "leaky-root")
		_, child := Start(sctx, "child")
		child.End()
		_ = root // never ended: trace stays active
	}
	if rec.Dropped() == 0 {
		t.Fatalf("active-map bound never dropped spans")
	}
	for i := range rec.shards {
		sh := &rec.shards[i]
		sh.mu.Lock()
		n := len(sh.active)
		sh.mu.Unlock()
		if n > rec.maxActive {
			t.Fatalf("shard %d active=%d exceeds bound %d", i, n, rec.maxActive)
		}
	}
}

// TestLateSpanMerge: a span ending after its trace completed (backend
// request span outliving the job span) must merge into the completed
// record, and a second local root must refresh recency, not re-admit.
func TestLateSpanMerge(t *testing.T) {
	tr := New("merge", 8)
	ctx := WithTracer(context.Background(), tr)
	ctx, first := Start(ctx, "request")
	jctx := WithRemote(WithTracer(context.Background(), tr), first.Context())
	_, job := Start(jctx, "job")
	_, inner := Start(ctx, "inner")

	job.End() // first local root completes the trace
	td, ok := tr.Recorder().Trace(job.TraceID())
	if !ok || len(td.Spans) != 1 {
		t.Fatalf("after job end: ok=%v spans=%d, want 1", ok, len(td.Spans))
	}
	inner.End() // late non-root span merges
	first.End() // second local root merges + refreshes
	td, ok = tr.Recorder().Trace(job.TraceID())
	if !ok || len(td.Spans) != 3 {
		t.Fatalf("after merge: ok=%v spans=%d, want 3", ok, len(td.Spans))
	}
	if n := len(tr.Recorder().Traces()); n != 1 {
		t.Fatalf("second root re-admitted the trace: %d retained", n)
	}
}

// TestConcurrentSpans hammers one tracer from many goroutines; run
// under -race in CI.
func TestConcurrentSpans(t *testing.T) {
	tr := New("conc", 64)
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sctx, root := Start(ctx, "root", Int("g", int64(g)))
				_, child := Start(sctx, "child")
				child.Event("e", Int("i", int64(i)))
				child.End()
				root.SetAttr("i", fmt.Sprint(i))
				root.End()
			}
		}(g)
	}
	wg.Wait()
	if n := len(tr.Recorder().Traces()); n == 0 || n > tr.Recorder().Capacity() {
		t.Fatalf("retained %d traces, want 1..%d", n, tr.Recorder().Capacity())
	}
}

// TestWriteChrome validates the exported file shape: parseable JSON,
// metadata rows, every span's parent resolvable, events placed.
func TestWriteChrome(t *testing.T) {
	tr := New("proc-a", 8)
	ctx := WithTracer(context.Background(), tr)
	sctx, root := Start(ctx, "campaign", String("job.key", "k1"))
	_, child := Start(sctx, "attempt")
	child.Event("retry", Int("n", 1))
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.Recorder().WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var f struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  uint32            `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	spanIDs := map[string]bool{}
	var haveProcMeta, haveInstant bool
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" && ev.Args["name"] == "proc-a" {
				haveProcMeta = true
			}
		case "X":
			spanIDs[ev.Args["span_id"]] = true
		case "i":
			haveInstant = true
		}
	}
	if !haveProcMeta {
		t.Fatalf("no process_name metadata")
	}
	if !haveInstant {
		t.Fatalf("span event did not export as an instant")
	}
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if p := ev.Args["parent_id"]; p != "" && !spanIDs[p] {
			t.Fatalf("span %s has unresolvable parent %s", ev.Args["span_id"], p)
		}
	}
}

// TestDebugEndpoints exercises the mounted HTTP surface.
func TestDebugEndpoints(t *testing.T) {
	tr := New("http", 8)
	ctx := WithTracer(context.Background(), tr)
	_, s := Start(ctx, "job", String("job.key", "k"))
	s.End()

	mux := http.NewServeMux()
	Register(mux, tr.Recorder())
	Register(mux, nil) // must be a no-op, not a panic/double-register

	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/traces status %d", rr.Code)
	}
	var idx tracesIndex
	if err := json.Unmarshal(rr.Body.Bytes(), &idx); err != nil {
		t.Fatalf("index JSON: %v", err)
	}
	if idx.Proc != "http" || idx.Retained != 1 || len(idx.Traces) != 1 {
		t.Fatalf("index = %+v, want proc=http retained=1", idx)
	}
	if idx.Traces[0].Root != "job" {
		t.Fatalf("summary root %q, want job", idx.Traces[0].Root)
	}

	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces/"+s.TraceID(), nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/traces/{id} status %d", rr.Code)
	}
	var td TraceData
	if err := json.Unmarshal(rr.Body.Bytes(), &td); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if td.TraceID != s.TraceID() || len(td.Spans) != 1 {
		t.Fatalf("trace = %+v, want 1 span of %s", td, s.TraceID())
	}

	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces/ffffffffffffffffffffffffffffffff", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("missing trace status %d, want 404", rr.Code)
	}
}
