package tracing

import (
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultCapacity is the flight recorder's default bound on retained
// completed traces per process.
const DefaultCapacity = 512

// recorderShards stripes the recorder so concurrent span Ends on
// unrelated traces never contend on one lock; power of two.
const recorderShards = 8

// TraceData is one trace's retained timeline: every span of the trace
// that ended in this process.
type TraceData struct {
	TraceID string `json:"trace_id"`
	// Spans are in End order (children before parents within one
	// goroutine's nesting).
	Spans []SpanData `json:"spans"`
	// EndUnixNs is when the trace's latest local root ended — the
	// recency key listings sort by.
	EndUnixNs int64 `json:"end_unix_ns"`
}

// Root returns the trace's earliest-starting span — the best "what was
// this" label for listings.
func (td *TraceData) Root() *SpanData {
	var r *SpanData
	for i := range td.Spans {
		if r == nil || td.Spans[i].StartUnixNs < r.StartUnixNs {
			r = &td.Spans[i]
		}
	}
	return r
}

// shard is one stripe of the flight recorder. active accumulates traces
// whose local root has not ended yet; ring/byID hold the last N
// completed traces, evicting the oldest admission on overflow. Late
// spans (a second local root on the same trace — e.g. a backend's
// request span ending after its job span already filed the trace) merge
// into the completed record in place.
type shard struct {
	mu      sync.Mutex
	active  map[string]*TraceData
	byID    map[string]*TraceData
	ring    []string // completed trace IDs in admission order, circular
	next    int      // ring write cursor
	dropped int64    // spans discarded by the active-map bound
}

// Recorder is the bounded, lock-sharded flight recorder: it retains the
// last N completed traces this process produced. Safe for concurrent
// use.
type Recorder struct {
	proc      string
	capacity  int // total completed-trace bound across shards
	maxActive int // per-shard bound on traces awaiting their root
	shards    [recorderShards]shard
}

// newRecorder sizes the recorder; capacity <= 0 selects DefaultCapacity.
func newRecorder(proc string, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	perShard := (capacity + recorderShards - 1) / recorderShards
	r := &Recorder{proc: proc, capacity: perShard * recorderShards, maxActive: 4 * perShard}
	for i := range r.shards {
		r.shards[i] = shard{
			active: map[string]*TraceData{},
			byID:   map[string]*TraceData{},
			ring:   make([]string, perShard),
		}
	}
	return r
}

// shardFor picks the stripe owning a trace ID.
func (r *Recorder) shardFor(traceID string) *shard {
	h := fnv.New32a()
	h.Write([]byte(traceID))
	return &r.shards[h.Sum32()&(recorderShards-1)]
}

// record files one ended span. localRoot moves the trace from the
// active map into the completed ring (or refreshes an already-completed
// trace's recency when a second local root lands).
func (r *Recorder) record(sd SpanData, localRoot bool) {
	sh := r.shardFor(sd.TraceID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	td := sh.active[sd.TraceID]
	if td == nil {
		td = sh.byID[sd.TraceID]
	}
	if td == nil {
		if len(sh.active) >= r.maxActive {
			// A rootless backlog (leaked spans) must not grow without
			// bound; count the loss instead.
			sh.dropped++
			return
		}
		td = &TraceData{TraceID: sd.TraceID}
		sh.active[sd.TraceID] = td
	}
	td.Spans = append(td.Spans, sd)
	if !localRoot {
		return
	}
	end := sd.StartUnixNs + sd.DurNs
	if end > td.EndUnixNs {
		td.EndUnixNs = end
	}
	if _, completed := sh.byID[sd.TraceID]; completed {
		return // second root on an already-filed trace: merged above
	}
	delete(sh.active, sd.TraceID)
	// Admit into the ring, evicting the slot's previous occupant.
	if old := sh.ring[sh.next]; old != "" {
		delete(sh.byID, old)
	}
	sh.ring[sh.next] = sd.TraceID
	sh.next = (sh.next + 1) % len(sh.ring)
	sh.byID[sd.TraceID] = td
}

// Traces snapshots every retained completed trace, newest first.
func (r *Recorder) Traces() []TraceData {
	if r == nil {
		return nil
	}
	var out []TraceData
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, td := range sh.byID {
			out = append(out, copyTrace(td))
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].EndUnixNs > out[b].EndUnixNs })
	return out
}

// Trace returns one retained trace by ID (completed or still active).
func (r *Recorder) Trace(id string) (TraceData, bool) {
	if r == nil {
		return TraceData{}, false
	}
	sh := r.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if td := sh.byID[id]; td != nil {
		return copyTrace(td), true
	}
	if td := sh.active[id]; td != nil {
		return copyTrace(td), true
	}
	return TraceData{}, false
}

// Dropped counts spans discarded by the active-map bound.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	var n int64
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n += sh.dropped
		sh.mu.Unlock()
	}
	return n
}

// Proc returns the process label exported traces carry.
func (r *Recorder) Proc() string {
	if r == nil {
		return ""
	}
	return r.proc
}

// Capacity returns the completed-trace retention bound.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return r.capacity
}

// copyTrace snapshots a trace for readers; callers hold the shard lock.
func copyTrace(td *TraceData) TraceData {
	return TraceData{
		TraceID:   td.TraceID,
		Spans:     append([]SpanData(nil), td.Spans...),
		EndUnixNs: td.EndUnixNs,
	}
}
