package tracing

import (
	"context"
	"testing"
)

// BenchmarkSpanDisabled measures the untraced path — the cost every
// instrumented call site pays in a tracing-off run. It must stay at
// one context lookup (~ns); CI's bench gate keeps instrumented
// packages' end-to-end numbers flat, and this bench localizes the
// reason why.
func BenchmarkSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := Start(ctx, "op")
		s.SetAttr("k", "v")
		s.Event("e")
		s.End()
	}
}

// BenchmarkSpanEnabled is the traced path: span mint, attr, event,
// record into the flight recorder.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := New("bench", 64)
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, s := Start(ctx, "op")
		s.SetAttr("k", "v")
		s.Event("e")
		s.End()
	}
}

// BenchmarkSpanEnabledNested is the common two-level shape (request →
// job) under an active tracer.
func BenchmarkSpanEnabledNested(b *testing.B) {
	tr := New("bench", 64)
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sctx, root := Start(ctx, "root")
		_, child := Start(sctx, "child")
		child.End()
		root.End()
	}
}
