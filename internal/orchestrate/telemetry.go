package orchestrate

import "pcstall/internal/telemetry"

// orchTelemetry is the orchestrator's metric bundle: live campaign
// counters and gauges (what a /metrics scrape watches while jobs are in
// flight) plus per-job phase-span histograms. Job-internal simulation
// metrics arrive separately: each executed job runs against its own
// child registry, whose snapshot is merged into this registry when the
// job settles and recorded on the job's manifest entry.
type orchTelemetry struct {
	reg *telemetry.Registry

	jobsCompleted *telemetry.Counter
	memHits       *telemetry.Counter
	diskHits      *telemetry.Counter
	misses        *telemetry.Counter
	errors        *telemetry.Counter

	deadlocks       *telemetry.Counter
	retries         *telemetry.Counter
	panics          *telemetry.Counter
	cancellations   *telemetry.Counter
	cacheWriteFails *telemetry.Counter
	cacheRepairs    *telemetry.Counter

	running    *telemetry.Gauge
	queueDepth *telemetry.Gauge

	queueWait *telemetry.Histogram
	runPhase  *telemetry.Histogram
	cacheGet  *telemetry.Histogram
	cachePut  *telemetry.Histogram
}

// newOrchTelemetry builds the bundle on r (nil r yields nil).
func newOrchTelemetry(r *telemetry.Registry) *orchTelemetry {
	if r == nil {
		return nil
	}
	return &orchTelemetry{
		reg:           r,
		jobsCompleted: r.Counter("orchestrate_jobs_completed_total", "jobs settled (computed or cache-served)"),
		memHits:       r.Counter("orchestrate_cache_mem_hits_total", "submissions answered by the in-process memo"),
		diskHits:      r.Counter("orchestrate_cache_disk_hits_total", "submissions answered by the cache directory"),
		misses:        r.Counter("orchestrate_cache_misses_total", "submissions that ran a simulation"),
		errors:        r.Counter("orchestrate_job_errors_total", "jobs that settled with an error"),
		deadlocks:     r.Counter("orchestrate_job_deadlocks_total", "jobs stopped by the simulation watchdog (deadlock or cycle budget)"),
		retries:       r.Counter("orchestrate_job_retries_total", "job attempts retried after a transient failure"),
		panics:        r.Counter("orchestrate_job_panics_total", "jobs that settled with a recovered panic"),
		cancellations: r.Counter("orchestrate_jobs_cancelled_total", "jobs abandoned by fail-fast or campaign interruption"),
		cacheWriteFails: r.Counter("orchestrate_cache_write_failures_total",
			"result-cache persistence failures (disk writes disabled for the rest of the run)"),
		cacheRepairs: r.Counter("orchestrate_cache_repairs_total", "cache files truncate-repaired after a corrupt tail"),
		running:      r.Gauge("orchestrate_jobs_running", "jobs holding a worker slot now"),
		queueDepth:   r.Gauge("orchestrate_queue_depth", "jobs scheduled but not yet running or settled"),
		queueWait:    r.Phase("orchestrate_job_queue_wait"),
		runPhase:     r.Phase("orchestrate_job_run"),
		cacheGet:     r.Phase("orchestrate_cache_get"),
		cachePut:     r.Phase("orchestrate_cache_put"),
	}
}

// updateGauges publishes the pool state; callers hold o.mu.
func (o *Orchestrator) updateGauges() {
	if o.tele == nil {
		return
	}
	o.tele.running.Set(float64(o.running))
	o.tele.queueDepth.Set(float64(len(o.memo) - o.completed - o.running))
}
