// Package orchestrate is the experiment sweep engine: it shards
// independent, deterministic simulation jobs across a bounded worker
// pool, memoizes results in-process, persists them to a content-addressed
// JSONL cache on disk, and writes a run manifest per campaign so sweeps
// are reproducible and auditable.
//
// The paper's evaluation (Figs. 14-18) is an embarrassingly parallel
// sweep of 16 workloads × 8 designs; every cell is a pure function of its
// Job description. The orchestrator exploits exactly that: results are
// returned in deterministic job order regardless of completion order, and
// two jobs with equal keys are computed at most once per process (and at
// most once per cache directory across processes).
package orchestrate

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// SimVersion names the simulator behaviour the disk cache keys against.
// It participates in every Job key, so bumping it invalidates all
// previously cached results. Bump it whenever a change anywhere in the
// simulation stack (sim, mem, power, estimate, predict, dvfs, workload)
// alters run outcomes; config-only changes (more workers, new cache dir)
// need no bump because the config is part of the key already.
const SimVersion = "pcstall-sim-v1"

// Job identifies one simulation cell: an (app × design × epoch ×
// objective × domain-granularity) run on a platform of CUs compute units
// at the given workload scale and seed. Two Jobs with equal fields are
// the same computation; Key canonicalizes and hashes the fields so the
// cache and the in-process memo can treat results as content-addressed.
type Job struct {
	// App is the TABLE II workload name.
	App string `json:"app"`
	// Design is the TABLE III design name (or a STATIC-xxxx baseline).
	Design string `json:"design"`
	// EpochPs is the DVFS epoch in picoseconds.
	EpochPs int64 `json:"epoch_ps"`
	// Objective is the objective's canonical Name() ("ED2P", "EDP",
	// "Energy@5%", ...).
	Objective string `json:"objective"`
	// CUsPerDomain is the V/f domain granularity.
	CUsPerDomain int `json:"cus_per_domain"`
	// CUs is the GPU size.
	CUs int `json:"cus"`
	// Scale multiplies workload durations (pre-boost; executors may
	// derive epoch-dependent boosts from EpochPs deterministically).
	Scale float64 `json:"scale"`
	// Seed drives workload synthesis and simulation randomness.
	Seed uint64 `json:"seed"`
	// MaxTimePs caps simulated time.
	MaxTimePs int64 `json:"max_time_ps"`
	// OracleSamples overrides the oracle's fork count (0 = default).
	OracleSamples int `json:"oracle_samples,omitempty"`
	// Chaos is the canonical fault-injection spec (chaos.Config.String);
	// empty means no faults.
	Chaos string `json:"chaos,omitempty"`
	// MaxCycles bounds CU cycles before the watchdog stops the run
	// (0 = unbounded).
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// SimVersion must be orchestrate.SimVersion for freshly built jobs;
	// it rides in the key so stale cache entries miss after a bump.
	SimVersion string `json:"sim_version"`
}

// Canonical returns the stable, human-readable canonical form of the job
// — the exact byte string the key hashes. Field order is fixed; floats
// use the shortest round-trip representation, so equal Jobs always
// canonicalize identically.
func (j Job) Canonical() string {
	var b strings.Builder
	b.WriteString("v=")
	b.WriteString(j.SimVersion)
	b.WriteString("|app=")
	b.WriteString(j.App)
	b.WriteString("|design=")
	b.WriteString(j.Design)
	b.WriteString("|epoch=")
	b.WriteString(strconv.FormatInt(j.EpochPs, 10))
	b.WriteString("|obj=")
	b.WriteString(j.Objective)
	b.WriteString("|cusdom=")
	b.WriteString(strconv.Itoa(j.CUsPerDomain))
	b.WriteString("|cus=")
	b.WriteString(strconv.Itoa(j.CUs))
	b.WriteString("|scale=")
	b.WriteString(strconv.FormatFloat(j.Scale, 'g', -1, 64))
	b.WriteString("|seed=")
	b.WriteString(strconv.FormatUint(j.Seed, 10))
	b.WriteString("|max=")
	b.WriteString(strconv.FormatInt(j.MaxTimePs, 10))
	b.WriteString("|smp=")
	b.WriteString(strconv.Itoa(j.OracleSamples))
	// Appended only when set, so pre-existing cached keys stay valid for
	// the (default) fault-free, unbounded jobs.
	if j.Chaos != "" {
		b.WriteString("|chaos=")
		b.WriteString(j.Chaos)
	}
	if j.MaxCycles != 0 {
		b.WriteString("|maxcyc=")
		b.WriteString(strconv.FormatInt(j.MaxCycles, 10))
	}
	return b.String()
}

// Key returns the 16-hex-digit FNV-64a digest of Canonical — the job's
// content address in the memo, the disk cache, and the manifest.
func (j Job) Key() string {
	h := fnv.New64a()
	h.Write([]byte(j.Canonical()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// String abbreviates the job for progress lines and errors.
func (j Job) String() string {
	return fmt.Sprintf("%s/%s@%dps %s %dCU/dom", j.App, j.Design, j.EpochPs, j.Objective, j.CUsPerDomain)
}
