package orchestrate

import (
	"context"
	"fmt"
	"sync"

	"pcstall/internal/dvfs"
	"pcstall/internal/telemetry"
)

// Fault injection: composable RunFunc wrappers that reproduce the
// failure modes a real campaign hits — a job that panics (a simulator
// bug), a job that hangs (a pathological workload), and a job that
// fails transiently (I/O flakiness). The robustness tests and the CI
// kill–resume smoke are built from these; they are exported so any
// executor (including exp's) can be wrapped without re-implementing the
// bookkeeping.

// PanicOn wraps run so that jobs matching match panic instead of
// computing. The orchestrator recovers the panic into a *PanicError
// carrying this message and the stack; the process survives.
func PanicOn(run RunFunc, match func(Job) bool) RunFunc {
	return func(ctx context.Context, j Job, reg *telemetry.Registry) (*dvfs.Result, error) {
		if match(j) {
			panic(fmt.Sprintf("orchestrate: injected panic for job %s", j))
		}
		return run(ctx, j, reg)
	}
}

// HangOn wraps run so that jobs matching match block until their
// context is cancelled (fail-fast, per-job timeout, or interrupt), then
// return the context's error — the behaviour of a well-behaved executor
// stuck in an endless simulation. Pair with Config.JobTimeout to model
// a hung job that the campaign must cut loose.
func HangOn(run RunFunc, match func(Job) bool) RunFunc {
	return func(ctx context.Context, j Job, reg *telemetry.Registry) (*dvfs.Result, error) {
		if match(j) {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return run(ctx, j, reg)
	}
}

// FlakyOn wraps run so that each matching job fails its first failures
// attempts with a distinct transient error, then computes normally —
// the shape retry-with-backoff exists for. Attempt counting is per job
// key and safe for concurrent workers.
func FlakyOn(run RunFunc, match func(Job) bool, failures int) RunFunc {
	var mu sync.Mutex
	attempts := map[string]int{}
	return func(ctx context.Context, j Job, reg *telemetry.Registry) (*dvfs.Result, error) {
		if match(j) {
			mu.Lock()
			n := attempts[j.Key()]
			attempts[j.Key()] = n + 1
			mu.Unlock()
			if n < failures {
				return nil, fmt.Errorf("orchestrate: injected transient failure %d/%d for job %s", n+1, failures, j)
			}
		}
		return run(ctx, j, reg)
	}
}
