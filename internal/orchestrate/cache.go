package orchestrate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"pcstall/internal/dvfs"
)

// cacheEntry is one JSONL line of the on-disk result cache.
type cacheEntry struct {
	Key    string       `json:"key"`
	Job    Job          `json:"job"`
	Result *dvfs.Result `json:"result"`
}

// Cache is the content-addressed disk layer: one append-only JSON Lines
// file of (key, job, result) records under a cache directory. The whole
// file is loaded on open, so lookups are memory-speed; writes append one
// line per computed result. Keys embed SimVersion, so entries written by
// an older simulator silently miss (and are left in place) after a bump.
//
// A Cache is safe for concurrent use by multiple goroutines within one
// process. Concurrent processes appending to the same directory do not
// corrupt each other's lines (single-line appends), but may duplicate
// work; last-loaded wins on duplicate keys.
type Cache struct {
	mu   sync.Mutex
	mem  map[string]*dvfs.Result
	file *os.File
	enc  *json.Encoder
}

// ResultsFile is the JSONL file name used inside a cache directory.
const ResultsFile = "results.jsonl"

// OpenCache opens (creating if needed) the cache under dir and loads any
// existing results. Corrupt trailing lines (a previously killed process)
// are skipped, not fatal.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("orchestrate: creating cache dir: %w", err)
	}
	path := filepath.Join(dir, ResultsFile)
	c := &Cache{mem: map[string]*dvfs.Result{}}
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
		for sc.Scan() {
			var e cacheEntry
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.Key == "" || e.Result == nil {
				continue // tolerate torn/corrupt lines
			}
			c.mem[e.Key] = e.Result
		}
		f.Close()
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("orchestrate: reading %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("orchestrate: opening %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("orchestrate: appending to %s: %w", path, err)
	}
	c.file = f
	c.enc = json.NewEncoder(f)
	return c, nil
}

// Get returns the cached result for key, if present.
func (c *Cache) Get(key string) (*dvfs.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.mem[key]
	return r, ok
}

// Len reports the number of loaded entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// Put stores a computed result and appends it to the results file.
func (c *Cache) Put(key string, j Job, r *dvfs.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mem[key] = r
	if c.enc == nil {
		return nil
	}
	if err := c.enc.Encode(cacheEntry{Key: key, Job: j, Result: r}); err != nil {
		return fmt.Errorf("orchestrate: persisting %s: %w", key, err)
	}
	return nil
}

// Close releases the append handle. Get/Put remain usable in-memory.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.file == nil {
		return nil
	}
	err := c.file.Close()
	c.file, c.enc = nil, nil
	return err
}
