package orchestrate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"pcstall/internal/dvfs"
)

// cacheEntry is one JSONL line of the on-disk result cache.
type cacheEntry struct {
	Key    string       `json:"key"`
	Job    Job          `json:"job"`
	Result *dvfs.Result `json:"result"`
}

// Cache is the content-addressed disk layer: one append-only JSON Lines
// file of (key, job, result) records under a cache directory. The whole
// file is loaded on open, so lookups are memory-speed; writes append one
// line per computed result. Keys embed SimVersion, so entries written by
// an older simulator silently miss (and are left in place) after a bump.
//
// The disk layer is best-effort in both directions. On load, corrupt
// lines — a torn append from a killed process, even one longer than the
// scanner buffer — cost only themselves: everything readable before them
// is kept, and a corrupt tail is truncate-repaired in place (the file is
// atomically rewritten from the surviving entries). On store, the first
// write failure (disk full, revoked handle) disables further disk writes
// for the run; results keep flowing through the in-memory layer and the
// failure is surfaced once to the caller.
//
// A Cache is safe for concurrent use by multiple goroutines within one
// process. Concurrent processes appending to the same directory do not
// corrupt each other's lines (single-line appends), but may duplicate
// work; last-loaded wins on duplicate keys.
type Cache struct {
	mu       sync.Mutex
	mem      map[string]cacheEntry
	file     *os.File
	enc      *json.Encoder
	repaired bool
	writeErr error
}

// ResultsFile is the JSONL file name used inside a cache directory.
const ResultsFile = "results.jsonl"

// OpenCache opens (creating if needed) the cache under dir and loads any
// existing results. Corrupt lines (a previously killed process) are
// skipped, not fatal; a corrupt tail that breaks the scanner itself
// triggers an in-place repair that keeps every entry loaded so far.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("orchestrate: creating cache dir: %w", err)
	}
	path := filepath.Join(dir, ResultsFile)
	c := &Cache{mem: map[string]cacheEntry{}}
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
		for sc.Scan() {
			var e cacheEntry
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.Key == "" || e.Result == nil {
				continue // tolerate torn/corrupt lines
			}
			c.mem[e.Key] = e
		}
		scanErr := sc.Err()
		f.Close()
		if scanErr != nil {
			// A scanner error (most likely a torn final line longer than
			// the buffer) means the tail is unreadable, not that the cache
			// is lost: keep what loaded and rewrite the file from it so
			// the directory is healthy again for this and future runs.
			if rerr := c.repair(path); rerr != nil {
				return nil, fmt.Errorf("orchestrate: repairing %s after corrupt tail (%v): %w", path, scanErr, rerr)
			}
			c.repaired = true
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("orchestrate: opening %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("orchestrate: appending to %s: %w", path, err)
	}
	c.file = f
	c.enc = json.NewEncoder(f)
	return c, nil
}

// repair atomically rewrites the results file from the loaded entries
// (sorted by key for stable diffs), discarding the unreadable tail.
func (c *Cache) repair(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ResultsFile+".repair-*")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(tmp)
	keys := make([]string, 0, len(c.mem))
	for k := range c.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := enc.Encode(c.mem[k]); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Repaired reports whether OpenCache had to truncate-repair a corrupt
// tail.
func (c *Cache) Repaired() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.repaired
}

// WriteErr returns the persistence failure that disabled disk writes,
// if one occurred.
func (c *Cache) WriteErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writeErr
}

// Get returns the cached result for key, if present.
func (c *Cache) Get(key string) (*dvfs.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.mem[key]
	return e.Result, ok
}

// Len reports the number of loaded entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// Put stores a computed result in memory and appends it to the results
// file. A persistence error is returned once and disables further disk
// writes for the run — the in-memory layer keeps serving, so the caller
// should degrade (count the failure), not fail the job. A partially
// appended line from the failed write is tolerated (and repaired) by the
// next OpenCache.
func (c *Cache) Put(key string, j Job, r *dvfs.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mem[key] = cacheEntry{Key: key, Job: j, Result: r}
	if c.enc == nil {
		return nil
	}
	if err := c.enc.Encode(cacheEntry{Key: key, Job: j, Result: r}); err != nil {
		c.writeErr = fmt.Errorf("orchestrate: persisting %s (disk writes disabled for this run): %w", key, err)
		c.enc = nil
		return c.writeErr
	}
	return nil
}

// Close releases the append handle. Get/Put remain usable in-memory.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.file == nil {
		return nil
	}
	err := c.file.Close()
	c.file, c.enc = nil, nil
	return err
}
