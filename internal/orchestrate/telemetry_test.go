package orchestrate

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"pcstall/internal/telemetry"
)

func TestStatsStringFormat(t *testing.T) {
	s := Stats{
		Workers: 4, Unique: 10, Completed: 7, Running: 2, Queued: 1,
		Submissions: 12, MemHits: 2, DiskHits: 3, Misses: 7,
		JobTime: 5 * time.Second, Elapsed: 1500 * time.Millisecond,
	}
	want := "orchestrate: 7/10 jobs done (2 running, 1 queued), cache 2 mem + 3 disk hits / 7 misses, 4 workers, 1.5s elapsed"
	if got := s.String(); got != want {
		t.Fatalf("Stats.String:\ngot  %q\nwant %q", got, want)
	}
	// Sub-millisecond elapsed rounds away rather than printing noise.
	s.Elapsed = 499 * time.Microsecond
	if got := s.String(); got[len(got)-10:] != "0s elapsed" {
		t.Fatalf("rounding: %q", got)
	}
}

// TestProgressFinalFiresOnceOnClose pins the shutdown contract: with a
// period far beyond the test's lifetime, the only callback is the final
// snapshot Close delivers — and repeated Closes do not repeat it.
func TestProgressFinalFiresOnceOnClose(t *testing.T) {
	var calls int64
	run, _ := countingRun()
	o, err := New(Config{
		Workers: 2, Run: run,
		Progress:      func(Stats) { atomic.AddInt64(&calls, 1) },
		ProgressEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.RunJobs(context.Background(), []Job{testJob(0), testJob(1)}); err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt64(&calls); n != 0 {
		t.Fatalf("ticker fired %d times within an hour-period window", n)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt64(&calls); n != 1 {
		t.Fatalf("final progress fired %d times, want exactly 1", n)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt64(&calls); n != 1 {
		t.Fatalf("second Close re-fired progress: %d calls", n)
	}
}

// TestCloseStopsProgressGoroutine checks the progress loop doesn't leak:
// after Close returns, the goroutine count settles back to the baseline.
func TestCloseStopsProgressGoroutine(t *testing.T) {
	base := runtime.NumGoroutine()
	run, _ := countingRun()
	o, err := New(Config{
		Workers: 2, Run: run,
		Progress:      func(Stats) {},
		ProgressEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.RunJobs(context.Background(), []Job{testJob(0)}); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now, %d at baseline", runtime.NumGoroutine(), base)
}

func TestCampaignTelemetry(t *testing.T) {
	reg := telemetry.New()
	run, _ := countingRun()
	o, err := New(Config{Workers: 2, Run: run, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.RunJobs(context.Background(), []Job{testJob(0), testJob(1), testJob(0)}); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if s.Counters["orchestrate_cache_misses_total"] != 2 ||
		s.Counters["orchestrate_cache_mem_hits_total"] != 1 ||
		s.Counters["orchestrate_jobs_completed_total"] != 2 {
		t.Fatalf("campaign counters %+v", s.Counters)
	}
	// Per-job registries merge in: countingRun bumps test_runs_total once
	// per real execution.
	if s.Counters["test_runs_total"] != 2 {
		t.Fatalf("per-job metrics not merged: test_runs_total=%d", s.Counters["test_runs_total"])
	}
	if hs := s.Histograms["orchestrate_job_run_seconds"]; hs.Count != 2 {
		t.Fatalf("run phase observed %d times, want 2", hs.Count)
	}
	if s.Gauges["orchestrate_jobs_running"] != 0 || s.Gauges["orchestrate_queue_depth"] != 0 {
		t.Fatalf("gauges did not settle: %+v", s.Gauges)
	}

	m := o.Manifest()
	if m.Metrics == nil || m.Metrics.Counters["test_runs_total"] != 2 {
		t.Fatalf("manifest missing campaign metrics: %+v", m.Metrics)
	}
	for _, e := range m.Jobs {
		if e.Source != "run" {
			continue
		}
		if e.Metrics == nil || e.Metrics.Counters["test_runs_total"] != 1 {
			t.Fatalf("entry %s missing per-job metrics: %+v", e.Key, e.Metrics)
		}
	}
}

func TestCampaignTelemetryDiskHits(t *testing.T) {
	dir := t.TempDir()
	run, _ := countingRun()
	o, err := New(Config{Workers: 2, CacheDir: dir, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.RunJobs(context.Background(), []Job{testJob(0), testJob(1)}); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.New()
	o2, err := New(Config{Workers: 2, CacheDir: dir, Run: run, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer o2.Close()
	if _, err := o2.RunJobs(context.Background(), []Job{testJob(0), testJob(1)}); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if s.Counters["orchestrate_cache_disk_hits_total"] != 2 ||
		s.Counters["orchestrate_jobs_completed_total"] != 2 {
		t.Fatalf("warm-rerun counters %+v", s.Counters)
	}
	if hs := s.Histograms["orchestrate_cache_get_seconds"]; hs.Count != 2 {
		t.Fatalf("cache get span observed %d times, want 2", hs.Count)
	}
	// Disk-served entries carry no per-job metrics (nothing ran).
	for _, e := range o2.Manifest().Jobs {
		if e.Source == "disk" && e.Metrics != nil {
			t.Fatalf("disk entry %s carries metrics", e.Key)
		}
	}
}

// TestTelemetryDisabledLeavesNoTrace checks the nil-registry campaign
// stays metric-free end to end.
func TestTelemetryDisabledLeavesNoTrace(t *testing.T) {
	run, _ := countingRun()
	o, err := New(Config{Workers: 2, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.RunJobs(context.Background(), []Job{testJob(0)}); err != nil {
		t.Fatal(err)
	}
	m := o.Manifest()
	if m.Metrics != nil {
		t.Fatal("manifest grew metrics without a registry")
	}
	for _, e := range m.Jobs {
		if e.Metrics != nil {
			t.Fatal("entry grew metrics without a registry")
		}
	}
}
