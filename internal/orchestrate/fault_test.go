package orchestrate

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pcstall/internal/dvfs"
	"pcstall/internal/telemetry"
)

// matchApp matches jobs by workload name.
func matchApp(name string) func(Job) bool {
	return func(j Job) bool { return j.App == name }
}

// settleGoroutines waits for the goroutine count to drop back to base,
// failing the test if it does not within two seconds.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now, %d at baseline", runtime.NumGoroutine(), base)
}

// TestPanicIsolatedAndSlotReleased pins the panic contract: a panicking
// job settles as an error carrying the stack instead of crashing the
// process, and — with a single worker — the pool stays usable
// afterwards, proving the slot was released on the panic path.
func TestPanicIsolatedAndSlotReleased(t *testing.T) {
	run, n := countingRun()
	o, err := New(Config{Workers: 1, Run: PanicOn(run, matchApp("app1"))})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	_, err = o.RunJobs(context.Background(), []Job{testJob(1)})
	if err == nil {
		t.Fatal("panic swallowed")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T: %v", err, err)
	}
	if !strings.Contains(string(pe.Stack), "goroutine") || !strings.Contains(err.Error(), "injected panic") {
		t.Fatalf("panic error lost its stack or message: %v", err)
	}
	// The single worker slot must have been released by the deferred
	// semaphore release; otherwise this batch deadlocks.
	if _, err := o.RunJobs(context.Background(), []Job{testJob(2), testJob(3)}); err != nil {
		t.Fatalf("pool unusable after panic: %v", err)
	}
	if *n != 2 {
		t.Fatalf("executed %d jobs after the panic, want 2", *n)
	}
	st := o.Stats()
	if st.Panics != 1 || st.Running != 0 {
		t.Fatalf("stats after panic: %+v", st)
	}
}

// TestHangingJobTimesOut pins the per-job timeout: a job that never
// returns is cut loose after JobTimeout and settles as a deadline
// error; the campaign fails fast instead of hanging forever.
func TestHangingJobTimesOut(t *testing.T) {
	base := runtime.NumGoroutine()
	run, _ := countingRun()
	o, err := New(Config{
		Workers:    2,
		JobTimeout: 30 * time.Millisecond,
		Run:        HangOn(run, matchApp("app1")),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	start := time.Now()
	_, err = o.RunJobs(context.Background(), []Job{testJob(0), testJob(1), testJob(2)})
	if err == nil {
		t.Fatal("hung job settled without error")
	}
	if !errors.Is(err, context.DeadlineExceeded) || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("want timeout error, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("campaign took %v despite 30ms job timeout", d)
	}
	st := o.Stats()
	if st.Running != 0 || st.Completed+st.Cancelled != 3 {
		t.Fatalf("jobs not settled: %+v", st)
	}
	settleGoroutines(t, base)
}

// TestCancelledJobsLeaveTheMemo pins resume semantics: a job abandoned
// by campaign cancellation is forgotten, so a later submission of the
// same key recomputes it instead of replaying the cancellation error.
func TestCancelledJobsLeaveTheMemo(t *testing.T) {
	base := runtime.NumGoroutine()
	var hang atomic.Bool
	hang.Store(true)
	run, n := countingRun()
	o, err := New(Config{Workers: 2, Run: HangOn(run, func(j Job) bool {
		return j.App == "app1" && hang.Load()
	})})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err = o.RunJobs(ctx, []Job{testJob(0), testJob(1)})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want cancellation, got %v", err)
	}
	st := o.Stats()
	if st.Cancelled == 0 {
		t.Fatalf("no job counted as cancelled: %+v", st)
	}
	// Resubmit with the hang cleared: the cancelled job must run afresh.
	hang.Store(false)
	before := *n
	res, err := o.RunJobs(context.Background(), []Job{testJob(1)})
	if err != nil {
		t.Fatalf("cancelled job stayed poisoned in the memo: %v", err)
	}
	if res[0] == nil || *n != before+1 {
		t.Fatalf("resubmitted job not recomputed (executions %d -> %d)", before, *n)
	}
	settleGoroutines(t, base)
}

// TestFlakyJobRetriesThenSucceeds pins retry-with-backoff: transient
// failures are retried up to Config.Retries times and the campaign
// still produces the result.
func TestFlakyJobRetriesThenSucceeds(t *testing.T) {
	run, n := countingRun()
	o, err := New(Config{
		Workers:      2,
		Retries:      3,
		RetryBackoff: time.Millisecond,
		Run:          FlakyOn(run, matchApp("app1"), 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	res, err := o.RunJobs(context.Background(), []Job{testJob(0), testJob(1)})
	if err != nil {
		t.Fatalf("flaky job not retried to success: %v", err)
	}
	if res[1] == nil || res[1].Totals.Committed != 42 {
		t.Fatalf("flaky job result wrong: %+v", res[1])
	}
	if *n != 2 {
		t.Fatalf("real executions %d, want 2 (failures are injected before the run)", *n)
	}
	if st := o.Stats(); st.Retries != 2 {
		t.Fatalf("retries counted %d, want 2: %+v", st.Retries, st)
	}
}

// TestFlakyJobExhaustsRetries pins the retry bound: a job that keeps
// failing settles with its error, annotated with the attempt count.
func TestFlakyJobExhaustsRetries(t *testing.T) {
	run, _ := countingRun()
	o, err := New(Config{
		Workers:      1,
		Retries:      1,
		RetryBackoff: time.Millisecond,
		Run:          FlakyOn(run, matchApp("app0"), 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	_, err = o.RunJobs(context.Background(), []Job{testJob(0)})
	if err == nil {
		t.Fatal("permanently failing job settled clean")
	}
	if !strings.Contains(err.Error(), "after 2 attempts") || !strings.Contains(err.Error(), "injected transient failure") {
		t.Fatalf("want attempt-annotated transient error, got %v", err)
	}
	if st := o.Stats(); st.Retries != 1 {
		t.Fatalf("retries counted %d, want 1", st.Retries)
	}
}

// TestFailFastCancelsInFlightAndQueued pins the tentpole behaviour: one
// failing job aborts the whole batch promptly — hanging peers are wound
// down through their context and queued peers never start — instead of
// the batch waiting for every straggler. The first job to reach a
// worker slot fails; every other job hangs until cancelled, so without
// fail-fast this test would block forever.
func TestFailFastCancelsInFlightAndQueued(t *testing.T) {
	base := runtime.NumGoroutine()
	var started int64
	o, err := New(Config{Workers: 2, Run: func(ctx context.Context, j Job, _ *telemetry.Registry) (*dvfs.Result, error) {
		if atomic.AddInt64(&started, 1) == 1 {
			return nil, errors.New("boom: first job to run fails")
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	jobs := make([]Job, 12)
	for i := range jobs {
		jobs[i] = testJob(i)
	}
	start := time.Now()
	_, err = o.RunJobs(context.Background(), jobs)
	if err == nil {
		t.Fatal("batch settled clean")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("root cause not reported: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("fail-fast took %v", d)
	}
	st := o.Stats()
	if st.Running != 0 {
		t.Fatalf("workers still marked running: %+v", st)
	}
	// Exactly one job completed (the failure); everything else — the
	// hanging peer(s) in flight and the whole queue — was cancelled.
	if st.Completed != 1 || st.Cancelled != 11 {
		t.Fatalf("settled %d completed + %d cancelled of 12: %+v", st.Completed, st.Cancelled, st)
	}
	settleGoroutines(t, base)
}

// TestFaultTelemetryCounters checks the robustness counters land on the
// campaign registry alongside the existing pool metrics.
func TestFaultTelemetryCounters(t *testing.T) {
	reg := telemetry.New()
	run, _ := countingRun()
	o, err := New(Config{
		Workers:      2,
		Retries:      2,
		RetryBackoff: time.Millisecond,
		Metrics:      reg,
		Run:          FlakyOn(PanicOn(run, matchApp("app2")), matchApp("app1"), 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.RunJobs(context.Background(), []Job{testJob(0), testJob(1)}); err != nil {
		t.Fatal(err)
	}
	_, err = o.RunJobs(context.Background(), []Job{testJob(2)})
	if err == nil {
		t.Fatal("panic swallowed")
	}
	s := reg.Snapshot()
	if s.Counters["orchestrate_job_retries_total"] != 1 {
		t.Fatalf("retry counter %d, want 1", s.Counters["orchestrate_job_retries_total"])
	}
	if s.Counters["orchestrate_job_panics_total"] != 1 {
		t.Fatalf("panic counter %d, want 1", s.Counters["orchestrate_job_panics_total"])
	}
	if s.Counters["orchestrate_job_errors_total"] != 1 {
		t.Fatalf("error counter %d, want 1", s.Counters["orchestrate_job_errors_total"])
	}
}
