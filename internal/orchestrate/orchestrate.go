package orchestrate

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"pcstall/internal/dvfs"
	"pcstall/internal/telemetry"
)

// RunFunc computes one job. It must be a pure function of the Job (given
// a fixed simulator version): the orchestrator calls it from worker
// goroutines and caches what it returns. It must not retain or mutate
// shared state. The registry is the job's private telemetry sink (nil
// when Config.Metrics is unset); executors thread it into the run so
// per-job metric snapshots land on the manifest — recording into it must
// never change the returned result.
type RunFunc func(Job, *telemetry.Registry) (*dvfs.Result, error)

// Config shapes an Orchestrator.
type Config struct {
	// Workers bounds concurrently executing simulations; <= 0 selects
	// runtime.NumCPU(). Workers == 1 reproduces strictly serial behaviour
	// (identical results either way; jobs are deterministic).
	Workers int
	// CacheDir enables the persistent result cache ("" = in-memory only).
	CacheDir string
	// NoCache disables the disk layer entirely: nothing is read from or
	// written to CacheDir. The in-process memo stays on — figures that
	// share runs (Fig. 15/16/17 all run PCSTALL@1µs) rely on it, and it
	// cannot go stale within one process.
	NoCache bool
	// Run executes one job; required.
	Run RunFunc
	// Progress, when non-nil, receives a Stats snapshot every
	// ProgressEvery (default 2s) while jobs are in flight, and once more
	// on Close.
	Progress      func(Stats)
	ProgressEvery time.Duration
	// Metrics, when non-nil, turns on campaign telemetry: live pool
	// counters/gauges and phase spans are recorded here, each executed
	// job gets a private child registry whose snapshot is merged in on
	// settle and attached to the job's manifest entry. Nil disables all
	// of it (jobs then run with a nil registry).
	Metrics *telemetry.Registry
}

// Stats is a point-in-time snapshot of campaign progress.
type Stats struct {
	// Workers is the pool bound.
	Workers int
	// Unique counts distinct jobs owned by the memo; Completed of those
	// are settled and Running hold a worker slot now. Queued jobs are
	// scheduled but waiting (for a slot or for the disk-cache check).
	Unique, Completed, Running, Queued int
	// Submissions counts every submission including memo-answered
	// duplicates; MemHits + DiskHits + Misses accounts for all settled
	// lookups.
	Submissions, MemHits, DiskHits, Misses int
	// JobTime is summed per-job compute time; Elapsed is wall time since
	// the orchestrator was created. JobTime/Elapsed ≈ realized speedup.
	JobTime, Elapsed time.Duration
}

// String renders the periodic progress line.
func (s Stats) String() string {
	return fmt.Sprintf("orchestrate: %d/%d jobs done (%d running, %d queued), cache %d mem + %d disk hits / %d misses, %d workers, %s elapsed",
		s.Completed, s.Unique, s.Running, s.Queued,
		s.MemHits, s.DiskHits, s.Misses, s.Workers,
		s.Elapsed.Round(time.Millisecond))
}

// future is one in-flight or settled job computation.
type future struct {
	done chan struct{}
	res  *dvfs.Result
	err  error
}

// Orchestrator shards jobs across a bounded worker pool with a
// content-addressed result cache. Methods are safe for concurrent use.
type Orchestrator struct {
	run     RunFunc
	workers int
	noCache bool
	cache   *Cache
	sem     chan struct{}
	created time.Time
	tele    *orchTelemetry

	mu          sync.Mutex
	memo        map[string]*future
	entries     []ManifestEntry
	submissions int
	completed   int
	running     int
	memHits     int
	diskHits    int
	misses      int
	jobTime     time.Duration

	progressStop chan struct{}
	progressDone chan struct{}
	closeOnce    sync.Once
	closeErr     error
}

// New builds an Orchestrator. The caller owns it and must Close it to
// flush the cache append handle and stop the progress loop.
func New(cfg Config) (*Orchestrator, error) {
	if cfg.Run == nil {
		return nil, fmt.Errorf("orchestrate: Config.Run is required")
	}
	w := cfg.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	o := &Orchestrator{
		run:     cfg.Run,
		workers: w,
		noCache: cfg.NoCache,
		sem:     make(chan struct{}, w),
		created: time.Now(),
		memo:    map[string]*future{},
		tele:    newOrchTelemetry(cfg.Metrics),
	}
	if cfg.CacheDir != "" && !cfg.NoCache {
		c, err := OpenCache(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		o.cache = c
	}
	if cfg.Progress != nil {
		every := cfg.ProgressEvery
		if every <= 0 {
			every = 2 * time.Second
		}
		o.progressStop = make(chan struct{})
		o.progressDone = make(chan struct{})
		go func() {
			t := time.NewTicker(every)
			defer t.Stop()
			defer close(o.progressDone)
			for {
				select {
				case <-t.C:
					cfg.Progress(o.Stats())
				case <-o.progressStop:
					cfg.Progress(o.Stats())
					return
				}
			}
		}()
	}
	return o, nil
}

// Stats snapshots campaign progress.
func (o *Orchestrator) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return Stats{
		Workers:     o.workers,
		Unique:      len(o.memo),
		Completed:   o.completed,
		Running:     o.running,
		Queued:      len(o.memo) - o.completed - o.running,
		Submissions: o.submissions,
		MemHits:     o.memHits,
		DiskHits:    o.diskHits,
		Misses:      o.misses,
		JobTime:     o.jobTime,
		Elapsed:     time.Since(o.created),
	}
}

// RunJobs executes jobs through the pool and returns results in job
// order regardless of completion order. Duplicate keys — within the
// batch or across earlier calls — are computed once and shared. On
// error, the first failing job (in job order) is reported after every
// job has settled, so no goroutines are left running.
func (o *Orchestrator) RunJobs(jobs []Job) ([]*dvfs.Result, error) {
	futs := make([]*future, len(jobs))
	for i, j := range jobs {
		futs[i] = o.submit(j)
	}
	out := make([]*dvfs.Result, len(jobs))
	var firstErr error
	for i, f := range futs {
		<-f.done
		if f.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("orchestrate: job %s: %w", jobs[i].String(), f.err)
		}
		out[i] = f.res
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// submit routes one job to its future, creating (and scheduling) it on
// first sight of the key.
func (o *Orchestrator) submit(j Job) *future {
	key := j.Key()
	o.mu.Lock()
	o.submissions++
	if f, ok := o.memo[key]; ok {
		o.memHits++
		o.mu.Unlock()
		if o.tele != nil {
			o.tele.memHits.Inc()
		}
		return f
	}
	f := &future{done: make(chan struct{})}
	o.memo[key] = f
	o.updateGauges()
	o.mu.Unlock()
	go o.exec(j, key, f)
	return f
}

// exec settles one future: disk-cache lookup, else a pooled run.
func (o *Orchestrator) exec(j Job, key string, f *future) {
	defer close(f.done)
	if o.cache != nil {
		var getSpan telemetry.Span
		if o.tele != nil {
			getSpan = telemetry.StartSpan(o.tele.cacheGet)
		}
		r, ok := o.cache.Get(key)
		getSpan.End()
		if ok {
			f.res = r
			o.mu.Lock()
			o.diskHits++
			o.completed++
			o.entries = append(o.entries, ManifestEntry{Key: key, Job: j, Source: "disk"})
			o.updateGauges()
			o.mu.Unlock()
			if o.tele != nil {
				o.tele.diskHits.Inc()
				o.tele.jobsCompleted.Inc()
			}
			return
		}
	}
	var queueSpan telemetry.Span
	if o.tele != nil {
		queueSpan = telemetry.StartSpan(o.tele.queueWait)
	}
	o.sem <- struct{}{}
	queueSpan.End()
	o.mu.Lock()
	o.running++
	o.updateGauges()
	o.mu.Unlock()
	// Each executed job records into a private registry so parallel jobs
	// never confound each other's snapshots; the snapshot is merged into
	// the campaign registry once the job settles.
	var jobReg *telemetry.Registry
	var runSpan telemetry.Span
	if o.tele != nil {
		jobReg = telemetry.New()
		runSpan = telemetry.StartSpan(o.tele.runPhase)
	}
	start := time.Now()
	r, err := o.run(j, jobReg)
	dur := time.Since(start)
	runSpan.End()
	<-o.sem
	if err == nil && o.cache != nil {
		var putSpan telemetry.Span
		if o.tele != nil {
			putSpan = telemetry.StartSpan(o.tele.cachePut)
		}
		if perr := o.cache.Put(key, j, r); perr != nil {
			err = perr
		}
		putSpan.End()
	}
	f.res, f.err = r, err
	entry := ManifestEntry{
		Key: key, Job: j, Source: "run",
		DurationMS: float64(dur) / float64(time.Millisecond),
	}
	if o.tele != nil {
		snap := jobReg.Snapshot()
		o.tele.reg.Merge(snap)
		entry.Metrics = &snap
		o.tele.misses.Inc()
		o.tele.jobsCompleted.Inc()
		if err != nil {
			o.tele.errors.Inc()
		}
	}
	o.mu.Lock()
	o.running--
	o.completed++
	o.misses++
	o.jobTime += dur
	o.entries = append(o.entries, entry)
	o.updateGauges()
	o.mu.Unlock()
}

// Close stops the progress loop and releases the cache append handle.
// The orchestrator remains usable for in-memory work afterwards.
func (o *Orchestrator) Close() error {
	o.closeOnce.Do(func() {
		if o.progressStop != nil {
			close(o.progressStop)
			<-o.progressDone
		}
		if o.cache != nil {
			o.closeErr = o.cache.Close()
		}
	})
	return o.closeErr
}
