package orchestrate

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"pcstall/internal/dvfs"
	"pcstall/internal/sim"
	"pcstall/internal/telemetry"
	"pcstall/internal/tracing"
)

// RunFunc computes one job. It must be a pure function of the Job (given
// a fixed simulator version): the orchestrator calls it from worker
// goroutines and caches what it returns. It must not retain or mutate
// shared state. The context is the job's cancellation signal — it is
// cancelled when the campaign fails fast, times out this job, or is
// interrupted — and well-behaved executors check it at every epoch
// boundary (dvfs.RunConfig.Ctx) and return ctx.Err() promptly. The
// registry is the job's private telemetry sink (nil when Config.Metrics
// is unset); executors thread it into the run so per-job metric
// snapshots land on the manifest — recording into it must never change
// the returned result.
type RunFunc func(ctx context.Context, j Job, reg *telemetry.Registry) (*dvfs.Result, error)

// PanicError is what a job that panicked settles with: the recovered
// value plus the goroutine stack at the panic site. Panics are never
// retried (a panic is a bug, not a transient fault) and never crash the
// campaign process; they fail the job and, through fail-fast, cancel the
// rest of the batch.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("job panicked: %v\n%s", e.Value, e.Stack)
}

// Config shapes an Orchestrator.
type Config struct {
	// Workers bounds concurrently executing simulations; <= 0 selects
	// runtime.NumCPU(). Workers == 1 reproduces strictly serial behaviour
	// (identical results either way; jobs are deterministic).
	Workers int
	// CacheDir enables the persistent result cache ("" = in-memory only).
	CacheDir string
	// NoCache disables the disk layer entirely: nothing is read from or
	// written to CacheDir. The in-process memo stays on — figures that
	// share runs (Fig. 15/16/17 all run PCSTALL@1µs) rely on it, and it
	// cannot go stale within one process.
	NoCache bool
	// Run executes one job; required.
	Run RunFunc
	// JobTimeout bounds each attempt of each executed job (0 = no
	// bound). A cooperative RunFunc (one that honours its context)
	// returns promptly when the deadline fires; a RunFunc that ignores
	// its context is abandoned — its goroutine keeps running until it
	// returns, but the job settles with a timeout error and the worker
	// slot is handed to the next job.
	JobTimeout time.Duration
	// Retries is how many times a failed attempt is retried before the
	// job settles with its error. Retries target transient faults (disk
	// hiccups, injected flakiness); panics and campaign cancellation are
	// never retried. 0 disables retry.
	Retries int
	// RetryBackoff is the delay before the first retry, doubling each
	// subsequent one (default 100ms) and jittered (Jitter) so a fleet of
	// campaigns hitting the same fault never retries in lockstep. The
	// backoff sleep aborts early if the campaign is cancelled.
	RetryBackoff time.Duration
	// Progress, when non-nil, receives a Stats snapshot every
	// ProgressEvery (default 2s) while jobs are in flight, and once more
	// on Close.
	Progress      func(Stats)
	ProgressEvery time.Duration
	// Metrics, when non-nil, turns on campaign telemetry: live pool
	// counters/gauges and phase spans are recorded here, each executed
	// job gets a private child registry whose snapshot is merged in on
	// settle and attached to the job's manifest entry. Nil disables all
	// of it (jobs then run with a nil registry).
	Metrics *telemetry.Registry
	// Log, when non-nil, receives structured job-lifecycle records
	// (settles, retries, failures) correlated by trace ID. Nil disables
	// job logging.
	Log *slog.Logger
}

// Stats is a point-in-time snapshot of campaign progress.
type Stats struct {
	// Workers is the pool bound.
	Workers int
	// Unique counts distinct jobs owned by the memo; Completed of those
	// are settled and Running hold a worker slot now. Queued jobs are
	// scheduled but waiting (for a slot or for the disk-cache check).
	Unique, Completed, Running, Queued int
	// Submissions counts every submission including memo-answered
	// duplicates; MemHits + DiskHits + Misses accounts for all settled
	// lookups.
	Submissions, MemHits, DiskHits, Misses int
	// Retries counts retried attempts, Panics jobs that settled with a
	// recovered panic, and Cancelled jobs abandoned by fail-fast or an
	// interrupted campaign (cancelled jobs leave the memo so a resumed
	// campaign recomputes them).
	Retries, Panics, Cancelled int
	// JobTime is summed per-job compute time; Elapsed is wall time since
	// the orchestrator was created. JobTime/Elapsed ≈ realized speedup.
	JobTime, Elapsed time.Duration
}

// String renders the periodic progress line.
func (s Stats) String() string {
	line := fmt.Sprintf("orchestrate: %d/%d jobs done (%d running, %d queued), cache %d mem + %d disk hits / %d misses, %d workers, %s elapsed",
		s.Completed, s.Unique, s.Running, s.Queued,
		s.MemHits, s.DiskHits, s.Misses, s.Workers,
		s.Elapsed.Round(time.Millisecond))
	if s.Retries > 0 || s.Panics > 0 || s.Cancelled > 0 {
		line += fmt.Sprintf(", %d retries, %d panics, %d cancelled", s.Retries, s.Panics, s.Cancelled)
	}
	return line
}

// future is one in-flight or settled job computation.
type future struct {
	done chan struct{}
	res  *dvfs.Result
	err  error
}

// Orchestrator shards jobs across a bounded worker pool with a
// content-addressed result cache. Methods are safe for concurrent use.
type Orchestrator struct {
	run          RunFunc
	workers      int
	noCache      bool
	cache        *Cache
	sem          chan struct{}
	created      time.Time
	tele         *orchTelemetry
	log          *slog.Logger
	jobTimeout   time.Duration
	retries      int
	retryBackoff time.Duration

	mu          sync.Mutex
	memo        map[string]*future
	entries     []ManifestEntry
	submissions int
	completed   int
	running     int
	memHits     int
	diskHits    int
	misses      int
	retried     int
	panicked    int
	cancelled   int
	jobTime     time.Duration

	progressStop chan struct{}
	progressDone chan struct{}
	closeOnce    sync.Once
	closeErr     error
}

// New builds an Orchestrator. The caller owns it and must Close it to
// flush the cache append handle and stop the progress loop.
func New(cfg Config) (*Orchestrator, error) {
	if cfg.Run == nil {
		return nil, fmt.Errorf("orchestrate: Config.Run is required")
	}
	w := cfg.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	backoff := cfg.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	o := &Orchestrator{
		run:          cfg.Run,
		workers:      w,
		noCache:      cfg.NoCache,
		sem:          make(chan struct{}, w),
		created:      time.Now(),
		memo:         map[string]*future{},
		tele:         newOrchTelemetry(cfg.Metrics),
		log:          cfg.Log,
		jobTimeout:   cfg.JobTimeout,
		retries:      cfg.Retries,
		retryBackoff: backoff,
	}
	if cfg.CacheDir != "" && !cfg.NoCache {
		c, err := OpenCache(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		o.cache = c
		if c.Repaired() && o.tele != nil {
			o.tele.cacheRepairs.Inc()
		}
	}
	if cfg.Progress != nil {
		every := cfg.ProgressEvery
		if every <= 0 {
			every = 2 * time.Second
		}
		o.progressStop = make(chan struct{})
		o.progressDone = make(chan struct{})
		go func() {
			t := time.NewTicker(every)
			defer t.Stop()
			defer close(o.progressDone)
			for {
				select {
				case <-t.C:
					cfg.Progress(o.Stats())
				case <-o.progressStop:
					cfg.Progress(o.Stats())
					return
				}
			}
		}()
	}
	return o, nil
}

// Stats snapshots campaign progress.
func (o *Orchestrator) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return Stats{
		Workers:     o.workers,
		Unique:      len(o.memo),
		Completed:   o.completed,
		Running:     o.running,
		Queued:      len(o.memo) - o.completed - o.running,
		Submissions: o.submissions,
		MemHits:     o.memHits,
		DiskHits:    o.diskHits,
		Misses:      o.misses,
		Retries:     o.retried,
		Panics:      o.panicked,
		Cancelled:   o.cancelled,
		JobTime:     o.jobTime,
		Elapsed:     time.Since(o.created),
	}
}

// Cached returns the already-settled result for key without scheduling
// any work: the in-process memo answers when the job has completed
// successfully, else the disk cache. It is the serving layer's
// short-circuit hook — a hit can be fanned out to callers without
// consuming a worker slot or queue capacity, and it never perturbs
// campaign accounting (no hit counters, no manifest entry). In-flight
// and failed jobs read as misses.
func (o *Orchestrator) Cached(key string) (*dvfs.Result, bool) {
	o.mu.Lock()
	if f, ok := o.memo[key]; ok {
		select {
		case <-f.done:
			if f.err == nil {
				o.mu.Unlock()
				return f.res, true
			}
		default:
		}
	}
	o.mu.Unlock()
	if o.cache != nil {
		if r, ok := o.cache.Get(key); ok {
			return r, true
		}
	}
	return nil, false
}

// RunJob executes a single job through the pool — the serving layer's
// one-request entry point. Semantics are RunJobs' for a batch of one:
// duplicates of in-flight or settled keys share the computation, and a
// cancelled job leaves the memo for recomputation.
func (o *Orchestrator) RunJob(ctx context.Context, j Job) (*dvfs.Result, error) {
	rs, err := o.RunJobs(ctx, []Job{j})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// isCancellation reports whether err is campaign cancellation (as
// opposed to a job failing on its own).
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled)
}

// Jitter spreads a backoff delay uniformly over [d/2, 3d/2) so
// independent retriers — a campaign's worker pool, a coordinator fleet's
// quarantine probes — never fall into lockstep against a recovering
// resource. The orchestrator's own retry loop and internal/dist's
// backend quarantine both sleep through it.
func Jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// jobSourceKey carries the per-job source holder through the context the
// orchestrator hands its RunFunc.
type jobSourceKey struct{}

// jobSource is the holder SetJobSource and AddJobFault write into.
type jobSource struct {
	mu     sync.Mutex
	s      string
	faults []string
}

// SetJobSource records where a job's result was actually computed —
// "remote:<backend>" for a result ingested from a pcstall-serve worker,
// "local-fallback" for the dispatcher's degraded lane — so the campaign
// manifest carries provenance per job. It is a no-op when ctx does not
// descend from an orchestrator job (the default Source "run" stands).
func SetJobSource(ctx context.Context, source string) {
	h, ok := ctx.Value(jobSourceKey{}).(*jobSource)
	if !ok {
		return
	}
	h.mu.Lock()
	h.s = source
	h.mu.Unlock()
}

// AddJobFault records one fault a job survived on its way to a result —
// "integrity:<backend>" for a corrupted reply caught by digest
// verification, "timeout:<backend>" for a deadline-bounded black hole,
// "shed:<backend>"/"error:<backend>" for load shedding and plain
// dispatch failures. Faults accumulate in dispatch order on the
// manifest entry, so a campaign that completed despite a lying network
// shows exactly what it absorbed. No-op when ctx does not descend from
// an orchestrator job.
func AddJobFault(ctx context.Context, fault string) {
	h, ok := ctx.Value(jobSourceKey{}).(*jobSource)
	if !ok {
		return
	}
	h.mu.Lock()
	h.faults = append(h.faults, fault)
	h.mu.Unlock()
}

// RunJobs executes jobs through the pool and returns results in job
// order regardless of completion order. Duplicate keys — within the
// batch or across earlier calls — are computed once and shared.
//
// Failure is fail-fast: the first job to settle with an error cancels
// the batch context, which aborts queued jobs and (through the
// per-epoch check in dvfs.Run) winds down in-flight ones; RunJobs still
// waits for every job to settle before returning, so no goroutines are
// left running. The reported error is the first non-cancellation error
// in job order (the root cause, not the collateral cancellations).
// Jobs cancelled this way — or by ctx — are removed from the memo and
// never written to the cache or manifest, so a later call (or a resumed
// campaign) recomputes exactly the missing work.
func (o *Orchestrator) RunJobs(ctx context.Context, jobs []Job) ([]*dvfs.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	futs := make([]*future, len(jobs))
	for i, j := range jobs {
		futs[i] = o.submit(bctx, j)
	}
	// Fail-fast watchers: duplicates share futures, watch each once.
	watched := make(map[*future]bool, len(futs))
	for _, f := range futs {
		if watched[f] {
			continue
		}
		watched[f] = true
		go func(f *future) {
			<-f.done
			if f.err != nil {
				cancel()
			}
		}(f)
	}
	out := make([]*dvfs.Result, len(jobs))
	var firstErr, firstCancel error
	for i, f := range futs {
		<-f.done
		if f.err != nil {
			wrapped := fmt.Errorf("orchestrate: job %s: %w", jobs[i].String(), f.err)
			if isCancellation(f.err) {
				if firstCancel == nil {
					firstCancel = wrapped
				}
			} else if firstErr == nil {
				firstErr = wrapped
			}
		}
		out[i] = f.res
	}
	if firstErr == nil {
		firstErr = firstCancel
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// submit routes one job to its future, creating (and scheduling) it on
// first sight of the key.
func (o *Orchestrator) submit(ctx context.Context, j Job) *future {
	key := j.Key()
	o.mu.Lock()
	o.submissions++
	if f, ok := o.memo[key]; ok {
		o.memHits++
		o.mu.Unlock()
		if o.tele != nil {
			o.tele.memHits.Inc()
		}
		return f
	}
	f := &future{done: make(chan struct{})}
	o.memo[key] = f
	o.updateGauges()
	o.mu.Unlock()
	go o.exec(ctx, j, key, f)
	return f
}

// settleCancelled records a job abandoned by cancellation: it settles
// the future with err but forgets the key, so a later submission (or a
// resumed campaign reading the disk cache) recomputes it. Cancelled
// jobs never reach the cache or the manifest. Callers must not hold
// o.mu; close(f.done) remains the caller's (deferred) responsibility.
func (o *Orchestrator) settleCancelled(key string, f *future, err error, wasRunning bool) {
	f.err = err
	o.mu.Lock()
	if o.memo[key] == f {
		delete(o.memo, key)
	}
	if wasRunning {
		o.running--
	}
	o.cancelled++
	o.updateGauges()
	o.mu.Unlock()
	if o.tele != nil {
		o.tele.cancellations.Inc()
	}
}

// exec settles one future: disk-cache lookup, else a pooled run.
func (o *Orchestrator) exec(ctx context.Context, j Job, key string, f *future) {
	defer close(f.done)
	// The job span ties everything below (queue wait, attempts, dvfs
	// epochs) into the distributed trace: under serve/dist the context
	// already carries a request or dispatch parent, under a plain
	// campaign it roots a fresh trace, and untraced contexts get a nil
	// span whose methods no-op.
	ctx, jobSpan := tracing.Start(ctx, "orchestrate.job",
		tracing.String("job.key", key),
		tracing.String("app", j.App),
		tracing.String("design", j.Design))
	if o.cache != nil {
		var getSpan telemetry.Span
		if o.tele != nil {
			getSpan = telemetry.StartSpan(o.tele.cacheGet)
		}
		r, ok := o.cache.Get(key)
		getSpan.End()
		if ok {
			f.res = r
			jobSpan.SetAttr("source", "disk")
			jobSpan.End()
			o.mu.Lock()
			o.diskHits++
			o.completed++
			o.entries = append(o.entries, ManifestEntry{
				Key: key, Job: j, Source: "disk", TraceID: jobSpan.TraceID(),
			})
			o.updateGauges()
			o.mu.Unlock()
			if o.tele != nil {
				o.tele.diskHits.Inc()
				o.tele.jobsCompleted.Inc()
			}
			return
		}
	}
	var queueSpan telemetry.Span
	if o.tele != nil {
		queueSpan = telemetry.StartSpan(o.tele.queueWait)
	}
	// Acquire a worker slot — or give up if the campaign is cancelled
	// while this job is still queued.
	select {
	case o.sem <- struct{}{}:
	case <-ctx.Done():
		queueSpan.End()
		jobSpan.SetAttr("cancelled", "queued")
		jobSpan.End()
		o.settleCancelled(key, f, ctx.Err(), false)
		return
	}
	queueSpan.End()
	jobSpan.Event("slot.acquired")
	// The slot is released via defer so that no path out of the attempt
	// loop — error, cancellation, or a recovered panic — can shrink the
	// pool. (The release now covers the cache write too; that write is
	// memory-speed next to a simulation, so holding the slot over it is
	// immaterial.)
	defer func() { <-o.sem }()
	o.mu.Lock()
	o.running++
	o.updateGauges()
	o.mu.Unlock()
	// Each executed job records into a private registry so parallel jobs
	// never confound each other's snapshots; the snapshot is merged into
	// the campaign registry once the job settles.
	var jobReg *telemetry.Registry
	if o.tele != nil {
		jobReg = telemetry.New()
	}
	// The source holder lets a dispatching RunFunc report where the
	// result actually came from (SetJobSource); unset means "run".
	src := &jobSource{}
	start := time.Now()
	r, err := o.runAttempts(context.WithValue(ctx, jobSourceKey{}, src), j, jobReg)
	dur := time.Since(start)
	if err != nil && isCancellation(err) && ctx.Err() != nil {
		// Cancelled out from under the job (fail-fast or interrupt), not
		// a failure of the job itself.
		jobSpan.SetAttr("cancelled", "running")
		jobSpan.End()
		o.settleCancelled(key, f, err, true)
		return
	}
	if err == nil && o.cache != nil {
		var putSpan telemetry.Span
		if o.tele != nil {
			putSpan = telemetry.StartSpan(o.tele.cachePut)
		}
		if perr := o.cache.Put(key, j, r); perr != nil {
			// Persistence is best-effort: the computed result stands, the
			// failure is counted, and the cache has disabled further disk
			// writes for this run (the in-memory layer stays warm).
			if o.tele != nil {
				o.tele.cacheWriteFails.Inc()
			}
		}
		putSpan.End()
	}
	f.res, f.err = r, err
	entry := ManifestEntry{
		Key: key, Job: j, Source: "run",
		DurationMS: float64(dur) / float64(time.Millisecond),
		TraceID:    jobSpan.TraceID(),
	}
	src.mu.Lock()
	if src.s != "" {
		entry.Source = src.s
	}
	entry.Faults = src.faults
	src.mu.Unlock()
	if err != nil {
		entry.Error = err.Error()
		jobSpan.SetAttr("error", err.Error())
	}
	jobSpan.SetAttr("source", entry.Source)
	jobSpan.End()
	o.logJob(entry, err)
	if o.tele != nil {
		snap := jobReg.Snapshot()
		o.tele.reg.Merge(snap)
		entry.Metrics = &snap
		o.tele.misses.Inc()
		o.tele.jobsCompleted.Inc()
		if err != nil {
			o.tele.errors.Inc()
			var de *sim.DeadlockError
			if errors.As(err, &de) {
				o.tele.deadlocks.Inc()
			}
		}
	}
	o.mu.Lock()
	o.running--
	o.completed++
	o.misses++
	o.jobTime += dur
	o.entries = append(o.entries, entry)
	o.updateGauges()
	o.mu.Unlock()
}

// logJob emits one structured job-settle record correlated by trace ID.
func (o *Orchestrator) logJob(entry ManifestEntry, err error) {
	if o.log == nil {
		return
	}
	attrs := []any{
		"job", entry.Job.String(),
		"key", entry.Key,
		"source", entry.Source,
		"dur_ms", entry.DurationMS,
	}
	if entry.TraceID != "" {
		attrs = append(attrs, "trace_id", entry.TraceID)
	}
	if err != nil {
		o.log.Warn("job failed", append(attrs, "err", err.Error())...)
		return
	}
	o.log.Info("job settled", attrs...)
}

// runAttempts drives the retry loop around runOnce: transient failures
// are retried up to Config.Retries times with doubling backoff; panics
// and campaign cancellation settle immediately.
func (o *Orchestrator) runAttempts(ctx context.Context, j Job, reg *telemetry.Registry) (*dvfs.Result, error) {
	backoff := o.retryBackoff
	for attempt := 0; ; attempt++ {
		r, err := o.runOnce(ctx, j, reg)
		if err == nil {
			return r, nil
		}
		var pe *PanicError
		if errors.As(err, &pe) {
			o.mu.Lock()
			o.panicked++
			o.mu.Unlock()
			if o.tele != nil {
				o.tele.panics.Inc()
			}
			return nil, err
		}
		if isCancellation(err) && ctx.Err() != nil {
			return nil, err
		}
		if attempt >= o.retries || ctx.Err() != nil {
			if attempt > 0 {
				err = fmt.Errorf("after %d attempts: %w", attempt+1, err)
			}
			return nil, err
		}
		o.mu.Lock()
		o.retried++
		o.mu.Unlock()
		if o.tele != nil {
			o.tele.retries.Inc()
		}
		tracing.FromContext(ctx).Event("retry",
			tracing.Int("attempt", int64(attempt+1)),
			tracing.String("error", err.Error()))
		if o.log != nil {
			o.log.Warn("retrying job",
				"job", j.String(), "attempt", attempt+1, "err", err.Error(),
				"trace_id", tracing.TraceIDFrom(ctx))
		}
		select {
		case <-time.After(Jitter(backoff)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		backoff *= 2
	}
}

// runOnce executes one attempt of the job under the per-job timeout,
// with panic isolation. The RunFunc runs on its own goroutine: a panic
// there is recovered into a *PanicError (stack attached) instead of
// crashing the process, and an attempt that outlives its deadline is
// abandoned — the buffered channel lets the stray goroutine deliver its
// ignored outcome and exit, so a cooperative RunFunc leaks nothing.
func (o *Orchestrator) runOnce(ctx context.Context, j Job, reg *telemetry.Registry) (*dvfs.Result, error) {
	actx := ctx
	if o.jobTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, o.jobTimeout)
		defer cancel()
	}
	type outcome struct {
		r   *dvfs.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: &PanicError{Value: p, Stack: debug.Stack()}}
			}
		}()
		r, err := o.run(actx, j, reg)
		ch <- outcome{r, err}
	}()
	var runSpan telemetry.Span
	if o.tele != nil {
		runSpan = telemetry.StartSpan(o.tele.runPhase)
	}
	select {
	case out := <-ch:
		runSpan.End()
		// A cooperative RunFunc surfaces the attempt deadline itself;
		// normalize it to the same shape as the abandoned-attempt path.
		if out.err != nil && errors.Is(out.err, context.DeadlineExceeded) && actx.Err() != nil && ctx.Err() == nil {
			return nil, fmt.Errorf("timed out after %v: %w", o.jobTimeout, out.err)
		}
		return out.r, out.err
	case <-actx.Done():
		runSpan.End()
		err := actx.Err()
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			return nil, fmt.Errorf("timed out after %v: %w", o.jobTimeout, err)
		}
		return nil, err
	}
}

// Close stops the progress loop and releases the cache append handle.
// The orchestrator remains usable for in-memory work afterwards.
func (o *Orchestrator) Close() error {
	o.closeOnce.Do(func() {
		if o.progressStop != nil {
			close(o.progressStop)
			<-o.progressDone
		}
		if o.cache != nil {
			o.closeErr = o.cache.Close()
		}
	})
	return o.closeErr
}
