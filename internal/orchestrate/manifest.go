package orchestrate

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"pcstall/internal/telemetry"
)

// ManifestEntry records one unique job of a campaign: its content
// address, full description, where the result came from, and how long it
// took to compute (zero for cache hits).
type ManifestEntry struct {
	Key string `json:"key"`
	Job Job    `json:"job"`
	// Source is "run" (computed this campaign), "disk" (loaded from the
	// cache directory), or a provenance string a dispatching RunFunc
	// recorded via SetJobSource — "remote:<backend>" for results ingested
	// from a pcstall-serve worker, "local-fallback" for the distributed
	// coordinator's degraded lane. In-process duplicate submissions never
	// add an entry; they are counted in the aggregate MemHits.
	Source string `json:"source"`
	// DurationMS is the job's wall-clock compute time (0 when cached).
	DurationMS float64 `json:"duration_ms"`
	// Faults lists the dispatch faults this job survived before settling
	// (AddJobFault) — "integrity:<backend>", "timeout:<backend>",
	// "shed:<backend>", "skew:<backend>", "error:<backend>" — in the
	// order they occurred. Absent on clean runs, so fault-free campaign
	// manifests are byte-identical to those of earlier builds.
	Faults []string `json:"faults,omitempty"`
	// Error records why a computed job settled without a result (timeout,
	// recovered panic, exhausted retries). Cancelled jobs never appear in
	// the manifest at all: they are forgotten so a resumed campaign
	// recomputes them.
	Error string `json:"error,omitempty"`
	// Metrics is the job's private telemetry snapshot (simulation
	// counters, prediction error, oracle fork costs), present only for
	// computed jobs in campaigns with Config.Metrics attached.
	Metrics *telemetry.Snapshot `json:"metrics,omitempty"`
	// TraceID correlates this entry with the job's distributed trace
	// (internal/tracing): the same ID keys /debug/traces on every process
	// the job touched and the -trace-out Chrome export. Empty when the
	// campaign ran untraced.
	TraceID string `json:"trace_id,omitempty"`
}

// Manifest is the auditable record of one campaign (one Orchestrator
// lifetime): every unique job with its hash and timing, aggregate cache
// accounting, and the pool shape that produced the results.
type Manifest struct {
	SimVersion string `json:"sim_version"`
	CreatedAt  string `json:"created_at"`
	Workers    int    `json:"workers"`
	// Submissions counts every job submission, including duplicates that
	// were answered by the in-process memo.
	Submissions int `json:"submissions"`
	// UniqueJobs is len(Jobs).
	UniqueJobs int `json:"unique_jobs"`
	// MemHits counts submissions answered by the in-process memo,
	// DiskHits those answered by the cache directory, and Misses those
	// that ran a simulation.
	MemHits  int `json:"mem_hits"`
	DiskHits int `json:"disk_hits"`
	Misses   int `json:"misses"`
	// JobTimeMS sums per-job compute time; WallMS is campaign wall time.
	// Their ratio is the realized parallel speedup over the pool.
	JobTimeMS float64 `json:"job_time_ms"`
	WallMS    float64 `json:"wall_ms"`
	// Jobs lists unique jobs sorted by key for stable diffs.
	Jobs []ManifestEntry `json:"jobs"`
	// Metrics is the campaign-global registry snapshot at manifest time
	// (merged per-job snapshots plus live pool metrics), present when
	// the orchestrator was built with Config.Metrics.
	Metrics *telemetry.Snapshot `json:"metrics,omitempty"`
}

// HitRate returns the fraction of submissions answered by either cache
// layer (0 when nothing was submitted).
func (m *Manifest) HitRate() float64 {
	if m.Submissions == 0 {
		return 0
	}
	return float64(m.MemHits+m.DiskHits) / float64(m.Submissions)
}

// Manifest snapshots the campaign so far. Jobs are sorted by key, so two
// identical campaigns produce byte-identical manifests up to timings.
func (o *Orchestrator) Manifest() *Manifest {
	o.mu.Lock()
	defer o.mu.Unlock()
	m := &Manifest{
		SimVersion:  SimVersion,
		CreatedAt:   o.created.UTC().Format(time.RFC3339),
		Workers:     o.workers,
		Submissions: o.submissions,
		UniqueJobs:  len(o.entries),
		MemHits:     o.memHits,
		DiskHits:    o.diskHits,
		Misses:      o.misses,
		JobTimeMS:   float64(o.jobTime) / float64(time.Millisecond),
		WallMS:      float64(time.Since(o.created)) / float64(time.Millisecond),
		Jobs:        append([]ManifestEntry(nil), o.entries...),
	}
	sort.Slice(m.Jobs, func(a, b int) bool { return m.Jobs[a].Key < m.Jobs[b].Key })
	if o.tele != nil {
		snap := o.tele.reg.Snapshot()
		m.Metrics = &snap
	}
	return m
}

// WriteManifest writes the campaign manifest as indented JSON to path.
func (o *Orchestrator) WriteManifest(path string) error {
	b, err := json.MarshalIndent(o.Manifest(), "", "  ")
	if err != nil {
		return fmt.Errorf("orchestrate: encoding manifest: %w", err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("orchestrate: writing manifest: %w", err)
	}
	return nil
}
