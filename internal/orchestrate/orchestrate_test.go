package orchestrate

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pcstall/internal/dvfs"
	"pcstall/internal/metrics"
	"pcstall/internal/telemetry"
)

// testJob builds a distinct job per index.
func testJob(i int) Job {
	return Job{
		App: fmt.Sprintf("app%d", i), Design: "PCSTALL", EpochPs: 1e6,
		Objective: "ED2P", CUsPerDomain: 1, CUs: 4, Scale: 1, Seed: 1,
		MaxTimePs: 1e9, SimVersion: SimVersion,
	}
}

// countingRun returns a RunFunc that fabricates a result encoding the
// job's identity, plus the number of real executions.
func countingRun() (RunFunc, *int64) {
	var n int64
	return func(_ context.Context, j Job, reg *telemetry.Registry) (*dvfs.Result, error) {
		atomic.AddInt64(&n, 1)
		reg.Counter("test_runs_total", "runs executed by the fake").Inc()
		return &dvfs.Result{
			Policy:    j.Design,
			Objective: j.Objective,
			Totals:    metrics.RunTotals{EnergyJ: float64(len(j.App)), TimeS: 1, Committed: 42},
			Residency: []float64{0.25, 0.75},
		}, nil
	}, &n
}

func TestKeyStability(t *testing.T) {
	a, b := testJob(1), testJob(1)
	if a.Key() != b.Key() {
		t.Fatal("equal jobs hash differently")
	}
	b.Seed = 2
	if a.Key() == b.Key() {
		t.Fatal("different seeds share a key")
	}
	c := testJob(1)
	c.SimVersion = "other"
	if a.Key() == c.Key() {
		t.Fatal("sim version not part of the key")
	}
	if a.Canonical() == "" || len(a.Key()) != 16 {
		t.Fatalf("bad canonical/key %q/%q", a.Canonical(), a.Key())
	}
}

func TestRunJobsDeterministicOrder(t *testing.T) {
	run, n := countingRun()
	o, err := New(Config{Workers: 8, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	jobs := make([]Job, 32)
	for i := range jobs {
		jobs[i] = testJob(i)
	}
	res, err := o.RunJobs(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Totals.EnergyJ != float64(len(jobs[i].App)) {
			t.Fatalf("result %d out of order: %v", i, r.Totals)
		}
	}
	if *n != 32 {
		t.Fatalf("executed %d times, want 32", *n)
	}
}

func TestMemoDeduplicates(t *testing.T) {
	run, n := countingRun()
	o, err := New(Config{Workers: 4, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	jobs := []Job{testJob(0), testJob(1), testJob(0), testJob(1), testJob(0)}
	res, err := o.RunJobs(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if *n != 2 {
		t.Fatalf("executed %d times, want 2 (3 duplicates)", *n)
	}
	if res[0] != res[2] || res[0] != res[4] || res[1] != res[3] {
		t.Fatal("duplicate jobs did not share a result pointer")
	}
	// A later batch reuses earlier results.
	if _, err := o.RunJobs(context.Background(), []Job{testJob(0)}); err != nil {
		t.Fatal(err)
	}
	if *n != 2 {
		t.Fatalf("cross-batch memo miss: %d executions", *n)
	}
	st := o.Stats()
	if st.MemHits != 4 || st.Misses != 2 || st.Submissions != 6 {
		t.Fatalf("stats %+v", st)
	}
}

func TestErrorPropagatesAfterSettling(t *testing.T) {
	o, err := New(Config{Workers: 2, Run: func(_ context.Context, j Job, _ *telemetry.Registry) (*dvfs.Result, error) {
		if j.App == "app1" {
			return nil, fmt.Errorf("boom")
		}
		return &dvfs.Result{}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	_, err = o.RunJobs(context.Background(), []Job{testJob(0), testJob(1), testJob(2)})
	if err == nil {
		t.Fatal("error swallowed")
	}
	// The root cause is reported, not a collateral fail-fast cancellation.
	if got := err.Error(); !strings.Contains(got, "boom") {
		t.Fatalf("want root-cause error, got %v", err)
	}
	// Every job settled: computed, failed, or cancelled by fail-fast (a
	// cancelled job leaves the memo so a retry recomputes it).
	st := o.Stats()
	if st.Running != 0 || st.Completed+st.Cancelled != 3 {
		t.Fatalf("jobs not settled: %+v", st)
	}
}

func TestWorkerBoundRespected(t *testing.T) {
	var cur, peak int64
	o, err := New(Config{Workers: 3, Run: func(context.Context, Job, *telemetry.Registry) (*dvfs.Result, error) {
		c := atomic.AddInt64(&cur, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if c <= p || atomic.CompareAndSwapInt64(&peak, p, c) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		atomic.AddInt64(&cur, -1)
		return &dvfs.Result{}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	jobs := make([]Job, 24)
	for i := range jobs {
		jobs[i] = testJob(i)
	}
	if _, err := o.RunJobs(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt64(&peak); p > 3 {
		t.Fatalf("concurrency peaked at %d, bound 3", p)
	}
}

func TestDiskCacheWarmRerun(t *testing.T) {
	dir := t.TempDir()
	run, n := countingRun()
	jobs := make([]Job, 20)
	for i := range jobs {
		jobs[i] = testJob(i)
	}

	o, err := New(Config{Workers: 4, CacheDir: dir, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := o.RunJobs(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if *n != 20 {
		t.Fatalf("cold run executed %d, want 20", *n)
	}

	// Warm rerun in a fresh orchestrator: everything from disk.
	o2, err := New(Config{Workers: 4, CacheDir: dir, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	defer o2.Close()
	warm, err := o2.RunJobs(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if *n != 20 {
		t.Fatalf("warm run recomputed: %d executions", *n)
	}
	for i := range warm {
		if warm[i].Totals != cold[i].Totals || warm[i].Policy != cold[i].Policy {
			t.Fatalf("cached result %d differs: %+v vs %+v", i, warm[i], cold[i])
		}
		if len(warm[i].Residency) != len(cold[i].Residency) {
			t.Fatalf("residency shape lost in round-trip")
		}
	}
	m := o2.Manifest()
	if m.DiskHits != 20 || m.Misses != 0 {
		t.Fatalf("manifest hits %d/%d misses, want 20/0", m.DiskHits, m.Misses)
	}
	if rate := m.HitRate(); rate < 0.9 {
		t.Fatalf("warm hit rate %.2f < 0.90", rate)
	}

	// A sim-version bump must miss every stale entry.
	var n3 int64
	o3, err := New(Config{Workers: 4, CacheDir: dir, Run: func(_ context.Context, j Job, _ *telemetry.Registry) (*dvfs.Result, error) {
		atomic.AddInt64(&n3, 1)
		return &dvfs.Result{}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer o3.Close()
	bumped := make([]Job, len(jobs))
	copy(bumped, jobs)
	for i := range bumped {
		bumped[i].SimVersion = "pcstall-sim-v2-test"
	}
	if _, err := o3.RunJobs(context.Background(), bumped); err != nil {
		t.Fatal(err)
	}
	if n3 != 20 {
		t.Fatalf("stale cache served a bumped version: %d executions", n3)
	}
}

func TestNoCacheSkipsDisk(t *testing.T) {
	dir := t.TempDir()
	run, _ := countingRun()
	o, err := New(Config{Workers: 2, CacheDir: dir, NoCache: true, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.RunJobs(context.Background(), []Job{testJob(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := filepath.Glob(filepath.Join(dir, "*")); err != nil {
		t.Fatal(err)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*")); len(files) != 0 {
		t.Fatalf("NoCache wrote files: %v", files)
	}
}

func TestManifestShape(t *testing.T) {
	dir := t.TempDir()
	run, _ := countingRun()
	o, err := New(Config{Workers: 2, CacheDir: dir, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.RunJobs(context.Background(), []Job{testJob(0), testJob(1), testJob(0)}); err != nil {
		t.Fatal(err)
	}
	m := o.Manifest()
	if m.UniqueJobs != 2 || m.Submissions != 3 || m.MemHits != 1 || m.Misses != 2 {
		t.Fatalf("manifest accounting %+v", m)
	}
	if m.Workers != 2 || m.SimVersion != SimVersion || len(m.Jobs) != 2 {
		t.Fatalf("manifest metadata %+v", m)
	}
	if m.Jobs[0].Key >= m.Jobs[1].Key {
		t.Fatal("manifest jobs not sorted by key")
	}
	path := filepath.Join(dir, "manifest.json")
	if err := o.WriteManifest(path); err != nil {
		t.Fatal(err)
	}
}

func TestProgressCallback(t *testing.T) {
	var calls int64
	run, _ := countingRun()
	o, err := New(Config{
		Workers: 2, Run: run,
		Progress:      func(Stats) { atomic.AddInt64(&calls, 1) },
		ProgressEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = testJob(i)
	}
	if _, err := o.RunJobs(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&calls) == 0 {
		t.Fatal("progress callback never fired")
	}
	s := o.Stats()
	if s.String() == "" || s.Workers != 2 {
		t.Fatalf("bad stats %+v", s)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing RunFunc accepted")
	}
	o, err := New(Config{Run: func(context.Context, Job, *telemetry.Registry) (*dvfs.Result, error) { return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if o.Stats().Workers < 1 {
		t.Fatal("default workers < 1")
	}
}
