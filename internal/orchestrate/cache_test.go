package orchestrate

import (
	"os"
	"path/filepath"
	"testing"

	"pcstall/internal/dvfs"
	"pcstall/internal/metrics"
)

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(3)
	r := &dvfs.Result{
		Policy:    "PCSTALL",
		Objective: "ED2P",
		Totals:    metrics.RunTotals{EnergyJ: 0.1234567890123456, TimeS: 3.3e-5, Committed: 987654321},
		Accuracy:  0.87654321,
		AccuracyN: 12345,
		Residency: []float64{0.1, 0.2, 0.7},
		Epochs:    33,
	}
	if err := c.Put(j.Key(), j, r); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, ok := c2.Get(j.Key())
	if !ok {
		t.Fatal("entry lost across close/open")
	}
	// Floats must round-trip exactly (JSON shortest-repr), or warm-cache
	// reruns would not be byte-identical to cold runs.
	if got.Totals != r.Totals || got.Accuracy != r.Accuracy || got.AccuracyN != r.AccuracyN {
		t.Fatalf("lossy round-trip: %+v vs %+v", got, r)
	}
	for i := range r.Residency {
		if got.Residency[i] != r.Residency[i] {
			t.Fatalf("residency[%d] %v != %v", i, got.Residency[i], r.Residency[i])
		}
	}
	if c2.Len() != 1 {
		t.Fatalf("len %d", c2.Len())
	}
}

func TestCacheToleratesCorruptLines(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(1)
	if err := c.Put(j.Key(), j, &dvfs.Result{Policy: "X"}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// Simulate a torn append from a killed process.
	f, err := os.OpenFile(filepath.Join(dir, ResultsFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"deadbeef","job":{"app":"tru`)
	f.Close()

	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, ok := c2.Get(j.Key()); !ok {
		t.Fatal("valid entry lost to corrupt neighbour")
	}
	if c2.Len() != 1 {
		t.Fatalf("corrupt line loaded: len %d", c2.Len())
	}
	// And the cache stays appendable after recovery.
	j2 := testJob(2)
	if err := c2.Put(j2.Key(), j2, &dvfs.Result{Policy: "Y"}); err != nil {
		t.Fatal(err)
	}
}
