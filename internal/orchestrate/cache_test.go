package orchestrate

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"pcstall/internal/dvfs"
	"pcstall/internal/metrics"
	"pcstall/internal/telemetry"
)

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(3)
	r := &dvfs.Result{
		Policy:    "PCSTALL",
		Objective: "ED2P",
		Totals:    metrics.RunTotals{EnergyJ: 0.1234567890123456, TimeS: 3.3e-5, Committed: 987654321},
		Accuracy:  0.87654321,
		AccuracyN: 12345,
		Residency: []float64{0.1, 0.2, 0.7},
		Epochs:    33,
	}
	if err := c.Put(j.Key(), j, r); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, ok := c2.Get(j.Key())
	if !ok {
		t.Fatal("entry lost across close/open")
	}
	// Floats must round-trip exactly (JSON shortest-repr), or warm-cache
	// reruns would not be byte-identical to cold runs.
	if got.Totals != r.Totals || got.Accuracy != r.Accuracy || got.AccuracyN != r.AccuracyN {
		t.Fatalf("lossy round-trip: %+v vs %+v", got, r)
	}
	for i := range r.Residency {
		if got.Residency[i] != r.Residency[i] {
			t.Fatalf("residency[%d] %v != %v", i, got.Residency[i], r.Residency[i])
		}
	}
	if c2.Len() != 1 {
		t.Fatalf("len %d", c2.Len())
	}
}

func TestCacheToleratesCorruptLines(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(1)
	if err := c.Put(j.Key(), j, &dvfs.Result{Policy: "X"}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// Simulate a torn append from a killed process.
	f, err := os.OpenFile(filepath.Join(dir, ResultsFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"deadbeef","job":{"app":"tru`)
	f.Close()

	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, ok := c2.Get(j.Key()); !ok {
		t.Fatal("valid entry lost to corrupt neighbour")
	}
	if c2.Len() != 1 {
		t.Fatalf("corrupt line loaded: len %d", c2.Len())
	}
	// And the cache stays appendable after recovery.
	j2 := testJob(2)
	if err := c2.Put(j2.Key(), j2, &dvfs.Result{Policy: "Y"}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheRepairsTornTailBeyondScannerBuffer pins the promise the old
// code broke: a torn trailing line longer than the scanner's 16 MiB
// buffer used to make OpenCache fatal, bricking the cache directory.
// Now it is treated as a corrupt tail — entries loaded so far survive
// and the file is truncate-repaired in place.
func TestCacheRepairsTornTailBeyondScannerBuffer(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(1)
	if err := c.Put(j.Key(), j, &dvfs.Result{Policy: "X", Epochs: 7}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	path := filepath.Join(dir, ResultsFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A 17 MiB newline-free tail: past the scanner's max token size, the
	// shape a crash mid-append of a huge record leaves behind.
	torn := bytes.Repeat([]byte(`{"key":"torn"`), 17<<20/13)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatalf("corrupt tail bricked the cache: %v", err)
	}
	defer c2.Close()
	if !c2.Repaired() {
		t.Fatal("repair not reported")
	}
	got, ok := c2.Get(j.Key())
	if !ok || got.Epochs != 7 {
		t.Fatalf("pre-tail entry lost in repair: %+v ok=%v", got, ok)
	}
	// The repair must have physically truncated the corrupt tail.
	if fi, err := os.Stat(path); err != nil || fi.Size() > 1<<20 {
		t.Fatalf("file not repaired: size=%d err=%v", fi.Size(), err)
	}
	// A third open sees a healthy file and loads without repairing.
	c2.Close()
	c3, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if c3.Repaired() || c3.Len() != 1 {
		t.Fatalf("repaired file unhealthy: repaired=%v len=%d", c3.Repaired(), c3.Len())
	}
}

// TestCachePutFailureDegrades pins the degrade contract: a persistence
// failure surfaces once, disables further disk writes, and leaves the
// in-memory layer fully serviceable.
func TestCachePutFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the append handle out from under the encoder — the shape
	// of a revoked handle or an unwritable disk.
	c.file.Close()
	j := testJob(1)
	if err := c.Put(j.Key(), j, &dvfs.Result{Policy: "X"}); err == nil {
		t.Fatal("write failure swallowed")
	}
	if c.WriteErr() == nil {
		t.Fatal("write error not recorded")
	}
	// Later puts degrade silently to memory; lookups keep working.
	j2 := testJob(2)
	if err := c.Put(j2.Key(), j2, &dvfs.Result{Policy: "Y"}); err != nil {
		t.Fatalf("degraded put still failing: %v", err)
	}
	if _, ok := c.Get(j.Key()); !ok {
		t.Fatal("in-memory layer lost the result that failed to persist")
	}
	if _, ok := c.Get(j2.Key()); !ok {
		t.Fatal("in-memory layer lost the post-degrade result")
	}
}

// TestOrchestratorSurvivesCachePutFailure pins the satellite end to
// end: a job whose result cannot be persisted still succeeds, the
// failure lands on telemetry, and the campaign carries on.
func TestOrchestratorSurvivesCachePutFailure(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.New()
	run, n := countingRun()
	o, err := New(Config{Workers: 2, CacheDir: dir, Run: run, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	o.cache.file.Close() // first Put will fail and disable disk writes
	res, err := o.RunJobs(context.Background(), []Job{testJob(0), testJob(1)})
	if err != nil {
		t.Fatalf("persistence failure failed the jobs: %v", err)
	}
	if res[0] == nil || res[1] == nil || *n != 2 {
		t.Fatalf("results lost to a disk error: %v %v", res[0], res[1])
	}
	s := reg.Snapshot()
	if s.Counters["orchestrate_cache_write_failures_total"] != 1 {
		t.Fatalf("write failure counted %d times, want 1 (writes disabled after the first)",
			s.Counters["orchestrate_cache_write_failures_total"])
	}
	if s.Counters["orchestrate_job_errors_total"] != 0 {
		t.Fatal("persistence failure mis-counted as a job error")
	}
	o.Close() // closing the sabotaged handle may error; the campaign is already safe
}
