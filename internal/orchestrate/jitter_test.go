package orchestrate

import (
	"context"
	"testing"
	"time"
)

// TestJitterRange: Jitter(d) is uniform over [d/2, 3d/2) — enough spread
// to desynchronize a fleet's retries without ever collapsing a backoff
// to zero or more than doubling it.
func TestJitterRange(t *testing.T) {
	const d = 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := Jitter(d)
		if j < d/2 || j >= d+d/2 {
			t.Fatalf("Jitter(%v) = %v, outside [%v, %v)", d, j, d/2, d+d/2)
		}
	}
	if Jitter(0) != 0 {
		t.Error("Jitter(0) must stay 0")
	}
	if j := Jitter(-time.Second); j != -time.Second {
		t.Errorf("Jitter of a negative duration must pass through, got %v", j)
	}
}

// TestSetJobSourceOutsideJob: recording provenance on a context without
// a job-source holder is a safe no-op (RunFuncs may be called directly
// in tests and tools).
func TestSetJobSourceOutsideJob(t *testing.T) {
	SetJobSource(context.Background(), "remote:http://example")
}
