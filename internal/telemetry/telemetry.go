// Package telemetry is the repo's stdlib-only metrics substrate: a
// registry of named counters, gauges, and fixed-bucket histograms that
// the simulation stack (sim, predict, oracle, dvfs, orchestrate) updates
// at epoch and job boundaries, and that sinks read concurrently — a
// Prometheus-text/expvar HTTP endpoint for live campaigns, per-job
// snapshots merged into run manifests, and an end-of-run summary for the
// CLI.
//
// Design rules:
//
//   - Disabled means free. Every metric method is nil-receiver-safe and
//     a nil *Registry returns nil metrics from its constructors, so
//     instrumentation points compile to a nil check when no sink is
//     attached (BENCH_telemetry.json quantifies this).
//   - Writes never block reads. Counters are sharded atomics (shard
//     selection uses the runtime's per-thread fast random source, so
//     concurrent writers spread across cache lines); gauges and
//     histogram cells are single atomics. Snapshot reads are atomic
//     loads, safe concurrent with writes.
//   - Telemetry never feeds back into simulation: instrumented and
//     uninstrumented runs produce byte-identical results (the golden
//     test in internal/dvfs enforces this).
package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
)

// counterShards stripes each counter across cache lines; power of two.
const counterShards = 8

// cell is one padded counter stripe (64-byte cache line).
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sharded atomic counter. The zero
// value is ready to use; a nil *Counter ignores writes and reads as 0.
type Counter struct {
	cells [counterShards]cell
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	// rand.Uint64 draws from the runtime's per-thread generator: a few
	// nanoseconds, no shared state, and concurrent writers land on
	// different stripes with high probability.
	c.cells[rand.Uint64()&(counterShards-1)].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards. Safe concurrent with Add.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var n int64
	for i := range c.cells {
		n += c.cells[i].v.Load()
	}
	return n
}

// Gauge is an instantaneous float64 value. The zero value is ready; a
// nil *Gauge ignores writes and reads as 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (CAS loop; gauges are low-rate).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value loads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets: Observe(v) lands in
// the first bucket with v <= bound, else the overflow cell. A nil
// *Histogram ignores writes.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow (+Inf)
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
}

// NewHistogram builds a detached histogram (registries usually build
// them via Registry.Histogram). Bounds must be sorted ascending.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// snapshot reads the histogram concurrently with writers.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// DurationBuckets are the default bounds for phase spans, in seconds
// (0.1ms .. 100s, roughly logarithmic).
var DurationBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05,
	.1, .25, .5, 1, 2.5, 5, 10, 25, 50, 100,
}

// RatioBuckets are the default bounds for error/ratio histograms
// (mispredict magnitude, hit fractions).
var RatioBuckets = []float64{
	.01, .02, .05, .1, .15, .2, .3, .4, .5, .75, 1, 1.5, 2, 5,
}

// Registry is a named-metric namespace. The zero value is not usable;
// call New. A nil *Registry returns nil metrics from every constructor,
// making it the "disabled" state.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.setHelp(name, help)
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.setHelp(name, help)
	}
	return g
}

// Histogram returns (creating on first use) the named histogram. Bounds
// apply only on first creation; later calls return the existing
// histogram regardless of bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
		r.setHelp(name, help)
	}
	return h
}

// setHelp records help text for name (callers hold r.mu); the first
// non-empty help wins.
func (r *Registry) setHelp(name, help string) {
	if help != "" && r.help[name] == "" {
		r.help[name] = help
	}
}

// HistogramSnapshot is one histogram's point-in-time state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has len(Bounds)+1
	// entries, the last being the overflow (+Inf) bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
	// P50/P95/P99 are Quantile values precomputed at snapshot time so
	// manifest and BENCH consumers read tail latency without re-deriving
	// it from the buckets.
	P50 float64 `json:"p50,omitempty"`
	P95 float64 `json:"p95,omitempty"`
	P99 float64 `json:"p99,omitempty"`
}

// Mean returns the average observation (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-th quantile (q in [0,1]) by locating the
// bucket holding rank q*Count and interpolating linearly within it —
// the standard Prometheus histogram_quantile estimate, so values agree
// with dashboards scraping /metrics. Observations in the overflow
// bucket clamp to the highest bound (the estimate cannot exceed what
// the buckets resolve). Empty histograms report 0; a histogram with no
// bounds falls back to the mean.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if len(h.Bounds) == 0 {
		return h.Mean()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.Bounds) {
			break // overflow bucket: clamp below
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a point-in-time copy of a registry, safe to serialize.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric. Safe concurrent with writers; a nil
// registry snapshots empty.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = h.snapshot()
		}
	}
	return s
}

// Merge folds a snapshot into the registry: counters and histogram cells
// add, gauges take the snapshot's value. Histograms with mismatched
// bounds are skipped (bundle constructors use fixed bounds, so this only
// happens across incompatible versions). Merging per-job snapshots into
// a campaign-global registry is how live endpoints aggregate parallel
// runs. Nil registries ignore merges.
func (r *Registry) Merge(s Snapshot) {
	if r == nil {
		return
	}
	for n, v := range s.Counters {
		r.Counter(n, "").Add(v)
	}
	for n, v := range s.Gauges {
		r.Gauge(n, "").Set(v)
	}
	for n, hs := range s.Histograms {
		h := r.Histogram(n, "", hs.Bounds)
		if len(h.bounds) != len(hs.Bounds) {
			continue
		}
		same := true
		for i := range h.bounds {
			if h.bounds[i] != hs.Bounds[i] {
				same = false
				break
			}
		}
		if !same || len(hs.Counts) != len(h.counts) {
			continue
		}
		for i, c := range hs.Counts {
			h.counts[i].Add(c)
		}
		for {
			old := h.sum.Load()
			v := math.Float64frombits(old) + hs.Sum
			if h.sum.CompareAndSwap(old, math.Float64bits(v)) {
				break
			}
		}
	}
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Fprint renders the snapshot as an aligned, name-sorted summary — the
// pcstall-sim -stats output.
func (s Snapshot) Fprint(w io.Writer) {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, n := range names {
		if v, ok := s.Counters[n]; ok {
			fmt.Fprintf(w, "%-*s  %d\n", width, n, v)
		} else if v, ok := s.Gauges[n]; ok {
			fmt.Fprintf(w, "%-*s  %g\n", width, n, v)
		} else if h, ok := s.Histograms[n]; ok {
			fmt.Fprintf(w, "%-*s  count=%d sum=%.6g mean=%.6g p50=%.6g p95=%.6g p99=%.6g\n",
				width, n, h.Count, h.Sum, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
		}
	}
}
