package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters as `counter`, gauges as `gauge`, and
// histograms as cumulative `_bucket{le=...}` series with `_sum` and
// `_count`. A metric name may carry a literal label suffix — e.g.
// `serve_queue_depth{class="cold"}` — in which case every series sharing
// the base name is grouped under a single HELP/TYPE header, exactly as a
// labelled Prometheus metric family renders. Metric names in this repo
// are already legal Prometheus identifiers; anything else is sanitized.
// Safe concurrent with writers.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	lastBase := ""
	for _, n := range names {
		base, labels := splitSeries(n)
		if base != lastBase {
			if err := writeHeader(w, base, help[n], "counter"); err != nil {
				return err
			}
			lastBase = base
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", base, labels, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	lastBase = ""
	for _, n := range names {
		base, labels := splitSeries(n)
		if base != lastBase {
			if err := writeHeader(w, base, help[n], "gauge"); err != nil {
				return err
			}
			lastBase = base
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", base, labels, formatFloat(s.Gauges[n])); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		if err := writeHeader(w, n, help[n], "histogram"); err != nil {
			return err
		}
		sn := sanitize(n)
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", sn, formatFloat(bound), cum); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", sn, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", sn, formatFloat(h.Sum), sn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// writeHeader emits the optional HELP line and the TYPE line.
func writeHeader(w io.Writer, name, help, typ string) error {
	sn := sanitize(name)
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", sn, strings.ReplaceAll(help, "\n", " ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", sn, typ)
	return err
}

// splitSeries splits a registry name into its sanitized base identifier
// and a literal label suffix. `serve_shed_total{class="cold"}` yields
// ("serve_shed_total", `{class="cold"}`); an unlabelled name yields
// (sanitized name, ""). The label block is emitted verbatim — callers in
// this repo construct it from fixed class strings, never from input.
func splitSeries(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return sanitize(name[:i]), name[i:]
	}
	return sanitize(name), ""
}

// sanitize maps a metric name onto the Prometheus identifier alphabet.
func sanitize(name string) string {
	ok := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9') {
			continue
		}
		ok = false
		break
	}
	if ok && name != "" {
		return name
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9') {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// formatFloat renders a float the shortest round-trip way.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
