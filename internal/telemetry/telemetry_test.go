package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if v := c.Value(); v != 42 {
		t.Fatalf("counter value %d, want 42", v)
	}
}

func TestNilMetricsAreInert(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter read nonzero")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge read nonzero")
	}
	var h *Histogram
	h.Observe(1)
	if h.Bounds() != nil {
		t.Fatal("nil histogram has bounds")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil ||
		r.Histogram("x", "", RatioBuckets) != nil || r.Phase("x") != nil {
		t.Fatal("nil registry built a metric")
	}
	if s := r.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Fatal("nil registry snapshot not empty")
	}
	if r.Names() != nil {
		t.Fatal("nil registry has names")
	}
	r.Merge(Snapshot{Counters: map[string]int64{"x": 1}})
	var sp Span
	sp.End() // zero span must not panic
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge %g, want 2.5", g.Value())
	}
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge %g, want 1.5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{2, 1}) // unsorted on purpose
	for _, v := range []float64{0.5, 1, 1.5, 3} {
		h.Observe(v)
	}
	s := h.snapshot()
	if want := []float64{1, 2}; s.Bounds[0] != want[0] || s.Bounds[1] != want[1] {
		t.Fatalf("bounds not sorted: %v", s.Bounds)
	}
	// v <= bound lands in the bucket: {0.5, 1} -> le=1, {1.5} -> le=2,
	// {3} -> overflow.
	if s.Counts[0] != 2 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("counts %v", s.Counts)
	}
	if s.Count != 4 || s.Sum != 6 {
		t.Fatalf("count=%d sum=%g", s.Count, s.Sum)
	}
	if m := s.Mean(); m != 1.5 {
		t.Fatalf("mean %g", m)
	}
	if (HistogramSnapshot{}).Mean() != 0 {
		t.Fatal("empty mean not 0")
	}
}

func TestRegistryReturnsSameMetric(t *testing.T) {
	r := New()
	if r.Counter("c", "one") != r.Counter("c", "two") {
		t.Fatal("same counter name built two counters")
	}
	if r.Gauge("g", "") != r.Gauge("g", "") {
		t.Fatal("same gauge name built two gauges")
	}
	h := r.Histogram("h", "", []float64{1, 2})
	if h != r.Histogram("h", "", []float64{5}) {
		t.Fatal("same histogram name built two histograms")
	}
	if len(h.Bounds()) != 2 {
		t.Fatal("later bounds overwrote the first creation")
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "c" || names[1] != "g" || names[2] != "h" {
		t.Fatalf("names %v", names)
	}
}

func TestSnapshotAndMerge(t *testing.T) {
	a := New()
	a.Counter("runs", "").Add(5)
	a.Gauge("depth", "").Set(2.5)
	h := a.Histogram("err", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(3)

	s := a.Snapshot()
	if s.Counters["runs"] != 5 || s.Gauges["depth"] != 2.5 {
		t.Fatalf("snapshot %+v", s)
	}
	if hs := s.Histograms["err"]; hs.Count != 2 || hs.Sum != 3.5 {
		t.Fatalf("histogram snapshot %+v", hs)
	}

	b := New()
	b.Merge(s)
	b.Merge(s)
	bs := b.Snapshot()
	if bs.Counters["runs"] != 10 {
		t.Fatalf("merged counter %d, want 10", bs.Counters["runs"])
	}
	if bs.Gauges["depth"] != 2.5 {
		t.Fatalf("merged gauge %g, want 2.5 (set, not add)", bs.Gauges["depth"])
	}
	if hs := bs.Histograms["err"]; hs.Count != 4 || hs.Sum != 7 {
		t.Fatalf("merged histogram %+v", hs)
	}

	// Mismatched bounds must be skipped, not corrupt the histogram.
	c := New()
	c.Histogram("err", "", []float64{9}).Observe(1)
	c.Merge(s)
	if hs := c.Snapshot().Histograms["err"]; hs.Count != 1 {
		t.Fatalf("mismatched-bounds merge altered histogram: %+v", hs)
	}
}

func TestSnapshotFprint(t *testing.T) {
	r := New()
	r.Counter("sim_cycles_total", "").Add(100)
	r.Gauge("queue_depth", "").Set(3)
	r.Histogram("err", "", []float64{1}).Observe(0.5)
	var b strings.Builder
	r.Snapshot().Fprint(&b)
	out := b.String()
	for _, want := range []string{
		"err               count=1 sum=0.5 mean=0.5 p50=0.5 p95=0.95 p99=0.99\n",
		"queue_depth       3\n",
		"sim_cycles_total  100\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	// Observations 1..100 with decade bounds put exactly ten per bucket,
	// so linear interpolation lands on q*100 exactly.
	h := NewHistogram([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.snapshot()
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 50}, {0.95, 95}, {0.99, 99}, {0.1, 10}, {1, 100}, {0, 0},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if s.P50 != s.Quantile(0.5) || s.P95 != s.Quantile(0.95) || s.P99 != s.Quantile(0.99) {
		t.Fatalf("snapshot quantile fields disagree with Quantile: %+v", s)
	}

	// Out-of-range q clamps.
	if got := s.Quantile(1.5); got != s.Quantile(1) {
		t.Errorf("Quantile(1.5) = %g, want clamp to %g", got, s.Quantile(1))
	}
	if got := s.Quantile(-1); got != s.Quantile(0) {
		t.Errorf("Quantile(-1) = %g, want clamp to %g", got, s.Quantile(0))
	}

	// Empty histogram reports 0.
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}

	// Overflow observations clamp to the highest bound.
	o := NewHistogram([]float64{1})
	o.Observe(50)
	if got := o.snapshot().Quantile(0.99); got != 1 {
		t.Errorf("overflow Quantile = %g, want 1 (highest bound)", got)
	}

	// No bounds at all falls back to the mean.
	nb := NewHistogram(nil)
	nb.Observe(4)
	nb.Observe(6)
	if got := nb.snapshot().Quantile(0.5); got != 5 {
		t.Errorf("boundless Quantile = %g, want mean 5", got)
	}
}

func TestPhaseAndSpan(t *testing.T) {
	r := New()
	h := r.Phase("job_run")
	sp := StartSpan(h)
	sp.End()
	hs := r.Snapshot().Histograms["job_run_seconds"]
	if hs.Count != 1 {
		t.Fatalf("span not recorded: %+v", hs)
	}
	if hs.Sum < 0 {
		t.Fatalf("negative duration %g", hs.Sum)
	}
}

// TestConcurrentWritesAndSnapshots exercises the registry under -race:
// writers on all metric kinds racing snapshot readers and merges.
func TestConcurrentWritesAndSnapshots(t *testing.T) {
	r := New()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", RatioBuckets)
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%10) / 10)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		other := New()
		for i := 0; i < 200; i++ {
			s := r.Snapshot()
			other.Merge(s)
			_ = r.Names()
		}
	}()
	wg.Wait()
	<-done
	if v := c.Value(); v != workers*iters {
		t.Fatalf("counter %d, want %d", v, workers*iters)
	}
	if hs := r.Snapshot().Histograms["h"]; hs.Count != workers*iters {
		t.Fatalf("histogram count %d, want %d", hs.Count, workers*iters)
	}
}
