package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// expvarReg backs the process-wide "telemetry" expvar: the registry most
// recently wrapped in a Handler. expvar.Publish is global and panics on
// duplicate names, so the Func is published once and indirects here.
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce sync.Once
)

// Register mounts the observability endpoints on an existing mux:
//
//	/metrics       Prometheus text exposition
//	/debug/vars    expvar JSON (includes the registry under "telemetry")
//	/debug/pprof/  live profiling (CPU, heap, goroutine, trace, ...)
//
// It is the single wiring point every binary shares — pcstall-exp's
// standalone metrics listener and pcstall-serve's API listener mount
// exactly these routes, so the two cannot drift. Reads are safe
// concurrent with metric writers, so the endpoints can be served while
// a campaign runs. The caller owns the root path.
func Register(mux *http.ServeMux, r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler serves Register's endpoints plus a root index listing them —
// the standalone metrics listener (pcstall-exp -metrics-addr).
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	Register(mux, r)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "pcstall telemetry\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Serve listens on addr and serves Handler(r) in a background goroutine.
// It returns once the listener is bound (so scrapes cannot race startup)
// with the server and its resolved address; callers stop it with
// srv.Close or srv.Shutdown.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
