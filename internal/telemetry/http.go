package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
)

// expvarReg backs the process-wide "telemetry" expvar: the registry most
// recently wrapped in a Handler. expvar.Publish is global and panics on
// duplicate names, so the Func is published once and indirects here.
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce sync.Once
)

// buildInfo holds the pre-rendered pcstall_build_info exposition block.
// telemetry cannot import internal/version (version sits above
// orchestrate, which imports telemetry), so version's init pushes the
// identity down through SetBuildInfo instead.
var buildInfo atomic.Value // string

// SetBuildInfo records the process identity /metrics advertises as a
// constant pcstall_build_info gauge — the Prometheus idiom for "what is
// running here" (sim version + VCS revision as labels, value 1), so a
// scrape identifies a backend without hitting /v1/version.
func SetBuildInfo(simVersion, revision string) {
	var b strings.Builder
	b.WriteString("# HELP pcstall_build_info Constant 1; labels identify the running build.\n")
	b.WriteString("# TYPE pcstall_build_info gauge\n")
	fmt.Fprintf(&b, "pcstall_build_info{sim_version=%q,revision=%q} 1\n",
		strings.ReplaceAll(simVersion, `"`, `_`), strings.ReplaceAll(revision, `"`, `_`))
	buildInfo.Store(b.String())
}

// Register mounts the observability endpoints on an existing mux:
//
//	/metrics       Prometheus text exposition
//	/debug/vars    expvar JSON (includes the registry under "telemetry")
//	/debug/pprof/  live profiling (CPU, heap, goroutine, trace, ...)
//
// It is the single wiring point every binary shares — pcstall-exp's
// standalone metrics listener and pcstall-serve's API listener mount
// exactly these routes, so the two cannot drift. Reads are safe
// concurrent with metric writers, so the endpoints can be served while
// a campaign runs. The caller owns the root path.
func Register(mux *http.ServeMux, r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if bi, ok := buildInfo.Load().(string); ok {
			_, _ = io.WriteString(w, bi)
		}
		_ = r.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler serves Register's endpoints plus a root index listing them —
// the standalone metrics listener (pcstall-exp -metrics-addr). Extra
// mounts let callers co-host related debug routes (tracing.Register)
// on the same listener.
func Handler(r *Registry, mounts ...func(*http.ServeMux)) http.Handler {
	mux := http.NewServeMux()
	Register(mux, r)
	for _, m := range mounts {
		m(mux)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "pcstall telemetry\n\n/metrics\n/debug/vars\n/debug/pprof/\n/debug/traces\n")
	})
	return mux
}

// Serve listens on addr and serves Handler(r, mounts...) in a
// background goroutine. It returns once the listener is bound (so
// scrapes cannot race startup) with the server and its resolved
// address; callers stop it with srv.Close or srv.Shutdown.
func Serve(addr string, r *Registry, mounts ...func(*http.ServeMux)) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r, mounts...)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
