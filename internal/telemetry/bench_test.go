package telemetry

import "testing"

// The disabled path is the one every simulation pays: instrumentation
// against a nil registry must reduce to a nil check per call site.

func BenchmarkCounterAddDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("x", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddEnabled(b *testing.B) {
	c := New().Counter("x", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := New().Counter("x", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.5)
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	h := NewHistogram(RatioBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.5)
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartSpan(nil).End()
	}
}
