package telemetry

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("a_total", "alpha").Add(3)
	r.Gauge("g", "gee").Set(2.5)
	h := r.Histogram("h", "aitch", []float64{1, 2})
	for _, v := range []float64{0.5, 1.5, 3} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_total alpha
# TYPE a_total counter
a_total 3
# HELP g gee
# TYPE g gauge
g 2.5
# HELP h aitch
# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="2"} 2
h_bucket{le="+Inf"} 3
h_sum 5
h_count 3
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestWritePrometheusNil(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", b.String(), err)
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"ok_name_total": "ok_name_total",
		"bad name!":     "bad_name_",
		"1x":            "_x",
		"":              "_",
		"a:b":           "a:b",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Fatalf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
