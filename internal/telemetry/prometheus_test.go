package telemetry

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("a_total", "alpha").Add(3)
	r.Gauge("g", "gee").Set(2.5)
	h := r.Histogram("h", "aitch", []float64{1, 2})
	for _, v := range []float64{0.5, 1.5, 3} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_total alpha
# TYPE a_total counter
a_total 3
# HELP g gee
# TYPE g gauge
g 2.5
# HELP h aitch
# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="2"} 2
h_bucket{le="+Inf"} 3
h_sum 5
h_count 3
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestWritePrometheusLabelledSeries: registry names carrying a literal
// {label="value"} suffix render as one Prometheus metric family — a
// single HELP/TYPE header over every series of the base name, labels
// preserved verbatim. The serving layer's per-class queue metrics
// (serve_queue_depth{class="cold"} etc.) rely on exactly this grouping.
func TestWritePrometheusLabelledSeries(t *testing.T) {
	r := New()
	r.Counter(`shed_total{class="cold"}`, "sheds by lane").Add(7)
	r.Counter(`shed_total{class="figure"}`, "sheds by lane").Add(2)
	r.Gauge(`depth{class="cold"}`, "depth by lane").Set(3)
	r.Gauge(`depth{class="figure"}`, "depth by lane").Set(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP shed_total sheds by lane
# TYPE shed_total counter
shed_total{class="cold"} 7
shed_total{class="figure"} 2
# HELP depth depth by lane
# TYPE depth gauge
depth{class="cold"} 3
depth{class="figure"} 1
`
	if b.String() != want {
		t.Fatalf("labelled exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestSplitSeries(t *testing.T) {
	cases := []struct{ in, base, labels string }{
		{`x_total{class="a"}`, "x_total", `{class="a"}`},
		{"x_total", "x_total", ""},
		{"x{", "x_", ""}, // unterminated label block: sanitized whole
		{"bad name", "bad_name", ""},
	}
	for _, c := range cases {
		base, labels := splitSeries(c.in)
		if base != c.base || labels != c.labels {
			t.Fatalf("splitSeries(%q) = (%q, %q), want (%q, %q)", c.in, base, labels, c.base, c.labels)
		}
	}
}

func TestWritePrometheusNil(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", b.String(), err)
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"ok_name_total": "ok_name_total",
		"bad name!":     "bad_name_",
		"1x":            "_x",
		"":              "_",
		"a:b":           "a:b",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Fatalf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
