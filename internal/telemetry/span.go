package telemetry

import "time"

// Span measures one phase of work into a duration histogram. Spans are
// values: StartSpan captures the start time, End records the elapsed
// seconds. A span over a nil histogram is free on both ends (no clock
// read), so phase instrumentation costs nothing when telemetry is off.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins a span that End will record into h.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End records the span's wall-clock duration. Safe on the zero Span.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.start).Seconds())
}

// Phase returns (creating on first use) the named phase-span histogram
// with the standard duration buckets. Use with StartSpan:
//
//	defer telemetry.StartSpan(reg.Phase("orchestrate_job_run")).End()
func (r *Registry) Phase(name string) *Histogram {
	return r.Histogram(name+"_seconds", "wall-clock seconds spent in the "+name+" phase", DurationBuckets)
}
