package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	r := New()
	r.Counter("sim_cycles_total", "core cycles").Add(7)
	h := Handler(r)

	res, body := get(t, h, "/metrics")
	if res.StatusCode != 200 {
		t.Fatalf("/metrics status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "sim_cycles_total 7") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	res, body = get(t, h, "/debug/vars")
	if res.StatusCode != 200 {
		t.Fatalf("/debug/vars status %d", res.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(vars["telemetry"], &snap); err != nil {
		t.Fatalf("telemetry expvar: %v", err)
	}
	if snap.Counters["sim_cycles_total"] != 7 {
		t.Fatalf("expvar snapshot %+v", snap)
	}

	if res, _ := get(t, h, "/debug/pprof/"); res.StatusCode != 200 {
		t.Fatalf("/debug/pprof/ status %d", res.StatusCode)
	}
	if res, body := get(t, h, "/"); res.StatusCode != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index status %d body %q", res.StatusCode, body)
	}
	if res, _ := get(t, h, "/nope"); res.StatusCode != 404 {
		t.Fatalf("unknown path status %d, want 404", res.StatusCode)
	}
}

func TestBuildInfoGauge(t *testing.T) {
	SetBuildInfo("pcstall-sim-v1", "abc123def456")
	_, body := get(t, Handler(New()), "/metrics")
	want := `pcstall_build_info{sim_version="pcstall-sim-v1",revision="abc123def456"} 1`
	if !strings.Contains(body, want) {
		t.Fatalf("/metrics missing %q:\n%s", want, body)
	}
	if !strings.Contains(body, "# TYPE pcstall_build_info gauge") {
		t.Fatalf("/metrics missing build_info TYPE line:\n%s", body)
	}
}

func TestHandlerExtraMounts(t *testing.T) {
	h := Handler(New(), func(mux *http.ServeMux) {
		mux.HandleFunc("/debug/extra", func(w http.ResponseWriter, _ *http.Request) {
			_, _ = w.Write([]byte("mounted"))
		})
	})
	if res, body := get(t, h, "/debug/extra"); res.StatusCode != 200 || body != "mounted" {
		t.Fatalf("extra mount status %d body %q", res.StatusCode, body)
	}
}

// TestHandlerRebindsExpvar checks the process-global expvar tracks the
// most recent Handler registry instead of panicking on re-publish.
func TestHandlerRebindsExpvar(t *testing.T) {
	a := New()
	a.Counter("x", "").Add(1)
	_ = Handler(a)
	b := New()
	b.Counter("x", "").Add(2)
	h := Handler(b)
	_, body := get(t, h, "/debug/vars")
	if !strings.Contains(body, `"x":2`) && !strings.Contains(body, `"x": 2`) {
		t.Fatalf("expvar still bound to the old registry:\n%s", body)
	}
}

func TestServe(t *testing.T) {
	r := New()
	r.Counter("live_total", "").Add(3)
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, _ := io.ReadAll(res.Body)
	if !strings.Contains(string(body), "live_total 3") {
		t.Fatalf("live scrape missing counter:\n%s", body)
	}
}
