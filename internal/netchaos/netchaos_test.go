package netchaos

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestSpecRoundTrip(t *testing.T) {
	cases := []Config{
		{},
		{Seed: 7, FlipProb: 0.25},
		{RefuseProb: 0.1, DialLatency: 50 * time.Millisecond, HeaderLatency: 120 * time.Millisecond},
		{StallProb: 0.2, TruncateProb: 0.1, Err5xxProb: 0.3, Err429Prob: 0.05, ResetProb: 0.15, DupProb: 0.125, Seed: 42},
		Level(0.35, 9),
	}
	for _, c := range cases {
		spec := c.String()
		got, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got != c {
			t.Errorf("round-trip %q: got %+v, want %+v", spec, got, c)
		}
	}
	if (Config{}).String() != "" {
		t.Error("disabled config must render as empty spec")
	}
}

func TestParseLevelAndErrors(t *testing.T) {
	c, err := Parse("level=0.2,seed=5")
	if err != nil {
		t.Fatalf("level spec: %v", err)
	}
	if c != Level(0.2, 5) {
		t.Errorf("level spec expanded to %+v, want %+v", c, Level(0.2, 5))
	}
	for _, bad := range []string{
		"flip", "flip=x", "flip=1.5", "refuse=-0.1", "dlat=banana", "unknown=1", "seed=-2",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted, want error", bad)
		}
	}
}

func TestPlanDeterminism(t *testing.T) {
	cfg := Level(0.4, 77)
	a, b := NewEngine(cfg), NewEngine(cfg)
	for i := 0; i < 500; i++ {
		if pa, pb := a.Plan(), b.Plan(); pa != pb {
			t.Fatalf("plan %d diverged: %+v vs %+v", i, pa, pb)
		}
	}
	other := NewEngine(Level(0.4, 78))
	same := 0
	for i := 0; i < 500; i++ {
		if a.Plan().Class == other.Plan().Class {
			same++
		}
	}
	if same == 500 {
		t.Error("different seeds planned identical class sequences")
	}
}

// Zeroing one class out must not reshuffle the decisions of the others:
// every exchange draws the same fixed random sequence.
func TestPlanDrawCountInvariance(t *testing.T) {
	full := Level(0.4, 3)
	noTrunc := full
	noTrunc.TruncateProb = 0
	a, b := NewEngine(full), NewEngine(noTrunc)
	for i := 0; i < 300; i++ {
		pa, pb := a.Plan(), b.Plan()
		if pa.FlipBit != pb.FlipBit || pa.DialDelay != pb.DialDelay || pa.HeaderDelay != pb.HeaderDelay {
			t.Fatalf("plan %d: non-class fields diverged after zeroing trunc: %+v vs %+v", i, pa, pb)
		}
		if pa.Class != ClassTruncate && pa.Class != pb.Class {
			t.Fatalf("plan %d: class %q became %q after zeroing trunc", i, pa.Class, pb.Class)
		}
		if pa.Class == ClassTruncate && pb.Class == ClassTruncate {
			t.Fatalf("plan %d: zeroed class still fired", i)
		}
	}
}

func TestNilEngineIsNoop(t *testing.T) {
	var e *Engine
	if e.Enabled() {
		t.Error("nil engine reports enabled")
	}
	if p := e.Plan(); p != (Plan{}) {
		t.Errorf("nil engine planned %+v", p)
	}
	if s := e.Stats(); s != (Stats{}) {
		t.Errorf("nil engine has stats %+v", s)
	}
}

// simBody is the canonical settled body the test backend serves.
const simBody = `{"id":"k","result":{"ok":true},"pad":"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}` + "\n"

// newBackend serves simBody on POST /v1/sim and counts hits.
func newBackend(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/sim" {
			hits.Add(1)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Pcstall-Digest", "fnv1a64:0000000000000000")
		io.WriteString(w, simBody)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

// oneShot builds a client whose transport injects exactly cfg.
func oneShot(cfg Config) *http.Client {
	return &http.Client{Transport: NewTransport(nil, NewEngine(cfg))}
}

func postSim(t *testing.T, hc *http.Client, base string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/sim", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	return hc.Do(req)
}

func TestTransportPassthrough(t *testing.T) {
	srv, _ := newBackend(t)
	for name, eng := range map[string]*Engine{
		"nil engine":      nil,
		"disabled config": NewEngine(Config{Seed: 9}),
	} {
		hc := &http.Client{Transport: NewTransport(nil, eng)}
		resp, err := postSim(t, hc, srv.URL)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != simBody {
			t.Errorf("%s: body altered through passthrough", name)
		}
		if got := resp.Header.Get("X-Pcstall-Digest"); got != "fnv1a64:0000000000000000" {
			t.Errorf("%s: digest header lost: %q", name, got)
		}
		if st := eng.Stats(); st.Exchanges != 0 {
			t.Errorf("%s: passthrough drew plans: %+v", name, st)
		}
	}
}

func TestTransportScopesToSim(t *testing.T) {
	srv, _ := newBackend(t)
	eng := NewEngine(Config{RefuseProb: 1})
	hc := &http.Client{Transport: NewTransport(nil, eng)}
	// Control-plane paths must never fault, even at refuse=1.
	for _, path := range []string{"/healthz", "/v1/version"} {
		resp, err := hc.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s under refuse=1: %v", path, err)
		}
		resp.Body.Close()
	}
	if _, err := postSim(t, hc, srv.URL); err == nil {
		t.Fatal("POST /v1/sim under refuse=1 succeeded")
	}
	if st := eng.Stats(); st.Exchanges != 1 || st.Refused != 1 {
		t.Errorf("stats %+v, want exactly one refused exchange", st)
	}
}

func TestTransportFaultClasses(t *testing.T) {
	srv, hits := newBackend(t)

	t.Run("refuse", func(t *testing.T) {
		before := hits.Load()
		_, err := postSim(t, oneShot(Config{RefuseProb: 1}), srv.URL)
		var fe *FaultError
		if !errors.As(err, &fe) || fe.Class != ClassRefuse {
			t.Fatalf("err = %v, want refuse FaultError", err)
		}
		if hits.Load() != before {
			t.Error("refused exchange reached the backend")
		}
	})

	t.Run("e5xx and e429 are fabricated", func(t *testing.T) {
		before := hits.Load()
		resp, err := postSim(t, oneShot(Config{Err5xxProb: 1}), srv.URL)
		if err != nil || resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("got %v/%v, want synthetic 500", resp, err)
		}
		resp.Body.Close()
		resp, err = postSim(t, oneShot(Config{Err429Prob: 1}), srv.URL)
		if err != nil || resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("got %v/%v, want synthetic 429", resp, err)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("synthetic 429 missing Retry-After")
		}
		resp.Body.Close()
		if hits.Load() != before {
			t.Error("fabricated responses contacted the backend")
		}
	})

	t.Run("flip corrupts one byte, length preserved", func(t *testing.T) {
		resp, err := postSim(t, oneShot(Config{FlipProb: 1}), srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if len(body) != len(simBody) {
			t.Fatalf("flip changed length: %d != %d", len(body), len(simBody))
		}
		diff := 0
		for i := range body {
			if body[i] != simBody[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Errorf("flip changed %d bytes, want 1", diff)
		}
	})

	t.Run("dup doubles the body", func(t *testing.T) {
		resp, err := postSim(t, oneShot(Config{DupProb: 1}), srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != simBody+simBody {
			t.Errorf("dup body = %d bytes, want doubled original", len(body))
		}
	})

	t.Run("trunc surfaces unexpected EOF mid-read", func(t *testing.T) {
		resp, err := postSim(t, oneShot(Config{TruncateProb: 1}), srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !errors.Is(rerr, io.ErrUnexpectedEOF) {
			t.Fatalf("read err = %v, want unexpected EOF", rerr)
		}
		if len(body) >= len(simBody) {
			t.Error("trunc delivered the whole body")
		}
	})

	t.Run("reset surfaces a FaultError mid-read", func(t *testing.T) {
		resp, err := postSim(t, oneShot(Config{ResetProb: 1}), srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		var fe *FaultError
		if !errors.As(rerr, &fe) || fe.Class != ClassReset {
			t.Fatalf("read err = %v, want reset FaultError", rerr)
		}
	})

	t.Run("stall blocks until the context ends", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/sim", strings.NewReader(`{}`))
		resp, err := oneShot(Config{StallProb: 1}).Do(req)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil {
			t.Fatal("stalled body read completed cleanly")
		}
		if time.Since(start) < 50*time.Millisecond {
			t.Error("stall returned before the context deadline")
		}
	})

	t.Run("latency delays but does not corrupt", func(t *testing.T) {
		hc := oneShot(Config{DialLatency: 30 * time.Millisecond, HeaderLatency: 30 * time.Millisecond})
		start := time.Now()
		resp, err := postSim(t, hc, srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		_ = time.Since(start) // delays are uniform in [0,max): may be ~0
		if string(body) != simBody {
			t.Error("latency fault altered the body")
		}
	})
}

func newProxy(t *testing.T, backend string, cfg Config) (*httptest.Server, *Engine) {
	t.Helper()
	eng := NewEngine(cfg)
	srv := httptest.NewServer(NewProxy(backend, eng, nil))
	t.Cleanup(srv.Close)
	return srv, eng
}

func TestProxyTransparentWhenDisabled(t *testing.T) {
	srv, _ := newBackend(t)
	proxy, eng := newProxy(t, srv.URL, Config{})
	resp, err := postSim(t, http.DefaultClient, proxy.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != simBody {
		t.Error("disabled proxy altered the body")
	}
	if resp.Header.Get("X-Pcstall-Digest") == "" {
		t.Error("disabled proxy dropped the digest header")
	}
	if eng.Stats().Exchanges != 0 {
		t.Error("disabled proxy drew plans")
	}
}

func TestProxyFaultClasses(t *testing.T) {
	srv, hits := newBackend(t)

	t.Run("refuse severs without contacting the backend", func(t *testing.T) {
		proxy, _ := newProxy(t, srv.URL, Config{RefuseProb: 1})
		before := hits.Load()
		if _, err := postSim(t, http.DefaultClient, proxy.URL); err == nil {
			t.Fatal("refused exchange succeeded")
		}
		if hits.Load() != before {
			t.Error("refused exchange reached the backend")
		}
	})

	t.Run("e429 fabricated with Retry-After", func(t *testing.T) {
		proxy, _ := newProxy(t, srv.URL, Config{Err429Prob: 1})
		before := hits.Load()
		resp, err := postSim(t, http.DefaultClient, proxy.URL)
		if err != nil || resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("got %v/%v, want 429", resp, err)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("429 missing Retry-After")
		}
		resp.Body.Close()
		if hits.Load() != before {
			t.Error("fabricated 429 contacted the backend")
		}
	})

	t.Run("flip corrupts exactly one byte", func(t *testing.T) {
		proxy, _ := newProxy(t, srv.URL, Config{FlipProb: 1})
		resp, err := postSim(t, http.DefaultClient, proxy.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if len(body) != len(simBody) || string(body) == simBody {
			t.Errorf("flip body: len %d (want %d), changed=%v", len(body), len(simBody), string(body) != simBody)
		}
	})

	t.Run("dup doubles the body", func(t *testing.T) {
		proxy, _ := newProxy(t, srv.URL, Config{DupProb: 1})
		resp, err := postSim(t, http.DefaultClient, proxy.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != simBody+simBody {
			t.Errorf("dup delivered %d bytes, want doubled body", len(body))
		}
	})

	t.Run("trunc yields unexpected EOF", func(t *testing.T) {
		proxy, _ := newProxy(t, srv.URL, Config{TruncateProb: 1})
		resp, err := postSim(t, http.DefaultClient, proxy.URL)
		if err != nil {
			t.Fatal(err)
		}
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil {
			t.Fatal("truncated body read completed cleanly")
		}
	})

	t.Run("reset severs after backend answered", func(t *testing.T) {
		proxy, _ := newProxy(t, srv.URL, Config{ResetProb: 1})
		before := hits.Load()
		resp, err := postSim(t, http.DefaultClient, proxy.URL)
		if err == nil {
			_, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil {
				t.Fatal("reset exchange delivered a full body")
			}
		}
		if hits.Load() != before+1 {
			t.Error("reset should fire after the backend answered")
		}
	})

	t.Run("stall bounded by client deadline", func(t *testing.T) {
		proxy, _ := newProxy(t, srv.URL, Config{StallProb: 1})
		hc := &http.Client{Timeout: 150 * time.Millisecond}
		resp, err := postSim(t, hc, proxy.URL)
		if err == nil {
			_, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil {
				t.Fatal("stalled exchange delivered a full body")
			}
		}
	})

	t.Run("control plane passes clean and stats are served", func(t *testing.T) {
		proxy, eng := newProxy(t, srv.URL, Config{RefuseProb: 1})
		resp, err := http.Get(proxy.URL + "/healthz")
		if err != nil {
			t.Fatalf("healthz through hostile proxy: %v", err)
		}
		resp.Body.Close()
		if _, err := postSim(t, http.DefaultClient, proxy.URL); err == nil {
			t.Fatal("sim exchange survived refuse=1")
		}
		resp, err = http.Get(proxy.URL + StatsPath)
		if err != nil {
			t.Fatal(err)
		}
		var st Stats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("stats decode: %v", err)
		}
		resp.Body.Close()
		if st != eng.Stats() || st.Refused != 1 {
			t.Errorf("served stats %+v, engine has %+v", st, eng.Stats())
		}
	})
}

// The two delivery vehicles must agree: same (seed, spec), same arrival
// order → the same class sequence observed end to end.
func TestTransportAndProxyShareSchedule(t *testing.T) {
	cfg := Config{FlipProb: 0.5, Seed: 123}
	a, b := NewEngine(cfg), NewEngine(cfg)
	for i := 0; i < 100; i++ {
		if pa, pb := a.Plan(), b.Plan(); pa != pb {
			t.Fatalf("exchange %d: transport plan %+v != proxy plan %+v", i, pa, pb)
		}
	}
}
