// Package netchaos implements seeded, deterministic network fault
// injection for the fleet protocol: the wire between a dist coordinator
// and its pcstall-serve backends lies in controlled, reproducible ways.
//
// It is internal/chaos's sibling one layer down. chaos perturbs the
// observations a governor sees inside one simulation; netchaos perturbs
// the HTTP exchanges that carry settled results between machines —
// refused dials, slow connects, stalled and truncated bodies, flipped
// payload bytes, fabricated 5xx/429 answers, reset connections, and
// duplicated replies. All randomness flows from one xrand.State seeded
// by Config.Seed, so a fault schedule at a fixed (seed, spec) is exactly
// reproducible, and a disabled Config is a guaranteed no-op passthrough:
// fleet campaigns with netchaos off are byte-identical to today.
//
// The engine plans faults; two delivery vehicles apply them. Transport
// wraps an http.RoundTripper for in-process injection under dist.Client,
// and Proxy is a standalone reverse proxy for black-box tests and CI
// smokes where the coordinator must not know faults exist. Only
// POST /v1/sim exchanges are faulted: /healthz and /v1/version pass
// clean so quarantine healing and version admission stay truthful —
// the point is to corrupt results in flight, not to blind the fleet's
// control plane.
package netchaos

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"pcstall/internal/telemetry"
	"pcstall/internal/xrand"
)

// Class names one terminal fault kind. A Plan carries at most one
// terminal class per exchange (latency composes with any of them), so
// every observed failure is attributable to exactly one injected cause.
type Class string

const (
	// ClassNone marks a clean exchange (possibly still delayed).
	ClassNone Class = ""
	// ClassRefuse refuses the exchange before it reaches the backend,
	// like a dial to a dead port.
	ClassRefuse Class = "refuse"
	// ClassReset delivers response headers and part of the body, then
	// kills the connection, like a mid-stream RST.
	ClassReset Class = "reset"
	// Class5xx fabricates a 500 without consulting the backend.
	Class5xx Class = "e5xx"
	// Class429 fabricates a 429 with a Retry-After, without consulting
	// the backend.
	Class429 Class = "e429"
	// ClassStall delivers part of the body then hangs until the caller
	// gives up — the black-hole fault transport deadlines exist for.
	ClassStall Class = "stall"
	// ClassTruncate ends the body early under a Content-Length that
	// promised more.
	ClassTruncate Class = "trunc"
	// ClassFlip corrupts one payload byte, length preserved.
	ClassFlip Class = "flip"
	// ClassDup delivers the body twice under a doubled Content-Length.
	ClassDup Class = "dup"
)

// Config describes a network fault campaign. The zero value injects
// nothing. Config is a plain comparable value round-trippable through
// String/Parse, like chaos.Config.
type Config struct {
	// Seed selects the fault stream; equal Configs plan identical
	// per-exchange faults.
	Seed uint64
	// RefuseProb is the probability an exchange is refused outright.
	RefuseProb float64
	// DialLatency is the maximum extra pre-connect delay; each exchange
	// draws uniformly from [0, DialLatency).
	DialLatency time.Duration
	// HeaderLatency is the maximum extra delay before response headers;
	// each exchange draws uniformly from [0, HeaderLatency).
	HeaderLatency time.Duration
	// StallProb is the probability the body hangs mid-transfer.
	StallProb float64
	// TruncateProb is the probability the body ends early.
	TruncateProb float64
	// FlipProb is the probability one body byte is corrupted.
	FlipProb float64
	// Err5xxProb is the probability a 500 is fabricated.
	Err5xxProb float64
	// Err429Prob is the probability a 429 is fabricated.
	Err429Prob float64
	// ResetProb is the probability the connection dies mid-body.
	ResetProb float64
	// DupProb is the probability the body is delivered twice.
	DupProb float64
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.RefuseProb > 0 || c.DialLatency > 0 || c.HeaderLatency > 0 ||
		c.StallProb > 0 || c.TruncateProb > 0 || c.FlipProb > 0 ||
		c.Err5xxProb > 0 || c.Err429Prob > 0 || c.ResetProb > 0 || c.DupProb > 0
}

// Validate checks ranges: probabilities in [0,1], latencies non-negative.
func (c Config) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"refuse", c.RefuseProb}, {"stall", c.StallProb},
		{"trunc", c.TruncateProb}, {"flip", c.FlipProb},
		{"e5xx", c.Err5xxProb}, {"e429", c.Err429Prob},
		{"reset", c.ResetProb}, {"dup", c.DupProb},
	}
	for _, p := range probs {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return fmt.Errorf("netchaos: %s probability %v out of [0,1]", p.name, p.v)
		}
	}
	if c.DialLatency < 0 || c.HeaderLatency < 0 {
		return fmt.Errorf("netchaos: latencies must be non-negative (dlat=%s, hlat=%s)",
			c.DialLatency, c.HeaderLatency)
	}
	return nil
}

// String renders the config as a canonical spec parseable by Parse:
// fixed field order, only non-default fields, "" for a config that
// injects nothing. Equal configs render identically.
func (c Config) String() string {
	if !c.Enabled() {
		return ""
	}
	var parts []string
	addP := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, k+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	addD := func(k string, v time.Duration) {
		if v > 0 {
			parts = append(parts, k+"="+v.String())
		}
	}
	addP("refuse", c.RefuseProb)
	addD("dlat", c.DialLatency)
	addD("hlat", c.HeaderLatency)
	addP("stall", c.StallProb)
	addP("trunc", c.TruncateProb)
	addP("flip", c.FlipProb)
	addP("e5xx", c.Err5xxProb)
	addP("e429", c.Err429Prob)
	addP("reset", c.ResetProb)
	addP("dup", c.DupProb)
	if c.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatUint(c.Seed, 10))
	}
	return strings.Join(parts, ",")
}

// Parse builds a Config from a comma-separated key=value spec, e.g.
// "flip=0.2,stall=0.1,dlat=50ms,seed=9". Keys: refuse, dlat, hlat,
// stall, trunc, flip, e5xx, e429, reset, dup, seed, and level
// (shorthand expanding to the Level profile). Latencies take Go
// duration syntax ("100ms"). An empty spec is the disabled config.
func Parse(spec string) (Config, error) {
	var c Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return c, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return Config{}, fmt.Errorf("netchaos: bad field %q (want key=value)", field)
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		switch k {
		case "seed":
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("netchaos: bad seed %q: %v", v, err)
			}
			c.Seed = seed
		case "dlat", "hlat":
			d, err := time.ParseDuration(v)
			if err != nil {
				return Config{}, fmt.Errorf("netchaos: bad duration for %s: %q", k, v)
			}
			if k == "dlat" {
				c.DialLatency = d
			} else {
				c.HeaderLatency = d
			}
		default:
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Config{}, fmt.Errorf("netchaos: bad value for %s: %q", k, v)
			}
			switch k {
			case "refuse":
				c.RefuseProb = f
			case "stall":
				c.StallProb = f
			case "trunc":
				c.TruncateProb = f
			case "flip":
				c.FlipProb = f
			case "e5xx":
				c.Err5xxProb = f
			case "e429":
				c.Err429Prob = f
			case "reset":
				c.ResetProb = f
			case "dup":
				c.DupProb = f
			case "level":
				c = Level(f, c.Seed)
			default:
				return Config{}, fmt.Errorf("netchaos: unknown field %q", k)
			}
		}
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Level maps one scalar fault intensity l (0 = clean wire, ~0.4 =
// actively hostile network) onto a full profile touching every fault
// class, so a robustness sweep spans the whole surface on one axis.
func Level(l float64, seed uint64) Config {
	if l <= 0 {
		return Config{Seed: seed}
	}
	clamp1 := func(v float64) float64 {
		if v > 1 {
			return 1
		}
		return v
	}
	return Config{
		Seed:          seed,
		RefuseProb:    clamp1(l / 4),
		DialLatency:   time.Duration(l * float64(100*time.Millisecond)),
		HeaderLatency: time.Duration(l * float64(200*time.Millisecond)),
		StallProb:     clamp1(l / 6),
		TruncateProb:  clamp1(l / 6),
		FlipProb:      clamp1(l / 4),
		Err5xxProb:    clamp1(l / 4),
		Err429Prob:    clamp1(l / 8),
		ResetProb:     clamp1(l / 6),
		DupProb:       clamp1(l / 8),
	}
}

// Plan is one exchange's fate, decided up front so both delivery
// vehicles (Transport and Proxy) apply identical faults for identical
// (seed, spec, exchange-index) triples.
type Plan struct {
	// Exchange is the 1-based arrival index of the faultable exchange.
	Exchange int64
	// Class is the single terminal fault, ClassNone for a clean pass.
	Class Class
	// DialDelay is extra latency before the backend is contacted.
	DialDelay time.Duration
	// HeaderDelay is extra latency before response headers are released.
	HeaderDelay time.Duration
	// FlipBit selects which byte and bit ClassFlip corrupts: byte index
	// FlipBit/8 mod body length, bit FlipBit%8.
	FlipBit uint64
}

// Stats counts faults an Engine actually planned.
type Stats struct {
	Exchanges    int64         `json:"exchanges"`
	Clean        int64         `json:"clean"`
	Refused      int64         `json:"refused"`
	Stalled      int64         `json:"stalled"`
	Truncated    int64         `json:"truncated"`
	Flipped      int64         `json:"flipped"`
	Injected5xx  int64         `json:"injected_5xx"`
	Injected429  int64         `json:"injected_429"`
	Reset        int64         `json:"reset"`
	Duplicated   int64         `json:"duplicated"`
	DialDelays   int64         `json:"dial_delays"`
	HeaderDelays int64         `json:"header_delays"`
	DelayTotal   time.Duration `json:"delay_total_ns"`
}

// Injected is the number of exchanges that carried a terminal fault.
func (s Stats) Injected() int64 { return s.Exchanges - s.Clean }

// Engine plans the faults a Config describes. It is safe for concurrent
// use (exchanges arrive from many dispatch goroutines); the plan
// sequence is a pure function of (seed, spec) and the arrival order of
// exchanges. A nil *Engine plans nothing.
type Engine struct {
	cfg Config

	mu  sync.Mutex
	rng xrand.State
	n   int64
	st  Stats

	tele *netchaosTelemetry
}

// NewEngine builds an engine for cfg. Call cfg.Validate first; NewEngine
// assumes a valid config. A disabled config yields an engine whose every
// plan is clean.
func NewEngine(cfg Config) *Engine {
	return &Engine{cfg: cfg, rng: xrand.New(cfg.Seed ^ 0x9e7c4a05f4017ace)}
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config {
	if e == nil {
		return Config{}
	}
	return e.cfg
}

// Enabled reports whether this engine can inject anything.
func (e *Engine) Enabled() bool { return e != nil && e.cfg.Enabled() }

// Stats returns the faults planned so far.
func (e *Engine) Stats() Stats {
	if e == nil {
		return Stats{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.st
}

// Publish mirrors the engine's counters onto a telemetry registry as
// netchaos_* metrics. Call once, before traffic.
func (e *Engine) Publish(r *telemetry.Registry) {
	if e == nil || r == nil {
		return
	}
	e.mu.Lock()
	e.tele = newNetchaosTelemetry(r)
	e.mu.Unlock()
}

// Plan decides the fate of the next faultable exchange. Every plan
// draws the same fixed sequence of randoms regardless of which fields
// are enabled, so the schedule at a given exchange index is stable
// across config edits that merely zero a class out — and identical
// between Transport and Proxy deliveries.
func (e *Engine) Plan() Plan {
	if e == nil {
		return Plan{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.n++
	p := Plan{Exchange: e.n}
	// Fixed draw order: refuse, dial, header, e5xx, e429, reset, stall,
	// trunc, flip, dup, flip-bit. Never branch before a draw.
	rRefuse := e.rng.Float64()
	rDial := e.rng.Float64()
	rHeader := e.rng.Float64()
	r5xx := e.rng.Float64()
	r429 := e.rng.Float64()
	rReset := e.rng.Float64()
	rStall := e.rng.Float64()
	rTrunc := e.rng.Float64()
	rFlip := e.rng.Float64()
	rDup := e.rng.Float64()
	flipBit := e.rng.Uint64()

	if e.cfg.DialLatency > 0 {
		p.DialDelay = time.Duration(rDial * float64(e.cfg.DialLatency))
	}
	if e.cfg.HeaderLatency > 0 {
		p.HeaderDelay = time.Duration(rHeader * float64(e.cfg.HeaderLatency))
	}
	p.FlipBit = flipBit
	// One terminal fault per exchange, first match wins; ordered from
	// earliest point in the exchange lifecycle to latest.
	switch {
	case rRefuse < e.cfg.RefuseProb:
		p.Class = ClassRefuse
	case r5xx < e.cfg.Err5xxProb:
		p.Class = Class5xx
	case r429 < e.cfg.Err429Prob:
		p.Class = Class429
	case rReset < e.cfg.ResetProb:
		p.Class = ClassReset
	case rStall < e.cfg.StallProb:
		p.Class = ClassStall
	case rTrunc < e.cfg.TruncateProb:
		p.Class = ClassTruncate
	case rFlip < e.cfg.FlipProb:
		p.Class = ClassFlip
	case rDup < e.cfg.DupProb:
		p.Class = ClassDup
	}
	e.recordLocked(p)
	return p
}

// recordLocked folds one plan into stats and telemetry; callers hold mu.
func (e *Engine) recordLocked(p Plan) {
	e.st.Exchanges++
	e.tele.exchange()
	if p.DialDelay > 0 {
		e.st.DialDelays++
		e.st.DelayTotal += p.DialDelay
	}
	if p.HeaderDelay > 0 {
		e.st.HeaderDelays++
		e.st.DelayTotal += p.HeaderDelay
	}
	switch p.Class {
	case ClassNone:
		e.st.Clean++
		return
	case ClassRefuse:
		e.st.Refused++
	case ClassStall:
		e.st.Stalled++
	case ClassTruncate:
		e.st.Truncated++
	case ClassFlip:
		e.st.Flipped++
	case Class5xx:
		e.st.Injected5xx++
	case Class429:
		e.st.Injected429++
	case ClassReset:
		e.st.Reset++
	case ClassDup:
		e.st.Duplicated++
	}
	e.tele.fault(p.Class)
}

// netchaosTelemetry mirrors engine stats onto a registry, nil-safe like
// the other metric bundles.
type netchaosTelemetry struct {
	reg       *telemetry.Registry
	exchanges *telemetry.Counter
	faults    *telemetry.Counter
}

func newNetchaosTelemetry(r *telemetry.Registry) *netchaosTelemetry {
	return &netchaosTelemetry{
		reg:       r,
		exchanges: r.Counter("netchaos_exchanges_total", "faultable /v1/sim exchanges seen by the netchaos engine"),
		faults:    r.Counter("netchaos_faults_total", "exchanges that carried an injected terminal fault"),
	}
}

func (t *netchaosTelemetry) exchange() {
	if t == nil {
		return
	}
	t.exchanges.Inc()
}

func (t *netchaosTelemetry) fault(c Class) {
	if t == nil {
		return
	}
	t.faults.Inc()
	t.reg.Counter("netchaos_fault_"+string(c)+"_total",
		"exchanges faulted with class "+string(c)).Inc()
}

// FaultError is the error a Transport returns for faults that surface
// as transport failures (refusal, reset, a stall outlasting its
// context). Tests and telemetry can attribute a failure to its injected
// cause; production code must NOT special-case it — the whole point is
// that the hardened fleet treats injected faults exactly like real ones.
type FaultError struct {
	Class    Class
	Exchange int64
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("netchaos: injected %s fault (exchange %d)", e.Class, e.Exchange)
}

// faultable reports whether an exchange is in scope for injection:
// only the job-carrying POST /v1/sim calls. Control-plane endpoints
// (/healthz, /v1/version) always pass clean.
func faultable(method, path string) bool {
	return method == "POST" && strings.HasSuffix(path, "/v1/sim")
}
