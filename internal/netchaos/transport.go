package netchaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Transport is an http.RoundTripper that applies an Engine's fault
// plans to POST /v1/sim exchanges, passing everything else through
// untouched. With a disabled (or nil) engine it is a pure passthrough —
// same bytes, same errors, zero draws — so wiring it unconditionally
// under dist.Client costs nothing when netchaos is off.
type Transport struct {
	base http.RoundTripper
	eng  *Engine
}

// NewTransport wraps base (nil selects http.DefaultTransport) with
// eng's fault plans.
func NewTransport(base http.RoundTripper, eng *Engine) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, eng: eng}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if !t.eng.Enabled() || !faultable(req.Method, req.URL.Path) {
		return t.base.RoundTrip(req)
	}
	p := t.eng.Plan()
	if p.DialDelay > 0 {
		if err := sleepCtx(req, p.DialDelay); err != nil {
			return nil, err
		}
	}
	switch p.Class {
	case ClassRefuse:
		// The backend is never contacted; per the RoundTripper contract
		// the request body must still be closed.
		closeBody(req)
		return nil, &FaultError{Class: ClassRefuse, Exchange: p.Exchange}
	case Class5xx:
		closeBody(req)
		return synthetic(req, http.StatusInternalServerError, p), nil
	case Class429:
		closeBody(req)
		return synthetic(req, http.StatusTooManyRequests, p), nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if p.HeaderDelay > 0 {
		if serr := sleepCtx(req, p.HeaderDelay); serr != nil {
			resp.Body.Close()
			return nil, serr
		}
	}
	if p.Class == ClassNone {
		return resp, nil
	}
	// Body faults operate on the real settled bytes: buffer them, then
	// hand the caller a corrupted view. Settled sim bodies are small
	// (a few KiB), so buffering is cheap.
	raw, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, fmt.Errorf("netchaos: reading real body to fault it: %w", rerr)
	}
	half := len(raw) / 2
	switch p.Class {
	case ClassFlip:
		if len(raw) > 0 {
			raw[int(p.FlipBit/8)%len(raw)] ^= 1 << (p.FlipBit % 8)
		}
		resp.Body = io.NopCloser(bytes.NewReader(raw))
	case ClassDup:
		raw = append(raw, raw...)
		resp.Body = io.NopCloser(bytes.NewReader(raw))
		resp.ContentLength = int64(len(raw))
		resp.Header.Set("Content-Length", strconv.Itoa(len(raw)))
	case ClassTruncate:
		resp.Body = io.NopCloser(&errAfterReader{
			r:   bytes.NewReader(raw[:half]),
			err: fmt.Errorf("netchaos: injected trunc fault (exchange %d): %w", p.Exchange, io.ErrUnexpectedEOF),
		})
	case ClassReset:
		resp.Body = io.NopCloser(&errAfterReader{
			r:   bytes.NewReader(raw[:half]),
			err: &FaultError{Class: ClassReset, Exchange: p.Exchange},
		})
	case ClassStall:
		resp.Body = io.NopCloser(&stallReader{
			r:    bytes.NewReader(raw[:half]),
			req:  req,
			plan: p,
		})
	}
	return resp, nil
}

// synthetic fabricates an error response as an intercepting middlebox
// would, without the backend ever seeing the request.
func synthetic(req *http.Request, status int, p Plan) *http.Response {
	body := []byte(fmt.Sprintf(`{"error":"netchaos: injected %d (exchange %d)"}`+"\n", status, p.Exchange))
	h := http.Header{"Content-Type": {"application/json"}}
	if status == http.StatusTooManyRequests {
		h.Set("Retry-After", "1")
	}
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// sleepCtx waits d or until the request's context ends.
func sleepCtx(req *http.Request, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-req.Context().Done():
		return req.Context().Err()
	}
}

func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// errAfterReader yields a prefix of the real body, then a read error —
// a truncation or reset as the client's body-read loop observes it.
type errAfterReader struct {
	r   io.Reader
	err error
}

func (e *errAfterReader) Read(p []byte) (int, error) {
	n, err := e.r.Read(p)
	if err == io.EOF {
		return n, e.err
	}
	return n, err
}

// stallReader yields a prefix, then blocks until the request context is
// cancelled — the black hole that forces callers to carry body-read
// deadlines.
type stallReader struct {
	r    io.Reader
	req  *http.Request
	plan Plan
}

func (s *stallReader) Read(p []byte) (int, error) {
	n, err := s.r.Read(p)
	if err == io.EOF {
		<-s.req.Context().Done()
		return n, fmt.Errorf("netchaos: injected stall fault (exchange %d): %w",
			s.plan.Exchange, s.req.Context().Err())
	}
	return n, err
}
