package netchaos

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// StatsPath is the proxy's own introspection endpoint: GET returns the
// engine's Stats as JSON. It is served by the proxy itself, never
// forwarded, so smokes can assert faults were actually injected.
const StatsPath = "/netchaos/stats"

// Proxy is a reverse proxy that applies an Engine's fault plans at the
// socket between a coordinator and one backend. Unlike Transport it
// lives outside the coordinator process, so black-box tests and CI
// smokes exercise the real http.Client error surface: refused
// connects, RST-like closes, short writes under a longer
// Content-Length, and stalls the client must deadline its way out of.
//
// Control-plane paths (/healthz, /v1/version) and non-sim traffic
// forward transparently.
type Proxy struct {
	target string
	eng    *Engine
	hc     *http.Client
}

// NewProxy builds a fault proxy in front of the backend at target
// (e.g. "http://127.0.0.1:8080"). A nil client selects a dedicated
// non-default client so injected response mangling never poisons
// shared connection pools.
func NewProxy(target string, eng *Engine, hc *http.Client) *Proxy {
	if hc == nil {
		hc = &http.Client{}
	}
	return &Proxy{target: strings.TrimRight(target, "/"), eng: eng, hc: hc}
}

// hopByHop are connection-scoped headers that must not be forwarded.
var hopByHop = map[string]bool{
	"Connection":          true,
	"Keep-Alive":          true,
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == StatsPath {
		p.serveStats(w)
		return
	}
	if !p.eng.Enabled() || !faultable(r.Method, r.URL.Path) {
		p.forward(w, r, Plan{})
		return
	}
	plan := p.eng.Plan()
	if plan.DialDelay > 0 && !sleepHandler(r, plan.DialDelay) {
		return
	}
	switch plan.Class {
	case ClassRefuse:
		// Kill the connection before the backend hears anything — the
		// client sees a reset or an empty reply, as with a dead port.
		abort(w)
		return
	case Class5xx, Class429:
		status := http.StatusInternalServerError
		if plan.Class == Class429 {
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", "1")
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		fmt.Fprintf(w, `{"error":"netchaos: injected %d (exchange %d)"}`+"\n", status, plan.Exchange)
		return
	}
	p.forward(w, r, plan)
}

// forward relays the exchange to the backend and applies plan's body
// faults to the response. A zero plan forwards faithfully.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, plan Plan) {
	out, err := http.NewRequestWithContext(r.Context(), r.Method,
		p.target+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":"netchaos proxy: %v"}`, err), http.StatusBadGateway)
		return
	}
	copyHeaders(out.Header, r.Header)
	resp, err := p.hc.Do(out)
	if err != nil {
		// The backend is genuinely unreachable; that is its fault to
		// own, not an injected one.
		http.Error(w, fmt.Sprintf(`{"error":"netchaos proxy: backend: %v"}`, err), http.StatusBadGateway)
		return
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":"netchaos proxy: backend body: %v"}`, err), http.StatusBadGateway)
		return
	}
	if plan.HeaderDelay > 0 && !sleepHandler(r, plan.HeaderDelay) {
		return
	}
	if plan.Class == ClassReset {
		// Headers and body are ready, but the wire dies instead.
		abort(w)
		return
	}
	copyHeaders(w.Header(), resp.Header)
	w.Header().Del("Content-Length")
	switch plan.Class {
	case ClassNone:
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
	case ClassFlip:
		if len(body) > 0 {
			body[int(plan.FlipBit/8)%len(body)] ^= 1 << (plan.FlipBit % 8)
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
	case ClassDup:
		w.Header().Set("Content-Length", strconv.Itoa(2*len(body)))
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
		w.Write(body)
	case ClassTruncate:
		// Promise the full length, deliver half, return: the server
		// notices the short write and severs the connection, so the
		// client reads an unexpected EOF mid-body.
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(resp.StatusCode)
		w.Write(body[:len(body)/2])
	case ClassStall:
		// Deliver half, flush it onto the wire, then black-hole until
		// the client hangs up (its body-read budget firing) or the
		// proxy shuts down.
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(resp.StatusCode)
		w.Write(body[:len(body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-r.Context().Done()
		abort(w)
	}
}

// serveStats answers the proxy's introspection endpoint.
func (p *Proxy) serveStats(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(p.eng.Stats())
}

// abort severs the client connection without a valid HTTP response:
// hijack and close when the server supports it, otherwise panic with
// http.ErrAbortHandler (which net/http turns into a mid-stream close).
func abort(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}

// sleepHandler waits d inside a handler; false means the client went
// away first and the exchange is moot.
func sleepHandler(r *http.Request, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.Context().Done():
		return false
	}
}
