package trace

import (
	"bytes"
	"errors"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func events(n, domains int) []EpochEvent {
	out := make([]EpochEvent, n)
	for i := range out {
		out[i] = EpochEvent{
			Index:   i,
			StartPs: int64(i) * 1000,
			EndPs:   int64(i+1) * 1000,
		}
		for d := 0; d < domains; d++ {
			out[i].Domains = append(out[i].Domains, DomainEvent{
				Domain: d, FreqMHz: 1300 + 100*d,
				PredI: float64(100 + i), ActualI: float64(110 + i),
				EnergyJ: 1e-6,
			})
		}
	}
	return out
}

func TestJSONLRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	rec := NewJSONL(&buf)
	want := events(5, 2)
	for _, e := range want {
		if err := rec.Epoch(e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Index != want[i].Index || got[i].EndPs != want[i].EndPs {
			t.Fatalf("event %d header mismatch: %+v", i, got[i])
		}
		if len(got[i].Domains) != 2 || got[i].Domains[1].FreqMHz != 1400 {
			t.Fatalf("event %d domains mismatch: %+v", i, got[i].Domains)
		}
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCSVFormat(t *testing.T) {
	var buf bytes.Buffer
	rec := NewCSV(&buf)
	for _, e := range events(3, 2) {
		if err := rec.Epoch(e); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + 3 epochs x 2 domains.
	if len(lines) != 1+6 {
		t.Fatalf("%d lines, want 7:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "epoch,start_ps,end_ps,domain,freq_mhz") {
		t.Fatalf("bad header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,0,1000,0,1300") {
		t.Fatalf("bad first row %q", lines[1])
	}
}

func TestMultiFansOut(t *testing.T) {
	var a, b bytes.Buffer
	m := Multi{NewJSONL(&a), NewJSONL(&b)}
	if err := m.Epoch(events(1, 1)[0]); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || a.String() != b.String() {
		t.Fatal("multi recorder did not fan out identically")
	}
}

// TestJSONLConcurrentWriters asserts the documented contract: many runs
// may share one recorder, every event lands intact on its own line.
func TestJSONLConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	rec := NewJSONL(&buf)
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := rec.Epoch(EpochEvent{
					Index:   w*perWriter + i,
					StartPs: int64(i) * 1000,
					EndPs:   int64(i+1) * 1000,
					Domains: []DomainEvent{{Domain: w, FreqMHz: 1300}},
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("interleaved write corrupted the stream: %v", err)
	}
	if len(got) != writers*perWriter {
		t.Fatalf("%d events, want %d", len(got), writers*perWriter)
	}
	seen := map[int]bool{}
	for _, e := range got {
		if seen[e.Index] {
			t.Fatalf("event %d duplicated", e.Index)
		}
		seen[e.Index] = true
		if len(e.Domains) != 1 {
			t.Fatalf("event %d torn: %+v", e.Index, e)
		}
	}
}

// TestCSVConcurrentWriters asserts rows of one event never interleave
// with another event's rows.
func TestCSVConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	rec := NewCSV(&buf)
	const writers, perWriter, domains = 6, 25, 3
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ev := EpochEvent{Index: w*perWriter + i}
				for d := 0; d < domains; d++ {
					ev.Domains = append(ev.Domains, DomainEvent{Domain: d, FreqMHz: 1300})
				}
				if err := rec.Epoch(ev); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+writers*perWriter*domains {
		t.Fatalf("%d lines, want %d", len(lines), 1+writers*perWriter*domains)
	}
	// Each epoch's rows must be contiguous with domains in order 0..2.
	for i := 1; i < len(lines); i += domains {
		epoch := strings.Split(lines[i], ",")[0]
		for d := 0; d < domains; d++ {
			f := strings.Split(lines[i+d], ",")
			if f[0] != epoch || f[3] != strconv.Itoa(d) {
				t.Fatalf("rows interleaved at line %d: %q", i+d, lines[i+d])
			}
		}
	}
}

// failAfter fails every write past the first n bytes — a disk-full stand-in.
type failAfter struct {
	n       int
	written int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.n {
		return 0, errors.New("disk full")
	}
	f.written += len(p)
	return len(p), nil
}

func TestCSVCloseSurfacesWriteError(t *testing.T) {
	// Room for nothing: csv.Writer buffers, so Epoch may succeed locally
	// and the error only surfaces on flush.
	c := NewCSV(&failAfter{n: 10})
	err := c.Epoch(events(1, 1)[0])
	if err == nil {
		err = c.Close()
	}
	if err == nil {
		t.Fatal("write error swallowed by Epoch+Close")
	}
	// Close keeps reporting the sticky error.
	if c.Close() == nil {
		t.Fatal("sticky error lost on second Close")
	}
}

func TestCSVCloseCleanOnHealthyWriter(t *testing.T) {
	var b bytes.Buffer
	c := NewCSV(&b)
	if err := c.Epoch(events(1, 1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if b.Len() == 0 {
		t.Fatal("nothing flushed")
	}
}

func TestJSONLClose(t *testing.T) {
	var b bytes.Buffer
	j := NewJSONL(&b)
	if err := j.Epoch(events(1, 1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiClose(t *testing.T) {
	var b bytes.Buffer
	m := Multi{NewJSONL(&b), NewCSV(&failAfter{n: 0})}
	_ = m.Epoch(events(1, 1)[0]) // CSV member errors; JSONL still writes
	if m.Close() == nil {
		t.Fatal("Multi.Close dropped the failing member's error")
	}
}
