package trace

import (
	"bytes"
	"strings"
	"testing"
)

func events(n, domains int) []EpochEvent {
	out := make([]EpochEvent, n)
	for i := range out {
		out[i] = EpochEvent{
			Index:   i,
			StartPs: int64(i) * 1000,
			EndPs:   int64(i+1) * 1000,
		}
		for d := 0; d < domains; d++ {
			out[i].Domains = append(out[i].Domains, DomainEvent{
				Domain: d, FreqMHz: 1300 + 100*d,
				PredI: float64(100 + i), ActualI: float64(110 + i),
				EnergyJ: 1e-6,
			})
		}
	}
	return out
}

func TestJSONLRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	rec := NewJSONL(&buf)
	want := events(5, 2)
	for _, e := range want {
		if err := rec.Epoch(e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Index != want[i].Index || got[i].EndPs != want[i].EndPs {
			t.Fatalf("event %d header mismatch: %+v", i, got[i])
		}
		if len(got[i].Domains) != 2 || got[i].Domains[1].FreqMHz != 1400 {
			t.Fatalf("event %d domains mismatch: %+v", i, got[i].Domains)
		}
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCSVFormat(t *testing.T) {
	var buf bytes.Buffer
	rec := NewCSV(&buf)
	for _, e := range events(3, 2) {
		if err := rec.Epoch(e); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + 3 epochs x 2 domains.
	if len(lines) != 1+6 {
		t.Fatalf("%d lines, want 7:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "epoch,start_ps,end_ps,domain,freq_mhz") {
		t.Fatalf("bad header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,0,1000,0,1300") {
		t.Fatalf("bad first row %q", lines[1])
	}
}

func TestMultiFansOut(t *testing.T) {
	var a, b bytes.Buffer
	m := Multi{NewJSONL(&a), NewJSONL(&b)}
	if err := m.Epoch(events(1, 1)[0]); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || a.String() != b.String() {
		t.Fatal("multi recorder did not fan out identically")
	}
}
