// Package trace records per-epoch DVFS run events in machine-readable
// formats (JSON Lines and CSV) so runs can be inspected, diffed, and
// plotted outside the simulator. The dvfs runner emits one EpochEvent per
// epoch when a Recorder is attached.
//
// Concurrency contract: runs may execute in parallel (the orchestrated
// experiment sweeps), so the JSONL and CSV recorders serialize Epoch
// calls with an internal mutex — each event is written atomically, and
// sharing one recorder across concurrent runs is safe, though events
// from different runs interleave. For per-run files, attach one recorder
// per run instead. Custom Recorder implementations attached to parallel
// runs must provide their own synchronization.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// DomainEvent is one V/f domain's slice of an epoch.
type DomainEvent struct {
	// Domain is the V/f domain index.
	Domain int `json:"domain"`
	// FreqMHz is the frequency the domain ran.
	FreqMHz int `json:"freq_mhz"`
	// PredI is the policy's predicted instructions at the chosen state
	// (0 for non-predicting policies).
	PredI float64 `json:"pred_instr"`
	// ActualI is the instructions actually committed.
	ActualI float64 `json:"actual_instr"`
	// EnergyJ is the domain's core energy for the epoch.
	EnergyJ float64 `json:"energy_j"`
}

// EpochEvent is one epoch of a run.
type EpochEvent struct {
	// Index is the epoch number from 0.
	Index int `json:"epoch"`
	// StartPs and EndPs bound the epoch in simulated picoseconds.
	StartPs int64 `json:"start_ps"`
	EndPs   int64 `json:"end_ps"`
	// Domains holds the per-domain detail.
	Domains []DomainEvent `json:"domains"`
}

// Recorder receives epoch events during a run. Implementations must
// tolerate being called once per epoch for the full run, and must be
// safe for concurrent use if attached to runs that execute in parallel
// (the package-provided recorders are).
type Recorder interface {
	Epoch(e EpochEvent) error
}

// JSONL writes one JSON object per epoch per line. Safe for concurrent
// use: each event is encoded and written atomically under a mutex.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONL builds a JSON Lines recorder.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Epoch implements Recorder.
func (j *JSONL) Epoch(e EpochEvent) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.enc.Encode(e)
}

// Close reports any write error the encoder deferred. JSONL writes are
// unbuffered, so there is nothing to flush; the method exists so callers
// can finalize any package recorder uniformly before closing the
// underlying file.
func (j *JSONL) Close() error {
	return nil
}

// ReadJSONL decodes a JSON Lines trace back into events (for tooling and
// tests).
func ReadJSONL(r io.Reader) ([]EpochEvent, error) {
	dec := json.NewDecoder(r)
	var out []EpochEvent
	for {
		var e EpochEvent
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("trace: decoding event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}

// CSV writes a flat table: one row per (epoch, domain). Safe for
// concurrent use: an epoch's rows are written and flushed atomically
// under a mutex (rows of one event never interleave with another's).
type CSV struct {
	mu     sync.Mutex
	w      *csv.Writer
	header bool
}

// NewCSV builds a CSV recorder.
func NewCSV(w io.Writer) *CSV {
	return &CSV{w: csv.NewWriter(w)}
}

// Epoch implements Recorder.
func (c *CSV) Epoch(e EpochEvent) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.header {
		c.header = true
		if err := c.w.Write([]string{
			"epoch", "start_ps", "end_ps", "domain", "freq_mhz",
			"pred_instr", "actual_instr", "energy_j",
		}); err != nil {
			return err
		}
	}
	for _, d := range e.Domains {
		rec := []string{
			strconv.Itoa(e.Index),
			strconv.FormatInt(e.StartPs, 10),
			strconv.FormatInt(e.EndPs, 10),
			strconv.Itoa(d.Domain),
			strconv.Itoa(d.FreqMHz),
			strconv.FormatFloat(d.PredI, 'g', -1, 64),
			strconv.FormatFloat(d.ActualI, 'g', -1, 64),
			strconv.FormatFloat(d.EnergyJ, 'g', -1, 64),
		}
		if err := c.w.Write(rec); err != nil {
			return err
		}
	}
	c.w.Flush()
	return c.w.Error()
}

// Close flushes buffered rows and reports any write error csv.Writer
// deferred (Flush never returns one itself). Callers writing to a file
// must Close the recorder before closing the file, or a failed final
// flush is silently lost.
func (c *CSV) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.Flush()
	return c.w.Error()
}

// Multi fans one event out to several recorders.
type Multi []Recorder

// Epoch implements Recorder.
func (m Multi) Epoch(e EpochEvent) error {
	for _, r := range m {
		if err := r.Epoch(e); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every member that implements io.Closer, returning the
// first error.
func (m Multi) Close() error {
	var first error
	for _, r := range m {
		if c, ok := r.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
