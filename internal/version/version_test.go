package version

import (
	"strings"
	"testing"

	"pcstall/internal/orchestrate"
)

func TestStringCarriesSimVersion(t *testing.T) {
	s := String()
	if !strings.HasPrefix(s, orchestrate.SimVersion) {
		t.Fatalf("version %q does not start with %q", s, orchestrate.SimVersion)
	}
	// Test binaries are unstamped, so the suffix is optional; when
	// present it must be a short parenthesized revision.
	if rest := strings.TrimPrefix(s, orchestrate.SimVersion); rest != "" {
		if !strings.HasPrefix(rest, " (") || !strings.HasSuffix(rest, ")") {
			t.Fatalf("malformed revision suffix %q", rest)
		}
	}
}
