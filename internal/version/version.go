// Package version renders the build's identity: the simulator version
// string that keys the result cache (orchestrate.SimVersion) plus the
// VCS revision stamped into the binary by the Go toolchain. Every CLI
// exposes it behind a -version flag so campaign artifacts (manifests,
// traces, metric dumps) can be tied back to the exact build that
// produced them.
package version

import (
	"runtime/debug"

	"pcstall/internal/orchestrate"
	"pcstall/internal/telemetry"
)

// init pushes the build identity into telemetry's pcstall_build_info
// gauge. The flow is inverted (version calls telemetry, not the other
// way) because telemetry sits below orchestrate in the import graph and
// cannot see SimVersion itself; any binary serving /metrics links this
// package transitively via its -version flag, so the gauge is always
// populated.
func init() {
	rev, modified := vcsInfo()
	switch {
	case rev == "":
		rev = "unknown"
	default:
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if modified {
			rev += "+dirty"
		}
	}
	telemetry.SetBuildInfo(orchestrate.SimVersion, rev)
}

// String returns "pcstall-sim-v1 (abcdef123456)" when the binary was
// built inside a VCS checkout, with a "+dirty" suffix for modified
// trees, and the bare simulator version otherwise (e.g. `go test`
// binaries, which the toolchain does not stamp).
func String() string {
	rev, modified := vcsInfo()
	if rev == "" {
		return orchestrate.SimVersion
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if modified {
		rev += "+dirty"
	}
	return orchestrate.SimVersion + " (" + rev + ")"
}

// vcsInfo extracts the VCS revision and dirty bit from the build info.
func vcsInfo() (rev string, modified bool) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", false
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	return rev, modified
}
