package estimate

import (
	"math"
	"testing"
	"testing/quick"

	"pcstall/internal/clock"
	"pcstall/internal/sim"
)

var grid = clock.DefaultGrid()

func TestCurveAnchorsAtRanFrequency(t *testing.T) {
	out := make([]float64, grid.Count())
	Curve(1000, 300_000, 1_000_000, 1700, grid, out)
	// At the frequency actually run, the estimate is the observation.
	if got := out[grid.Index(1700)]; math.Abs(got-1000) > 1e-9 {
		t.Fatalf("I(ran) = %g, want 1000", got)
	}
}

func TestCurveFullyAsyncIsFlat(t *testing.T) {
	out := make([]float64, grid.Count())
	Curve(500, 1_000_000, 1_000_000, 1700, grid, out)
	for k, v := range out {
		if math.Abs(v-500) > 1e-9 {
			t.Fatalf("fully async curve not flat at state %d: %g", k, v)
		}
	}
}

func TestCurveFullyCoreScalesLinearly(t *testing.T) {
	out := make([]float64, grid.Count())
	Curve(1700, 0, 1_000_000, 1700, grid, out)
	for k, v := range out {
		want := float64(grid.State(k)) // I = f when I1 = f1
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("pure-core curve at %v: %g, want %g", grid.State(k), v, want)
		}
	}
}

func TestCurveClampsAsync(t *testing.T) {
	out := make([]float64, grid.Count())
	Curve(100, -5, 1_000_000, 1700, grid, out) // negative async clamped to 0
	if out[0] >= out[len(out)-1] {
		t.Fatal("clamped-to-core curve should increase with f")
	}
	Curve(100, 2_000_000, 1_000_000, 1700, grid, out) // async > total clamped
	for _, v := range out {
		if math.Abs(v-100) > 1e-9 {
			t.Fatal("async > total should flatten curve")
		}
	}
	Curve(100, 0, 0, 1700, grid, out) // zero total
	for _, v := range out {
		if v != 0 {
			t.Fatal("zero-duration curve should be zero")
		}
	}
}

func TestCurveMonotoneInFrequency(t *testing.T) {
	err := quick.Check(func(i1u, asyncU uint32) bool {
		i1 := float64(i1u%100000) + 1
		async := int64(asyncU % 1_000_001)
		out := make([]float64, grid.Count())
		Curve(i1, async, 1_000_000, 1700, grid, out)
		for k := 1; k < len(out); k++ {
			if out[k] < out[k-1]-1e-9 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCUModelSignals(t *testing.T) {
	c := &sim.CUCounters{
		MemBlockedPs: 100,
		LeadLatPs:    200,
		CritLatPs:    300,
		StoreStallPs: 50,
		OverlapPs:    40,
	}
	if (Stall{}).AsyncPs(c, 1000) != 100 {
		t.Error("STALL should use MemBlockedPs")
	}
	if (Lead{}).AsyncPs(c, 1000) != 200 {
		t.Error("LEAD should use LeadLatPs")
	}
	if (Crit{}).AsyncPs(c, 1000) != 300 {
		t.Error("CRIT should use CritLatPs")
	}
	if got := (Crisp{}).AsyncPs(c, 1000); got != 300+50-20 {
		t.Errorf("CRISP async = %d", got)
	}
	// CRISP clamps at zero when overlap credit exceeds memory time.
	c2 := &sim.CUCounters{OverlapPs: 1000}
	if (Crisp{}).AsyncPs(c2, 1000) != 0 {
		t.Error("CRISP went negative")
	}
}

func TestCUModelNames(t *testing.T) {
	names := map[string]bool{}
	for _, m := range []CUModel{Stall{}, Lead{}, Crit{}, Crisp{}} {
		n := m.Name()
		if n == "" || names[n] {
			t.Fatalf("bad model name %q", n)
		}
		names[n] = true
	}
}

func wfRec(committed, stallPs, barrierPs, residentPs int64, rank int32) *sim.WFRecord {
	return &sim.WFRecord{
		AgeRank:    rank,
		ResidentPs: residentPs,
		C: sim.WFCounters{
			Committed: committed,
			StallPs:   stallPs,
			BarrierPs: barrierPs,
		},
	}
}

func TestWFEstimatePureCompute(t *testing.T) {
	cfg := WFStallConfig{AgeCoef: 0}
	rec := wfRec(1700, 0, 0, 1_000_000, 0)
	e := cfg.EstimateWF(rec, 1_000_000, 1700, grid, 1, 0)
	// Pure compute: S = I/f -> at 2.2GHz predicts I * 2200/1700.
	got := e.Eval(2200, grid.Mid())
	want := 1700.0 * 2200 / 1700
	if math.Abs(got-want) > 1 {
		t.Fatalf("pure compute at fmax: %g, want %g", got, want)
	}
}

func TestWFEstimatePureStallIsFlat(t *testing.T) {
	cfg := WFStallConfig{AgeCoef: 0}
	rec := wfRec(50, 1_000_000, 0, 1_000_000, 0)
	e := cfg.EstimateWF(rec, 1_000_000, 1700, grid, 1, 0)
	if e.Slope != 0 {
		t.Fatalf("fully stalled wave has slope %g", e.Slope)
	}
	if math.Abs(e.Eval(2200, grid.Mid())-50) > 1e-9 {
		t.Fatal("fully stalled wave should predict constant I")
	}
}

func TestWFEstimateBarrierFraction(t *testing.T) {
	cfg := WFStallConfig{AgeCoef: 0}
	rec := wfRec(100, 200_000, 400_000, 1_000_000, 0)
	// barrierFrac 1: barrier fully memory-like -> more async, lower slope.
	eMem := cfg.EstimateWF(rec, 1_000_000, 1700, grid, 1, 1.0)
	// barrierFrac 0: barrier fully compute-like -> higher slope.
	eComp := cfg.EstimateWF(rec, 1_000_000, 1700, grid, 1, 0.0)
	if eMem.Slope >= eComp.Slope {
		t.Fatalf("barrier classification has no effect: %g vs %g", eMem.Slope, eComp.Slope)
	}
}

func TestWFEstimateAgeNormalization(t *testing.T) {
	cfg := DefaultWFStall()
	young := cfg.EstimateWF(wfRec(100, 0, 0, 1_000_000, 9), 1_000_000, 1700, grid, 10, 0)
	old := cfg.EstimateWF(wfRec(100, 0, 0, 1_000_000, 0), 1_000_000, 1700, grid, 10, 0)
	if young.Slope >= old.Slope {
		t.Fatalf("young wave slope %g not discounted vs old %g", young.Slope, old.Slope)
	}
	if young.Slope < old.Slope*(1-cfg.AgeCoef)-1e-9 {
		t.Fatalf("age discount exceeds AgeCoef bound")
	}
}

func TestWFEstimatePartialResidencyScaling(t *testing.T) {
	cfg := WFStallConfig{AgeCoef: 0}
	// Dispatched mid-epoch: resident half the epoch, so the full-epoch
	// estimate doubles.
	part := cfg.EstimateWF(wfRec(100, 0, 0, 500_000, 0), 1_000_000, 1700, grid, 1, 0)
	full := cfg.EstimateWF(wfRec(100, 0, 0, 1_000_000, 0), 1_000_000, 1700, grid, 1, 0)
	if math.Abs(part.IRef-2*full.IRef) > 1e-6 {
		t.Fatalf("partial residency not scaled: %g vs 2x%g", part.IRef, full.IRef)
	}
	// Retired waves are not scaled.
	done := wfRec(100, 0, 0, 500_000, 0)
	done.Done = true
	d := cfg.EstimateWF(done, 1_000_000, 1700, grid, 1, 0)
	if math.Abs(d.IRef-full.IRef) > 1e-6 {
		t.Fatalf("retired wave scaled: %g", d.IRef)
	}
}

func TestWFEstimateZeroResidency(t *testing.T) {
	cfg := DefaultWFStall()
	e := cfg.EstimateWF(wfRec(0, 0, 0, 0, 0), 1_000_000, 1700, grid, 1, 0)
	if e.IRef != 0 || e.Slope != 0 {
		t.Fatal("zero residency should give zero estimate")
	}
}

func TestBarrierStallFrac(t *testing.T) {
	recs := []sim.WFRecord{
		*wfRec(10, 800_000, 100_000, 1_000_000, 0), // heavily stalled
		*wfRec(10, 100_000, 500_000, 1_000_000, 1),
	}
	f := BarrierStallFrac(recs)
	want := float64(900_000) / float64(1_400_000)
	if math.Abs(f-want) > 1e-9 {
		t.Fatalf("frac %g, want %g", f, want)
	}
	if BarrierStallFrac(nil) != 1 {
		t.Fatal("empty records should default to fully async")
	}
}

func TestWFEvalNeverNegative(t *testing.T) {
	e := WFEstimate{IRef: 10, Slope: -1}
	if e.Eval(2200, 1700) != 0 {
		t.Fatal("Eval went negative")
	}
}

func TestSumCurve(t *testing.T) {
	e := WFEstimate{IRef: 100, Slope: 0.1}
	out := make([]float64, grid.Count())
	e.SumCurve(grid, out)
	e.SumCurve(grid, out)
	want := 2 * e.Eval(1300, grid.Mid())
	if math.Abs(out[0]-want) > 1e-9 {
		t.Fatalf("summed curve %g, want %g", out[0], want)
	}
}

func TestPredictCUUsesModel(t *testing.T) {
	ep := &sim.CUEpoch{C: sim.CUCounters{Committed: 1000, MemBlockedPs: 500_000}}
	outStall := make([]float64, grid.Count())
	PredictCU(Stall{}, ep, 1_000_000, 1700, grid, outStall)
	outLead := make([]float64, grid.Count())
	PredictCU(Lead{}, ep, 1_000_000, 1700, grid, outLead) // LeadLatPs = 0 -> pure core
	if outStall[len(outStall)-1] >= outLead[len(outLead)-1] {
		t.Fatal("stall-aware prediction should scale less than pure-core prediction")
	}
}

func TestWFEstimateSane(t *testing.T) {
	sane := []WFEstimate{{}, {IRef: 1, Slope: -0.5}}
	for _, e := range sane {
		if !e.Sane() {
			t.Errorf("finite estimate %+v reported insane", e)
		}
	}
	insane := []WFEstimate{
		{IRef: math.NaN()}, {Slope: math.NaN()},
		{IRef: math.Inf(1)}, {Slope: math.Inf(-1)},
	}
	for _, e := range insane {
		if e.Sane() {
			t.Errorf("non-finite estimate %+v reported sane", e)
		}
	}
}

func TestBarrierStallFracClamped(t *testing.T) {
	recs := []sim.WFRecord{{ResidentPs: 1000, C: sim.WFCounters{StallPs: -500}}}
	if f := BarrierStallFrac(recs); f < 0 || f > 1 {
		t.Fatalf("BarrierStallFrac = %v outside [0,1]", f)
	}
}
