// Package estimate implements the frequency-sensitivity estimation models
// the paper compares (§2.3, TABLE III): the CPU-derived CU-level models —
// STALL, Leading Load (LEAD), Critical Path (CRIT), and CRISP — and the
// wavefront-level STALL model that PCSTALL builds on (§4.2, §4.4).
//
// All models answer the same question about an elapsed fixed-time epoch:
// had the domain run at frequency f₂ instead of f₁, how many instructions
// would it have committed? Each model estimates the asynchronous (memory)
// share T_async of the epoch, assumed frequency-invariant, with the
// remainder scaling with the clock:
//
//	Î(f₂) = I₁ · (T_async + (f₂/f₁)·T_core) / T,   T_core = T − T_async
//
// which is the fixed-time-epoch form of the classical
// T(f₂) = T_async + (f₁/f₂)·T_core execution-time model.
package estimate

import (
	"math"

	"pcstall/internal/clock"
	"pcstall/internal/sim"
)

// CUModel estimates the asynchronous share of a CU's elapsed epoch from
// its counters; everything else is shared arithmetic.
type CUModel interface {
	Name() string
	// AsyncPs returns the estimated frequency-invariant time of the
	// epoch; the caller clamps it to [0, totalPs].
	AsyncPs(c *sim.CUCounters, totalPs int64) int64
}

// Stall is the classical stall model (Keramidas et al.): asynchronous
// time is the time the processor was fully stalled on memory. Applied at
// CU level this badly undercounts GPU memory time — other wavefronts hide
// one wavefront's stalls — which is the paper's core criticism.
type Stall struct{}

// Name implements CUModel.
func (Stall) Name() string { return "STALL" }

// AsyncPs implements CUModel.
func (Stall) AsyncPs(c *sim.CUCounters, _ int64) int64 { return c.MemBlockedPs }

// Lead is the Leading Load model: asynchronous time is the summed latency
// of loads issued when no other load was in flight, a proxy that
// tolerates memory-level parallelism.
type Lead struct{}

// Name implements CUModel.
func (Lead) Name() string { return "LEAD" }

// AsyncPs implements CUModel.
func (Lead) AsyncPs(c *sim.CUCounters, _ int64) int64 { return c.LeadLatPs }

// Crit is the Critical Path model (Miftakhutdinov et al.): asynchronous
// time is the non-overlapped latency along the load critical path.
type Crit struct{}

// Name implements CUModel.
func (Crit) Name() string { return "CRIT" }

// AsyncPs implements CUModel.
func (Crit) AsyncPs(c *sim.CUCounters, _ int64) int64 { return c.CritLatPs }

// Crisp is the CRISP GPU model (Nath & Tullsen): the critical path plus
// store stalls, minus credit for compute that overlapped memory.
type Crisp struct{}

// Name implements CUModel.
func (Crisp) Name() string { return "CRISP" }

// AsyncPs implements CUModel.
func (Crisp) AsyncPs(c *sim.CUCounters, _ int64) int64 {
	a := c.CritLatPs + c.StoreStallPs - c.OverlapPs/2
	if a < 0 {
		a = 0
	}
	return a
}

// Curve fills out[k] with Î(grid state k) for an entity that committed i1
// instructions over totalPs at frequency ran with asyncPs asynchronous
// time. out must have grid.Count() elements.
func Curve(i1 float64, asyncPs, totalPs int64, ran clock.Freq, grid clock.Grid, out []float64) {
	if totalPs <= 0 {
		for k := range out {
			out[k] = 0
		}
		return
	}
	if asyncPs < 0 {
		asyncPs = 0
	}
	if asyncPs > totalPs {
		asyncPs = totalPs
	}
	tA := float64(asyncPs)
	tC := float64(totalPs - asyncPs)
	tot := float64(totalPs)
	for k := range out {
		f := grid.State(k)
		out[k] = i1 * (tA + tC*float64(f)/float64(ran)) / tot
	}
}

// PredictCU fills out with the CU-level per-state prediction for one CU's
// elapsed epoch.
func PredictCU(m CUModel, ep *sim.CUEpoch, durPs int64, ran clock.Freq, grid clock.Grid, out []float64) {
	async := m.AsyncPs(&ep.C, durPs)
	Curve(float64(ep.C.Committed), async, durPs, ran, grid, out)
}

// WFEstimate is a wavefront's estimated linear sensitivity model,
// anchored at a reference frequency: Î(f) = IRef + Slope·(f − fRef).
// Slope is the paper's Sensitivity = ΔInstructions/ΔFrequency in
// instructions per MHz.
type WFEstimate struct {
	IRef  float64
	Slope float64
}

// Sane reports whether both model terms are finite. Estimates built from
// corrupted telemetry can carry NaN or Inf; consumers (the PC table, the
// hardened governor) drop insane estimates rather than letting them
// poison every later prediction they blend into.
func (e WFEstimate) Sane() bool {
	return !math.IsNaN(e.IRef) && !math.IsInf(e.IRef, 0) &&
		!math.IsNaN(e.Slope) && !math.IsInf(e.Slope, 0)
}

// Eval returns the estimated instructions at frequency f (never below 0).
func (e WFEstimate) Eval(f, fRef clock.Freq) float64 {
	v := e.IRef + e.Slope*float64(f-fRef)
	if v < 0 {
		v = 0
	}
	return v
}

// WFStallConfig parameterizes the wavefront-level STALL model.
type WFStallConfig struct {
	// AgeCoef scales the scheduling-contention normalization: a
	// wavefront's measured core time is discounted by up to AgeCoef
	// according to its age rank (§4.4 — the oldest wavefront sees no
	// contention under oldest-first scheduling, Fig. 11a).
	AgeCoef float64
}

// DefaultWFStall returns the paper-tuned configuration.
func DefaultWFStall() WFStallConfig { return WFStallConfig{AgeCoef: 0.3} }

// BarrierStallFrac returns the fraction of non-barrier time the CU's
// wavefronts spent memory-stalled this epoch. Barrier wait tracks the
// workgroup's laggards, so a wave's barrier time behaves like the group
// mix: this fraction of it is frequency-pinned (memory), the rest
// compresses with the clock (compute).
func BarrierStallFrac(recs []sim.WFRecord) float64 {
	var stall, base int64
	for i := range recs {
		stall += recs[i].C.StallPs
		base += recs[i].ResidentPs - recs[i].C.BarrierPs
	}
	if base <= 0 {
		return 1
	}
	f := float64(stall) / float64(base)
	if f > 1 {
		f = 1
	}
	if f < 0 {
		f = 0
	}
	return f
}

// EstimateWF applies the wavefront-level STALL model to one wavefront's
// epoch record: T_async is its s_waitcnt blocked time plus the memory
// share of its barrier wait (barrierFrac, from BarrierStallFrac); the
// rest of its resident time is core time, and the resulting sensitivity
// S = IPC_WF · T_core (§4.4) is normalized by scheduling age. nResident
// is the number of wavefronts resident in the CU this epoch. Estimates of
// partially resident waves (dispatched or retired mid-epoch) are scaled
// to a full-epoch equivalent of epochPs so table entries are comparable.
func (c WFStallConfig) EstimateWF(rec *sim.WFRecord, epochPs int64, ran clock.Freq, grid clock.Grid, nResident int, barrierFrac float64) WFEstimate {
	total := rec.ResidentPs
	if total <= 0 {
		return WFEstimate{}
	}
	async := rec.C.StallPs + int64(barrierFrac*float64(rec.C.BarrierPs))
	if async > total {
		async = total
	}
	if async < 0 {
		async = 0
	}
	tCore := float64(total - async)
	i1 := float64(rec.C.Committed)

	// Age normalization: younger waves' apparent core time includes
	// ready-but-not-scheduled time that does not scale like private
	// compute; discount it by rank.
	if nResident > 1 && c.AgeCoef > 0 {
		factor := 1 - c.AgeCoef*float64(rec.AgeRank)/float64(nResident-1)
		if factor < 1-c.AgeCoef {
			factor = 1 - c.AgeCoef
		}
		tCore *= factor
	}

	slope := i1 * tCore / (float64(total) * float64(ran)) // instructions per MHz
	fRef := grid.Mid()
	iref := i1 + slope*float64(fRef-ran)
	if iref < 0 {
		iref = 0
	}
	// A wave resident for only part of the epoch (dispatched mid-epoch)
	// would store an unrepresentatively small estimate; scale it to a
	// full-epoch equivalent. Retired waves are NOT scaled: they stopped
	// because the program ended, so their small totals are real.
	if epochPs > total && !rec.Done {
		scale := float64(epochPs) / float64(total)
		iref *= scale
		slope *= scale
	}
	return WFEstimate{IRef: iref, Slope: slope}
}

// SumCurve adds a wavefront estimate into a per-state accumulation.
func (e WFEstimate) SumCurve(grid clock.Grid, out []float64) {
	fRef := grid.Mid()
	for k := range out {
		out[k] += e.Eval(grid.State(k), fRef)
	}
}
