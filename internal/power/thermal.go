package power

import (
	"math"

	"pcstall/internal/clock"
)

// Thermal is the lumped-RC thermal model behind the paper's note that its
// power model "accounts for ... the impact temperature has on leakage
// power" (§5). Each V/f domain is one thermal node: its temperature moves
// toward the steady-state implied by current power with a first-order
// time constant, and leakage scales with the node temperature.
//
// Thermal is a parameter set; the per-domain temperature state lives with
// the caller (the DVFS runner keeps one TempC per domain) so the power
// Model itself stays immutable and shareable.
type Thermal struct {
	// AmbientC is the die's idle/ambient temperature.
	AmbientC float64
	// NomC is the temperature at which Model.LeakW is specified.
	NomC float64
	// RthKPerW is the thermal resistance of one CU's node (K per watt
	// of that CU's power).
	RthKPerW float64
	// TauPs is the node's thermal time constant. Real silicon is in the
	// hundreds of microseconds to milliseconds — long against 1µs
	// epochs, so temperature integrates across many decisions.
	TauPs float64
	// LeakPerC is the fractional leakage increase per °C above NomC.
	LeakPerC float64
}

// DefaultThermal returns GPU-class constants: 45°C ambient, leakage
// specified at 65°C, ~8 K/W per CU node, 500µs time constant, and ~1%
// leakage growth per °C.
func DefaultThermal() Thermal {
	return Thermal{
		AmbientC: 45,
		NomC:     65,
		RthKPerW: 8,
		TauPs:    500 * float64(clock.Microsecond),
		LeakPerC: 0.011,
	}
}

// SteadyC returns the temperature a node settles at under constant
// per-CU power.
func (t Thermal) SteadyC(perCUPowerW float64) float64 {
	return t.AmbientC + t.RthKPerW*perCUPowerW
}

// Step advances a node temperature over durPs under perCUPowerW and
// returns the new temperature.
func (t Thermal) Step(tempC, perCUPowerW float64, durPs clock.Time) float64 {
	if t.TauPs <= 0 {
		return t.SteadyC(perCUPowerW)
	}
	target := t.SteadyC(perCUPowerW)
	alpha := 1 - math.Exp(-float64(durPs)/t.TauPs)
	return tempC + (target-tempC)*alpha
}

// LeakScale returns the leakage multiplier at tempC relative to NomC,
// floored at one tenth so pathological inputs cannot produce negative
// leakage.
func (t Thermal) LeakScale(tempC float64) float64 {
	s := 1 + t.LeakPerC*(tempC-t.NomC)
	if s < 0.1 {
		s = 0.1
	}
	return s
}

// CUPowerWAt is Model.CUPowerW with temperature-scaled leakage.
func (m *Model) CUPowerWAt(f clock.Freq, activity, tempC float64, th Thermal) float64 {
	if activity < m.IdleActivity {
		activity = m.IdleActivity
	}
	if activity > 1 {
		activity = 1
	}
	v := m.Voltage(f)
	dyn := m.CeffF * v * v * float64(f) * 1e6 * activity
	leak := m.LeakW * (1 + m.LeakPerV*(v-m.VNom)) * th.LeakScale(tempC)
	return (dyn + leak) / m.IVREff(f)
}

// DomainEpochEnergyJAt is Model.DomainEpochEnergyJ with temperature-
// scaled leakage. It also returns the per-CU power so the caller can
// advance its thermal state.
func (m *Model) DomainEpochEnergyJAt(f clock.Freq, issueSlots int64, numCUs, simds int, durPs clock.Time, tempC float64, th Thermal) (energyJ, perCUPowerW float64) {
	if durPs <= 0 || numCUs <= 0 {
		return 0, 0
	}
	perCU := issueSlots / int64(numCUs)
	a := Activity(perCU, simds, f, durPs)
	p := m.CUPowerWAt(f, a, tempC, th)
	return p * float64(numCUs) * float64(durPs) * 1e-12, p
}
