package power

import (
	"testing"
	"testing/quick"

	"pcstall/internal/clock"
)

func TestDefaultModelValid(t *testing.T) {
	for _, n := range []int{1, 8, 64} {
		m := DefaultModelFor(n)
		if err := m.Validate(); err != nil {
			t.Fatalf("DefaultModelFor(%d): %v", n, err)
		}
	}
	m := DefaultModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVoltageCurve(t *testing.T) {
	m := DefaultModelFor(8)
	if m.Voltage(m.FMin) != m.VMin || m.Voltage(m.FMax) != m.VMax {
		t.Fatal("voltage endpoints wrong")
	}
	// Clamped outside the grid.
	if m.Voltage(m.FMin-500) != m.VMin || m.Voltage(m.FMax+500) != m.VMax {
		t.Fatal("voltage not clamped")
	}
	// Strictly increasing inside.
	prev := m.Voltage(m.FMin)
	for f := m.FMin + 100; f <= m.FMax; f += 100 {
		v := m.Voltage(f)
		if v <= prev {
			t.Fatalf("voltage not increasing at %v", f)
		}
		prev = v
	}
}

func TestPowerMonotoneInFrequency(t *testing.T) {
	m := DefaultModelFor(8)
	for _, a := range []float64{0, 0.35, 0.7, 1} {
		prev := 0.0
		for f := m.FMin; f <= m.FMax; f += 100 {
			p := m.CUPowerW(f, a)
			if p <= prev {
				t.Fatalf("power not increasing in f at activity %g", a)
			}
			prev = p
		}
	}
}

func TestPowerMonotoneInActivity(t *testing.T) {
	m := DefaultModelFor(8)
	err := quick.Check(func(a1, a2 float64) bool {
		a1, a2 = abs01(a1), abs01(a2)
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		return m.CUPowerW(1700, a1) <= m.CUPowerW(1700, a2)+1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func abs01(x float64) float64 {
	if x < 0 {
		x = -x
	}
	for x > 1 {
		x /= 10
	}
	return x
}

func TestIdleActivityFloor(t *testing.T) {
	m := DefaultModelFor(8)
	if m.CUPowerW(1700, 0) != m.CUPowerW(1700, m.IdleActivity) {
		t.Fatal("idle floor not applied")
	}
}

func TestDynamicRangeIsWide(t *testing.T) {
	// The paper's premise: core power at top-frequency full activity is
	// several times idle power at the bottom frequency. Without this
	// spread fine-grain DVFS has nothing to win.
	m := DefaultModelFor(8)
	lo := m.CUPowerW(m.FMin, 0)
	hi := m.CUPowerW(m.FMax, 1)
	if hi/lo < 3 {
		t.Fatalf("power dynamic range %.2fx too narrow for DVFS study", hi/lo)
	}
}

func TestActivity(t *testing.T) {
	// 4 SIMDs at 2 GHz for 1µs = 8000 issue slots.
	if a := Activity(8000, 4, 2000, clock.Microsecond); a != 1 {
		t.Fatalf("full activity = %g", a)
	}
	if a := Activity(4000, 4, 2000, clock.Microsecond); a != 0.5 {
		t.Fatalf("half activity = %g", a)
	}
	if a := Activity(99999, 4, 2000, clock.Microsecond); a != 1 {
		t.Fatal("activity not clamped at 1")
	}
	if a := Activity(10, 4, 2000, 0); a != 0 {
		t.Fatal("zero duration not handled")
	}
}

func TestEnergyScalesWithDuration(t *testing.T) {
	m := DefaultModelFor(8)
	e1 := m.DomainEpochEnergyJ(1700, 1000, 1, 4, clock.Microsecond)
	e2 := m.DomainEpochEnergyJ(1700, 2000, 1, 4, 2*clock.Microsecond)
	if e1 <= 0 {
		t.Fatal("zero energy")
	}
	// Same activity for twice the time: exactly double.
	if diff := e2/e1 - 2; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("energy ratio %g, want 2", e2/e1)
	}
}

func TestPredictEpochEnergyConsistency(t *testing.T) {
	// Predicting the observed instruction count must give (nearly) the
	// energy the accounting path computes for equivalent activity.
	m := DefaultModelFor(8)
	const issue = 2500
	got := m.DomainEpochEnergyJ(1700, issue, 1, 4, clock.Microsecond)
	pred := m.PredictEpochEnergyJ(1700, issue, 1, 4, clock.Microsecond)
	if rel := (got - pred) / got; rel > 0.01 || rel < -0.01 {
		t.Fatalf("accounted %g vs predicted %g", got, pred)
	}
}

func TestUncore(t *testing.T) {
	m := DefaultModelFor(10)
	e := m.UncoreEnergyJ(clock.Microsecond)
	if e != m.UncoreW*1e-6 {
		t.Fatalf("uncore energy %g", e)
	}
	share := m.UncoreShareJ(clock.Microsecond, 5)
	if share*5 != e {
		t.Fatalf("shares %g don't sum to total %g", share*5, e)
	}
	if m.UncoreShareJ(clock.Microsecond, 0) != 0 {
		t.Fatal("zero domains not handled")
	}
}

func TestTransitionEnergy(t *testing.T) {
	m := DefaultModelFor(8)
	if m.TransitionEnergyJ(10) != 10*m.TransitionJ {
		t.Fatal("transition energy wrong")
	}
}

func TestIVREffIncreasesWithVoltage(t *testing.T) {
	m := DefaultModelFor(8)
	if m.IVREff(m.FMin) >= m.IVREff(m.FMax) {
		t.Fatal("IVR efficiency should rise with voltage for this model")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := DefaultModelFor(8)
	bad.VMin = -1
	if bad.Validate() == nil {
		t.Error("negative voltage accepted")
	}
	bad = DefaultModelFor(8)
	bad.CeffF = 0
	if bad.Validate() == nil {
		t.Error("zero Ceff accepted")
	}
	bad = DefaultModelFor(8)
	bad.EffMin = 1.5
	if bad.Validate() == nil {
		t.Error("efficiency > 1 accepted")
	}
	bad = DefaultModelFor(8)
	bad.IdleActivity = 2
	if bad.Validate() == nil {
		t.Error("idle activity > 1 accepted")
	}
}
