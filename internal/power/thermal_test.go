package power

import (
	"math"
	"testing"

	"pcstall/internal/clock"
)

func TestThermalSteadyState(t *testing.T) {
	th := DefaultThermal()
	if got := th.SteadyC(0); got != th.AmbientC {
		t.Fatalf("idle steady state %g, want ambient %g", got, th.AmbientC)
	}
	if th.SteadyC(4) <= th.SteadyC(1) {
		t.Fatal("steady temperature not increasing with power")
	}
}

func TestThermalStepConvergesToSteady(t *testing.T) {
	th := DefaultThermal()
	temp := th.AmbientC
	const powerW = 3.0
	for i := 0; i < 100; i++ {
		temp = th.Step(temp, powerW, clock.Time(th.TauPs))
	}
	if math.Abs(temp-th.SteadyC(powerW)) > 0.1 {
		t.Fatalf("temperature %g did not converge to %g", temp, th.SteadyC(powerW))
	}
}

func TestThermalStepMonotoneApproach(t *testing.T) {
	th := DefaultThermal()
	temp := th.AmbientC
	prev := temp
	for i := 0; i < 20; i++ {
		temp = th.Step(temp, 3, clock.Microsecond)
		if temp < prev {
			t.Fatal("heating node cooled down")
		}
		if temp > th.SteadyC(3) {
			t.Fatal("node overshot steady state")
		}
		prev = temp
	}
	// A 1µs step against a 500µs time constant must move only slightly.
	if temp > th.AmbientC+(th.SteadyC(3)-th.AmbientC)*0.1 {
		t.Fatalf("temperature moved %g°C in 20µs — time constant ignored", temp-th.AmbientC)
	}
}

func TestThermalCooling(t *testing.T) {
	th := DefaultThermal()
	hot := th.SteadyC(4)
	cooled := th.Step(hot, 0, clock.Time(th.TauPs*5))
	if cooled >= hot {
		t.Fatal("unpowered node did not cool")
	}
	if cooled < th.AmbientC {
		t.Fatal("node cooled below ambient")
	}
}

func TestLeakScale(t *testing.T) {
	th := DefaultThermal()
	if th.LeakScale(th.NomC) != 1 {
		t.Fatal("leak scale at nominal temperature != 1")
	}
	if th.LeakScale(th.NomC+20) <= 1 {
		t.Fatal("hotter node should leak more")
	}
	if th.LeakScale(th.NomC-10) >= 1 {
		t.Fatal("cooler node should leak less")
	}
	if th.LeakScale(-1000) < 0.1-1e-12 {
		t.Fatal("leak scale floor violated")
	}
}

func TestCUPowerWAtMatchesNominal(t *testing.T) {
	m := DefaultModelFor(8)
	th := DefaultThermal()
	base := m.CUPowerW(1700, 0.5)
	at := m.CUPowerWAt(1700, 0.5, th.NomC, th)
	if math.Abs(base-at) > 1e-9 {
		t.Fatalf("at nominal temperature %g != %g", at, base)
	}
	if m.CUPowerWAt(1700, 0.5, th.NomC+30, th) <= base {
		t.Fatal("hot CU should draw more power")
	}
}

func TestDomainEpochEnergyJAt(t *testing.T) {
	m := DefaultModelFor(8)
	th := DefaultThermal()
	eCold, pCold := m.DomainEpochEnergyJAt(1700, 2000, 1, 4, clock.Microsecond, th.AmbientC, th)
	eHot, pHot := m.DomainEpochEnergyJAt(1700, 2000, 1, 4, clock.Microsecond, 95, th)
	if eHot <= eCold || pHot <= pCold {
		t.Fatal("hot domain should consume more")
	}
	if e, p := m.DomainEpochEnergyJAt(1700, 2000, 0, 4, clock.Microsecond, 50, th); e != 0 || p != 0 {
		t.Fatal("degenerate inputs not handled")
	}
}

func TestThermalZeroTau(t *testing.T) {
	th := DefaultThermal()
	th.TauPs = 0
	if th.Step(th.AmbientC, 2, clock.Microsecond) != th.SteadyC(2) {
		t.Fatal("zero time constant should jump to steady state")
	}
}
