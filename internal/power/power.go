// Package power models GPU energy consumption across voltage/frequency
// states, mirroring the structure the paper describes for its in-house
// model (§5): dynamic power P = Ceff·V²·A·f, leakage with mild voltage
// dependence, integrated-voltage-regulator conversion efficiency per
// state, a fixed-clock uncore term, and per-transition energy.
//
// Absolute watts are uncalibrated (the paper's model is proprietary and
// validated against a Radeon VII); the experiments only consume
// energy-delay *ratios* between frequencies, which depend on the V(f)
// curve shape rather than the scale. DESIGN.md §1 records the
// substitution.
package power

import (
	"fmt"

	"pcstall/internal/clock"
)

// Model holds the calibration constants. Construct with DefaultModel and
// adjust fields before first use.
type Model struct {
	// VMin/VMax define the linear V(f) curve endpoints across the grid.
	VMin, VMax float64
	// FMin/FMax are the frequencies at which VMin/VMax apply.
	FMin, FMax clock.Freq
	// CeffF is the effective switched capacitance per CU in farads:
	// dynamic power = CeffF · V² · f_Hz · activity.
	CeffF float64
	// IdleActivity is the floor activity of a clocked but idle CU
	// (imperfect clock gating).
	IdleActivity float64
	// LeakW is per-CU leakage at VNom.
	LeakW float64
	// VNom is the voltage at which LeakW is specified.
	VNom float64
	// LeakPerV is the fractional leakage increase per volt above VNom
	// (leakage varies only mildly across the IVR's small range, §5).
	LeakPerV float64
	// UncoreW is the fixed-clock memory-subsystem power for the whole
	// GPU (L2, interconnect, DRAM interface at 1.6 GHz).
	UncoreW float64
	// TransitionJ is the energy cost of one V/f transition of a domain.
	TransitionJ float64
	// EffMin/EffMax are IVR conversion efficiencies at VMin/VMax.
	EffMin, EffMax float64
}

// DefaultModel returns Vega-class constants on the default grid for a
// 64-CU GPU: ~0.75 V at 1.3 GHz to ~1.05 V at 2.2 GHz, ≈3.5 W dynamic per
// fully-active CU at the top state. For scaled-down GPUs use
// DefaultModelFor so the uncore does not dwarf the core domains.
func DefaultModel() Model { return DefaultModelFor(64) }

// DefaultModelFor returns the default model with the uncore sized for a
// GPU of numCUs (L2/DRAM-interface power tracks machine size).
func DefaultModelFor(numCUs int) Model {
	return Model{
		VMin: 0.70, VMax: 1.10,
		FMin: 1300, FMax: 2200,
		CeffF: 1.4e-9,
		// Even a fully stalled CU keeps clock trees, the scheduler, and
		// the register-file banks toggling; a third of peak switched
		// capacitance is Vega-class. This is what makes down-clocking
		// memory phases profitable (the paper's core premise).
		IdleActivity: 0.35,
		LeakW:        0.3,
		VNom:         0.90,
		LeakPerV:     1.6,
		UncoreW:      0.4 * float64(numCUs),
		TransitionJ:  5e-8,
		EffMin:       0.84, EffMax: 0.93,
	}
}

// Validate checks the model constants.
func (m *Model) Validate() error {
	switch {
	case m.VMin <= 0 || m.VMax < m.VMin:
		return fmt.Errorf("power: bad voltage range [%g, %g]", m.VMin, m.VMax)
	case m.FMin <= 0 || m.FMax <= m.FMin:
		return fmt.Errorf("power: bad frequency range [%v, %v]", m.FMin, m.FMax)
	case m.CeffF <= 0:
		return fmt.Errorf("power: Ceff %g", m.CeffF)
	case m.IdleActivity < 0 || m.IdleActivity > 1:
		return fmt.Errorf("power: idle activity %g", m.IdleActivity)
	case m.EffMin <= 0 || m.EffMin > 1 || m.EffMax <= 0 || m.EffMax > 1:
		return fmt.Errorf("power: IVR efficiency out of (0,1]")
	}
	return nil
}

// Voltage returns the supply voltage for frequency f (linear V/f curve,
// clamped at the grid edges).
func (m *Model) Voltage(f clock.Freq) float64 {
	if f <= m.FMin {
		return m.VMin
	}
	if f >= m.FMax {
		return m.VMax
	}
	t := float64(f-m.FMin) / float64(m.FMax-m.FMin)
	return m.VMin + t*(m.VMax-m.VMin)
}

// IVREff returns regulator efficiency at frequency f's voltage.
func (m *Model) IVREff(f clock.Freq) float64 {
	t := (m.Voltage(f) - m.VMin) / (m.VMax - m.VMin)
	return m.EffMin + t*(m.EffMax-m.EffMin)
}

// CUPowerW returns one CU's power draw (at the regulator input) at
// frequency f with the given activity factor in [0, 1].
func (m *Model) CUPowerW(f clock.Freq, activity float64) float64 {
	if activity < m.IdleActivity {
		activity = m.IdleActivity
	}
	if activity > 1 {
		activity = 1
	}
	v := m.Voltage(f)
	dyn := m.CeffF * v * v * float64(f) * 1e6 * activity
	leak := m.LeakW * (1 + m.LeakPerV*(v-m.VNom))
	return (dyn + leak) / m.IVREff(f)
}

// Activity converts issue-slot counters into an activity factor: issued
// slots divided by available slots (SIMDs × cycles in the interval).
func Activity(issueSlots int64, simds int, f clock.Freq, durPs clock.Time) float64 {
	if durPs <= 0 {
		return 0
	}
	cycles := float64(durPs) * float64(f) / 1e6
	slots := float64(simds) * cycles
	if slots <= 0 {
		return 0
	}
	a := float64(issueSlots) / slots
	if a > 1 {
		a = 1
	}
	return a
}

// DomainEpochEnergyJ returns the energy one V/f domain of numCUs consumed
// over an epoch of durPs at frequency f, given the domain's total issue
// slots.
func (m *Model) DomainEpochEnergyJ(f clock.Freq, issueSlots int64, numCUs, simds int, durPs clock.Time) float64 {
	if durPs <= 0 || numCUs <= 0 {
		return 0
	}
	perCU := issueSlots / int64(numCUs)
	a := Activity(perCU, simds, f, durPs)
	return m.CUPowerW(f, a) * float64(numCUs) * float64(durPs) * 1e-12
}

// PredictEpochEnergyJ returns the energy the governor should expect for a
// domain running the next epoch at frequency f while committing predI
// instructions. Predicted activity scales the issue rate with predicted
// work: activity(f) = predI / (simds · cycles(f) · issueFraction), where
// issueFraction accounts for committed instructions per issue slot being
// ≈1 in this ISA.
func (m *Model) PredictEpochEnergyJ(f clock.Freq, predI float64, numCUs, simds int, durPs clock.Time) float64 {
	if durPs <= 0 || numCUs <= 0 {
		return 0
	}
	cycles := float64(durPs) * float64(f) / 1e6
	a := predI / (float64(numCUs) * float64(simds) * cycles)
	if a < 0 {
		a = 0
	}
	if a > 1 {
		a = 1
	}
	return m.CUPowerW(f, a) * float64(numCUs) * float64(durPs) * 1e-12
}

// UncoreEnergyJ returns the fixed-clock subsystem energy over a duration.
func (m *Model) UncoreEnergyJ(durPs clock.Time) float64 {
	return m.UncoreW * float64(durPs) * 1e-12
}

// UncoreShareJ returns one domain's share of uncore energy over a
// duration. Governors fold this into per-state decision energy so that
// finishing sooner is correctly credited with uncore savings; omitting it
// biases every objective toward the lowest frequency.
func (m *Model) UncoreShareJ(durPs clock.Time, numDomains int) float64 {
	if numDomains < 1 {
		return 0
	}
	return m.UncoreW * float64(durPs) * 1e-12 / float64(numDomains)
}

// TransitionEnergyJ returns the energy of n V/f transitions.
func (m *Model) TransitionEnergyJ(n int64) float64 {
	return m.TransitionJ * float64(n)
}
