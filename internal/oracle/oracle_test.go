package oracle

import (
	"math"
	"testing"

	"pcstall/internal/clock"
	"pcstall/internal/isa"
	"pcstall/internal/power"
	"pcstall/internal/sim"
)

func computeGPU(t *testing.T, cus int) *sim.GPU {
	t.Helper()
	p := isa.NewBuilder("compute", 0).
		Loop(100000, 0).
		VALUBlock(8, 4).
		EndLoop().
		MustBuild()
	k := isa.Kernel{Program: p, Workgroups: cus, WavesPerWG: 4}
	g, err := sim.New(sim.DefaultConfig(cus), []isa.Kernel{k}, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func memGPU(t *testing.T, cus int) *sim.GPU {
	t.Helper()
	p := isa.NewBuilder("mem", 0).
		Loop(100000, 0).
		Load(isa.AccessPattern{Kind: isa.PatRandom, Base: 1 << 30, WorkingSet: 64 << 20, Stride: 64, Lines: 4}).
		Load(isa.AccessPattern{Kind: isa.PatRandom, Base: 1 << 30, WorkingSet: 64 << 20, Stride: 64, Lines: 4}).
		WaitAll().
		VALUBlock(1, 4).
		EndLoop().
		MustBuild()
	k := isa.Kernel{Program: p, Workgroups: cus, WavesPerWG: 8}
	g, err := sim.New(sim.DefaultConfig(cus), []isa.Kernel{k}, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sampler(pm *power.Model, wf bool) *Sampler {
	return &Sampler{Grid: clock.DefaultGrid(), PM: pm, CollectWF: wf}
}

func TestComputeKernelTruthScalesLinearly(t *testing.T) {
	pm := power.DefaultModelFor(2)
	g := computeGPU(t, 2)
	g.RunUntil(2 * clock.Microsecond) // warm up
	truth := sampler(&pm, false).SampleNext(g, clock.Microsecond)

	grid := clock.DefaultGrid()
	slope, r2 := truth.Slope(grid, 0)
	if slope <= 0 {
		t.Fatalf("compute kernel slope %g, want positive", slope)
	}
	if r2 < 0.95 {
		t.Fatalf("compute kernel R² %g, want near-linear", r2)
	}
	// I(fmax)/I(fmin) should approach fmax/fmin.
	ratio := truth.I[0][grid.Count()-1] / truth.I[0][0]
	want := float64(grid.Max) / float64(grid.Min)
	if math.Abs(ratio-want) > 0.25 {
		t.Fatalf("compute scaling ratio %.3f, want ≈%.3f", ratio, want)
	}
}

func TestMemoryKernelTruthIsFlat(t *testing.T) {
	pm := power.DefaultModelFor(2)
	g := memGPU(t, 2)
	g.RunUntil(5 * clock.Microsecond)
	truth := sampler(&pm, false).SampleNext(g, clock.Microsecond)
	grid := clock.DefaultGrid()
	ratio := truth.I[0][grid.Count()-1] / math.Max(truth.I[0][0], 1)
	if ratio > 1.2 {
		t.Fatalf("memory-bound kernel scaled %.3fx with frequency", ratio)
	}
}

func TestSamplingDoesNotPerturbParent(t *testing.T) {
	pm := power.DefaultModelFor(2)
	g := computeGPU(t, 2)
	g.RunUntil(2 * clock.Microsecond)
	now, committed := g.Now, g.TotalCommitted
	sampler(&pm, true).SampleNext(g, clock.Microsecond)
	if g.Now != now || g.TotalCommitted != committed {
		t.Fatal("SampleNext modified the parent simulation")
	}
}

func TestTruthEnergyIncreasesWithFrequency(t *testing.T) {
	pm := power.DefaultModelFor(2)
	g := computeGPU(t, 2)
	g.RunUntil(2 * clock.Microsecond)
	truth := sampler(&pm, false).SampleNext(g, clock.Microsecond)
	for d := range truth.E {
		for k := 1; k < len(truth.E[d]); k++ {
			if truth.E[d][k] < truth.E[d][k-1] {
				t.Fatalf("domain %d: energy decreased from state %d to %d", d, k-1, k)
			}
		}
	}
}

func TestWFTruthCollected(t *testing.T) {
	pm := power.DefaultModelFor(2)
	g := computeGPU(t, 2)
	g.RunUntil(2 * clock.Microsecond)
	truth := sampler(&pm, true).SampleNext(g, clock.Microsecond)
	if truth.WF == nil {
		t.Fatal("WF truth not collected")
	}
	total := 0
	grid := clock.DefaultGrid()
	for cu := range truth.WF {
		for _, wt := range truth.WF[cu] {
			total++
			if len(wt.Committed) != grid.Count() {
				t.Fatal("per-WF curve has wrong state count")
			}
			e := wt.WFEstimateTrue(grid)
			if e.IRef < 0 {
				t.Fatal("negative IRef from true WF estimate")
			}
		}
	}
	if total == 0 {
		t.Fatal("no wavefront truth recorded")
	}
}

func TestReducedSampleInterpolation(t *testing.T) {
	pm := power.DefaultModelFor(2)
	g := computeGPU(t, 2)
	g.RunUntil(2 * clock.Microsecond)

	full := sampler(&pm, false).SampleNext(g, clock.Microsecond)
	s3 := sampler(&pm, false)
	s3.Samples = 3
	part := s3.SampleNext(g, clock.Microsecond)

	// Interpolated cells must be filled and close to the full sampling
	// for a linear (compute-bound) kernel.
	for k := range part.I[0] {
		if part.I[0][k] <= 0 {
			t.Fatalf("state %d not interpolated", k)
		}
		rel := math.Abs(part.I[0][k]-full.I[0][k]) / full.I[0][k]
		if rel > 0.25 {
			t.Fatalf("state %d interpolation off by %.1f%%", k, rel*100)
		}
	}
}

func TestShuffleCoversAllStates(t *testing.T) {
	// With NumDomains >= 1 and full sampling, every (domain, state) cell
	// must come from a real sample: verify values vary across states for
	// a compute kernel (interpolation would make them exactly collinear,
	// real samples have simulation jitter, but most importantly none are
	// zero).
	pm := power.DefaultModelFor(4)
	g := computeGPU(t, 4)
	g.RunUntil(2 * clock.Microsecond)
	truth := sampler(&pm, false).SampleNext(g, clock.Microsecond)
	for d := range truth.I {
		for k, v := range truth.I[d] {
			if v <= 0 {
				t.Fatalf("domain %d state %d has no sampled work", d, k)
			}
		}
	}
}
