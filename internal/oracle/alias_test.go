package oracle

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"pcstall/internal/clock"
	"pcstall/internal/power"
)

// marshalTruth renders a Truth to a canonical byte form so tests can
// detect any later mutation, however deep.
func marshalTruth(t *testing.T, tr *Truth) []byte {
	t.Helper()
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTruthDoesNotAliasScratch: the Sampler reuses its scratch
// EpochSample across SampleNext calls, so every slice and map in a
// returned Truth must be freshly allocated — a Truth held by a caller
// must stay byte-identical while later samples churn the scratch.
func TestTruthDoesNotAliasScratch(t *testing.T) {
	pm := power.DefaultModelFor(2)
	g := memGPU(t, 2)
	g.RunUntil(5 * clock.Microsecond)
	s := sampler(&pm, true) // CollectWF exercises the scratch WF records

	first := s.SampleNext(g, clock.Microsecond)
	snap := marshalTruth(t, first)
	g.RunUntil(10 * clock.Microsecond)
	for i := 0; i < 3; i++ {
		s.SampleNext(g, clock.Microsecond)
	}
	if got := marshalTruth(t, first); !bytes.Equal(got, snap) {
		t.Fatal("Truth returned by an earlier SampleNext was mutated by later samples — it aliases sampler scratch state")
	}
}

// TestConcurrentSamplersSharedParent: distinct Samplers may sample the
// same quiescent parent GPU from different goroutines (the documented
// contract the CoW clone machinery exists for). Under -race this is the
// gate proving forks share no mutable state with each other or the
// parent; in any mode both goroutines must reproduce the sequential
// result exactly.
func TestConcurrentSamplersSharedParent(t *testing.T) {
	pm := power.DefaultModelFor(2)
	g := memGPU(t, 2)
	g.RunUntil(5 * clock.Microsecond)

	want := marshalTruth(t, sampler(&pm, true).SampleNext(g, clock.Microsecond))

	const par = 2
	got := make([][]byte, par)
	var wg sync.WaitGroup
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := sampler(&pm, true)
			tr := s.SampleNext(g, clock.Microsecond)
			b, err := json.Marshal(tr)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = b
		}(i)
	}
	wg.Wait()
	for i := range got {
		if !bytes.Equal(got[i], want) {
			t.Fatalf("concurrent sampler %d diverged from the sequential sample", i)
		}
	}
}
