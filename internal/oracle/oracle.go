// Package oracle implements the paper's fork-pre-execute methodology
// (§5.1, Fig. 13): at an epoch boundary the simulator state is forked
// into one sampling run per V/f state; sample s assigns domain d the
// state (d+s) mod K, shuffling frequencies across domains so that
// cross-domain interference is measured under a representative mix. Each
// sample pre-executes the next epoch and reports per-domain (and
// optionally per-wavefront) instructions committed, after which the
// parent re-executes the epoch with the frequencies the policy selects.
//
// The paper forks simulator processes; this package clones the in-process
// simulator state (sim.GPU.Clone), which is functionally identical and
// deterministic. Clones are copy-on-write — cache tag arrays, the bulk of
// the state, are shared with the parent until first mutation — so forking
// is cheap, and each fork is Released when its sample has been read so
// the parent regains in-place mutation of anything left shared.
package oracle

import (
	"pcstall/internal/clock"
	"pcstall/internal/estimate"
	"pcstall/internal/metrics"
	"pcstall/internal/power"
	"pcstall/internal/sim"
	"pcstall/internal/telemetry"
)

// Telemetry is the sampler's metric bundle: how many simulator forks the
// fork-pre-execute methodology spawned and how much simulated time those
// forks pre-executed — the oracle's methodological cost (§5.1). A nil
// *Telemetry ignores recording.
type Telemetry struct {
	// Forks counts cloned simulators (one per sample).
	Forks *telemetry.Counter
	// PreExecPs counts simulated picoseconds executed inside forks.
	PreExecPs *telemetry.Counter
	// Interpolated counts (domain, state) cells filled by interpolation
	// rather than direct sampling (sample-count ablations).
	Interpolated *telemetry.Counter
}

// NewTelemetry builds the bundle on r (nil r yields nil).
func NewTelemetry(r *telemetry.Registry) *Telemetry {
	if r == nil {
		return nil
	}
	return &Telemetry{
		Forks:        r.Counter("oracle_forks_total", "simulator clones forked for pre-execution sampling"),
		PreExecPs:    r.Counter("oracle_preexec_ps_total", "simulated time pre-executed inside oracle forks, picoseconds"),
		Interpolated: r.Counter("oracle_interpolated_cells_total", "truth cells filled by interpolation instead of sampling"),
	}
}

// WFTruth is one wavefront's sampled behaviour across all V/f states.
type WFTruth struct {
	// StartPC is the byte PC the wavefront held at the sampled epoch's
	// start (identical across samples — all forks share the start
	// state).
	StartPC uint64
	// AgeRank is the wavefront's age order within its CU at the epoch
	// start (0 = oldest, identical across samples).
	AgeRank int32
	// Committed[k] is the wavefront's committed instructions when its
	// domain ran state k.
	Committed []float64
	// ResidentPs[k] is its residency in that sample.
	ResidentPs []int64
}

// Truth is the sampled ground truth for one upcoming epoch.
type Truth struct {
	// EpochPs is the sampled epoch duration.
	EpochPs clock.Time
	// I[d][k] is instructions domain d commits at state k.
	I [][]float64
	// E[d][k] is domain d's core energy at state k (from the power
	// model applied to the sample's activity).
	E [][]float64
	// WF[cu] maps GlobalWave → per-state truth; populated only when the
	// sampler's CollectWF is set.
	WF []map[int64]*WFTruth
}

// Slope returns domain d's true sensitivity (instructions per MHz) by
// linear regression over the sampled states.
func (t *Truth) Slope(grid clock.Grid, d int) (slope, r2 float64) {
	xs := make([]float64, len(t.I[d]))
	for k := range xs {
		xs[k] = float64(grid.State(k))
	}
	slope, _, r2 = metrics.LinearFit(xs, t.I[d])
	return slope, r2
}

// WFEstimateTrue converts a wavefront's sampled curve into the linear
// (IRef, Slope) form the PC table stores — this is what the impractical
// ACCPC design feeds its table.
func (w *WFTruth) WFEstimateTrue(grid clock.Grid) estimate.WFEstimate {
	xs := make([]float64, len(w.Committed))
	for k := range xs {
		xs[k] = float64(grid.State(k))
	}
	slope, intercept, _ := metrics.LinearFit(xs, w.Committed)
	fRef := grid.Mid()
	return estimate.WFEstimate{IRef: intercept + slope*float64(fRef), Slope: slope}
}

// Sampler pre-executes upcoming epochs across the frequency grid.
//
// A Sampler is single-goroutine: the scratch EpochSample is reused across
// samples, so SampleNext must not be called concurrently on the same
// Sampler. Distinct Samplers may sample the same quiescent parent GPU from
// different goroutines — the copy-on-write clone machinery is built for
// exactly that — as long as nothing runs the parent meanwhile. The
// returned Truth never aliases the scratch state: every slice and map in
// it is freshly allocated, so it stays valid across later SampleNext
// calls.
type Sampler struct {
	Grid clock.Grid
	PM   *power.Model
	// CollectWF enables per-wavefront truth (needed by ACCPC and the
	// wavefront-level characterization figures; costs allocation).
	CollectWF bool
	// Samples optionally limits the number of forked samples (0 = one
	// per V/f state, the paper's configuration). Fewer samples leave
	// some (domain, state) cells estimated by linear interpolation —
	// used by the sample-count ablation.
	Samples int
	// Metrics, when non-nil, receives fork/pre-execute accounting.
	Metrics *Telemetry

	scratch sim.EpochSample
}

// SampleNext forks g and pre-executes the next epoch of the given
// duration under shuffled frequency assignments. g itself is not
// modified.
func (s *Sampler) SampleNext(g *sim.GPU, epoch clock.Time) *Truth {
	k := s.Grid.Count()
	nd := g.Cfg.Domains.NumDomains()
	t := &Truth{
		EpochPs: epoch,
		I:       make([][]float64, nd),
		E:       make([][]float64, nd),
	}
	for d := 0; d < nd; d++ {
		t.I[d] = make([]float64, k)
		t.E[d] = make([]float64, k)
	}
	filled := make([][]bool, nd)
	for d := range filled {
		filled[d] = make([]bool, k)
	}
	if s.CollectWF {
		t.WF = make([]map[int64]*WFTruth, g.Cfg.NumCUs)
		for c := range t.WF {
			t.WF[c] = make(map[int64]*WFTruth)
		}
	}

	nSamples := s.Samples
	if nSamples <= 0 || nSamples > k {
		nSamples = k
	}
	simds := g.Cfg.SIMDsPerCU
	cusPerDom := g.Cfg.Domains.CUsPerDomain

	for smp := 0; smp < nSamples; smp++ {
		c := g.Clone()
		// Reset the clone's per-epoch counters so the sample measures
		// exactly the pre-executed epoch, regardless of when the parent
		// last collected. ResetEpoch discards instead of collecting —
		// no record building for counters nobody reads.
		c.ResetEpoch()
		for d := 0; d < nd; d++ {
			c.SetDomainFreq(d, s.Grid.State((d+smp)%k), 0)
		}
		start := c.Now
		c.RunUntil(c.Now + epoch)
		dur := c.Now - start
		if s.Metrics != nil {
			s.Metrics.Forks.Inc()
			s.Metrics.PreExecPs.Add(int64(dur))
		}
		// The per-domain truth reads the fork's live epoch counters
		// directly; the full EpochSample (with its per-wave records) is
		// built only when the caller wants per-wavefront truth, and only
		// after these reads — CollectEpoch resets the live counters.
		for d := 0; d < nd; d++ {
			st := (d + smp) % k
			var committed, issue int64
			lo, hi := g.Cfg.Domains.CUs(d)
			for cu := lo; cu < hi; cu++ {
				committed += c.CUs[cu].C.Committed
				issue += c.CUs[cu].C.IssueSlots
			}
			t.I[d][st] = float64(committed)
			t.E[d][st] = s.PM.DomainEpochEnergyJ(s.Grid.State(st), issue, cusPerDom, simds, dur) +
				s.PM.UncoreShareJ(dur, nd)
			filled[d][st] = true
		}
		if s.CollectWF {
			c.CollectEpoch(&s.scratch)
			collectWF(g, t, &s.scratch, smp, k)
		}
		// The fork is done: release its copy-on-write shares so the
		// parent regains in-place mutation and privatized arrays recycle.
		c.Release()
	}
	if nSamples < k {
		if s.Metrics != nil {
			s.Metrics.Interpolated.Add(int64(nd * (k - nSamples)))
		}
		interpolate(t, filled)
	}
	return t
}

// collectWF records per-wavefront committed counts from one sample into t.
func collectWF(g *sim.GPU, t *Truth, es *sim.EpochSample, smp, k int) {
	for cu := range es.CUs {
		d := g.Cfg.Domains.DomainOf(cu)
		st := (d + smp) % k
		for i := range es.CUs[cu].WFs {
			rec := &es.CUs[cu].WFs[i]
			wt := t.WF[cu][rec.GlobalWave]
			if wt == nil {
				wt = &WFTruth{
					StartPC:    rec.StartPC,
					AgeRank:    rec.AgeRank,
					Committed:  make([]float64, k),
					ResidentPs: make([]int64, k),
				}
				t.WF[cu][rec.GlobalWave] = wt
			}
			wt.Committed[st] = float64(rec.C.Committed)
			wt.ResidentPs[st] = rec.ResidentPs
		}
	}
}

// interpolate fills unsampled (domain, state) cells linearly from the
// sampled ones (ablation mode only).
func interpolate(t *Truth, filled [][]bool) {
	for d := range t.I {
		xs := make([]float64, 0, len(t.I[d]))
		ys := make([]float64, 0, len(t.I[d]))
		es := make([]float64, 0, len(t.I[d]))
		for k := range t.I[d] {
			if filled[d][k] {
				xs = append(xs, float64(k))
				ys = append(ys, t.I[d][k])
				es = append(es, t.E[d][k])
			}
		}
		slopeI, interI, _ := metrics.LinearFit(xs, ys)
		slopeE, interE, _ := metrics.LinearFit(xs, es)
		for k := range t.I[d] {
			if !filled[d][k] {
				t.I[d][k] = interI + slopeI*float64(k)
				t.E[d][k] = interE + slopeE*float64(k)
			}
		}
	}
}
