package oracle_test

import (
	"testing"

	"pcstall/internal/clock"
	"pcstall/internal/oracle"
	"pcstall/internal/power"
	"pcstall/internal/sim"
	"pcstall/internal/workload"
)

// BenchmarkSampleNext measures the full fork-pre-execute cost of one
// oracle sampling sweep (one fork per V/f state, each pre-executing a
// 1µs epoch) on a warmed-up 8-CU GPU. This is the per-epoch price every
// truth-consuming policy (ACC, ACCPC, sample-count ablations) pays, and
// the number BENCH_sim.json tracks for the CoW snapshot work.
func BenchmarkSampleNext(b *testing.B) {
	for _, app := range []string{"dgemm", "xsbench"} {
		b.Run(app, func(b *testing.B) {
			cfg := sim.DefaultConfig(8)
			a := workload.MustBuild(app, workload.DefaultGenConfig(8))
			g, err := sim.New(cfg, a.Kernels, a.Launches)
			if err != nil {
				b.Fatal(err)
			}
			g.RunUntil(10 * clock.Microsecond)
			pm := power.DefaultModelFor(8)
			s := &oracle.Sampler{Grid: cfg.Grid, PM: &pm}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.SampleNext(g, clock.Microsecond)
			}
		})
	}
}
