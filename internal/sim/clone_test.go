package sim_test

import (
	"testing"

	"pcstall/internal/clock"
	"pcstall/internal/sim"
	"pcstall/internal/workload"
)

func mustGPU(t *testing.T, appName string, cus int) *sim.GPU {
	t.Helper()
	cfg := sim.DefaultConfig(cus)
	app := workload.MustBuild(appName, workload.DefaultGenConfig(cus))
	g, err := sim.New(cfg, app.Kernels, app.Launches)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCloneDeterminism is the oracle's core requirement: a clone must
// execute identically to its parent when driven by the same frequency
// schedule.
func TestCloneDeterminism(t *testing.T) {
	for _, name := range []string{"comd", "xsbench", "dgemm", "quickS"} {
		t.Run(name, func(t *testing.T) {
			g := mustGPU(t, name, 2)
			g.RunUntil(30 * clock.Microsecond)

			c := g.Clone()
			limit := g.Now + 40*clock.Microsecond
			g.RunUntil(limit)
			c.RunUntil(limit)

			if g.Now != c.Now {
				t.Fatalf("Now diverged: %d vs %d", g.Now, c.Now)
			}
			if g.TotalCommitted != c.TotalCommitted {
				t.Fatalf("TotalCommitted diverged: %d vs %d", g.TotalCommitted, c.TotalCommitted)
			}
			if g.Finished != c.Finished {
				t.Fatalf("Finished diverged: %v vs %v", g.Finished, c.Finished)
			}
			var a, b sim.EpochSample
			g.CollectEpoch(&a)
			c.CollectEpoch(&b)
			for i := range a.CUs {
				if a.CUs[i].C != b.CUs[i].C {
					t.Fatalf("CU %d counters diverged:\n%+v\n%+v", i, a.CUs[i].C, b.CUs[i].C)
				}
				if len(a.CUs[i].WFs) != len(b.CUs[i].WFs) {
					t.Fatalf("CU %d wavefront record count diverged", i)
				}
				for j := range a.CUs[i].WFs {
					if a.CUs[i].WFs[j] != b.CUs[i].WFs[j] {
						t.Fatalf("CU %d WF %d diverged:\n%+v\n%+v", i, j, a.CUs[i].WFs[j], b.CUs[i].WFs[j])
					}
				}
			}
		})
	}
}

// TestCloneIsolation verifies that running a clone does not perturb the
// parent.
func TestCloneIsolation(t *testing.T) {
	g := mustGPU(t, "comd", 2)
	g.RunUntil(20 * clock.Microsecond)
	before := g.TotalCommitted
	now := g.Now

	c := g.Clone()
	c.SetDomainFreq(0, 2200, clock.TransitionLatency(clock.Microsecond))
	c.RunUntil(c.Now + 50*clock.Microsecond)

	if g.TotalCommitted != before || g.Now != now {
		t.Fatalf("parent perturbed by clone run: committed %d->%d now %d->%d",
			before, g.TotalCommitted, now, g.Now)
	}
	g.RunUntil(g.Now + clock.Microsecond)
	if g.TotalCommitted <= before {
		t.Fatal("parent stopped making progress after clone ran")
	}
}

// TestFrequencyScalesComputeBoundWork checks the physical premise of the
// whole paper: a compute-bound workload commits more instructions per
// fixed-time epoch at a higher frequency, while a memory-bound one barely
// changes.
func TestFrequencyScalesComputeBoundWork(t *testing.T) {
	rate := func(name string, f clock.Freq) float64 {
		cfg := sim.DefaultConfig(2)
		cfg.InitFreq = f
		app := workload.MustBuild(name, workload.DefaultGenConfig(2))
		g, err := sim.New(cfg, app.Kernels, app.Launches)
		if err != nil {
			t.Fatal(err)
		}
		g.RunUntil(100 * clock.Microsecond) // apps may finish earlier
		return float64(g.TotalCommitted) / float64(g.Now)
	}

	dgemmGain := rate("dgemm", 2200) / rate("dgemm", 1300)
	xsGain := rate("xsbench", 2200) / rate("xsbench", 1300)
	t.Logf("dgemm gain %.3f, xsbench gain %.3f (freq ratio %.3f)", dgemmGain, xsGain, 2200.0/1300.0)

	if dgemmGain < 1.3 {
		t.Errorf("dgemm (compute-bound) gained only %.3f from 1.3->2.2 GHz", dgemmGain)
	}
	if xsGain > 1.25 {
		t.Errorf("xsbench (memory-bound) gained %.3f from 1.3->2.2 GHz; expected near-flat", xsGain)
	}
	if xsGain >= dgemmGain {
		t.Errorf("memory-bound app scaled more than compute-bound app (%.3f >= %.3f)", xsGain, dgemmGain)
	}
}
