package sim

import (
	"sort"

	"pcstall/internal/clock"
	"pcstall/internal/isa"
	"pcstall/internal/mem"
)

// CU is one compute unit: four SIMDs, up to MaxWavesPerCU resident
// wavefronts, a private vector L1, and per-epoch counters. All fields are
// plain data for snapshotting.
type CU struct {
	ID     int32
	Domain int32
	WFs    []Wavefront
	// SIMDFreeAt is the time each SIMD finishes its current instruction.
	SIMDFreeAt []clock.Time
	L1         mem.Cache
	// L1MissOut is the number of in-flight L1 misses (MSHR occupancy).
	L1MissOut int32
	// LoadsInFlight and StoresInFlight count this CU's in-flight lines.
	LoadsInFlight  int32
	StoresInFlight int32
	// CritEnd is the end of the load critical path seen so far.
	CritEnd clock.Time
	// ActiveWaves counts occupied wavefront slots.
	ActiveWaves int32
	// simdQ[s] lists the occupied slots bound to SIMD s in age order
	// (GlobalWave ascending); dispatch appends (wave IDs are monotonic)
	// and retire removes.
	simdQ [][]int32
	// IdleSince marks when the CU last became unable to issue (-1 when
	// it can issue); the idle*
	// flags classify the blocked interval for the estimation models.
	IdleSince   clock.Time
	idleMemWait bool
	idleStore   bool
	idleBarrier bool
	C           CUCounters
	// Retired buffers the records of wavefronts that completed during
	// the current epoch; collect drains it at the boundary.
	Retired []WFRecord
}

const noIdle = clock.Time(-1)

func newCU(id int32, domain int32, cfg *Config) CU {
	cu := CU{
		ID:         id,
		Domain:     domain,
		WFs:        make([]Wavefront, cfg.MaxWavesPerCU),
		SIMDFreeAt: make([]clock.Time, cfg.SIMDsPerCU),
		L1:         cfg.Mem.NewL1(),
		IdleSince:  noIdle,
		simdQ:      make([][]int32, cfg.SIMDsPerCU),
	}
	return cu
}

// freeSlots returns the number of free wavefront slots.
func (cu *CU) freeSlots() int {
	n := 0
	for i := range cu.WFs {
		if cu.WFs[i].State == WFFree {
			n++
		}
	}
	return n
}

// execOutcome classifies one issue attempt.
type execOutcome uint8

const (
	outIssued  execOutcome = iota // SIMD consumed
	outBlocked                    // wavefront changed to a blocked state
	outSkipped                    // structural hazard (MSHRs); try another wave
)

// tick advances the CU by one cycle at time now. It returns true if the CU
// should tick again next cycle (some wavefront can still issue or a SIMD
// is finishing soon).
func (cu *CU) tick(g *GPU, now clock.Time) {
	period := g.Domains[cu.Domain].Freq.PeriodPs()
	issued := false
	for s := 0; s < len(cu.SIMDFreeAt); s++ {
		if cu.SIMDFreeAt[s] > now {
			continue
		}
		// Oldest-first among runnable waves bound to this SIMD (the
		// queue is age-ordered), skipping waves that block or hit a
		// structural hazard without consuming the SIMD.
		q := cu.simdQ[s]
		for qi := 0; qi < len(q); qi++ {
			w := int(q[qi])
			if cu.WFs[w].State != WFRunning {
				continue
			}
			out := cu.exec(g, w, s, now, period)
			if out == outIssued {
				issued = true
				break
			}
			// The queue may have been edited by a retire during exec
			// (barrier release chains); re-read it defensively.
			q = cu.simdQ[s]
		}
	}
	if issued && cu.LoadsInFlight > 0 {
		cu.C.OverlapPs += period
	}
	g.scheduleCU(cu, now)
}

// enqueue registers a dispatched slot on its SIMD's age-ordered queue.
func (cu *CU) enqueue(slot int32) {
	s := cu.WFs[slot].GlobalWave % int64(len(cu.SIMDFreeAt))
	cu.simdQ[s] = append(cu.simdQ[s], slot)
}

// dequeue removes a retired slot from its SIMD queue.
func (cu *CU) dequeue(slot int32) {
	s := cu.WFs[slot].GlobalWave % int64(len(cu.SIMDFreeAt))
	q := cu.simdQ[s]
	for i, v := range q {
		if v == slot {
			cu.simdQ[s] = append(q[:i], q[i+1:]...)
			return
		}
	}
}

func (cu *CU) commit(g *GPU, wf *Wavefront, memOp bool) {
	cu.C.Committed++
	wf.C.Committed++
	if memOp {
		cu.C.MemCommitted++
	}
	g.TotalCommitted++
}

// exec attempts to issue the wavefront's next instruction on SIMD s.
func (cu *CU) exec(g *GPU, w, s int, now clock.Time, period clock.Time) execOutcome {
	wf := &cu.WFs[w]
	prog := &g.Kernels[wf.Kernel].Program
	in := &prog.Code[wf.PC]

	switch in.Kind {
	case isa.VALU, isa.SALU, isa.LDS:
		occ := clock.Time(in.Latency) * period
		cu.SIMDFreeAt[s] = now + occ
		wf.C.OccupancyPs += occ
		cu.C.OccupancyPs += int64(occ)
		cu.C.IssueSlots++
		cu.commit(g, wf, false)
		wf.PC++
		return outIssued

	case isa.VLoad, isa.VStore:
		lines := int32(in.Pattern.Lines)
		if cu.L1MissOut+lines > int32(g.Cfg.Mem.L1MSHRs) {
			// MSHR backpressure: block the wave as memory stall until a
			// miss completes, exactly like an implicit waitcnt. Leaving
			// it runnable would misaccount memory-system time as
			// frequency-scalable core time.
			wf.State = WFThrottled
			wf.BlockedSince = now
			return outBlocked
		}
		store := in.Kind == isa.VStore
		for l := int32(0); l < lines; l++ {
			addr := wf.lineAddr(&in.Pattern, int(l))
			cu.C.LinesIssued++
			if !store && cu.L1.Probe(addr) {
				cu.C.L1Hits++
				g.scheduleLocal(mem.Request{
					Addr: addr, CU: cu.ID, WF: int32(w),
					Issue: now,
				}, now+clock.Time(g.Cfg.Mem.L1Latency)*period)
				wf.OutLoads++
				cu.LoadsInFlight++
				continue
			}
			leading := !store && cu.LoadsInFlight == 0
			if !store {
				cu.C.L1Misses++
			}
			g.submit(mem.Request{
				Addr: addr, CU: cu.ID, WF: int32(w),
				Store: store, Issue: now, Leading: leading,
			})
			cu.L1MissOut++
			if store {
				wf.OutStores++
				cu.StoresInFlight++
			} else {
				wf.OutLoads++
				cu.LoadsInFlight++
			}
		}
		wf.MemCounter++
		cu.SIMDFreeAt[s] = now + period
		wf.C.OccupancyPs += period
		cu.C.OccupancyPs += int64(period)
		cu.C.IssueSlots++
		cu.commit(g, wf, true)
		wf.PC++
		return outIssued

	case isa.WaitCnt:
		if wf.OutLoads+wf.OutStores <= in.Imm {
			cu.SIMDFreeAt[s] = now + period
			wf.C.OccupancyPs += period
			cu.C.OccupancyPs += int64(period)
			cu.C.IssueSlots++
			cu.commit(g, wf, false)
			wf.PC++
			return outIssued
		}
		wf.State = WFWaitCnt
		wf.WaitThresh = in.Imm
		wf.BlockedSince = now
		return outBlocked

	case isa.Barrier:
		wf.State = WFBarrier
		wf.BlockedSince = now
		cu.tryReleaseBarrier(g, wf.WG, now)
		if wf.State == WFRunning {
			// This wave was the last arrival; its barrier committed
			// during the release. It may issue again next cycle.
			return outBlocked
		}
		return outBlocked

	case isa.Branch:
		slot := in.BranchSlot
		if wf.Loop[slot] > 0 {
			wf.Loop[slot]--
			wf.PC = in.Imm
		} else {
			wf.Loop[slot] = wf.LoopReload[slot]
			wf.PC++
		}
		cu.SIMDFreeAt[s] = now + period
		wf.C.OccupancyPs += period
		cu.C.OccupancyPs += int64(period)
		cu.C.IssueSlots++
		cu.commit(g, wf, false)
		return outIssued

	case isa.EndPgm:
		if wf.OutLoads+wf.OutStores > 0 {
			// Implicit waitcnt 0 before program end so responses never
			// target a recycled slot.
			wf.State = WFWaitCnt
			wf.WaitThresh = 0
			wf.BlockedSince = now
			return outBlocked
		}
		cu.SIMDFreeAt[s] = now + period
		wf.C.OccupancyPs += period
		cu.C.OccupancyPs += int64(period)
		cu.C.IssueSlots++
		cu.commit(g, wf, false)
		cu.retire(g, w, now)
		return outIssued

	default:
		// Unreachable for kernels validated by New (Program.Validate
		// rejects unknown kinds); a program corrupted in flight degrades
		// to a structured watchdog stop instead of a panic.
		g.Stuck = &DeadlockError{
			Kind: DeadlockBadInstr, CU: cu.ID, Slot: int32(w),
			WG: wf.WG, GlobalWave: wf.GlobalWave, PC: prog.PC(wf.PC),
			Now: now, Cycles: g.Cycles, Waiting: g.residentWaves(),
		}
		return outBlocked
	}
}

// tryReleaseBarrier releases workgroup wg's waves if all have arrived.
func (cu *CU) tryReleaseBarrier(g *GPU, wg int64, now clock.Time) {
	arrived := int32(0)
	var size int32
	for i := range cu.WFs {
		wf := &cu.WFs[i]
		if wf.State == WFBarrier && wf.WG == wg {
			arrived++
			size = wf.WGSize
		}
	}
	if arrived < size {
		return
	}
	for i := range cu.WFs {
		wf := &cu.WFs[i]
		if wf.State != WFBarrier || wf.WG != wg {
			continue
		}
		wf.C.BarrierPs += now - wf.BlockedSince
		wf.State = WFRunning
		cu.commit(g, wf, false)
		wf.PC++
	}
}

// retire frees a completed wavefront's slot, flushing its epoch record.
func (cu *CU) retire(g *GPU, w int, now clock.Time) {
	wf := &cu.WFs[w]
	prog := &g.Kernels[wf.Kernel].Program
	cu.Retired = append(cu.Retired, WFRecord{
		Slot:       int32(w),
		GlobalWave: wf.GlobalWave,
		StartPC:    wf.EpochStartPC,
		EndPC:      prog.PC(wf.PC),
		Done:       true,
		ResidentPs: wf.resident(g.EpochStart, now),
		C:          wf.C,
	})
	cu.dequeue(int32(w))
	wf.State = WFFree
	cu.ActiveWaves--
	g.noteWaveDone(now)
}

// canIssue reports whether any wavefront could issue now or once a SIMD
// frees (used to decide whether the CU may sleep).
func (cu *CU) canIssue() bool {
	for i := range cu.WFs {
		if cu.WFs[i].State == WFRunning {
			return true
		}
	}
	return false
}

// beginIdle classifies and opens an idle interval at time now.
func (cu *CU) beginIdle(now clock.Time) {
	if cu.IdleSince != noIdle {
		return
	}
	cu.IdleSince = now
	cu.idleMemWait = false
	cu.idleStore = false
	cu.idleBarrier = false
	anyBlocked := false
	for i := range cu.WFs {
		wf := &cu.WFs[i]
		switch wf.State {
		case WFWaitCnt, WFThrottled:
			anyBlocked = true
			cu.idleMemWait = true
			if wf.OutStores > 0 {
				cu.idleStore = true
			}
		case WFBarrier:
			anyBlocked = true
		}
	}
	cu.idleBarrier = anyBlocked && !cu.idleMemWait
}

// closeIdle ends an open idle interval at time now, attributing the
// blocked time to the estimation-model counters.
func (cu *CU) closeIdle(now clock.Time) {
	if cu.IdleSince == noIdle {
		return
	}
	dur := now - cu.IdleSince
	if dur > 0 && cu.ActiveWaves > 0 {
		if cu.idleMemWait {
			cu.C.MemBlockedPs += dur
			if cu.idleStore {
				cu.C.StoreStallPs += dur
			}
		} else if cu.idleBarrier {
			cu.C.BarrierOnlyPs += dur
		}
	}
	cu.IdleSince = noIdle
}

// collect finalizes the epoch ending at end and fills rec (reused across
// epochs) with this CU's sample, then resets epoch state for the next
// epoch starting at end.
func (cu *CU) collect(g *GPU, end clock.Time, out *CUEpoch) {
	// Close open blocked intervals so their time lands in this epoch.
	cu.closeIdle(end)
	for i := range cu.WFs {
		wf := &cu.WFs[i]
		switch wf.State {
		case WFWaitCnt, WFThrottled:
			wf.C.StallPs += end - wf.BlockedSince
			wf.BlockedSince = end
		case WFBarrier:
			wf.C.BarrierPs += end - wf.BlockedSince
			wf.BlockedSince = end
		}
	}

	out.CU = cu.ID
	out.C = cu.C
	out.WFs = out.WFs[:0]
	out.WFs = append(out.WFs, cu.Retired...)
	for i := range cu.WFs {
		wf := &cu.WFs[i]
		if wf.State == WFFree {
			continue
		}
		prog := &g.Kernels[wf.Kernel].Program
		out.WFs = append(out.WFs, WFRecord{
			Slot:       int32(i),
			GlobalWave: wf.GlobalWave,
			StartPC:    wf.EpochStartPC,
			EndPC:      prog.PC(wf.PC),
			ResidentPs: wf.resident(g.EpochStart, end),
			C:          wf.C,
		})
	}
	// Age ranks: 0 = oldest (highest priority under oldest-first).
	sort.Slice(out.WFs, func(a, b int) bool {
		return out.WFs[a].GlobalWave < out.WFs[b].GlobalWave
	})
	for i := range out.WFs {
		out.WFs[i].AgeRank = int32(i)
	}

	// Reset for the next epoch.
	cu.C = CUCounters{}
	cu.Retired = cu.Retired[:0]
	for i := range cu.WFs {
		wf := &cu.WFs[i]
		if wf.State == WFFree {
			continue
		}
		wf.C.reset()
		prog := &g.Kernels[wf.Kernel].Program
		wf.EpochStartPC = prog.PC(wf.PC)
		if wf.DispatchedAt < end {
			wf.DispatchedAt = end // clamp residency to the new epoch
		}
	}
	// Re-open the idle interval if the CU is still blocked.
	if !cu.canIssue() && cu.ActiveWaves > 0 {
		cu.beginIdle(end)
	}
}

// clone deep-copies the CU.
func (cu *CU) clone() CU {
	cp := *cu
	cp.WFs = make([]Wavefront, len(cu.WFs))
	for i := range cu.WFs {
		w := cu.WFs[i]
		w.Loop = append([]int32(nil), cu.WFs[i].Loop...)
		w.LoopReload = append([]int32(nil), cu.WFs[i].LoopReload...)
		cp.WFs[i] = w
	}
	cp.SIMDFreeAt = append([]clock.Time(nil), cu.SIMDFreeAt...)
	cp.L1 = cu.L1.Clone()
	cp.Retired = append([]WFRecord(nil), cu.Retired...)
	cp.simdQ = make([][]int32, len(cu.simdQ))
	for s := range cu.simdQ {
		cp.simdQ[s] = append([]int32(nil), cu.simdQ[s]...)
	}
	return cp
}
