package sim

import (
	"math/bits"

	"pcstall/internal/clock"
	"pcstall/internal/isa"
	"pcstall/internal/mem"
)

// CU is one compute unit: four SIMDs, up to MaxWavesPerCU resident
// wavefronts, a private vector L1, and per-epoch counters. All fields are
// plain data for snapshotting.
type CU struct {
	ID     int32
	Domain int32
	WFs    []Wavefront
	// SIMDFreeAt is the time each SIMD finishes its current instruction.
	SIMDFreeAt []clock.Time
	L1         mem.Cache
	// L1MissOut is the number of in-flight L1 misses (MSHR occupancy).
	L1MissOut int32
	// LoadsInFlight and StoresInFlight count this CU's in-flight lines.
	LoadsInFlight  int32
	StoresInFlight int32
	// CritEnd is the end of the load critical path seen so far.
	CritEnd clock.Time
	// ActiveWaves counts occupied wavefront slots.
	ActiveWaves int32
	// simdQ[s] lists the occupied slots bound to SIMD s in age order
	// (GlobalWave ascending); dispatch appends (wave IDs are monotonic)
	// and retire removes.
	simdQ [][]int32
	// runnable[s] counts WFRunning waves on SIMD s, maintained at every
	// state transition so scheduleCU and tick are O(#SIMDs) instead of
	// scanning wave slots.
	runnable []int32
	// runMask[s] mirrors runnable as a bitmask over simdQ positions: bit
	// p is set iff cu.WFs[simdQ[s][p]].State == WFRunning. tick jumps
	// straight to the oldest runnable wave with a trailing-zero count
	// instead of walking past blocked queue entries. Only maintained
	// when MaxWavesPerCU ≤ 64 (nil otherwise; tick then falls back to
	// the sequential scan).
	runMask []uint64
	// thrQ is the MSHR replay queue: slots of WFThrottled waves in the
	// order they throttled, consumed FIFO by the wake path in
	// applyCompletion. It is a circular buffer of capacity len(WFs) —
	// a wave is queued at most once, so it cannot overflow. throttled is
	// the queue length.
	thrQ      []int32
	thrHead   int32
	throttled int32
	// blockedMem counts waves in WFWaitCnt or WFThrottled, blockedStore
	// those of them with stores still in flight, and blockedBarrier waves
	// parked at a barrier — beginIdle's O(1) classification inputs,
	// maintained at every state (and blocked-store-drain) transition.
	blockedMem     int32
	blockedStore   int32
	blockedBarrier int32
	// loopArena and reloadArena back every resident wavefront's Loop and
	// LoopReload slices (slot i owns [i*loopStride, (i+1)*loopStride)), so
	// dispatch and clone never allocate per-wave loop state.
	loopArena   []int32
	reloadArena []int32
	loopStride  int32
	// cycleMark is the time of this CU's previous tick (or wake from
	// idle); the span since it is charged to the GPU cycle budget so
	// leaping over a known-busy stretch still counts every skipped cycle.
	cycleMark clock.Time
	// dirtySched marks the CU as needing a scheduleCU pass at the end of
	// the current completion batch (event-driven loop only).
	dirtySched bool
	// IdleSince marks when the CU last became unable to issue (-1 when
	// it can issue); the idle*
	// flags classify the blocked interval for the estimation models.
	IdleSince   clock.Time
	idleMemWait bool
	idleStore   bool
	idleBarrier bool
	C           CUCounters
	// Retired buffers the records of wavefronts that completed during
	// the current epoch; collect drains it at the boundary.
	Retired []WFRecord
}

const noIdle = clock.Time(-1)

func newCU(id int32, domain int32, cfg *Config, maxBranchSlots int) CU {
	cu := CU{
		ID:         id,
		Domain:     domain,
		WFs:        make([]Wavefront, cfg.MaxWavesPerCU),
		SIMDFreeAt: make([]clock.Time, cfg.SIMDsPerCU),
		L1:         cfg.Mem.NewL1(),
		IdleSince:  noIdle,
		simdQ:      make([][]int32, cfg.SIMDsPerCU),
		runnable:   make([]int32, cfg.SIMDsPerCU),
		loopStride: int32(maxBranchSlots),
	}
	if cfg.MaxWavesPerCU <= 64 {
		cu.runMask = make([]uint64, cfg.SIMDsPerCU)
	}
	cu.thrQ = make([]int32, cfg.MaxWavesPerCU)
	if maxBranchSlots > 0 {
		cu.loopArena = make([]int32, maxBranchSlots*cfg.MaxWavesPerCU)
		cu.reloadArena = make([]int32, maxBranchSlots*cfg.MaxWavesPerCU)
		for i := range cu.WFs {
			off := i * maxBranchSlots
			// Zero-length windows with full capacity; Wavefront.init
			// reslices within the window instead of allocating.
			cu.WFs[i].Loop = cu.loopArena[off : off : off+maxBranchSlots]
			cu.WFs[i].LoopReload = cu.reloadArena[off : off : off+maxBranchSlots]
		}
	}
	return cu
}

// noteRunnable and noteBlocked maintain the per-SIMD runnable counts and
// run masks; they must bracket every WFRunning transition. The wave's
// SIMD binding is cached in wf.SIMD and its queue position in wf.QPos,
// both maintained by enqueue/dequeue.
func (cu *CU) noteRunnable(wf *Wavefront) {
	cu.runnable[wf.SIMD]++
	if cu.runMask != nil {
		cu.runMask[wf.SIMD] |= 1 << uint(wf.QPos)
	}
}

func (cu *CU) noteBlocked(wf *Wavefront) {
	cu.runnable[wf.SIMD]--
	if cu.runMask != nil {
		cu.runMask[wf.SIMD] &^= 1 << uint(wf.QPos)
	}
}

// noteMemBlocked and noteMemWake maintain the memory-blocked counts that
// classify idle intervals; call them when a wave enters or leaves
// WFWaitCnt/WFThrottled.
func (cu *CU) noteMemBlocked(wf *Wavefront) {
	cu.blockedMem++
	if wf.OutStores > 0 {
		cu.blockedStore++
	}
}

func (cu *CU) noteMemWake(wf *Wavefront) {
	cu.blockedMem--
	if wf.OutStores > 0 {
		cu.blockedStore--
	}
}

// thrPush appends wave slot w to the MSHR replay queue.
func (cu *CU) thrPush(w int32) {
	i := cu.thrHead + cu.throttled
	if n := int32(len(cu.thrQ)); i >= n {
		i -= n
	}
	cu.thrQ[i] = w
	cu.throttled++
}

// thrPop removes and returns the head of the MSHR replay queue.
func (cu *CU) thrPop() int32 {
	w := cu.thrQ[cu.thrHead]
	cu.thrHead++
	if cu.thrHead >= int32(len(cu.thrQ)) {
		cu.thrHead = 0
	}
	cu.throttled--
	return w
}

// freeSlots returns the number of free wavefront slots.
func (cu *CU) freeSlots() int {
	n := 0
	for i := range cu.WFs {
		if cu.WFs[i].State == WFFree {
			n++
		}
	}
	return n
}

// execOutcome classifies one issue attempt.
type execOutcome uint8

const (
	outIssued  execOutcome = iota // SIMD consumed
	outBlocked                    // wavefront changed to a blocked state
	outSkipped                    // structural hazard (MSHRs); try another wave
)

// tick advances the CU by one cycle at time now. The CU only ever ticks at
// "interesting" times — scheduleCU leaps it straight to the next cycle at
// which some runnable wavefront's SIMD is free — so the span since the
// previous tick is charged to the GPU cycle budget here: skipping cycles
// must not loosen Config.MaxCycles.
func (cu *CU) tick(g *GPU, now clock.Time) {
	dom := &g.Domains[cu.Domain]
	period := dom.PeriodPs()
	if now-cu.cycleMark <= period {
		g.Cycles++ // common case: consecutive cycles
	} else {
		dc := (now - cu.cycleMark) / period
		if dc < 1 {
			dc = 1
		}
		g.Cycles += dc
	}
	cu.cycleMark = now
	issued := false
	for s := 0; s < len(cu.SIMDFreeAt); s++ {
		if cu.SIMDFreeAt[s] > now || cu.runnable[s] == 0 {
			continue
		}
		// Oldest-first among runnable waves bound to this SIMD (the
		// queue is age-ordered), skipping waves that block or hit a
		// structural hazard without consuming the SIMD.
		q := cu.simdQ[s]
		if cu.runMask != nil {
			// Jump straight to each runnable queue position instead of
			// walking past blocked entries. The cursor is monotonic: a
			// wave at or below qi that becomes runnable during exec
			// (barrier release) is not revisited this cycle, matching the
			// sequential scan, which had already passed it. The queue is
			// only edited on the outIssued path (retire), which breaks,
			// so q stays valid across iterations.
			for m := cu.runMask[s]; m != 0; {
				qi := bits.TrailingZeros64(m)
				out := cu.exec(g, int(q[qi]), s, now, period)
				if out == outIssued {
					issued = true
					break
				}
				m = cu.runMask[s] &^ (1<<uint(qi+1) - 1)
			}
		} else {
			for qi := 0; qi < len(q); qi++ {
				w := int(q[qi])
				if cu.WFs[w].State != WFRunning {
					continue
				}
				out := cu.exec(g, w, s, now, period)
				if out == outIssued {
					issued = true
					break
				}
				// The queue may have been edited by a retire during exec
				// (barrier release chains); re-read it defensively.
				q = cu.simdQ[s]
			}
		}
	}
	if issued && cu.LoadsInFlight > 0 {
		cu.C.OverlapPs += period
	}
	g.scheduleCU(cu, now)
}

// enqueue registers a freshly dispatched (WFRunning) slot on its SIMD's
// age-ordered queue, caching the wave's SIMD binding.
func (cu *CU) enqueue(slot int32) {
	wf := &cu.WFs[slot]
	wf.SIMD = int32(wf.GlobalWave % int64(len(cu.SIMDFreeAt)))
	wf.QPos = int32(len(cu.simdQ[wf.SIMD]))
	cu.simdQ[wf.SIMD] = append(cu.simdQ[wf.SIMD], slot)
	cu.noteRunnable(wf)
}

// dequeue removes a retiring slot from its SIMD queue, compacting the
// queue positions and run-mask bits above it. Retire is the only caller
// and always runs while the wave is still WFRunning.
func (cu *CU) dequeue(slot int32) {
	wf := &cu.WFs[slot]
	s, i := wf.SIMD, wf.QPos
	cu.noteBlocked(wf)
	q := cu.simdQ[s]
	cu.simdQ[s] = append(q[:i], q[i+1:]...)
	q = cu.simdQ[s]
	for j := int(i); j < len(q); j++ {
		cu.WFs[q[j]].QPos = int32(j)
	}
	if cu.runMask != nil {
		m := cu.runMask[s]
		low := m & (1<<uint(i) - 1)
		cu.runMask[s] = low | m>>uint(i+1)<<uint(i)
	}
}

func (cu *CU) commit(g *GPU, wf *Wavefront, memOp bool) {
	cu.C.Committed++
	wf.C.Committed++
	if memOp {
		cu.C.MemCommitted++
	}
	g.TotalCommitted++
}

// exec attempts to issue the wavefront's next instruction on SIMD s.
func (cu *CU) exec(g *GPU, w, s int, now clock.Time, period clock.Time) execOutcome {
	wf := &cu.WFs[w]
	prog := &g.Kernels[wf.Kernel].Program
	in := &prog.Code[wf.PC]

	switch in.Kind {
	case isa.VALU, isa.SALU, isa.LDS:
		occ := clock.Time(in.Latency) * period
		cu.SIMDFreeAt[s] = now + occ
		wf.C.OccupancyPs += occ
		cu.C.OccupancyPs += int64(occ)
		cu.C.IssueSlots++
		cu.commit(g, wf, false)
		wf.PC++
		return outIssued

	case isa.VLoad, isa.VStore:
		lines := int32(in.Pattern.Lines)
		if cu.L1MissOut+lines > int32(g.Cfg.Mem.L1MSHRs) {
			// MSHR backpressure: block the wave as memory stall until a
			// miss completes, exactly like an implicit waitcnt. Leaving
			// it runnable would misaccount memory-system time as
			// frequency-scalable core time.
			wf.State = WFThrottled
			wf.ThrLines = lines
			wf.BlockedSince = now
			cu.noteBlocked(wf)
			cu.noteMemBlocked(wf)
			cu.thrPush(int32(w))
			return outBlocked
		}
		store := in.Kind == isa.VStore
		for l := int32(0); l < lines; l++ {
			addr := wf.lineAddr(&in.Pattern, int(l))
			cu.C.LinesIssued++
			if !store && cu.L1.Probe(addr) {
				cu.C.L1Hits++
				g.scheduleLocal(mem.Request{
					Addr: addr, CU: cu.ID, WF: int32(w),
					Issue: now,
				}, now+clock.Time(g.Cfg.Mem.L1Latency)*period)
				wf.OutLoads++
				cu.LoadsInFlight++
				continue
			}
			leading := !store && cu.LoadsInFlight == 0
			if !store {
				cu.C.L1Misses++
			}
			g.submit(mem.Request{
				Addr: addr, CU: cu.ID, WF: int32(w),
				Store: store, Issue: now, Leading: leading,
			})
			cu.L1MissOut++
			if store {
				wf.OutStores++
				cu.StoresInFlight++
			} else {
				wf.OutLoads++
				cu.LoadsInFlight++
			}
		}
		wf.MemCounter++
		cu.SIMDFreeAt[s] = now + period
		wf.C.OccupancyPs += period
		cu.C.OccupancyPs += int64(period)
		cu.C.IssueSlots++
		cu.commit(g, wf, true)
		wf.PC++
		return outIssued

	case isa.WaitCnt:
		if wf.OutLoads+wf.OutStores <= in.Imm {
			cu.SIMDFreeAt[s] = now + period
			wf.C.OccupancyPs += period
			cu.C.OccupancyPs += int64(period)
			cu.C.IssueSlots++
			cu.commit(g, wf, false)
			wf.PC++
			return outIssued
		}
		wf.State = WFWaitCnt
		wf.WaitThresh = in.Imm
		wf.BlockedSince = now
		cu.noteBlocked(wf)
		cu.noteMemBlocked(wf)
		return outBlocked

	case isa.Barrier:
		wf.State = WFBarrier
		wf.BlockedSince = now
		cu.noteBlocked(wf)
		cu.blockedBarrier++
		cu.tryReleaseBarrier(g, wf.WG, now)
		if wf.State == WFRunning {
			// This wave was the last arrival; its barrier committed
			// during the release. It may issue again next cycle.
			return outBlocked
		}
		return outBlocked

	case isa.Branch:
		slot := in.BranchSlot
		if wf.Loop[slot] > 0 {
			wf.Loop[slot]--
			wf.PC = in.Imm
		} else {
			wf.Loop[slot] = wf.LoopReload[slot]
			wf.PC++
		}
		cu.SIMDFreeAt[s] = now + period
		wf.C.OccupancyPs += period
		cu.C.OccupancyPs += int64(period)
		cu.C.IssueSlots++
		cu.commit(g, wf, false)
		return outIssued

	case isa.EndPgm:
		if wf.OutLoads+wf.OutStores > 0 {
			// Implicit waitcnt 0 before program end so responses never
			// target a recycled slot.
			wf.State = WFWaitCnt
			wf.WaitThresh = 0
			wf.BlockedSince = now
			cu.noteBlocked(wf)
			cu.noteMemBlocked(wf)
			return outBlocked
		}
		cu.SIMDFreeAt[s] = now + period
		wf.C.OccupancyPs += period
		cu.C.OccupancyPs += int64(period)
		cu.C.IssueSlots++
		cu.commit(g, wf, false)
		cu.retire(g, w, now)
		return outIssued

	default:
		// Unreachable for kernels validated by New (Program.Validate
		// rejects unknown kinds); a program corrupted in flight degrades
		// to a structured watchdog stop instead of a panic.
		g.Stuck = &DeadlockError{
			Kind: DeadlockBadInstr, CU: cu.ID, Slot: int32(w),
			WG: wf.WG, GlobalWave: wf.GlobalWave, PC: prog.PC(wf.PC),
			Now: now, Cycles: g.Cycles, Waiting: g.residentWaves(),
		}
		return outBlocked
	}
}

// tryReleaseBarrier releases workgroup wg's waves if all have arrived.
func (cu *CU) tryReleaseBarrier(g *GPU, wg int64, now clock.Time) {
	arrived := int32(0)
	var size int32
	for i := range cu.WFs {
		wf := &cu.WFs[i]
		if wf.State == WFBarrier && wf.WG == wg {
			arrived++
			size = wf.WGSize
		}
	}
	if arrived < size {
		return
	}
	for i := range cu.WFs {
		wf := &cu.WFs[i]
		if wf.State != WFBarrier || wf.WG != wg {
			continue
		}
		wf.C.BarrierPs += now - wf.BlockedSince
		wf.State = WFRunning
		cu.noteRunnable(wf)
		cu.blockedBarrier--
		cu.commit(g, wf, false)
		wf.PC++
	}
}

// retire frees a completed wavefront's slot, flushing its epoch record.
func (cu *CU) retire(g *GPU, w int, now clock.Time) {
	wf := &cu.WFs[w]
	prog := &g.Kernels[wf.Kernel].Program
	cu.Retired = append(cu.Retired, WFRecord{
		Slot:       int32(w),
		GlobalWave: wf.GlobalWave,
		StartPC:    wf.EpochStartPC,
		EndPC:      prog.PC(wf.PC),
		Done:       true,
		ResidentPs: wf.resident(g.EpochStart, now),
		C:          wf.C,
	})
	cu.dequeue(int32(w))
	wf.State = WFFree
	cu.ActiveWaves--
	g.noteWaveDone(now)
}

// canIssue reports whether any wavefront could issue now or once a SIMD
// frees (used to decide whether the CU may sleep).
func (cu *CU) canIssue() bool {
	for _, n := range cu.runnable {
		if n > 0 {
			return true
		}
	}
	return false
}

// beginIdle classifies and opens an idle interval at time now, O(1) from
// the maintained blocked counts.
func (cu *CU) beginIdle(now clock.Time) {
	if cu.IdleSince != noIdle {
		return
	}
	cu.IdleSince = now
	cu.idleMemWait = cu.blockedMem > 0
	cu.idleStore = cu.idleMemWait && cu.blockedStore > 0
	cu.idleBarrier = !cu.idleMemWait && cu.blockedBarrier > 0
}

// closeIdle ends an open idle interval at time now, attributing the
// blocked time to the estimation-model counters.
func (cu *CU) closeIdle(now clock.Time) {
	if cu.IdleSince == noIdle {
		return
	}
	dur := now - cu.IdleSince
	if dur > 0 && cu.ActiveWaves > 0 {
		if cu.idleMemWait {
			cu.C.MemBlockedPs += dur
			if cu.idleStore {
				cu.C.StoreStallPs += dur
			}
		} else if cu.idleBarrier {
			cu.C.BarrierOnlyPs += dur
		}
	}
	cu.IdleSince = noIdle
}

// closeEpochStamps closes open blocked intervals at the epoch boundary so
// their time lands in the finishing epoch.
func (cu *CU) closeEpochStamps(end clock.Time) {
	cu.closeIdle(end)
	for i := range cu.WFs {
		wf := &cu.WFs[i]
		switch wf.State {
		case WFWaitCnt, WFThrottled:
			wf.C.StallPs += end - wf.BlockedSince
			wf.BlockedSince = end
		case WFBarrier:
			wf.C.BarrierPs += end - wf.BlockedSince
			wf.BlockedSince = end
		}
	}
}

// resetEpochState clears per-epoch counters for a new epoch starting at
// end. Together with closeEpochStamps it has exactly collect's state
// effects, minus building the sample.
func (cu *CU) resetEpochState(g *GPU, end clock.Time) {
	cu.C = CUCounters{}
	cu.Retired = cu.Retired[:0]
	for i := range cu.WFs {
		wf := &cu.WFs[i]
		if wf.State == WFFree {
			continue
		}
		wf.C.reset()
		prog := &g.Kernels[wf.Kernel].Program
		wf.EpochStartPC = prog.PC(wf.PC)
		if wf.DispatchedAt < end {
			wf.DispatchedAt = end // clamp residency to the new epoch
		}
	}
	// Re-open the idle interval if the CU is still blocked.
	if !cu.canIssue() && cu.ActiveWaves > 0 {
		cu.beginIdle(end)
	}
}

// collect finalizes the epoch ending at end and fills rec (reused across
// epochs) with this CU's sample, then resets epoch state for the next
// epoch starting at end.
func (cu *CU) collect(g *GPU, end clock.Time, out *CUEpoch) {
	cu.closeEpochStamps(end)

	out.CU = cu.ID
	out.C = cu.C
	out.WFs = out.WFs[:0]
	out.WFs = append(out.WFs, cu.Retired...)
	for i := range cu.WFs {
		wf := &cu.WFs[i]
		if wf.State == WFFree {
			continue
		}
		prog := &g.Kernels[wf.Kernel].Program
		out.WFs = append(out.WFs, WFRecord{
			Slot:       int32(i),
			GlobalWave: wf.GlobalWave,
			StartPC:    wf.EpochStartPC,
			EndPC:      prog.PC(wf.PC),
			ResidentPs: wf.resident(g.EpochStart, end),
			C:          wf.C,
		})
	}
	// Age ranks: 0 = oldest (highest priority under oldest-first).
	// GlobalWave values are unique, so this insertion sort (records are
	// nearly sorted already) yields the same order any sort would, without
	// sort.Slice's per-call allocations.
	recs := out.WFs
	for i := 1; i < len(recs); i++ {
		r := recs[i]
		j := i - 1
		for j >= 0 && recs[j].GlobalWave > r.GlobalWave {
			recs[j+1] = recs[j]
			j--
		}
		recs[j+1] = r
	}
	for i := range recs {
		recs[i].AgeRank = int32(i)
	}

	cu.resetEpochState(g, end)
}

// clone deep-copies the CU. Loop state lives in two flat arenas, so the
// copy is a handful of slice copies regardless of resident wave count; the
// L1 tag arrays are shared copy-on-write.
func (cu *CU) clone() CU {
	cp := *cu
	cp.WFs = make([]Wavefront, len(cu.WFs))
	copy(cp.WFs, cu.WFs)
	cp.loopArena = append([]int32(nil), cu.loopArena...)
	cp.reloadArena = append([]int32(nil), cu.reloadArena...)
	if stride := int(cu.loopStride); stride > 0 {
		for i := range cp.WFs {
			w := &cp.WFs[i]
			off := i * stride
			w.Loop = cp.loopArena[off : off+len(w.Loop) : off+stride]
			w.LoopReload = cp.reloadArena[off : off+len(w.LoopReload) : off+stride]
		}
	}
	cp.SIMDFreeAt = append([]clock.Time(nil), cu.SIMDFreeAt...)
	cp.runnable = append([]int32(nil), cu.runnable...)
	cp.runMask = append([]uint64(nil), cu.runMask...)
	cp.thrQ = append([]int32(nil), cu.thrQ...)
	cp.L1 = cu.L1.Clone()
	cp.Retired = append([]WFRecord(nil), cu.Retired...)
	cp.simdQ = make([][]int32, len(cu.simdQ))
	for s := range cu.simdQ {
		cp.simdQ[s] = append([]int32(nil), cu.simdQ[s]...)
	}
	return cp
}
