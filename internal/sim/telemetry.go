package sim

import "pcstall/internal/telemetry"

// Telemetry is the simulator's metric bundle. The hot event loop never
// touches it: per-epoch counters already accumulate in CUCounters, and
// RecordEpoch folds each collected EpochSample into the registry at the
// epoch boundary, so instrumentation cost is O(CUs) per epoch when a
// registry is attached and a nil check when not. A nil *Telemetry
// ignores all recording.
type Telemetry struct {
	// SimulatedPs counts simulated picoseconds (epoch spans).
	SimulatedPs *telemetry.Counter
	// Cycles counts domain-cycles actually clocked (epoch span × the
	// frequency each domain ran).
	Cycles *telemetry.Counter
	// Committed and IssueSlots mirror the CUCounters work signals.
	Committed  *telemetry.Counter
	IssueSlots *telemetry.Counter
	// Wavefront stall time by cause (§3.2 stall accounting).
	StallMemPs     *telemetry.Counter
	StallStorePs   *telemetry.Counter
	StallBarrierPs *telemetry.Counter
	// Cache probe outcomes.
	L1Hits   *telemetry.Counter
	L1Misses *telemetry.Counter
	L2Hits   *telemetry.Counter
	L2Misses *telemetry.Counter
}

// NewTelemetry builds the bundle on r (nil r yields nil, the disabled
// bundle).
func NewTelemetry(r *telemetry.Registry) *Telemetry {
	if r == nil {
		return nil
	}
	return &Telemetry{
		SimulatedPs:    r.Counter("sim_simulated_ps_total", "simulated time covered by collected epochs, picoseconds"),
		Cycles:         r.Counter("sim_domain_cycles_total", "domain-cycles clocked across all V/f domains"),
		Committed:      r.Counter("sim_instructions_committed_total", "instructions committed by all wavefronts"),
		IssueSlots:     r.Counter("sim_issue_slots_total", "SIMD issue events"),
		StallMemPs:     r.Counter("sim_stall_mem_ps_total", "CU time stalled on s_waitcnt memory waits, picoseconds"),
		StallStorePs:   r.Counter("sim_stall_store_ps_total", "portion of memory stall waiting on outstanding stores, picoseconds"),
		StallBarrierPs: r.Counter("sim_stall_barrier_ps_total", "CU time stalled on workgroup barriers only, picoseconds"),
		L1Hits:         r.Counter("sim_l1_hits_total", "vector L1 probe hits"),
		L1Misses:       r.Counter("sim_l1_misses_total", "vector L1 probe misses"),
		L2Hits:         r.Counter("sim_l2_hits_total", "shared L2 probe hits"),
		L2Misses:       r.Counter("sim_l2_misses_total", "shared L2 probe misses"),
	}
}

// RecordEpoch folds one collected epoch sample into the bundle.
func (m *Telemetry) RecordEpoch(es *EpochSample) {
	if m == nil {
		return
	}
	dur := int64(es.End - es.Start)
	m.SimulatedPs.Add(dur)
	var cycles int64
	for _, f := range es.Freqs {
		// dur ps × f MHz = dur×f×1e-6 cycles.
		cycles += dur * int64(f) / 1e6
	}
	m.Cycles.Add(cycles)
	var committed, issue, mem, store, barrier, l1h, l1m int64
	for i := range es.CUs {
		c := &es.CUs[i].C
		committed += c.Committed
		issue += c.IssueSlots
		mem += c.MemBlockedPs
		store += c.StoreStallPs
		barrier += c.BarrierOnlyPs
		l1h += c.L1Hits
		l1m += c.L1Misses
	}
	m.Committed.Add(committed)
	m.IssueSlots.Add(issue)
	m.StallMemPs.Add(mem)
	m.StallStorePs.Add(store)
	m.StallBarrierPs.Add(barrier)
	m.L1Hits.Add(l1h)
	m.L1Misses.Add(l1m)
}

// RecordRunEnd folds run-cumulative state (the shared L2's lifetime
// probe outcomes) into the bundle. Call once, after the run's final
// epoch, on a GPU that was freshly constructed for the run.
func (m *Telemetry) RecordRunEnd(g *GPU) {
	if m == nil {
		return
	}
	st := g.Msys.Stats()
	m.L2Hits.Add(st.L2Hits)
	m.L2Misses.Add(st.L2Misses)
}
