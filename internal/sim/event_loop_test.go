package sim_test

import (
	"reflect"
	"testing"

	"pcstall/internal/clock"
	"pcstall/internal/isa"
	"pcstall/internal/sim"
	"pcstall/internal/workload"
)

// TestCollectEpochGrowRetainsSamples: reusing one EpochSample across GPUs
// of growing CU count must not let the larger collection scribble over
// per-wave records a consumer retained from the smaller one. (Regression:
// the grow path once copied the old CUEpoch headers into the larger
// array, so the new sample's WFs aliased backing arrays the consumer
// still held.)
func TestCollectEpochGrowRetainsSamples(t *testing.T) {
	build := func(cus int) *sim.GPU {
		a := workload.MustBuild("xsbench", workload.DefaultGenConfig(cus))
		g, err := sim.New(sim.DefaultConfig(cus), a.Kernels, a.Launches)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	var es sim.EpochSample
	small := build(2)
	small.RunUntil(2 * clock.Microsecond)
	small.CollectEpoch(&es)
	retained := es.CUs[0].WFs
	if len(retained) == 0 {
		t.Fatal("no resident waves in the small sample; test needs a live epoch")
	}
	snap := append([]sim.WFRecord(nil), retained...)

	big := build(8)
	big.RunUntil(2 * clock.Microsecond)
	big.CollectEpoch(&es) // grows es.CUs from 2 to 8 entries
	big.RunUntil(4 * clock.Microsecond)
	big.CollectEpoch(&es) // rewrites records in place

	if !reflect.DeepEqual(retained, snap) {
		t.Fatal("records retained from the pre-grow sample were mutated by a later CollectEpoch")
	}
}

// TestThrottledWavesWakeFIFO: waves parked on MSHR backpressure must wake
// in the order they throttled, and the whole parked span must land in
// StallPs — waking a wave that cannot issue (and re-stamping BlockedSince
// when it instantly re-throttles) used to drop the wake-to-re-throttle
// gap from the accounting. With every wave either issuing, memory-stalled,
// or waiting a handful of scheduler cycles, residency must be nearly
// fully explained by occupancy plus stall.
func TestThrottledWavesWakeFIFO(t *testing.T) {
	cfg := sim.DefaultConfig(1)
	cfg.Mem.L1MSHRs = 4
	p := isa.NewBuilder("thr", 0).
		Load(isa.AccessPattern{Kind: isa.PatRandom, Base: 1 << 30, WorkingSet: 64 << 20, Stride: 64, Lines: 4}).
		WaitAll().
		MustBuild()
	k := isa.Kernel{Program: p, Workgroups: 1, WavesPerWG: 3}
	g, err := sim.New(cfg, []isa.Kernel{k}, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	g.RunUntil(clock.Millisecond)
	if !g.Finished {
		t.Fatal("three-wave MSHR kernel hung")
	}
	es := collect(g)
	recs := es.CUs[0].WFs
	if len(recs) != 3 {
		t.Fatalf("want 3 wave records, got %d", len(recs))
	}
	// Wave 0 fills the MSHRs; waves 1 and 2 throttle in age order and
	// must be replayed in that order, so each later wave stalls longer.
	for i := 1; i < 3; i++ {
		if recs[i].C.StallPs <= recs[i-1].C.StallPs {
			t.Fatalf("wave %d stalled %dps, wave %d stalled %dps — FIFO replay should wake older waves first",
				recs[i-1].GlobalWave, recs[i-1].C.StallPs, recs[i].GlobalWave, recs[i].C.StallPs)
		}
	}
	// Stall conservation: residency = occupancy + stall + a few cycles
	// of scheduling slack. A re-stamped BlockedSince shows up here as a
	// large unexplained gap.
	const slackPs = 64 * 590 // ~64 cycles at the slowest grid frequency
	for _, r := range recs {
		explained := r.C.OccupancyPs + r.C.StallPs
		if explained > r.ResidentPs {
			t.Fatalf("wave %d: occupancy+stall %dps exceeds residency %dps", r.GlobalWave, explained, r.ResidentPs)
		}
		if gap := r.ResidentPs - explained; gap > slackPs {
			t.Fatalf("wave %d: %dps of its %dps residency is neither occupancy nor stall — throttled time leaked from the accounting",
				r.GlobalWave, gap, r.ResidentPs)
		}
	}
}

// TestMaxCyclesBudgetMatchesLegacy: the cycle budget must measure
// simulated work, not loop iterations — leaping over a known-busy span
// still charges every skipped cycle. A budget-limited run must therefore
// trip at the same simulated time under the event-driven loop as under
// the legacy per-cycle loop.
func TestMaxCyclesBudgetMatchesLegacy(t *testing.T) {
	run := func(legacy bool) *sim.GPU {
		cfg := sim.DefaultConfig(2)
		cfg.LegacyTick = legacy
		cfg.MaxCycles = 20_000
		a := workload.MustBuild("xsbench", workload.DefaultGenConfig(2))
		g, err := sim.New(cfg, a.Kernels, a.Launches)
		if err != nil {
			t.Fatal(err)
		}
		g.RunUntil(clock.Millisecond)
		return g
	}
	ev, lg := run(false), run(true)
	if ev.Stuck == nil || lg.Stuck == nil {
		t.Fatalf("budget did not trip: event %v, legacy %v", ev.Stuck, lg.Stuck)
	}
	if ev.Now != lg.Now {
		t.Fatalf("budget tripped at %dps under the event loop but %dps under the legacy loop", ev.Now, lg.Now)
	}
	if ev.Cycles != lg.Cycles {
		t.Fatalf("budget charged %d cycles under the event loop but %d under the legacy loop", ev.Cycles, lg.Cycles)
	}
}

// TestEventLoopMatchesLegacyEpochStream is the differential property test
// for the RunUntil rewrite: across seeds and workloads, the event-driven
// loop must produce byte-identical epoch sample streams to the legacy
// per-cycle loop — same counters, same per-wave records, same finish
// state, epoch by epoch.
func TestEventLoopMatchesLegacyEpochStream(t *testing.T) {
	for _, app := range []string{"xsbench", "dgemm"} {
		for _, seed := range []uint64{1, 2, 3} {
			t.Run(app, func(t *testing.T) {
				gen := workload.DefaultGenConfig(4)
				gen.Seed = seed
				gen.Scale = 0.25
				a := workload.MustBuild(app, gen)
				build := func(legacy bool) *sim.GPU {
					cfg := sim.DefaultConfig(4)
					cfg.LegacyTick = legacy
					g, err := sim.New(cfg, a.Kernels, a.Launches)
					if err != nil {
						t.Fatal(err)
					}
					return g
				}
				ev, lg := build(false), build(true)
				var esE, esL sim.EpochSample
				for epoch := 0; epoch < 30 && !ev.Finished; epoch++ {
					end := clock.Time(epoch+1) * clock.Microsecond
					ev.RunUntil(end)
					lg.RunUntil(end)
					ev.CollectEpoch(&esE)
					lg.CollectEpoch(&esL)
					if !reflect.DeepEqual(esE, esL) {
						t.Fatalf("seed %d epoch %d: event-driven sample diverges from legacy", seed, epoch)
					}
				}
				if ev.Finished != lg.Finished || ev.Now != lg.Now || ev.Cycles != lg.Cycles {
					t.Fatalf("seed %d: end state diverged (finished %v/%v, now %d/%d, cycles %d/%d)",
						seed, ev.Finished, lg.Finished, ev.Now, lg.Now, ev.Cycles, lg.Cycles)
				}
			})
		}
	}
}
