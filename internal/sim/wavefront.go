package sim

import (
	"pcstall/internal/clock"
	"pcstall/internal/isa"
	"pcstall/internal/xrand"
)

// WFState is a wavefront slot's lifecycle state.
type WFState uint8

const (
	// WFFree marks an empty slot available for dispatch.
	WFFree WFState = iota
	// WFRunning marks a wavefront eligible to issue.
	WFRunning
	// WFWaitCnt marks a wavefront blocked at s_waitcnt.
	WFWaitCnt
	// WFBarrier marks a wavefront blocked at a workgroup barrier.
	WFBarrier
	// WFThrottled marks a wavefront whose memory instruction cannot
	// issue because the CU's L1 MSHRs are full — memory-system
	// backpressure, accounted as stall time just like s_waitcnt.
	WFThrottled
)

// Wavefront is one resident 64-lane wave. It is plain data; copying the
// struct (plus its slices) snapshots it.
type Wavefront struct {
	State WFState
	// Kernel indexes GPU.Kernels.
	Kernel int32
	// PC is the current instruction index within the kernel's program.
	PC int32
	// WG is the global workgroup ID this wave belongs to.
	WG int64
	// WGSize is the number of waves in the workgroup (for barriers).
	WGSize int32
	// GlobalWave is the global dispatch index (also the age key for
	// oldest-first scheduling: smaller = older).
	GlobalWave int64
	// SIMD is the issue unit this wave is bound to (GlobalWave modulo the
	// CU's SIMD count, cached at dispatch by CU.enqueue).
	SIMD int32
	// QPos is this wave's position within its SIMD's age queue,
	// maintained by CU.enqueue/dequeue so run-mask updates are O(1).
	QPos int32
	// DispatchedAt is when the wave became resident.
	DispatchedAt clock.Time
	// Loop holds the remaining trip counts, one per branch slot.
	Loop []int32
	// LoopReload holds the per-wavefront reload values (trip-1 with the
	// program's per-wave jitter applied at dispatch).
	LoopReload []int32
	// OutLoads and OutStores count in-flight memory lines.
	OutLoads  int32
	OutStores int32
	// WaitThresh is the s_waitcnt threshold while State == WFWaitCnt.
	WaitThresh int32
	// ThrLines caches the line count of the memory instruction a
	// WFThrottled wave is parked on, so the MSHR replay loop can check
	// capacity without chasing kernel program pointers.
	ThrLines int32
	// BlockedSince is when the wave entered WFWaitCnt or WFBarrier.
	BlockedSince clock.Time
	// Rng drives this wave's random access patterns.
	Rng xrand.State
	// MemCounter counts executed memory instructions (address stream
	// position for streaming patterns).
	MemCounter uint32
	// EpochStartPC is the byte PC at the start of the current epoch.
	EpochStartPC uint64
	C            WFCounters
}

// init prepares a freshly dispatched wavefront in place.
func (wf *Wavefront) init(k int32, prog *isa.Program, wg int64, wgSize int32, globalWave int64, now clock.Time, rng xrand.State) {
	wf.State = WFRunning
	wf.Kernel = k
	wf.PC = 0
	wf.WG = wg
	wf.WGSize = wgSize
	wf.GlobalWave = globalWave
	wf.DispatchedAt = now
	wf.OutLoads = 0
	wf.OutStores = 0
	wf.WaitThresh = 0
	wf.BlockedSince = 0
	wf.Rng = rng
	wf.MemCounter = 0
	wf.EpochStartPC = prog.PC(0)
	wf.C.reset()

	if cap(wf.Loop) < prog.BranchSlots {
		wf.Loop = make([]int32, prog.BranchSlots)
		wf.LoopReload = make([]int32, prog.BranchSlots)
	} else {
		wf.Loop = wf.Loop[:prog.BranchSlots]
		wf.LoopReload = wf.LoopReload[:prog.BranchSlots]
	}
	for _, in := range prog.Code {
		if in.Kind != isa.Branch {
			continue
		}
		reload := in.Trip - 1
		if in.TripVar > 0 {
			reload += int32(wf.Rng.Intn(int(2*in.TripVar+1))) - in.TripVar
			if reload < 0 {
				reload = 0
			}
		}
		wf.Loop[in.BranchSlot] = reload
		wf.LoopReload[in.BranchSlot] = reload
	}
}

// lineAddr produces the line-aligned address for request line i of the
// wavefront's next execution of a memory instruction with pattern p.
func (wf *Wavefront) lineAddr(p *isa.AccessPattern, line int) uint64 {
	const lineBytes = 64
	var off uint64
	switch p.Kind {
	case isa.PatStream, isa.PatStrided:
		// Each wave walks its own lane of the region with the pattern
		// stride; the golden-ratio wave offset spreads partitions.
		base := uint64(wf.GlobalWave) * 0x9E3779B1 * lineBytes
		off = (base + uint64(wf.MemCounter)*uint64(p.Stride)) % p.WorkingSet
	case isa.PatRandom:
		off = wf.Rng.Uint64() % p.WorkingSet
	case isa.PatShared:
		// All waves walk the same stream positions, giving heavy L2
		// reuse — and L2 thrashing once the shared set outgrows L2.
		off = (uint64(wf.MemCounter) * uint64(p.Stride)) % p.WorkingSet
	default:
		off = 0
	}
	addr := p.Base + off + uint64(line)*lineBytes
	return addr &^ (lineBytes - 1)
}

// resident returns the wavefront's residency within [start, end).
func (wf *Wavefront) resident(start, end clock.Time) int64 {
	s := start
	if wf.DispatchedAt > s {
		s = wf.DispatchedAt
	}
	if end <= s {
		return 0
	}
	return end - s
}
