package sim_test

import (
	"errors"
	"strings"
	"testing"

	"pcstall/internal/clock"
	"pcstall/internal/isa"
	"pcstall/internal/sim"
)

// TestBarrierDeadlockDetected corrupts one wave's workgroup ID after
// dispatch (modelling a hardware fault in barrier bookkeeping): its real
// workgroup can then never fully arrive, and the watchdog must stop the
// run with a structured barrier diagnosis instead of spinning forever.
func TestBarrierDeadlockDetected(t *testing.T) {
	p := isa.NewBuilder("barrier-dl", 0x1000).
		VALUBlock(2, 4).
		Barrier().
		VALUBlock(2, 4).
		MustBuild()
	g := singleKernelGPU(t, p, 1, 2, 1)
	if g.CUs[0].WFs[1].State == sim.WFFree {
		t.Fatal("wave 1 not resident after New")
	}
	g.CUs[0].WFs[1].WG = 1 << 40 // orphan: no other wave shares this WG

	g.RunUntil(clock.Millisecond)

	if g.Finished {
		t.Fatal("corrupted dispatch finished")
	}
	if g.Stuck == nil {
		t.Fatal("watchdog did not diagnose the barrier deadlock")
	}
	if g.Stuck.Kind != sim.DeadlockBarrier {
		t.Fatalf("Kind = %q, want %q", g.Stuck.Kind, sim.DeadlockBarrier)
	}
	if g.Stuck.CU != 0 {
		t.Fatalf("CU = %d, want 0", g.Stuck.CU)
	}
	if g.Stuck.Waiting != 2 {
		t.Fatalf("Waiting = %d, want 2", g.Stuck.Waiting)
	}
	if !strings.Contains(g.Stuck.Error(), "barrier") {
		t.Fatalf("diagnostic %q does not name the barrier", g.Stuck.Error())
	}
	// The PC must point into the program (at or before the barrier).
	if g.Stuck.PC < 0x1000 || g.Stuck.PC >= p.PC(int32(p.Len())) {
		t.Fatalf("diagnosed PC %#x outside program", g.Stuck.PC)
	}
	// A stuck GPU still advances Now so caller loops terminate.
	if g.Now < clock.Millisecond {
		t.Fatalf("stuck GPU left Now at %d", g.Now)
	}
}

// TestWaitcntStarvationDetected injects a phantom outstanding load
// (modelling a lost memory response): the wave's s_waitcnt 0 can never
// be satisfied, and the watchdog must name the stuck wave.
func TestWaitcntStarvationDetected(t *testing.T) {
	p := isa.NewBuilder("waitcnt-dl", 0x2000).
		Load(pat(1<<20, 2)).
		WaitAll().
		VALUBlock(4, 4).
		MustBuild()
	g := singleKernelGPU(t, p, 1, 2, 1)
	g.CUs[0].WFs[0].OutLoads++ // phantom line with no response in flight

	g.RunUntil(clock.Millisecond)

	if g.Stuck == nil {
		t.Fatal("watchdog did not diagnose the waitcnt starvation")
	}
	if g.Stuck.Kind != sim.DeadlockWaitCnt {
		t.Fatalf("Kind = %q, want %q", g.Stuck.Kind, sim.DeadlockWaitCnt)
	}
	if g.Stuck.CU != 0 || g.Stuck.Slot != 0 {
		t.Fatalf("diagnosed CU %d slot %d, want CU 0 slot 0", g.Stuck.CU, g.Stuck.Slot)
	}
	if g.Stuck.GlobalWave != g.CUs[0].WFs[0].GlobalWave {
		t.Fatalf("diagnosed wave %d, want %d", g.Stuck.GlobalWave, g.CUs[0].WFs[0].GlobalWave)
	}
}

// TestMSHRStarvationDetected runs a valid program whose single load
// needs more MSHRs than the L1 has: every wave throttles with nothing
// in flight, a genuine configuration-induced deadlock requiring no
// state corruption.
func TestMSHRStarvationDetected(t *testing.T) {
	wide := isa.AccessPattern{
		Kind: isa.PatStream, Base: 1 << 30, WorkingSet: 1 << 24,
		Stride: 256, Lines: 64, // > default 32 L1 MSHRs
	}
	p := isa.NewBuilder("mshr-dl", 0x3000).
		Load(wide).
		WaitAll().
		MustBuild()
	g := singleKernelGPU(t, p, 1, 2, 1)

	g.RunUntil(clock.Millisecond)

	if g.Stuck == nil {
		t.Fatal("watchdog did not diagnose the MSHR starvation")
	}
	if g.Stuck.Kind != sim.DeadlockThrottle {
		t.Fatalf("Kind = %q, want %q", g.Stuck.Kind, sim.DeadlockThrottle)
	}
}

// TestCycleBudgetExhaustion bounds a long-running (but live) program
// with MaxCycles and expects the structured cycle-limit stop.
func TestCycleBudgetExhaustion(t *testing.T) {
	p := isa.NewBuilder("spin", 0).
		Loop(1_000_000, 0).
		VALUBlock(4, 4).
		EndLoop().
		MustBuild()
	cfg := sim.DefaultConfig(1)
	cfg.MaxCycles = 2000
	g, err := sim.New(cfg, []isa.Kernel{{Program: p, Workgroups: 1, WavesPerWG: 2}}, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	g.RunUntil(clock.Millisecond)
	if g.Stuck == nil {
		t.Fatal("cycle budget did not trip")
	}
	if g.Stuck.Kind != sim.DeadlockCycleLimit {
		t.Fatalf("Kind = %q, want %q", g.Stuck.Kind, sim.DeadlockCycleLimit)
	}
	if g.Stuck.Cycles < 2000 {
		t.Fatalf("tripped at %d cycles, budget 2000", g.Stuck.Cycles)
	}
	if !strings.Contains(g.Stuck.Error(), "cycle budget") {
		t.Fatalf("diagnostic %q does not name the budget", g.Stuck.Error())
	}
	var de *sim.DeadlockError
	if !errors.As(error(g.Stuck), &de) {
		t.Fatal("Stuck does not unwrap as *DeadlockError")
	}
}

// TestHealthyRunNeverTripsWatchdog: a normal workload under a generous
// budget finishes without a diagnosis, and Cycles accounts its work.
func TestHealthyRunNeverTripsWatchdog(t *testing.T) {
	p := isa.NewBuilder("healthy", 0).
		Loop(20, 0).
		VALUBlock(4, 4).
		EndLoop().
		MustBuild()
	cfg := sim.DefaultConfig(1)
	cfg.MaxCycles = 1 << 40
	g, err := sim.New(cfg, []isa.Kernel{{Program: p, Workgroups: 1, WavesPerWG: 2}}, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	g.RunUntil(clock.Millisecond)
	if !g.Finished || g.Stuck != nil {
		t.Fatalf("healthy run: Finished=%v Stuck=%v", g.Finished, g.Stuck)
	}
	if g.Cycles == 0 {
		t.Fatal("no CU cycles accounted")
	}
}
