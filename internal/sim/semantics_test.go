package sim_test

import (
	"testing"
	"testing/quick"

	"pcstall/internal/clock"
	"pcstall/internal/isa"
	"pcstall/internal/sim"
	"pcstall/internal/xrand"
)

func pat(ws uint64, lines int) isa.AccessPattern {
	return isa.AccessPattern{
		Kind: isa.PatStream, Base: 1 << 30, WorkingSet: ws,
		Stride: 256, Lines: uint8(lines),
	}
}

func singleKernelGPU(t *testing.T, prog isa.Program, wgs, wavesPerWG, cus int) *sim.GPU {
	t.Helper()
	cfg := sim.DefaultConfig(cus)
	k := isa.Kernel{Program: prog, Workgroups: wgs, WavesPerWG: wavesPerWG}
	g, err := sim.New(cfg, []isa.Kernel{k}, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func collect(g *sim.GPU) *sim.EpochSample {
	var es sim.EpochSample
	g.CollectEpoch(&es)
	return &es
}

// TestInstructionCountExact checks the commit count of a fully static
// program: every instruction of every wave commits exactly once.
func TestInstructionCountExact(t *testing.T) {
	const trips = 17
	const body = 5
	p := isa.NewBuilder("count", 0).
		Loop(trips, 0).
		VALUBlock(body, 4).
		EndLoop().
		MustBuild()
	// Dynamic instructions per wave: trips*(body+branch) + endpgm.
	perWave := int64(trips*(body+1) + 1)
	const waves = 8
	g := singleKernelGPU(t, p, 2, 4, 2)
	g.RunUntil(clock.Millisecond)
	if !g.Finished {
		t.Fatal("did not finish")
	}
	if g.TotalCommitted != perWave*waves {
		t.Fatalf("committed %d, want %d", g.TotalCommitted, perWave*waves)
	}
}

// TestWaitcntStallAccounting checks that a wave blocked at s_waitcnt
// accrues stall time comparable to the memory latency it actually waited.
func TestWaitcntStallAccounting(t *testing.T) {
	p := isa.NewBuilder("stall", 0).
		Load(pat(1<<20, 1)).
		WaitAll().
		VALUBlock(1, 4).
		MustBuild()
	g := singleKernelGPU(t, p, 1, 1, 1)
	g.RunUntil(clock.Millisecond)
	if !g.Finished {
		t.Fatal("did not finish")
	}
	es := collect(g)
	var stall int64
	for _, wf := range es.CUs[0].WFs {
		stall += wf.C.StallPs
	}
	// The DRAM round trip is >= DRAMLat uncore cycles = 240 * 625ps.
	minStall := int64(g.Cfg.Mem.DRAMLat) * g.Cfg.Mem.UncoreFreq.PeriodPs()
	if stall < minStall/2 {
		t.Fatalf("stall %d ps < half the DRAM latency %d ps", stall, minStall)
	}
}

// TestBarrierSynchronizes checks that no wave passes a barrier before all
// waves of its workgroup arrive: with one slow wave (more pre-barrier
// compute via trip variation disabled and asymmetric... we approximate by
// checking barrier wait time is nonzero for some waves and that the
// program completes (no deadlock).
func TestBarrierSynchronizes(t *testing.T) {
	p := isa.NewBuilder("barrier", 0).
		Loop(8, 0).
		Load(pat(16<<20, 2)).
		WaitAll().
		VALUBlock(6, 4).
		Barrier().
		EndLoop().
		MustBuild()
	g := singleKernelGPU(t, p, 1, 8, 1)
	g.RunUntil(10 * clock.Millisecond)
	if !g.Finished {
		t.Fatal("barrier kernel deadlocked")
	}
	es := collect(g)
	var barrier int64
	for _, wf := range es.CUs[0].WFs {
		barrier += wf.C.BarrierPs
	}
	if barrier == 0 {
		t.Fatal("no barrier wait recorded for an 8-wave workgroup")
	}
}

// TestBarrierDoesNotCrossWorkgroups: two workgroups on the same CU must
// synchronize independently — WG A's barrier must not wait for WG B.
func TestBarrierDoesNotCrossWorkgroups(t *testing.T) {
	p := isa.NewBuilder("wg", 0).
		VALUBlock(4, 4).
		Barrier().
		VALUBlock(4, 4).
		MustBuild()
	g := singleKernelGPU(t, p, 2, 4, 1) // both WGs land on CU 0
	g.RunUntil(clock.Millisecond)
	if !g.Finished {
		t.Fatal("cross-workgroup barrier interference (deadlock)")
	}
}

// TestCommittedConsistency: CU-level committed equals the sum of
// per-wavefront committed in every epoch.
func TestCommittedConsistency(t *testing.T) {
	g := mustGPU(t, "comd", 2)
	var total int64
	for !g.Finished && g.Now < 2*clock.Millisecond {
		g.RunUntil(g.Now + 5*clock.Microsecond)
		es := collect(g)
		for cu := range es.CUs {
			var wfSum int64
			for _, wf := range es.CUs[cu].WFs {
				wfSum += wf.C.Committed
			}
			if wfSum != es.CUs[cu].C.Committed {
				t.Fatalf("CU %d: wf sum %d != CU committed %d", cu, wfSum, es.CUs[cu].C.Committed)
			}
			total += es.CUs[cu].C.Committed
		}
	}
	if total != g.TotalCommitted {
		t.Fatalf("epoch sums %d != GPU total %d", total, g.TotalCommitted)
	}
}

// TestEpochRecordInvariants: per-wave residency and blocked times are
// bounded by the epoch.
func TestEpochRecordInvariants(t *testing.T) {
	g := mustGPU(t, "minife", 2)
	epoch := clock.Time(2 * clock.Microsecond)
	for !g.Finished && g.Now < clock.Millisecond {
		start := g.Now
		g.RunUntil(g.Now + epoch)
		es := collect(g)
		dur := es.End - start
		for cu := range es.CUs {
			for _, wf := range es.CUs[cu].WFs {
				if wf.ResidentPs < 0 || wf.ResidentPs > int64(dur) {
					t.Fatalf("residency %d outside [0,%d]", wf.ResidentPs, dur)
				}
				if wf.C.StallPs+wf.C.BarrierPs > wf.ResidentPs {
					t.Fatalf("blocked %d+%d exceeds residency %d",
						wf.C.StallPs, wf.C.BarrierPs, wf.ResidentPs)
				}
				if wf.C.OccupancyPs > wf.ResidentPs {
					t.Fatalf("occupancy %d exceeds residency %d", wf.C.OccupancyPs, wf.ResidentPs)
				}
				if wf.C.Committed < 0 {
					t.Fatal("negative commit count")
				}
			}
		}
	}
}

// TestDispatchBalance: a grid with one workgroup per CU must put waves on
// every CU.
func TestDispatchBalance(t *testing.T) {
	p := isa.NewBuilder("bal", 0).
		Loop(50, 0).
		VALUBlock(4, 4).
		EndLoop().
		MustBuild()
	g := singleKernelGPU(t, p, 4, 4, 4)
	g.RunUntil(2 * clock.Microsecond)
	es := collect(g)
	for cu := range es.CUs {
		if es.CUs[cu].C.Committed == 0 {
			t.Fatalf("CU %d idle: dispatch did not spread workgroups", cu)
		}
	}
}

// TestLaunchOrdering: kernel N+1 must not start before kernel N fully
// completes (full-GPU sync between launches).
func TestLaunchOrdering(t *testing.T) {
	fast := isa.NewBuilder("fast", 0x1000).VALUBlock(2, 4).MustBuild()
	slow := isa.NewBuilder("slow", 0x2000).
		Loop(100, 0).VALUBlock(8, 4).EndLoop().
		MustBuild()
	cfg := sim.DefaultConfig(2)
	kernels := []isa.Kernel{
		{Program: slow, Workgroups: 2, WavesPerWG: 4},
		{Program: fast, Workgroups: 2, WavesPerWG: 4},
	}
	g, err := sim.New(cfg, kernels, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// While the slow kernel runs, no wave may hold a PC in fast's range.
	for !g.Finished {
		g.RunUntil(g.Now + clock.Microsecond)
		var pcs []sim.WavePC
		pcs = g.ActivePCs(0, pcs)
		pcs = g.ActivePCs(1, pcs)
		inFast, inSlow := false, false
		for _, wp := range pcs {
			if wp.PC >= 0x2000 {
				inSlow = true
			} else if wp.PC >= 0x1000 {
				inFast = true
			}
		}
		if inFast && inSlow {
			t.Fatal("waves from both launches resident simultaneously")
		}
	}
}

// TestTransitionStallsDomain: during a V/f transition the domain commits
// nothing.
func TestTransitionStallsDomain(t *testing.T) {
	p := isa.NewBuilder("trans", 0).
		Loop(10000, 0).VALUBlock(4, 1).EndLoop().
		MustBuild()
	g := singleKernelGPU(t, p, 1, 1, 1)
	g.RunUntil(2 * clock.Microsecond)
	collect(g) // reset counters
	before := g.TotalCommitted
	const stall = 100 * clock.Nanosecond
	g.SetDomainFreq(0, 2200, stall)
	g.RunUntil(g.Now + stall - clock.Nanosecond)
	if g.TotalCommitted != before {
		t.Fatalf("domain committed %d instructions during its transition stall",
			g.TotalCommitted-before)
	}
	g.RunUntil(g.Now + clock.Microsecond)
	if g.TotalCommitted == before {
		t.Fatal("domain never resumed after transition")
	}
}

// TestActivePCsInRange: every reported PC must lie inside the running
// program.
func TestActivePCsInRange(t *testing.T) {
	g := mustGPU(t, "dgemm", 2)
	g.RunUntil(5 * clock.Microsecond)
	var pcs []sim.WavePC
	for d := 0; d < g.Cfg.Domains.NumDomains(); d++ {
		pcs = g.ActivePCs(d, pcs)
	}
	if len(pcs) == 0 {
		t.Fatal("no active waves mid-run")
	}
	prog := &g.Kernels[0].Program
	lo := prog.Base
	hi := prog.PC(int32(prog.Len()))
	for _, wp := range pcs {
		if wp.PC < lo || wp.PC >= hi {
			t.Fatalf("PC %#x outside program [%#x,%#x)", wp.PC, lo, hi)
		}
	}
}

// TestMSHRThrottleCountsAsStall: a divergent burst exceeding the MSHRs
// must register as wavefront stall time, not core time.
func TestMSHRThrottleCountsAsStall(t *testing.T) {
	cfg := sim.DefaultConfig(1)
	cfg.Mem.L1MSHRs = 4
	b := isa.NewBuilder("burst", 0)
	b.Loop(40, 0)
	b.Load(isa.AccessPattern{Kind: isa.PatRandom, Base: 1 << 30, WorkingSet: 64 << 20, Stride: 64, Lines: 4})
	b.Wait(4)
	b.EndLoop()
	b.WaitAll()
	k := isa.Kernel{Program: b.MustBuild(), Workgroups: 1, WavesPerWG: 8}
	g, err := sim.New(cfg, []isa.Kernel{k}, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	g.RunUntil(clock.Millisecond)
	if !g.Finished {
		t.Fatal("MSHR-throttled kernel hung")
	}
	es := collect(g)
	var stall, resident int64
	for _, wf := range es.CUs[0].WFs {
		stall += wf.C.StallPs
		resident += wf.ResidentPs
	}
	if float64(stall) < 0.5*float64(resident) {
		t.Fatalf("bandwidth-saturated kernel only %.1f%% stalled — MSHR backpressure leaking into core time",
			100*float64(stall)/float64(resident))
	}
}

// TestRandomProgramsTerminate is the simulator's fuzz test: random valid
// programs must run to completion, deterministically, at any frequency.
func TestRandomProgramsTerminate(t *testing.T) {
	run := func(seed uint64) bool {
		rng := xrand.New(seed)
		b := isa.NewBuilder("fuzz", uint64(rng.Intn(1<<16))*4)
		var loops []bool
		anyVar := func() bool {
			for _, v := range loops {
				if v {
					return true
				}
			}
			return false
		}
		placedBarrier := false
		n := 4 + rng.Intn(40)
		for i := 0; i < n; i++ {
			switch rng.Intn(9) {
			case 0, 1, 2:
				b.VALUBlock(1+rng.Intn(6), uint8(1+rng.Intn(4)))
			case 3:
				b.Load(pat(uint64(1+rng.Intn(32))<<20, 1+rng.Intn(4)))
			case 4:
				b.Wait(int32(rng.Intn(4)))
			case 5:
				b.Store(pat(uint64(1+rng.Intn(8))<<20, 1+rng.Intn(2)))
			case 6:
				if len(loops) < 2 {
					tv := int32(rng.Intn(4))
					b.Loop(int32(2+rng.Intn(8)), tv)
					loops = append(loops, tv > 0)
				}
			case 7:
				if len(loops) > 0 {
					b.EndLoop()
					loops = loops[:len(loops)-1]
				}
			case 8:
				if !anyVar() && !placedBarrier {
					b.Barrier()
					placedBarrier = true
				}
			}
		}
		for len(loops) > 0 {
			b.EndLoop()
			loops = loops[:len(loops)-1]
		}
		b.WaitAll()
		prog := b.MustBuild()

		cfg := sim.DefaultConfig(2)
		cfg.InitFreq = cfg.Grid.State(int(rng.Intn(cfg.Grid.Count())))
		k := isa.Kernel{Program: prog, Workgroups: 2, WavesPerWG: 1 + rng.Intn(8)}
		g, err := sim.New(cfg, []isa.Kernel{k}, []int32{0})
		if err != nil {
			return false
		}
		g.RunUntil(20 * clock.Millisecond)
		return g.Finished && g.TotalCommitted > 0
	}
	err := quick.Check(run, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDomainGranularity: grouping CUs into shared domains must still run
// correctly and report per-domain frequencies.
func TestDomainGranularity(t *testing.T) {
	cfg := sim.DefaultConfig(4)
	cfg.Domains.CUsPerDomain = 2
	appGPU := func() *sim.GPU {
		p := isa.NewBuilder("g", 0).Loop(200, 0).VALUBlock(4, 4).EndLoop().MustBuild()
		k := isa.Kernel{Program: p, Workgroups: 4, WavesPerWG: 4}
		g, err := sim.New(cfg, []isa.Kernel{k}, []int32{0})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g := appGPU()
	if len(g.Domains) != 2 {
		t.Fatalf("%d domains, want 2", len(g.Domains))
	}
	g.SetDomainFreq(1, 2200, 0)
	g.RunUntil(clock.Millisecond)
	if !g.Finished {
		t.Fatal("grouped-domain run hung")
	}
	es := collect(g)
	if es.Freqs[0] == es.Freqs[1] {
		t.Fatal("domain frequencies not independent")
	}
	// The faster domain must have done more work per CU.
	slow := es.CUs[0].C.Committed + es.CUs[1].C.Committed
	_ = slow // totals collected post-finish are per final epoch only; just check domain mapping:
	if g.Cfg.Domains.DomainOf(0) != 0 || g.Cfg.Domains.DomainOf(3) != 1 {
		t.Fatal("domain mapping wrong")
	}
}
