package sim

import (
	"fmt"

	"pcstall/internal/clock"
)

// DeadlockKind classifies why the cooperative watchdog stopped a run.
type DeadlockKind string

const (
	// DeadlockBarrier: wavefronts parked at a workgroup barrier that can
	// never be satisfied (e.g. corrupted workgroup membership).
	DeadlockBarrier DeadlockKind = "barrier"
	// DeadlockWaitCnt: an s_waitcnt waiting on memory counters that no
	// in-flight request will ever decrement.
	DeadlockWaitCnt DeadlockKind = "waitcnt"
	// DeadlockThrottle: every wave is MSHR-throttled with no miss in
	// flight to release one (a memory request wider than the MSHR file).
	DeadlockThrottle DeadlockKind = "mshr-throttle"
	// DeadlockBadInstr: a corrupted in-flight program reached an unknown
	// instruction kind (unreachable for kernels validated by New).
	DeadlockBadInstr DeadlockKind = "bad-instruction"
	// DeadlockCycleLimit: the Config.MaxCycles event budget ran out.
	DeadlockCycleLimit DeadlockKind = "cycle-limit"
	// DeadlockNoProgress: no event can ever fire again and no blocked
	// wave explains why (defensive catch-all).
	DeadlockNoProgress DeadlockKind = "no-progress"
)

// DeadlockError is the structured diagnostic the watchdog produces when
// the simulation can make no further progress: the event loop went
// all-idle with the application unfinished, or the cycle budget ran out.
// It names the oldest stuck wavefront so the failure is attributable.
type DeadlockError struct {
	Kind DeadlockKind
	// CU and Slot locate the oldest blocked wavefront; WG, GlobalWave,
	// and PC identify it (PC is the byte program counter it is parked
	// at). All are zero for DeadlockCycleLimit, which has no single
	// culprit.
	CU         int32
	Slot       int32
	WG         int64
	GlobalWave int64
	PC         uint64
	// Now is the simulated time progress stopped; Cycles the CU cycle
	// events executed by then; Waiting the blocked wavefronts GPU-wide.
	Now     clock.Time
	Cycles  int64
	Waiting int
}

// Error implements error.
func (e *DeadlockError) Error() string {
	if e.Kind == DeadlockCycleLimit {
		return fmt.Sprintf("sim: cycle budget exhausted: %d CU cycles at t=%dps with %d wavefronts still resident",
			e.Cycles, e.Now, e.Waiting)
	}
	return fmt.Sprintf("sim: %s deadlock at t=%dps: CU %d slot %d (wave %d, workgroup %d) blocked at PC 0x%x; %d wavefronts waiting",
		e.Kind, e.Now, e.CU, e.Slot, e.GlobalWave, e.WG, e.PC, e.Waiting)
}

// diagnoseStall builds the deadlock diagnostic for an event loop that has
// gone all-idle while the application is unfinished. The oldest blocked
// wavefront (lowest GlobalWave) is named: under oldest-first scheduling
// it is the one everything else is transitively waiting behind.
func (g *GPU) diagnoseStall() *DeadlockError {
	de := &DeadlockError{Kind: DeadlockNoProgress, Now: g.Now, Cycles: g.Cycles, GlobalWave: -1}
	for ci := range g.CUs {
		cu := &g.CUs[ci]
		for i := range cu.WFs {
			wf := &cu.WFs[i]
			if wf.State == WFFree || wf.State == WFRunning {
				continue
			}
			de.Waiting++
			if de.GlobalWave >= 0 && wf.GlobalWave >= de.GlobalWave {
				continue
			}
			de.CU = int32(ci)
			de.Slot = int32(i)
			de.WG = wf.WG
			de.GlobalWave = wf.GlobalWave
			de.PC = g.Kernels[wf.Kernel].Program.PC(wf.PC)
			switch wf.State {
			case WFBarrier:
				de.Kind = DeadlockBarrier
			case WFWaitCnt:
				de.Kind = DeadlockWaitCnt
			case WFThrottled:
				de.Kind = DeadlockThrottle
			}
		}
	}
	return de
}
