package sim_test

import (
	"testing"

	"pcstall/internal/clock"
	"pcstall/internal/isa"
	"pcstall/internal/sim"
)

// FuzzConfigValidate throws arbitrary geometry at sim.Config.Validate
// (which folds in mem.Config and the clock map/grid checks). The
// invariants: Validate never panics, and any configuration it accepts
// within a bounded-allocation envelope must actually construct — a
// validated config that panics in sim.New would mean the validation is
// incomplete.
func FuzzConfigValidate(f *testing.F) {
	f.Add(4, 40, 4, 4, 1, 64, 64, 4, 32, 16, 256, 16, 2, 1600, int64(0))
	f.Add(0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, int64(-1))             // all-degenerate
	f.Add(-3, 40, 4, -3, 1, 63, 64, 4, 32, 16, 256, 16, 2, 1600, int64(0)) // non-pow2 line
	f.Add(8, 1, 1, 8, 2, 64, 1, 1, 1, 1, 1, 1, 1, 1, int64(1))             // minimal live config
	f.Add(4, 40, 4, 2, 1, 64, 64, 4, 32, 16, 256, 16, 2, 1600, int64(0))   // domain/CU mismatch
	f.Fuzz(func(t *testing.T, numCUs, maxWaves, simds, domCUs, cusPerDom,
		lineBytes, l1Sets, l1Ways, l1MSHRs, l2Banks, l2Sets, l2Ways,
		dramWidth, uncore int, maxCycles int64) {

		cfg := sim.DefaultConfig(4)
		cfg.NumCUs = numCUs
		cfg.MaxWavesPerCU = maxWaves
		cfg.SIMDsPerCU = simds
		cfg.Domains = clock.Map{NumCUs: domCUs, CUsPerDomain: cusPerDom}
		cfg.MaxCycles = maxCycles
		cfg.Mem.LineBytes = lineBytes
		cfg.Mem.L1Sets = l1Sets
		cfg.Mem.L1Ways = l1Ways
		cfg.Mem.L1MSHRs = l1MSHRs
		cfg.Mem.L2Banks = l2Banks
		cfg.Mem.L2Sets = l2Sets
		cfg.Mem.L2Ways = l2Ways
		cfg.Mem.DRAMWidth = dramWidth
		cfg.Mem.UncoreFreq = clock.Freq(uncore)

		if err := cfg.Validate(); err != nil {
			return // rejection is fine; not panicking is the property
		}

		// Accepted configs must construct — but only exercise the ones
		// whose allocations are small enough for a fuzz iteration.
		if numCUs > 8 || maxWaves > 64 || simds > 8 ||
			lineBytes > 4096 || l1Sets > 256 || l1Ways > 16 ||
			l2Banks > 32 || l2Sets > 512 || l2Ways > 32 {
			return
		}
		p := isa.NewBuilder("fuzz-cfg", 0).VALUBlock(2, 4).MustBuild()
		g, err := sim.New(cfg, []isa.Kernel{{Program: p, Workgroups: 1, WavesPerWG: 1}}, []int32{0})
		if err != nil {
			t.Fatalf("validated config rejected by sim.New: %v", err)
		}
		g.RunUntil(10 * clock.Microsecond)
	})
}
