package sim_test

import (
	"testing"
	"time"

	"pcstall/internal/clock"
	"pcstall/internal/sim"
	"pcstall/internal/workload"
)

// TestSmokeRunApp drives one full app through the simulator and checks
// basic progress invariants.
func TestSmokeRunApp(t *testing.T) {
	cfg := sim.DefaultConfig(4)
	app := workload.MustBuild("comd", workload.DefaultGenConfig(cfg.NumCUs))
	g, err := sim.New(cfg, app.Kernels, app.Launches)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var sample sim.EpochSample
	epoch := clock.Time(10 * clock.Microsecond)
	var committed int64
	deadline := clock.Time(100 * clock.Millisecond)
	for !g.Finished && g.Now < deadline {
		g.RunUntil(g.Now + epoch)
		g.CollectEpoch(&sample)
		for i := range sample.CUs {
			committed += sample.CUs[i].C.Committed
		}
	}
	t.Logf("finished=%v simtime=%.1fus committed=%d wall=%v",
		g.Finished, float64(g.Now)/1e6, committed, time.Since(start))
	if !g.Finished {
		t.Fatalf("app did not finish within %dms of simulated time", deadline/clock.Millisecond)
	}
	if committed != g.TotalCommitted || committed == 0 {
		t.Fatalf("committed mismatch: epochs=%d gpu=%d", committed, g.TotalCommitted)
	}
}
