// Package sim implements the cycle-approximate GPU timing simulator: CUs
// with four SIMDs and up to 40 resident wavefronts each, oldest-first
// wavefront scheduling, in-order per-wavefront issue, s_waitcnt blocking
// on outstanding memory counters, workgroup barriers, a global dispatcher,
// and an event loop that interleaves per-CU clock domains with the fixed
// uncore clock of the shared memory hierarchy.
//
// All simulator state is plain data reachable from GPU; GPU.Clone deep
// copies it, which is what the fork-pre-execute oracle (internal/oracle)
// relies on. Given identical frequency schedules, two clones execute
// identically: event ties break on component index and all randomness
// lives in cloned xrand.State values.
package sim

import "pcstall/internal/clock"

// CUCounters accumulates one CU's per-epoch activity. The DVFS manager
// snapshots and resets these at every epoch boundary; estimation models
// (internal/estimate) consume the snapshot.
type CUCounters struct {
	// Committed is the number of instructions committed by all resident
	// wavefronts (the paper's work-done proxy, §3.2).
	Committed int64
	// MemCommitted counts committed VLoad/VStore instructions.
	MemCommitted int64
	// IssueSlots counts SIMD issue events (for the activity factor of
	// the power model).
	IssueSlots int64
	// OccupancyPs is total SIMD time consumed by issued instructions
	// (the per-instruction issue cost governors use to bound predicted
	// throughput).
	OccupancyPs int64
	// MemBlockedPs is time the whole CU was stalled with at least one
	// wavefront blocked on s_waitcnt — the CU-level STALL model signal.
	MemBlockedPs int64
	// StoreStallPs is the portion of MemBlockedPs during which some
	// blocked wavefront was waiting on an outstanding store (CRISP).
	StoreStallPs int64
	// BarrierOnlyPs is time the CU was stalled with wavefronts blocked
	// only on barriers (no memory wait).
	BarrierOnlyPs int64
	// LeadLatPs accumulates the latency of leading loads completed this
	// epoch (Leading Load model).
	LeadLatPs int64
	// CritLatPs accumulates non-overlapped load latency along the load
	// critical path (Critical Path / CRISP models).
	CritLatPs int64
	// OverlapPs is time during which the CU issued instructions while
	// loads were in flight (CRISP's compute-memory overlap credit).
	OverlapPs int64
	// L1Hits and L1Misses count vector L1 probes.
	L1Hits   int64
	L1Misses int64
	// LinesIssued counts cache-line requests generated.
	LinesIssued int64
}

// WFCounters accumulates one wavefront's per-epoch activity; the
// wavefront-level STALL model and the PC-based predictor consume these.
type WFCounters struct {
	// Committed is instructions committed this epoch.
	Committed int64
	// StallPs is time blocked at s_waitcnt this epoch.
	StallPs int64
	// BarrierPs is time blocked at barriers this epoch.
	BarrierPs int64
	// OccupancyPs is SIMD time consumed by this wavefront's issued
	// instructions this epoch.
	OccupancyPs int64
}

func (c *WFCounters) reset() { *c = WFCounters{} }

// WFRecord is the per-wavefront epoch sample handed to estimation models
// and the PC predictor at an epoch boundary.
type WFRecord struct {
	// Slot is the wavefront slot within its CU.
	Slot int32
	// GlobalWave is the wavefront's global dispatch index.
	GlobalWave int64
	// AgeRank is the wavefront's age order among wavefronts that were
	// resident in the CU this epoch (0 = oldest = highest scheduling
	// priority under oldest-first).
	AgeRank int32
	// StartPC is the byte PC at which the wavefront began the epoch (or
	// its dispatch PC if it arrived mid-epoch).
	StartPC uint64
	// EndPC is the byte PC at the epoch boundary; it is the key the
	// PC-based predictor looks up for the next epoch. Valid only if
	// !Done.
	EndPC uint64
	// Done marks a wavefront that retired during the epoch.
	Done bool
	// ResidentPs is the portion of the epoch the wavefront was present.
	ResidentPs int64
	C          WFCounters
}

// CUEpoch is one CU's complete epoch sample.
type CUEpoch struct {
	CU int32
	C  CUCounters
	// WFs lists every wavefront resident at any point in the epoch,
	// including ones that retired mid-epoch. The backing array is reused
	// across epochs; copy records that must outlive the next collection.
	WFs []WFRecord
}

// EpochSample is the GPU-wide epoch sample collected at a boundary.
type EpochSample struct {
	Start, End clock.Time
	CUs        []CUEpoch
	// Freqs is the frequency each domain ran during the epoch.
	Freqs []clock.Freq
	// Finished reports whether the application completed during the
	// epoch.
	Finished bool
}

// DomainCommitted sums committed instructions over the CUs of domain d
// under the given domain map.
func (e *EpochSample) DomainCommitted(m clock.Map, d int) int64 {
	lo, hi := m.CUs(d)
	var n int64
	for cu := lo; cu < hi; cu++ {
		n += e.CUs[cu].C.Committed
	}
	return n
}

// TotalCommitted sums committed instructions over all CUs.
func (e *EpochSample) TotalCommitted() int64 {
	var n int64
	for i := range e.CUs {
		n += e.CUs[i].C.Committed
	}
	return n
}
