package sim

import "pcstall/internal/clock"

// InfTime is a sentinel "never" time for sleeping components.
const InfTime = clock.Time(1) << 62

// tickHeap is an indexed binary min-heap over per-component tick times.
// Components are dense indices [0, n); ties break on component index so
// event ordering — and therefore the whole simulation — is deterministic.
type tickHeap struct {
	key  []clock.Time // key[i] = component i's next tick
	heap []int32      // heap of component indices
	pos  []int32      // pos[i] = index of component i within heap
}

func newTickHeap(n int) tickHeap {
	h := tickHeap{
		key:  make([]clock.Time, n),
		heap: make([]int32, n),
		pos:  make([]int32, n),
	}
	for i := 0; i < n; i++ {
		h.key[i] = InfTime
		h.heap[i] = int32(i)
		h.pos[i] = int32(i)
	}
	return h
}

func (h *tickHeap) less(a, b int32) bool {
	ka, kb := h.key[h.heap[a]], h.key[h.heap[b]]
	if ka != kb {
		return ka < kb
	}
	return h.heap[a] < h.heap[b]
}

func (h *tickHeap) swap(a, b int32) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

func (h *tickHeap) up(i int32) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h *tickHeap) down(i int32) {
	n := int32(len(h.heap))
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}

// set updates component i's next tick time.
func (h *tickHeap) set(i int32, t clock.Time) {
	old := h.key[i]
	if old == t {
		return
	}
	h.key[i] = t
	if t < old {
		h.up(h.pos[i])
	} else {
		h.down(h.pos[i])
	}
}

// min returns the component with the earliest tick and its time.
func (h *tickHeap) min() (int32, clock.Time) {
	i := h.heap[0]
	return i, h.key[i]
}

// clone deep-copies the heap.
func (h *tickHeap) clone() tickHeap {
	return tickHeap{
		key:  append([]clock.Time(nil), h.key...),
		heap: append([]int32(nil), h.heap...),
		pos:  append([]int32(nil), h.pos...),
	}
}
