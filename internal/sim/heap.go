package sim

import "pcstall/internal/clock"

// InfTime is a sentinel "never" time for sleeping components.
const InfTime = clock.Time(1) << 62

// linearScanMax is the component count up to which the tick schedule uses
// a flat array scan instead of heap maintenance. Up to 64 components the
// key array spans at most eight cache lines, so a branch-free linear min
// beats heap sift costs — and set() becomes a single store.
const linearScanMax = 64

// tickHeap is an indexed schedule of per-component tick times. For up to
// linearScanMax components it is a flat array (set is one store, min is a
// linear scan); beyond that it is an indexed binary min-heap. Components
// are dense indices [0, n); ties break on component index so event
// ordering — and therefore the whole simulation — is deterministic in
// both modes.
type tickHeap struct {
	key    []clock.Time // key[i] = component i's next tick
	heap   []int32      // heap of component indices (heap mode only)
	pos    []int32      // pos[i] = index of component i within heap
	linear bool
	// cachedIdx/cachedKey memoize the linear-mode minimum between
	// rescans; cachedIdx < 0 marks the cache stale. The event loop calls
	// min after every schedule change, so keeping the answer warm turns
	// most of those calls into two loads.
	cachedIdx int32
	cachedKey clock.Time
}

func newTickHeap(n int) tickHeap {
	h := tickHeap{
		key:       make([]clock.Time, n),
		linear:    n <= linearScanMax,
		cachedIdx: -1,
	}
	for i := 0; i < n; i++ {
		h.key[i] = InfTime
	}
	if h.linear {
		return h
	}
	h.heap = make([]int32, n)
	h.pos = make([]int32, n)
	for i := 0; i < n; i++ {
		h.heap[i] = int32(i)
		h.pos[i] = int32(i)
	}
	return h
}

func (h *tickHeap) less(a, b int32) bool {
	ka, kb := h.key[h.heap[a]], h.key[h.heap[b]]
	if ka != kb {
		return ka < kb
	}
	return h.heap[a] < h.heap[b]
}

func (h *tickHeap) swap(a, b int32) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

func (h *tickHeap) up(i int32) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h *tickHeap) down(i int32) {
	n := int32(len(h.heap))
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}

// set updates component i's next tick time.
func (h *tickHeap) set(i int32, t clock.Time) {
	if h.linear {
		h.key[i] = t
		if h.cachedIdx >= 0 {
			if t < h.cachedKey || (t == h.cachedKey && i < h.cachedIdx) {
				h.cachedIdx, h.cachedKey = i, t
			} else if i == h.cachedIdx && t != h.cachedKey {
				// The cached minimum moved later; some other
				// component may now be earliest.
				h.cachedIdx = -1
			}
		}
		return
	}
	old := h.key[i]
	if old == t {
		return
	}
	h.key[i] = t
	if t < old {
		h.up(h.pos[i])
	} else {
		h.down(h.pos[i])
	}
}

// min returns the component with the earliest tick and its time.
func (h *tickHeap) min() (int32, clock.Time) {
	if h.linear {
		if h.cachedIdx >= 0 {
			return h.cachedIdx, h.cachedKey
		}
		best := int32(0)
		bk := h.key[0]
		for i := 1; i < len(h.key); i++ {
			if h.key[i] < bk {
				best, bk = int32(i), h.key[i]
			}
		}
		h.cachedIdx, h.cachedKey = best, bk
		return best, bk
	}
	i := h.heap[0]
	return i, h.key[i]
}

// clone deep-copies the schedule.
func (h *tickHeap) clone() tickHeap {
	return tickHeap{
		key:       append([]clock.Time(nil), h.key...),
		heap:      append([]int32(nil), h.heap...),
		pos:       append([]int32(nil), h.pos...),
		linear:    h.linear,
		cachedIdx: h.cachedIdx,
		cachedKey: h.cachedKey,
	}
}
