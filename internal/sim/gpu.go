package sim

import (
	"fmt"

	"pcstall/internal/clock"
	"pcstall/internal/isa"
	"pcstall/internal/mem"
	"pcstall/internal/xrand"
)

// Config describes the simulated GPU.
type Config struct {
	// NumCUs is the number of compute units (the paper's platform has 64).
	NumCUs int
	// MaxWavesPerCU is the wavefront slot count per CU (40 on Vega).
	MaxWavesPerCU int
	// SIMDsPerCU is the number of SIMD issue units per CU.
	SIMDsPerCU int
	// Mem is the memory hierarchy configuration.
	Mem mem.Config
	// Domains maps CUs into V/f domains.
	Domains clock.Map
	// Grid is the DVFS frequency grid.
	Grid clock.Grid
	// InitFreq is the frequency every domain starts at.
	InitFreq clock.Freq
	// Seed drives all workload randomness.
	Seed uint64
	// MaxCycles bounds the total CU cycles the simulation may execute
	// (skipped spans included); when the budget runs out RunUntil stops
	// with a DeadlockCycleLimit diagnostic in GPU.Stuck. 0 means unbounded.
	MaxCycles int64
	// LegacyTick selects the pre-event-driven RunUntil structure, which
	// re-schedules a CU after every individual memory completion instead
	// of once per completion batch. Both loops produce byte-identical
	// EpochSample streams; the flag exists so differential tests can prove
	// it. New code should leave it false.
	LegacyTick bool
}

// DefaultConfig returns the paper's platform scaled by numCUs: per-CU V/f
// domains, the 1.3-2.2 GHz grid, Vega-like CU shape, and the default
// memory hierarchy.
func DefaultConfig(numCUs int) Config {
	g := clock.DefaultGrid()
	return Config{
		NumCUs:        numCUs,
		MaxWavesPerCU: 40,
		SIMDsPerCU:    4,
		Mem:           mem.DefaultConfig(),
		Domains:       clock.Map{NumCUs: numCUs, CUsPerDomain: 1},
		Grid:          g,
		InitFreq:      g.Mid(),
		Seed:          1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumCUs < 1 {
		return fmt.Errorf("sim: %d CUs", c.NumCUs)
	}
	if c.MaxWavesPerCU < 1 || c.SIMDsPerCU < 1 {
		return fmt.Errorf("sim: bad CU shape: %d waves, %d SIMDs", c.MaxWavesPerCU, c.SIMDsPerCU)
	}
	if err := c.Mem.Validate(); err != nil {
		return err
	}
	if c.Domains.NumCUs != c.NumCUs {
		return fmt.Errorf("sim: domain map covers %d CUs, GPU has %d", c.Domains.NumCUs, c.NumCUs)
	}
	if err := c.Domains.Validate(); err != nil {
		return err
	}
	if err := c.Grid.Validate(); err != nil {
		return err
	}
	if c.Grid.Index(c.InitFreq) < 0 {
		return fmt.Errorf("sim: initial frequency %v not on grid", c.InitFreq)
	}
	if c.MaxCycles < 0 {
		return fmt.Errorf("sim: negative cycle budget %d", c.MaxCycles)
	}
	return nil
}

// GPU is the complete simulator state. Clone deep-copies it; the clone
// executes identically given identical frequency schedules.
type GPU struct {
	Cfg Config
	// Kernels is the deduplicated kernel set (shared, read-only).
	Kernels []isa.Kernel
	// Launches is the kernel launch order, as indices into Kernels
	// (shared, read-only). Launches run back-to-back with a full GPU
	// sync between them.
	Launches []int32

	CUs     []CU
	Domains []clock.Domain
	Msys    *mem.MemSys
	Now     clock.Time
	// EpochStart anchors per-epoch counters.
	EpochStart clock.Time
	// Finished is set once every launch has completed.
	Finished bool
	// Stuck is set by the cooperative watchdog when the simulation can
	// make no further progress (deadlocked workload or exhausted
	// Config.MaxCycles budget). Once set, RunUntil only advances Now.
	Stuck *DeadlockError
	// TotalCommitted counts instructions committed since time zero.
	TotalCommitted int64
	// Cycles counts CU cycle events executed (the MaxCycles budget).
	Cycles int64

	// Dispatch state.
	LaunchIdx      int32
	WGDispatched   int64
	WavesLeft      int64
	WGSeq          int64
	GlobalWaveSeq  int64
	dispatchCursor int32
	Rng            xrand.State

	heap      tickHeap
	memTickAt clock.Time
	// memDirty is set by submit/scheduleLocal so the event loop knows a
	// CU sweep changed the memory system's next-completion time.
	memDirty bool
	doneBuf  []mem.Request
	// dirty lists CUs touched by the current completion batch; the
	// event-driven loop re-schedules each once per batch.
	dirty []int32
}

// New builds a GPU running the given launch sequence. It validates the
// configuration and all kernels, and performs the initial dispatch so the
// simulation is ready to run from time zero.
func New(cfg Config, kernels []isa.Kernel, launches []int32) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(kernels) == 0 || len(launches) == 0 {
		return nil, fmt.Errorf("sim: need at least one kernel and one launch")
	}
	for i := range kernels {
		if err := kernels[i].Validate(); err != nil {
			return nil, err
		}
		if kernels[i].WavesPerWG > cfg.MaxWavesPerCU {
			return nil, fmt.Errorf("sim: kernel %q workgroup (%d waves) exceeds CU capacity (%d)",
				kernels[i].Program.Name, kernels[i].WavesPerWG, cfg.MaxWavesPerCU)
		}
	}
	for _, l := range launches {
		if l < 0 || int(l) >= len(kernels) {
			return nil, fmt.Errorf("sim: launch index %d out of range", l)
		}
	}

	g := &GPU{
		Cfg:       cfg,
		Kernels:   kernels,
		Launches:  launches,
		CUs:       make([]CU, cfg.NumCUs),
		Domains:   make([]clock.Domain, cfg.Domains.NumDomains()),
		Msys:      mem.NewMemSys(cfg.Mem),
		Rng:       xrand.New(cfg.Seed),
		heap:      newTickHeap(cfg.NumCUs),
		memTickAt: InfTime,
		LaunchIdx: -1,
	}
	maxBranchSlots := 0
	for i := range kernels {
		if s := kernels[i].Program.BranchSlots; s > maxBranchSlots {
			maxBranchSlots = s
		}
	}
	for i := range g.CUs {
		g.CUs[i] = newCU(int32(i), int32(cfg.Domains.DomainOf(i)), &cfg, maxBranchSlots)
	}
	for d := range g.Domains {
		g.Domains[d] = clock.NewDomain(int32(d), cfg.InitFreq)
	}
	g.advanceLaunch(0)
	return g, nil
}

// advanceLaunch moves to the next kernel launch (or finishes) and
// dispatches its first workgroups.
func (g *GPU) advanceLaunch(now clock.Time) {
	g.LaunchIdx++
	if int(g.LaunchIdx) >= len(g.Launches) {
		g.Finished = true
		return
	}
	k := &g.Kernels[g.Launches[g.LaunchIdx]]
	g.WGDispatched = 0
	g.WavesLeft = int64(k.TotalWaves())
	g.tryDispatch(now)
}

// tryDispatch assigns pending workgroups of the current launch to CUs
// with enough free slots, round-robin: one workgroup per CU per pass so
// the grid spreads across the whole GPU before any CU is double-loaded.
func (g *GPU) tryDispatch(now clock.Time) {
	if g.Finished {
		return
	}
	kern := &g.Kernels[g.Launches[g.LaunchIdx]]
	total := int64(kern.Workgroups)
	n := int32(len(g.CUs))
	for g.WGDispatched < total {
		progress := false
		start := g.dispatchCursor
		for off := int32(0); off < n && g.WGDispatched < total; off++ {
			ci := (start + off) % n
			cu := &g.CUs[ci]
			if cu.freeSlots() >= kern.WavesPerWG {
				g.dispatchWG(cu, now)
				g.dispatchCursor = (ci + 1) % n
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// dispatchWG places one workgroup of the current launch on cu.
func (g *GPU) dispatchWG(cu *CU, now clock.Time) {
	kIdx := g.Launches[g.LaunchIdx]
	kern := &g.Kernels[kIdx]
	wg := g.WGSeq
	g.WGSeq++
	g.WGDispatched++
	placed := 0
	for i := range cu.WFs {
		if placed == kern.WavesPerWG {
			break
		}
		wf := &cu.WFs[i]
		if wf.State != WFFree {
			continue
		}
		gw := g.GlobalWaveSeq
		g.GlobalWaveSeq++
		wf.init(kIdx, &kern.Program, wg, int32(kern.WavesPerWG), gw, now, g.Rng.Split(uint64(gw)))
		cu.ActiveWaves++
		cu.enqueue(int32(i))
		placed++
	}
	cu.closeIdle(now)
	g.scheduleCU(cu, now)
}

// noteWaveDone is called by CU.retire when a wavefront completes.
func (g *GPU) noteWaveDone(now clock.Time) {
	g.WavesLeft--
	if g.WavesLeft == 0 {
		g.advanceLaunch(now)
		return
	}
	g.tryDispatch(now)
}

// submit routes a request into the shared hierarchy, waking the uncore.
func (g *GPU) submit(r mem.Request) {
	g.Msys.Submit(r)
	g.memDirty = true
	if g.memTickAt == InfTime {
		g.memTickAt = g.Msys.NextTickAfter(g.Now)
	}
}

// scheduleLocal schedules an L1-hit response.
func (g *GPU) scheduleLocal(r mem.Request, at clock.Time) {
	g.Msys.ScheduleLocal(r, at)
	g.memDirty = true
}

// scheduleCU recomputes cu's next tick: the first domain tick at which
// some runnable wavefront's SIMD is free, or sleep if nothing can issue.
// This is the cycle-skipping core — when every SIMD with runnable work is
// busy, the CU leaps straight past the known-busy span instead of ticking
// through it. O(#SIMDs) thanks to the maintained runnable counts.
func (g *GPU) scheduleCU(cu *CU, now clock.Time) {
	earliest := InfTime
	for s := range cu.SIMDFreeAt {
		if cu.runnable[s] > 0 && cu.SIMDFreeAt[s] < earliest {
			earliest = cu.SIMDFreeAt[s]
		}
	}
	if earliest == InfTime {
		cu.beginIdle(now)
		g.heap.set(cu.ID, InfTime)
		return
	}
	cu.closeIdle(now)
	if g.heap.key[cu.ID] == InfTime {
		// Waking from sleep: the slept span holds no CU cycles, so the
		// budget must not be billed for it.
		cu.cycleMark = now
	}
	dom := &g.Domains[cu.Domain]
	t := earliest - 1
	if t < now {
		t = now
	}
	g.heap.set(cu.ID, dom.NextTickAfter(t))
}

// applyCompletion lands one memory response at time now.
func (g *GPU) applyCompletion(r mem.Request, now clock.Time) {
	cu := &g.CUs[r.CU]
	cu.closeIdle(now)
	wf := &cu.WFs[r.WF]
	if r.Store {
		cu.StoresInFlight--
		cu.L1MissOut--
		if wf.OutStores == 1 && (wf.State == WFWaitCnt || wf.State == WFThrottled) {
			// Last in-flight store of a memory-blocked wave drains; the
			// wave no longer counts toward store-classified idle time.
			cu.blockedStore--
		}
		wf.OutStores--
	} else {
		cu.LoadsInFlight--
		wf.OutLoads--
		if !r.L1Hit {
			cu.L1MissOut--
			cu.L1.Fill(r.Addr)
			if r.Leading {
				cu.C.LeadLatPs += now - r.Issue
			}
			start := r.Issue
			if cu.CritEnd > start {
				start = cu.CritEnd
			}
			if now > cu.CritEnd {
				cu.C.CritLatPs += now - start
				cu.CritEnd = now
			}
		}
	}
	if !r.L1Hit && cu.throttled > 0 {
		// A miss completion freed MSHRs. Replay the throttled waves FIFO in
		// the order they throttled, waking one only when its pending memory
		// issue fits the free capacity, and stopping at the first that does
		// not (in-order replay, like a hardware MSHR retry queue). Waking
		// every wave — as the sim once did — left instantly re-throttling
		// waves with a re-stamped BlockedSince, splitting one continuous
		// stall span and dropping the wake-to-re-throttle gap from StallPs,
		// besides burning scheduling work on waves that could not issue.
		avail := int32(g.Cfg.Mem.L1MSHRs) - cu.L1MissOut
		for cu.throttled > 0 && avail > 0 {
			twf := &cu.WFs[cu.thrQ[cu.thrHead]]
			lines := twf.ThrLines
			if lines > avail {
				break
			}
			avail -= lines
			cu.thrPop()
			twf.C.StallPs += now - twf.BlockedSince
			twf.State = WFRunning
			cu.noteRunnable(twf)
			cu.noteMemWake(twf)
		}
	}
	if wf.State == WFWaitCnt && wf.OutLoads+wf.OutStores <= wf.WaitThresh {
		wf.C.StallPs += now - wf.BlockedSince
		wf.State = WFRunning
		cu.noteRunnable(wf)
		cu.noteMemWake(wf)
		prog := &g.Kernels[wf.Kernel].Program
		cu.commit(g, wf, false)
		if prog.Code[wf.PC].Kind == isa.EndPgm {
			cu.retire(g, int(r.WF), now)
		} else {
			wf.PC++
		}
	}
}

// RunUntil advances simulated time to limit (or until the application
// finishes, whichever comes first). On return g.Now is the limit, or the
// finish time if the workload completed earlier.
//
// RunUntil is also the cooperative watchdog: if every event source goes
// quiet (no CU tick, no uncore tick, no pending response) while the
// application is unfinished, nothing can ever wake the GPU again — events
// are only created by events — so instead of silently idling to the limit
// it records a structured DeadlockError in g.Stuck. The same happens when
// the Config.MaxCycles event budget runs out. A stuck GPU stays
// navigable: further RunUntil calls just advance Now so callers' epoch
// loops terminate instead of spinning.
func (g *GPU) RunUntil(limit clock.Time) {
	if g.Cfg.LegacyTick {
		g.runUntilLegacy(limit)
		return
	}
	// The three event sources — CU tick schedule, uncore tick, completion
	// queue — are cached across iterations and refreshed only when they
	// can actually have moved: the tick schedule after a drain or a CU
	// sweep, the completion queue after a drain, an uncore batch, or a
	// submit/L1-hit scheduled during a sweep (memDirty).
	ci, ck := g.heap.min()
	nd, ndok := g.Msys.NextDone()
	for !g.Finished && g.Stuck == nil {
		t := ck
		if g.memTickAt < t {
			t = g.memTickAt
		}
		if ndok && nd < t {
			t = nd
		}
		if t == InfTime {
			g.Stuck = g.diagnoseStall()
			break
		}
		if t > limit {
			break
		}
		g.Now = t

		// Apply the whole completion batch, then re-schedule each touched
		// CU once. Per-completion re-scheduling (the legacy structure) is
		// equivalent — scheduleCU is a pure recomputation, and same-time
		// zero-duration idle intervals contribute nothing — but does the
		// heap and idle bookkeeping once per completion instead of once
		// per batch. A completion is due only when nd == t, so the drain
		// is skipped entirely on pure tick events.
		if ndok && nd <= t {
			g.doneBuf = g.Msys.PopDone(t, g.doneBuf[:0])
			for _, r := range g.doneBuf {
				if g.Finished {
					break
				}
				g.applyCompletion(r, t)
				cu := &g.CUs[r.CU]
				if !cu.dirtySched {
					cu.dirtySched = true
					g.dirty = append(g.dirty, r.CU)
				}
			}
			for _, ci := range g.dirty {
				cu := &g.CUs[ci]
				cu.dirtySched = false
				if !g.Finished {
					g.scheduleCU(cu, t)
				}
			}
			g.dirty = g.dirty[:0]
			if g.Finished {
				break
			}
			// Rescheduling may have moved CU ticks, and the drain consumed
			// completions; refresh both cached minima.
			ci, ck = g.heap.min()
			nd, ndok = g.Msys.NextDone()
		}

		if g.memTickAt == t {
			// Batch-run uncore cycles up to the next CU event: the window
			// below holds no CU tick (ck), no completion landing (nd — and
			// TickRun stops before anything it schedules itself could
			// land), and no time past the caller's limit, so no submission
			// or wake can occur inside it. Uncore ticks never touch CU
			// tick keys, so the cached (ci, ck) stays valid across the
			// batch.
			horizon := ck
			if ndok && nd < horizon {
				horizon = nd
			}
			if limit+1 < horizon {
				horizon = limit + 1
			}
			if next, pending := g.Msys.TickRun(t, horizon); pending {
				g.memTickAt = next
			} else {
				g.memTickAt = InfTime
			}
			// The batch moved requests into the completion queues.
			nd, ndok = g.Msys.NextDone()
		}

		if ck != t {
			continue
		}
		g.memDirty = false
		if g.heap.linear {
			// One ascending pass ticks every CU due at t. A tick only
			// rewrites its own key (to a strictly later time), so this
			// visits exactly the CUs repeated min() would, in the same
			// index order, at one key scan per time step instead of one
			// per tick.
			for i := range g.heap.key {
				if g.heap.key[i] != t {
					continue
				}
				g.CUs[i].tick(g, t)
				if g.Cfg.MaxCycles > 0 && g.Cycles >= g.Cfg.MaxCycles && !g.Finished && g.Stuck == nil {
					g.Stuck = &DeadlockError{
						Kind: DeadlockCycleLimit, Now: t, Cycles: g.Cycles,
						Waiting: g.residentWaves(),
					}
				}
				if g.Finished || g.Stuck != nil {
					break
				}
			}
		} else {
			for ck == t {
				g.CUs[ci].tick(g, t)
				if g.Cfg.MaxCycles > 0 && g.Cycles >= g.Cfg.MaxCycles && !g.Finished && g.Stuck == nil {
					g.Stuck = &DeadlockError{
						Kind: DeadlockCycleLimit, Now: t, Cycles: g.Cycles,
						Waiting: g.residentWaves(),
					}
				}
				if g.Finished || g.Stuck != nil {
					break
				}
				ci, ck = g.heap.min()
			}
		}
		ci, ck = g.heap.min()
		if g.memDirty {
			nd, ndok = g.Msys.NextDone()
		}
	}
	if !g.Finished && g.Now < limit {
		g.Now = limit
	}
}

// runUntilLegacy is the pre-event-driven loop structure, retained behind
// Config.LegacyTick so differential tests can prove the event-driven loop
// produces byte-identical results. It re-schedules a CU after every
// individual completion instead of once per batch; everything else —
// tick, applyCompletion, cycle accounting — is shared.
func (g *GPU) runUntilLegacy(limit clock.Time) {
	for !g.Finished && g.Stuck == nil {
		_, t := g.heap.min()
		if g.memTickAt < t {
			t = g.memTickAt
		}
		if dt, ok := g.Msys.NextDone(); ok && dt < t {
			t = dt
		}
		if t == InfTime {
			g.Stuck = g.diagnoseStall()
			break
		}
		if t > limit {
			break
		}
		g.Now = t

		g.doneBuf = g.Msys.PopDone(t, g.doneBuf[:0])
		for _, r := range g.doneBuf {
			if g.Finished {
				break
			}
			g.applyCompletion(r, t)
			g.scheduleCU(&g.CUs[r.CU], t)
		}
		if g.Finished {
			break
		}

		if g.memTickAt == t {
			g.Msys.Tick(t)
			if g.Msys.Pending() {
				g.memTickAt = g.Msys.NextTickAfter(t)
			} else {
				g.memTickAt = InfTime
			}
		}

		for {
			i, k := g.heap.min()
			if k != t {
				break
			}
			g.CUs[i].tick(g, t)
			if g.Cfg.MaxCycles > 0 && g.Cycles >= g.Cfg.MaxCycles && !g.Finished && g.Stuck == nil {
				g.Stuck = &DeadlockError{
					Kind: DeadlockCycleLimit, Now: t, Cycles: g.Cycles,
					Waiting: g.residentWaves(),
				}
			}
			if g.Finished || g.Stuck != nil {
				break
			}
		}
	}
	if !g.Finished && g.Now < limit {
		g.Now = limit
	}
}

// residentWaves counts occupied wavefront slots GPU-wide.
func (g *GPU) residentWaves() int {
	n := 0
	for i := range g.CUs {
		n += int(g.CUs[i].ActiveWaves)
	}
	return n
}

// CollectEpoch finalizes the epoch ending now and fills out with the
// GPU-wide sample, then resets per-epoch state. The sample's slices are
// reused across calls; consumers must copy anything they keep.
func (g *GPU) CollectEpoch(out *EpochSample) {
	end := g.Now
	out.Start = g.EpochStart
	out.End = end
	out.Finished = g.Finished
	if cap(out.Freqs) < len(g.Domains) {
		out.Freqs = make([]clock.Freq, len(g.Domains))
	}
	out.Freqs = out.Freqs[:len(g.Domains)]
	for d := range g.Domains {
		out.Freqs[d] = g.Domains[d].Freq
	}
	if cap(out.CUs) < len(g.CUs) {
		// Fresh entries only: copying the old CUEpoch headers would carry
		// over WFs slices whose backing arrays a consumer may have
		// retained from an earlier sample, and collect would then mutate
		// records behind the consumer's back. Each new entry re-grows its
		// own WFs on first use instead.
		out.CUs = make([]CUEpoch, len(g.CUs))
	}
	out.CUs = out.CUs[:len(g.CUs)]
	for i := range g.CUs {
		g.CUs[i].collect(g, end, &out.CUs[i])
	}
	g.EpochStart = end
}

// ResetEpoch discards the epoch in progress and starts a fresh one at the
// current time: exactly CollectEpoch's state effects without building a
// sample. The oracle uses it to zero a fork's counters before
// pre-executing, at a fraction of CollectEpoch's cost.
func (g *GPU) ResetEpoch() {
	end := g.Now
	for i := range g.CUs {
		cu := &g.CUs[i]
		cu.closeEpochStamps(end)
		cu.resetEpochState(g, end)
	}
	g.EpochStart = end
}

// SetDomainFreq requests frequency f for domain d at the current time,
// stalling the domain for the given transition latency if f differs from
// its current frequency.
func (g *GPU) SetDomainFreq(d int, f clock.Freq, transition clock.Time) {
	g.SetDomainFreqOutcome(d, f, transition, false)
}

// SetDomainFreqOutcome is SetDomainFreq with an explicit regulator
// outcome (fault injection): a failed attempt pays the transition stall
// but keeps the old frequency. The domain's CUs are rescheduled either
// way because the stall moved their next tick.
func (g *GPU) SetDomainFreqOutcome(d int, f clock.Freq, transition clock.Time, fail bool) {
	dom := &g.Domains[d]
	if f == dom.Freq {
		return
	}
	dom.SetFreqOutcome(f, g.Now, transition, fail)
	lo, hi := g.Cfg.Domains.CUs(d)
	for cu := lo; cu < hi; cu++ {
		g.scheduleCU(&g.CUs[cu], g.Now)
	}
}

// ActivePCs appends the (cu, wavefront, byte-PC) of every resident
// wavefront in domain d — the PC predictor's lookup keys for the next
// epoch.
func (g *GPU) ActivePCs(d int, buf []WavePC) []WavePC {
	lo, hi := g.Cfg.Domains.CUs(d)
	for ci := lo; ci < hi; ci++ {
		cu := &g.CUs[ci]
		for i := range cu.WFs {
			wf := &cu.WFs[i]
			if wf.State == WFFree {
				continue
			}
			prog := &g.Kernels[wf.Kernel].Program
			buf = append(buf, WavePC{CU: int32(ci), Slot: int32(i), GlobalWave: wf.GlobalWave, PC: prog.PC(wf.PC)})
		}
	}
	return buf
}

// WavePC identifies a resident wavefront and its current byte PC.
type WavePC struct {
	CU         int32
	Slot       int32
	GlobalWave int64
	PC         uint64
}

// Clone copies the entire simulator state; the clone executes identically
// given identical frequency schedules and may run on another goroutine.
// Kernels and launches are immutable and shared outright; L1/L2 cache tag
// arrays — the bulk of the state — are shared copy-on-write and privatized
// on first write, so cloning cost is proportional to the small mutable
// core (waves, queues, counters), not cache capacity. Call Release on a
// clone being discarded while its parent lives on; forgetting to is safe,
// merely slower.
func (g *GPU) Clone() *GPU {
	cp := *g
	cp.CUs = make([]CU, len(g.CUs))
	for i := range g.CUs {
		cp.CUs[i] = g.CUs[i].clone()
	}
	cp.Domains = append([]clock.Domain(nil), g.Domains...)
	cp.Msys = g.Msys.Clone()
	cp.heap = g.heap.clone()
	cp.doneBuf = nil
	cp.dirty = nil
	return &cp
}

// Release drops the GPU's copy-on-write share of cache tag state. The GPU
// must not be used afterwards.
func (g *GPU) Release() {
	for i := range g.CUs {
		g.CUs[i].L1.Release()
	}
	g.Msys.Release()
}
