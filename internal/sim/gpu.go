package sim

import (
	"fmt"

	"pcstall/internal/clock"
	"pcstall/internal/isa"
	"pcstall/internal/mem"
	"pcstall/internal/xrand"
)

// Config describes the simulated GPU.
type Config struct {
	// NumCUs is the number of compute units (the paper's platform has 64).
	NumCUs int
	// MaxWavesPerCU is the wavefront slot count per CU (40 on Vega).
	MaxWavesPerCU int
	// SIMDsPerCU is the number of SIMD issue units per CU.
	SIMDsPerCU int
	// Mem is the memory hierarchy configuration.
	Mem mem.Config
	// Domains maps CUs into V/f domains.
	Domains clock.Map
	// Grid is the DVFS frequency grid.
	Grid clock.Grid
	// InitFreq is the frequency every domain starts at.
	InitFreq clock.Freq
	// Seed drives all workload randomness.
	Seed uint64
	// MaxCycles bounds the total CU cycle events the simulation may
	// execute; when the budget runs out RunUntil stops with a
	// DeadlockCycleLimit diagnostic in GPU.Stuck. 0 means unbounded.
	MaxCycles int64
}

// DefaultConfig returns the paper's platform scaled by numCUs: per-CU V/f
// domains, the 1.3-2.2 GHz grid, Vega-like CU shape, and the default
// memory hierarchy.
func DefaultConfig(numCUs int) Config {
	g := clock.DefaultGrid()
	return Config{
		NumCUs:        numCUs,
		MaxWavesPerCU: 40,
		SIMDsPerCU:    4,
		Mem:           mem.DefaultConfig(),
		Domains:       clock.Map{NumCUs: numCUs, CUsPerDomain: 1},
		Grid:          g,
		InitFreq:      g.Mid(),
		Seed:          1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumCUs < 1 {
		return fmt.Errorf("sim: %d CUs", c.NumCUs)
	}
	if c.MaxWavesPerCU < 1 || c.SIMDsPerCU < 1 {
		return fmt.Errorf("sim: bad CU shape: %d waves, %d SIMDs", c.MaxWavesPerCU, c.SIMDsPerCU)
	}
	if err := c.Mem.Validate(); err != nil {
		return err
	}
	if c.Domains.NumCUs != c.NumCUs {
		return fmt.Errorf("sim: domain map covers %d CUs, GPU has %d", c.Domains.NumCUs, c.NumCUs)
	}
	if err := c.Domains.Validate(); err != nil {
		return err
	}
	if err := c.Grid.Validate(); err != nil {
		return err
	}
	if c.Grid.Index(c.InitFreq) < 0 {
		return fmt.Errorf("sim: initial frequency %v not on grid", c.InitFreq)
	}
	if c.MaxCycles < 0 {
		return fmt.Errorf("sim: negative cycle budget %d", c.MaxCycles)
	}
	return nil
}

// GPU is the complete simulator state. Clone deep-copies it; the clone
// executes identically given identical frequency schedules.
type GPU struct {
	Cfg Config
	// Kernels is the deduplicated kernel set (shared, read-only).
	Kernels []isa.Kernel
	// Launches is the kernel launch order, as indices into Kernels
	// (shared, read-only). Launches run back-to-back with a full GPU
	// sync between them.
	Launches []int32

	CUs     []CU
	Domains []clock.Domain
	Msys    *mem.MemSys
	Now     clock.Time
	// EpochStart anchors per-epoch counters.
	EpochStart clock.Time
	// Finished is set once every launch has completed.
	Finished bool
	// Stuck is set by the cooperative watchdog when the simulation can
	// make no further progress (deadlocked workload or exhausted
	// Config.MaxCycles budget). Once set, RunUntil only advances Now.
	Stuck *DeadlockError
	// TotalCommitted counts instructions committed since time zero.
	TotalCommitted int64
	// Cycles counts CU cycle events executed (the MaxCycles budget).
	Cycles int64

	// Dispatch state.
	LaunchIdx      int32
	WGDispatched   int64
	WavesLeft      int64
	WGSeq          int64
	GlobalWaveSeq  int64
	dispatchCursor int32
	Rng            xrand.State

	heap      tickHeap
	memTickAt clock.Time
	doneBuf   []mem.Request
}

// New builds a GPU running the given launch sequence. It validates the
// configuration and all kernels, and performs the initial dispatch so the
// simulation is ready to run from time zero.
func New(cfg Config, kernels []isa.Kernel, launches []int32) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(kernels) == 0 || len(launches) == 0 {
		return nil, fmt.Errorf("sim: need at least one kernel and one launch")
	}
	for i := range kernels {
		if err := kernels[i].Validate(); err != nil {
			return nil, err
		}
		if kernels[i].WavesPerWG > cfg.MaxWavesPerCU {
			return nil, fmt.Errorf("sim: kernel %q workgroup (%d waves) exceeds CU capacity (%d)",
				kernels[i].Program.Name, kernels[i].WavesPerWG, cfg.MaxWavesPerCU)
		}
	}
	for _, l := range launches {
		if l < 0 || int(l) >= len(kernels) {
			return nil, fmt.Errorf("sim: launch index %d out of range", l)
		}
	}

	g := &GPU{
		Cfg:       cfg,
		Kernels:   kernels,
		Launches:  launches,
		CUs:       make([]CU, cfg.NumCUs),
		Domains:   make([]clock.Domain, cfg.Domains.NumDomains()),
		Msys:      mem.NewMemSys(cfg.Mem),
		Rng:       xrand.New(cfg.Seed),
		heap:      newTickHeap(cfg.NumCUs),
		memTickAt: InfTime,
		LaunchIdx: -1,
	}
	for i := range g.CUs {
		g.CUs[i] = newCU(int32(i), int32(cfg.Domains.DomainOf(i)), &cfg)
	}
	for d := range g.Domains {
		g.Domains[d] = clock.NewDomain(int32(d), cfg.InitFreq)
	}
	g.advanceLaunch(0)
	return g, nil
}

// advanceLaunch moves to the next kernel launch (or finishes) and
// dispatches its first workgroups.
func (g *GPU) advanceLaunch(now clock.Time) {
	g.LaunchIdx++
	if int(g.LaunchIdx) >= len(g.Launches) {
		g.Finished = true
		return
	}
	k := &g.Kernels[g.Launches[g.LaunchIdx]]
	g.WGDispatched = 0
	g.WavesLeft = int64(k.TotalWaves())
	g.tryDispatch(now)
}

// tryDispatch assigns pending workgroups of the current launch to CUs
// with enough free slots, round-robin: one workgroup per CU per pass so
// the grid spreads across the whole GPU before any CU is double-loaded.
func (g *GPU) tryDispatch(now clock.Time) {
	if g.Finished {
		return
	}
	kern := &g.Kernels[g.Launches[g.LaunchIdx]]
	total := int64(kern.Workgroups)
	n := int32(len(g.CUs))
	for g.WGDispatched < total {
		progress := false
		start := g.dispatchCursor
		for off := int32(0); off < n && g.WGDispatched < total; off++ {
			ci := (start + off) % n
			cu := &g.CUs[ci]
			if cu.freeSlots() >= kern.WavesPerWG {
				g.dispatchWG(cu, now)
				g.dispatchCursor = (ci + 1) % n
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// dispatchWG places one workgroup of the current launch on cu.
func (g *GPU) dispatchWG(cu *CU, now clock.Time) {
	kIdx := g.Launches[g.LaunchIdx]
	kern := &g.Kernels[kIdx]
	wg := g.WGSeq
	g.WGSeq++
	g.WGDispatched++
	placed := 0
	for i := range cu.WFs {
		if placed == kern.WavesPerWG {
			break
		}
		wf := &cu.WFs[i]
		if wf.State != WFFree {
			continue
		}
		gw := g.GlobalWaveSeq
		g.GlobalWaveSeq++
		wf.init(kIdx, &kern.Program, wg, int32(kern.WavesPerWG), gw, now, g.Rng.Split(uint64(gw)))
		cu.ActiveWaves++
		cu.enqueue(int32(i))
		placed++
	}
	cu.closeIdle(now)
	g.scheduleCU(cu, now)
}

// noteWaveDone is called by CU.retire when a wavefront completes.
func (g *GPU) noteWaveDone(now clock.Time) {
	g.WavesLeft--
	if g.WavesLeft == 0 {
		g.advanceLaunch(now)
		return
	}
	g.tryDispatch(now)
}

// submit routes a request into the shared hierarchy, waking the uncore.
func (g *GPU) submit(r mem.Request) {
	g.Msys.Submit(r)
	if g.memTickAt == InfTime {
		g.memTickAt = g.Msys.NextTickAfter(g.Now)
	}
}

// scheduleLocal schedules an L1-hit response.
func (g *GPU) scheduleLocal(r mem.Request, at clock.Time) {
	g.Msys.ScheduleLocal(r, at)
}

// scheduleCU recomputes cu's next tick: the first domain tick at which
// some runnable wavefront's SIMD is free, or sleep if nothing can issue.
func (g *GPU) scheduleCU(cu *CU, now clock.Time) {
	earliest := InfTime
	for s := range cu.SIMDFreeAt {
		for _, slot := range cu.simdQ[s] {
			if cu.WFs[slot].State == WFRunning {
				if cu.SIMDFreeAt[s] < earliest {
					earliest = cu.SIMDFreeAt[s]
				}
				break
			}
		}
	}
	if earliest == InfTime {
		cu.beginIdle(now)
		g.heap.set(cu.ID, InfTime)
		return
	}
	cu.closeIdle(now)
	dom := &g.Domains[cu.Domain]
	t := earliest - 1
	if t < now {
		t = now
	}
	g.heap.set(cu.ID, dom.NextTickAfter(t))
}

// applyCompletion lands one memory response at time now.
func (g *GPU) applyCompletion(r mem.Request, now clock.Time) {
	cu := &g.CUs[r.CU]
	cu.closeIdle(now)
	wf := &cu.WFs[r.WF]
	if r.Store {
		cu.StoresInFlight--
		cu.L1MissOut--
		wf.OutStores--
	} else {
		cu.LoadsInFlight--
		wf.OutLoads--
		if !r.L1Hit {
			cu.L1MissOut--
			cu.L1.Fill(r.Addr)
			if r.Leading {
				cu.C.LeadLatPs += now - r.Issue
			}
			start := r.Issue
			if cu.CritEnd > start {
				start = cu.CritEnd
			}
			if now > cu.CritEnd {
				cu.C.CritLatPs += now - start
				cu.CritEnd = now
			}
		}
	}
	if !r.L1Hit {
		// A miss completion freed an MSHR: release throttled waves so
		// they can retry their memory issue.
		for i := range cu.WFs {
			twf := &cu.WFs[i]
			if twf.State == WFThrottled {
				twf.C.StallPs += now - twf.BlockedSince
				twf.State = WFRunning
			}
		}
	}
	if wf.State == WFWaitCnt && wf.OutLoads+wf.OutStores <= wf.WaitThresh {
		wf.C.StallPs += now - wf.BlockedSince
		wf.State = WFRunning
		prog := &g.Kernels[wf.Kernel].Program
		cu.commit(g, wf, false)
		if prog.Code[wf.PC].Kind == isa.EndPgm {
			cu.retire(g, int(r.WF), now)
		} else {
			wf.PC++
		}
	}
	g.scheduleCU(cu, now)
}

// RunUntil advances simulated time to limit (or until the application
// finishes, whichever comes first). On return g.Now is the limit, or the
// finish time if the workload completed earlier.
//
// RunUntil is also the cooperative watchdog: if every event source goes
// quiet (no CU tick, no uncore tick, no pending response) while the
// application is unfinished, nothing can ever wake the GPU again — events
// are only created by events — so instead of silently idling to the limit
// it records a structured DeadlockError in g.Stuck. The same happens when
// the Config.MaxCycles event budget runs out. A stuck GPU stays
// navigable: further RunUntil calls just advance Now so callers' epoch
// loops terminate instead of spinning.
func (g *GPU) RunUntil(limit clock.Time) {
	for !g.Finished && g.Stuck == nil {
		_, t := g.heap.min()
		if g.memTickAt < t {
			t = g.memTickAt
		}
		if dt, ok := g.Msys.NextDone(); ok && dt < t {
			t = dt
		}
		if t == InfTime {
			g.Stuck = g.diagnoseStall()
			break
		}
		if t > limit {
			break
		}
		g.Now = t

		g.doneBuf = g.Msys.PopDone(t, g.doneBuf[:0])
		for _, r := range g.doneBuf {
			if g.Finished {
				break
			}
			g.applyCompletion(r, t)
		}
		if g.Finished {
			break
		}

		if g.memTickAt == t {
			g.Msys.Tick(t)
			if g.Msys.Pending() {
				g.memTickAt = g.Msys.NextTickAfter(t)
			} else {
				g.memTickAt = InfTime
			}
		}

		for {
			i, k := g.heap.min()
			if k != t {
				break
			}
			g.CUs[i].tick(g, t)
			g.Cycles++
			if g.Cfg.MaxCycles > 0 && g.Cycles >= g.Cfg.MaxCycles && !g.Finished && g.Stuck == nil {
				g.Stuck = &DeadlockError{
					Kind: DeadlockCycleLimit, Now: t, Cycles: g.Cycles,
					Waiting: g.residentWaves(),
				}
			}
			if g.Finished || g.Stuck != nil {
				break
			}
		}
	}
	if !g.Finished && g.Now < limit {
		g.Now = limit
	}
}

// residentWaves counts occupied wavefront slots GPU-wide.
func (g *GPU) residentWaves() int {
	n := 0
	for i := range g.CUs {
		n += int(g.CUs[i].ActiveWaves)
	}
	return n
}

// CollectEpoch finalizes the epoch ending now and fills out with the
// GPU-wide sample, then resets per-epoch state. The sample's slices are
// reused across calls; consumers must copy anything they keep.
func (g *GPU) CollectEpoch(out *EpochSample) {
	end := g.Now
	out.Start = g.EpochStart
	out.End = end
	out.Finished = g.Finished
	if cap(out.Freqs) < len(g.Domains) {
		out.Freqs = make([]clock.Freq, len(g.Domains))
	}
	out.Freqs = out.Freqs[:len(g.Domains)]
	for d := range g.Domains {
		out.Freqs[d] = g.Domains[d].Freq
	}
	if cap(out.CUs) < len(g.CUs) {
		cus := make([]CUEpoch, len(g.CUs))
		copy(cus, out.CUs)
		out.CUs = cus
	}
	out.CUs = out.CUs[:len(g.CUs)]
	for i := range g.CUs {
		g.CUs[i].collect(g, end, &out.CUs[i])
	}
	g.EpochStart = end
}

// SetDomainFreq requests frequency f for domain d at the current time,
// stalling the domain for the given transition latency if f differs from
// its current frequency.
func (g *GPU) SetDomainFreq(d int, f clock.Freq, transition clock.Time) {
	g.SetDomainFreqOutcome(d, f, transition, false)
}

// SetDomainFreqOutcome is SetDomainFreq with an explicit regulator
// outcome (fault injection): a failed attempt pays the transition stall
// but keeps the old frequency. The domain's CUs are rescheduled either
// way because the stall moved their next tick.
func (g *GPU) SetDomainFreqOutcome(d int, f clock.Freq, transition clock.Time, fail bool) {
	dom := &g.Domains[d]
	if f == dom.Freq {
		return
	}
	dom.SetFreqOutcome(f, g.Now, transition, fail)
	lo, hi := g.Cfg.Domains.CUs(d)
	for cu := lo; cu < hi; cu++ {
		g.scheduleCU(&g.CUs[cu], g.Now)
	}
}

// ActivePCs appends the (cu, wavefront, byte-PC) of every resident
// wavefront in domain d — the PC predictor's lookup keys for the next
// epoch.
func (g *GPU) ActivePCs(d int, buf []WavePC) []WavePC {
	lo, hi := g.Cfg.Domains.CUs(d)
	for ci := lo; ci < hi; ci++ {
		cu := &g.CUs[ci]
		for i := range cu.WFs {
			wf := &cu.WFs[i]
			if wf.State == WFFree {
				continue
			}
			prog := &g.Kernels[wf.Kernel].Program
			buf = append(buf, WavePC{CU: int32(ci), Slot: int32(i), GlobalWave: wf.GlobalWave, PC: prog.PC(wf.PC)})
		}
	}
	return buf
}

// WavePC identifies a resident wavefront and its current byte PC.
type WavePC struct {
	CU         int32
	Slot       int32
	GlobalWave int64
	PC         uint64
}

// Clone deep-copies the entire simulator state. Kernels and launches are
// immutable and shared.
func (g *GPU) Clone() *GPU {
	cp := *g
	cp.CUs = make([]CU, len(g.CUs))
	for i := range g.CUs {
		cp.CUs[i] = g.CUs[i].clone()
	}
	cp.Domains = append([]clock.Domain(nil), g.Domains...)
	cp.Msys = g.Msys.Clone()
	cp.heap = g.heap.clone()
	cp.doneBuf = nil
	return &cp
}
