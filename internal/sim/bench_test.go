package sim_test

import (
	"testing"

	"pcstall/internal/clock"
	"pcstall/internal/sim"
	"pcstall/internal/workload"
)

// Microbenchmarks for the simulator substrate itself (simulation rate,
// snapshot cost). The paper-figure benchmarks live at the repository
// root.

func benchGPU(b *testing.B, app string, cus int) *sim.GPU {
	b.Helper()
	cfg := sim.DefaultConfig(cus)
	a := workload.MustBuild(app, workload.DefaultGenConfig(cus))
	g, err := sim.New(cfg, a.Kernels, a.Launches)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkSimulate measures simulation throughput: wall time per 50µs of
// simulated time on an 8-CU GPU.
func BenchmarkSimulate(b *testing.B) {
	for _, app := range []string{"comd", "xsbench", "hpgmg", "dgemm"} {
		b.Run(app, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := benchGPU(b, app, 8)
				g.RunUntil(50 * clock.Microsecond)
			}
		})
	}
}

// BenchmarkClone measures the snapshot cost the fork-pre-execute oracle
// pays per sample.
func BenchmarkClone(b *testing.B) {
	g := benchGPU(b, "comd", 8)
	g.RunUntil(20 * clock.Microsecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Clone()
	}
}

// BenchmarkEpochCollect measures the per-boundary counter collection.
func BenchmarkEpochCollect(b *testing.B) {
	g := benchGPU(b, "comd", 8)
	var es sim.EpochSample
	for i := 0; i < b.N; i++ {
		g.RunUntil(g.Now + clock.Microsecond)
		g.CollectEpoch(&es)
		if g.Finished {
			b.StopTimer()
			g = benchGPU(b, "comd", 8)
			b.StartTimer()
		}
	}
}

// BenchmarkEpochHotPath measures one steady-state epoch step — RunUntil,
// CollectEpoch, and the per-domain ActivePCs lookup a PC-based policy
// performs — after a warm-up epoch has sized every reused buffer. The
// ci.sh allocation gate pins allocs/op at zero: nothing on this path may
// allocate once buffers have reached steady state.
func BenchmarkEpochHotPath(b *testing.B) {
	for _, app := range []string{"comd", "xsbench"} {
		b.Run(app, func(b *testing.B) {
			g := benchGPU(b, app, 8)
			var es sim.EpochSample
			var pcs []sim.WavePC
			step := func() {
				g.RunUntil(g.Now + clock.Microsecond)
				g.CollectEpoch(&es)
				for d := 0; d < g.Cfg.Domains.NumDomains(); d++ {
					pcs = g.ActivePCs(d, pcs[:0])
				}
			}
			step() // warm-up: size es, pcs, and internal buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
				if g.Finished {
					b.StopTimer()
					g = benchGPU(b, app, 8)
					step()
					b.StartTimer()
				}
			}
		})
	}
}
