package dist_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pcstall/internal/dist"
	"pcstall/internal/exp"
	"pcstall/internal/netchaos"
	"pcstall/internal/orchestrate"
	"pcstall/internal/serve"
)

// tinyCfg mirrors the exp package's unit-test platform: a small GPU,
// short workloads, one app.
func tinyCfg(cacheDir string) exp.Config {
	cfg := exp.DefaultConfig()
	cfg.CUs = 2
	cfg.Scale = 0.25
	cfg.TraceEpochs = 12
	cfg.Apps = []string{"comd"}
	cfg.CacheDir = cacheDir
	return cfg
}

// figGolden renders the reference figure text a plain local campaign
// produces — the bytes every fleet configuration must reproduce.
func figGolden(t *testing.T, figID string) string {
	t.Helper()
	s := exp.NewSuite(tinyCfg(t.TempDir()))
	defer s.Close()
	tb, err := s.Figure(nil, figID)
	if err != nil {
		t.Fatalf("direct figure: %v", err)
	}
	var sb strings.Builder
	tb.Fprint(&sb)
	return sb.String()
}

// startWorker boots one real pcstall-serve worker over its own suite
// and cache directory, exactly as `pcstall-serve -listen :0` would.
func startWorker(t *testing.T) *httptest.Server {
	t.Helper()
	suite := exp.NewSuite(tinyCfg(t.TempDir()))
	t.Cleanup(func() { _ = suite.Close() })
	srv, err := serve.New(serve.Config{
		Backend:   suite,
		Defaults:  suite.SimDefaults(),
		FigureIDs: suite.ArtifactIDs(),
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// runFleetFigure runs one figure campaign on the given dispatcher and
// returns the rendered text plus the campaign manifest.
func runFleetFigure(t *testing.T, d *dist.Dispatcher, figID string) (string, *orchestrate.Manifest) {
	t.Helper()
	cfg := tinyCfg(t.TempDir())
	cfg.RunVia = d.Bind
	cfg.Workers = 8 // dispatch slots, not CPU work
	s := exp.NewSuite(cfg)
	defer s.Close()
	tb, err := s.Figure(nil, figID)
	if err != nil {
		t.Fatalf("fleet figure: %v", err)
	}
	var sb strings.Builder
	tb.Fprint(&sb)
	return sb.String(), s.Manifest()
}

// TestFleetGolden is the tentpole invariant: a campaign sharded across
// three real pcstall-serve workers renders byte-identical figure text
// to a local run, with every manifest entry carrying remote provenance.
func TestFleetGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations across a fleet")
	}
	const figID = "1a"
	want := figGolden(t, figID)

	workers := []*httptest.Server{startWorker(t), startWorker(t), startWorker(t)}
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.URL
	}
	d, err := dist.New(dist.Config{Backends: urls, Window: 2})
	if err != nil {
		t.Fatalf("dist.New: %v", err)
	}
	defer d.Close()
	if err := d.CheckVersions(context.Background()); err != nil {
		t.Fatalf("CheckVersions: %v", err)
	}
	got, m := runFleetFigure(t, d, figID)
	if got != want {
		t.Errorf("fleet figure diverges from the local rendering:\n--- local ---\n%s--- fleet ---\n%s", want, got)
	}
	if len(m.Jobs) == 0 {
		t.Fatal("fleet campaign recorded no jobs")
	}
	for _, e := range m.Jobs {
		if !strings.HasPrefix(e.Source, "remote:") {
			t.Errorf("job %s has source %q, want remote provenance", e.Key, e.Source)
		}
	}
}

// TestFleetNetchaosGolden drives a full campaign through a seeded
// network-fault schedule: flipped bytes, truncations, stalls, resets,
// injected errors. The digest check, body budget, and re-steal loop
// must absorb every fault — the rendered figure stays byte-identical
// to the local run and no corrupted reply ever settles.
func TestFleetNetchaosGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations across a fleet")
	}
	const figID = "1a"
	want := figGolden(t, figID)

	urls := []string{startWorker(t).URL, startWorker(t).URL}
	eng := netchaos.NewEngine(netchaos.Level(0.3, 42))
	d, err := dist.New(dist.Config{
		Backends: urls, Window: 2,
		BodyTimeout:  2 * time.Second,
		ProbeBackoff: 10 * time.Millisecond, MaxProbeBackoff: 50 * time.Millisecond,
		WrapTransport: func(base http.RoundTripper) http.RoundTripper {
			return netchaos.NewTransport(base, eng)
		},
	})
	if err != nil {
		t.Fatalf("dist.New: %v", err)
	}
	defer d.Close()
	if err := d.CheckVersions(context.Background()); err != nil {
		t.Fatalf("CheckVersions: %v", err)
	}
	got, m := runFleetFigure(t, d, figID)
	if got != want {
		t.Errorf("netchaos fleet figure diverges from the local rendering:\n--- local ---\n%s--- fleet ---\n%s", want, got)
	}
	if len(m.Jobs) == 0 {
		t.Fatal("netchaos campaign recorded no jobs")
	}
	for _, e := range m.Jobs {
		if e.Error != "" {
			t.Errorf("job %s settled with error %q under netchaos", e.Key, e.Error)
		}
	}
	st := eng.Stats()
	t.Logf("netchaos stats: %+v (injected %d)", st, st.Injected())
	if st.Injected() == 0 {
		t.Error("fault schedule injected nothing — the invariant was not exercised")
	}
}

// killable wraps a worker's handler so the whole endpoint (healthz
// included) can be made to drop requests mid-campaign, as a killed
// process would.
type killable struct {
	h      http.Handler
	sims   atomic.Int32
	killed atomic.Bool
}

func (k *killable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.killed.Load() {
		http.Error(w, "connection refused", http.StatusInternalServerError)
		return
	}
	k.h.ServeHTTP(w, r)
	if r.Method == http.MethodPost && r.URL.Path == "/v1/sim" && k.sims.Add(1) >= 1 {
		// Die after the first settled sim: remaining jobs must be
		// stolen by the surviving workers.
		k.killed.Store(true)
	}
}

// TestFleetSurvivesKilledBackend kills one of three workers after its
// first job; the campaign must complete with identical bytes, the dead
// worker's jobs stolen by the survivors.
func TestFleetSurvivesKilledBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations across a fleet")
	}
	const figID = "1a"
	want := figGolden(t, figID)

	victimSuite := exp.NewSuite(tinyCfg(t.TempDir()))
	t.Cleanup(func() { _ = victimSuite.Close() })
	victimSrv, err := serve.New(serve.Config{
		Backend:   victimSuite,
		Defaults:  victimSuite.SimDefaults(),
		FigureIDs: victimSuite.ArtifactIDs(),
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	victim := &killable{h: victimSrv.Handler()}
	victimTS := httptest.NewServer(victim)
	t.Cleanup(victimTS.Close)

	urls := []string{victimTS.URL, startWorker(t).URL, startWorker(t).URL}
	d, err := dist.New(dist.Config{
		Backends: urls, Window: 1,
		ProbeBackoff: 50 * time.Millisecond, MaxProbeBackoff: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dist.New: %v", err)
	}
	defer d.Close()
	if err := d.CheckVersions(context.Background()); err != nil {
		t.Fatalf("CheckVersions: %v", err)
	}
	got, m := runFleetFigure(t, d, figID)
	if got != want {
		t.Errorf("fleet figure with a killed backend diverges:\n--- local ---\n%s--- fleet ---\n%s", want, got)
	}
	for _, e := range m.Jobs {
		if e.Error != "" {
			t.Errorf("job %s settled with error %q despite healthy peers", e.Key, e.Error)
		}
	}
}

// TestFleetAllDownFallsBackLocal: with every backend dead, the campaign
// must degrade to in-process execution and still produce identical
// bytes, with local-fallback provenance on the manifest.
func TestFleetAllDownFallsBackLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	const figID = "1a"
	want := figGolden(t, figID)

	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/version" {
			// Alive at admission, dead for every job: the harshest
			// mid-campaign total-fleet loss.
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"version":"x","sim_version":"` + orchestrate.SimVersion + `"}`))
			return
		}
		http.Error(w, "connection refused", http.StatusInternalServerError)
	}))
	defer dead.Close()

	d, err := dist.New(dist.Config{
		Backends:     []string{dead.URL},
		ProbeBackoff: time.Minute, MaxProbeBackoff: time.Minute,
	})
	if err != nil {
		t.Fatalf("dist.New: %v", err)
	}
	defer d.Close()
	if err := d.CheckVersions(context.Background()); err != nil {
		t.Fatalf("CheckVersions: %v", err)
	}
	got, m := runFleetFigure(t, d, figID)
	if got != want {
		t.Errorf("all-down fleet figure diverges:\n--- local ---\n%s--- fleet ---\n%s", want, got)
	}
	sawFallback := false
	for _, e := range m.Jobs {
		if e.Source == "local-fallback" {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Error("no job recorded local-fallback provenance")
	}
}
