package dist

import (
	"fmt"
	"strings"

	"pcstall/internal/telemetry"
)

// distTelemetry is the coordinator's metric bundle: fleet-wide counters
// for dispatches, steals, requeues, quarantines, and local fallbacks,
// a healthy-backend gauge, and the remote job latency distribution.
// Per-backend counters are derived on demand (the serving layer's
// per-endpoint idiom) under sanitized URL labels.
type distTelemetry struct {
	reg *telemetry.Registry

	stolen    *telemetry.Counter
	requeues  *telemetry.Counter
	fallbacks *telemetry.Counter
	etagHits  *telemetry.Counter
	integrity *telemetry.Counter
	timeouts  *telemetry.Counter

	healthy *telemetry.Gauge

	remote *telemetry.Histogram
}

// newDistTelemetry builds the bundle on r (nil r yields nil, making
// every record a nil check).
func newDistTelemetry(r *telemetry.Registry) *distTelemetry {
	if r == nil {
		return nil
	}
	return &distTelemetry{
		reg:       r,
		stolen:    r.Counter("dist_jobs_stolen_total", "jobs re-dispatched to a peer after their first backend failed, shed, or drained"),
		requeues:  r.Counter("dist_jobs_requeued_total", "dispatch attempts returned to the queue by a backend fault or shed"),
		fallbacks: r.Counter("dist_local_fallbacks_total", "jobs executed in-process because no backend was healthy"),
		etagHits:  r.Counter("dist_etag_hits_total", "re-dispatches answered 304 from the coordinator's own cached body"),
		integrity: r.Counter("dist_integrity_faults_total", "settled replies rejected by digest verification (corrupted in flight, never ingested)"),
		timeouts:  r.Counter("dist_timeout_faults_total", "dispatch attempts cut off by a per-attempt transport deadline"),
		healthy:   r.Gauge("dist_backends_healthy", "backends currently in dispatch rotation"),
		remote:    r.Phase("dist_remote_job"),
	}
}

// metricName flattens a backend URL into a metric-name-safe label.
func metricName(url string) string {
	url = strings.TrimPrefix(strings.TrimPrefix(url, "http://"), "https://")
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, url)
}

// perBackend counts one event on a backend-labeled counter.
func (t *distTelemetry) perBackend(b *backend, event, help string) {
	if t == nil {
		return
	}
	t.reg.Counter(
		fmt.Sprintf("dist_backend_%s_%s_total", b.name, event),
		help+" on backend "+b.url,
	).Inc()
}

// remoteHist returns the remote job latency histogram (nil when
// telemetry is disabled).
func (t *distTelemetry) remoteHist() *telemetry.Histogram {
	if t == nil {
		return nil
	}
	return t.remote
}

// setHealthy records the in-rotation backend count.
func (t *distTelemetry) setHealthy(n int) {
	if t == nil {
		return
	}
	t.healthy.Set(float64(n))
}

// dispatched counts one job settled on a backend.
func (t *distTelemetry) dispatched(b *backend) {
	t.perBackend(b, "dispatched", "jobs settled")
}

// stole counts a job re-dispatched to this backend after a peer lost it.
func (t *distTelemetry) stole(b *backend) {
	if t == nil {
		return
	}
	t.stolen.Inc()
	t.perBackend(b, "stolen", "jobs stolen from a failed or shedding peer")
}

// requeued counts a dispatch attempt returned to the queue.
func (t *distTelemetry) requeued(b *backend) {
	if t == nil {
		return
	}
	t.requeues.Inc()
	t.perBackend(b, "errors", "dispatch attempts that failed")
}

// quarantined counts a backend leaving rotation on a fault.
func (t *distTelemetry) quarantined(b *backend, healthy int) {
	if t == nil {
		return
	}
	t.perBackend(b, "quarantines", "times taken out of rotation by a fault")
	t.healthy.Set(float64(healthy))
}

// droppedBackend counts a backend removed permanently (version/key skew).
func (t *distTelemetry) droppedBackend(b *backend, healthy int) {
	if t == nil {
		return
	}
	t.perBackend(b, "dropped", "permanent removals for version or key skew")
	t.healthy.Set(float64(healthy))
}

// healed counts a quarantined backend re-entering rotation.
func (t *distTelemetry) healed(b *backend, healthy int) {
	if t == nil {
		return
	}
	t.perBackend(b, "heals", "probe-confirmed returns to rotation")
	t.healthy.Set(float64(healthy))
}

// integrityFault counts a reply rejected by digest verification.
func (t *distTelemetry) integrityFault(b *backend) {
	if t == nil {
		return
	}
	t.integrity.Inc()
	t.perBackend(b, "integrity_faults", "settled replies rejected by digest verification")
}

// timeoutFault counts a dispatch attempt ended by a transport deadline.
func (t *distTelemetry) timeoutFault(b *backend) {
	if t == nil {
		return
	}
	t.timeouts.Inc()
	t.perBackend(b, "timeout_faults", "dispatch attempts cut off by a transport deadline")
}

// fallback counts one job routed to the local lane.
func (t *distTelemetry) fallback() {
	if t == nil {
		return
	}
	t.fallbacks.Inc()
}

// etag counts a re-dispatch resolved 304 against the local cache.
func (t *distTelemetry) etag(b *backend) {
	if t == nil {
		return
	}
	t.etagHits.Inc()
	t.perBackend(b, "etag_hits", "re-dispatches answered 304")
}
