package dist

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pcstall/internal/dvfs"
	"pcstall/internal/orchestrate"
	"pcstall/internal/telemetry"
	"pcstall/internal/wire"
)

// stubWorker is a scriptable pcstall-serve stand-in: it speaks exactly
// the worker protocol the Client needs (POST /v1/sim, GET /v1/version,
// GET /healthz), reconstructs each wire job to answer under the true
// content address, and can be told to fail, shed, or go dark.
type stubWorker struct {
	name       string
	simVersion string
	srv        *httptest.Server
	down       atomic.Bool // healthz 503, sims 500

	mu       sync.Mutex
	simCalls int
	inmSeen  int // sim requests carrying If-None-Match
	failN    int // fail this many sims with 500 first
	shedN    int // then shed this many with 429
	keys     []string
}

func newWorker(t *testing.T, name string) *stubWorker {
	t.Helper()
	w := &stubWorker{name: name, simVersion: orchestrate.SimVersion}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/version", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(map[string]string{
			"version": "stub", "sim_version": w.simVersion,
		})
	})
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		if w.down.Load() {
			http.Error(rw, `{"error":"draining"}`, http.StatusServiceUnavailable)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		_, _ = rw.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("POST /v1/sim", w.handleSim)
	w.srv = httptest.NewServer(mux)
	t.Cleanup(w.srv.Close)
	return w
}

func (w *stubWorker) handleSim(rw http.ResponseWriter, r *http.Request) {
	if w.down.Load() {
		http.Error(rw, `{"error":"backend down"}`, http.StatusInternalServerError)
		return
	}
	w.mu.Lock()
	w.simCalls++
	if r.Header.Get("If-None-Match") != "" {
		w.inmSeen++
	}
	fail, shed := false, false
	if w.failN > 0 {
		w.failN--
		fail = true
	} else if w.shedN > 0 {
		w.shedN--
		shed = true
	}
	w.mu.Unlock()
	if fail {
		http.Error(rw, `{"error":"injected failure"}`, http.StatusInternalServerError)
		return
	}
	if shed {
		rw.Header().Set("Retry-After", "1")
		http.Error(rw, `{"error":"queue full"}`, http.StatusTooManyRequests)
		return
	}
	var sw simWire
	if err := json.NewDecoder(r.Body).Decode(&sw); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	j := orchestrate.Job{
		App: sw.App, Design: sw.Design, EpochPs: sw.EpochPs,
		Objective: sw.Objective, CUsPerDomain: sw.CUsPerDomain,
		CUs: sw.CUs, Scale: sw.Scale, MaxTimePs: sw.MaxTimePs,
		OracleSamples: sw.OracleSamples, Chaos: sw.Chaos,
		MaxCycles: sw.MaxCycles, SimVersion: orchestrate.SimVersion,
	}
	if sw.Seed != nil {
		j.Seed = *sw.Seed
	}
	key := j.Key()
	w.mu.Lock()
	w.keys = append(w.keys, key)
	w.mu.Unlock()
	if etagMatchTest(r.Header.Get("If-None-Match"), `"`+key+`"`) {
		rw.WriteHeader(http.StatusNotModified)
		return
	}
	body, _ := json.Marshal(simReply{
		ID: key, Job: j,
		Result: &dvfs.Result{Policy: "stub-" + w.name, Epochs: 1},
	})
	rw.Header().Set("Content-Type", "application/json")
	rw.Header().Set(wire.DigestHeader, wire.Digest(body))
	_, _ = rw.Write(body)
}

// etagMatchTest mirrors the serving layer's validator comparison.
func etagMatchTest(header, etag string) bool {
	return header == etag
}

func (w *stubWorker) calls() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.simCalls
}

func testJob(seed uint64) orchestrate.Job {
	return orchestrate.Job{
		App: "comd", Design: "PCSTALL", EpochPs: 1_000_000,
		Objective: "ED2P", CUsPerDomain: 1, CUs: 2, Scale: 0.25,
		Seed: seed, MaxTimePs: 5_000_000_000,
		SimVersion: orchestrate.SimVersion,
	}
}

func newDispatcher(t *testing.T, cfg Config) *Dispatcher {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(d.Close)
	return d
}

// noLocal is a fallback executor for tests where the fleet must handle
// everything.
func noLocal(t *testing.T) orchestrate.RunFunc {
	return func(context.Context, orchestrate.Job, *telemetry.Registry) (*dvfs.Result, error) {
		t.Error("local fallback ran while the fleet was healthy")
		return &dvfs.Result{Policy: "local"}, nil
	}
}

func noCache(string) (*dvfs.Result, bool) { return nil, false }

func TestFleetSpreadsJobs(t *testing.T) {
	a, b := newWorker(t, "a"), newWorker(t, "b")
	d := newDispatcher(t, Config{Backends: []string{a.srv.URL, b.srv.URL}, Window: 2})
	if err := d.CheckVersions(context.Background()); err != nil {
		t.Fatalf("CheckVersions: %v", err)
	}
	run := d.Bind(noLocal(t), noCache)
	const jobs = 8
	results := make([]*dvfs.Result, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := run(context.Background(), testJob(uint64(i+1)), nil)
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r == nil || (r.Policy != "stub-a" && r.Policy != "stub-b") {
			t.Fatalf("job %d settled with %+v, want a stub result", i, r)
		}
	}
	ca, cb := a.calls(), b.calls()
	if ca+cb != jobs {
		t.Errorf("fleet saw %d+%d sims, want %d", ca, cb, jobs)
	}
	// With windows of 2 and 8 concurrent jobs, neither backend can have
	// taken everything.
	if ca == 0 || cb == 0 {
		t.Errorf("dispatch did not spread: a=%d b=%d", ca, cb)
	}
}

func TestCheckVersionsFailsClosed(t *testing.T) {
	a, b := newWorker(t, "a"), newWorker(t, "b")
	b.simVersion = "pcstall-sim-v0"
	d := newDispatcher(t, Config{Backends: []string{a.srv.URL, b.srv.URL}})
	if err := d.CheckVersions(context.Background()); err == nil {
		t.Fatal("CheckVersions accepted a mixed-version fleet")
	}
}

func TestCheckVersionsSkipsMismatched(t *testing.T) {
	a, b := newWorker(t, "a"), newWorker(t, "b")
	b.simVersion = "pcstall-sim-v0"
	d := newDispatcher(t, Config{
		Backends:       []string{a.srv.URL, b.srv.URL},
		SkipMismatched: true,
	})
	if err := d.CheckVersions(context.Background()); err != nil {
		t.Fatalf("CheckVersions: %v", err)
	}
	if got := d.Healthy(); got != 1 {
		t.Fatalf("Healthy() = %d after dropping the mismatch, want 1", got)
	}
	run := d.Bind(noLocal(t), noCache)
	for i := 0; i < 4; i++ {
		if _, err := run(context.Background(), testJob(uint64(i+1)), nil); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if got := b.calls(); got != 0 {
		t.Errorf("mismatched backend received %d jobs, want 0", got)
	}
	if got := a.calls(); got != 4 {
		t.Errorf("surviving backend ran %d jobs, want 4", got)
	}
}

func TestCheckVersionsNeedsOneSurvivor(t *testing.T) {
	a := newWorker(t, "a")
	a.simVersion = "pcstall-sim-v0"
	d := newDispatcher(t, Config{Backends: []string{a.srv.URL}, SkipMismatched: true})
	if err := d.CheckVersions(context.Background()); err == nil {
		t.Fatal("CheckVersions accepted an empty fleet")
	}
}

func TestQuarantineStealAndHeal(t *testing.T) {
	a, b := newWorker(t, "a"), newWorker(t, "b")
	a.down.Store(true)
	reg := telemetry.New()
	d := newDispatcher(t, Config{
		Backends:     []string{a.srv.URL, b.srv.URL},
		Metrics:      reg,
		ProbeBackoff: 5 * time.Millisecond, MaxProbeBackoff: 20 * time.Millisecond,
	})
	if err := d.CheckVersions(context.Background()); err != nil {
		t.Fatalf("CheckVersions: %v", err)
	}
	run := d.Bind(noLocal(t), noCache)
	for i := 0; i < 4; i++ {
		r, err := run(context.Background(), testJob(uint64(i+1)), nil)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if r.Policy != "stub-b" {
			t.Fatalf("job %d ran on %q, want the healthy peer", i, r.Policy)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["dist_jobs_stolen_total"] == 0 {
		t.Error("no steal was recorded for jobs lost to the dead backend")
	}
	if snap.Counters["dist_jobs_requeued_total"] == 0 {
		t.Error("no requeue was recorded")
	}

	// The backend comes back; the probe loop must return it to rotation.
	a.down.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for d.Healthy() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("healed backend never returned to rotation")
		}
		time.Sleep(5 * time.Millisecond)
	}
	before := a.calls()
	for i := 0; i < 4; i++ {
		if _, err := run(context.Background(), testJob(uint64(i+10)), nil); err != nil {
			t.Fatalf("post-heal job %d: %v", i, err)
		}
	}
	if a.calls() == before {
		t.Error("healed backend never received a job")
	}
}

func TestAllBackendsDownFallsBackLocal(t *testing.T) {
	a := newWorker(t, "a")
	reg := telemetry.New()
	d := newDispatcher(t, Config{
		Backends: []string{a.srv.URL},
		Metrics:  reg,
		// Long probe backoff: the backend must stay quarantined for the
		// whole test.
		ProbeBackoff: time.Minute, MaxProbeBackoff: time.Minute,
	})
	if err := d.CheckVersions(context.Background()); err != nil {
		t.Fatalf("CheckVersions: %v", err)
	}
	var localRuns atomic.Int32
	run := d.Bind(func(ctx context.Context, j orchestrate.Job, reg *telemetry.Registry) (*dvfs.Result, error) {
		localRuns.Add(1)
		return &dvfs.Result{Policy: "local"}, nil
	}, noCache)
	a.down.Store(true)
	for i := 0; i < 3; i++ {
		r, err := run(context.Background(), testJob(uint64(i+1)), nil)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if r.Policy != "local" {
			t.Fatalf("job %d settled as %q, want the local lane", i, r.Policy)
		}
	}
	if got := localRuns.Load(); got != 3 {
		t.Errorf("local lane ran %d jobs, want 3", got)
	}
	if reg.Snapshot().Counters["dist_local_fallbacks_total"] != 3 {
		t.Error("local fallbacks were not counted")
	}
}

func TestShedCooldownThenRetry(t *testing.T) {
	a := newWorker(t, "a")
	a.shedN = 1
	d := newDispatcher(t, Config{Backends: []string{a.srv.URL}})
	if err := d.CheckVersions(context.Background()); err != nil {
		t.Fatalf("CheckVersions: %v", err)
	}
	run := d.Bind(noLocal(t), noCache)
	start := time.Now()
	r, err := run(context.Background(), testJob(1), nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if r.Policy != "stub-a" {
		t.Fatalf("settled as %q, want the shedding backend after cooldown", r.Policy)
	}
	// A shed is not a fault: the backend must not have been quarantined
	// (it was re-dispatched after Retry-After, which the stub set to 1s).
	if d.Healthy() != 1 {
		t.Error("shed quarantined the backend")
	}
	if a.calls() != 2 {
		t.Errorf("backend saw %d sims, want shed+retry = 2", a.calls())
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Errorf("retry after %v ignored the 1s Retry-After", elapsed)
	}
}

func TestRedispatchResolves304FromCache(t *testing.T) {
	// Backend a takes the job first (deterministic tie-break) and fails
	// it; the steal to b carries If-None-Match because the coordinator
	// already has the body, and b's 304 resolves from the local cache.
	a, b := newWorker(t, "a"), newWorker(t, "b")
	a.failN = 1
	reg := telemetry.New()
	d := newDispatcher(t, Config{
		Backends:     []string{a.srv.URL, b.srv.URL},
		Metrics:      reg,
		ProbeBackoff: time.Minute, MaxProbeBackoff: time.Minute,
	})
	if err := d.CheckVersions(context.Background()); err != nil {
		t.Fatalf("CheckVersions: %v", err)
	}
	j := testJob(7)
	cached := &dvfs.Result{Policy: "cached", Epochs: 1}
	run := d.Bind(noLocal(t), func(key string) (*dvfs.Result, bool) {
		if key == j.Key() {
			return cached, true
		}
		return nil, false
	})
	r, err := run(context.Background(), j, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if r != cached {
		t.Fatalf("settled as %+v, want the cached body resolved via 304", r)
	}
	b.mu.Lock()
	inm := b.inmSeen
	b.mu.Unlock()
	if inm != 1 {
		t.Errorf("stealing backend saw %d If-None-Match requests, want 1", inm)
	}
	if reg.Snapshot().Counters["dist_etag_hits_total"] != 1 {
		t.Error("304 resolution was not counted")
	}
}

func TestClientRejectsKeySkew(t *testing.T) {
	// A backend that answers under a different content address must be
	// reported as skewed, not trusted.
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(rw).Encode(simReply{
			ID:     "feedfacefeedface",
			Job:    testJob(1),
			Result: &dvfs.Result{Policy: "skewed"},
		})
	}))
	defer srv.Close()
	c := NewClient(srv.URL, nil)
	_, _, err := c.Sim(context.Background(), testJob(1), false)
	var skew *SkewError
	if !errors.As(err, &skew) {
		t.Fatalf("Sim returned %v, want a SkewError", err)
	}
}

func TestDispatcherDropsSkewedBackend(t *testing.T) {
	// a answers under the wrong key: it must be dropped permanently and
	// the job must settle on b.
	var aCalls atomic.Int32
	aSrv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/version":
			_ = json.NewEncoder(rw).Encode(map[string]string{"sim_version": orchestrate.SimVersion})
		case r.URL.Path == "/healthz":
			_, _ = rw.Write([]byte(`{}`))
		default:
			aCalls.Add(1)
			_ = json.NewEncoder(rw).Encode(simReply{
				ID:     "feedfacefeedface",
				Job:    testJob(99),
				Result: &dvfs.Result{Policy: "skewed"},
			})
		}
	}))
	defer aSrv.Close()
	b := newWorker(t, "b")
	d := newDispatcher(t, Config{Backends: []string{aSrv.URL, b.srv.URL}})
	if err := d.CheckVersions(context.Background()); err != nil {
		t.Fatalf("CheckVersions: %v", err)
	}
	run := d.Bind(noLocal(t), noCache)
	for i := 0; i < 4; i++ {
		r, err := run(context.Background(), testJob(uint64(i+1)), nil)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if r.Policy != "stub-b" {
			t.Fatalf("job %d settled as %q, want the honest backend", i, r.Policy)
		}
	}
	if got := aCalls.Load(); got != 1 {
		t.Errorf("skewed backend saw %d sims after the drop, want exactly 1", got)
	}
	if d.Healthy() != 1 {
		t.Errorf("Healthy() = %d, want the skewed backend out of rotation", d.Healthy())
	}
}

func TestCancellationPropagates(t *testing.T) {
	a := newWorker(t, "a")
	a.down.Store(true) // every dispatch fails; without cancellation Run would loop
	d := newDispatcher(t, Config{
		Backends:     []string{a.srv.URL},
		ProbeBackoff: time.Minute, MaxProbeBackoff: time.Minute,
	})
	run := d.Bind(func(ctx context.Context, j orchestrate.Job, reg *telemetry.Registry) (*dvfs.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, noCache)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := run(ctx, testJob(1), nil)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("cancelled run settled without error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run never returned")
	}
}
