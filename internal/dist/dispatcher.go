package dist

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"pcstall/internal/dvfs"
	"pcstall/internal/orchestrate"
	"pcstall/internal/telemetry"
	"pcstall/internal/tracing"
)

// Config shapes a Dispatcher.
type Config struct {
	// Backends are pcstall-serve base URLs; at least one is required.
	Backends []string
	// Window caps per-backend in-flight jobs (default 4). The live
	// window adapts beneath the cap: it grows one slot per completion
	// and is clamped by observed job latency, so a backend running 4×
	// slower than the fleet's fastest holds roughly a quarter the
	// in-flight work.
	Window int
	// LocalWorkers bounds the local fallback lane — the jobs executed
	// in-process when no backend is healthy (default runtime.NumCPU()).
	// The fleet may overlap far more jobs than this machine has cores;
	// the degraded lane must not.
	LocalWorkers int
	// SkipMismatched makes CheckVersions drop version-mismatched (or
	// unverifiable) backends from rotation instead of failing the
	// campaign. At least one backend must survive either way.
	SkipMismatched bool
	// Metrics, when non-nil, receives dist_* fleet telemetry.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, traces quarantine probes (the dispatch path
	// itself rides the campaign context's tracer) and lets probe requests
	// carry X-Pcstall-Trace to the backend.
	Tracer *tracing.Tracer
	// Log, when non-nil, receives structured fleet-health records
	// (quarantine, heal, drop, fallback) with their causes.
	Log *slog.Logger
	// HTTP overrides the backend client wholesale (nil builds
	// DefaultHTTPClient from the timeouts below).
	HTTP *http.Client
	// DialTimeout and HeaderTimeout shape the default transport's
	// per-attempt connect and response-header deadlines (zero selects
	// DefaultDialTimeout / DefaultHeaderTimeout). Ignored when HTTP is
	// set.
	DialTimeout   time.Duration
	HeaderTimeout time.Duration
	// BodyTimeout bounds reading one settled body (zero selects
	// DefaultBodyTimeout). Applied whether or not HTTP is set.
	BodyTimeout time.Duration
	// WrapTransport, when non-nil, wraps the backend client's transport
	// — the seam netchaos.NewTransport plugs into for in-process fault
	// injection without dist importing the injector.
	WrapTransport func(http.RoundTripper) http.RoundTripper
	// ProbeBackoff is the initial quarantine probe delay, doubling
	// (jittered via orchestrate.Jitter) up to MaxProbeBackoff — the same
	// discipline the orchestrator's job retries use. Defaults 250ms/15s.
	ProbeBackoff    time.Duration
	MaxProbeBackoff time.Duration
	// ProbeTimeout bounds one /healthz probe (default 2s).
	ProbeTimeout time.Duration
}

// backend is one worker's coordinator-side record. All mutable fields
// are guarded by Dispatcher.mu.
type backend struct {
	url    string
	name   string // metric-safe label
	client *Client

	healthy  bool
	dropped  bool // version/key skew: permanently out of rotation
	probing  bool
	inflight int
	window   int
	ewmaMs   float64
	cooldown time.Time // 429/503 Retry-After: no dispatch before this
}

// Dispatcher fans jobs out across the fleet. Safe for concurrent use;
// the orchestrator's worker pool drives Run from many goroutines.
type Dispatcher struct {
	cfg       Config
	ctx       context.Context
	cancel    context.CancelFunc
	tele      *distTelemetry
	log       *slog.Logger
	localSem  chan struct{}
	maxWindow int
	probeWait time.Duration
	probeMax  time.Duration
	probeTO   time.Duration

	// Bound once (Bind) before the first Run:
	local  orchestrate.RunFunc
	cached func(key string) (*dvfs.Result, bool)

	mu       sync.Mutex
	backends []*backend
	waitCh   chan struct{}

	wg sync.WaitGroup // quarantine probe loops
}

// New builds a Dispatcher over the configured backends. Call
// CheckVersions before dispatching so a mixed-version fleet is rejected
// up front, and Close when the campaign ends.
func New(cfg Config) (*Dispatcher, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("dist: Config.Backends is required")
	}
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	if cfg.LocalWorkers <= 0 {
		cfg.LocalWorkers = runtime.NumCPU()
	}
	if cfg.ProbeBackoff <= 0 {
		cfg.ProbeBackoff = 250 * time.Millisecond
	}
	if cfg.MaxProbeBackoff <= 0 {
		cfg.MaxProbeBackoff = 15 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	// The dispatcher's own context (probe loops) carries the tracer so
	// quarantine probes trace even though they outlive any one campaign
	// context.
	ctx, cancel := context.WithCancel(tracing.WithTracer(context.Background(), cfg.Tracer))
	d := &Dispatcher{
		cfg:       cfg,
		ctx:       ctx,
		cancel:    cancel,
		tele:      newDistTelemetry(cfg.Metrics),
		log:       cfg.Log,
		localSem:  make(chan struct{}, cfg.LocalWorkers),
		maxWindow: cfg.Window,
		probeWait: cfg.ProbeBackoff,
		probeMax:  cfg.MaxProbeBackoff,
		probeTO:   cfg.ProbeTimeout,
		waitCh:    make(chan struct{}),
	}
	hc := cfg.HTTP
	if hc == nil {
		hc = DefaultHTTPClient(cfg.DialTimeout, cfg.HeaderTimeout)
	}
	if cfg.WrapTransport != nil {
		// Wrap a shallow copy so a caller-owned client is not mutated.
		base := hc.Transport
		if base == nil {
			base = http.DefaultTransport
		}
		wrapped := *hc
		wrapped.Transport = cfg.WrapTransport(base)
		hc = &wrapped
	}
	seen := map[string]bool{}
	for _, u := range cfg.Backends {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		cl := NewClient(u, hc)
		cl.SetBodyBudget(cfg.BodyTimeout)
		d.backends = append(d.backends, &backend{
			url:     u,
			name:    metricName(u),
			client:  cl,
			healthy: true,
			window:  1, // trust is earned: windows grow with completions
		})
	}
	if len(d.backends) == 0 {
		return nil, fmt.Errorf("dist: no usable backend URLs in %v", cfg.Backends)
	}
	d.tele.setHealthy(len(d.backends))
	return d, nil
}

// Bind attaches the campaign's in-process executor (the fallback lane)
// and its cache peek (the If-None-Match source) and returns the fleet
// RunFunc. Its shape matches exp.Config.RunVia, so wiring a campaign
// onto the fleet is one assignment:
//
//	cfg.RunVia = dispatcher.Bind
func (d *Dispatcher) Bind(local orchestrate.RunFunc, cached func(string) (*dvfs.Result, bool)) orchestrate.RunFunc {
	d.local = local
	d.cached = cached
	return d.Run
}

// Close stops the quarantine probes and releases the dispatcher. In-
// flight Run calls finish on their own contexts.
func (d *Dispatcher) Close() {
	d.cancel()
	d.wg.Wait()
}

// Healthy reports how many backends are currently in rotation.
func (d *Dispatcher) Healthy() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, b := range d.backends {
		if b.healthy && !b.dropped {
			n++
		}
	}
	return n
}

// CheckVersions admits the fleet: every backend's sim_version must equal
// this binary's orchestrate.SimVersion. A mismatched — or unverifiable —
// backend either fails the campaign (default; mixed-version fleets must
// never pollute the content-addressed cache) or, with SkipMismatched, is
// dropped from rotation and never receives a job. At least one backend
// must survive.
func (d *Dispatcher) CheckVersions(ctx context.Context) error {
	d.mu.Lock()
	backends := append([]*backend(nil), d.backends...)
	d.mu.Unlock()
	live := 0
	for _, b := range backends {
		v, err := b.client.SimVersion(ctx)
		if err == nil && v == orchestrate.SimVersion {
			live++
			continue
		}
		if err == nil {
			err = fmt.Errorf("dist: %s runs sim version %q, coordinator runs %q", b.url, v, orchestrate.SimVersion)
		}
		if !d.cfg.SkipMismatched {
			return fmt.Errorf("version fail-safe: %w (use -skip-version-mismatch to drop such backends instead)", err)
		}
		d.drop(b, err)
	}
	if live == 0 {
		return fmt.Errorf("dist: version fail-safe left no usable backends (of %d)", len(backends))
	}
	return nil
}

// Run executes one job on the fleet: acquire a slot on the best healthy
// backend, dispatch, and on backend failure let a healthy peer steal the
// job — or, when the whole fleet is quarantined, fall back to the local
// lane. It is an orchestrate.RunFunc: campaign cancellation propagates
// through ctx, and result provenance is recorded on the manifest via
// orchestrate.SetJobSource.
func (d *Dispatcher) Run(ctx context.Context, j orchestrate.Job, reg *telemetry.Registry) (*dvfs.Result, error) {
	key := j.Key()
	// The dispatch span is a child of orchestrate.job (the campaign
	// context carries it); its Inject'd identity is what stitches the
	// backend's serve-side spans into the same trace.
	ctx, dspan := tracing.Start(ctx, "dist.dispatch", tracing.String("job.key", key))
	defer dspan.End()
	dispatches := 0
	useINM := true
	for {
		b, err := d.acquire(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			// The whole fleet is out: degrade to the in-process
			// orchestrator rather than failing the campaign.
			dspan.Event("fallback")
			return d.runLocal(ctx, j, reg)
		}
		if dispatches > 0 {
			d.tele.stole(b)
			dspan.Event("steal", tracing.String("backend", b.url))
		}
		dispatches++
		dspan.SetAttr("backend", b.url)
		// On a re-dispatch, a previously ingested body need not be
		// re-downloaded: If-None-Match with the job-key ETag lets the
		// backend answer 304.
		have := false
		if useINM && dispatches > 1 && d.cached != nil {
			_, have = d.cached(key)
		}
		span := telemetry.StartSpan(d.tele.remoteHist())
		start := time.Now()
		res, notMod, rerr := b.client.Sim(ctx, j, have)
		lat := time.Since(start)
		span.End()
		if rerr == nil {
			d.release(b, lat, true)
			if notMod {
				d.tele.etag(b)
				dspan.Event("etag.304", tracing.String("backend", b.url))
				if r, ok := d.cached(key); ok {
					orchestrate.SetJobSource(ctx, "remote:"+b.url)
					return r, nil
				}
				// The local copy vanished between the header and the
				// reply (should not happen — the result cache never
				// evicts). Re-dispatch without the validator.
				useINM = false
				continue
			}
			d.tele.dispatched(b)
			orchestrate.SetJobSource(ctx, "remote:"+b.url)
			return res, nil
		}
		// The job failed on this backend. Campaign cancellation is the
		// caller's signal, not the backend's fault; everything else
		// sidelines the backend and lets a peer steal the job.
		if ctx.Err() != nil {
			d.release(b, lat, false)
			return nil, ctx.Err()
		}
		var shed *ShedError
		var skew *SkewError
		var integ *IntegrityError
		var tmo *TimeoutError
		switch {
		case errors.As(rerr, &shed):
			// Not a fault: the backend is loaded (429) or draining
			// (503). Honor Retry-After as a dispatch cooldown.
			orchestrate.AddJobFault(ctx, "shed:"+b.url)
			dspan.Event("cooldown",
				tracing.String("backend", b.url),
				tracing.String("retry_after", shed.RetryAfter.String()))
			d.cooldownBackend(b, shed.RetryAfter)
		case errors.As(rerr, &skew):
			// Its results are unusable under our keys; out for good.
			orchestrate.AddJobFault(ctx, "skew:"+b.url)
			d.release(b, lat, false)
			d.drop(b, rerr)
		case errors.As(rerr, &integ):
			// The wire corrupted the reply; the result was never
			// ingested. The backend itself may be fine, but a path that
			// corrupts once will corrupt again — quarantine and let a
			// peer re-steal the job.
			orchestrate.AddJobFault(ctx, "integrity:"+b.url)
			d.tele.integrityFault(b)
			d.release(b, lat, false)
			d.quarantine(b, rerr)
		case errors.As(rerr, &tmo):
			// A transport deadline fired: black-holed dial, headers, or
			// body. Bounded by construction — this is the invariant that
			// campaigns never hang.
			orchestrate.AddJobFault(ctx, "timeout:"+b.url)
			d.tele.timeoutFault(b)
			d.release(b, lat, false)
			d.quarantine(b, rerr)
		default:
			orchestrate.AddJobFault(ctx, "error:"+b.url)
			d.release(b, lat, false)
			d.quarantine(b, rerr)
		}
		d.tele.requeued(b)
		dspan.Event("requeue",
			tracing.String("backend", b.url),
			tracing.String("error", rerr.Error()))
	}
}

// runLocal executes the job in-process on the bounded fallback lane.
func (d *Dispatcher) runLocal(ctx context.Context, j orchestrate.Job, reg *telemetry.Registry) (*dvfs.Result, error) {
	if d.local == nil {
		return nil, fmt.Errorf("dist: no healthy backends and no local executor bound")
	}
	d.tele.fallback()
	if d.log != nil {
		d.log.Debug("running job on local fallback lane",
			"job", j.String(), "trace_id", tracing.TraceIDFrom(ctx))
	}
	select {
	case d.localSem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-d.localSem }()
	orchestrate.SetJobSource(ctx, "local-fallback")
	return d.local(ctx, j, reg)
}

// acquire blocks until some healthy backend has a free window slot and
// claims it, preferring the emptiest window and, on ties, the fastest
// backend. It returns (nil, nil) when no backend is in rotation at all —
// the caller's cue to use the local lane — and ctx.Err() on campaign
// cancellation.
func (d *Dispatcher) acquire(ctx context.Context) (*backend, error) {
	d.mu.Lock()
	for {
		var best *backend
		var bestScore float64
		anyLive := false
		var nextWake time.Time
		now := time.Now()
		for _, b := range d.backends {
			if b.dropped || !b.healthy {
				continue
			}
			anyLive = true
			if now.Before(b.cooldown) {
				if nextWake.IsZero() || b.cooldown.Before(nextWake) {
					nextWake = b.cooldown
				}
				continue
			}
			if b.inflight >= b.window {
				continue
			}
			score := float64(b.inflight) / float64(b.window)
			if best == nil || score < bestScore ||
				(score == bestScore && b.ewmaMs < best.ewmaMs) {
				best, bestScore = b, score
			}
		}
		if best != nil {
			best.inflight++
			d.mu.Unlock()
			return best, nil
		}
		if !anyLive {
			d.mu.Unlock()
			return nil, nil
		}
		// Every live backend is full or cooling: wait for a slot to
		// free, a quarantine to heal, the earliest cooldown to lapse, or
		// the campaign to end.
		ch := d.waitCh
		d.mu.Unlock()
		var timer *time.Timer
		var fire <-chan time.Time
		if !nextWake.IsZero() {
			timer = time.NewTimer(time.Until(nextWake) + time.Millisecond)
			fire = timer.C
		}
		select {
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			return nil, ctx.Err()
		case <-ch:
		case <-fire:
		}
		if timer != nil {
			timer.Stop()
		}
		d.mu.Lock()
	}
}

// release returns a slot and, on success, folds the observed latency
// into the backend's window sizing. Callers must not hold d.mu.
func (d *Dispatcher) release(b *backend, lat time.Duration, ok bool) {
	d.mu.Lock()
	b.inflight--
	if ok {
		ms := float64(lat) / float64(time.Millisecond)
		if b.ewmaMs == 0 {
			b.ewmaMs = ms
		} else {
			b.ewmaMs = 0.7*b.ewmaMs + 0.3*ms
		}
		if b.window < d.maxWindow {
			b.window++ // additive growth toward the cap
		}
		d.resizeWindowsLocked()
	}
	d.broadcastLocked()
	d.mu.Unlock()
}

// resizeWindowsLocked clamps every healthy backend's window by its
// latency relative to the fleet's fastest: window_b ≤ max(1,
// round(maxWindow · min/ewma_b)). The fastest backend may fill the
// whole cap; one 4× slower is held to about a quarter of it, keeping
// slow workers from hoarding jobs the fast ones would finish sooner.
// Callers hold d.mu.
func (d *Dispatcher) resizeWindowsLocked() {
	minEwma := 0.0
	for _, b := range d.backends {
		if b.dropped || !b.healthy || b.ewmaMs == 0 {
			continue
		}
		if minEwma == 0 || b.ewmaMs < minEwma {
			minEwma = b.ewmaMs
		}
	}
	if minEwma == 0 {
		return
	}
	for _, b := range d.backends {
		if b.dropped || !b.healthy || b.ewmaMs == 0 {
			continue
		}
		cap := int(float64(d.maxWindow)*minEwma/b.ewmaMs + 0.5)
		if cap < 1 {
			cap = 1
		}
		if b.window > cap {
			b.window = cap
		}
	}
}

// cooldownBackend releases the slot and holds the backend out of
// dispatch until its Retry-After lapses. A shed is load signaling, not
// failure: no quarantine, no probe, no trust reset.
func (d *Dispatcher) cooldownBackend(b *backend, wait time.Duration) {
	d.mu.Lock()
	b.inflight--
	until := time.Now().Add(wait)
	if until.After(b.cooldown) {
		b.cooldown = until
	}
	d.broadcastLocked()
	d.mu.Unlock()
}

// quarantine takes a faulted backend out of rotation and starts its
// probe loop: exponential, jittered backoff between /healthz checks
// until the backend answers 200 again.
func (d *Dispatcher) quarantine(b *backend, cause error) {
	d.mu.Lock()
	if b.dropped || !b.healthy {
		d.mu.Unlock()
		return
	}
	b.healthy = false
	b.window = 1 // trust resets; rebuilt by completions after healing
	b.ewmaMs = 0
	startProbe := !b.probing
	if startProbe {
		b.probing = true
		d.wg.Add(1)
	}
	d.broadcastLocked() // waiters re-plan (maybe onto the local lane)
	healthy := d.healthyLocked()
	d.mu.Unlock()
	d.tele.quarantined(b, healthy)
	if d.log != nil {
		d.log.Warn("backend quarantined",
			"backend", b.url, "healthy", healthy, "cause", cause.Error())
	}
	if startProbe {
		go d.probeLoop(b)
	}
}

// drop removes a backend from rotation permanently (version or key
// skew). No probe can bring it back this campaign.
func (d *Dispatcher) drop(b *backend, cause error) {
	d.mu.Lock()
	if b.dropped {
		d.mu.Unlock()
		return
	}
	b.dropped = true
	b.healthy = false
	d.broadcastLocked()
	healthy := d.healthyLocked()
	d.mu.Unlock()
	d.tele.droppedBackend(b, healthy)
	if d.log != nil {
		d.log.Warn("backend dropped from rotation",
			"backend", b.url, "healthy", healthy, "cause", cause.Error())
	}
}

// probeLoop waits out the quarantine: jittered doubling backoff, then a
// bounded /healthz probe; 200 returns the backend to rotation with a
// reset one-slot window.
func (d *Dispatcher) probeLoop(b *backend) {
	defer d.wg.Done()
	backoff := d.probeWait
	for {
		select {
		case <-d.ctx.Done():
			d.mu.Lock()
			b.probing = false
			d.mu.Unlock()
			return
		case <-time.After(orchestrate.Jitter(backoff)):
		}
		pctx, cancel := context.WithTimeout(d.ctx, d.probeTO)
		pctx, pspan := tracing.Start(pctx, "dist.probe", tracing.String("backend", b.url))
		err := b.client.Healthz(pctx)
		pspan.SetAttr("ok", fmt.Sprint(err == nil))
		pspan.End()
		cancel()
		if err == nil {
			d.mu.Lock()
			b.healthy = true
			b.probing = false
			b.window = 1
			b.cooldown = time.Time{}
			d.broadcastLocked()
			healthy := d.healthyLocked()
			d.mu.Unlock()
			d.tele.healed(b, healthy)
			if d.log != nil {
				d.log.Info("backend healed", "backend", b.url, "healthy", healthy)
			}
			return
		}
		if backoff *= 2; backoff > d.probeMax {
			backoff = d.probeMax
		}
	}
}

// healthyLocked counts in-rotation backends; callers hold d.mu.
func (d *Dispatcher) healthyLocked() int {
	n := 0
	for _, b := range d.backends {
		if b.healthy && !b.dropped {
			n++
		}
	}
	return n
}

// broadcastLocked wakes every acquire waiter; callers hold d.mu.
func (d *Dispatcher) broadcastLocked() {
	close(d.waitCh)
	d.waitCh = make(chan struct{})
}
