// Package dist turns N pcstall-serve processes into one horizontally
// scaled simulation fleet. A Dispatcher is the coordinator: it fans a
// campaign's content-addressed jobs out across backend URLs with
// work-stealing and per-backend in-flight windows sized by observed job
// latency, quarantines unhealthy backends behind exponential-backoff
// health probes, and degrades to in-process execution when the whole
// fleet is unreachable — so a campaign run on a fleet produces exactly
// the bytes a local run would, just faster.
//
// The worker protocol is the serving layer's existing HTTP surface
// (internal/serve): synchronous POST /v1/sim carries the full job (every
// field explicit, so backend defaults can never bend it), GET /healthz
// gates re-admission after a quarantine, and GET /v1/version fail-safes
// mixed-version fleets — a backend whose orchestrate.SimVersion differs
// is rejected at admission and never receives a job, because its results
// would poison the content-addressed cache under the coordinator's keys.
package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"pcstall/internal/dvfs"
	"pcstall/internal/orchestrate"
	"pcstall/internal/tracing"
)

// maxReplyBytes bounds a decoded backend response (settled sim bodies
// are a few KiB; a corrupted or hostile backend must not balloon the
// coordinator).
const maxReplyBytes = 64 << 20

// Client speaks the pcstall-serve /v1 worker protocol to one backend.
// It is stateless and safe for concurrent use; health, windows, and
// quarantine live on the Dispatcher's per-backend record.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient wraps one backend base URL (e.g. "http://10.0.0.2:8080").
// A nil http.Client selects http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Base returns the backend's base URL.
func (c *Client) Base() string { return c.base }

// simWire is the POST /v1/sim body a coordinator sends: every Job field
// explicit (down to the seed and the picosecond time cap) so the
// backend's own platform defaults can never bend the job — the reply's
// key is still verified against the request's as the final guard.
type simWire struct {
	App           string  `json:"app"`
	Design        string  `json:"design"`
	EpochPs       int64   `json:"epoch_ps"`
	Objective     string  `json:"objective"`
	CUsPerDomain  int     `json:"cus_per_domain"`
	CUs           int     `json:"cus"`
	Scale         float64 `json:"scale"`
	Seed          *uint64 `json:"seed"`
	MaxTimePs     int64   `json:"max_time_ps,omitempty"`
	OracleSamples int     `json:"oracle_samples,omitempty"`
	Chaos         string  `json:"chaos,omitempty"`
	MaxCycles     int64   `json:"max_cycles,omitempty"`
}

// wireJob maps a content-addressed job onto the request wire form.
func wireJob(j orchestrate.Job) simWire {
	seed := j.Seed
	return simWire{
		App: j.App, Design: j.Design, EpochPs: j.EpochPs,
		Objective: j.Objective, CUsPerDomain: j.CUsPerDomain, CUs: j.CUs,
		Scale: j.Scale, Seed: &seed, MaxTimePs: j.MaxTimePs,
		OracleSamples: j.OracleSamples, Chaos: j.Chaos, MaxCycles: j.MaxCycles,
	}
}

// simReply mirrors the settled /v1/sim response body.
type simReply struct {
	ID     string          `json:"id"`
	Job    orchestrate.Job `json:"job"`
	Result *dvfs.Result    `json:"result"`
	Error  string          `json:"error"`
}

// ShedError is a backend's 429/503 answer: not a fault, an instruction
// to come back later. The dispatcher honors RetryAfter as a per-backend
// cooldown and steals the job to a peer in the meantime.
type ShedError struct {
	Status     int
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("backend shed the job (%d, retry after %s)", e.Status, e.RetryAfter)
}

// SkewError is the fail-safe of last resort: the backend computed a
// different key for the same job, meaning its build canonicalizes jobs
// differently despite a matching SimVersion. Such a backend is dropped
// for the rest of the campaign — its results cannot be trusted under the
// coordinator's content addresses.
type SkewError struct {
	Backend string
	Want    string
	Got     string
}

func (e *SkewError) Error() string {
	return fmt.Sprintf("backend %s computed job key %s for a job the coordinator keys as %s (config/build skew)", e.Backend, e.Got, e.Want)
}

// retryAfter parses a shed response's Retry-After seconds (default 1s,
// clamped to 10m like the server's own estimate).
func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After")))
	if err != nil || secs < 1 {
		secs = 1
	}
	if secs > 600 {
		secs = 600
	}
	return time.Duration(secs) * time.Second
}

// Sim runs one job synchronously on the backend. haveBody marks a
// dispatch for which the coordinator has already ingested this key's
// result (a retry after a mid-flight failure): the request then carries
// If-None-Match with the job-key ETag, and a 304 reply returns
// notModified=true with no body to re-download — the caller resolves the
// result from its own cache.
func (c *Client) Sim(ctx context.Context, j orchestrate.Job, haveBody bool) (res *dvfs.Result, notModified bool, err error) {
	key := j.Key()
	body, err := json.Marshal(wireJob(j))
	if err != nil {
		return nil, false, fmt.Errorf("dist: encoding job %s: %w", j, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sim", bytes.NewReader(body))
	if err != nil {
		return nil, false, fmt.Errorf("dist: %s: %w", c.base, err)
	}
	req.Header.Set("Content-Type", "application/json")
	tracing.Inject(ctx, req.Header)
	if haveBody {
		req.Header.Set("If-None-Match", `"`+key+`"`)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("dist: %s: %w", c.base, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotModified:
		return nil, true, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return nil, false, &ShedError{Status: resp.StatusCode, RetryAfter: retryAfter(resp)}
	default:
		return nil, false, fmt.Errorf("dist: %s: /v1/sim: %s: %s", c.base, resp.Status, readAPIError(resp.Body))
	}
	var reply simReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxReplyBytes)).Decode(&reply); err != nil {
		return nil, false, fmt.Errorf("dist: %s: decoding sim reply: %w", c.base, err)
	}
	if reply.Result == nil {
		return nil, false, fmt.Errorf("dist: %s: settled reply carries no result (error: %q)", c.base, reply.Error)
	}
	if reply.ID != key || reply.Job.Key() != key {
		return nil, false, &SkewError{Backend: c.base, Want: key, Got: reply.ID}
	}
	return reply.Result, false, nil
}

// SimVersion fetches the backend's simulator cache version (GET
// /v1/version). Backends predating the sim_version field return "" and
// therefore read as mismatched — fail safe, not fail open.
func (c *Client) SimVersion(ctx context.Context) (string, error) {
	var v struct {
		SimVersion string `json:"sim_version"`
	}
	if err := c.getJSON(ctx, "/v1/version", &v); err != nil {
		return "", err
	}
	return v.SimVersion, nil
}

// Healthz probes the backend's readiness endpoint; nil means the
// backend is accepting work.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return fmt.Errorf("dist: %s: %w", c.base, err)
	}
	tracing.Inject(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("dist: %s: %w", c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: %s: /healthz: %s", c.base, resp.Status)
	}
	return nil
}

// getJSON fetches and decodes one GET endpoint.
func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("dist: %s: %w", c.base, err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("dist: %s: %w", c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: %s: %s: %s", c.base, path, resp.Status)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxReplyBytes)).Decode(v); err != nil {
		return fmt.Errorf("dist: %s: decoding %s: %w", c.base, path, err)
	}
	return nil
}

// readAPIError extracts the serving layer's structured error message
// from a failure body (falling back to a trimmed raw prefix).
func readAPIError(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(b))
}
