// Package dist turns N pcstall-serve processes into one horizontally
// scaled simulation fleet. A Dispatcher is the coordinator: it fans a
// campaign's content-addressed jobs out across backend URLs with
// work-stealing and per-backend in-flight windows sized by observed job
// latency, quarantines unhealthy backends behind exponential-backoff
// health probes, and degrades to in-process execution when the whole
// fleet is unreachable — so a campaign run on a fleet produces exactly
// the bytes a local run would, just faster.
//
// The worker protocol is the serving layer's existing HTTP surface
// (internal/serve): synchronous POST /v1/sim carries the full job (every
// field explicit, so backend defaults can never bend it), GET /healthz
// gates re-admission after a quarantine, and GET /v1/version fail-safes
// mixed-version fleets — a backend whose orchestrate.SimVersion differs
// is rejected at admission and never receives a job, because its results
// would poison the content-addressed cache under the coordinator's keys.
package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pcstall/internal/dvfs"
	"pcstall/internal/orchestrate"
	"pcstall/internal/tracing"
	"pcstall/internal/wire"
)

// maxReplyBytes bounds a decoded backend response (settled sim bodies
// are a few KiB; a corrupted or hostile backend must not balloon the
// coordinator).
const maxReplyBytes = 64 << 20

// Per-attempt transport deadlines. Every dispatch attempt is bounded in
// all three places a lying network can black-hole it: connecting,
// waiting for response headers, and reading the body.
const (
	// DefaultDialTimeout bounds TCP connect to a backend.
	DefaultDialTimeout = 5 * time.Second
	// DefaultHeaderTimeout bounds the wait for response headers after
	// the request is written. It is deliberately generous: a synchronous
	// /v1/sim computes the whole simulation before its first header
	// byte, so a tight value would kill legitimate long jobs — the cap
	// exists to bound a dead peer, not a slow one.
	DefaultHeaderTimeout = 15 * time.Minute
	// DefaultBodyTimeout bounds reading a settled body once headers
	// arrived. Settled bodies are small; a body that cannot finish in a
	// minute is a stalled wire, not a slow simulation.
	DefaultBodyTimeout = time.Minute
)

// DefaultHTTPClient builds the client NewClient falls back to: a
// dedicated transport with a bounded dial and response-header wait
// (zero durations select the package defaults). http.DefaultClient has
// neither bound, which is exactly how a black-holed backend used to pin
// a dispatch window forever.
func DefaultHTTPClient(dial, header time.Duration) *http.Client {
	if dial <= 0 {
		dial = DefaultDialTimeout
	}
	if header <= 0 {
		header = DefaultHeaderTimeout
	}
	return &http.Client{Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   dial,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		ResponseHeaderTimeout: header,
		MaxIdleConns:          64,
		MaxIdleConnsPerHost:   16,
		IdleConnTimeout:       90 * time.Second,
	}}
}

// IntegrityError reports a settled body that failed end-to-end digest
// verification: the backend stamped wire.DigestHeader over the bytes it
// wrote, and the bytes that arrived hash differently — corruption,
// truncation, or duplication in flight. The dispatcher treats it as a
// backend fault (quarantine + re-steal); the result is never ingested.
type IntegrityError struct {
	Backend string
	Reason  string
	// Stamped is the digest the backend declared; Computed is the
	// digest of the bytes actually received (empty when the failure is
	// not a hash mismatch).
	Stamped  string
	Computed string
}

func (e *IntegrityError) Error() string {
	if e.Stamped == "" {
		return fmt.Sprintf("dist: %s: integrity: %s", e.Backend, e.Reason)
	}
	return fmt.Sprintf("dist: %s: integrity: %s (stamped %s, received bytes hash to %s)",
		e.Backend, e.Reason, e.Stamped, e.Computed)
}

// TimeoutError reports a dispatch attempt that exhausted one of its
// transport deadlines: "connect"/"headers" when the http.Transport's
// bounds fired, "body" when the body-read budget did. It deliberately
// does not unwrap to context.Canceled — a budget firing is the
// backend's fault, not campaign cancellation, and must not be mistaken
// for it.
type TimeoutError struct {
	Backend string
	Phase   string
	Budget  time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("dist: %s: %s deadline exceeded (budget %s)", e.Backend, e.Phase, e.Budget)
}

// Client speaks the pcstall-serve /v1 worker protocol to one backend.
// It is stateless and safe for concurrent use; health, windows, and
// quarantine live on the Dispatcher's per-backend record.
type Client struct {
	base       string
	hc         *http.Client
	bodyBudget time.Duration
}

// NewClient wraps one backend base URL (e.g. "http://10.0.0.2:8080").
// A nil http.Client selects DefaultHTTPClient's bounded transport —
// never http.DefaultClient, whose unbounded dial and header waits let a
// black-holed backend pin a dispatch slot forever.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = DefaultHTTPClient(0, 0)
	}
	return &Client{
		base:       strings.TrimRight(base, "/"),
		hc:         hc,
		bodyBudget: DefaultBodyTimeout,
	}
}

// SetBodyBudget overrides the settled-body read deadline (<= 0 restores
// the default). Call before the first Sim.
func (c *Client) SetBodyBudget(d time.Duration) {
	if d <= 0 {
		d = DefaultBodyTimeout
	}
	c.bodyBudget = d
}

// Base returns the backend's base URL.
func (c *Client) Base() string { return c.base }

// simWire is the POST /v1/sim body a coordinator sends: every Job field
// explicit (down to the seed and the picosecond time cap) so the
// backend's own platform defaults can never bend the job — the reply's
// key is still verified against the request's as the final guard.
type simWire struct {
	App           string  `json:"app"`
	Design        string  `json:"design"`
	EpochPs       int64   `json:"epoch_ps"`
	Objective     string  `json:"objective"`
	CUsPerDomain  int     `json:"cus_per_domain"`
	CUs           int     `json:"cus"`
	Scale         float64 `json:"scale"`
	Seed          *uint64 `json:"seed"`
	MaxTimePs     int64   `json:"max_time_ps,omitempty"`
	OracleSamples int     `json:"oracle_samples,omitempty"`
	Chaos         string  `json:"chaos,omitempty"`
	MaxCycles     int64   `json:"max_cycles,omitempty"`
}

// wireJob maps a content-addressed job onto the request wire form.
func wireJob(j orchestrate.Job) simWire {
	seed := j.Seed
	return simWire{
		App: j.App, Design: j.Design, EpochPs: j.EpochPs,
		Objective: j.Objective, CUsPerDomain: j.CUsPerDomain, CUs: j.CUs,
		Scale: j.Scale, Seed: &seed, MaxTimePs: j.MaxTimePs,
		OracleSamples: j.OracleSamples, Chaos: j.Chaos, MaxCycles: j.MaxCycles,
	}
}

// simReply mirrors the settled /v1/sim response body.
type simReply struct {
	ID     string          `json:"id"`
	Job    orchestrate.Job `json:"job"`
	Result *dvfs.Result    `json:"result"`
	Error  string          `json:"error"`
}

// ShedError is a backend's 429/503 answer: not a fault, an instruction
// to come back later. The dispatcher honors RetryAfter as a per-backend
// cooldown and steals the job to a peer in the meantime.
type ShedError struct {
	Status     int
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("backend shed the job (%d, retry after %s)", e.Status, e.RetryAfter)
}

// SkewError is the fail-safe of last resort: the backend computed a
// different key for the same job, meaning its build canonicalizes jobs
// differently despite a matching SimVersion. Such a backend is dropped
// for the rest of the campaign — its results cannot be trusted under the
// coordinator's content addresses.
type SkewError struct {
	Backend string
	Want    string
	Got     string
}

func (e *SkewError) Error() string {
	return fmt.Sprintf("backend %s computed job key %s for a job the coordinator keys as %s (config/build skew)", e.Backend, e.Got, e.Want)
}

// retryAfter parses a shed response's Retry-After seconds (default 1s,
// clamped to 10m like the server's own estimate).
func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After")))
	if err != nil || secs < 1 {
		secs = 1
	}
	if secs > 600 {
		secs = 600
	}
	return time.Duration(secs) * time.Second
}

// Sim runs one job synchronously on the backend. haveBody marks a
// dispatch for which the coordinator has already ingested this key's
// result (a retry after a mid-flight failure): the request then carries
// If-None-Match with the job-key ETag, and a 304 reply returns
// notModified=true with no body to re-download — the caller resolves the
// result from its own cache.
func (c *Client) Sim(ctx context.Context, j orchestrate.Job, haveBody bool) (res *dvfs.Result, notModified bool, err error) {
	key := j.Key()
	body, err := json.Marshal(wireJob(j))
	if err != nil {
		return nil, false, fmt.Errorf("dist: encoding job %s: %w", j, err)
	}
	// The attempt context lets the body-read budget cancel this one
	// exchange without touching the campaign context.
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, c.base+"/v1/sim", bytes.NewReader(body))
	if err != nil {
		return nil, false, fmt.Errorf("dist: %s: %w", c.base, err)
	}
	req.Header.Set("Content-Type", "application/json")
	tracing.Inject(ctx, req.Header)
	if haveBody {
		req.Header.Set("If-None-Match", `"`+key+`"`)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() == nil && isTimeout(err) {
			// The transport's dial or response-header bound fired while
			// the campaign itself is still live: a black-holed backend.
			return nil, false, &TimeoutError{Backend: c.base, Phase: "connect/headers", Budget: DefaultHeaderTimeout}
		}
		return nil, false, fmt.Errorf("dist: %s: %w", c.base, err)
	}
	defer drainClose(resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotModified:
		return nil, true, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return nil, false, &ShedError{Status: resp.StatusCode, RetryAfter: retryAfter(resp)}
	default:
		return nil, false, fmt.Errorf("dist: %s: /v1/sim: %s: %s", c.base, resp.Status, readAPIError(resp.Body))
	}
	// The settled body is read whole — never streamed into the decoder —
	// so digest verification covers every byte that arrived, including
	// trailing garbage a streaming decoder would silently ignore. The
	// read is bounded by the body budget: a wire that stalls mid-body
	// cancels the attempt, not the campaign.
	var timedOut atomic.Bool
	budget := c.bodyBudget
	if budget <= 0 {
		budget = DefaultBodyTimeout
	}
	tmr := time.AfterFunc(budget, func() {
		timedOut.Store(true)
		cancel()
	})
	raw, rerr := io.ReadAll(io.LimitReader(resp.Body, maxReplyBytes+1))
	tmr.Stop()
	if rerr != nil {
		if timedOut.Load() && ctx.Err() == nil {
			return nil, false, &TimeoutError{Backend: c.base, Phase: "body", Budget: budget}
		}
		return nil, false, fmt.Errorf("dist: %s: reading sim reply: %w", c.base, rerr)
	}
	if len(raw) > maxReplyBytes {
		return nil, false, fmt.Errorf("dist: %s: sim reply exceeds %d bytes", c.base, maxReplyBytes)
	}
	// End-to-end integrity: the backend stamped a digest over the exact
	// bytes it wrote; mismatching bytes were corrupted in flight. This
	// check runs before decode and before the key-skew check, so a
	// flipped byte re-steals the job instead of permanently dropping an
	// honest backend as "skewed". Absent or foreign-scheme stamps verify
	// trivially (legacy backends); corruption there still fails decode.
	stamp := resp.Header.Get(wire.DigestHeader)
	if computed, ok := wire.Check(stamp, raw); !ok {
		return nil, false, &IntegrityError{
			Backend: c.base, Reason: "settled body digest mismatch",
			Stamped: strings.TrimSpace(stamp), Computed: computed,
		}
	}
	var reply simReply
	if err := json.Unmarshal(raw, &reply); err != nil {
		return nil, false, fmt.Errorf("dist: %s: decoding sim reply: %w", c.base, err)
	}
	if reply.Result == nil {
		return nil, false, fmt.Errorf("dist: %s: settled reply carries no result (error: %q)", c.base, reply.Error)
	}
	if reply.ID != key || reply.Job.Key() != key {
		return nil, false, &SkewError{Backend: c.base, Want: key, Got: reply.ID}
	}
	return reply.Result, false, nil
}

// isTimeout reports whether a transport error is a deadline, not a
// refusal or a protocol failure.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// drainClose consumes a bounded remainder of a response body before
// closing it, so the keep-alive connection returns to the pool instead
// of being severed (and re-dialed) on every non-200 exchange.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 64<<10))
	body.Close()
}

// SimVersion fetches the backend's simulator cache version (GET
// /v1/version). Backends predating the sim_version field return "" and
// therefore read as mismatched — fail safe, not fail open.
func (c *Client) SimVersion(ctx context.Context) (string, error) {
	var v struct {
		SimVersion string `json:"sim_version"`
	}
	if err := c.getJSON(ctx, "/v1/version", &v); err != nil {
		return "", err
	}
	return v.SimVersion, nil
}

// Healthz probes the backend's readiness endpoint; nil means the
// backend is accepting work.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return fmt.Errorf("dist: %s: %w", c.base, err)
	}
	tracing.Inject(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("dist: %s: %w", c.base, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: %s: /healthz: %s", c.base, resp.Status)
	}
	return nil
}

// getJSON fetches and decodes one GET endpoint.
func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("dist: %s: %w", c.base, err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("dist: %s: %w", c.base, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: %s: %s: %s", c.base, path, resp.Status)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxReplyBytes)).Decode(v); err != nil {
		return fmt.Errorf("dist: %s: decoding %s: %w", c.base, path, err)
	}
	return nil
}

// readAPIError extracts the serving layer's structured error message
// from a failure body (falling back to a trimmed raw prefix).
func readAPIError(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(b))
}
