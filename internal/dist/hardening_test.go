package dist

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pcstall/internal/dvfs"
	"pcstall/internal/netchaos"
	"pcstall/internal/orchestrate"
	"pcstall/internal/telemetry"
	"pcstall/internal/wire"
)

// retryAfter must clamp whatever the wire claims into [1s, 10m]: a
// netchaos-mangled or hostile Retry-After must never stall a backend
// for an hour or spin it at zero delay.
func TestRetryAfterEdges(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", time.Second},               // missing
		{"soon", time.Second},           // non-numeric
		{"-5", time.Second},             // negative
		{"0", time.Second},              // zero rounds up
		{"1", time.Second},              // smallest honest value
		{"30", 30 * time.Second},        // honest value passes through
		{"600", 600 * time.Second},      // at the clamp
		{"99999999", 600 * time.Second}, // absurd claim clamps to 10m
		{"1e9", time.Second},            // float syntax is non-numeric for Atoi
		{" 2 ", 2 * time.Second},        // padded
	}
	for _, c := range cases {
		resp := &http.Response{Header: http.Header{}}
		if c.header != "" {
			resp.Header.Set("Retry-After", c.header)
		}
		if got := retryAfter(resp); got != c.want {
			t.Errorf("retryAfter(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

// replyServer serves exactly the given bytes (and optional digest
// stamp) for any POST /v1/sim.
func replyServer(t *testing.T, body []byte, stamp string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		if stamp != "" {
			rw.Header().Set(wire.DigestHeader, stamp)
		}
		_, _ = rw.Write(body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// validReplyBytes renders a correctly keyed settled body for job j.
func validReplyBytes(t *testing.T, j orchestrate.Job) []byte {
	t.Helper()
	b, err := json.Marshal(simReply{
		ID: j.Key(), Job: j, Result: &dvfs.Result{Policy: "honest", Epochs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestClientVerifiesDigest(t *testing.T) {
	j := testJob(5)
	body := validReplyBytes(t, j)

	t.Run("matching stamp ingests", func(t *testing.T) {
		srv := replyServer(t, body, wire.Digest(body))
		res, _, err := NewClient(srv.URL, nil).Sim(context.Background(), j, false)
		if err != nil || res == nil {
			t.Fatalf("verified reply rejected: %v", err)
		}
	})

	t.Run("flipped byte is an IntegrityError, not a SkewError", func(t *testing.T) {
		corrupt := append([]byte(nil), body...)
		corrupt[len(corrupt)/3] ^= 0x20 // flips a key character's case
		srv := replyServer(t, corrupt, wire.Digest(body))
		_, _, err := NewClient(srv.URL, nil).Sim(context.Background(), j, false)
		var ie *IntegrityError
		if !errors.As(err, &ie) {
			t.Fatalf("corrupted reply returned %v, want IntegrityError", err)
		}
		if ie.Stamped != wire.Digest(body) || ie.Computed != wire.Digest(corrupt) {
			t.Errorf("error carries stamped=%q computed=%q", ie.Stamped, ie.Computed)
		}
		var skew *SkewError
		if errors.As(err, &skew) {
			t.Error("wire corruption misclassified as backend key skew")
		}
	})

	t.Run("duplicated body is an IntegrityError", func(t *testing.T) {
		srv := replyServer(t, append(append([]byte(nil), body...), body...), wire.Digest(body))
		_, _, err := NewClient(srv.URL, nil).Sim(context.Background(), j, false)
		var ie *IntegrityError
		if !errors.As(err, &ie) {
			t.Fatalf("duplicated reply returned %v, want IntegrityError", err)
		}
	})

	t.Run("unstamped legacy reply still ingests", func(t *testing.T) {
		srv := replyServer(t, body, "")
		res, _, err := NewClient(srv.URL, nil).Sim(context.Background(), j, false)
		if err != nil || res == nil {
			t.Fatalf("unstamped reply rejected: %v", err)
		}
	})

	t.Run("unstamped duplicated body still fails strict decode", func(t *testing.T) {
		srv := replyServer(t, append(append([]byte(nil), body...), body...), "")
		_, _, err := NewClient(srv.URL, nil).Sim(context.Background(), j, false)
		if err == nil {
			t.Fatal("trailing garbage after the reply was silently ignored")
		}
	})
}

func TestClientBodyBudgetBoundsStalls(t *testing.T) {
	j := testJob(6)
	body := validReplyBytes(t, j)
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		// Promise the whole body, deliver half, then black-hole.
		rw.Header().Set("Content-Length", "4096")
		rw.WriteHeader(http.StatusOK)
		_, _ = rw.Write(body[:len(body)/2])
		rw.(http.Flusher).Flush()
		<-r.Context().Done()
	}))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, nil)
	c.SetBodyBudget(100 * time.Millisecond)
	start := time.Now()
	_, _, err := c.Sim(context.Background(), j, false)
	elapsed := time.Since(start)
	var tmo *TimeoutError
	if !errors.As(err, &tmo) || tmo.Phase != "body" {
		t.Fatalf("stalled body returned %v, want a body TimeoutError", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("stall held the attempt for %v despite a 100ms budget", elapsed)
	}
	// The budget firing must not read as campaign cancellation: the
	// orchestrator retries cancellation-free errors, and a stalled
	// backend is precisely a retryable fault.
	if errors.Is(err, context.Canceled) {
		t.Error("body timeout unwraps to context.Canceled")
	}
}

// corruptingWorker answers correctly keyed replies whose bytes were
// flipped after digest stamping — an honest backend behind a lying wire.
func corruptingWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/version":
			_ = json.NewEncoder(rw).Encode(map[string]string{"sim_version": orchestrate.SimVersion})
		case "/healthz":
			_, _ = rw.Write([]byte(`{}`))
		default:
			var sw simWire
			_ = json.NewDecoder(r.Body).Decode(&sw)
			j := orchestrate.Job{
				App: sw.App, Design: sw.Design, EpochPs: sw.EpochPs,
				Objective: sw.Objective, CUsPerDomain: sw.CUsPerDomain,
				CUs: sw.CUs, Scale: sw.Scale, MaxTimePs: sw.MaxTimePs,
				OracleSamples: sw.OracleSamples, Chaos: sw.Chaos,
				MaxCycles: sw.MaxCycles, SimVersion: orchestrate.SimVersion,
			}
			if sw.Seed != nil {
				j.Seed = *sw.Seed
			}
			body := validReplyBytes(t, j)
			rw.Header().Set(wire.DigestHeader, wire.Digest(body))
			body[0] ^= 0xff // corruption after stamping = corruption in flight
			_, _ = rw.Write(body)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

// The integrity fault path end to end: a backend whose replies arrive
// corrupted is quarantined (not dropped — the backend may be honest),
// the job re-steals to a clean peer, and the corrupted result is never
// ingested.
func TestDispatcherRestealsOnIntegrityFault(t *testing.T) {
	bad := corruptingWorker(t)
	good := newWorker(t, "good")
	reg := telemetry.New()
	d := newDispatcher(t, Config{
		Backends:     []string{bad.URL, good.srv.URL},
		Metrics:      reg,
		ProbeBackoff: time.Minute, MaxProbeBackoff: time.Minute,
	})
	if err := d.CheckVersions(context.Background()); err != nil {
		t.Fatalf("CheckVersions: %v", err)
	}
	run := d.Bind(noLocal(t), noCache)
	r, err := run(context.Background(), testJob(1), nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if r.Policy != "stub-good" {
		t.Fatalf("job settled as %q, want the clean peer's result", r.Policy)
	}
	snap := reg.Snapshot()
	if snap.Counters["dist_integrity_faults_total"] == 0 {
		t.Error("integrity fault was not counted")
	}
	if d.Healthy() != 1 {
		t.Errorf("Healthy() = %d, want the corrupting backend quarantined", d.Healthy())
	}
}

// The invariant harness: under an arbitrary seeded netchaos schedule
// covering every fault class, a batch of jobs either settles with real
// results or fails with a typed error — and always within the deadline
// the per-attempt budgets imply. No hang, no corrupted result ingested.
func TestDispatcherSurvivesNetchaosSchedule(t *testing.T) {
	eng := netchaos.NewEngine(netchaos.Level(0.3, 42))
	a, b := newWorker(t, "a"), newWorker(t, "b")
	reg := telemetry.New()
	d := newDispatcher(t, Config{
		Backends: []string{a.srv.URL, b.srv.URL},
		Window:   2,
		Metrics:  reg,
		// Stalls must die fast and quarantined backends heal fast, or
		// the test waits out real-time fault budgets.
		BodyTimeout:  200 * time.Millisecond,
		ProbeBackoff: 5 * time.Millisecond, MaxProbeBackoff: 20 * time.Millisecond,
		WrapTransport: func(rt http.RoundTripper) http.RoundTripper {
			return netchaos.NewTransport(rt, eng)
		},
	})
	if err := d.CheckVersions(context.Background()); err != nil {
		t.Fatalf("CheckVersions (control plane must pass clean): %v", err)
	}
	// The local lane stands in when faults empty the whole rotation; in
	// production it computes the true result, so it counts as success.
	run := d.Bind(func(context.Context, orchestrate.Job, *telemetry.Registry) (*dvfs.Result, error) {
		return &dvfs.Result{Policy: "local", Epochs: 1}, nil
	}, noCache)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const jobs = 12
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	results := make([]*dvfs.Result, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = run(ctx, testJob(uint64(i+1)), nil)
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatal("campaign hung under netchaos: per-attempt deadlines failed to bound it")
	}
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Errorf("job %d failed under netchaos: %v", i, errs[i])
			continue
		}
		if results[i] == nil || results[i].Epochs != 1 {
			t.Errorf("job %d settled with a mangled result: %+v", i, results[i])
		}
	}
	if eng.Stats().Injected() == 0 {
		t.Fatalf("fault schedule injected nothing (stats %+v); the test proved nothing", eng.Stats())
	}
	t.Logf("netchaos stats: %+v", eng.Stats())
	t.Logf("integrity=%d timeouts=%d requeues=%d",
		reg.Snapshot().Counters["dist_integrity_faults_total"],
		reg.Snapshot().Counters["dist_timeout_faults_total"],
		reg.Snapshot().Counters["dist_jobs_requeued_total"])
}

// FuzzClientReply drives the sim-reply ingestion path (read, digest
// check, strict decode, key verification) with arbitrary response
// bytes: it must classify, never panic, and never ingest a reply whose
// key does not match.
func FuzzClientReply(f *testing.F) {
	j := testJob(9)
	valid, _ := json.Marshal(simReply{
		ID: j.Key(), Job: j, Result: &dvfs.Result{Policy: "fuzz", Epochs: 1},
	})
	f.Add(valid)
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"id":"xyz"}`))
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte(nil), valid...), valid...))
	f.Add([]byte(`{"id":null,"job":null,"result":{}}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "application/json")
			_, _ = rw.Write(body)
		}))
		defer srv.Close()
		res, notMod, err := NewClient(srv.URL, nil).Sim(context.Background(), j, false)
		if notMod {
			t.Fatal("200 reply reported notModified")
		}
		if err == nil {
			if res == nil {
				t.Fatal("nil result with nil error")
			}
			var reply simReply
			if json.Unmarshal(body, &reply) != nil || reply.Job.Key() != j.Key() {
				t.Fatalf("ingested a reply that does not decode to our key: %q", body)
			}
		}
	})
}
