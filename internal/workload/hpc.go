package workload

import (
	"fmt"

	"pcstall/internal/isa"
)

// HPC application generators, standing in for the ECP proxy apps of
// TABLE II. Phase blocks are sized so that phase alternation is visible
// at microsecond epochs (a ~2000-cycle block is ≈1µs at 1.7 GHz), which
// is what gives GPU workloads their high fine-grain sensitivity variation
// (paper §3.3).

const (
	kib = 1 << 10
	mib = 1 << 20
)

func init() {
	register("comd", HPC, 0, genCoMD)
	register("hpgmg", HPC, 1, genHPGMG)
	register("lulesh", HPC, 2, genLulesh)
	register("minife", HPC, 3, genMiniFE)
	register("xsbench", HPC, 4, genXSBench)
	register("hacc", HPC, 5, genHACC)
	register("quickS", HPC, 6, genQuickS)
	register("pennant", HPC, 7, genPennant)
	register("snapc", HPC, 8, genSNAP)
}

// genCoMD: molecular dynamics (1 kernel). Each timestep gathers neighbor
// data (random loads over a cell table) then computes pairwise forces (a
// long VALU block), alternating memory and compute phases within a wave.
func genCoMD(cfg GenConfig) App {
	b := newBuilder(cfg, 0)
	neighbors := b.random(8*mib, 3)
	forces := b.stream(4*mib, 1)

	p := b.program("comd_force")
	p.Loop(cfg.trips(10), 0) // barrier inside: uniform trips
	{                        // gather phase: latency-bound neighbor walk
		p.Loop(14, 1)
		p.Load(neighbors).Load(neighbors).Load(neighbors).Load(neighbors)
		p.WaitAll()
		p.VALUBlock(4, 4)
		p.EndLoop()
	}
	{ // force phase: compute-bound
		p.Loop(56, 0)
		p.VALUBlock(16, 4).LDSBlock(2, 2)
		p.EndLoop()
	}
	p.Store(forces).WaitAll()
	// Cell-list staging synchronizes the workgroup each timestep,
	// keeping all waves of a CU in the same phase — the source of the
	// CU-level phase swings fine-grain DVFS exploits.
	p.Barrier()
	p.EndLoop()

	wgs, wpw := b.grid(8, 8)
	return App{
		Name: "comd", Class: HPC,
		Kernels:  []isa.Kernel{kernel(p.MustBuild(), wgs, wpw)},
		Launches: []int32{0},
	}
}

// genHPGMG: full multigrid (1 kernel). Stencil smoothing streams a grid
// much larger than L2 with little compute per point — memory-bound.
func genHPGMG(cfg GenConfig) App {
	b := newBuilder(cfg, 1)
	grid := b.stream(48*mib, 2)
	out := b.stream(48*mib, 2)

	p := b.program("hpgmg_smooth")
	p.Loop(cfg.trips(220), 4)
	p.Load(grid).Load(grid).Load(grid)
	p.Wait(2) // mild software pipelining
	p.VALUBlock(5, 4)
	p.Load(grid)
	p.WaitAll()
	p.VALUBlock(3, 4)
	p.Store(out)
	p.EndLoop()

	wgs, wpw := b.grid(4, 8)
	return App{
		Name: "hpgmg", Class: HPC,
		Kernels:  []isa.Kernel{kernel(p.MustBuild(), wgs, wpw)},
		Launches: []int32{0},
	}
}

// genLulesh: shock hydrodynamics (27 kernels). The real app's iteration
// calls a long chain of small kernels with very different mixes; kernels
// here draw their compute/memory balance from the generator RNG.
func genLulesh(cfg GenConfig) App {
	b := newBuilder(cfg, 2)
	kernels := make([]isa.Kernel, 0, 27)
	for k := 0; k < 27; k++ {
		comp := 2 + b.rng.Intn(18) // VALU block length
		loads := 1 + b.rng.Intn(4)
		ws := uint64(4+b.rng.Intn(28)) * mib
		pat := b.stream(ws, 2)
		if b.rng.Intn(3) == 0 {
			pat = b.random(ws, 3)
		}
		p := b.program(fmt.Sprintf("lulesh_k%02d", k))
		p.Loop(cfg.trips(8+b.rng.Intn(10)), 2)
		for l := 0; l < loads; l++ {
			p.Load(pat)
		}
		p.WaitAll()
		p.VALUBlock(comp, 4)
		if b.rng.Intn(2) == 0 {
			p.Store(pat)
		}
		p.EndLoop()
		wgs, wpw := b.grid(4, 6)
		kernels = append(kernels, kernel(p.MustBuild(), wgs, wpw))
	}
	return App{
		Name: "lulesh", Class: HPC,
		Kernels:  kernels,
		Launches: repeatLaunches(27, 2),
	}
}

// genMiniFE: finite-element CG solve (3 kernels): sparse matvec
// (memory-bound, irregular), dot-product reduction (compute + barrier),
// and axpy (streaming).
func genMiniFE(cfg GenConfig) App {
	b := newBuilder(cfg, 3)
	matrix := b.random(24*mib, 3)
	vec := b.stream(8*mib, 1)
	out := b.stream(8*mib, 1)

	spmv := b.program("minife_spmv")
	spmv.Loop(cfg.trips(40), 4)
	spmv.Load(matrix).Load(matrix).Load(vec)
	spmv.WaitAll()
	spmv.VALUBlock(6, 4)
	spmv.Store(out)
	spmv.EndLoop()

	dot := b.program("minife_dot")
	dot.Loop(cfg.trips(30), 0)
	dot.Load(vec).Load(out)
	dot.WaitAll()
	dot.VALUBlock(8, 4)
	dot.EndLoop()
	dot.LDSBlock(4, 2)
	dot.Barrier()
	dot.VALUBlock(6, 4)

	axpy := b.program("minife_axpy")
	axpy.Loop(cfg.trips(50), 2)
	axpy.Load(vec).Load(out)
	axpy.Wait(2)
	axpy.VALUBlock(3, 4)
	axpy.Store(out)
	axpy.EndLoop()

	wgs, wpw := b.grid(4, 8)
	return App{
		Name: "minife", Class: HPC,
		Kernels: []isa.Kernel{
			kernel(spmv.MustBuild(), wgs, wpw),
			kernel(dot.MustBuild(), wgs, wpw),
			kernel(axpy.MustBuild(), wgs, wpw),
		},
		Launches: repeatLaunches(3, 4),
	}
}

// genXSBench: Monte Carlo neutron transport lookup (1 kernel) — random
// lookups into a huge nuclide grid dominate; strongly memory-bound.
func genXSBench(cfg GenConfig) App {
	b := newBuilder(cfg, 4)
	grid := b.random(96*mib, 4)

	p := b.program("xsbench_lookup")
	p.Loop(cfg.trips(260), 16)
	p.Load(grid).Load(grid)
	p.WaitAll()
	p.VALUBlock(4, 4)
	p.EndLoop()

	wgs, wpw := b.grid(4, 8)
	return App{
		Name: "xsbench", Class: HPC,
		Kernels:  []isa.Kernel{kernel(p.MustBuild(), wgs, wpw)},
		Launches: []int32{0},
	}
}

// genHACC: cosmology (2 kernels): a compute-dense short-range force
// kernel and a memory-heavy particle-update kernel; alternating launches
// produce the app's strongly phased profile (paper Fig. 6b).
func genHACC(cfg GenConfig) App {
	b := newBuilder(cfg, 5)
	particles := b.stream(16*mib, 2)

	force := b.program("hacc_force")
	force.Loop(cfg.trips(6), 0) // barrier inside: uniform trips
	force.Loop(12, 1)
	force.Load(particles).Load(particles)
	force.WaitAll()
	force.VALUBlock(3, 4)
	force.EndLoop()
	force.Loop(36, 0)
	force.VALUBlock(18, 4)
	force.EndLoop()
	force.Store(particles)
	force.Barrier()
	force.EndLoop()

	update := b.program("hacc_update")
	update.Loop(cfg.trips(60), 4)
	update.Load(particles).Load(particles)
	update.WaitAll()
	update.VALUBlock(4, 4)
	update.Store(particles)
	update.EndLoop()

	wgs, wpw := b.grid(8, 8)
	return App{
		Name: "hacc", Class: HPC,
		Kernels: []isa.Kernel{
			kernel(force.MustBuild(), wgs, wpw),
			kernel(update.MustBuild(), wgs, wpw),
		},
		Launches: repeatLaunches(2, 3),
	}
}

// genQuickS: Monte Carlo particle transport (1 kernel). Per-particle
// histories have highly divergent lengths (large trip variation at both
// loop levels), giving the suite's highest inter-wavefront variation
// (paper Fig. 11a).
func genQuickS(cfg GenConfig) App {
	b := newBuilder(cfg, 6)
	tallies := b.random(32*mib, 3)

	p := b.program("quicks_history")
	p.Loop(cfg.trips(64), 44)
	p.Load(tallies)
	p.WaitAll()
	p.Loop(8, 6)
	p.VALUBlock(10, 4)
	p.EndLoop()
	p.Store(tallies)
	p.EndLoop()
	p.WaitAll()

	wgs, wpw := b.grid(4, 8)
	return App{
		Name: "quickS", Class: HPC,
		Kernels:  []isa.Kernel{kernel(p.MustBuild(), wgs, wpw)},
		Launches: []int32{0},
	}
}

// genPennant: unstructured mesh hydrodynamics (5 kernels) with fixed,
// distinct balances from gather-heavy to compute-heavy.
func genPennant(cfg GenConfig) App {
	b := newBuilder(cfg, 7)
	mesh := b.random(16*mib, 3)
	zones := b.stream(8*mib, 2)

	shapes := []struct {
		name  string
		loads int
		comp  int
		trips int
	}{
		{"pennant_gather", 4, 4, 30},
		{"pennant_corner", 2, 12, 16},
		{"pennant_force", 1, 20, 12},
		{"pennant_scatter", 3, 6, 24},
		{"pennant_energy", 2, 10, 18},
	}
	kernels := make([]isa.Kernel, 0, len(shapes))
	for i, s := range shapes {
		p := b.program(s.name)
		p.Loop(cfg.trips(s.trips), 2)
		pat := mesh
		if i%2 == 1 {
			pat = zones
		}
		for l := 0; l < s.loads; l++ {
			p.Load(pat)
		}
		p.WaitAll()
		p.VALUBlock(s.comp, 4)
		p.Store(zones)
		p.EndLoop()
		wgs, wpw := b.grid(4, 6)
		kernels = append(kernels, kernel(p.MustBuild(), wgs, wpw))
	}
	return App{
		Name: "pennant", Class: HPC,
		Kernels:  kernels,
		Launches: repeatLaunches(5, 3),
	}
}

// genSNAP: discrete-ordinates transport sweep (1 kernel). Wavefront-
// synchronized sweeps make it barrier-heavy with moderate compute.
func genSNAP(cfg GenConfig) App {
	b := newBuilder(cfg, 8)
	angles := b.stream(12*mib, 2)

	p := b.program("snap_sweep")
	p.Loop(cfg.trips(160), 0) // barriers inside: trips must be uniform
	p.Load(angles).Load(angles)
	p.WaitAll()
	p.VALUBlock(12, 4)
	p.LDSBlock(2, 2)
	p.Barrier()
	p.Store(angles)
	p.EndLoop()
	p.WaitAll()

	wgs, wpw := b.grid(8, 8)
	return App{
		Name: "snapc", Class: HPC,
		Kernels:  []isa.Kernel{kernel(p.MustBuild(), wgs, wpw)},
		Launches: []int32{0},
	}
}
