package workload

import (
	"errors"
	"reflect"
	"testing"

	"pcstall/internal/isa"
)

func TestNamesOrderAndCount(t *testing.T) {
	names := Names()
	if len(names) != 16 {
		t.Fatalf("%d apps registered, want 16 (TABLE II)", len(names))
	}
	// HPC first, then MI, in paper order.
	want := []string{
		"comd", "hpgmg", "lulesh", "minife", "xsbench", "hacc", "quickS",
		"pennant", "snapc",
		"dgemm", "BwdBN", "BwdPool", "BwdSoft", "FwdBN", "FwdPool", "FwdSoft",
	}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("canonical order wrong:\n got %v\nwant %v", names, want)
	}
}

func TestClasses(t *testing.T) {
	hpc := 0
	mi := 0
	for _, n := range Names() {
		switch ClassOf(n) {
		case HPC:
			hpc++
		case MI:
			mi++
		default:
			t.Fatalf("app %s has no class", n)
		}
	}
	if hpc != 9 || mi != 7 {
		t.Fatalf("class split %d/%d, want 9 HPC / 7 MI", hpc, mi)
	}
}

func TestKernelCountsMatchTable2(t *testing.T) {
	// The paper's TABLE II kernel counts in braces.
	want := map[string]int{
		"comd": 1, "hpgmg": 1, "lulesh": 27, "minife": 3, "xsbench": 1,
		"hacc": 2, "quickS": 1, "pennant": 5, "snapc": 1,
		"dgemm": 1, "BwdBN": 1, "BwdPool": 1, "BwdSoft": 1,
		"FwdBN": 1, "FwdPool": 1, "FwdSoft": 1,
	}
	cfg := DefaultGenConfig(8)
	for name, n := range want {
		app := MustBuild(name, cfg)
		if app.UniqueKernels() != n {
			t.Errorf("%s has %d kernels, want %d", name, app.UniqueKernels(), n)
		}
	}
}

func TestAllAppsValidate(t *testing.T) {
	for _, cus := range []int{1, 4, 16, 64} {
		cfg := DefaultGenConfig(cus)
		for _, app := range All(cfg) {
			if err := app.Validate(); err != nil {
				t.Errorf("cus=%d: %v", cus, err)
			}
		}
	}
}

func TestScaleExtremes(t *testing.T) {
	// Tiny and large scales must still produce valid programs.
	for _, scale := range []float64{0.05, 0.5, 4.0, 50.0} {
		cfg := DefaultGenConfig(4)
		cfg.Scale = scale
		for _, app := range All(cfg) {
			if err := app.Validate(); err != nil {
				t.Errorf("scale %g: %v", scale, err)
			}
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	cfg := DefaultGenConfig(8)
	a := MustBuild("lulesh", cfg)
	b := MustBuild("lulesh", cfg)
	if len(a.Kernels) != len(b.Kernels) {
		t.Fatal("kernel count differs between builds")
	}
	for i := range a.Kernels {
		if !reflect.DeepEqual(a.Kernels[i].Program.Code, b.Kernels[i].Program.Code) {
			t.Fatalf("kernel %d differs between identical builds", i)
		}
	}
}

func TestSeedChangesRandomizedApps(t *testing.T) {
	cfg1 := DefaultGenConfig(8)
	cfg2 := DefaultGenConfig(8)
	cfg2.Seed = cfg1.Seed + 1
	a := MustBuild("lulesh", cfg1) // lulesh draws kernel mixes from the RNG
	b := MustBuild("lulesh", cfg2)
	same := true
	for i := range a.Kernels {
		if !reflect.DeepEqual(a.Kernels[i].Program.Code, b.Kernels[i].Program.Code) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical lulesh kernels")
	}
}

func TestBuildUnknownApp(t *testing.T) {
	if _, err := Build("nosuchapp", DefaultGenConfig(4)); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestWorkloadCharacters(t *testing.T) {
	// Spot-check the qualitative characters the paper relies on.
	cfg := DefaultGenConfig(8)

	memRatio := func(name string) float64 {
		app := MustBuild(name, cfg)
		var mem, comp int
		for _, k := range app.Kernels {
			st := k.Program.Stats()
			mem += st.Loads + st.Stores
			comp += st.Compute
		}
		return float64(mem) / float64(mem+comp)
	}
	if xs, dg := memRatio("xsbench"), memRatio("dgemm"); xs <= dg {
		t.Errorf("xsbench mem ratio %.2f should exceed dgemm %.2f", xs, dg)
	}

	// quickS must have the most divergent trip counts (paper Fig. 11a).
	maxVar := func(name string) int32 {
		app := MustBuild(name, cfg)
		var v int32
		for _, k := range app.Kernels {
			for _, in := range k.Program.Code {
				if in.Kind == isa.Branch && in.TripVar > v {
					v = in.TripVar
				}
			}
		}
		return v
	}
	if maxVar("quickS") <= maxVar("BwdPool") {
		t.Error("quickS should have larger trip divergence than BwdPool")
	}

	// FwdSoft must use a shared hot working set (its L2 behaviour).
	shared := false
	for _, k := range MustBuild("FwdSoft", cfg).Kernels {
		for _, in := range k.Program.Code {
			if in.Pattern.Kind == isa.PatShared {
				shared = true
			}
		}
	}
	if !shared {
		t.Error("FwdSoft lost its shared hot set")
	}

	// Barrier-synced apps must actually contain barriers.
	for _, name := range []string{"dgemm", "BwdBN", "FwdBN", "snapc", "comd", "hacc", "BwdSoft"} {
		has := false
		for _, k := range MustBuild(name, cfg).Kernels {
			if k.Program.Stats().Barriers > 0 {
				has = true
			}
		}
		if !has {
			t.Errorf("%s should contain barriers", name)
		}
	}
}

func TestGridScalesWithCUs(t *testing.T) {
	small := MustBuild("comd", DefaultGenConfig(2))
	big := MustBuild("comd", DefaultGenConfig(32))
	if small.Kernels[0].Workgroups >= big.Kernels[0].Workgroups {
		t.Fatal("dispatch grid does not scale with GPU size")
	}
}

func TestRegionsDoNotOverlapWithinApp(t *testing.T) {
	// Distinct private regions of one app must not overlap (PatShared
	// regions are deliberately shared between instructions).
	for _, name := range Names() {
		app := MustBuild(name, DefaultGenConfig(8))
		type region struct{ base, end uint64 }
		var regions []region
		seen := map[uint64]bool{}
		for _, k := range app.Kernels {
			for _, in := range k.Program.Code {
				p := in.Pattern
				if p.Kind == isa.PatNone || seen[p.Base] {
					continue
				}
				seen[p.Base] = true
				regions = append(regions, region{p.Base, p.Base + p.WorkingSet})
			}
		}
		for i := range regions {
			for j := i + 1; j < len(regions); j++ {
				a, b := regions[i], regions[j]
				if a.base < b.end && b.base < a.end {
					t.Errorf("%s: regions [%#x,%#x) and [%#x,%#x) overlap",
						name, a.base, a.end, b.base, b.end)
				}
			}
		}
	}
}

func TestRegisterAppDuplicateReturnsError(t *testing.T) {
	const name = "register-app-test"
	gen := func(cfg GenConfig) App { return App{} }
	if err := RegisterApp(name, HPC, 1<<40, gen); err != nil {
		t.Fatalf("fresh registration failed: %v", err)
	}
	defer delete(registry, name) // keep the global suite pristine for other tests
	err := RegisterApp(name, MI, 1<<41, gen)
	var dup *DuplicateAppError
	if !errors.As(err, &dup) {
		t.Fatalf("duplicate registration: got %v, want *DuplicateAppError", err)
	}
	if dup.Name != name {
		t.Fatalf("error names %q, want %q", dup.Name, name)
	}
	// The original registration must be untouched.
	if ClassOf(name) != HPC {
		t.Fatal("duplicate registration clobbered the original entry")
	}
}
