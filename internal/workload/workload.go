// Package workload synthesizes GPU applications standing in for the
// paper's benchmark suite (TABLE II): nine ECP-proxy-style HPC apps and
// seven DeepBench/DNNMark-style machine-intelligence kernels.
//
// The real suites are GPU binaries this repository cannot run; each
// generator instead builds an isa program whose dynamic behaviour matches
// the property the paper attributes to the app — instruction mix, phase
// alternation at microsecond scale, loop-trip divergence across
// wavefronts, working-set sizes relative to L1/L2, and kernel counts.
// DESIGN.md §1 records this substitution. Generators are deterministic
// given GenConfig.Seed.
package workload

import (
	"fmt"
	"sort"
	"strings"

	"pcstall/internal/isa"
	"pcstall/internal/xrand"
)

// Class labels an application family, mirroring TABLE II's two columns.
type Class string

const (
	// HPC marks ECP-proxy-style applications.
	HPC Class = "HPC"
	// MI marks machine-intelligence kernels.
	MI Class = "MI"
)

// App is a complete application: a deduplicated kernel set plus a launch
// order. Launches execute back-to-back with a full-GPU sync in between.
type App struct {
	Name     string
	Class    Class
	Kernels  []isa.Kernel
	Launches []int32
}

// UniqueKernels returns the number of distinct kernels (TABLE II's braces).
func (a *App) UniqueKernels() int { return len(a.Kernels) }

// Validate checks every kernel and launch index.
func (a *App) Validate() error {
	if len(a.Kernels) == 0 || len(a.Launches) == 0 {
		return fmt.Errorf("workload: app %q has no kernels or launches", a.Name)
	}
	for i := range a.Kernels {
		if err := a.Kernels[i].Validate(); err != nil {
			return fmt.Errorf("workload: app %q: %w", a.Name, err)
		}
	}
	for _, l := range a.Launches {
		if l < 0 || int(l) >= len(a.Kernels) {
			return fmt.Errorf("workload: app %q: launch index %d out of range", a.Name, l)
		}
	}
	return nil
}

// GenConfig parameterizes workload synthesis.
type GenConfig struct {
	// NumCUs sizes dispatch grids so the GPU is fully occupied.
	NumCUs int
	// Scale multiplies outer loop trip counts (1.0 ≈ 60-200µs per app at
	// 1.7 GHz on the default platform). Values below ~0.25 are clamped
	// per-loop to keep at least one iteration.
	Scale float64
	// Seed drives per-app randomization (kernel heterogeneity).
	Seed uint64
}

// DefaultGenConfig sizes workloads for a GPU with numCUs compute units.
func DefaultGenConfig(numCUs int) GenConfig {
	return GenConfig{NumCUs: numCUs, Scale: 1.0, Seed: 7}
}

func (c GenConfig) trips(n int) int32 {
	v := int32(float64(n) * c.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// builder is the app-generator context: a program-base bump allocator for
// code addresses, a region allocator for data addresses, and an RNG.
type builder struct {
	cfg      GenConfig
	rng      xrand.State
	nextCode uint64
	nextData uint64
}

func newBuilder(cfg GenConfig, appIndex uint64) *builder {
	return &builder{
		cfg:      cfg,
		rng:      xrand.New(cfg.Seed).Split(appIndex),
		nextCode: 0x1000,
		nextData: 1 << 30,
	}
}

// program starts a kernel program at a fresh, non-aliasing code base.
func (b *builder) program(name string) *isa.Builder {
	p := isa.NewBuilder(name, b.nextCode)
	b.nextCode += 1 << 20
	return p
}

// region allocates a data region of the given size (1 MiB aligned).
func (b *builder) region(bytes uint64) uint64 {
	const align = 1 << 20
	base := b.nextData
	b.nextData += (bytes + align - 1) &^ (align - 1)
	return base
}

// stream returns a perfectly coalesced streaming pattern.
func (b *builder) stream(ws uint64, lines int) isa.AccessPattern {
	return isa.AccessPattern{Kind: isa.PatStream, Base: b.region(ws), WorkingSet: ws, Stride: 256, Lines: uint8(lines)}
}

// strided returns a large-stride pattern (poor spatial locality).
func (b *builder) strided(ws uint64, lines int) isa.AccessPattern {
	return isa.AccessPattern{Kind: isa.PatStrided, Base: b.region(ws), WorkingSet: ws, Stride: 4096 + 64, Lines: uint8(lines)}
}

// random returns a uniformly random pattern within a private region.
func (b *builder) random(ws uint64, lines int) isa.AccessPattern {
	return isa.AccessPattern{Kind: isa.PatRandom, Base: b.region(ws), WorkingSet: ws, Stride: 64, Lines: uint8(lines)}
}

// shared returns a globally shared streaming pattern (all waves walk the
// same positions); working sets above L2 capacity thrash it.
func (b *builder) shared(ws uint64, stride uint32, lines int) isa.AccessPattern {
	return isa.AccessPattern{Kind: isa.PatShared, Base: b.region(ws), WorkingSet: ws, Stride: stride, Lines: uint8(lines)}
}

// grid sizes a dispatch so the GPU holds roughly wavesPerCU waves per CU.
func (b *builder) grid(wavesPerWG, wavesPerCU int) (workgroups, wpw int) {
	total := b.cfg.NumCUs * wavesPerCU
	wgs := total / wavesPerWG
	if wgs < 1 {
		wgs = 1
	}
	return wgs, wavesPerWG
}

// kernel finalizes a program into a kernel with the given dispatch shape.
func kernel(p isa.Program, workgroups, wavesPerWG int) isa.Kernel {
	return isa.Kernel{Program: p, Workgroups: workgroups, WavesPerWG: wavesPerWG}
}

// repeatLaunches builds a launch order cycling through n kernels r times.
func repeatLaunches(n, r int) []int32 {
	out := make([]int32, 0, n*r)
	for i := 0; i < r; i++ {
		for k := 0; k < n; k++ {
			out = append(out, int32(k))
		}
	}
	return out
}

// Generator builds one application for a configuration.
type Generator func(GenConfig) App

var registry = map[string]struct {
	class Class
	index uint64
	gen   Generator
}{}

// DuplicateAppError reports a registration under a name already taken.
type DuplicateAppError struct {
	Name string
}

// Error implements error.
func (e *DuplicateAppError) Error() string { return "workload: duplicate app " + e.Name }

// RegisterApp adds a generator to the suite under a unique name; Names
// orders apps by index. It returns a *DuplicateAppError when the name is
// taken, letting callers registering apps dynamically (plugins, tests)
// handle the collision instead of crashing.
func RegisterApp(name string, class Class, index uint64, gen Generator) error {
	if _, dup := registry[name]; dup {
		return &DuplicateAppError{Name: name}
	}
	registry[name] = struct {
		class Class
		index uint64
		gen   Generator
	}{class, index, gen}
	return nil
}

// register is the init-path wrapper for the built-in suite, where a
// duplicate name is a programming error.
func register(name string, class Class, index uint64, gen Generator) {
	if err := RegisterApp(name, class, index, gen); err != nil {
		panic(err)
	}
}

// Names returns all registered application names in canonical (paper
// table) order: HPC apps first, then MI apps.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return registry[names[i]].index < registry[names[j]].index
	})
	return names
}

// ClassOf returns the family of a registered app.
func ClassOf(name string) Class { return registry[name].class }

// Build generates one application by name.
func Build(name string, cfg GenConfig) (App, error) {
	e, ok := registry[name]
	if !ok {
		// List the valid names so a mistyped -workload flag (or API
		// request) is self-correcting instead of a source-dive.
		return App{}, fmt.Errorf("workload: unknown app %q (available: %s)", name, strings.Join(Names(), ", "))
	}
	app := e.gen(cfg)
	if err := app.Validate(); err != nil {
		return App{}, err
	}
	return app, nil
}

// MustBuild is Build for static names; it panics on error.
func MustBuild(name string, cfg GenConfig) App {
	app, err := Build(name, cfg)
	if err != nil {
		panic(err)
	}
	return app
}

// All generates every registered application in canonical order.
func All(cfg GenConfig) []App {
	names := Names()
	apps := make([]App, 0, len(names))
	for _, n := range names {
		apps = append(apps, MustBuild(n, cfg))
	}
	return apps
}
