package workload

import "pcstall/internal/isa"

// Machine-intelligence kernel generators, standing in for the
// DeepBench/DNNMark kernels of TABLE II.

func init() {
	register("dgemm", MI, 9, genDGEMM)
	register("BwdBN", MI, 10, genBwdBN)
	register("BwdPool", MI, 11, genBwdPool)
	register("BwdSoft", MI, 12, genBwdSoft)
	register("FwdBN", MI, 13, genFwdBN)
	register("FwdPool", MI, 14, genFwdPool)
	register("FwdSoft", MI, 15, genFwdSoft)
}

// genDGEMM: double-precision tiled matrix multiply (1 kernel). Tiles are
// staged through LDS then consumed by long FMA blocks — strongly
// compute-bound — but tile boundaries inject memory bursts and barriers,
// making its fine-grain behaviour highly heterogeneous (paper §6.2).
func genDGEMM(cfg GenConfig) App {
	b := newBuilder(cfg, 9)
	a := b.stream(6*mib, 1)
	bb := b.strided(6*mib, 2)
	c := b.stream(6*mib, 1)

	p := b.program("dgemm_tile")
	p.Loop(cfg.trips(30), 0) // barriers inside: trips must be uniform
	// Stage next tiles: a bursty memory phase.
	p.Load(a).Load(a).Load(bb).Load(bb)
	p.WaitAll()
	p.LDSBlock(4, 2)
	p.Barrier()
	// Consume tiles: long FMA phase.
	p.Loop(22, 0)
	p.VALUBlock(20, 4)
	p.LDSBlock(2, 2)
	p.EndLoop()
	p.Barrier()
	p.EndLoop()
	p.Store(c).WaitAll()

	wgs, wpw := b.grid(8, 8)
	return App{
		Name: "dgemm", Class: MI,
		Kernels:  []isa.Kernel{kernel(p.MustBuild(), wgs, wpw)},
		Launches: []int32{0},
	}
}

// batchNorm builds the shared structure of the batch-norm kernels: a
// statistics-reduction phase (streaming loads, light compute, barrier)
// alternating with an elementwise normalization phase (VALU block,
// stores). compute controls the normalization block length.
func batchNorm(b *builder, name string, outerTrips int32, compute int) isa.Program {
	acts := b.stream(24*mib, 2)
	out := b.stream(24*mib, 2)

	p := b.program(name)
	p.Loop(outerTrips, 0) // barriers inside: trips must be uniform
	// Reduction phase: memory-dominated.
	p.Loop(18, 1)
	p.Load(acts).Load(acts)
	p.WaitAll()
	p.VALUBlock(3, 4)
	p.EndLoop()
	p.LDSBlock(3, 2)
	p.Barrier()
	// Normalize phase: compute-dominated.
	p.Loop(44, 0)
	p.VALUBlock(compute, 4)
	p.Store(out)
	p.EndLoop()
	p.WaitAll()
	p.Barrier()
	p.EndLoop()
	return p.MustBuild()
}

// genBwdBN: batch-norm backward (1 kernel) — pronounced reduce/normalize
// phase alternation (paper Figs. 6c and 8).
func genBwdBN(cfg GenConfig) App {
	b := newBuilder(cfg, 10)
	wgs, wpw := b.grid(8, 8)
	return App{
		Name: "BwdBN", Class: MI,
		Kernels:  []isa.Kernel{kernel(batchNorm(b, "bwdbn", cfg.trips(9), 10), wgs, wpw)},
		Launches: []int32{0},
	}
}

// genFwdBN: batch-norm forward — same structure with a heavier
// normalization phase.
func genFwdBN(cfg GenConfig) App {
	b := newBuilder(cfg, 13)
	wgs, wpw := b.grid(8, 8)
	return App{
		Name: "FwdBN", Class: MI,
		Kernels:  []isa.Kernel{kernel(batchNorm(b, "fwdbn", cfg.trips(9), 16), wgs, wpw)},
		Launches: []int32{0},
	}
}

// pool builds a pooling kernel: a perfectly uniform loop with pipelined
// loads and a fixed compute block. The constant instruction rate is why
// BwdPool settles on a single frequency under DVFS (paper §6.2).
func pool(b *builder, name string, outerTrips int32, compute int) isa.Program {
	in := b.stream(16*mib, 2)
	out := b.stream(16*mib, 1)

	p := b.program(name)
	p.Loop(outerTrips, 0)
	p.Load(in)
	p.Wait(1)
	p.VALUBlock(compute, 4)
	p.Store(out)
	p.EndLoop()
	p.WaitAll()
	return p.MustBuild()
}

// genBwdPool: pooling backward (1 kernel), constant-rate and balanced.
func genBwdPool(cfg GenConfig) App {
	b := newBuilder(cfg, 11)
	wgs, wpw := b.grid(4, 8)
	return App{
		Name: "BwdPool", Class: MI,
		Kernels:  []isa.Kernel{kernel(pool(b, "bwdpool", cfg.trips(320), 6), wgs, wpw)},
		Launches: []int32{0},
	}
}

// genFwdPool: pooling forward — the same shape with more compute per
// element.
func genFwdPool(cfg GenConfig) App {
	b := newBuilder(cfg, 14)
	wgs, wpw := b.grid(4, 8)
	return App{
		Name: "FwdPool", Class: MI,
		Kernels:  []isa.Kernel{kernel(pool(b, "fwdpool", cfg.trips(300), 9), wgs, wpw)},
		Launches: []int32{0},
	}
}

// genBwdSoft: softmax backward (1 kernel): reduction barriers plus
// memory-leaning elementwise work.
func genBwdSoft(cfg GenConfig) App {
	b := newBuilder(cfg, 12)
	grads := b.stream(20*mib, 2)
	out := b.stream(20*mib, 2)

	p := b.program("bwdsoft")
	p.Loop(cfg.trips(120), 0) // barriers inside: trips must be uniform
	p.Load(grads).Load(grads)
	p.WaitAll()
	p.VALUBlock(6, 4)
	p.LDSBlock(2, 2)
	p.Barrier()
	p.VALUBlock(4, 4)
	p.Store(out)
	p.EndLoop()
	p.WaitAll()

	wgs, wpw := b.grid(8, 8)
	return App{
		Name: "BwdSoft", Class: MI,
		Kernels:  []isa.Kernel{kernel(p.MustBuild(), wgs, wpw)},
		Launches: []int32{0},
	}
}

// genFwdSoft: softmax forward (1 kernel). All CUs walk a shared hot set
// sized above L2 while sustaining heavy store traffic, so raising the
// core clock buys almost no throughput past mid frequencies — the paper's
// second-order effect where static 1.7 GHz beats both 1.3 and 2.2 GHz.
func genFwdSoft(cfg GenConfig) App {
	b := newBuilder(cfg, 15)
	hot := b.shared(6*mib, 320, 2)
	out := b.stream(20*mib, 2)

	p := b.program("fwdsoft")
	p.Loop(cfg.trips(150), 2)
	p.Load(hot).Load(hot).Load(hot)
	p.Wait(2)
	p.VALUBlock(5, 4)
	p.Store(out).Store(out)
	p.WaitAll()
	p.VALUBlock(3, 4)
	p.EndLoop()

	wgs, wpw := b.grid(4, 8)
	return App{
		Name: "FwdSoft", Class: MI,
		Kernels:  []isa.Kernel{kernel(p.MustBuild(), wgs, wpw)},
		Launches: []int32{0},
	}
}
