package exp

import (
	"strings"
	"testing"

	"pcstall/internal/clock"
	"pcstall/internal/dvfs"
)

// tinySuite returns a suite scaled for unit tests: a small GPU, short
// workloads, and a restricted app set.
func tinySuite(apps ...string) *Suite {
	cfg := DefaultConfig()
	cfg.CUs = 2
	cfg.Scale = 0.25
	cfg.TraceEpochs = 12
	if len(apps) > 0 {
		cfg.Apps = apps
	}
	return NewSuite(cfg)
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"row", "a", "b"},
		Notes:  []string{"a note"},
	}
	tb.AddRow("x", 2, 1.234, 5.678)
	tb.AddRow("y", 2, 9, 10)

	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== T: demo ==", "1.23", "5.68", "a note", "row"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if got := tb.Row("x"); len(got) != 2 || got[0] != 1.234 {
		t.Fatalf("Row(x) = %v", got)
	}
	if tb.Row("nope") != nil {
		t.Fatal("Row of unknown label should be nil")
	}
}

func TestRunCaching(t *testing.T) {
	s := tinySuite("comd")
	a := s.run("comd", "STATIC-1700", clock.Microsecond, dvfs.ED2P, 1)
	b := s.run("comd", "STATIC-1700", clock.Microsecond, dvfs.ED2P, 1)
	if a != b {
		t.Fatal("identical runs not cached")
	}
	c := s.run("comd", "STATIC-1700", clock.Microsecond, dvfs.EDP, 1)
	if a == c {
		t.Fatal("different objective shared a cache entry")
	}
}

func TestTraceShape(t *testing.T) {
	s := tinySuite("comd")
	tr := s.trace("comd", clock.Microsecond, 8, true)
	if len(tr.sens) == 0 || len(tr.sens) > 8 {
		t.Fatalf("trace has %d epochs", len(tr.sens))
	}
	for e := range tr.sens {
		if len(tr.sens[e]) != 2 { // 2 CUs = 2 domains
			t.Fatalf("epoch %d has %d domains", e, len(tr.sens[e]))
		}
	}
	if len(tr.wf) != len(tr.sens) {
		t.Fatal("wf samples missing")
	}
	if len(tr.curves) == 0 {
		t.Fatal("no curves kept for Fig.5")
	}
	// Cached on second call.
	if tr2 := s.trace("comd", clock.Microsecond, 8, true); tr2 != tr {
		t.Fatal("trace not cached")
	}
}

func TestMeanRelChangeBounds(t *testing.T) {
	s := tinySuite("comd", "xsbench")
	for _, app := range s.apps() {
		v := s.trace(app, clock.Microsecond, 10, false).meanRelChange()
		if v < 0 || v > 1 {
			t.Fatalf("%s rel change %g out of [0,1]", app, v)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	s := tinySuite("comd")
	tb := s.Figure5()
	if len(tb.Rows) == 0 {
		t.Fatal("Figure 5 empty")
	}
	if len(tb.Header) != 11 { // epoch + 10 states
		t.Fatalf("header has %d columns", len(tb.Header))
	}
	// Each sampled epoch's curve trends upward or flat overall; small
	// per-state dips are legitimate cross-domain interference noise
	// (the paper's R² is 0.82, not 1).
	for i, row := range tb.Data {
		if len(row) < 2 || row[0] == 0 {
			continue
		}
		if row[len(row)-1] < row[0]*0.8 {
			t.Errorf("row %d decreases overall: %v", i, row)
		}
	}
	if len(tb.Notes) == 0 || !strings.Contains(tb.Notes[0], "R^2") {
		t.Fatal("missing R² note")
	}
}

func TestFigure7aShape(t *testing.T) {
	s := tinySuite("comd", "BwdPool")
	tb := s.Figure7a()
	if len(tb.Rows) != 3 { // 2 apps + MEAN
		t.Fatalf("%d rows", len(tb.Rows))
	}
	mean := tb.Row("MEAN")
	if mean == nil || mean[0] < 0 || mean[0] > 1 {
		t.Fatalf("bad MEAN row %v", mean)
	}
}

func TestFigure14And15Consistency(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several designs")
	}
	s := tinySuite("comd", "xsbench")
	f14 := s.Figure14()
	f15 := s.Figure15()
	if len(f14.Rows) != 3 || len(f15.Rows) != 3 { // 2 apps + aggregate
		t.Fatalf("row counts %d/%d", len(f14.Rows), len(f15.Rows))
	}
	for _, row := range f14.Data {
		for i, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("accuracy %g out of range (col %d)", v, i)
			}
		}
	}
	for _, row := range f15.Data {
		for i, v := range row {
			if v <= 0 || v > 10 {
				t.Fatalf("normalized ED2P %g implausible (col %d)", v, i)
			}
		}
	}
}

func TestFigure16ResidencySumsToOne(t *testing.T) {
	s := tinySuite("xsbench")
	tb := s.Figure16()
	for i, row := range tb.Data {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("row %d residency sums to %g", i, sum)
		}
	}
}

func TestTables(t *testing.T) {
	s := tinySuite("comd")
	t1 := s.Table1()
	if len(t1.Rows) == 0 {
		t.Fatal("Table I empty")
	}
	// PCSTALL total must be the paper's 328 bytes.
	found := false
	for i, r := range t1.Rows {
		if r[0] == "PCSTALL" && t1.Data[i][1] == 328 {
			found = true
		}
	}
	if !found {
		t.Fatal("PCSTALL storage total != 328 bytes")
	}
	t2 := s.Table2()
	if len(t2.Rows) != 16 {
		t.Fatalf("Table II has %d rows", len(t2.Rows))
	}
	t3 := s.Table3()
	if len(t3.Rows) != 8 {
		t.Fatalf("Table III has %d rows", len(t3.Rows))
	}
}

func TestNewSuiteDefaults(t *testing.T) {
	s := NewSuite(Config{})
	if s.Cfg.CUs == 0 || len(s.Cfg.Apps) != 16 || s.Cfg.MaxTime == 0 {
		t.Fatalf("zero-value config not defaulted: %+v", s.Cfg)
	}
}

func TestGeomeanMeanOver(t *testing.T) {
	s := tinySuite("comd", "xsbench")
	g := s.geomeanOver(func(string) float64 { return 4 })
	if g != 4 {
		t.Fatalf("geomean of constant = %g", g)
	}
	m := s.meanOver(func(app string) float64 {
		if app == "comd" {
			return 1
		}
		return 3
	})
	if m != 2 {
		t.Fatalf("mean = %g", m)
	}
}
