package exp

import (
	"fmt"

	"pcstall/internal/clock"
	"pcstall/internal/core"
	"pcstall/internal/dvfs"
	"pcstall/internal/estimate"
	"pcstall/internal/metrics"
)

// Ablation studies for the design choices DESIGN.md calls out. Each
// sweeps one PCSTALL parameter while holding the paper defaults for the
// rest, and reports mean prediction accuracy (and, where relevant, table
// hit ratio and geomean normalized ED²P) over the configured workloads.

// ablApps returns a representative subset used by ablations (full suite
// runs are reserved for the paper figures).
func (s *Suite) ablApps() []string {
	subset := []string{"comd", "xsbench", "hacc", "dgemm", "BwdBN", "quickS"}
	have := map[string]bool{}
	for _, a := range s.Cfg.Apps {
		have[a] = true
	}
	out := subset[:0]
	for _, a := range subset {
		if have[a] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		out = s.Cfg.Apps
	}
	return out
}

// prefetchBase batches the STATIC-1700 normalization runs the ablation
// rows divide by, so they compute in parallel before the (serial,
// policy-state-reading) custom runs start.
func (s *Suite) prefetchBase(apps []string) {
	cells := make([]cell, len(apps))
	for i, app := range apps {
		cells[i] = cell{app, "STATIC-1700", clock.Microsecond, "ED2P", 1, 0}
	}
	s.prefetch(cells)
}

// runCustom runs one app under a custom-configured policy. Uncached and
// deliberately outside the orchestrator: callers read learned state (hit
// ratios) off the policy afterwards, so the run cannot be keyed by a
// design name or shared.
func (s *Suite) runCustom(_, app string, pol func() dvfs.Policy) *dvfs.Result {
	g := s.gpu(app, 1)
	res, err := dvfs.Run(g, pol(), dvfs.RunConfig{
		Epoch:   clock.Microsecond,
		Obj:     dvfs.ED2P,
		PM:      &s.PM,
		MaxTime: s.Cfg.MaxTime,
	})
	if err != nil {
		panic(err)
	}
	return &res
}

func (s *Suite) ablRow(t *Table, label string, pol func() *dvfs.PCStall) {
	apps := s.ablApps()
	s.prefetchBase(apps)
	var acc, ed []float64
	var hit float64
	for _, app := range apps {
		p := pol()
		r := s.runCustom(label, app, func() dvfs.Policy { return p })
		acc = append(acc, r.Accuracy)
		base := s.run(app, "STATIC-1700", clock.Microsecond, dvfs.ED2P, 1).Totals.ED2P()
		ed = append(ed, r.Totals.ED2P()/base)
		hit += p.HitRatio()
	}
	t.AddRow(label, 3, metrics.Mean(acc), hit/float64(len(apps)), metrics.Geomean(ed))
}

// AblTableSize sweeps the PC-table entry count — the paper picks 128
// entries for a 95%+ hit ratio (§4.4).
func (s *Suite) AblTableSize() *Table {
	t := &Table{
		ID:     "Ablation A1",
		Title:  "PCSTALL vs PC-table size (1us, ED2P)",
		Header: []string{"entries", "accuracy", "hit ratio", "norm ED2P"},
	}
	for _, entries := range []int{8, 16, 32, 64, 128, 256, 512} {
		e := entries
		s.ablRow(t, fmt.Sprintf("%d", e), func() *dvfs.PCStall {
			p := dvfs.NewPCStall()
			p.Cfg.Entries = e
			return p
		})
	}
	return t
}

// AblOffsetBits sweeps the PC index offset (paper Fig. 11b: degradation
// past 4 bits).
func (s *Suite) AblOffsetBits() *Table {
	t := &Table{
		ID:     "Ablation A2",
		Title:  "PCSTALL vs PC-table offset bits (1us, ED2P)",
		Header: []string{"offset bits", "accuracy", "hit ratio", "norm ED2P"},
	}
	for _, off := range []int{0, 2, 4, 6, 8} {
		o := off
		s.ablRow(t, fmt.Sprintf("%d", o), func() *dvfs.PCStall {
			p := dvfs.NewPCStall()
			p.Cfg.OffsetBits = o
			return p
		})
	}
	return t
}

// AblTableScope compares table sharing granularities (§4.4: accuracy is
// largely insensitive, enabling shared tables).
func (s *Suite) AblTableScope() *Table {
	t := &Table{
		ID:     "Ablation A3",
		Title:  "PCSTALL vs table sharing scope (1us, ED2P)",
		Header: []string{"scope", "accuracy", "hit ratio", "norm ED2P"},
	}
	for _, sc := range []struct {
		name  string
		scope dvfs.TableScope
	}{
		{"per-CU", dvfs.TablePerCU},
		{"per-domain", dvfs.TablePerDomain},
		{"global", dvfs.TableGlobal},
	} {
		scope := sc.scope
		s.ablRow(t, sc.name, func() *dvfs.PCStall {
			p := dvfs.NewPCStall()
			p.Scope = scope
			return p
		})
	}
	return t
}

// AblAgeCoef sweeps the scheduling-age normalization of the wavefront
// STALL estimate (§4.4, motivated by Fig. 11a).
func (s *Suite) AblAgeCoef() *Table {
	t := &Table{
		ID:     "Ablation A4",
		Title:  "PCSTALL vs age-normalization coefficient (1us, ED2P)",
		Header: []string{"age coef", "accuracy", "hit ratio", "norm ED2P"},
	}
	for _, c := range []float64{0, 0.15, 0.3, 0.6} {
		coef := c
		s.ablRow(t, fmt.Sprintf("%.2f", coef), func() *dvfs.PCStall {
			p := dvfs.NewPCStall()
			p.WFCfg = estimate.WFStallConfig{AgeCoef: coef}
			return p
		})
	}
	return t
}

// AblAlphaFallback sweeps the EWMA update weight and the reactive miss
// fallback.
func (s *Suite) AblAlphaFallback() *Table {
	t := &Table{
		ID:     "Ablation A5",
		Title:  "PCSTALL vs EWMA weight and miss fallback (1us, ED2P)",
		Header: []string{"variant", "accuracy", "hit ratio", "norm ED2P"},
	}
	for _, a := range []float64{0.2, 0.4, 1.0} {
		alpha := a
		s.ablRow(t, fmt.Sprintf("alpha=%.1f", alpha), func() *dvfs.PCStall {
			p := dvfs.NewPCStall()
			p.Cfg.Alpha = alpha
			return p
		})
	}
	s.ablRow(t, "no fallback", func() *dvfs.PCStall {
		p := dvfs.NewPCStall()
		p.Fallback = false
		return p
	})
	return t
}

// AblOracleSamples sweeps the fork-pre-execute sample count: the paper
// reports 97.6% methodology accuracy with one sample per V/f state
// (§5.1). Fewer samples interpolate and lose accuracy.
func (s *Suite) AblOracleSamples() *Table {
	t := &Table{
		ID:     "Ablation A6",
		Title:  "ORACLE accuracy vs fork-pre-execute sample count (1us)",
		Header: []string{"samples", "accuracy", "norm ED2P"},
	}
	apps := s.ablApps()
	sampleCounts := []int{1, 2, 3, 5, 10}
	var cells []cell
	for _, n := range sampleCounts {
		for _, app := range apps {
			cells = append(cells, cell{app, "ORACLE", clock.Microsecond, "ED2P", 1, n})
		}
	}
	for _, app := range apps {
		cells = append(cells, cell{app, "STATIC-1700", clock.Microsecond, "ED2P", 1, 0})
	}
	s.prefetch(cells)
	for _, n := range sampleCounts {
		var acc, ed []float64
		for _, app := range apps {
			r := s.runSampled(app, "ORACLE", clock.Microsecond, dvfs.ED2P, 1, n)
			acc = append(acc, r.Accuracy)
			base := s.run(app, "STATIC-1700", clock.Microsecond, dvfs.ED2P, 1).Totals.ED2P()
			ed = append(ed, r.Totals.ED2P()/base)
		}
		t.AddRow(fmt.Sprintf("%d", n), 3, metrics.Mean(acc), metrics.Geomean(ed))
	}
	return t
}

// AblEstimators crosses the four CU-level estimation models against the
// reactive controller at 1µs (the left half of Fig. 14 in one view) plus
// the wavefront-level STALL estimate under both reactive-style fallback
// use and the PC table, quantifying how much of PCSTALL's win comes from
// wavefront-level estimation versus PC-based prediction.
func (s *Suite) AblEstimators() *Table {
	t := &Table{
		ID:     "Ablation A7",
		Title:  "Estimation model x control mechanism (mean accuracy, 1us)",
		Header: []string{"design", "accuracy", "norm ED2P"},
	}
	apps := s.ablApps()
	var cells []cell
	for _, d := range []string{"STALL", "LEAD", "CRIT", "CRISP", "PCSTALL", "STATIC-1700"} {
		for _, app := range apps {
			cells = append(cells, cell{app, d, clock.Microsecond, "ED2P", 1, 0})
		}
	}
	s.prefetch(cells)
	addNamed := func(name string) {
		var acc, ed []float64
		for _, app := range apps {
			r := s.run(app, name, clock.Microsecond, dvfs.ED2P, 1)
			acc = append(acc, r.Accuracy)
			base := s.run(app, "STATIC-1700", clock.Microsecond, dvfs.ED2P, 1).Totals.ED2P()
			ed = append(ed, r.Totals.ED2P()/base)
		}
		t.AddRow(name+" (reactive)", 3, metrics.Mean(acc), metrics.Geomean(ed))
	}
	for _, n := range []string{"STALL", "LEAD", "CRIT", "CRISP"} {
		addNamed(n)
	}
	// Wavefront STALL + PC table = PCSTALL.
	var acc, ed []float64
	for _, app := range apps {
		r := s.run(app, "PCSTALL", clock.Microsecond, dvfs.ED2P, 1)
		acc = append(acc, r.Accuracy)
		base := s.run(app, "STATIC-1700", clock.Microsecond, dvfs.ED2P, 1).Totals.ED2P()
		ed = append(ed, r.Totals.ED2P()/base)
	}
	t.AddRow("WF-STALL + PC table (PCSTALL)", 3, metrics.Mean(acc), metrics.Geomean(ed))
	return t
}

// Extensions compares PCSTALL against the alternative predictor families
// of the paper's related-work survey (§2.4): a global phase-history table
// (HIST) and a Q-learning governor (QLEARN). QLEARN fuses prediction and
// selection, so only its ED²P column is meaningful.
func (s *Suite) Extensions() *Table {
	t := &Table{
		ID:     "Extension E1",
		Title:  "PCSTALL vs related-work predictor families (1us, ED2P)",
		Header: []string{"design", "accuracy", "norm ED2P"},
	}
	apps := s.ablApps()
	names := []string{"CRISP", "HIST", "QLEARN", "PCSTALL", "ORACLE"}
	var cells []cell
	for _, d := range append([]string{"STATIC-1700"}, names...) {
		for _, app := range apps {
			cells = append(cells, cell{app, d, clock.Microsecond, "ED2P", 1, 0})
		}
	}
	s.prefetch(cells)
	for _, name := range names {
		var acc, ed []float64
		for _, app := range apps {
			r := s.run(app, name, clock.Microsecond, dvfs.ED2P, 1)
			acc = append(acc, r.Accuracy)
			base := s.run(app, "STATIC-1700", clock.Microsecond, dvfs.ED2P, 1).Totals.ED2P()
			ed = append(ed, r.Totals.ED2P()/base)
		}
		t.AddRow(name, 3, metrics.Mean(acc), metrics.Geomean(ed))
	}
	return t
}

// AblEpochMode compares fixed-time epochs against fixed-instruction
// windows of equal average length — the §3.1 design argument: at GPU
// instruction-rate variance, instruction windows either miss productive
// transitions or transition unproductively.
func (s *Suite) AblEpochMode() *Table {
	t := &Table{
		ID:     "Ablation A8",
		Title:  "Fixed-time epochs vs fixed-instruction windows (PCSTALL, ED2P)",
		Header: []string{"app", "time ED2P", "instr ED2P", "time eps", "instr eps"},
	}
	d, err := core.DesignByName("PCSTALL")
	if err != nil {
		panic(err)
	}
	var cells []cell
	for _, app := range s.ablApps() {
		cells = append(cells,
			cell{app, "STATIC-1700", clock.Microsecond, "ED2P", 1, 0},
			cell{app, "PCSTALL", clock.Microsecond, "ED2P", 1, 0})
	}
	s.prefetch(cells)
	for _, app := range s.ablApps() {
		base := s.run(app, "STATIC-1700", clock.Microsecond, dvfs.ED2P, 1).Totals.ED2P()
		timeRun := s.run(app, "PCSTALL", clock.Microsecond, dvfs.ED2P, 1)
		// Match the window to the fixed-time run's average work per epoch.
		window := timeRun.Totals.Committed / int64(timeRun.Epochs)
		if window < 1 {
			window = 1
		}
		g := s.gpu(app, 1)
		instrRun, err := dvfs.Run(g, d.New(), dvfs.RunConfig{
			Epoch:       clock.Microsecond,
			Obj:         dvfs.ED2P,
			PM:          &s.PM,
			MaxTime:     s.Cfg.MaxTime,
			InstrWindow: window,
		})
		if err != nil {
			panic(err)
		}
		t.AddRow(app, 3,
			timeRun.Totals.ED2P()/base,
			instrRun.Totals.ED2P()/base,
			float64(timeRun.Epochs),
			float64(instrRun.Epochs),
		)
	}
	return t
}
