// Package exp regenerates every table and figure of the paper's
// evaluation (DESIGN.md §4 maps each to its implementing modules). Each
// Figure* / Table* method of Suite returns a Table whose rows mirror what
// the paper plots; the pcstall-exp CLI and the repository's top-level
// benchmarks print them.
//
// Results are cached within a Suite: Figs. 14/15/16 share the same runs,
// and all characterization figures share the same sensitivity traces.
package exp

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strings"
	"time"

	"pcstall/internal/chaos"
	"pcstall/internal/clock"
	"pcstall/internal/core"
	"pcstall/internal/dvfs"
	"pcstall/internal/estimate"
	"pcstall/internal/metrics"
	"pcstall/internal/oracle"
	"pcstall/internal/orchestrate"
	"pcstall/internal/power"
	"pcstall/internal/sim"
	"pcstall/internal/telemetry"
	"pcstall/internal/workload"
)

// Config scales the experiment platform. The paper's full platform is 64
// CUs; the default here is smaller so the complete figure set regenerates
// in minutes. All comparisons are within-configuration, so trends are
// preserved (DESIGN.md §5).
type Config struct {
	// CUs is the GPU size.
	CUs int
	// Scale multiplies workload durations.
	Scale float64
	// Seed drives workload synthesis and simulation randomness.
	Seed uint64
	// Apps restricts the workload set (nil = all 16).
	Apps []string
	// TraceEpochs bounds characterization traces (#epochs sampled).
	TraceEpochs int
	// MaxTime caps each run's simulated time.
	MaxTime clock.Time
	// Workers bounds concurrently executing simulation jobs (0 =
	// runtime.NumCPU(), 1 = strictly serial). Results are deterministic
	// and byte-identical at any worker count: every job is a pure
	// function of its description, and tables aggregate in job order.
	Workers int
	// CacheDir persists run results as JSONL so re-running the harness
	// skips already-computed cells ("" = in-memory sharing only).
	CacheDir string
	// NoCache disables the disk cache (in-process run sharing stays on).
	NoCache bool
	// Progress, when non-nil, receives periodic orchestrator snapshots.
	Progress func(orchestrate.Stats)
	// ProgressEvery sets the snapshot period (default 2s).
	ProgressEvery time.Duration
	// Ctx, when non-nil, is the campaign's cancellation signal: once it
	// is cancelled, queued simulation jobs are abandoned and in-flight
	// ones wind down at their next epoch boundary. Figure methods then
	// surface the cancellation by panicking with an error satisfying
	// errors.Is(err, context.Canceled) — the CLI recovers it, drains,
	// and flushes the manifest so -resume can finish the campaign.
	Ctx context.Context
	// JobTimeout bounds each simulation attempt (0 = no bound).
	JobTimeout time.Duration
	// Retries retries failed simulation attempts (transient faults) with
	// doubling backoff; panics and cancellations are never retried.
	Retries int
	// Metrics, when non-nil, turns on campaign telemetry (see
	// internal/telemetry): live orchestration counters land here, each
	// job's private snapshot is merged in when it settles, and manifests
	// carry per-job metric snapshots. Recording never alters results.
	Metrics *telemetry.Registry
	// Chaos, when non-empty, is a canonical fault-injection spec
	// (chaos.Parse syntax) applied to every job of the campaign. Chaos
	// participates in job keys, so faulty and fault-free results never
	// share cache entries.
	Chaos string
	// MaxCycles bounds each run's CU cycles; the watchdog stops runs
	// that exhaust it (0 = unbounded).
	MaxCycles int64
	// Log, when non-nil, receives the orchestrator's structured job
	// logs (settlements and retries, correlated by trace ID when the
	// campaign context carries a tracer).
	Log *slog.Logger
	// RunVia, when non-nil, intercepts job execution: it receives the
	// Suite's in-process executor plus a peek into the Suite's result
	// cache and returns the RunFunc the orchestrator actually drives
	// (internal/dist binds fleet dispatch here). The returned function
	// still settles through the normal orchestrator path, so the disk
	// cache, manifests, retries, and -resume behave identically whether
	// jobs run locally or on a fleet.
	RunVia func(local orchestrate.RunFunc, cached func(key string) (*dvfs.Result, bool)) orchestrate.RunFunc
}

// DefaultConfig returns the default scaled platform.
func DefaultConfig() Config {
	return Config{
		CUs:         8,
		Scale:       1.0,
		Seed:        1,
		TraceEpochs: 64,
		MaxTime:     20 * clock.Millisecond,
	}
}

// Table is one regenerated table or figure: formatted rows plus the raw
// numeric matrix (aligned with Rows) for programmatic checks.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Data[i] holds the numeric cells of Rows[i] (label columns
	// excluded).
	Data  [][]float64
	Notes []string
}

// AddRow appends a labeled numeric row, formatting values with prec
// decimal places.
func (t *Table) AddRow(label string, prec int, vals ...float64) {
	row := []string{label}
	for _, v := range vals {
		row = append(row, fmt.Sprintf("%.*f", prec, v))
	}
	t.Rows = append(t.Rows, row)
	t.Data = append(t.Data, append([]float64(nil), vals...))
}

// Row returns the numeric row with the given label, or nil.
func (t *Table) Row(label string) []float64 {
	for i, r := range t.Rows {
		if r[0] == label {
			return t.Data[i]
		}
	}
	return nil
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Suite runs experiments with caching. Create with NewSuite. Suite
// methods are not safe for concurrent use (call figures from one
// goroutine); internally each figure shards its runs across the
// orchestrator's worker pool, and everything a worker touches — the
// job executor, the power model, the design/workload registries — is
// either immutable after construction or owned by the job.
type Suite struct {
	Cfg Config
	// PM is the shared power model. It is read-only during runs: worker
	// goroutines call its pure methods concurrently.
	PM power.Model

	orch *orchestrate.Orchestrator
	// ctx is the campaign context every RunJobs batch runs under
	// (Config.Ctx, defaulted to Background).
	ctx context.Context
	// traces is main-goroutine-only memoization for the characterization
	// substrate (Figures 5-11); traced sampling stays serial.
	traces map[traceKey]*trace
}

// NewSuite builds a Suite for the configuration. It panics if the cache
// directory cannot be created (callers with fallible setups should
// pre-create Config.CacheDir).
func NewSuite(cfg Config) *Suite {
	if cfg.CUs == 0 {
		// Adopt the default platform but keep the caller's orchestration
		// knobs — a zero-CUs config with Workers/CacheDir set must not
		// silently lose them.
		d := DefaultConfig()
		d.Workers, d.CacheDir, d.NoCache = cfg.Workers, cfg.CacheDir, cfg.NoCache
		d.Progress, d.ProgressEvery = cfg.Progress, cfg.ProgressEvery
		d.Metrics = cfg.Metrics
		d.Ctx, d.JobTimeout, d.Retries = cfg.Ctx, cfg.JobTimeout, cfg.Retries
		d.Chaos, d.MaxCycles = cfg.Chaos, cfg.MaxCycles
		d.RunVia = cfg.RunVia
		cfg = d
	}
	if len(cfg.Apps) == 0 {
		cfg.Apps = workload.Names()
	}
	if cfg.TraceEpochs == 0 {
		cfg.TraceEpochs = 64
	}
	if cfg.MaxTime == 0 {
		cfg.MaxTime = 20 * clock.Millisecond
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	s := &Suite{
		Cfg:    cfg,
		PM:     power.DefaultModelFor(cfg.CUs),
		ctx:    cfg.Ctx,
		traces: map[traceKey]*trace{},
	}
	if s.ctx == nil {
		s.ctx = context.Background()
	}
	run := orchestrate.RunFunc(s.execJob)
	if cfg.RunVia != nil {
		// The cache peek closes over s: s.orch exists before any job
		// runs, and Cached is safe concurrent with the worker pool.
		run = cfg.RunVia(run, func(key string) (*dvfs.Result, bool) {
			return s.orch.Cached(key)
		})
	}
	orch, err := orchestrate.New(orchestrate.Config{
		Workers:       cfg.Workers,
		CacheDir:      cfg.CacheDir,
		NoCache:       cfg.NoCache,
		Run:           run,
		JobTimeout:    cfg.JobTimeout,
		Retries:       cfg.Retries,
		Progress:      cfg.Progress,
		ProgressEvery: cfg.ProgressEvery,
		Metrics:       cfg.Metrics,
		Log:           cfg.Log,
	})
	if err != nil {
		panic(fmt.Sprintf("exp: orchestrator: %v", err))
	}
	s.orch = orch
	return s
}

// Close flushes the result cache and stops the progress loop. The Suite
// remains usable for in-memory work afterwards.
func (s *Suite) Close() error { return s.orch.Close() }

// Stats snapshots orchestration progress and cache accounting.
func (s *Suite) Stats() orchestrate.Stats { return s.orch.Stats() }

// WriteManifest writes the campaign's run manifest (job list, hashes,
// timings, cache hits/misses, worker count) as JSON to path.
func (s *Suite) WriteManifest(path string) error { return s.orch.WriteManifest(path) }

// Manifest snapshots the campaign's run manifest in memory — the same
// record WriteManifest serializes, including each job's provenance
// (run / disk / remote:<backend> / local-fallback).
func (s *Suite) Manifest() *orchestrate.Manifest { return s.orch.Manifest() }

func (s *Suite) gpu(app string, cusPerDomain int) *sim.GPU {
	return s.gpuScaled(app, cusPerDomain, s.Cfg.Scale)
}

// gpuScaled builds a GPU with an explicit workload duration scale
// (long-epoch traces need apps that outlive the sampled window).
func (s *Suite) gpuScaled(app string, cusPerDomain int, scale float64) *sim.GPU {
	return buildGPU(app, s.Cfg.CUs, cusPerDomain, s.Cfg.Seed, scale)
}

// buildGPU constructs a fresh simulator purely from scalar parameters,
// so job executors on worker goroutines share no state with the Suite.
func buildGPU(app string, cus, cusPerDomain int, seed uint64, scale float64) *sim.GPU {
	cfg := sim.DefaultConfig(cus)
	cfg.Seed = seed
	cfg.Domains.CUsPerDomain = cusPerDomain
	gen := workload.DefaultGenConfig(cus)
	gen.Scale = scale
	gen.Seed = seed + 6
	a := workload.MustBuild(app, gen)
	g, err := sim.New(cfg, a.Kernels, a.Launches)
	if err != nil {
		panic(fmt.Sprintf("exp: building %s: %v", app, err))
	}
	return g
}

// cell identifies one run a figure needs: the in-repo shorthand that
// expands to an orchestrate.Job on the Suite's platform.
type cell struct {
	app, design string
	epoch       clock.Time
	obj         string
	cusDom      int
	samples     int
}

// job expands a cell with the Suite's platform parameters.
func (s *Suite) job(c cell) orchestrate.Job {
	return orchestrate.Job{
		App:           c.app,
		Design:        c.design,
		EpochPs:       int64(c.epoch),
		Objective:     c.obj,
		CUsPerDomain:  c.cusDom,
		CUs:           s.Cfg.CUs,
		Scale:         s.Cfg.Scale,
		Seed:          s.Cfg.Seed,
		MaxTimePs:     int64(s.Cfg.MaxTime),
		OracleSamples: c.samples,
		Chaos:         s.Cfg.Chaos,
		MaxCycles:     s.Cfg.MaxCycles,
		SimVersion:    orchestrate.SimVersion,
	}
}

// prefetch computes a batch of cells across the worker pool. Later
// Suite.run calls for the same cells are in-memory hits, so figure
// construction keeps its original (deterministic, serial) shape while
// the simulations themselves run in parallel.
func (s *Suite) prefetch(cells []cell) {
	if len(cells) == 0 {
		return
	}
	jobs := make([]orchestrate.Job, len(cells))
	for i, c := range cells {
		jobs[i] = s.job(c)
	}
	if _, err := s.orch.RunJobs(s.ctx, jobs); err != nil {
		panic(err)
	}
}

// execJob is the orchestrator's RunFunc: a pure function of the job
// (plus the read-only power model), safe on any worker goroutine. ctx
// is the job's cancellation signal, checked at every epoch boundary of
// the run. reg is the job's private telemetry sink (nil when telemetry
// is off); recording into it never changes the result.
func (s *Suite) execJob(ctx context.Context, j orchestrate.Job, reg *telemetry.Registry) (*dvfs.Result, error) {
	d, err := core.DesignByName(j.Design)
	if err != nil {
		return nil, err
	}
	obj, err := ObjectiveByName(j.Objective)
	if err != nil {
		return nil, err
	}
	chaosCfg, err := chaos.Parse(j.Chaos)
	if err != nil {
		return nil, err
	}
	epoch := clock.Time(j.EpochPs)
	// Long-epoch runs need long apps: at 100µs epochs an unscaled app
	// finishes in a couple of decisions, telling us nothing about the
	// policy. The paper's apps run far longer than the largest epoch;
	// the boost is capped to keep oracle-sampled sweeps tractable. The
	// boost is derived from the job alone, so cached results stay valid.
	scale := j.Scale
	if boost := float64(epoch) / float64(8*clock.Microsecond); boost > 1 {
		if boost > 12 {
			boost = 12
		}
		scale *= boost
	}
	res, err := dvfs.RunJob(func() (*sim.GPU, error) {
		return buildGPU(j.App, j.CUs, j.CUsPerDomain, j.Seed, scale), nil
	}, d.New, dvfs.RunConfig{
		Epoch:         epoch,
		Obj:           obj,
		PM:            &s.PM,
		MaxTime:       clock.Time(j.MaxTimePs),
		OracleSamples: j.OracleSamples,
		Chaos:         chaosCfg,
		MaxCycles:     j.MaxCycles,
		Metrics:       reg,
		Ctx:           ctx,
	})
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// ObjectiveByName inverts Objective.Name for the objectives the harness
// uses (job descriptions carry objectives as canonical strings so they
// can be hashed and persisted). The serving layer validates request
// objectives through it, so a name that parses here is exactly one the
// job executor will accept.
func ObjectiveByName(name string) (dvfs.Objective, error) {
	switch name {
	case "EDP":
		return dvfs.EDP, nil
	case "ED2P":
		return dvfs.ED2P, nil
	}
	var n int
	if c, err := fmt.Sscanf(name, "ED%dP", &n); c == 1 && err == nil {
		return dvfs.EDnP{N: n}, nil
	}
	var pct float64
	if c, err := fmt.Sscanf(name, "Energy@%f%%", &pct); c == 1 && err == nil {
		// Only round-percent limits (the paper's 5%/10%) survive the
		// Name() round-trip; FixedPerf formats with %.0f.
		return dvfs.FixedPerf{Limit: pct / 100}, nil
	}
	var floor float64
	if c, err := fmt.Sscanf(name, "QoS@%f", &floor); c == 1 && err == nil {
		return dvfs.QoSTarget{InstrPerEpoch: floor}, nil
	}
	return nil, fmt.Errorf("exp: unknown objective %q", name)
}

// run executes (and caches) one app × design × epoch × objective run.
func (s *Suite) run(app, design string, epoch clock.Time, obj dvfs.Objective, cusPerDomain int) *dvfs.Result {
	return s.runSampled(app, design, epoch, obj, cusPerDomain, 0)
}

// runSampled is run with an explicit oracle fork-sample override.
func (s *Suite) runSampled(app, design string, epoch clock.Time, obj dvfs.Objective, cusPerDomain, samples int) *dvfs.Result {
	rs, err := s.orch.RunJobs(s.ctx, []orchestrate.Job{
		s.job(cell{app, design, epoch, obj.Name(), cusPerDomain, samples}),
	})
	if err != nil {
		panic(err)
	}
	return rs[0]
}

// normED returns design's EDⁿP normalized to the static mid-frequency
// baseline for one app.
func (s *Suite) normED(app, design string, epoch clock.Time, n int, cusPerDomain int) float64 {
	obj := dvfs.EDnP{N: n}
	base := s.run(app, "STATIC-1700", epoch, obj, cusPerDomain).Totals.EDnP(n)
	v := s.run(app, design, epoch, obj, cusPerDomain).Totals.EDnP(n)
	if base == 0 {
		return 0
	}
	return v / base
}

// apps returns the configured workload list.
func (s *Suite) apps() []string { return s.Cfg.Apps }

// geomeanOver maps f over the configured apps and returns the geometric
// mean.
func (s *Suite) geomeanOver(f func(app string) float64) float64 {
	vals := make([]float64, 0, len(s.Cfg.Apps))
	for _, a := range s.Cfg.Apps {
		vals = append(vals, f(a))
	}
	return metrics.Geomean(vals)
}

// meanOver maps f over the configured apps and returns the mean.
func (s *Suite) meanOver(f func(app string) float64) float64 {
	sum := 0.0
	for _, a := range s.Cfg.Apps {
		sum += f(a)
	}
	return sum / float64(len(s.Cfg.Apps))
}

// ---------------------------------------------------------------------------
// Sensitivity traces (characterization substrate)

// wfSens is one wavefront's sampled sensitivity in one epoch.
type wfSens struct {
	CU         int32
	GlobalWave int64
	AgeRank    int32
	StartPC    uint64
	Sens       float64
}

// trace is a static-frequency run sampled by the oracle every epoch.
type trace struct {
	epoch clock.Time
	// sens[e][d] is domain d's true sensitivity in epoch e.
	sens [][]float64
	// r2[e][d] is the linearity of the I(f) curve.
	r2 [][]float64
	// curves[e][d][k] holds full per-state instruction counts for the
	// first few epochs (Fig. 5).
	curves [][][]float64
	// wf[e] lists per-wavefront sensitivities (when collected).
	wf [][]wfSens
}

type traceKey struct {
	app     string
	epoch   clock.Time
	withWF  bool
	nEpochs int
}

// trace samples a static mid-frequency run of app with the oracle at
// every epoch boundary, for up to nEpochs epochs. For epochs longer than
// a few microseconds the workload is scaled up so it outlives the
// sampled window (otherwise variation statistics starve on the app's
// final partial epochs).
func (s *Suite) trace(app string, epoch clock.Time, nEpochs int, withWF bool) *trace {
	key := traceKey{app, epoch, withWF, nEpochs}
	if t, ok := s.traces[key]; ok {
		return t
	}
	scale := s.Cfg.Scale
	if boost := float64(epoch) / float64(clock.Microsecond); boost > 1 {
		// Scale the workload so individual kernels span several epochs
		// even at the longest epoch; otherwise every epoch straddles a
		// kernel-launch boundary and variation is artificially maximal.
		scale *= boost
	}
	// Long-epoch traces cost nEpochs*epoch*K clones regardless of app
	// length; bound the sampled window so the sweep stays tractable.
	if epoch >= 10*clock.Microsecond && nEpochs > 10 {
		nEpochs = 10
		key.nEpochs = nEpochs
		if t, ok := s.traces[key]; ok {
			return t
		}
	}
	g := s.gpuScaled(app, 1, scale)
	grid := g.Cfg.Grid
	smp := &oracle.Sampler{Grid: grid, PM: &s.PM}
	tr := &trace{epoch: epoch}
	const keepCurves = 8
	for e := 0; e < nEpochs && !g.Finished && g.Stuck == nil && g.Now < s.Cfg.MaxTime; e++ {
		truth := smp.SampleNext(g, epoch)
		nd := len(truth.I)
		sens := make([]float64, nd)
		r2 := make([]float64, nd)
		for d := 0; d < nd; d++ {
			sens[d], r2[d] = truth.Slope(grid, d)
		}
		tr.sens = append(tr.sens, sens)
		tr.r2 = append(tr.r2, r2)
		if e < keepCurves {
			cp := make([][]float64, nd)
			for d := range cp {
				cp[d] = append([]float64(nil), truth.I[d]...)
			}
			tr.curves = append(tr.curves, cp)
		}
		// Advance the parent run one epoch at the static mid frequency.
		g.RunUntil(g.Now + epoch)
		var es sim.EpochSample
		g.CollectEpoch(&es)
		if withWF {
			// Per-wavefront sensitivities come from the deterministic
			// wavefront-STALL estimate of the executed epoch, not from
			// per-wave regression over the shuffled forks: a single
			// wave's sampled slope is noise-floored by cross-domain
			// interference (10 points, 10 different neighbour mixes),
			// which would read as unpredictability in Figs. 10/11.
			wcfg := estimate.DefaultWFStall()
			var ws []wfSens
			for cu := range es.CUs {
				ce := &es.CUs[cu]
				d := g.Cfg.Domains.DomainOf(cu)
				bf := estimate.BarrierStallFrac(ce.WFs)
				n := len(ce.WFs)
				for i := range ce.WFs {
					rec := &ce.WFs[i]
					est := wcfg.EstimateWF(rec, int64(epoch), es.Freqs[d], grid, n, bf)
					ws = append(ws, wfSens{
						CU:         int32(cu),
						GlobalWave: rec.GlobalWave,
						AgeRank:    rec.AgeRank,
						StartPC:    rec.StartPC,
						Sens:       est.Slope,
					})
				}
			}
			sort.Slice(ws, func(a, b int) bool {
				if ws[a].CU != ws[b].CU {
					return ws[a].CU < ws[b].CU
				}
				return ws[a].GlobalWave < ws[b].GlobalWave
			})
			tr.wf = append(tr.wf, ws)
		}
	}
	s.traces[key] = tr
	return tr
}

// meanRelChange computes the mean relative change between consecutive
// per-domain sensitivities of a trace. The denominator is floored at the
// domain's mean |sensitivity| so that near-zero-sensitivity (deeply
// memory-bound) phases don't register sampling noise as 100% swings.
func (t *trace) meanRelChange() float64 {
	if len(t.sens) < 2 {
		return 0
	}
	nd := len(t.sens[0])
	floor := make([]float64, nd)
	for e := range t.sens {
		for d := range t.sens[e] {
			floor[d] += abs(t.sens[e][d])
		}
	}
	for d := range floor {
		floor[d] /= float64(len(t.sens))
	}
	var w metrics.Welford
	for e := 1; e < len(t.sens); e++ {
		for d := range t.sens[e] {
			a, b := t.sens[e-1][d], t.sens[e][d]
			den := max3(abs(a), abs(b), floor[d])
			if den < 1e-12 {
				continue
			}
			r := abs(b-a) / den
			if r > 1 {
				r = 1
			}
			w.Add(r)
		}
	}
	return w.Mean
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func max3(a, b, c float64) float64 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

// meanR2 returns the average R² of the per-epoch I(f) fits over
// domain-epochs doing meaningful work. Near-idle epochs (dispatch ramps,
// straggler tails) commit a few dozen noise-dominated instructions and
// would swamp the statistic the paper computes over its sampled working
// epochs.
func (t *trace) meanR2() float64 {
	var w metrics.Welford
	for e := range t.r2 {
		for d := range t.r2[e] {
			// R² is only meaningful where there is slope to explain:
			// a memory-bound epoch's near-constant curve has (noise)
			// variance but no signal, and a near-idle epoch has
			// neither. The paper's statistic is over its sampled
			// working epochs (Fig. 5 plots exactly such epochs).
			if abs(t.sens[e][d]) <= 0.05 {
				continue
			}
			if len(t.curves) > e && t.curves[e][d][len(t.curves[e][d])/2] < 100 {
				continue
			}
			w.Add(t.r2[e][d])
		}
	}
	return w.Mean
}
