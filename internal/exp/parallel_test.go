package exp

import (
	"strings"
	"testing"
)

// goldenRender regenerates a small figure pair on a fresh tiny suite and
// returns the formatted table bytes. Figure 7a exercises the (serial)
// trace substrate of DESIGN.md §3's determinism promise; Figure 15 the
// orchestrated run path across every design.
func goldenRender(t *testing.T, workers int, cacheDir string) (string, *Suite) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.CUs = 2
	cfg.Scale = 0.25
	cfg.TraceEpochs = 12
	cfg.Apps = []string{"comd", "xsbench"}
	cfg.Workers = workers
	cfg.CacheDir = cacheDir
	s := NewSuite(cfg)
	var sb strings.Builder
	s.Figure7a().Fprint(&sb)
	s.Figure15().Fprint(&sb)
	return sb.String(), s
}

// TestGoldenSerialVsParallel is the determinism gate for the
// orchestrator: a parallel (-j 8) regeneration must be byte-identical to
// the serial one — same seeds, same tie-breaks, same formatting — no
// matter how completion order interleaves.
func TestGoldenSerialVsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every Figure 15 design twice")
	}
	serial, s1 := goldenRender(t, 1, "")
	defer s1.Close()
	parallel, s2 := goldenRender(t, 8, "")
	defer s2.Close()
	if serial != parallel {
		t.Fatalf("parallel output diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if serial == "" || !strings.Contains(serial, "Figure 15") {
		t.Fatalf("golden render incomplete:\n%s", serial)
	}
}

// TestGoldenWarmCacheRerun proves the disk cache round-trips exactly: a
// rerun in a fresh process-equivalent (new Suite, same cache dir) must
// reproduce byte-identical tables from ≥90% cached cells.
func TestGoldenWarmCacheRerun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every Figure 15 design")
	}
	dir := t.TempDir()
	cold, s1 := goldenRender(t, 8, dir)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	coldStats := s1.Stats()
	if coldStats.Misses == 0 {
		t.Fatal("cold run computed nothing")
	}

	warm, s2 := goldenRender(t, 8, dir)
	defer s2.Close()
	if warm != cold {
		t.Fatalf("warm-cache output diverges:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
	m := s2.orch.Manifest()
	if m.Misses != 0 {
		t.Fatalf("warm rerun recomputed %d cells", m.Misses)
	}
	if rate := m.HitRate(); rate < 0.9 {
		t.Fatalf("warm hit rate %.2f < 0.90 (mem %d disk %d miss %d)", rate, m.MemHits, m.DiskHits, m.Misses)
	}
}
