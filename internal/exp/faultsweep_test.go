package exp

import (
	"math"
	"testing"
)

// TestFaultSweepSmoke regenerates the robustness figure at a tiny scale:
// the level-0 row must be exactly 1.0 for every design (each design is
// normalized to its own clean run), every cell must be finite and
// positive, and faulty rows must actually differ from the clean row for
// at least one design (the injection must be observable end to end).
func TestFaultSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 5-level x 3-design sweep")
	}
	s := tinySuite("comd", "xsbench")
	tb := s.FigureFaultSweep()
	if len(tb.Rows) != len(faultLevels) {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), len(faultLevels))
	}
	for j, v := range tb.Data[0] {
		if v != 1 {
			t.Errorf("level-0 %s = %g, want exactly 1", faultDesigns[j], v)
		}
	}
	for i, row := range tb.Data {
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				t.Errorf("row %d col %d (%s): bad value %g", i, j, faultDesigns[j], v)
			}
		}
	}
	changed := false
	for _, row := range tb.Data[1:] {
		for _, v := range row {
			if v != 1 {
				changed = true
			}
		}
	}
	if !changed {
		t.Error("no design's EDP moved at any fault level — injection not reaching runs")
	}
}

// TestCampaignChaosFlowsIntoJobs: a Suite-wide chaos spec and cycle
// budget must land on every job it creates (and therefore in its keys).
func TestCampaignChaosFlowsIntoJobs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CUs = 2
	cfg.Chaos = "noise=0.1,seed=3"
	cfg.MaxCycles = 1 << 40
	s := NewSuite(cfg)
	j := s.job(cell{"comd", "PCSTALL", 1000, "EDP", 1, 0})
	if j.Chaos != cfg.Chaos || j.MaxCycles != cfg.MaxCycles {
		t.Fatalf("job lost campaign knobs: %+v", j)
	}
	clean := s.job(cell{"comd", "PCSTALL", 1000, "EDP", 1, 0})
	clean.Chaos, clean.MaxCycles = "", 0
	if clean.Key() == j.Key() {
		t.Fatal("chaos/max-cycles do not change the job key")
	}

	// Zero-CUs configs adopt defaults but must keep the chaos knobs.
	s2 := NewSuite(Config{Chaos: "noise=0.2", MaxCycles: 7})
	if s2.Cfg.Chaos != "noise=0.2" || s2.Cfg.MaxCycles != 7 {
		t.Fatalf("zero-CUs NewSuite dropped chaos knobs: %+v", s2.Cfg)
	}
}
