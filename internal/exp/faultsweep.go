package exp

import (
	"fmt"

	"pcstall/internal/chaos"
	"pcstall/internal/clock"
	"pcstall/internal/metrics"
	"pcstall/internal/orchestrate"
)

// faultLevels is the injected-fault intensity sweep (chaos.Level scalar:
// 0 = clean run, 0.4 = 40% counter noise with proportional drop/stale/
// transition-failure rates).
var faultLevels = []float64{0, 0.05, 0.1, 0.2, 0.4}

// faultDesigns are the governors compared under injected faults: the
// best reactive baseline, the paper's predictor, and the predictor
// wrapped in the hardened governor.
var faultDesigns = []string{"CRISP", "PCSTALL", "PCSTALL-HARD"}

// FigureFaultSweep is this reproduction's robustness study (not a paper
// figure): geomean EDP degradation per design as telemetry/actuation
// fault intensity rises, each design normalized to its own fault-free
// run. The paper assumes perfect sensing; this sweep quantifies how
// gracefully each control scheme degrades when that assumption breaks,
// and whether the hardened governor's fallback actually buys anything.
func (s *Suite) FigureFaultSweep() *Table {
	epoch := clock.Time(clock.Microsecond)
	apps := s.apps()
	index := func(li, di, ai int) int {
		return (li*len(faultDesigns)+di)*len(apps) + ai
	}
	var jobs []orchestrate.Job
	for _, l := range faultLevels {
		// The fault seed is decoupled from the workload seed so the two
		// random streams cannot alias; level 0 canonicalizes to the
		// empty spec and shares cache entries with fault-free figures.
		spec := chaos.Level(l, s.Cfg.Seed+101).String()
		for _, d := range faultDesigns {
			for _, app := range apps {
				j := s.job(cell{app, d, epoch, "EDP", 1, 0})
				j.Chaos = spec
				jobs = append(jobs, j)
			}
		}
	}
	rs, err := s.orch.RunJobs(s.ctx, jobs)
	if err != nil {
		panic(err)
	}
	t := &Table{
		ID:     "Fault sweep",
		Title:  "Geomean EDP degradation vs injected fault level (each design / its own clean run)",
		Header: append([]string{"fault level"}, faultDesigns...),
	}
	for li, l := range faultLevels {
		vals := make([]float64, len(faultDesigns))
		for di := range faultDesigns {
			degr := make([]float64, 0, len(apps))
			for ai := range apps {
				base := rs[index(0, di, ai)].Totals.EDnP(1)
				v := rs[index(li, di, ai)].Totals.EDnP(1)
				if base == 0 {
					continue
				}
				degr = append(degr, v/base)
			}
			vals[di] = metrics.Geomean(degr)
		}
		t.AddRow(fmt.Sprintf("%.2f", l), 3, vals...)
	}
	t.Notes = append(t.Notes,
		"chaos spec per level l: noise=l drop=l/8 stale=l/8 tfail=l/4 jitter=l pcflip=l/16 (chaos.Level)",
		"1.000 = no degradation relative to the design's own fault-free EDP")
	return t
}
