package exp

import (
	"context"
	"fmt"

	"pcstall/internal/clock"
	"pcstall/internal/dvfs"
	"pcstall/internal/orchestrate"
)

// Artifact names one regenerable experiment artifact (a paper figure or
// table, an ablation, or an extension study) together with the bound
// Suite method that produces it. Artifacts is the single source of
// truth for "what can be regenerated": the pcstall-exp CLI lists and
// dispatches from it, and the serving layer's POST /v1/figures/{id}
// resolves ids against it — so the two entry points cannot drift.
type Artifact struct {
	// ID is the identifier accepted on the CLI and in figure URLs.
	ID string
	// Run regenerates the artifact (panics with an error on campaign
	// failure; Suite.Figure converts that back into an error).
	Run func() *Table
	// Ablation marks ids pulled in by the "ablations" group.
	Ablation bool
	// ExplicitOnly marks studies that run only when named (f1, the
	// fault-injection sweep): they are this reproduction's own work,
	// not paper artifacts, so "all" excludes them.
	ExplicitOnly bool
}

// Artifacts returns every regenerable artifact in canonical order.
func (s *Suite) Artifacts() []Artifact {
	return []Artifact{
		{ID: "1a", Run: s.Figure1a}, {ID: "1b", Run: s.Figure1b},
		{ID: "5", Run: s.Figure5}, {ID: "6", Run: s.Figure6},
		{ID: "7a", Run: s.Figure7a}, {ID: "7b", Run: s.Figure7b},
		{ID: "8", Run: s.Figure8}, {ID: "10", Run: s.Figure10},
		{ID: "11a", Run: s.Figure11a}, {ID: "11b", Run: s.Figure11b},
		{ID: "t1", Run: s.Table1}, {ID: "t2", Run: s.Table2}, {ID: "t3", Run: s.Table3},
		{ID: "14", Run: s.Figure14}, {ID: "15", Run: s.Figure15}, {ID: "16", Run: s.Figure16},
		{ID: "17", Run: s.Figure17}, {ID: "18a", Run: s.Figure18a}, {ID: "18b", Run: s.Figure18b},
		{ID: "a1", Run: s.AblTableSize, Ablation: true},
		{ID: "a2", Run: s.AblOffsetBits, Ablation: true},
		{ID: "a3", Run: s.AblTableScope, Ablation: true},
		{ID: "a4", Run: s.AblAgeCoef, Ablation: true},
		{ID: "a5", Run: s.AblAlphaFallback, Ablation: true},
		{ID: "a6", Run: s.AblOracleSamples, Ablation: true},
		{ID: "a7", Run: s.AblEstimators, Ablation: true},
		{ID: "a8", Run: s.AblEpochMode, Ablation: true},
		{ID: "e1", Run: s.Extensions},
		{ID: "f1", Run: s.FigureFaultSweep, ExplicitOnly: true},
	}
}

// ArtifactIDs returns the artifact ids in canonical order.
func (s *Suite) ArtifactIDs() []string {
	arts := s.Artifacts()
	ids := make([]string, len(arts))
	for i, a := range arts {
		ids[i] = a.ID
	}
	return ids
}

// Figure regenerates artifact id, converting the figure methods' error
// panics (the harness fail-fast path) back into errors; genuine bugs
// keep panicking. When ctx is non-nil it replaces the Suite's campaign
// context for the duration of the call, so a per-request deadline or a
// client disconnect winds the figure's simulations down at their next
// epoch boundary. Like every figure method, Figure is not safe for
// concurrent use — callers serving concurrent requests must serialize
// (the serving layer holds one figure at a time).
func (s *Suite) Figure(ctx context.Context, id string) (t *Table, err error) {
	var run func() *Table
	for _, a := range s.Artifacts() {
		if a.ID == id {
			run = a.Run
			break
		}
	}
	if run == nil {
		return nil, fmt.Errorf("exp: unknown artifact %q (available: %v)", id, s.ArtifactIDs())
	}
	if ctx != nil {
		saved := s.ctx
		s.ctx = ctx
		defer func() { s.ctx = saved }()
	}
	defer func() {
		if p := recover(); p != nil {
			if e, ok := p.(error); ok {
				t, err = nil, e
				return
			}
			panic(p)
		}
	}()
	return run(), nil
}

// RunSim executes one simulation job through the Suite's orchestrator
// under the caller's context — the serving layer's POST /v1/sim entry.
// Unlike the figure methods it is safe for concurrent use: jobs are
// pure functions of their description and the orchestrator memoizes
// concurrent duplicates.
func (s *Suite) RunSim(ctx context.Context, j orchestrate.Job) (*dvfs.Result, error) {
	return s.orch.RunJob(ctx, j)
}

// Cached peeks the orchestrator's settled memo and disk cache for a job
// key without scheduling work (see orchestrate.Orchestrator.Cached).
func (s *Suite) Cached(key string) (*dvfs.Result, bool) {
	return s.orch.Cached(key)
}

// SimDefaults returns the Suite's platform parameters as the defaults a
// serving layer should apply to sparse simulation requests, so a
// request that specifies only {app, design} lands on exactly the same
// job key a CLI campaign on this Suite would compute: the paper's 1µs
// epoch, the ED²P objective, and per-CU V/f domains.
func (s *Suite) SimDefaults() orchestrate.Job {
	return s.job(cell{epoch: clock.Microsecond, obj: dvfs.ED2P.Name(), cusDom: 1})
}
