package exp

import (
	"fmt"

	"pcstall/internal/clock"
	"pcstall/internal/core"
	"pcstall/internal/dvfs"
	"pcstall/internal/metrics"
	"pcstall/internal/predict"
	"pcstall/internal/workload"
)

// evalDesigns are the TABLE III designs in Figure 14/15 order.
var evalDesigns = []string{"STALL", "LEAD", "CRIT", "CRISP", "ACCREAC", "PCSTALL", "ACCPC"}

// Figure1a reproduces the opportunity study: geomean ED²P (normalized to
// static 1.7 GHz) as the DVFS epoch shrinks from 100µs to 1µs, for
// CRISP, PCSTALL, and ORACLE.
func (s *Suite) Figure1a() *Table {
	designs := []string{"CRISP", "PCSTALL", "ORACLE"}
	var cells []cell
	for _, e := range epochSweep {
		for _, d := range append([]string{"STATIC-1700"}, designs...) {
			for _, app := range s.apps() {
				cells = append(cells, cell{app, d, e, "ED2P", 1, 0})
			}
		}
	}
	s.prefetch(cells)
	t := &Table{
		ID:     "Figure 1a",
		Title:  "Geomean normalized ED2P vs DVFS epoch duration",
		Header: append([]string{"epoch"}, designs...),
	}
	for _, e := range epochSweep {
		vals := make([]float64, len(designs))
		for i, d := range designs {
			vals[i] = s.geomeanOver(func(app string) float64 {
				return s.normED(app, d, e, 2, 1)
			})
		}
		t.AddRow(epochLabel(e), 3, vals...)
	}
	return t
}

// Figure1b reproduces the accuracy-vs-epoch study for CRISP, ACCREAC,
// and PCSTALL.
func (s *Suite) Figure1b() *Table {
	designs := []string{"CRISP", "ACCREAC", "PCSTALL"}
	var cells []cell
	for _, e := range epochSweep {
		for _, d := range designs {
			for _, app := range s.apps() {
				cells = append(cells, cell{app, d, e, "ED2P", 1, 0})
			}
		}
	}
	s.prefetch(cells)
	t := &Table{
		ID:     "Figure 1b",
		Title:  "Mean prediction accuracy vs DVFS epoch duration",
		Header: append([]string{"epoch"}, designs...),
	}
	for _, e := range epochSweep {
		vals := make([]float64, len(designs))
		for i, d := range designs {
			vals[i] = s.meanOver(func(app string) float64 {
				return s.run(app, d, e, dvfs.ED2P, 1).Accuracy
			})
		}
		t.AddRow(epochLabel(e), 3, vals...)
	}
	return t
}

// Figure14 reproduces the per-workload prediction accuracy of every
// design at 1µs epochs (ORACLE is 100% by construction and omitted).
func (s *Suite) Figure14() *Table {
	var cells []cell
	for _, d := range evalDesigns {
		for _, app := range s.apps() {
			cells = append(cells, cell{app, d, clock.Microsecond, "ED2P", 1, 0})
		}
	}
	s.prefetch(cells)
	t := &Table{
		ID:     "Figure 14",
		Title:  "Prediction accuracy at 1us epochs",
		Header: append([]string{"app"}, evalDesigns...),
	}
	means := make([]float64, len(evalDesigns))
	for _, app := range s.apps() {
		vals := make([]float64, len(evalDesigns))
		for i, d := range evalDesigns {
			vals[i] = s.run(app, d, clock.Microsecond, dvfs.ED2P, 1).Accuracy
			means[i] += vals[i]
		}
		t.AddRow(app, 3, vals...)
	}
	for i := range means {
		means[i] /= float64(len(s.apps()))
	}
	t.AddRow("MEAN", 3, means...)
	return t
}

// Figure15 reproduces the per-workload ED²P at 1µs epochs, normalized to
// static 1.7 GHz operation.
func (s *Suite) Figure15() *Table {
	designs := []string{"STATIC-1300", "STATIC-2200", "CRISP", "ACCREAC", "PCSTALL", "ACCPC", "ORACLE"}
	var cells []cell
	for _, d := range append([]string{"STATIC-1700"}, designs...) {
		for _, app := range s.apps() {
			cells = append(cells, cell{app, d, clock.Microsecond, "ED2P", 1, 0})
		}
	}
	s.prefetch(cells)
	t := &Table{
		ID:     "Figure 15",
		Title:  "ED2P normalized to static 1.7GHz (1us epochs)",
		Header: append([]string{"app"}, designs...),
	}
	geo := make([][]float64, len(designs))
	for _, app := range s.apps() {
		vals := make([]float64, len(designs))
		for i, d := range designs {
			vals[i] = s.normED(app, d, clock.Microsecond, 2, 1)
			geo[i] = append(geo[i], vals[i])
		}
		t.AddRow(app, 3, vals...)
	}
	gm := make([]float64, len(designs))
	for i := range designs {
		gm[i] = metrics.Geomean(geo[i])
	}
	t.AddRow("GEOMEAN", 3, gm...)
	return t
}

// Figure16 reproduces the frequency residency of PCSTALL optimizing ED²P
// at 1µs: the share of domain-time spent at each V/f state, per workload.
func (s *Suite) Figure16() *Table {
	var cells []cell
	for _, app := range s.apps() {
		cells = append(cells, cell{app, "PCSTALL", clock.Microsecond, "ED2P", 1, 0})
	}
	s.prefetch(cells)
	grid := clock.DefaultGrid()
	t := &Table{
		ID:     "Figure 16",
		Title:  "Frequency time share under PCSTALL (ED2P, 1us)",
		Header: []string{"app"},
	}
	for _, f := range grid.States() {
		t.Header = append(t.Header, f.String())
	}
	for _, app := range s.apps() {
		r := s.run(app, "PCSTALL", clock.Microsecond, dvfs.ED2P, 1)
		t.AddRow(app, 3, r.Residency...)
	}
	return t
}

// Figure17 reproduces the EDP sweep: geomean EDP normalized to static
// 1.7 GHz vs epoch duration.
func (s *Suite) Figure17() *Table {
	designs := []string{"CRISP", "PCSTALL", "ORACLE"}
	var cells []cell
	for _, e := range epochSweep {
		for _, d := range append([]string{"STATIC-1700"}, designs...) {
			for _, app := range s.apps() {
				cells = append(cells, cell{app, d, e, "EDP", 1, 0})
			}
		}
	}
	s.prefetch(cells)
	t := &Table{
		ID:     "Figure 17",
		Title:  "Geomean normalized EDP vs DVFS epoch duration",
		Header: append([]string{"epoch"}, designs...),
	}
	for _, e := range epochSweep {
		vals := make([]float64, len(designs))
		for i, d := range designs {
			vals[i] = s.geomeanOver(func(app string) float64 {
				obj := dvfs.EDP
				base := s.run(app, "STATIC-1700", e, obj, 1).Totals.EDP()
				return s.run(app, d, e, obj, 1).Totals.EDP() / base
			})
		}
		t.AddRow(epochLabel(e), 3, vals...)
	}
	return t
}

// Figure18a reproduces the fixed-performance energy study: mean energy
// savings versus static top-frequency operation when the governor may
// degrade performance by at most 5% / 10%.
func (s *Suite) Figure18a() *Table {
	designs := []string{"CRISP", "PCSTALL", "ORACLE"}
	var cells []cell
	for _, limit := range []float64{0.05, 0.10} {
		obj := dvfs.FixedPerf{Limit: limit}.Name()
		for _, d := range append([]string{"STATIC-2200"}, designs...) {
			for _, app := range s.apps() {
				cells = append(cells, cell{app, d, clock.Microsecond, obj, 1, 0})
			}
		}
	}
	s.prefetch(cells)
	t := &Table{
		ID:     "Figure 18a",
		Title:  "Energy savings (%) vs static 2.2GHz under perf-degradation limits (1us)",
		Header: append([]string{"limit"}, designs...),
	}
	for _, limit := range []float64{0.05, 0.10} {
		obj := dvfs.FixedPerf{Limit: limit}
		vals := make([]float64, len(designs))
		for i, d := range designs {
			vals[i] = 100 * s.meanOver(func(app string) float64 {
				base := s.run(app, "STATIC-2200", clock.Microsecond, obj, 1).Totals.EnergyJ
				e := s.run(app, d, clock.Microsecond, obj, 1).Totals.EnergyJ
				return 1 - e/base
			})
		}
		t.AddRow(fmt.Sprintf("%.0f%%", limit*100), 1, vals...)
	}
	return t
}

// Figure18b reproduces the V/f-domain granularity study: geomean
// normalized ED²P as domains grow from one CU to half the GPU.
func (s *Suite) Figure18b() *Table {
	designs := []string{"CRISP", "PCSTALL", "ORACLE"}
	var cells []cell
	for g := 1; g <= s.Cfg.CUs/2; g *= 2 {
		for _, d := range append([]string{"STATIC-1700"}, designs...) {
			for _, app := range s.apps() {
				cells = append(cells, cell{app, d, clock.Microsecond, "ED2P", g, 0})
			}
		}
	}
	s.prefetch(cells)
	t := &Table{
		ID:     "Figure 18b",
		Title:  "Geomean normalized ED2P vs V/f domain granularity (1us)",
		Header: append([]string{"CUs/domain"}, designs...),
	}
	for g := 1; g <= s.Cfg.CUs/2; g *= 2 {
		vals := make([]float64, len(designs))
		for i, d := range designs {
			vals[i] = s.geomeanOver(func(app string) float64 {
				return s.normED(app, d, clock.Microsecond, 2, g)
			})
		}
		t.AddRow(fmt.Sprintf("%dCU", g), 3, vals...)
	}
	return t
}

// Table1 reproduces the hardware storage overhead table.
func (s *Suite) Table1() *Table {
	t := &Table{
		ID:     "Table I",
		Title:  "Hardware storage overhead per instance (bytes)",
		Header: []string{"design", "component", "bytes", "total"},
	}
	rows := core.StorageTable(predict.DefaultPCTable(), 40, 32)
	for _, r := range rows {
		for i, c := range r.Components {
			total := ""
			if i == 0 {
				total = fmt.Sprintf("%d", r.TotalBytes)
			}
			name := ""
			if i == 0 {
				name = r.Design
			}
			t.Rows = append(t.Rows, []string{name, c.Name, fmt.Sprintf("%d", c.Bytes), total})
			t.Data = append(t.Data, []float64{float64(c.Bytes), float64(r.TotalBytes)})
		}
	}
	return t
}

// Table2 reproduces the workload inventory.
func (s *Suite) Table2() *Table {
	t := &Table{
		ID:     "Table II",
		Title:  "HPC and MI workloads (unique kernels in parentheses)",
		Header: []string{"app", "class", "kernels", "launches"},
	}
	gen := workload.DefaultGenConfig(s.Cfg.CUs)
	gen.Scale = s.Cfg.Scale
	for _, name := range workload.Names() {
		a := workload.MustBuild(name, gen)
		t.Rows = append(t.Rows, []string{
			a.Name, string(a.Class),
			fmt.Sprintf("%d", a.UniqueKernels()),
			fmt.Sprintf("%d", len(a.Launches)),
		})
		t.Data = append(t.Data, []float64{float64(a.UniqueKernels()), float64(len(a.Launches))})
	}
	return t
}

// Table3 reproduces the evaluated-designs table.
func (s *Suite) Table3() *Table {
	t := &Table{
		ID:     "Table III",
		Title:  "DVFS prediction designs evaluated",
		Header: []string{"name", "estimation model", "control mechanism", "practical"},
	}
	for _, d := range core.Designs() {
		t.Rows = append(t.Rows, []string{
			d.Name, d.Estimation, d.Control, fmt.Sprintf("%v", d.Practical),
		})
		t.Data = append(t.Data, nil)
	}
	return t
}
