package exp

import (
	"testing"
)

// TestAllFiguresSmoke regenerates every remaining artifact at a tiny
// scale and checks structural sanity (row counts, value ranges). The
// heavyweight figure-accuracy claims are validated by the benchmark
// harness at full scale; this test guards against wiring regressions.
func TestAllFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every artifact")
	}
	s := tinySuite("comd", "xsbench")

	inRange := func(name string, tb *Table, lo, hi float64) {
		t.Helper()
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: empty", name)
		}
		for i, row := range tb.Data {
			for j, v := range row {
				if v < lo || v > hi {
					t.Errorf("%s row %d col %d: %g outside [%g,%g]", name, i, j, v, lo, hi)
				}
			}
		}
	}

	inRange("Figure6", s.Figure6(), -1e6, 1e6)
	inRange("Figure7b", s.Figure7b(), 0, 1)
	inRange("Figure8", s.Figure8(), -1e6, 1e6)
	inRange("Figure10", s.Figure10(), 0, 1)
	inRange("Figure11a", s.Figure11a(), 0, 1)
	inRange("Figure11b", s.Figure11b(), 0, 1)
	inRange("Figure1a", s.Figure1a(), 0.1, 10)
	inRange("Figure1b", s.Figure1b(), 0, 1)
	inRange("Figure17", s.Figure17(), 0.1, 10)
	inRange("Figure18a", s.Figure18a(), -100, 100)
	inRange("Figure18b", s.Figure18b(), 0.1, 10)

	// Granularity rows must cover 1 CU up to half the GPU.
	if got := len(s.Figure18b().Rows); got != 1 { // 2-CU GPU: only 1CU/domain
		t.Fatalf("Figure18b rows = %d on a 2-CU GPU", got)
	}
}

// TestAblationsSmoke regenerates the ablation tables at a tiny scale.
func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every ablation")
	}
	s := tinySuite("comd", "xsbench")
	for _, a := range []struct {
		name string
		gen  func() *Table
		rows int
	}{
		{"A1", s.AblTableSize, 7},
		{"A2", s.AblOffsetBits, 5},
		{"A3", s.AblTableScope, 3},
		{"A4", s.AblAgeCoef, 4},
		{"A5", s.AblAlphaFallback, 4},
		{"A6", s.AblOracleSamples, 5},
		{"A7", s.AblEstimators, 5},
		{"A8", s.AblEpochMode, 2},
		{"E1", s.Extensions, 5},
	} {
		tb := a.gen()
		if len(tb.Rows) != a.rows {
			t.Errorf("%s: %d rows, want %d", a.name, len(tb.Rows), a.rows)
		}
		for i, row := range tb.Data {
			for j, v := range row {
				if v != v { // NaN
					t.Errorf("%s row %d col %d is NaN", a.name, i, j)
				}
			}
		}
	}
}
