package exp

import (
	"fmt"
	"sort"

	"pcstall/internal/clock"
	"pcstall/internal/metrics"
)

// characterization epochs used throughout §3 of the paper.
var epochSweep = []clock.Time{
	1 * clock.Microsecond,
	10 * clock.Microsecond,
	50 * clock.Microsecond,
	100 * clock.Microsecond,
}

func epochLabel(e clock.Time) string {
	return fmt.Sprintf("%dus", e/clock.Microsecond)
}

// Figure5 reproduces the linearity study: instructions committed by one
// V/f domain at each frequency for several sampled epochs of comd, plus
// the mean R² of the linear fit across all workloads (the paper reports
// 0.82).
func (s *Suite) Figure5() *Table {
	t := &Table{
		ID:     "Figure 5",
		Title:  "Instructions committed vs frequency (comd, sampled 1us epochs)",
		Header: []string{"epoch"},
	}
	grid := s.gpu("comd", 1).Cfg.Grid
	for _, f := range grid.States() {
		t.Header = append(t.Header, f.String())
	}
	tr := s.trace("comd", clock.Microsecond, s.Cfg.TraceEpochs, false)
	for e := range tr.curves {
		// Domain 0's curve for each kept epoch.
		t.AddRow(fmt.Sprintf("epoch %d", e), 0, tr.curves[e][0]...)
	}
	r2 := s.meanOver(func(app string) float64 {
		return s.trace(app, clock.Microsecond, s.Cfg.TraceEpochs, false).meanR2()
	})
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean R^2 of linear I(f) fits across all workloads: %.2f (paper: 0.82)", r2))
	return t
}

// MeanR2 returns the workload-averaged linearity of I(f) at 1µs epochs
// (the quantity behind Figure 5's note), exposed for tests.
func (s *Suite) MeanR2() float64 {
	return s.meanOver(func(app string) float64 {
		return s.trace(app, clock.Microsecond, s.Cfg.TraceEpochs, false).meanR2()
	})
}

// Figure6 reproduces the sensitivity-over-time profiles for the paper's
// four example applications (dgemm, hacc, BwdBN, xsbench): domain 0's
// true sensitivity per 1µs epoch.
func (s *Suite) Figure6() *Table {
	apps := []string{"dgemm", "hacc", "BwdBN", "xsbench"}
	t := &Table{
		ID:     "Figure 6",
		Title:  "Sensitivity profile over time (instr/MHz, domain 0, 1us epochs)",
		Header: []string{"app"},
	}
	n := s.Cfg.TraceEpochs
	if n > 48 {
		n = 48
	}
	for e := 0; e < n; e++ {
		t.Header = append(t.Header, fmt.Sprintf("e%d", e))
	}
	for _, app := range apps {
		tr := s.trace(app, clock.Microsecond, s.Cfg.TraceEpochs, false)
		row := make([]float64, n)
		for e := 0; e < n && e < len(tr.sens); e++ {
			row[e] = tr.sens[e][0]
		}
		t.AddRow(app, 4, row...)
	}
	return t
}

// Figure7a reproduces the per-workload mean relative change in
// sensitivity across consecutive 1µs epochs (the paper's average is 37%).
func (s *Suite) Figure7a() *Table {
	t := &Table{
		ID:     "Figure 7a",
		Title:  "Mean relative sensitivity change across consecutive 1us epochs",
		Header: []string{"app", "rel change"},
	}
	var all []float64
	for _, app := range s.apps() {
		v := s.trace(app, clock.Microsecond, s.Cfg.TraceEpochs, false).meanRelChange()
		t.AddRow(app, 3, v)
		all = append(all, v)
	}
	t.AddRow("MEAN", 3, metrics.Mean(all))
	return t
}

// Figure7b reproduces the epoch-duration sweep of the mean relative
// change (the paper reports 37% at 1µs falling to 12% at 100µs).
func (s *Suite) Figure7b() *Table {
	t := &Table{
		ID:     "Figure 7b",
		Title:  "Mean relative sensitivity change vs epoch duration",
		Header: []string{"epoch", "rel change"},
	}
	for _, e := range epochSweep {
		v := s.meanOver(func(app string) float64 {
			// Longer epochs need fewer samples (trace scales the
			// workload up to cover the window).
			n := s.Cfg.TraceEpochs
			if e >= 10*clock.Microsecond {
				n = s.Cfg.TraceEpochs / 2
				if n < 12 {
					n = 12
				}
			}
			return s.trace(app, e, n, false).meanRelChange()
		})
		t.AddRow(epochLabel(e), 3, v)
	}
	return t
}

// Figure8 reproduces the wavefront-contribution profile for BwdBN: the
// per-epoch sensitivity of the first wavefront slots of CU 0 alongside
// the CU total.
func (s *Suite) Figure8() *Table {
	const nWaves = 8
	t := &Table{
		ID:     "Figure 8",
		Title:  "Wavefront contributions to CU-0 sensitivity (BwdBN, 1us)",
		Header: []string{"epoch"},
	}
	for w := 0; w < nWaves; w++ {
		t.Header = append(t.Header, fmt.Sprintf("wf%d", w))
	}
	t.Header = append(t.Header, "total")
	tr := s.trace("BwdBN", clock.Microsecond, s.Cfg.TraceEpochs, true)
	for e := range tr.wf {
		if e >= 32 {
			break
		}
		row := make([]float64, nWaves+1)
		for _, ws := range tr.wf[e] {
			if ws.CU != 0 {
				continue
			}
			if int(ws.AgeRank) < nWaves {
				row[ws.AgeRank] = ws.Sens
			}
			row[nWaves] += ws.Sens
		}
		t.AddRow(fmt.Sprintf("e%d", e), 4, row...)
	}
	return t
}

// pcGroupRelChange computes the mean relative change between consecutive
// same-key sensitivity observations — the machinery behind Figs. 10 and
// 11b. The key defines the paper's matching boundary: with the wave
// identity in the key only a wave's own iterations compare (WF scope);
// without it, any wave's next visit to the PC inside the boundary
// compares against the previous visitor (CU / GPU scopes).
func pcGroupRelChange(epochs [][]wfSens, key func(w *wfSens) uint64) float64 {
	last := map[uint64]float64{}
	var agg metrics.Welford
	for _, ws := range epochs {
		for i := range ws {
			w := &ws[i]
			k := key(w)
			if prev, ok := last[k]; ok {
				agg.Add(metrics.RelChange(prev, w.Sens))
			}
			last[k] = w.Sens
		}
	}
	return agg.Mean
}

// Figure10 reproduces the PC-predictability study: the mean relative
// change in wavefront sensitivity across consecutive iterations starting
// from the same PC, with the matching scope widened from a single
// wavefront to a CU to the whole GPU (the paper's 64CU/CU/WF bars; its
// average is ~10%, far below the 37% of consecutive epochs).
func (s *Suite) Figure10() *Table {
	t := &Table{
		ID:     "Figure 10",
		Title:  "Mean relative sensitivity change across same-PC iterations",
		Header: []string{"app", "GPU", "CU", "WF"},
	}
	var g64, gcu, gwf []float64
	for _, app := range s.apps() {
		tr := s.trace(app, clock.Microsecond, s.Cfg.TraceEpochs, true)
		v64 := pcGroupRelChange(tr.wf, func(w *wfSens) uint64 { return w.StartPC })
		vcu := pcGroupRelChange(tr.wf, func(w *wfSens) uint64 {
			return w.StartPC ^ uint64(w.CU)<<48
		})
		vwf := pcGroupRelChange(tr.wf, func(w *wfSens) uint64 {
			return w.StartPC ^ uint64(w.GlobalWave)<<40
		})
		t.AddRow(app, 3, v64, vcu, vwf)
		g64 = append(g64, v64)
		gcu = append(gcu, vcu)
		gwf = append(gwf, vwf)
	}
	t.AddRow("MEAN", 3, metrics.Mean(g64), metrics.Mean(gcu), metrics.Mean(gwf))
	// Baseline with the same per-wave estimate methodology: consecutive
	// epochs of the same wave regardless of PC (the reactive
	// assumption). The same-PC columns should sit well below it.
	base := s.meanOver(func(app string) float64 {
		tr := s.trace(app, clock.Microsecond, s.Cfg.TraceEpochs, true)
		return pcGroupRelChange(tr.wf, func(w *wfSens) uint64 {
			return uint64(w.GlobalWave)
		})
	})
	t.Notes = append(t.Notes, fmt.Sprintf(
		"consecutive-epoch baseline (same wave, any PC): %.3f", base))
	return t
}

// Figure11a reproduces the scheduling-contention study on quickS: the
// mean relative change in per-wavefront sensitivity by age rank (0 =
// oldest = highest priority under oldest-first scheduling).
func (s *Suite) Figure11a() *Table {
	t := &Table{
		ID:     "Figure 11a",
		Title:  "Sensitivity variation by wavefront age rank (quickS, 1us)",
		Header: []string{"age rank", "rel change"},
	}
	tr := s.trace("quickS", clock.Microsecond, s.Cfg.TraceEpochs, true)
	perRank := map[int32]*metrics.Welford{}
	last := map[int64]float64{}
	for _, ws := range tr.wf {
		for i := range ws {
			w := &ws[i]
			if prev, ok := last[w.GlobalWave]; ok {
				agg := perRank[w.AgeRank]
				if agg == nil {
					agg = &metrics.Welford{}
					perRank[w.AgeRank] = agg
				}
				agg.Add(metrics.RelChange(prev, w.Sens))
			}
			last[w.GlobalWave] = w.Sens
		}
	}
	ranks := make([]int32, 0, len(perRank))
	for r := range perRank {
		ranks = append(ranks, r)
	}
	sort.Slice(ranks, func(a, b int) bool { return ranks[a] < ranks[b] })
	for _, r := range ranks {
		t.AddRow(fmt.Sprintf("%d", r), 3, perRank[r].Mean)
	}
	return t
}

// Figure11b reproduces the PC-table index-offset tuning: the mean
// relative change between same-index iterations (CU scope) as low PC bits
// are dropped. The paper observes degradation past 4 offset bits.
func (s *Suite) Figure11b() *Table {
	t := &Table{
		ID:     "Figure 11b",
		Title:  "Sensitivity variation vs PC-table index offset bits (CU scope)",
		Header: []string{"offset bits", "rel change"},
	}
	for _, off := range []int{0, 2, 4, 6, 8, 10} {
		v := s.meanOver(func(app string) float64 {
			tr := s.trace(app, clock.Microsecond, s.Cfg.TraceEpochs, true)
			return pcGroupRelChange(tr.wf, func(w *wfSens) uint64 {
				return (w.StartPC >> uint(off)) ^ uint64(w.CU)<<48
			})
		})
		t.AddRow(fmt.Sprintf("%d", off), 3, v)
	}
	return t
}
