package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestValueSemanticsSnapshot(t *testing.T) {
	s := New(7)
	s.Uint64()
	snap := s // copying the struct snapshots the stream
	want := make([]uint64, 16)
	for i := range want {
		want[i] = s.Uint64()
	}
	for i := range want {
		if got := snap.Uint64(); got != want[i] {
			t.Fatalf("restored stream diverged at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestIntnBounds(t *testing.T) {
	err := quick.Check(func(seed uint64, n int) bool {
		if n <= 0 {
			n = -n + 1
		}
		n = n%1000 + 1
		s := New(seed)
		v := s.Intn(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	s := New(1)
	s.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("NormFloat64 mean %.4f far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("NormFloat64 variance %.4f far from 1", variance)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	s := New(5)
	before := s
	_ = s.Split(1)
	_ = s.Split(2)
	if s != before {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	s := New(5)
	a := s.Split(1)
	b := s.Split(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams with different labels matched %d times", same)
	}
}

func TestSplitStableAcrossCalls(t *testing.T) {
	s := New(5)
	a := s.Split(7)
	b := s.Split(7)
	for i := 0; i < 32; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-label splits from same parent differ")
		}
	}
}

func TestInt63nBounds(t *testing.T) {
	err := quick.Check(func(seed uint64, n int64) bool {
		if n <= 0 {
			n = -n + 1
		}
		n = n%1_000_000 + 1
		s := New(seed)
		v := s.Int63n(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUint32Coverage(t *testing.T) {
	// High and low halves should both vary.
	s := New(3)
	var orAll, andAll uint32 = 0, 0xffffffff
	for i := 0; i < 1000; i++ {
		v := s.Uint32()
		orAll |= v
		andAll &= v
	}
	if orAll != 0xffffffff {
		t.Errorf("some bits never set: %08x", orAll)
	}
	if andAll != 0 {
		t.Errorf("some bits always set: %08x", andAll)
	}
}
