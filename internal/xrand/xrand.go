// Package xrand provides small, deterministic, value-type random number
// generators whose entire state is an exported struct field set.
//
// The simulator snapshots and rolls back its complete state for the
// fork-pre-execute oracle (see internal/oracle); math/rand hides its state
// behind pointers, so it cannot be cloned. xrand.State is nine bytes of
// plain data: copying the struct copies the stream position.
package xrand

// State is a splitmix64-based generator. The zero value is a valid
// generator (equivalent to Seed(0)); distinct seeds give independent
// streams. State is a value type: assignment clones the stream.
type State struct {
	X uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) State {
	return State{X: seed}
}

// Uint64 advances the stream and returns the next 64 random bits.
func (s *State) Uint64() uint64 {
	s.X += 0x9e3779b97f4a7c15
	z := s.X
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 random bits.
func (s *State) Uint32() uint32 {
	return uint32(s.Uint64() >> 32)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *State) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection-free approximation is fine here;
	// bias is < 2^-32 for the small n the simulator uses.
	return int((uint64(s.Uint32()) * uint64(n)) >> 32)
}

// Int63n returns a uniform value in [0, n) for 63-bit n. It panics if n <= 0.
func (s *State) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(s.Uint64()&(1<<63-1)) % n
}

// Float64 returns a uniform value in [0, 1).
func (s *State) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns an approximately standard-normal value using the sum
// of twelve uniforms (Irwin-Hall). The simulator only needs mild, bounded
// noise, and this avoids any transcendental-function state.
func (s *State) NormFloat64() float64 {
	sum := 0.0
	for i := 0; i < 12; i++ {
		sum += s.Float64()
	}
	return sum - 6
}

// Split derives an independent child stream from the current state and a
// label, without advancing the parent. Used to give each wavefront its own
// stream that is stable across snapshot/rollback.
func (s State) Split(label uint64) State {
	mix := s.X ^ (label+1)*0xd1342543de82ef95
	child := State{X: mix}
	child.Uint64() // burn one output to decorrelate
	return child
}
