package dvfs_test

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"pcstall/internal/chaos"
	"pcstall/internal/clock"
	"pcstall/internal/core"
	"pcstall/internal/dvfs"
	"pcstall/internal/estimate"
	"pcstall/internal/power"
	"pcstall/internal/sim"
	"pcstall/internal/telemetry"
	"pcstall/internal/workload"
)

// runWith builds a fresh GPU for appName, resolves design from the
// registry, applies mut to the run config, and runs. Unlike runPolicy it
// returns the error so deadlock tests can inspect it.
func runWith(t *testing.T, appName, design string, cus int, mut func(*dvfs.RunConfig)) (dvfs.Result, error) {
	t.Helper()
	d, err := core.DesignByName(design)
	if err != nil {
		t.Fatal(err)
	}
	return runPolicyWith(t, appName, d.New(), cus, mut)
}

// runPolicyWith is runWith for a caller-constructed policy instance.
func runPolicyWith(t *testing.T, appName string, pol dvfs.Policy, cus int, mut func(*dvfs.RunConfig)) (dvfs.Result, error) {
	t.Helper()
	cfg := sim.DefaultConfig(cus)
	gen := workload.DefaultGenConfig(cus)
	gen.Scale = 0.3
	app := workload.MustBuild(appName, gen)
	g, err := sim.New(cfg, app.Kernels, app.Launches)
	if err != nil {
		t.Fatal(err)
	}
	pm := power.DefaultModelFor(cus)
	rc := dvfs.RunConfig{Epoch: clock.Time(clock.Microsecond), Obj: dvfs.EDP, PM: &pm}
	if mut != nil {
		mut(&rc)
	}
	return dvfs.Run(g, pol, rc)
}

// TestChaosOffIsByteIdentical: with a zero chaos config the runner must
// take the exact pre-chaos path — two runs agree field-for-field and no
// fault statistics appear.
func TestChaosOffIsByteIdentical(t *testing.T) {
	a, err := runWith(t, "comd", "PCSTALL", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runWith(t, "comd", "PCSTALL", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("chaos-off runs diverge:\n%+v\n%+v", a, b)
	}
	if a.Chaos != (chaos.Stats{}) {
		t.Fatalf("chaos-off run reported fault stats %+v", a.Chaos)
	}
}

// TestChaosOnIsReproducible: the fault stream is a pure function of the
// seed, so two chaos-on runs at the same seed agree exactly — including
// the injected-fault accounting — and actually injected something.
func TestChaosOnIsReproducible(t *testing.T) {
	mut := func(rc *dvfs.RunConfig) { rc.Chaos = chaos.Level(0.2, 99) }
	a, err := runWith(t, "comd", "PCSTALL", 2, mut)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runWith(t, "comd", "PCSTALL", 2, mut)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("chaos-on runs at one seed diverge:\n%+v\n%+v", a, b)
	}
	if a.Chaos.NoisyCounters == 0 {
		t.Fatalf("chaos at level 0.2 injected nothing: %+v", a.Chaos)
	}
}

// TestChaosInvalidConfigRejected: the runner validates the chaos config
// before touching the GPU.
func TestChaosInvalidConfigRejected(t *testing.T) {
	_, err := runWith(t, "comd", "PCSTALL", 1, func(rc *dvfs.RunConfig) {
		rc.Chaos = chaos.Config{DropProb: 2}
	})
	if err == nil {
		t.Fatal("DropProb=2 accepted")
	}
}

// garbagePolicy predicts NaN for every state — the worst possible
// telemetry-poisoned primary. It exercises both the sanity clamp (the
// NaNs must be floored before anything downstream sees them) and the
// confidence tracker (a floored prediction scores as a total miss, so
// the guard must hand over to the fallback).
type garbagePolicy struct{}

func (garbagePolicy) Name() string          { return "GARBAGE" }
func (garbagePolicy) Truth() dvfs.TruthNeed { return dvfs.NoTruth }
func (garbagePolicy) Predicts() bool        { return true }
func (garbagePolicy) Reset()                {}

func (garbagePolicy) Decide(_ *dvfs.Context, _ *sim.EpochSample, _ dvfs.Objective, pred [][]float64, choice []int) {
	for d := range pred {
		for s := range pred[d] {
			pred[d][s] = math.NaN()
		}
		choice[d] = 0
	}
}

// TestHardenedFallbackEngages: wrap the garbage primary; the guard must
// observably engage the fallback, and the guard + sanitizer telemetry
// must record it.
func TestHardenedFallbackEngages(t *testing.T) {
	hard := dvfs.NewHardened(garbagePolicy{}, &dvfs.Reactive{Model: estimate.Crisp{}})
	reg := telemetry.New()
	res, err := runPolicyWith(t, "comd", hard, 2, func(rc *dvfs.RunConfig) {
		rc.Metrics = reg
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs < 8 {
		t.Fatalf("run too short to exercise the guard: %d epochs", res.Epochs)
	}
	if hard.Engagements() == 0 {
		t.Fatalf("garbage primary never triggered the fallback (ewma err %.3f over %d epochs)",
			hard.PredictionError(), res.Epochs)
	}
	if hard.FallbackEpochs() == 0 {
		t.Fatal("fallback engaged but decided no epochs")
	}
	if !hard.FallbackActive() {
		t.Error("NaN-spewing primary regained confidence — scoring is broken")
	}
	if got := reg.Counter("dvfs_guard_fallback_engagements_total", "").Value(); got != hard.Engagements() {
		t.Errorf("engagement counter %d != accessor %d", got, hard.Engagements())
	}
	if reg.Counter("dvfs_sanitized_predictions_total", "").Value() == 0 {
		t.Error("no NaN predictions were counted by the sanity clamp")
	}
}

// TestHardenedCleanRunStaysOnPrimary: with healthy telemetry a
// near-perfect primary (the fork-pre-execute oracle) must keep control
// for the whole run. Practical predictors on tiny warm-up-dominated
// configurations can legitimately trip the guard, so the competence
// baseline here is the oracle, not PCSTALL.
func TestHardenedCleanRunStaysOnPrimary(t *testing.T) {
	d, err := core.DesignByName("ORACLE")
	if err != nil {
		t.Fatal(err)
	}
	hard := dvfs.NewHardened(d.New(), &dvfs.Reactive{Model: estimate.Crisp{}})
	res, err := runPolicyWith(t, "comd", hard, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs == 0 {
		t.Fatal("no epochs ran")
	}
	if hard.Engagements() != 0 {
		t.Errorf("oracle-primary run engaged fallback %d times (ewma err %.3f)",
			hard.Engagements(), hard.PredictionError())
	}
}

// TestDeadlockPropagatesThroughRun: the watchdog's structured diagnosis
// must surface through dvfs.Run as an unwrappable *sim.DeadlockError,
// with the partial result marked truncated and counted in telemetry.
func TestDeadlockPropagatesThroughRun(t *testing.T) {
	reg := telemetry.New()
	res, err := runWith(t, "comd", "PCSTALL", 1, func(rc *dvfs.RunConfig) {
		rc.MaxCycles = 2000
		rc.Metrics = reg
	})
	if err == nil {
		t.Fatal("2000-cycle budget did not stop the run")
	}
	var de *sim.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error %v does not unwrap as *sim.DeadlockError", err)
	}
	if de.Kind != sim.DeadlockCycleLimit {
		t.Fatalf("Kind = %q, want %q", de.Kind, sim.DeadlockCycleLimit)
	}
	if !res.Truncated {
		t.Error("deadlocked result not marked Truncated")
	}
	if reg.Counter("dvfs_run_deadlocks_total", "").Value() != 1 {
		t.Error("deadlock not counted in telemetry")
	}
}

// TestRunRejectsNegativeMaxCycles: config validation.
func TestRunRejectsNegativeMaxCycles(t *testing.T) {
	_, err := runWith(t, "comd", "PCSTALL", 1, func(rc *dvfs.RunConfig) {
		rc.MaxCycles = -1
	})
	if err == nil {
		t.Fatal("negative MaxCycles accepted")
	}
}
