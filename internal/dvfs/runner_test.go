package dvfs_test

import (
	"testing"

	"pcstall/internal/clock"
	"pcstall/internal/core"
	"pcstall/internal/dvfs"
	"pcstall/internal/power"
	"pcstall/internal/sim"
	"pcstall/internal/workload"
)

func runPolicy(t *testing.T, appName, design string, cus int, epoch clock.Time, obj dvfs.Objective) dvfs.Result {
	t.Helper()
	cfg := sim.DefaultConfig(cus)
	gen := workload.DefaultGenConfig(cus)
	gen.Scale = 0.5
	app := workload.MustBuild(appName, gen)
	g, err := sim.New(cfg, app.Kernels, app.Launches)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.DesignByName(design)
	if err != nil {
		t.Fatal(err)
	}
	pm := power.DefaultModelFor(cus)
	res, err := dvfs.Run(g, d.New(), dvfs.RunConfig{Epoch: epoch, Obj: obj, PM: &pm})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("%s/%s truncated", appName, design)
	}
	return res
}

// TestPolicyStackEndToEnd runs the main designs on two contrasting apps
// at 1µs epochs and checks the paper's qualitative ordering holds:
// DVFS beats the worst static choice, ORACLE is best, and PCSTALL
// predicts more accurately than CRISP.
func TestPolicyStackEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-policy end-to-end run")
	}
	const cus = 4
	epoch := clock.Time(clock.Microsecond)
	var accCrisp, accPCStall float64
	apps := []string{"comd", "hpgmg", "pennant"}
	for _, app := range apps {
		t.Run(app, func(t *testing.T) {
			static := runPolicy(t, app, "STATIC-1700", cus, epoch, dvfs.ED2P)
			crisp := runPolicy(t, app, "CRISP", cus, epoch, dvfs.ED2P)
			pcstall := runPolicy(t, app, "PCSTALL", cus, epoch, dvfs.ED2P)
			oracle := runPolicy(t, app, "ORACLE", cus, epoch, dvfs.ED2P)

			s, c, p, o := static.Totals.ED2P(), crisp.Totals.ED2P(), pcstall.Totals.ED2P(), oracle.Totals.ED2P()
			t.Logf("ED2P static=%.3g crisp=%.3g (%.2f) pcstall=%.3g (%.2f) oracle=%.3g (%.2f)",
				s, c, c/s, p, p/s, o, o/s)
			t.Logf("accuracy crisp=%.3f (n=%d) pcstall=%.3f (n=%d) oracle=%.3f",
				crisp.Accuracy, crisp.AccuracyN, pcstall.Accuracy, pcstall.AccuracyN, oracle.Accuracy)
			t.Logf("pcstall residency=%v transitions=%d", pcstall.Residency, pcstall.Transitions)
			accCrisp += crisp.Accuracy
			accPCStall += pcstall.Accuracy

			if oracle.Accuracy < 0.9 {
				t.Errorf("oracle accuracy %.3f < 0.9 — fork-pre-execute methodology broken", oracle.Accuracy)
			}
			// Greedy per-epoch oracle selection is not globally optimal
			// on short runs; allow a small margin over static mid.
			if o > s*1.08 {
				t.Errorf("ORACLE ED2P %.3g much worse than static mid %.3g", o, s)
			}
		})
	}
	// The paper's claim is on average, not per app (dgemm-style apps can
	// invert it): PCSTALL must beat CRISP in mean prediction accuracy.
	n := float64(len(apps))
	t.Logf("mean accuracy: CRISP=%.3f PCSTALL=%.3f", accCrisp/n, accPCStall/n)
	if accPCStall <= accCrisp {
		t.Errorf("mean PCSTALL accuracy %.3f not above CRISP %.3f", accPCStall/n, accCrisp/n)
	}
}
